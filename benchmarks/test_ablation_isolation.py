"""Ablation: physical (unidirectional) isolation of management tasks
(DESIGN.md §4.6).

Management tasks moved back onto shared cores (TDX-module-style logical
isolation) leak to a prime+probe observer; on the EMS private core with
unidirectional coherence the probe is silent."""

from __future__ import annotations

from repro.attacks.controlled_channel import make_secret
from repro.attacks.side_channel import mgmt_microarch_attack
from repro.baselines.base import BaselineTEE, ManagementProfile
from repro.baselines.hypertee_adapter import HyperTEEAdapter
from repro.common.types import AttackOutcome
from repro.eval.report import render_table

#: HyperTEE minus the physical isolation: management tasks execute on
#: cores sharing caches with untrusted software (every other mechanism
#: intact — this is essentially the TDX-module design point).
SHARED_CORE_PROFILE = ManagementProfile(
    name="hypertee-shared-mgmt",
    os_sees_demand_allocations=False,
    os_reads_enclave_ptes=False,
    os_targets_swap=False,
    dynamic_paging=True,
    comm_managed=True,
    attestation_isolated=False,   # <- ablated
    paging_isolated=False,        # <- ablated
)


def run_ablation():
    secret = make_secret(16)
    isolated = mgmt_microarch_attack(HyperTEEAdapter(), secret)
    shared = mgmt_microarch_attack(BaselineTEE(SHARED_CORE_PROFILE), secret)
    return isolated, shared


def test_ablation_isolation(benchmark):
    isolated, shared = benchmark(run_ablation)

    print()
    print(render_table(
        "Ablation — physical vs logical isolation of management tasks",
        ["configuration", "probe accuracy", "outcome", "detail"],
        [["EMS private core (HyperTEE)", f"{isolated.accuracy:.2f}",
          isolated.outcome.value, isolated.detail],
         ["shared cores (logical isolation)", f"{shared.accuracy:.2f}",
          shared.outcome.value, shared.detail]]))

    assert isolated.outcome is AttackOutcome.DEFENDED
    assert shared.outcome is AttackOutcome.LEAKED
    assert shared.accuracy >= 0.95
    assert isolated.accuracy <= 0.6
