"""Ablation: bitmap vs contiguous-range enclave memory isolation
(DESIGN.md §4.5).

The paper argues for the bitmap because it supports *non-contiguous*
enclave memory. This bench fragments physical memory and compares how
much enclave memory a bitmap-based isolator vs a range-register isolator
can still protect: the range isolator is limited to the largest free run,
while the bitmap protects every free frame.
"""

from __future__ import annotations

from repro.common.rng import DeterministicRng
from repro.eval.report import pct, render_table

TOTAL_FRAMES = 4096


def fragment(occupancy: float, seed: int = 11) -> list[bool]:
    """A physical frame map with `occupancy` of frames pinned by the OS."""
    rng = DeterministicRng(seed).stream("frag")
    return [rng.random() < occupancy for _ in range(TOTAL_FRAMES)]


def largest_free_run(pinned: list[bool]) -> int:
    best = run = 0
    for taken in pinned:
        run = 0 if taken else run + 1
        best = max(best, run)
    return best


def run_ablation():
    rows = []
    for occupancy in (0.05, 0.10, 0.20, 0.40):
        pinned = fragment(occupancy)
        free = pinned.count(False)
        bitmap_protectable = free                 # any free frame qualifies
        range_protectable = largest_free_run(pinned)
        rows.append((occupancy, free, bitmap_protectable, range_protectable))
    return rows


def test_ablation_bitmap(benchmark):
    rows = benchmark(run_ablation)

    print()
    print(render_table(
        "Ablation — bitmap vs contiguous-range isolation under fragmentation",
        ["OS occupancy", "free frames", "bitmap protects",
         "range protects", "range efficiency"],
        [[pct(occ, 0), free, bm, rng_, pct(rng_ / free, 1)]
         for occ, free, bm, rng_ in rows]))

    for occupancy, free, bitmap_frames, range_frames in rows:
        # The bitmap always protects the full free set.
        assert bitmap_frames == free
        assert range_frames <= bitmap_frames
    # Under realistic fragmentation the range isolator collapses while
    # the bitmap is unaffected — the paper's scalability argument.
    heavy = rows[-1]
    assert heavy[3] / heavy[1] < 0.05
    light = rows[0]
    assert light[3] / light[1] < 0.50
