"""Fig. 8(b): MemStream latency under memory encryption + integrity.

Paper: 3.1% average latency overhead over 4-64 MB footprints — the worst
case, since MemStream misses constantly and the adder applies only on
the DRAM path."""

from __future__ import annotations

from repro.eval.report import pct, render_table
from repro.workloads.memstream import memstream_points


def compute():
    return [(p.size_mb, p.average_latency(False), p.average_latency(True),
             p.latency_overhead()) for p in memstream_points()]


def test_fig8b(benchmark):
    rows = benchmark(compute)

    print()
    print(render_table(
        "Fig. 8b — MemStream average access latency (cycles)",
        ["size", "Host-Native", "Enclave-M_encrypt", "overhead"],
        [[f"{mb}MB", f"{base:.1f}", f"{enc:.1f}", pct(ovh, 2)]
         for mb, base, enc, ovh in rows]))

    average = sum(ovh for *_, ovh in rows) / len(rows)
    print(f"average overhead: {pct(average, 2)} (paper: 3.1%)")

    assert abs(average * 100 - 3.1) < 0.3
    # Every size individually stays in a tight band around the average.
    assert all(0.02 < ovh < 0.045 for *_, ovh in rows)
    # Larger footprints (more DRAM traffic) never reduce the overhead.
    overheads = [ovh for *_, ovh in rows]
    assert overheads == sorted(overheads)
