"""Ablation: randomized EWB page selection (DESIGN.md §4.3).

A deterministic, OS-targeted swap (SGX-style EWB) reopens the swap
channel; HyperTEE's random, pool-only surrender closes it and also
randomizes the surrendered *count* so swap volume leaks nothing."""

from __future__ import annotations

from repro.attacks.controlled_channel import make_secret, swap_attack
from repro.baselines.catalog import make_baseline
from repro.baselines.hypertee_adapter import HyperTEEAdapter
from repro.common.types import AttackOutcome
from repro.core.config import SystemConfig
from repro.core.system import HyperTEESystem
from repro.eval.report import render_table


def run_ablation():
    secret = make_secret(16)
    randomized = swap_attack(HyperTEEAdapter(), secret)
    targeted = swap_attack(make_baseline("sgx"), secret)

    # Count-randomization evidence: the surrendered volume per round.
    sys_ = HyperTEESystem(SystemConfig(cs_memory_mb=64, ems_memory_mb=4))
    counts = [sys_.swap.ewb(4)[0]["pages"] for _ in range(16)]
    return randomized, targeted, counts


def test_ablation_swap(benchmark):
    randomized, targeted, counts = benchmark(run_ablation)

    print()
    print(render_table(
        "Ablation — EWB random selection vs targeted eviction",
        ["configuration", "attack accuracy", "outcome"],
        [["random pool surrender (HyperTEE)", f"{randomized.accuracy:.2f}",
          randomized.outcome.value],
         ["OS-targeted eviction (SGX-style)", f"{targeted.accuracy:.2f}",
          targeted.outcome.value]]))
    print(f"pages surrendered per EWB(4) round: {counts}")

    assert randomized.outcome is AttackOutcome.DEFENDED
    assert targeted.outcome is AttackOutcome.LEAKED
    # The surrendered count varies round to round (volume obfuscation)
    # and always covers the request.
    assert len(set(counts)) > 1
    assert all(count >= 4 for count in counts)
