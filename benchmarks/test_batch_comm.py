"""PR-3 perf baseline: batched EMCall fast path vs the scalar path.

Not a paper figure — this is the repo's own regression rig for the
batching optimisation (docs/performance.md). The committed artifact
``BENCH_pr3.json`` is the pinned output of :func:`run_batch_comm_bench`
at the default seed; ``python -m repro bench --out BENCH_pr3.json``
refreshes it. The acceptance bar: the modeled per-request communication
overhead (gate dispatch + both fabric transfer legs + jitter) must drop
by >= 1.5x at batch size 8 on the multi-enclave alloc-heavy workload.
"""

from __future__ import annotations

import json
import pathlib

from repro.eval.bench import (
    TARGET_COMM_REDUCTION_AT_8,
    render_report,
    run_batch_comm_bench,
)

ARTIFACT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_pr3.json"


def test_batch_comm_reduction(benchmark):
    report = benchmark(run_batch_comm_bench)

    print()
    print(render_report(report))

    summary = report["summary"]
    by_size = {p["batch_size"]: p for p in report["series"]}

    # The headline acceptance bar: >= 1.5x comm reduction at batch 8.
    assert summary["comm_reduction_at_8"] >= TARGET_COMM_REDUCTION_AT_8
    assert summary["meets_target"]

    # Reduction is monotone in batch size: every extra element amortizes
    # the fixed doorbell/dispatch cost a bit further.
    reductions = [summary["comm_reduction"][str(p["batch_size"])]
                  for p in report["series"]]
    assert reductions == sorted(reductions)
    assert reductions[0] == 1.0  # scalar vs itself

    # Every series issued the same number of primitive requests; only the
    # envelope count (doorbells) shrank.
    requests = {p["requests"] for p in report["series"]}
    assert len(requests) == 1
    assert by_size[8]["invocations"] * 8 == by_size[8]["requests"]

    # Comm overhead can never amortize below the per-element marginal
    # costs, so the reduction is bounded (sanity on the cycle model).
    assert summary["comm_reduction"]["32"] < 20.0


def test_bench_is_deterministic():
    """Same seed, same report — the artifact is reproducible from git."""
    small = dict(enclaves=2, rounds=1, regions_per_round=8,
                 batch_sizes=(1, 4, 8))
    assert run_batch_comm_bench(**small) == run_batch_comm_bench(**small)


def test_committed_artifact_matches_regeneration():
    """BENCH_pr3.json in git is exactly what the default bench produces.

    If the cycle model legitimately changes, refresh the artifact with
    ``python -m repro bench --out BENCH_pr3.json`` and commit it.
    """
    committed = json.loads(ARTIFACT.read_text(encoding="utf-8"))
    assert committed == run_batch_comm_bench(seed=committed["seed"])
