"""Model validation: micro-simulation vs the analytic overhead formulas.

Not a paper artifact — a methodological check. The Fig. 10 bench computes
bitmap overhead analytically from characterized TLB miss rates; here the
same overhead is *measured* by replaying access traces through the real
TLB/PTW models with bitmap checking on and off. The analytic formula,
evaluated at the measured miss rate, must agree with the measurement
across locality regimes — evidence that the calibrated model is the
right abstraction of the simulated hardware.
"""

from __future__ import annotations

from repro.common.constants import PAGE_SIZE
from repro.core.config import SystemConfig
from repro.core.system import HyperTEESystem
from repro.eval.calibration import BITMAP_SERIAL_CYCLES
from repro.eval.report import pct, render_table
from repro.workloads.executor import measure_bitmap_overhead
from repro.workloads.trace import hotspot_trace, random_trace, sequential_trace

BASE = 0x10000000
FOOTPRINT = 200 * PAGE_SIZE

REGIMES = {
    "sequential": lambda: sequential_trace(BASE, FOOTPRINT, passes=1),
    "hotspot": lambda: hotspot_trace(BASE, FOOTPRINT, accesses=3000, seed=2),
    "random": lambda: random_trace(BASE, FOOTPRINT, accesses=3000, seed=2),
}


def run_validation():
    rows = []
    for name, factory in REGIMES.items():
        with_bm = HyperTEESystem(SystemConfig(cs_memory_mb=64,
                                              ems_memory_mb=4))
        without_bm = HyperTEESystem(SystemConfig(cs_memory_mb=64,
                                                 ems_memory_mb=4,
                                                 bitmap_checking=False))
        measured, stats = measure_bitmap_overhead(
            with_bm, without_bm, factory, BASE, FOOTPRINT)
        extra = stats.tlb_miss_rate * BITMAP_SERIAL_CYCLES
        predicted = extra / (stats.avg_cycles_per_access - extra)
        rows.append((name, stats.tlb_miss_rate, measured, predicted))
    return rows


def test_validation(benchmark):
    rows = benchmark(run_validation)

    print()
    print(render_table(
        "Validation — measured vs analytic bitmap overhead",
        ["trace regime", "measured TLB miss", "measured overhead",
         "analytic prediction"],
        [[name, pct(miss, 2), pct(measured, 3), pct(predicted, 3)]
         for name, miss, measured, predicted in rows]))

    for name, miss_rate, measured, predicted in rows:
        assert measured == __import__("pytest").approx(predicted, rel=0.08), name
    # The regimes genuinely span the locality spectrum.
    rates = {name: miss for name, miss, *_ in rows}
    assert rates["sequential"] < rates["hotspot"] < rates["random"]
