"""Fig. 8(a): EALLOC vs host malloc latency, 128 KiB - 2 MiB.

Paper: enclave allocation shows 6.3%..49.7% overhead over malloc,
attributed to primitive transmission plus the weaker EMS core — the
fixed transport cost dominates small requests."""

from __future__ import annotations

from repro.eval.report import pct, render_table
from repro.hw.core import EMS_MEDIUM
from repro.workloads import costs

SIZES_KB = (128, 256, 512, 1024, 2048)
REPEATS = 1000  # as in the paper's methodology


def compute():
    rows = []
    for kb in SIZES_KB:
        pages = kb * 1024 // 4096
        host = costs.host_malloc_cycles(pages) * REPEATS
        enclave = costs.ealloc_cycles(pages, EMS_MEDIUM) * REPEATS
        rows.append((kb, host / REPEATS, enclave / REPEATS,
                     enclave / host - 1.0))
    return rows


def test_fig8a(benchmark):
    rows = benchmark(compute)

    print()
    print(render_table(
        "Fig. 8a — allocation latency (cycles, x1000 reps averaged)",
        ["size", "malloc", "EALLOC", "overhead"],
        [[f"{kb}KB", f"{host:.0f}", f"{enclave:.0f}", pct(ovh, 1)]
         for kb, host, enclave, ovh in rows]))

    overheads = {kb: ovh for kb, _, _, ovh in rows}
    # Band endpoints from the paper.
    assert abs(overheads[128] * 100 - 49.7) < 2.0
    assert abs(overheads[2048] * 100 - 6.3) < 1.0
    # All sizes stay inside the published band.
    assert all(0.05 < ovh < 0.52 for ovh in overheads.values())
    # Monotone: fixed transmission cost dominates small allocations.
    ordered = [overheads[kb] for kb in SIZES_KB]
    assert ordered == sorted(ordered, reverse=True)
    # EALLOC is always slower than malloc (never negative overhead).
    assert all(ovh > 0 for ovh in overheads.values())
