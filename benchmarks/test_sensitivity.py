"""Sensitivity analyses around the paper's fixed design parameters.

Beyond the published figures: where the conclusions bend when the
tunables move — pool sizing vs residual allocation-channel events, EMS
load headroom, and the jitter window's noise floor.
"""

from __future__ import annotations

from repro.eval.report import render_table
from repro.eval.sweeps import jitter_sweep, pool_exposure_sweep, slo_load_sweep


def test_pool_exposure_sensitivity(benchmark):
    points = benchmark(pool_exposure_sweep)

    print()
    print(render_table(
        "Sensitivity — pool size vs OS-visible refill events "
        "(2048 pages of enclave demand)",
        ["initial pool (pages)", "refill events", "frames requested"],
        [[p.initial_pages, p.refill_events, p.frames_requested]
         for p in points]))

    by_size = {p.initial_pages: p for p in points}
    # Bigger pools never increase the residual event count. (The count
    # does not collapse to 1 even at 2048 pages: the randomized usage
    # threshold triggers *proactive* refills before exhaustion — which
    # is the point: refills are decoupled from demand.)
    refills = [p.refill_events for p in points]
    assert refills == sorted(refills, reverse=True)
    assert by_size[2048].refill_events <= 4
    # Even the smallest pool leaks only bulk events, far below the 256
    # per-demand events an SGX-style design would expose here.
    assert by_size[64].refill_events < 40


def test_slo_load_sensitivity(benchmark):
    points = benchmark(slo_load_sweep)

    print()
    print(render_table(
        "Sensitivity — offered load vs p99 (64 CS cores, 2x medium EMS)",
        ["think time", "p99 factor", "SLO met"],
        [[f"{p.think_time_seconds * 1e3:.1f}ms", f"{p.p99_factor:.2f}x",
          "yes" if p.slo_met else "NO"] for p in points]))

    # Latency grows monotonically with offered load.
    factors = [p.p99_factor for p in points]
    assert factors == sorted(factors)
    # The paper's operating point (10 ms) holds with headroom...
    assert next(p for p in points
                if p.think_time_seconds == 10e-3).slo_met
    # ...and the sweep finds the saturation knee (4x the paper's load).
    assert not points[-1].slo_met


def test_jitter_noise_floor(benchmark):
    points = benchmark(jitter_sweep)

    print()
    print(render_table(
        "Sensitivity — EMCall jitter window vs observed latency spread",
        ["window (cycles)", "latency spread (cycles)"],
        [[p.window_cycles, p.latency_spread] for p in points]))

    by_window = {p.window_cycles: p for p in points}
    # No jitter -> deterministic latency: a timing observer's dream.
    assert by_window[0].latency_spread == 0
    # The spread grows with the window — the attacker's noise floor.
    spreads = [p.latency_spread for p in points]
    assert spreads == sorted(spreads)
    assert by_window[800].latency_spread > by_window[50].latency_spread
