"""Fig. 9: impact of all enclave memory management on wolfSSL.

Paper: taking allocation + encryption + integrity together, wolfSSL in
enclave mode pays 0.9% over Host-Native."""

from __future__ import annotations

from repro.eval.report import pct, render_table
from repro.eval.scenarios import ENCLAVE_M_ENCRYPT
from repro.workloads.runner import host_baseline, run_workload
from repro.workloads.rv8 import WOLFSSL


def compute():
    base = host_baseline(WOLFSSL)
    run = run_workload(WOLFSSL, ENCLAVE_M_ENCRYPT)
    alloc_delta = run.allocation_cycles - base.allocation_cycles
    return {
        "base_total": base.total_cycles,
        "alloc_delta": alloc_delta,
        "encryption": run.encryption_cycles,
        "mm_overhead": (alloc_delta + run.encryption_cycles) / base.total_cycles,
    }


def test_fig9(benchmark):
    result = benchmark(compute)

    print()
    print(render_table(
        "Fig. 9 — wolfSSL memory-management overhead",
        ["component", "cycles", "share of Host-Native"],
        [["EALLOC vs malloc", f"{result['alloc_delta']:.3e}",
          pct(result["alloc_delta"] / result["base_total"], 2)],
         ["encryption+integrity", f"{result['encryption']:.3e}",
          pct(result["encryption"] / result["base_total"], 2)],
         ["total", "-", pct(result["mm_overhead"], 2)]]))
    print("paper: 0.9% total")

    assert abs(result["mm_overhead"] * 100 - 0.9) < 0.2
    # Both components contribute, neither dominates entirely.
    assert result["alloc_delta"] > 0 and result["encryption"] > 0
