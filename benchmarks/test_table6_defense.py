"""Table VI: defense capability against management-task attacks.

The matrix is *computed*: every attack program runs against every TEE
model (HyperTEE through the live system), and the outcomes must equal
the published table cell for cell.
"""

from __future__ import annotations

from repro.attacks.harness import (
    CHANNELS,
    defense_matrix,
    expected_paper_matrix,
    matrix_outcomes,
)
from repro.eval.report import render_table

_GLYPH = {"leaked": "O", "defended": "#", "partial": "~"}


def test_table6(benchmark):
    matrix = benchmark(defense_matrix)
    outcomes = matrix_outcomes(matrix)
    expected = expected_paper_matrix()

    print()
    print(render_table(
        "Table VI — defense matrix (O=leaked  #=defended  ~=partial)",
        ["TEE", *CHANNELS],
        [[tee, *(_GLYPH[outcomes[tee][ch].value] for ch in CHANNELS)]
         for tee in expected]))

    mismatches = [
        (tee, channel)
        for tee in expected for channel in CHANNELS
        if outcomes[tee][channel] is not expected[tee][channel]
    ]
    assert mismatches == []
