"""Fig. 6: efficiency of resolving concurrent primitive requests.

Paper conclusions: 1 in-order EMS core suffices for a <=4-core CS; 2
in-order for 16; 2 OoO for 32/64 (achieving SLO similar to a quad-core
EMS, so dual is adequate)."""

from __future__ import annotations

from repro.eval.report import render_table
from repro.eval.slo import ADEQUATE_EMS, meets_slo, simulate

GRID = [
    (4, 1, "weak"), (4, 1, "medium"),
    (16, 1, "weak"), (16, 2, "weak"), (16, 2, "medium"),
    (32, 1, "medium"), (32, 2, "medium"), (32, 4, "medium"),
    (64, 1, "medium"), (64, 2, "medium"), (64, 4, "medium"),
]


def run_grid():
    return {(cs, n, name): simulate(cs, n, name) for cs, n, name in GRID}


def test_fig6(benchmark):
    results = benchmark(run_grid)

    print()
    cdf_factors = (1.5, 2.0, 3.0, 6.0, 12.0)
    print(render_table(
        "Fig. 6 — SLO vs EMS configuration "
        "(CDF: fraction of primitives resolved within x times baseline)",
        ["CS cores", "EMS", "p99",
         *[f"<={x:g}x" for x in cdf_factors], "SLO met"],
        [[cs, f"{n}x{name}", f"{r.p99_factor():.2f}x",
          *[f"{frac * 100:.0f}%" for _, frac in r.cdf_curve(list(cdf_factors))],
          "yes" if meets_slo(r) else "NO"]
         for (cs, n, name), r in results.items()]))

    # Paper's adequacy conclusions hold.
    for cs_cores, (ems_cores, ems_name) in ADEQUATE_EMS.items():
        assert meets_slo(results.get((cs_cores, ems_cores, ems_name))
                         or simulate(cs_cores, ems_cores, ems_name)), cs_cores

    # A single OoO core does NOT meet the SLO for the 64-core machine...
    assert not meets_slo(results[(64, 1, "medium")])
    # ...while dual achieves SLO like quad does (the Fig. 6 takeaway).
    dual, quad = results[(64, 2, "medium")], results[(64, 4, "medium")]
    assert meets_slo(dual) and meets_slo(quad)
    # More EMS cores pull the curve toward the y-axis.
    assert quad.p99_factor() <= dual.p99_factor() <= results[(64, 1, "medium")].p99_factor()
