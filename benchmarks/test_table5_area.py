"""Table V: EMS area overhead across SoC sizes (TSMC 7nm flow -> area
model; see DESIGN.md substitutions)."""

from __future__ import annotations

from repro.eval.area import TABLE5_OVERHEAD_PCT, table5_rows
from repro.eval.report import render_table


def test_table5(benchmark):
    rows = benchmark(table5_rows)

    print()
    print(render_table(
        "Table V — EMS area overhead",
        ["CS cores", "CS mm^2", "EMS config", "EMS mm^2",
         "overhead", "paper"],
        [[r.cs_cores, f"{r.cs_area:.0f}",
          f"{r.ems_cores}x{r.ems_name}", f"{r.ems_area:.2f}",
          f"{r.overhead_pct:.2f}%", f"{TABLE5_OVERHEAD_PCT[r.cs_cores]}%"]
         for r in rows]))

    for row in rows:
        published = TABLE5_OVERHEAD_PCT[row.cs_cores]
        assert abs(row.overhead_pct - published) < 0.06, row.cs_cores
    # Headline: below 1% everywhere; 64-core case is the cheapest.
    assert all(r.overhead_pct <= 1.0 for r in rows)
    assert min(rows, key=lambda r: r.overhead_pct).cs_cores == 64
