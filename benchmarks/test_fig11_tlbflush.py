"""Fig. 11: TLB-flush overhead on enclaves vs context-switch frequency.

Paper: sweeping miniz memory 2-32 MB and switch frequency 100-400 Hz,
the overhead stays at or below 1.81% (the 32 MB / 400 Hz corner).
Additionally (Section VII-C text): bitmap-update flushes cost non-enclave
SPEC below 0.7% at the measured 16.72 flushes per billion instructions.
"""

from __future__ import annotations

from repro.eval.overhead import (
    bitmap_update_flush_overhead,
    context_switch_flush_overhead,
)
from repro.eval.report import pct, render_table

MEMORY_MB = (2, 4, 8, 16, 32)
FREQUENCIES = (100, 150, 200, 400)


def compute():
    return {(mb, hz): context_switch_flush_overhead(mb, hz)
            for mb in MEMORY_MB for hz in FREQUENCIES}


def test_fig11(benchmark):
    grid = benchmark(compute)

    print()
    print(render_table(
        "Fig. 11 — TLB flush overhead (miniz)",
        ["memory", *[f"{hz}Hz" for hz in FREQUENCIES]],
        [[f"{mb}MB", *[pct(grid[(mb, hz)], 2) for hz in FREQUENCIES]]
         for mb in MEMORY_MB]))
    host_side = bitmap_update_flush_overhead()
    print(f"bitmap-update flushes on non-enclave SPEC: {pct(host_side, 2)} "
          f"(paper: <0.7%)")

    # The paper's stated worst corner.
    worst = grid[(32, 400)]
    assert worst <= 0.0181 + 1e-6
    assert worst == max(grid.values())
    # Monotone in frequency at fixed memory.
    for mb in MEMORY_MB:
        series = [grid[(mb, hz)] for hz in FREQUENCIES]
        assert series == sorted(series)
    # Saturation: beyond TLB reach (1024 pages = 4 MB) the curve flattens.
    assert grid[(8, 400)] == grid[(32, 400)]
    assert grid[(2, 400)] < grid[(8, 400)]
    # Non-enclave bitmap-update cost below the paper's bound.
    assert host_side < 0.007
