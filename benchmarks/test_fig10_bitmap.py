"""Fig. 10: bitmap-checking overhead on non-enclave SPEC CPU2017.

Paper: 1.9% average; xalancbmk_r is the outlier at 4.6% because its
D-TLB miss rate (0.8%) is 4x+ everyone else's."""

from __future__ import annotations

from repro.eval.report import pct, render_table
from repro.eval.scenarios import HOST_BITMAP
from repro.workloads.runner import host_baseline, run_workload
from repro.workloads.spec import spec_suite


def compute():
    return {p.name: run_workload(p, HOST_BITMAP).overhead_vs(host_baseline(p))
            for p in spec_suite()}


def test_fig10(benchmark):
    overheads = benchmark(compute)
    average = sum(overheads.values()) / len(overheads)

    print()
    print(render_table(
        "Fig. 10 — bitmap checking on SPEC CPU2017 int (Host-Bitmap)",
        ["benchmark", "overhead"],
        [[name, pct(ovh, 2)] for name, ovh in overheads.items()]))
    print(f"average: {pct(average, 2)} (paper: 1.9%)")

    assert abs(average * 100 - 1.9) < 0.2
    # The xalancbmk outlier, at the paper's value.
    assert abs(overheads["xalancbmk_r"] * 100 - 4.6) < 0.3
    assert overheads["xalancbmk_r"] == max(overheads.values())
    # High locality benchmarks are nearly free.
    assert overheads["exchange2_r"] < 0.005
    # Nothing exceeds the outlier; everything is positive.
    assert all(0 < ovh <= overheads["xalancbmk_r"]
               for ovh in overheads.values())
