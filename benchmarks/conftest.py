"""Benchmark harness conventions.

Every file here regenerates one table or figure from the paper's
evaluation section: it computes the same rows/series through the model
(timed by pytest-benchmark) and asserts the paper's *shape* — who wins,
by what factor, where crossovers fall. Run with::

    pytest benchmarks/ --benchmark-only -s

to see the regenerated tables.
"""

from __future__ import annotations
