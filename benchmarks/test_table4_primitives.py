"""Table IV: execution time of enclave primitives vs Host-Native.

Paper: without the crypto engine, primitives cost 10.4% of runtime on
average (7.8% in EMEAS alone); with it, 2.5% (EMEAS 0.1%).
"""

from __future__ import annotations

from repro.eval.regenerate import table4_rows
from repro.eval.report import pct, render_table

#: Paper Table IV: (noncrypto all, noncrypto EMEAS, crypto all, crypto EMEAS).
PAPER = {
    "aes": (6.8, 5.1, 1.6, 0.06),
    "dhrystone": (19.0, 14.3, 4.5, 0.18),
    "miniz": (8.1, 6.1, 1.9, 0.08),
    "norx": (10.4, 7.8, 2.5, 0.10),
    "primes": (5.1, 3.9, 1.2, 0.05),
    "qsort": (2.8, 2.1, 0.7, 0.03),
    "sha512": (10.8, 8.1, 2.6, 0.10),
    "wolfssl": (19.9, 15.0, 4.7, 0.19),
}


def compute_rows() -> dict[str, tuple[float, float, float, float]]:
    # The canonical computation lives in repro.eval.regenerate so the
    # CLI table, this bench, and the golden pin can never diverge.
    return table4_rows()


def test_table4(benchmark):
    rows = benchmark(compute_rows)

    print()
    print(render_table(
        "Table IV — primitive time vs Host-Native",
        ["workload", "noncrypto all", "noncrypto EMEAS",
         "crypto all", "crypto EMEAS", "paper (nc-all/nc-emeas/c-all/c-emeas)"],
        [[name, pct(r[0], 1), pct(r[1], 1), pct(r[2], 1), pct(r[3], 2),
          "/".join(str(v) for v in PAPER[name])]
         for name, r in rows.items()]))

    averages = [sum(r[i] for r in rows.values()) / len(rows) for i in range(4)]
    print(f"averages: {pct(averages[0],1)} {pct(averages[1],1)} "
          f"{pct(averages[2],1)} {pct(averages[3],2)} "
          f"(paper: 10.4% 7.8% 2.5% 0.10%)")

    # Shape assertions against the published table.
    for name, (nc_all, nc_em, c_all, c_em) in rows.items():
        paper = PAPER[name]
        assert abs(nc_all * 100 - paper[0]) < 0.5, name
        assert abs(nc_em * 100 - paper[1]) < 0.5, name
        assert abs(c_all * 100 - paper[2]) < 0.6, name
        assert abs(c_em * 100 - paper[3]) < 0.05, name
    # The crypto engine collapses EMEAS by ~two orders of magnitude.
    assert averages[1] / averages[3] > 50
    # Averages land on the paper's headline numbers.
    assert abs(averages[0] * 100 - 10.4) < 0.5
    assert abs(averages[2] * 100 - 2.5) < 0.5
