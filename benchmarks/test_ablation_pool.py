"""Ablation: the enclave memory pool (DESIGN.md §4.1-4.2).

Remove the pool (demand allocations go straight to the CS OS, as in SGX)
and the allocation-based controlled channel reopens completely. With the
pool, the OS log contains only rare bulk refills whose *timing* is
protected by the randomized enlarge threshold.
"""

from __future__ import annotations

from repro.attacks.controlled_channel import allocation_attack, make_secret
from repro.baselines.base import BaselineTEE, ManagementProfile
from repro.baselines.hypertee_adapter import HyperTEEAdapter
from repro.common.types import AttackOutcome
from repro.eval.report import render_table

#: HyperTEE with the pool ripped out: per-demand allocations become
#: OS-visible; every other mechanism stays.
NO_POOL_PROFILE = ManagementProfile(
    name="hypertee-no-pool",
    os_sees_demand_allocations=True,   # <- the ablated property
    os_reads_enclave_ptes=False,
    os_targets_swap=False,
    dynamic_paging=True,
    comm_managed=True,
    attestation_isolated=True,
    paging_isolated=True,
)


def run_ablation():
    secret = make_secret(16)
    with_pool = allocation_attack(HyperTEEAdapter(), secret)
    without_pool = allocation_attack(BaselineTEE(NO_POOL_PROFILE), secret)

    # Pool event-rate evidence: how many OS-visible allocation events a
    # 24-page victim run generates.
    adapter = HyperTEEAdapter()
    victim = adapter.new_victim(heap_pages=24)
    log_before = len(adapter.tee.system.os.allocation_log)
    for page in range(24):
        adapter.victim_touch(victim, page)
    pool_events = len(adapter.tee.system.os.allocation_log) - log_before
    return with_pool, without_pool, pool_events


def test_ablation_pool(benchmark):
    with_pool, without_pool, pool_events = benchmark(run_ablation)

    print()
    print(render_table(
        "Ablation — enclave memory pool vs direct OS allocation",
        ["configuration", "attack accuracy", "outcome"],
        [["with pool (HyperTEE)", f"{with_pool.accuracy:.2f}",
          with_pool.outcome.value],
         ["without pool", f"{without_pool.accuracy:.2f}",
          without_pool.outcome.value]]))
    print(f"OS-visible events for 24 demand faults with pool: {pool_events}")

    assert with_pool.outcome is AttackOutcome.DEFENDED
    assert without_pool.outcome is AttackOutcome.LEAKED
    assert without_pool.accuracy == 1.0
    # 24 demand faults produce at most a couple of bulk refills.
    assert pool_events <= 2


def test_randomized_threshold_hides_refill_trigger(benchmark):
    """Ablation §4.2: the enlarge threshold is re-randomized per refill,
    so refill points do not expose a fixed usage ratio."""

    def collect_thresholds():
        from repro.common.rng import DeterministicRng
        from repro.cs.os import CSOperatingSystem
        from repro.ems.memory_pool import EnclaveMemoryPool
        from repro.hw.memory import PhysicalMemory

        memory = PhysicalMemory(64 * 1024 * 1024)
        os_ = CSOperatingSystem(memory, first_free_frame=16)
        pool = EnclaveMemoryPool(os_, memory, DeterministicRng(7),
                                 initial_pages=64, enlarge_pages=64)
        thresholds = []
        for _ in range(12):
            pool.take(48)
            thresholds.append(pool._threshold)
        return thresholds

    thresholds = benchmark(collect_thresholds)
    print(f"\nobserved thresholds: "
          f"{', '.join(f'{t:.3f}' for t in sorted(set(thresholds)))}")
    assert len(set(thresholds)) >= 6  # the trigger genuinely moves
