"""Fig. 12: enclave communication — accelerator and NIC scenarios.

Paper: eliminating software (de/en)cryption on the enclave<->device path,
HyperTEE speeds up ResNet50 by >4.0x (crypto was >74.7% of conventional
time), MobileNet by >3.3x, the MLPs by >27.7x, and NIC streaming by ~50x
(crypto >98% of transmission time)."""

from __future__ import annotations

from repro.eval.report import pct, render_table, times
from repro.workloads.dnn import (
    ALL_DNN_MODELS,
    MLP_MODELS,
    conventional_timing,
    hypertee_timing,
    speedup,
)
from repro.workloads.nic import NICTransfer


def compute():
    rows = []
    for model in ALL_DNN_MODELS:
        conv = conventional_timing(model)
        hyper = hypertee_timing(model)
        rows.append((model.name, conv.total_seconds, conv.crypto_share,
                     hyper.total_seconds, speedup(model)))
    nic = NICTransfer(total_bytes=100e6)
    rows.append(("nic-stream", nic.conventional_seconds(), nic.crypto_share(),
                 nic.hypertee_seconds(), nic.speedup()))
    return rows


def test_fig12(benchmark):
    rows = benchmark(compute)

    print()
    print(render_table(
        "Fig. 12 — enclave communication performance",
        ["workload", "conventional (s)", "crypto share",
         "HyperTEE (s)", "speedup"],
        [[name, f"{conv:.4f}", pct(share, 1), f"{hyper:.4f}", times(spd)]
         for name, conv, share, hyper, spd in rows]))

    by_name = {name: (share, spd) for name, _, share, _, spd in rows}

    # ResNet50: crypto >= 74.7% of conventional time; speedup > 4.0x.
    assert by_name["resnet50"][0] > 0.747
    assert by_name["resnet50"][1] > 4.0
    # MobileNet > 3.3x.
    assert by_name["mobilenet"][1] > 3.3
    # Every MLP > 27.7x (fewer layers -> higher crypto share).
    for mlp in MLP_MODELS:
        assert by_name[mlp.name][1] > 27.7, mlp.name
        assert by_name[mlp.name][0] > by_name["resnet50"][0]
    # NIC: crypto >= 98% of transmission time; ~50x.
    assert by_name["nic-stream"][0] >= 0.979
    assert abs(by_name["nic-stream"][1] - 50.0) < 1.0
    # Ordering: MLPs > mobilenet-vs-resnet relation per compute share.
    assert min(by_name[m.name][1] for m in MLP_MODELS) > by_name["resnet50"][1]
