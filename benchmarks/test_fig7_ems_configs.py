"""Fig. 7: enclave performance overhead per EMS core configuration.

Paper: weak 5.7%, medium 2.0%, strong 1.9% average over RV8 + wolfSSL;
medium beats weak by 3.7 points while strong buys only 0.1 more —
management code does not need an aggressive core."""

from __future__ import annotations

from repro.eval.report import pct, render_table
from repro.eval.scenarios import ENCLAVE_FULL
from repro.hw.core import EMS_MEDIUM, EMS_STRONG, EMS_WEAK
from repro.workloads.runner import host_baseline, run_workload
from repro.workloads.rv8 import rv8_suite

PAPER_AVG = {"weak": 5.7, "medium": 2.0, "strong": 1.9}


def compute():
    out = {}
    for ems, label in ((EMS_WEAK, "weak"), (EMS_MEDIUM, "medium"),
                       (EMS_STRONG, "strong")):
        per_workload = {
            p.name: run_workload(p, ENCLAVE_FULL, ems).overhead_vs(
                host_baseline(p))
            for p in rv8_suite()
        }
        out[label] = per_workload
    return out


def test_fig7(benchmark):
    overheads = benchmark(compute)
    averages = {label: sum(v.values()) / len(v)
                for label, v in overheads.items()}

    print()
    workloads = list(overheads["medium"])
    print(render_table(
        "Fig. 7 — enclave overhead by EMS config (vs Host-Native)",
        ["workload", "weak", "medium", "strong"],
        [[name, pct(overheads["weak"][name], 1),
          pct(overheads["medium"][name], 1),
          pct(overheads["strong"][name], 1)] for name in workloads]))
    print("averages: " + "  ".join(
        f"{label}={pct(avg, 2)} (paper {PAPER_AVG[label]}%)"
        for label, avg in averages.items()))

    # Averages land near the paper's bars.
    assert abs(averages["weak"] * 100 - 5.7) < 0.4
    assert abs(averages["medium"] * 100 - 2.0) < 0.3
    assert abs(averages["strong"] * 100 - 1.9) < 0.3
    # The paper's two observations about the gaps.
    medium_gain = averages["weak"] - averages["medium"]
    strong_gain = averages["medium"] - averages["strong"]
    assert medium_gain > 0.03          # medium >> weak (3.7 points)
    assert strong_gain < 0.002         # strong ~ medium (0.1 point)
    # Every workload individually prefers medium over weak.
    assert all(overheads["weak"][n] > overheads["medium"][n]
               for n in workloads)
