"""Setup shim for legacy editable installs (no `wheel` in this env)."""

from setuptools import setup

setup()
