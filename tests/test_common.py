"""Common types, packets, RNG streams, and the error hierarchy."""

from __future__ import annotations

import pytest

from repro.common.packets import PrimitiveRequest, PrimitiveResponse, ResponseStatus
from repro.common.rng import DeterministicRng
from repro.common.types import (
    PRIMITIVE_PRIVILEGE,
    AccessType,
    Permission,
    Primitive,
    Privilege,
)
from repro import errors


def test_privilege_ordering():
    assert Privilege.USER < Privilege.SUPERVISOR < Privilege.MACHINE


def test_permission_allows():
    assert Permission.RW.allows(AccessType.READ)
    assert Permission.RW.allows(AccessType.WRITE)
    assert not Permission.RW.allows(AccessType.EXECUTE)
    assert Permission.RX.allows(AccessType.EXECUTE)
    assert not Permission.NONE.allows(AccessType.READ)


def test_permission_composition():
    assert Permission.READ | Permission.WRITE == Permission.RW
    assert Permission.RWX & Permission.READ


def test_table2_primitive_count():
    """Table II defines exactly 16 primitives in four groups."""
    assert len(Primitive) == 16
    assert len(PRIMITIVE_PRIVILEGE) == 16


def test_table2_privilege_examples():
    """Spot-check Table II's privilege column."""
    assert PRIMITIVE_PRIVILEGE[Primitive.ECREATE] is Privilege.SUPERVISOR
    assert PRIMITIVE_PRIVILEGE[Primitive.EEXIT] is Privilege.USER
    assert PRIMITIVE_PRIVILEGE[Primitive.EALLOC] is Privilege.USER
    assert PRIMITIVE_PRIVILEGE[Primitive.EWB] is Privilege.SUPERVISOR
    assert PRIMITIVE_PRIVILEGE[Primitive.EATTEST] is Privilege.USER


def test_request_arg_accessor():
    request = PrimitiveRequest(1, Primitive.EALLOC, enclave_id=2,
                               privilege=Privilege.USER,
                               args={"pages": 4})
    assert request.arg("pages") == 4
    assert request.arg("missing", "default") == "default"


def test_response_ok_property():
    assert PrimitiveResponse(1, ResponseStatus.OK).ok
    assert not PrimitiveResponse(1, ResponseStatus.ERROR).ok


def test_rng_streams_independent():
    """Drawing from one stream must not perturb another."""
    a = DeterministicRng(7)
    b = DeterministicRng(7)
    a.randint(0, 100, stream="x")  # extra draw on an unrelated stream
    assert a.randint(0, 10**9, stream="y") == b.randint(0, 10**9, stream="y")


def test_rng_reproducible_per_seed():
    assert (DeterministicRng(7).randbytes(8, stream="s")
            == DeterministicRng(7).randbytes(8, stream="s"))
    assert (DeterministicRng(7).randbytes(8, stream="s")
            != DeterministicRng(8).randbytes(8, stream="s"))


def test_error_hierarchy():
    """Catchability contracts the EMS runtime relies on."""
    assert issubclass(errors.SanityCheckError, errors.EMSError)
    assert issubclass(errors.ConnectionNotAuthorized, errors.SharedMemoryError)
    assert issubclass(errors.SharedMemoryError, errors.EMSError)
    assert issubclass(errors.BitmapViolation, errors.HardwareFault)
    assert issubclass(errors.PrivilegeViolation, errors.EMCallError)
    assert issubclass(errors.EMSError, errors.HyperTEEError)
    # PageFault carries its faulting address.
    fault = errors.PageFault(0x1234000)
    assert fault.vaddr == 0x1234000


def test_lazy_top_level_exports():
    import repro

    assert repro.SystemConfig is not None
    assert repro.EnclaveConfig is not None
    with pytest.raises(AttributeError):
        repro.NotAThing
