"""Communication-management attacks."""

from __future__ import annotations

from repro.attacks.comm_attack import communication_attack
from repro.baselines.catalog import make_baseline
from repro.baselines.hypertee_adapter import HyperTEEAdapter
from repro.common.types import AttackOutcome


def test_leaks_on_every_baseline():
    """No baseline manages communication: all three attacks land."""
    for name in ("sgx", "sev", "tdx", "trustzone", "keystone"):
        result = communication_attack(make_baseline(name))
        assert result.outcome is AttackOutcome.LEAKED, name


def test_defended_on_hypertee():
    result = communication_attack(HyperTEEAdapter())
    assert result.outcome is AttackOutcome.DEFENDED
    assert result.accuracy == 0.0


def test_hypertee_surface_details():
    """Each of the three attacks is individually blocked, for its own
    reason (bitmap+keys, legal list, DMA whitelist)."""
    surface = HyperTEEAdapter().comm_attack_surface()
    assert surface == {"plaintext_map": False,
                       "unauthorized_attach": False,
                       "rogue_dma": False}
