"""Timing side channel on primitive responses."""

from __future__ import annotations

import statistics

from repro.attacks.controlled_channel import make_secret
from repro.attacks.timing import (
    primitive_timing_attack,
    shared_queue_timing_attack,
)
from repro.common.types import AttackOutcome


def test_shared_queue_design_leaks():
    """Without decoupling + jitter, latency reads the victim's volume."""
    result = shared_queue_timing_attack(make_secret(24))
    assert result.outcome is AttackOutcome.LEAKED
    assert result.accuracy == 1.0


def test_hypertee_latencies_uninformative():
    """On HyperTEE the attacker's latency is independent of the victim:
    the classifier does no better than a balanced-guess baseline."""
    secret = make_secret(24)
    result = primitive_timing_attack(secret)
    assert result.outcome is AttackOutcome.DEFENDED


def test_jitter_is_present():
    """EMCall's polling jitter actually varies response latencies."""
    from repro.common.types import Permission, Primitive
    from repro.core.api import HyperTEE
    from repro.core.enclave import EnclaveConfig

    tee = HyperTEE()
    enclave = tee.launch_enclave(b"jitter-probe",
                                 EnclaveConfig(heap_pages_max=512))
    latencies = []
    with enclave.running():
        for _ in range(24):
            before = tee.primitive_cycles
            tee.invoke_user(Primitive.EALLOC,
                            {"pages": 1, "perm": Permission.RW},
                            enclave.core)
            latencies.append(tee.primitive_cycles - before)
    assert statistics.pstdev(latencies) > 0
    # The jitter spread covers a good share of the configured window.
    from repro.eval.calibration import EMCALL_POLL_JITTER_CYCLES

    assert max(latencies) - min(latencies) <= EMCALL_POLL_JITTER_CYCLES
    assert max(latencies) - min(latencies) > EMCALL_POLL_JITTER_CYCLES / 10
