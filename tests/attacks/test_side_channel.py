"""Microarchitectural side channel on management tasks."""

from __future__ import annotations

from repro.attacks.side_channel import mgmt_microarch_attack
from repro.baselines.catalog import make_baseline
from repro.baselines.hypertee_adapter import HyperTEEAdapter
from repro.common.types import AttackOutcome


def test_leaks_on_sgx():
    """Shared-core management: both tasks observable -> full leak."""
    result = mgmt_microarch_attack(make_baseline("sgx"))
    assert result.outcome is AttackOutcome.LEAKED
    assert result.accuracy >= 0.95


def test_partial_on_sev():
    """PSP isolates attestation, paging stays shared -> partial."""
    result = mgmt_microarch_attack(make_baseline("sev"))
    assert result.outcome is AttackOutcome.PARTIAL
    assert "attestation" in result.detail


def test_partial_on_keystone():
    result = mgmt_microarch_attack(make_baseline("keystone"))
    assert result.outcome is AttackOutcome.PARTIAL


def test_defended_on_hypertee():
    """EMS private core + unidirectional coherence: probe sees silence."""
    result = mgmt_microarch_attack(HyperTEEAdapter())
    assert result.outcome is AttackOutcome.DEFENDED
    assert result.accuracy <= 0.7


def test_hypertee_private_cache_carries_footprint():
    """The management task really runs — its footprint is in the EMS
    private cache, just unreachable from the CS side."""
    adapter = HyperTEEAdapter()
    adapter.run_mgmt_task("attestation", [1, 0, 1, 1])
    assert adapter.private_cache.resident_lines() > 0
    assert adapter.shared_cache.resident_lines() == 0
