"""The full defense matrix must equal the paper's Table VI."""

from __future__ import annotations

import pytest

from repro.attacks.harness import (
    CHANNELS,
    default_factories,
    defense_matrix,
    evaluate_tee,
    expected_paper_matrix,
    matrix_outcomes,
)
from repro.baselines.catalog import BASELINE_PROFILES


@pytest.fixture(scope="module")
def computed():
    return matrix_outcomes(defense_matrix())


def test_all_rows_present(computed):
    assert set(computed) == set(BASELINE_PROFILES) | {"hypertee"}


def test_all_channels_present(computed):
    for row in computed.values():
        assert set(row) == set(CHANNELS)


def test_matrix_matches_paper_exactly(computed):
    """Cell-for-cell agreement with published Table VI."""
    expected = expected_paper_matrix()
    mismatches = [
        (tee, channel, expected[tee][channel].value, computed[tee][channel].value)
        for tee in expected for channel in CHANNELS
        if computed[tee][channel] is not expected[tee][channel]
    ]
    assert mismatches == []


def test_hypertee_defends_everything(computed):
    from repro.common.types import AttackOutcome

    assert all(outcome is AttackOutcome.DEFENDED
               for outcome in computed["hypertee"].values())


def test_evaluate_single_tee():
    results = evaluate_tee(default_factories()["sgx"])
    assert set(results) == set(CHANNELS)
    assert all(r.tee == "sgx" for r in results.values())
