"""Controlled-channel attacks: must LEAK on SGX and be DEFENDED on
HyperTEE — both directions asserted."""

from __future__ import annotations

import pytest

from repro.attacks.controlled_channel import (
    allocation_attack,
    make_secret,
    page_table_attack,
    swap_attack,
)
from repro.baselines.catalog import make_baseline
from repro.baselines.hypertee_adapter import HyperTEEAdapter
from repro.common.types import AttackOutcome


@pytest.fixture(scope="module")
def hypertee() -> HyperTEEAdapter:
    return HyperTEEAdapter()


def test_secret_is_deterministic():
    assert make_secret(8) == make_secret(8)
    assert len(make_secret(12)) == 12


def test_allocation_attack_leaks_on_sgx():
    result = allocation_attack(make_baseline("sgx"))
    assert result.outcome is AttackOutcome.LEAKED
    assert result.accuracy == 1.0


def test_allocation_attack_defended_on_hypertee(hypertee):
    result = allocation_attack(hypertee)
    assert result.outcome is AttackOutcome.DEFENDED
    assert result.accuracy <= 0.7


def test_allocation_attack_defended_on_trustzone():
    """Static carve-out: no demand allocations exist to observe."""
    result = allocation_attack(make_baseline("trustzone"))
    assert result.outcome is AttackOutcome.DEFENDED


def test_page_table_attack_leaks_on_sgx():
    result = page_table_attack(make_baseline("sgx"))
    assert result.outcome is AttackOutcome.LEAKED


def test_page_table_attack_defended_on_tdx():
    """The TDX module owns the secure EPT: PTE channel closed."""
    result = page_table_attack(make_baseline("tdx"))
    assert result.outcome is AttackOutcome.DEFENDED


def test_page_table_attack_defended_on_hypertee(hypertee):
    result = page_table_attack(hypertee)
    assert result.outcome is AttackOutcome.DEFENDED


def test_swap_attack_leaks_on_sev():
    result = swap_attack(make_baseline("sev"))
    assert result.outcome is AttackOutcome.LEAKED


def test_swap_attack_defended_on_hypertee(hypertee):
    result = swap_attack(hypertee)
    assert result.outcome is AttackOutcome.DEFENDED
    assert "untargetable" in result.detail


def test_swap_attack_defended_on_keystone():
    result = swap_attack(make_baseline("keystone"))
    assert result.outcome is AttackOutcome.DEFENDED


def test_attacks_report_tee_name(hypertee):
    assert allocation_attack(hypertee).tee == "hypertee"
    assert page_table_attack(make_baseline("sgx")).tee == "sgx"
