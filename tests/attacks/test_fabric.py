"""On-chip fabric traffic observation (paper Section VIII-C).

An interconnect observer sees the volume of EMS-side fabric transactions
per window, nothing more. Isolated service of a single victim primitive
would make that a channel; HyperTEE's concurrent, primitive-granularity
scheduling mixes many tasks' traffic into every observable window.
"""

from __future__ import annotations

import statistics

from repro.attacks.controlled_channel import make_secret
from repro.attacks.result import outcome_from_accuracy, recovery_accuracy
from repro.common.packets import PrimitiveRequest
from repro.common.types import AttackOutcome, Permission, Primitive, Privilege
from repro.core.config import SystemConfig
from repro.core.enclave import EnclaveConfig
from repro.core.system import HyperTEESystem

LIGHT_PAGES, HEAVY_PAGES = 1, 48


def make_platform(tenants: int) -> tuple[HyperTEESystem, int, list[int]]:
    """A platform with one victim enclave and ``tenants`` co-tenants."""
    sys_ = HyperTEESystem(SystemConfig(cs_memory_mb=96, ems_memory_mb=4))

    def launch(name: str) -> int:
        result, _, _ = sys_.enclaves.ecreate(
            EnclaveConfig(name=name, heap_pages_max=16384))
        enclave_id = result["enclave_id"]
        sys_.enclaves.eadd(enclave_id, name.encode())
        sys_.enclaves.emeas(enclave_id)
        sys_.enclaves.eenter(enclave_id)
        sys_.enclaves.eexit(enclave_id)
        return enclave_id

    victim = launch("victim")
    others = [launch(f"tenant{i}") for i in range(tenants)]
    return sys_, victim, others


def observe_windows(secret: list[int], tenants: int) -> list[int]:
    """One fabric-window reading per secret bit."""
    sys_, victim, others = make_platform(tenants)
    request_id = iter(range(10_000, 100_000))
    rng = sys_.rng.stream("fabric-test")
    windows = []
    for bit in secret:
        sys_.ihub.probe.window()  # reset
        pages = HEAVY_PAGES if bit else LIGHT_PAGES
        sys_.mailbox.push_request(PrimitiveRequest(
            next(request_id), Primitive.EALLOC, victim,
            Privilege.USER, {"pages": pages, "perm": Permission.RW}))
        for tenant in others:
            sys_.mailbox.push_request(PrimitiveRequest(
                next(request_id), Primitive.EALLOC, tenant,
                Privilege.USER, {"pages": rng.randint(1, 128),
                                 "perm": Permission.RW}))
        sys_.ems.pump()  # all requests served in one round: traffic mixes
        windows.append(sys_.ihub.probe.window())
    return windows


def classify(windows: list[int]) -> list[int]:
    """Median-split classifier over window volumes."""
    median = statistics.median(windows)
    return [1 if w > median else 0 for w in windows]


def accuracy_for(secret: list[int], windows: list[int]) -> float:
    """Best-polarity classification accuracy."""
    acc = recovery_accuracy(secret, classify(windows))
    return max(acc, 1.0 - acc)


def test_isolated_service_would_leak():
    """With the victim alone on the EMS, window volume reads the secret —
    the channel is real, which is why mixing matters."""
    secret = make_secret(16)
    windows = observe_windows(secret, tenants=0)
    assert outcome_from_accuracy(accuracy_for(secret, windows)) \
        is AttackOutcome.LEAKED


def test_concurrent_service_defends():
    """With co-tenant primitives mixed into every window, the observer
    cannot recover the secret."""
    secret = make_secret(16)
    windows = observe_windows(secret, tenants=8)
    assert outcome_from_accuracy(accuracy_for(secret, windows)) \
        is not AttackOutcome.LEAKED


def test_probe_sees_counts_only():
    """The probe exposes an integer per window — no addresses, no task
    identity, nothing decodable."""
    sys_, victim, _ = make_platform(0)
    sys_.ihub.probe.record(5)
    value = sys_.ihub.probe.window()
    assert isinstance(value, int)
    assert sys_.ihub.probe.window() == 0  # reading resets the window
