"""The paper's headline claims, as plain tests.

The bench suite regenerates every table and figure; this module distills
the abstract's quantitative claims into fast assertions so a bare
``pytest tests/`` also certifies the reproduction:

* "less than 1% area overhead";
* "2.0% and 1.9% performance overhead on average for enclaves and
  non-enclave workloads";
* the Fig. 12 communication speedups;
* HyperTEE's clean Table VI row against SGX's open one.
"""

from __future__ import annotations

import pytest

from repro.attacks.harness import CHANNELS, default_factories, evaluate_tee
from repro.common.types import AttackOutcome
from repro.eval.area import table5_rows
from repro.eval.scenarios import ENCLAVE_FULL, HOST_BITMAP
from repro.workloads.dnn import MLP_MODELS, RESNET50, speedup
from repro.workloads.nic import NICTransfer
from repro.workloads.runner import host_baseline, run_workload
from repro.workloads.rv8 import rv8_suite
from repro.workloads.spec import spec_suite


def test_area_claim_under_one_percent():
    """Abstract: 'less than 1% area overhead'."""
    assert all(row.overhead_pct <= 1.0 for row in table5_rows())


def test_enclave_overhead_claim_two_percent():
    """Abstract: '2.0% performance overhead on average for enclaves'."""
    overheads = [run_workload(p, ENCLAVE_FULL).overhead_vs(host_baseline(p))
                 for p in rv8_suite()]
    average = sum(overheads) / len(overheads)
    assert average * 100 == pytest.approx(2.0, abs=0.3)


def test_nonenclave_overhead_claim_1_9_percent():
    """Abstract: '1.9% ... for non-enclave workloads' (bitmap checking)."""
    overheads = [run_workload(p, HOST_BITMAP).overhead_vs(host_baseline(p))
                 for p in spec_suite()]
    average = sum(overheads) / len(overheads)
    assert average * 100 == pytest.approx(1.9, abs=0.2)


def test_communication_speedup_claims():
    """Section VII-D: >4.0x ResNet50, >27.7x MLPs, ~50x NIC."""
    assert speedup(RESNET50) > 4.0
    assert all(speedup(m) > 27.7 for m in MLP_MODELS)
    assert NICTransfer(1e8).speedup() == pytest.approx(50.0, abs=1.0)


def test_hypertee_defends_where_sgx_leaks():
    """The Table VI contrast, on the two extreme rows."""
    factories = default_factories()
    hyper = evaluate_tee(factories["hypertee"])
    sgx = evaluate_tee(factories["sgx"])
    for channel in CHANNELS:
        assert hyper[channel].outcome is AttackOutcome.DEFENDED, channel
        assert sgx[channel].outcome is AttackOutcome.LEAKED, channel
