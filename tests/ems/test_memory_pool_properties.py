"""Property-based invariants for the enclave memory pool.

Hypothesis drives random op sequences (take / give_back /
surrender_random) against a small pool and checks the structural
invariants after every step:

* **no double-grant** — a frame is never handed to two live grants, and
  a granted frame never sits on the free list;
* **free ⊆ pool accounting** — ``free + used == capacity`` at all times,
  and every free frame came from the OS under the ``ems-pool`` requestor
  (bulk, demand-decoupled refills only);
* **threshold stays in its band** — the re-randomized enlarge trigger
  never leaves ``[POOL_THRESHOLD_MIN, POOL_THRESHOLD_MAX]``;
* **growth is bounded** — randomized thresholds cannot make the pool
  balloon: capacity stays within the analytic bound implied by the
  minimum threshold plus one enlargement step.

Example counts are bounded (this file runs in tier-1).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.constants import (
    POOL_THRESHOLD_MAX,
    POOL_THRESHOLD_MIN,
)
from repro.common.rng import DeterministicRng
from repro.cs.os import CSOperatingSystem
from repro.ems.memory_pool import EnclaveMemoryPool
from repro.hw.bitmap import EnclaveBitmap
from repro.hw.memory import PhysicalMemory

_INITIAL = 8
_ENLARGE = 8
_MAX_TAKE = 6

# One op per step: ("take", pages) allocates a fresh grant,
# ("free", key) returns a previously taken grant (key picks which),
# ("surrender", count) simulates EWB pressure on unused frames.
_ops = st.lists(
    st.one_of(
        st.tuples(st.just("take"),
                  st.integers(min_value=1, max_value=_MAX_TAKE)),
        st.tuples(st.just("free"), st.integers(min_value=0, max_value=31)),
        st.tuples(st.just("surrender"),
                  st.integers(min_value=0, max_value=4))),
    max_size=30)


def _make_pool(seed: int):
    memory = PhysicalMemory(32 * 1024 * 1024)
    os_ = CSOperatingSystem(memory, first_free_frame=16)
    bitmap = EnclaveBitmap(memory, base_paddr=0)
    pool = EnclaveMemoryPool(os_, memory, DeterministicRng(seed),
                             bitmap=bitmap, initial_pages=_INITIAL,
                             enlarge_pages=_ENLARGE)
    return pool, os_


def _check_invariants(pool, os_, grants: list[list[int]],
                      peak_demand: int) -> None:
    free = pool._free
    granted = [frame for grant in grants for frame in grant]

    # No double-grant: live grants are pairwise disjoint and disjoint
    # from the free list; the free list itself holds no duplicates.
    assert len(granted) == len(set(granted))
    assert not set(granted) & set(free)
    assert len(free) == len(set(free))

    # Accounting: free + used == capacity, and used mirrors live grants.
    assert pool.free_count + pool.used_count == pool.capacity
    assert pool.used_count == len(granted)

    # Every pool frame came from bulk ems-pool refills (the OS never saw
    # a per-demand enclave allocation).
    pool_frames = {frame for event in os_.allocation_log
                   if event.requestor == "ems-pool"
                   for frame in event.frames}
    assert set(free) <= pool_frames
    assert set(granted) <= pool_frames

    # The randomized enlarge trigger stays in its calibrated band.
    assert POOL_THRESHOLD_MIN <= pool._threshold <= POOL_THRESHOLD_MAX

    # Bounded growth: enlargement stops as soon as usage drops under the
    # drawn threshold, and every threshold is >= POOL_THRESHOLD_MIN, so
    # capacity can never exceed the *peak*-demand-implied bound plus one
    # enlargement step (no unbounded proactive ballooning). Capacity is
    # sticky — frees shrink `used`, never `capacity` — hence the peak.
    bound = max(_INITIAL, peak_demand / POOL_THRESHOLD_MIN) \
        + max(_ENLARGE, _MAX_TAKE)
    assert pool.capacity <= bound, (pool.capacity, bound)


@given(ops=_ops, seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=60, deadline=None)
def test_pool_invariants_under_random_ops(ops, seed):
    pool, os_ = _make_pool(seed)
    grants: list[list[int]] = []
    peak_demand = 0
    _check_invariants(pool, os_, grants, peak_demand)
    for op, value in ops:
        if op == "take":
            peak_demand = max(peak_demand, pool.used_count + value)
            grants.append(pool.take(value))
        elif op == "free" and grants:
            pool.give_back(grants.pop(value % len(grants)))
        elif op == "surrender":
            surrendered = pool.surrender_random(value)
            # EWB hands back *unused* frames only — never a live grant.
            granted = {f for grant in grants for f in grant}
            assert not set(surrendered) & granted
        _check_invariants(pool, os_, grants, peak_demand)


@given(pages=st.lists(st.integers(min_value=1, max_value=_MAX_TAKE),
                      min_size=1, max_size=12),
       seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=40, deadline=None)
def test_take_sequences_never_double_grant(pages, seed):
    """Pure allocation bursts: every grant is globally fresh."""
    pool, _ = _make_pool(seed)
    seen: set[int] = set()
    for count in pages:
        grant = pool.take(count)
        assert len(grant) == count
        assert not seen & set(grant)
        seen |= set(grant)


@given(seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=25, deadline=None)
def test_thresholds_rerandomize_within_band(seed):
    """Across many forced enlargements, every draw stays in the band."""
    pool, _ = _make_pool(seed)
    draws = set()
    for _ in range(8):
        pool.take(_MAX_TAKE)
        draws.add(pool._threshold)
        assert POOL_THRESHOLD_MIN <= pool._threshold <= POOL_THRESHOLD_MAX
    assert len(draws) > 1  # the trigger actually moves
