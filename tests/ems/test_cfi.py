"""CFI monitoring task on the EMS."""

from __future__ import annotations

import pytest

from repro.common.constants import PAGE_SHIFT
from repro.common.types import EnclaveState
from repro.core.api import HyperTEE
from repro.core.enclave import EnclaveConfig
from repro.ems.cfi import RECORDS_PER_BUFFER
from repro.errors import SanityCheckError

CFG = {(0x100, 0x200), (0x200, 0x300), (0x300, 0x100)}


@pytest.fixture
def rig():
    tee = HyperTEE()
    enclave = tee.launch_enclave(b"monitored", EnclaveConfig(name="mon"))
    tee.system.cfi.register_policy(enclave.enclave_id, CFG)
    return tee, enclave


def test_benign_trace_passes(rig):
    tee, enclave = rig
    cfi = tee.system.cfi
    for src, dst in [(0x100, 0x200), (0x200, 0x300), (0x300, 0x100)]:
        cfi.record_transfer(enclave.enclave_id, src, dst)
    assert cfi.scan(enclave.enclave_id) == []
    assert not cfi.is_terminated(enclave.enclave_id)


def test_rop_style_edge_terminates(rig):
    """A transfer outside the CFG (ROP gadget chain) kills the enclave."""
    tee, enclave = rig
    cfi = tee.system.cfi
    cfi.record_transfer(enclave.enclave_id, 0x100, 0x200)
    cfi.record_transfer(enclave.enclave_id, 0x200, 0xDEAD)  # not in CFG
    violations = cfi.scan(enclave.enclave_id)
    assert violations == [(0x200, 0xDEAD)]
    assert cfi.is_terminated(enclave.enclave_id)
    control = tee.system.enclaves.enclaves[enclave.enclave_id]
    assert control.state is EnclaveState.DESTROYED


def test_terminated_enclave_records_ignored(rig):
    tee, enclave = rig
    cfi = tee.system.cfi
    cfi.record_transfer(enclave.enclave_id, 0x100, 0xBAD)
    cfi.scan(enclave.enclave_id)
    cfi.record_transfer(enclave.enclave_id, 0x100, 0x200)  # no-op now
    assert cfi.is_terminated(enclave.enclave_id)


def test_running_enclave_terminated_cleanly():
    tee = HyperTEE()
    enclave = tee.launch_enclave(b"monitored", EnclaveConfig(name="mon"))
    tee.system.cfi.register_policy(enclave.enclave_id, CFG)
    enclave.enter()
    tee.system.cfi.record_transfer(enclave.enclave_id, 0x1, 0x2)
    tee.system.cfi.scan(enclave.enclave_id)
    control = tee.system.enclaves.enclaves[enclave.enclave_id]
    assert control.state is EnclaveState.DESTROYED


def test_buffer_wraparound_forces_scan(rig):
    tee, enclave = rig
    cfi = tee.system.cfi
    for _ in range(RECORDS_PER_BUFFER + 5):
        cfi.record_transfer(enclave.enclave_id, 0x100, 0x200)
    assert not cfi.is_terminated(enclave.enclave_id)


def test_buffer_is_ciphertext_to_host(rig):
    """The transfer buffer lives in enclave memory: raw reads are noise."""
    tee, enclave = rig
    cfi = tee.system.cfi
    cfi.record_transfer(enclave.enclave_id, 0x100, 0x200)
    state = cfi._states[enclave.enclave_id]
    raw = tee.system.memory.read_raw(state.buffer_frame << PAGE_SHIFT, 16)
    assert raw != (0x100).to_bytes(8, "little") + (0x200).to_bytes(8, "little")


def test_unregistered_enclave_rejected(rig):
    tee, _ = rig
    with pytest.raises(SanityCheckError):
        tee.system.cfi.scan(999)
