"""Remote (SIGMA-style) and local attestation."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.api import HyperTEE, local_attest
from repro.core.config import SystemConfig
from repro.core.enclave import EnclaveConfig
from repro.ems.attestation import Certificate, RemoteSession, dh_binding
from repro.errors import AttestationError, SanityCheckError


@pytest.fixture
def tee() -> HyperTEE:
    return HyperTEE(SystemConfig(cs_memory_mb=48, ems_memory_mb=4))


def test_quote_requires_measured_enclave(tee: HyperTEE):
    sys_ = tee.system
    result, _, _ = sys_.enclaves.ecreate(EnclaveConfig())
    with pytest.raises(SanityCheckError):
        sys_.attestation.eattest(result["enclave_id"])


def test_quote_verifies_against_ca(tee: HyperTEE):
    enclave = tee.launch_enclave(b"attested-code")
    with enclave.running():
        quote = enclave.attest(report_data=b"nonce")
    ca = tee.system.certificate_authority()
    assert ca.verify_quote(quote, enclave.measurement)


def test_ca_rejects_wrong_measurement(tee: HyperTEE):
    enclave = tee.launch_enclave(b"attested-code")
    with enclave.running():
        quote = enclave.attest()
    ca = tee.system.certificate_authority()
    assert not ca.verify_quote(quote, b"\x00" * 32)


def test_ca_rejects_forged_signature(tee: HyperTEE):
    enclave = tee.launch_enclave(b"attested-code")
    with enclave.running():
        quote = enclave.attest()
    forged = dataclasses.replace(
        quote, enclave=Certificate("enclave", quote.enclave.measurement,
                                   quote.enclave.report_data, b"\x00" * 32))
    ca = tee.system.certificate_authority()
    assert not ca.verify_quote(forged, enclave.measurement)


def test_ca_from_other_device_rejects(tee: HyperTEE):
    """A quote only verifies against the issuing device's CA record."""
    enclave = tee.launch_enclave(b"attested-code")
    with enclave.running():
        quote = enclave.attest()
    other = HyperTEE(SystemConfig(cs_memory_mb=48, ems_memory_mb=4, seed=99))
    assert not other.system.certificate_authority().verify_quote(
        quote, enclave.measurement)


def test_full_remote_session(tee: HyperTEE):
    enclave = tee.launch_enclave(b"service-enclave")
    session = RemoteSession(ca=tee.system.certificate_authority(),
                            expected_enclave_measurement=enclave.measurement)
    with enclave.running():
        enclave_key = enclave.remote_attest(session)
    assert session.session_key == enclave_key  # both sides agree


def test_remote_session_rejects_unbound_quote(tee: HyperTEE):
    """A quote not bound to the DH transcript is a replay — rejected."""
    enclave = tee.launch_enclave(b"service-enclave")
    session = RemoteSession(ca=tee.system.certificate_authority(),
                            expected_enclave_measurement=enclave.measurement)
    session.challenge(lambda n: b"\x05" * n)
    with enclave.running():
        stale_quote = enclave.attest(report_data=b"not-a-dh-binding")
    with pytest.raises(AttestationError):
        session.complete(12345, stale_quote)


def test_remote_session_requires_challenge_first(tee: HyperTEE):
    enclave = tee.launch_enclave(b"service-enclave")
    session = RemoteSession(ca=tee.system.certificate_authority(),
                            expected_enclave_measurement=enclave.measurement)
    with enclave.running():
        quote = enclave.attest(report_data=dh_binding(7))
    with pytest.raises(AttestationError):
        session.complete(7, quote)


def test_local_attestation_succeeds(tee: HyperTEE):
    challenger = tee.launch_enclave(b"challenger")
    verifier = tee.launch_enclave(b"verifier")
    assert local_attest(challenger, verifier) == verifier.measurement


def test_local_attestation_rejects_forged_report(tee: HyperTEE):
    challenger = tee.launch_enclave(b"challenger")
    fake = Certificate("local", b"fake-measurement-000000000000000",
                       b"", b"\x00" * 32)
    with challenger.running():
        with pytest.raises(Exception):
            challenger.local_verify(fake)


def test_local_report_bound_to_challenger(tee: HyperTEE):
    """A report produced for challenger A does not verify for B."""
    a = tee.launch_enclave(b"challenger-a")
    b = tee.launch_enclave(b"challenger-b")
    verifier = tee.launch_enclave(b"verifier")
    with verifier.running():
        cert_for_a = verifier.local_report_for(a.measurement)
    with b.running():
        with pytest.raises(Exception):
            b.local_verify(cert_for_a)
