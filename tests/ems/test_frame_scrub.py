"""Freed-frame scrubbing: every path out of the pool zeroes first.

The paper's pool returns frames "zeroed first" (Section IV-A); teesan's
SECRET sanitizer *assumes* that scrub when it clears a frame's shadow on
``zero_frame``. These tests pin the scrub itself on every exit path —
give_back, surrender_random, release_host_visible — so a future refactor
that drops a zeroing loop fails here, not as a downstream leak report.
"""

from __future__ import annotations

import pytest

from repro.common.constants import PAGE_SIZE
from repro.common.rng import DeterministicRng
from repro.ems.memory_pool import EnclaveMemoryPool
from repro.hw.memory import PhysicalMemory


class _FakeOS:
    """A FrameSource handing out frames from a bump allocator."""

    def __init__(self) -> None:
        self.next_frame = 16
        self.released: list[int] = []

    def alloc_frames(self, count: int, requestor: str = "") -> list[int]:
        frames = list(range(self.next_frame, self.next_frame + count))
        self.next_frame += count
        return frames

    def release_frames(self, frames: list[int]) -> None:
        self.released.extend(frames)


@pytest.fixture
def pool_setup():
    memory = PhysicalMemory(4 * 1024 * 1024)
    pool = EnclaveMemoryPool(_FakeOS(), memory, DeterministicRng(7),
                             initial_pages=8, enlarge_pages=8)
    return memory, pool


def _dirty(memory: PhysicalMemory, frame: int) -> None:
    memory.write_raw(frame * PAGE_SIZE, b"\xabsecret residue\xab" * 8)


def _is_zeroed(memory: PhysicalMemory, frame: int) -> bool:
    return memory.read_raw(frame * PAGE_SIZE, PAGE_SIZE) == bytes(PAGE_SIZE)


def test_give_back_scrubs_every_frame(pool_setup):
    memory, pool = pool_setup
    frames = pool.take(3, owner="scrub-test")
    for frame in frames:
        _dirty(memory, frame)
    pool.give_back(frames, owner="scrub-test")
    for frame in frames:
        assert _is_zeroed(memory, frame), f"frame {frame} not scrubbed"


def test_surrender_random_scrubs_before_os_sees_them(pool_setup):
    memory, pool = pool_setup
    # Dirty *free* pool frames directly: surrender picks from the free
    # list, and those bytes would go straight to the CS OS.
    taken = pool.take(4, owner="toucher")
    for frame in taken:
        _dirty(memory, frame)
    pool.give_back(taken, owner="toucher")
    for frame in list(pool._free):
        _dirty(memory, frame)
    surrendered = pool.surrender_random(3)
    assert surrendered
    for frame in surrendered:
        assert _is_zeroed(memory, frame), f"frame {frame} left the pool dirty"


def test_release_host_visible_scrubs_transfer_buffers(pool_setup):
    memory, pool = pool_setup
    frames = pool.take_host_visible(2)
    for frame in frames:
        _dirty(memory, frame)
    pool.release_host_visible(frames)
    for frame in frames:
        assert _is_zeroed(memory, frame), f"buffer frame {frame} not scrubbed"
    assert pool._os.released == frames


def test_take_host_visible_hands_out_clean_buffers(pool_setup):
    memory, pool = pool_setup
    frames = pool.take_host_visible(2)
    for frame in frames:
        assert _is_zeroed(memory, frame)


def test_secret_sanitizer_catches_a_skipped_scrub(pool_setup):
    """If give_back ever skipped zeroing, teesan fires SECRET-LEAK."""
    from repro.sanitize.manager import SanitizerManager

    memory, pool = pool_setup
    san = SanitizerManager(("secret",))
    memory.san = san
    pool.san = san

    leaked = bytes(range(32))
    san.register_secret(leaked, "scrub-regression-key")
    frames = pool.take(1, owner="leaker")
    # The raw plaintext landing itself fires the DRAM check (that is a
    # separate, correct finding); this test is about the *freed-frame*
    # channel, so count only violations mentioning it.
    memory.write_raw(frames[0] * PAGE_SIZE, leaked)

    def freed_frame_findings() -> int:
        return sum("freed frame" in v.message for v in san.violations)

    # The real path scrubs: returning through give_back adds nothing.
    pool.give_back(frames, owner="leaker")
    assert freed_frame_findings() == 0

    # A broken path (frames back on the free list with no zeroing, as a
    # buggy refactor would do) is exactly what on_pool_return catches.
    frames = pool.take(1, owner="leaker")
    memory.write_raw(frames[0] * PAGE_SIZE, leaked)
    pool._free.extend(frames)
    pool._used -= len(frames)
    san.on_pool_return(memory, frames, "leaker")
    assert freed_frame_findings() == 1
    finding = [v for v in san.violations if "freed frame" in v.message][0]
    assert finding.kind == "SECRET-LEAK"
    assert "scrubbing is broken" in finding.message
