"""GPU TEE flow (paper Section IX): driver enclave + IOMMU-backed GPU."""

from __future__ import annotations

import pytest

from repro.common.types import Permission
from repro.core.api import HyperTEE
from repro.core.enclave import EnclaveConfig
from repro.errors import DMAViolation, SharedMemoryError
from repro.hw.iommu import IOMMUDevice


@pytest.fixture
def rig():
    tee = HyperTEE()
    driver = tee.launch_enclave(b"gpu-driver", EnclaveConfig(name="driver"))
    with driver.running():
        region = driver.create_shared_region(4, Permission.RW)
        va = driver.attach(region)
        driver.write(va, b"command buffer + tensors")
    gpu = IOMMUDevice("gpu0", tee.system.iommu, tee.system.memory)
    return tee, driver, region, gpu


def test_gpu_reads_after_iommu_grant(rig):
    tee, driver, region, gpu = rig
    tee.system.shm.grant_device_iommu(driver.enclave_id, region.shm_id,
                                      "gpu0", Permission.RW)
    assert gpu.read(0, 24) == b"command buffer + tensors"
    gpu.write(0x1000, b"gpu result")
    with driver.running():
        control = tee.system.shm.regions[region.shm_id]
        vaddr = control.attachments[driver.enclave_id]
        assert driver.read(vaddr + 0x1000, 10) == b"gpu result"


def test_gpu_blocked_without_grant(rig):
    _, _, _, gpu = rig
    with pytest.raises(DMAViolation):
        gpu.read(0, 16)


def test_gpu_limited_to_region(rig):
    """Only the region's pages are mapped; IOVA 4+ faults."""
    tee, driver, region, gpu = rig
    tee.system.shm.grant_device_iommu(driver.enclave_id, region.shm_id,
                                      "gpu0", Permission.RW)
    with pytest.raises(DMAViolation):
        gpu.read(4 * 4096, 16)


def test_grant_requires_region_access(rig):
    tee, driver, region, _ = rig
    stranger = tee.launch_enclave(b"stranger", EnclaveConfig(name="x"))
    from repro.errors import ConnectionNotAuthorized

    with pytest.raises(ConnectionNotAuthorized):
        tee.system.shm.grant_device_iommu(stranger.enclave_id,
                                          region.shm_id, "gpu0",
                                          Permission.READ)


def test_grant_capped_by_region_max(rig):
    tee, driver, _, _ = rig
    with driver.running():
        ro_region = driver.create_shared_region(1, Permission.READ)
    with pytest.raises(SharedMemoryError):
        tee.system.shm.grant_device_iommu(driver.enclave_id,
                                          ro_region.shm_id, "gpu0",
                                          Permission.RW)


def test_revoke_closes_access(rig):
    tee, driver, region, gpu = rig
    tee.system.shm.grant_device_iommu(driver.enclave_id, region.shm_id,
                                      "gpu0", Permission.RW)
    gpu.read(0, 8)
    tee.system.shm.revoke_device_iommu(driver.enclave_id, region.shm_id,
                                       "gpu0")
    with pytest.raises(DMAViolation):
        gpu.read(0, 8)


def test_revoke_unknown_grant(rig):
    tee, driver, region, _ = rig
    with pytest.raises(SharedMemoryError):
        tee.system.shm.revoke_device_iommu(driver.enclave_id,
                                           region.shm_id, "gpu0")
