"""EMS runtime: dispatch, sanity checks, status mapping, scheduling."""

from __future__ import annotations

import pytest

from repro.common.packets import PrimitiveRequest, ResponseStatus
from repro.common.types import Primitive, Privilege
from repro.core.config import SystemConfig
from repro.core.enclave import EnclaveConfig
from repro.core.system import HyperTEESystem


@pytest.fixture
def sys_() -> HyperTEESystem:
    return HyperTEESystem(SystemConfig(cs_memory_mb=48, ems_memory_mb=4))


def dispatch(sys_: HyperTEESystem, primitive: Primitive, args: dict,
             enclave_id: int | None = None,
             privilege: Privilege = Privilege.SUPERVISOR):
    request = PrimitiveRequest(
        request_id=sys_.rng.randint(1, 10**9, stream="test-req"),
        primitive=primitive, enclave_id=enclave_id,
        privilege=privilege, args=args)
    return sys_.ems.dispatch(request)


def test_ok_dispatch(sys_: HyperTEESystem):
    response = dispatch(sys_, Primitive.ECREATE, {"config": EnclaveConfig()})
    assert response.ok and response.service_cycles > 0
    assert "enclave_id" in response.result


def test_sanity_check_wrong_type(sys_: HyperTEESystem):
    """Section III-B mechanism 3: malformed arguments are rejected."""
    response = dispatch(sys_, Primitive.ECREATE, {"config": "not-a-config"})
    assert response.status is ResponseStatus.SANITY_FAILED
    response = dispatch(sys_, Primitive.EWB, {"pages": "five"})
    assert response.status is ResponseStatus.SANITY_FAILED


def test_sanity_check_missing_arg(sys_: HyperTEESystem):
    response = dispatch(sys_, Primitive.EADD, {"enclave_id": 1})
    assert response.status is ResponseStatus.SANITY_FAILED


def test_user_primitive_needs_stamped_identity(sys_: HyperTEESystem):
    response = dispatch(sys_, Primitive.EALLOC, {"pages": 1},
                        enclave_id=None, privilege=Privilege.USER)
    assert response.status is ResponseStatus.SANITY_FAILED


def test_state_error_mapped(sys_: HyperTEESystem):
    created = dispatch(sys_, Primitive.ECREATE, {"config": EnclaveConfig()})
    enclave_id = created.result["enclave_id"]
    response = dispatch(sys_, Primitive.EENTER, {"enclave_id": enclave_id})
    assert response.status is ResponseStatus.STATE_ERROR


def test_not_authorized_mapped(sys_: HyperTEESystem):
    created = dispatch(sys_, Primitive.ECREATE, {"config": EnclaveConfig()})
    owner = created.result["enclave_id"]
    dispatch(sys_, Primitive.EADD, {"enclave_id": owner, "content": b"c"})
    dispatch(sys_, Primitive.EMEAS, {"enclave_id": owner})
    shm = dispatch(sys_, Primitive.ESHMGET, {"pages": 1},
                   enclave_id=owner, privilege=Privilege.USER)
    other = dispatch(sys_, Primitive.ECREATE,
                     {"config": EnclaveConfig(name="x")}).result["enclave_id"]
    response = dispatch(sys_, Primitive.ESHMAT,
                        {"shm_id": shm.result["shm_id"]},
                        enclave_id=other, privilege=Privilege.USER)
    assert response.status is ResponseStatus.NOT_AUTHORIZED


def test_service_cycles_scale_with_ems_config():
    slow = HyperTEESystem(SystemConfig(cs_memory_mb=48, ems_memory_mb=4,
                                       ems_core="weak"))
    fast = HyperTEESystem(SystemConfig(cs_memory_mb=48, ems_memory_mb=4,
                                       ems_core="strong"))
    r_slow = dispatch(slow, Primitive.ECREATE, {"config": EnclaveConfig()})
    r_fast = dispatch(fast, Primitive.ECREATE, {"config": EnclaveConfig()})
    assert r_slow.service_cycles > r_fast.service_cycles


def test_pump_drains_and_shuffles(sys_: HyperTEESystem):
    """Scheduling randomization: responses exist for every request, and
    processing order is not guaranteed to be arrival order."""
    for i in range(8):
        sys_.mailbox.push_request(PrimitiveRequest(
            request_id=100 + i, primitive=Primitive.ECREATE,
            enclave_id=None, privilege=Privilege.SUPERVISOR,
            args={"config": EnclaveConfig(name=f"e{i}")}))
    served = sys_.ems.pump()
    assert served == 8
    ids = [sys_.mailbox.poll_response(100 + i).result["enclave_id"]
           for i in range(8)]
    assert sorted(ids) == list(range(ids and min(ids), min(ids) + 8))
    assert sys_.ems.stats.served >= 8


def test_stats_track_failures(sys_: HyperTEESystem):
    before = sys_.ems.stats.failed
    dispatch(sys_, Primitive.EMEAS, {"enclave_id": 777})
    assert sys_.ems.stats.failed == before + 1


def test_every_primitive_has_a_handler(sys_: HyperTEESystem):
    """Table II coverage: the dispatcher implements all 16 primitives."""
    assert set(sys_.ems._handlers) == set(Primitive)


def test_fabric_probe_records_served_traffic(sys_: HyperTEESystem):
    sys_.ihub.probe.window()
    dispatch(sys_, Primitive.ECREATE, {"config": EnclaveConfig()})
    assert sys_.ihub.probe.window() > 0
