"""Shared-region cleanup when participants are destroyed mid-use."""

from __future__ import annotations

import pytest

from repro.common.types import Permission
from repro.core.api import HyperTEE
from repro.core.enclave import EnclaveConfig


@pytest.fixture
def tee() -> HyperTEE:
    return HyperTEE()


def make_pair(tee: HyperTEE):
    sender = tee.launch_enclave(b"sender", EnclaveConfig(name="s"))
    receiver = tee.launch_enclave(b"receiver", EnclaveConfig(name="r"))
    with sender.running():
        region = sender.create_shared_region(2, Permission.RW)
        sender.share_with(region, receiver, Permission.RW)
    return sender, receiver, region


def test_owner_destroy_with_no_attachments_reclaims(tee: HyperTEE):
    sender, _, region = make_pair(tee)
    keyid = tee.system.shm.regions[region.shm_id].keyid
    sender.destroy()
    assert region.shm_id not in tee.system.shm.regions
    assert not tee.system.engine.has_key(keyid)


def test_owner_destroy_keeps_region_for_attached_receiver(tee: HyperTEE):
    """The receiver keeps working after the owner dies; the region is
    reclaimed only when the receiver detaches."""
    sender, receiver, region = make_pair(tee)
    with sender.running():
        va = sender.attach(region)
        sender.write(va, b"will outlive the sender")
        sender.detach(region)
    with receiver.running():
        vb = receiver.attach(region)
    sender.destroy()

    assert region.shm_id in tee.system.shm.regions  # still alive
    with receiver.running():
        assert receiver.read(vb, 23) == b"will outlive the sender"
        receiver.detach(region)  # last attachment drops -> reclaim
    assert region.shm_id not in tee.system.shm.regions


def test_attached_receiver_destroy_drops_its_connection(tee: HyperTEE):
    """A destroyed receiver no longer blocks ESHMDES."""
    sender, receiver, region = make_pair(tee)
    with receiver.running():
        receiver.attach(region)
    receiver.destroy()
    with sender.running():
        sender.destroy_region(region)  # no ActiveConnectionsRemain
    assert region.shm_id not in tee.system.shm.regions


def test_destroyed_receiver_loses_authorization(tee: HyperTEE):
    """Legal-connection entries do not survive the enclave they named:
    a new enclave reusing an id could otherwise inherit access."""
    sender, receiver, region = make_pair(tee)
    receiver.destroy()
    control = tee.system.shm.regions[region.shm_id]
    assert receiver.enclave_id not in control.legal_connections
