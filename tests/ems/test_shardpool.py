"""Unit tests for the EMS shard pool: placement, transfer, rejection.

The conformance suite pins what the fleet looks like from outside; this
file pins the pool's own mechanics — ID placement lands enclaves on
their hash home, the sealed prepare/commit transfer moves exactly the
enclave's frames (measurement preserved, attestation re-issuable), and
every illegal transfer is refused with zero mutation.
"""

from __future__ import annotations

import pytest

from repro.core.api import HyperTEE
from repro.core.config import SystemConfig
from repro.core.enclave import EnclaveConfig
from repro.errors import EnclaveStateError, ShardError, TransferInterrupted
from repro.ems.ownership import Owner
from repro.faults.plan import FaultPlan, FaultRule
from repro.hw.routing import shard_for


def _fleet(shards: int = 4, seed: int = 0x5D01, **config) -> HyperTEE:
    return HyperTEE(SystemConfig(seed=seed, ems_shards=shards, **config))


def _launch(tee: HyperTEE, tag: str = "pool"):
    return tee.launch_enclave(f"shardpool-{tag}".encode() * 20,
                              EnclaveConfig(name=tag, heap_pages_max=16))


def _fleet_frame_usage(pool) -> int:
    return sum(shard.pool.used_count for shard in pool.shards)


def test_placement_lands_on_hash_home():
    """Minted IDs need no override: home shard == serving shard."""
    tee = _fleet()
    pool = tee.system.shard_pool
    for i in range(6):
        enclave = _launch(tee, tag=f"place{i}")
        home = shard_for(enclave.enclave_id, pool.num_shards)
        assert pool.resolve(enclave.enclave_id) == home
        assert enclave.enclave_id in \
            pool.shards[home].enclaves.enclaves
    assert pool._overrides == {}


def test_transfer_moves_state_and_preserves_identity():
    """The whole transfer contract on the happy path."""
    tee = _fleet()
    pool = tee.system.shard_pool
    enclave = _launch(tee)
    src_index = pool.resolve(enclave.enclave_id)
    dst_index = (src_index + 1) % pool.num_shards
    src, dst = pool.shards[src_index], pool.shards[dst_index]
    owner = Owner.enclave(enclave.enclave_id)
    frames_before = set(src.ownership.frames_owned_by(owner))
    usage_before = _fleet_frame_usage(pool)
    src_used, dst_used = src.pool.used_count, dst.pool.used_count

    receipt = pool.transfer_enclave(enclave.enclave_id, dst_index)

    assert receipt["src"] == src_index and receipt["dst"] == dst_index
    assert receipt["pages"] > 0
    # Residence and routing moved together.
    assert enclave.enclave_id not in src.enclaves.enclaves
    assert enclave.enclave_id in dst.enclaves.enclaves
    assert pool.resolve(enclave.enclave_id) == dst_index
    # The enclave's frames changed tables, not contents: same frame set,
    # now owned on the destination, fleet usage conserved.
    assert set(dst.ownership.frames_owned_by(owner)) == frames_before
    assert src.ownership.frames_owned_by(owner) == []
    assert _fleet_frame_usage(pool) == usage_before
    assert src.pool.used_count == src_used - receipt["pages"]
    assert dst.pool.used_count == dst_used + receipt["pages"]
    assert pool.transfers_committed == 1

    # Identity survived: the measurement is untouched and a fresh quote
    # issued by the destination shard verifies at the CA.
    ca = tee.system.certificate_authority()
    with enclave.running():
        vaddr = enclave.ealloc(1)
        enclave.write(vaddr, b"post-transfer")
        assert enclave.read(vaddr, 13) == b"post-transfer"
        quote = enclave.attest(report_data=b"after-move")
    assert ca.verify_quote(
        quote, expected_enclave_measurement=enclave.measurement)
    enclave.destroy()


def test_transfer_back_home_drops_override():
    """A round trip ends with pure-hash routing again."""
    tee = _fleet()
    pool = tee.system.shard_pool
    enclave = _launch(tee)
    home = pool.resolve(enclave.enclave_id)
    away = (home + 1) % pool.num_shards
    pool.transfer_enclave(enclave.enclave_id, away)
    assert pool._overrides == {enclave.enclave_id: away}
    pool.transfer_enclave(enclave.enclave_id, home)
    assert pool._overrides == {}
    assert pool.resolve(enclave.enclave_id) == home


def test_transfer_rejections():
    """Every illegal transfer is a typed refusal."""
    tee = _fleet()
    pool = tee.system.shard_pool
    enclave = _launch(tee)
    here = pool.resolve(enclave.enclave_id)
    there = (here + 1) % pool.num_shards

    with pytest.raises(ShardError, match="out of range"):
        pool.transfer_enclave(enclave.enclave_id, pool.num_shards)
    with pytest.raises(ShardError, match="already resident"):
        pool.transfer_enclave(enclave.enclave_id, here)
    with pytest.raises(ShardError, match="not resident"):
        pool.transfer_enclave(424242, shard_for(424242, pool.num_shards)
                              ^ 1)  # any shard that is not 424242's home

    enclave.enter()
    with pytest.raises(EnclaveStateError, match="running"):
        pool.transfer_enclave(enclave.enclave_id, there)
    enclave.exit()

    from repro.common.types import Permission
    enclave.resume()
    region = enclave.create_shared_region(1, Permission.RW)
    enclave.attach(region)
    enclave.exit()
    # Suspended but still attached: regions are shard-local state.
    with pytest.raises(ShardError, match="shared-memory"):
        pool.transfer_enclave(enclave.enclave_id, there)
    enclave.resume()
    enclave.detach(region)
    enclave.destroy_region(region)
    enclave.exit()

    enclave.destroy()
    with pytest.raises(EnclaveStateError, match="destroyed"):
        pool.transfer_enclave(enclave.enclave_id, there)


def test_unmeasured_enclave_cannot_transfer():
    """No measurement, no manifest: the seal has nothing to bind to."""
    from repro.common.types import Primitive

    tee = _fleet()
    pool = tee.system.shard_pool
    created = tee.invoke_os(Primitive.ECREATE,
                            {"config": EnclaveConfig(name="bare")})
    enclave_id = created.result("enclave_id")
    here = pool.resolve(enclave_id)
    with pytest.raises(EnclaveStateError, match="measured"):
        pool.transfer_enclave(enclave_id, (here + 1) % pool.num_shards)


def test_interrupted_transfer_mutates_nothing_and_retries():
    """``ems.transfer.interrupt``: abort between prepare and commit."""
    tee = _fleet()
    tee.system.enable_fault_injection(FaultPlan.build(
        [FaultRule(point="ems.transfer.interrupt", probability=1.0,
                   count=1)],
        seed=0xAB))
    pool = tee.system.shard_pool
    enclave = _launch(tee)
    src_index = pool.resolve(enclave.enclave_id)
    dst_index = (src_index + 1) % pool.num_shards
    src = pool.shards[src_index]
    owner = Owner.enclave(enclave.enclave_id)
    frames_before = set(src.ownership.frames_owned_by(owner))
    usage_before = [shard.pool.used_count for shard in pool.shards]

    with pytest.raises(TransferInterrupted):
        pool.transfer_enclave(enclave.enclave_id, dst_index)

    # Zero mutation: residence, routing, frames, and pool accounting are
    # exactly the pre-attempt state.
    assert enclave.enclave_id in src.enclaves.enclaves
    assert pool.resolve(enclave.enclave_id) == src_index
    assert set(src.ownership.frames_owned_by(owner)) == frames_before
    assert [s.pool.used_count for s in pool.shards] == usage_before
    assert pool.transfers_interrupted == 1
    assert pool.transfers_committed == 0

    # The rule's count is exhausted: the retry commits cleanly (and the
    # enclave is applied exactly once — its frame set is unchanged).
    pool.transfer_enclave(enclave.enclave_id, dst_index)
    dst = pool.shards[dst_index]
    assert set(dst.ownership.frames_owned_by(owner)) == frames_before
    assert pool.transfers_committed == 1


def test_stale_route_is_rejected_not_served():
    """The old shard refuses a moved enclave's requests outright."""
    from repro.common.types import Primitive

    tee = _fleet()
    pool = tee.system.shard_pool
    enclave = _launch(tee)
    src_index = pool.resolve(enclave.enclave_id)
    dst_index = (src_index + 1) % pool.num_shards
    pool.transfer_enclave(enclave.enclave_id, dst_index)

    # Bypass the router: push EENTER at the *source* gate directly, the
    # way a stale initiator would. The source shard no longer holds the
    # control block, so this must be a refusal, never a context switch.
    stale = tee.system.emcall.gates[src_index].invoke(
        Primitive.EENTER, {"enclave_id": enclave.enclave_id},
        core=tee.system.primary_core)
    assert not stale.ok
    assert tee.system.primary_core.current_enclave_id is None

    # The routed path still works.
    with enclave.running():
        assert enclave.ealloc(1) > 0
    enclave.destroy()


def test_shard_stats_summary_schema():
    """The registered stats source carries the fleet rollup."""
    tee = _fleet(shards=2)
    enclave = _launch(tee)
    summary = tee.system.stats_summary()["shards"]
    assert summary["num_shards"] == 2
    assert len(summary["per_shard"]) == 2
    row = summary["per_shard"][tee.system.shard_pool.resolve(
        enclave.enclave_id)]
    assert row["enclaves"] == 1
    assert row["served"] > 0
    assert row["pool_used"] + row["pool_free"] == row["pool_capacity"]
