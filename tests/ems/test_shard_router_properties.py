"""Property tests for the enclave-ID router (:mod:`repro.hw.routing`).

The router is the one piece of sharding logic every EMCall crosses, so
it gets the hypothesis treatment: totality, stability, purity, balance,
and — the property that makes jump consistent hashing worth its name —
minimal movement when the fleet grows. The batch envelope helpers are
pinned as an exact split/reassemble inverse pair.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.routing import reassemble, shard_for, split_by_shard

ids = st.integers(min_value=0, max_value=2**64 - 1)
fleet_sizes = st.integers(min_value=1, max_value=64)


@given(enclave_id=ids, num_shards=fleet_sizes)
def test_total_and_in_range(enclave_id: int, num_shards: int):
    """Every ID maps to exactly one shard inside the fleet."""
    shard = shard_for(enclave_id, num_shards)
    assert 0 <= shard < num_shards


@given(enclave_id=ids, num_shards=fleet_sizes)
def test_stable_and_pure(enclave_id: int, num_shards: int):
    """Same inputs, same answer — no hidden state, ever."""
    assert shard_for(enclave_id, num_shards) == \
        shard_for(enclave_id, num_shards)


@given(enclave_id=ids, num_shards=st.integers(min_value=1, max_value=63))
def test_minimal_movement_on_growth(enclave_id: int, num_shards: int):
    """Growing the fleet moves an ID only onto the new shard, if at all.

    This is the jump-consistent-hash monotonicity contract: when shard
    N joins, an enclave either stays where it was or moves to shard N —
    never between two old shards (which would stampede transfers).
    """
    before = shard_for(enclave_id, num_shards)
    after = shard_for(enclave_id, num_shards + 1)
    assert after in (before, num_shards)


@given(num_shards=st.integers(min_value=2, max_value=8))
@settings(max_examples=20)
def test_balanced(num_shards: int):
    """Sequentially-minted IDs spread across every shard, roughly evenly.

    Sequential IDs are exactly what the pool mints, so this is balance
    on the real key distribution, not an idealized one.
    """
    population = 512
    counts = [0] * num_shards
    for enclave_id in range(1, population + 1):
        counts[shard_for(enclave_id, num_shards)] += 1
    expected = population / num_shards
    for shard, count in enumerate(counts):
        assert 0.5 * expected <= count <= 1.5 * expected, \
            f"shard {shard} holds {count} of {population} IDs " \
            f"(expected ~{expected:.0f})"


def test_rejects_empty_fleet():
    """Zero shards is a config error, not an undefined mapping."""
    with pytest.raises(ValueError):
        shard_for(1, 0)


@given(st.lists(st.integers(min_value=0, max_value=7), max_size=40))
def test_split_reassemble_is_identity(shards: list[int]):
    """Splitting an envelope by shard and merging restores request order."""
    groups = split_by_shard(shards)
    # Each element index appears in exactly one group.
    flattened = sorted(i for _, indices in groups for i in indices)
    assert flattened == list(range(len(shards)))
    # Groups appear in first-appearance order and are homogeneous.
    for shard, indices in groups:
        assert all(shards[i] == shard for i in indices)

    parts = [(indices, [f"resp-{i}" for i in indices])
             for _, indices in groups]
    merged = reassemble(len(shards), parts)
    assert merged == [f"resp-{i}" for i in range(len(shards))]


def test_reassemble_rejects_shape_mismatch():
    """A lost or duplicated sub-response is a structural failure."""
    with pytest.raises(ValueError):
        reassemble(3, [([0, 1], ["a", "b"])])  # element 2 missing
    with pytest.raises(ValueError):
        reassemble(2, [([0], ["a", "extra"]), ([1], ["b"])])
