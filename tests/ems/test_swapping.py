"""EWB: random, untargetable, pool-only page surrender."""

from __future__ import annotations

import pytest

from repro.common.constants import PAGE_SIZE
from repro.core.config import SystemConfig
from repro.core.enclave import EnclaveConfig
from repro.core.system import HyperTEESystem
from repro.ems.swapping import EWB_OVERSHOOT_MAX
from repro.errors import SanityCheckError


@pytest.fixture
def sys_() -> HyperTEESystem:
    return HyperTEESystem(SystemConfig(cs_memory_mb=48, ems_memory_mb=4))


def test_ewb_returns_at_least_requested(sys_: HyperTEESystem):
    result, instr, crypto = sys_.swap.ewb(4)
    assert 4 <= result["pages"] <= 4 + EWB_OVERSHOOT_MAX
    assert instr > 0 and crypto > 0  # surrendered pages are encrypted


def test_ewb_counts_vary(sys_: HyperTEESystem):
    """The surrendered count is randomized per round (Section IV-A)."""
    counts = {sys_.swap.ewb(4)[0]["pages"] for _ in range(12)}
    assert len(counts) > 1


def test_ewb_frames_come_from_free_pool(sys_: HyperTEESystem):
    """EWB never touches a frame any enclave is using."""
    result, _, _ = sys_.enclaves.ecreate(EnclaveConfig())
    enclave_id = result["enclave_id"]
    sys_.enclaves.eadd(enclave_id, b"code")
    control = sys_.enclaves.get(enclave_id)
    in_use = set(control.frames)
    swap_result, _, _ = sys_.swap.ewb(8)
    assert not (set(swap_result["frames"]) & in_use)


def test_ewb_frames_zeroed_and_unmarked(sys_: HyperTEESystem):
    swap_result, _, _ = sys_.swap.ewb(3)
    for frame in swap_result["frames"]:
        assert sys_.memory.read_raw(frame * PAGE_SIZE, 64) == bytes(64)
        assert not sys_.bitmap.is_enclave(frame)


def test_ewb_shrinks_pool(sys_: HyperTEESystem):
    before = sys_.pool.capacity
    result, _, _ = sys_.swap.ewb(5)
    assert sys_.pool.capacity == before - result["pages"]


def test_ewb_requires_positive_count(sys_: HyperTEESystem):
    with pytest.raises(SanityCheckError):
        sys_.swap.ewb(0)


def test_ewb_selection_is_random(sys_: HyperTEESystem):
    """Successive rounds pick non-adjacent frame sets — no pattern for
    the OS to correlate with enclave activity."""
    first, _, _ = sys_.swap.ewb(4)
    second, _, _ = sys_.swap.ewb(4)
    # Disjoint by construction; also not simply consecutive runs.
    frames = sorted(first["frames"])
    consecutive = all(b - a == 1 for a, b in zip(frames, frames[1:]))
    assert not (consecutive and sorted(second["frames"])[0] == frames[-1] + 1)
