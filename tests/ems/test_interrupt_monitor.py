"""Varys-style interrupt-frequency anomaly detection."""

from __future__ import annotations

import pytest

from repro.common.constants import CS_CORE_FREQ_HZ
from repro.common.types import EnclaveState
from repro.core.api import HyperTEE
from repro.core.enclave import EnclaveConfig


@pytest.fixture
def rig():
    tee = HyperTEE()
    enclave = tee.launch_enclave(b"stepped", EnclaveConfig(name="victim"))
    return tee, enclave


def cycles_at_hz(hz: float, count: int) -> list[int]:
    period = int(CS_CORE_FREQ_HZ / hz)
    return [i * period for i in range(count)]


def test_benign_timer_rate_passes(rig):
    """A 1 kHz OS timer tick never trips the detector."""
    tee, enclave = rig
    monitor = tee.system.interrupt_monitor
    enclave.enter()
    for cycle in cycles_at_hz(1000, 200):
        flagged = monitor.observe(enclave.enclave_id, cycle)
    assert not flagged
    assert not monitor.is_flagged(enclave.enclave_id)


def test_single_stepping_rate_flagged(rig):
    """SGX-Step-style ~100 kHz interrupt storms are flagged and the
    enclave is pulled off the core."""
    tee, enclave = rig
    monitor = tee.system.interrupt_monitor
    enclave.enter()
    flagged = False
    for cycle in cycles_at_hz(100_000, 64):
        flagged = monitor.observe(enclave.enclave_id, cycle) or flagged
    assert flagged
    control = tee.system.enclaves.enclaves[enclave.enclave_id]
    assert control.state is EnclaveState.SUSPENDED


def test_window_slides(rig):
    """Bursts separated by quiet periods are fine if each window is."""
    tee, enclave = rig
    monitor = tee.system.interrupt_monitor
    enclave.enter()
    window = monitor.window_cycles
    flagged = False
    for burst in range(5):
        base = burst * window * 10
        for i in range(monitor.max_per_window - 2):
            flagged = monitor.observe(enclave.enclave_id,
                                      base + i * 100) or flagged
    assert not flagged


def test_clear_resets(rig):
    tee, enclave = rig
    monitor = tee.system.interrupt_monitor
    enclave.enter()
    for cycle in cycles_at_hz(100_000, 64):
        monitor.observe(enclave.enclave_id, cycle)
    assert monitor.is_flagged(enclave.enclave_id)
    monitor.clear(enclave.enclave_id)
    assert not monitor.is_flagged(enclave.enclave_id)


def test_stats(rig):
    tee, enclave = rig
    monitor = tee.system.interrupt_monitor
    enclave.enter()
    for cycle in cycles_at_hz(1000, 10):
        monitor.observe(enclave.enclave_id, cycle)
    assert monitor.stats.observed == 10
