"""Sharding conformance: scale-out must not change what the TEE does.

Two differential contracts pin the multi-EMS shard pool:

1. **``ems_shards=1`` is the identity.** A one-shard config takes the
   exact legacy construction path (``shard_pool is None``, no extra RNG
   draws, no wrapper objects), so every observable — physical-memory
   digest, modelled cycles, serve counts, measurements — is bit-for-bit
   the default platform's.
2. **N shards are semantically equivalent to one.** The same scripted
   workload on a 4-shard fleet yields the same enclave IDs (the pool
   mints them platform-globally from 1), the same measurements, the
   same readbacks, CA-verifiable quotes, and the same total modelled
   cycles and requests served; only *where* each request was served
   moves. Both engines are held to the same contract.
"""

from __future__ import annotations

import pytest

from repro.common.types import Primitive
from repro.core.api import HyperTEE
from repro.core.config import SystemConfig
from repro.core.enclave import EnclaveConfig
from repro.eval.throughput import memory_digest


@pytest.fixture(params=("reference", "fast"))
def engine(request) -> str:
    return request.param


def _scripted_run(shards: int | None, engine: str,
                  seed: int = 0x51AD) -> dict:
    """The conformance workload: mixed lifecycle over five enclaves.

    ``shards=None`` builds the config without touching the knob at all —
    the pre-shard construction path, byte for byte.
    """
    if shards is None:
        config = SystemConfig(seed=seed, engine=engine)
    else:
        config = SystemConfig(seed=seed, engine=engine, ems_shards=shards)
    tee = HyperTEE(config)
    ca = tee.system.certificate_authority()
    out: dict = {"ids": [], "measurements": [], "readbacks": [],
                 "quotes_verify": []}
    enclaves = []
    for i in range(5):
        enclave = tee.launch_enclave_batched(
            f"conformance-{i}".encode() * 40,
            EnclaveConfig(name=f"conf{i}", heap_pages_max=32))
        enclaves.append(enclave)
        out["ids"].append(enclave.enclave_id)
        out["measurements"].append(enclave.measurement)
    for i, enclave in enumerate(enclaves):
        with enclave.running():
            vaddr = enclave.ealloc(2)
            enclave.write(vaddr, f"sec{i}".encode())
            out["readbacks"].append(enclave.read(vaddr, 4))
            # Demand fault inside the heap budget: the page-fault path.
            enclave.write(vaddr + 3 * 4096, b"demand")
            quote = enclave.attest(report_data=b"conformance")
            out["quotes_verify"].append(ca.verify_quote(
                quote, expected_enclave_measurement=enclave.measurement))
            enclave.efree(vaddr)
    tee.invoke_os(Primitive.EWB, {"pages": 2})
    for enclave in enclaves:
        enclave.destroy()
    out["primitive_cycles"] = tee.primitive_cycles
    out["requests_served"] = tee.system.ems_requests_served()
    out["memory_digest"] = memory_digest(tee.system)
    out["shard_pool"] = tee.system.shard_pool
    return out


def test_one_shard_config_takes_legacy_path(engine: str):
    """``ems_shards=1`` must not even build the pool machinery."""
    tee = HyperTEE(SystemConfig(engine=engine, ems_shards=1))
    assert tee.system.shard_pool is None
    assert tee.system.ems_runtimes == [tee.system.ems]


def test_one_shard_is_bitforbit_the_default(engine: str):
    """Explicit ``ems_shards=1`` == config default, every observable.

    This is the hard identity contract: the one-shard platform must be
    indistinguishable from a platform built before sharding existed —
    same physical-memory digest, same modelled cycles, same everything.
    """
    explicit = _scripted_run(shards=1, engine=engine)
    default = _scripted_run(shards=None, engine=engine)
    assert explicit["shard_pool"] is None
    for field in ("ids", "measurements", "readbacks", "quotes_verify",
                  "primitive_cycles", "requests_served", "memory_digest"):
        assert explicit[field] == default[field], \
            f"ems_shards=1 diverged from the default platform on {field}"


@pytest.mark.parametrize("shards", (2, 4))
def test_n_shards_semantically_equivalent_to_one(shards: int, engine: str):
    """The fleet answers exactly like a single EMS, cycle-for-cycle."""
    single = _scripted_run(shards=1, engine=engine)
    fleet = _scripted_run(shards=shards, engine=engine)

    assert fleet["shard_pool"] is not None
    assert fleet["ids"] == single["ids"]
    assert fleet["measurements"] == single["measurements"]
    assert fleet["readbacks"] == single["readbacks"]
    assert fleet["quotes_verify"] == single["quotes_verify"] == [True] * 5
    assert fleet["primitive_cycles"] == single["primitive_cycles"]
    assert fleet["requests_served"] == single["requests_served"]

    # The work actually spread: more than one shard served requests.
    summary = fleet["shard_pool"].stats_summary()
    active = [row for row in summary["per_shard"] if row["served"] > 0]
    assert len(active) > 1, "a fleet where one shard serves everything " \
                            "is a routing failure"
    assert sum(row["served"] for row in summary["per_shard"]) == \
        fleet["requests_served"]


def test_fleet_identical_across_engines():
    """Reference and fast engines agree on the sharded platform too."""
    reference = _scripted_run(shards=4, engine="reference")
    fast = _scripted_run(shards=4, engine="fast")
    assert reference["measurements"] == fast["measurements"]
    assert reference["readbacks"] == fast["readbacks"]
    assert reference["primitive_cycles"] == fast["primitive_cycles"]
    assert reference["requests_served"] == fast["requests_served"]
    assert reference["memory_digest"] == fast["memory_digest"]
