"""Secure boot chain: verification, tamper detection, encryption at rest."""

from __future__ import annotations

import pytest

from repro.ems.boot import EMCALL_IMAGE, RUNTIME_IMAGE, provision, secure_boot
from repro.errors import SecureBootError
from repro.hw.devices import EEPROM, EFuse, PrivateFlash

RUNTIME = b"ems-runtime-image" * 10
EMCALL = b"emcall-firmware" * 10


@pytest.fixture
def provisioned():
    fuse = EFuse()
    fuse.burn("EK", b"E" * 32)
    fuse.burn("SK", b"S" * 32)
    flash, eeprom = PrivateFlash(), EEPROM()
    provision(fuse, flash, eeprom, RUNTIME, EMCALL)
    return fuse, flash, eeprom


def test_clean_boot(provisioned):
    report = secure_boot(*provisioned)
    assert report.runtime_image == RUNTIME
    assert report.emcall_image == EMCALL
    assert len(report.platform_measurement) == 32


def test_flash_stores_ciphertext(provisioned):
    _, flash, _ = provisioned
    assert RUNTIME not in flash.load(RUNTIME_IMAGE)
    assert EMCALL not in flash.load(EMCALL_IMAGE)


def test_tampered_runtime_refused(provisioned):
    fuse, flash, eeprom = provisioned
    flash.tamper(RUNTIME_IMAGE, 5, 0xAA)
    with pytest.raises(SecureBootError, match="Runtime"):
        secure_boot(fuse, flash, eeprom)


def test_tampered_emcall_refused(provisioned):
    fuse, flash, eeprom = provisioned
    flash.tamper(EMCALL_IMAGE, 5, 0xAA)
    with pytest.raises(SecureBootError, match="EMCall"):
        secure_boot(fuse, flash, eeprom)


def test_swapped_golden_hash_refused(provisioned):
    fuse, flash, eeprom = provisioned
    eeprom.write("runtime-hash", b"\x00" * 32)
    with pytest.raises(SecureBootError):
        secure_boot(fuse, flash, eeprom)


def test_platform_measurement_tracks_tcb(provisioned):
    fuse, flash, eeprom = provisioned
    baseline = secure_boot(fuse, flash, eeprom).platform_measurement
    provision(fuse, flash, eeprom, RUNTIME + b"-v2", EMCALL)
    updated = secure_boot(fuse, flash, eeprom).platform_measurement
    assert updated != baseline
