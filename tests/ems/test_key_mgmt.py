"""Key manager: KeyID table, derivations, erasure, rotation."""

from __future__ import annotations

import pytest

from repro.common.rng import DeterministicRng
from repro.ems.key_mgmt import KeyManager
from repro.errors import KeySlotExhausted
from repro.hw.devices import EFuse
from repro.hw.encryption_engine import MemoryEncryptionEngine


@pytest.fixture
def keys() -> KeyManager:
    fuse = EFuse()
    fuse.burn("EK", b"E" * 32)
    fuse.burn("SK", b"S" * 32)
    return KeyManager(fuse, MemoryEncryptionEngine(key_slots=4),
                      DeterministicRng(1))


def test_allocate_and_release(keys: KeyManager):
    keyid = keys.allocate_keyid(b"k" * 32)
    assert keyid in keys.live_keyids()
    keys.release_keyid(keyid)
    assert keyid not in keys.live_keyids()


def test_keyids_are_unique(keys: KeyManager):
    ids = {keys.allocate_keyid(bytes([i]) * 32) for i in range(3)}
    assert len(ids) == 3


def test_exhaustion_propagates(keys: KeyManager):
    for i in range(4):
        keys.allocate_keyid(bytes([i]) * 32)
    with pytest.raises(KeySlotExhausted):
        keys.allocate_keyid(b"x" * 32)


def test_reprogram_keeps_number(keys: KeyManager):
    keyid = keys.allocate_keyid(b"k" * 32)
    keys.release_keyid(keyid)
    keys.reprogram_keyid(keyid, b"k" * 32)
    assert keyid in keys.live_keyids()


def test_attestation_key_stable_until_rotated(keys: KeyManager):
    first = keys.attestation_key()
    assert keys.attestation_key() == first
    keys.rotate_attestation_key()
    assert keys.attestation_key() != first


def test_derivations_separated(keys: KeyManager):
    m = b"m" * 32
    assert keys.enclave_memory_key(m) != keys.sealing_key(m)
    assert keys.report_key(m) != keys.sealing_key(m)
    assert keys.shared_memory_key(1, 1) != keys.enclave_memory_key(m)


def test_platform_key_from_ek(keys: KeyManager):
    other_fuse = EFuse()
    other_fuse.burn("EK", b"X" * 32)
    other_fuse.burn("SK", b"S" * 32)
    other = KeyManager(other_fuse, MemoryEncryptionEngine(),
                       DeterministicRng(1))
    assert keys.platform_signing_key() != other.platform_signing_key()
    # SK-rooted keys unchanged when only EK differs.
    assert keys.sealing_key(b"m") == other.sealing_key(b"m")
