"""Data sealing: measurement + device binding, authentication."""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.rng import DeterministicRng
from repro.ems.key_mgmt import KeyManager
from repro.ems.sealing import SealingService
from repro.errors import SealingError
from repro.hw.devices import EFuse
from repro.hw.encryption_engine import MemoryEncryptionEngine


def make_service(sk: bytes = b"S" * 32, seed: int = 1) -> SealingService:
    fuse = EFuse()
    fuse.burn("EK", b"E" * 32)
    fuse.burn("SK", sk)
    keys = KeyManager(fuse, MemoryEncryptionEngine(), DeterministicRng(seed))
    return SealingService(keys, DeterministicRng(seed))


def test_roundtrip():
    service = make_service()
    blob = service.seal(b"m" * 32, b"persistent secret")
    assert service.unseal(b"m" * 32, blob) == b"persistent secret"


def test_ciphertext_hides_plaintext():
    service = make_service()
    blob = service.seal(b"m" * 32, b"persistent secret")
    assert b"persistent secret" not in blob.ciphertext


def test_wrong_measurement_rejected():
    """Only the same enclave identity can unseal."""
    service = make_service()
    blob = service.seal(b"m" * 32, b"secret")
    with pytest.raises(SealingError):
        service.unseal(b"x" * 32, blob)


def test_wrong_device_rejected():
    """Only the same physical device (SK) can unseal."""
    blob = make_service(sk=b"S" * 32).seal(b"m" * 32, b"secret")
    with pytest.raises(SealingError):
        make_service(sk=b"T" * 32).unseal(b"m" * 32, blob)


def test_tampered_blob_rejected():
    service = make_service()
    blob = service.seal(b"m" * 32, b"secret")
    tampered = dataclasses.replace(
        blob, ciphertext=bytes([blob.ciphertext[0] ^ 1]) + blob.ciphertext[1:])
    with pytest.raises(SealingError):
        service.unseal(b"m" * 32, tampered)


def test_nonces_differ_across_seals():
    service = make_service()
    a = service.seal(b"m" * 32, b"same data")
    b = service.seal(b"m" * 32, b"same data")
    assert a.nonce != b.nonce
    assert a.ciphertext != b.ciphertext


@given(st.binary(min_size=0, max_size=512))
@settings(max_examples=40, deadline=None)
def test_roundtrip_property(data: bytes):
    service = make_service()
    assert service.unseal(b"m" * 32, service.seal(b"m" * 32, data)) == data
