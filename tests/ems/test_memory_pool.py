"""Enclave memory pool: refills, thresholds, bitmap handling, EWB."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.rng import DeterministicRng
from repro.cs.os import CSOperatingSystem
from repro.ems.memory_pool import EnclaveMemoryPool
from repro.hw.bitmap import EnclaveBitmap
from repro.hw.memory import PhysicalMemory


def make_pool(initial: int = 64, with_bitmap: bool = True, seed: int = 1):
    memory = PhysicalMemory(32 * 1024 * 1024)
    os_ = CSOperatingSystem(memory, first_free_frame=16)
    bitmap = EnclaveBitmap(memory, base_paddr=0) if with_bitmap else None
    pool = EnclaveMemoryPool(os_, memory, DeterministicRng(seed),
                             bitmap=bitmap, initial_pages=initial,
                             enlarge_pages=32)
    return pool, os_, bitmap, memory


def test_initial_refill_logged_as_pool():
    pool, os_, _, _ = make_pool()
    assert pool.capacity == 64
    assert os_.allocation_log[-1].requestor == "ems-pool"


def test_take_is_invisible_to_os():
    """Taking frames for an enclave adds no OS allocation event."""
    pool, os_, _, _ = make_pool()
    events_before = len(os_.allocation_log)
    pool.take(8)
    assert len(os_.allocation_log) == events_before


def test_take_validates_count():
    pool, _, _, _ = make_pool()
    with pytest.raises(ValueError):
        pool.take(0)


def test_refill_when_short():
    pool, os_, _, _ = make_pool(initial=16)
    pool.take(40)  # more than the pool holds -> bulk refill happens
    assert pool.capacity >= 40
    assert all(e.requestor == "ems-pool" for e in os_.allocation_log)


def test_threshold_rerandomized_on_enlarge():
    pool, _, _, _ = make_pool(initial=16)
    thresholds = set()
    for _ in range(6):
        pool.take(12)
        thresholds.add(pool._threshold)
    assert len(thresholds) > 1  # the trigger moves (anti-inference)


def test_pool_frames_are_bitmap_marked():
    pool, _, bitmap, _ = make_pool()
    frames = pool.take(4)
    pool.drain_flush_list()
    for frame in frames:
        assert bitmap.is_enclave(frame)


def test_give_back_zeroes_and_stays_marked():
    pool, _, bitmap, memory = make_pool()
    frames = pool.take(2)
    memory.write_raw(frames[0] * 4096, b"leftover-secret")
    pool.give_back(frames)
    assert memory.read_raw(frames[0] * 4096, 15) == bytes(15)
    assert bitmap.is_enclave(frames[0])  # still pool = still enclave


def test_surrender_random_clears_bitmap_and_zeroes():
    pool, _, bitmap, memory = make_pool()
    surrendered = pool.surrender_random(5)
    assert len(surrendered) == 5
    for frame in surrendered:
        assert not bitmap.is_enclave(frame)
        assert memory.read_raw(frame * 4096, 64) == bytes(64)
    assert frozenset(surrendered) & frozenset(pool._free) == frozenset()


def test_surrender_bounded_by_free():
    pool, _, _, _ = make_pool(initial=16)
    assert len(pool.surrender_random(100)) <= 16


def test_take_contiguous():
    pool, _, _, _ = make_pool()
    frames = pool.take_contiguous(8)
    assert frames == list(range(frames[0], frames[0] + 8))


def test_take_contiguous_after_fragmentation():
    pool, _, _, _ = make_pool(initial=32)
    taken = pool.take(16)
    pool.give_back(taken[::2])  # return every other frame: fragmented
    frames = pool.take_contiguous(12)
    assert frames == list(range(frames[0], frames[0] + 12))


@given(takes=st.lists(st.integers(min_value=1, max_value=20),
                      min_size=1, max_size=12))
@settings(max_examples=25, deadline=None)
def test_conservation_property(takes: list[int]):
    """used + free == capacity, always; no frame handed out twice."""
    pool, _, _, _ = make_pool(initial=32)
    handed: list[int] = []
    for n in takes:
        handed.extend(pool.take(n))
    assert len(set(handed)) == len(handed)
    assert pool.used_count + pool.free_count == pool.capacity
    pool.give_back(handed)
    assert pool.used_count == 0
