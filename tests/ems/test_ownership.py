"""Page ownership table: exclusive claims, releases, queries."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ems.ownership import Owner, OwnerKind, PageOwnershipTable
from repro.errors import OwnershipError


def test_claim_and_query():
    table = PageOwnershipTable()
    table.claim(10, Owner.enclave(1))
    assert table.owner_of(10) == Owner.enclave(1)
    assert table.owner_of(11) is None


def test_conflicting_claim_rejected():
    """The anti-double-mapping check of Section IV-B."""
    table = PageOwnershipTable()
    table.claim(10, Owner.enclave(1))
    with pytest.raises(OwnershipError):
        table.claim(10, Owner.enclave(2))
    with pytest.raises(OwnershipError):
        table.claim(10, Owner.shared(5))


def test_idempotent_reclaim_by_same_owner():
    table = PageOwnershipTable()
    table.claim(10, Owner.enclave(1))
    table.claim(10, Owner.enclave(1))  # no error


def test_claim_all_is_atomic():
    """A conflict mid-batch must leave no partial claims behind."""
    table = PageOwnershipTable()
    table.claim(12, Owner.enclave(2))
    with pytest.raises(OwnershipError):
        table.claim_all([10, 11, 12], Owner.enclave(1))
    assert table.owner_of(10) is None
    assert table.owner_of(11) is None


def test_release_requires_owner():
    table = PageOwnershipTable()
    table.claim(10, Owner.enclave(1))
    with pytest.raises(OwnershipError):
        table.release(10, Owner.enclave(2))
    table.release(10, Owner.enclave(1))
    assert table.owner_of(10) is None
    table.release(10, Owner.enclave(1))  # releasing unowned is a no-op


def test_frames_owned_by():
    table = PageOwnershipTable()
    table.claim_all([1, 2, 3], Owner.enclave(1))
    table.claim(4, Owner.shared(9))
    assert sorted(table.frames_owned_by(Owner.enclave(1))) == [1, 2, 3]
    assert table.frames_owned_by(Owner.shared(9)) == [4]


def test_verify_unowned():
    table = PageOwnershipTable()
    table.claim(5, Owner.peripheral("nic"))
    table.verify_unowned([1, 2, 3])
    with pytest.raises(OwnershipError):
        table.verify_unowned([4, 5])


def test_owner_kinds_distinct():
    assert Owner.enclave(1) != Owner.shared(1)
    assert Owner.ems().kind is OwnerKind.EMS


@given(claims=st.lists(
    st.tuples(st.integers(min_value=0, max_value=50),
              st.integers(min_value=1, max_value=5)),
    min_size=1, max_size=40))
@settings(max_examples=30, deadline=None)
def test_exclusivity_property(claims: list[tuple[int, int]]):
    """However claims interleave, a frame never has two owners."""
    table = PageOwnershipTable()
    recorded: dict[int, int] = {}
    for frame, enclave in claims:
        try:
            table.claim(frame, Owner.enclave(enclave))
            recorded.setdefault(frame, enclave)
            assert recorded[frame] == enclave
        except OwnershipError:
            assert frame in recorded and recorded[frame] != enclave
