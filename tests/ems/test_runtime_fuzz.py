"""Fuzzing the EMS runtime's request surface.

The sanity-check contract (paper Section III-B, mechanism 3): whatever a
compromised CS sends through the mailbox, the EMS never crashes and
never does anything but return a well-formed response. Hypothesis throws
arbitrarily-typed argument soup at every primitive and asserts the
dispatcher's total behaviour.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.packets import PrimitiveRequest, PrimitiveResponse, ResponseStatus
from repro.common.types import Permission, Primitive, Privilege
from repro.core.config import SystemConfig
from repro.core.system import HyperTEESystem

# Argument soup: wrong types, huge ints, negative values, junk keys.
_VALUES = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-2**40, max_value=2**40),
    st.binary(max_size=64),
    st.text(max_size=16),
    st.sampled_from([Permission.RW, Permission.READ, Permission.NONE]),
    st.lists(st.integers(), max_size=4),
)
_ARGS = st.dictionaries(
    st.sampled_from(["enclave_id", "pages", "vaddr", "content", "config",
                     "shm_id", "receiver_id", "perm", "max_perm",
                     "device_id", "fault_vaddr", "mode", "report_data",
                     "certificate", "challenger_measurement", "junk"]),
    _VALUES, max_size=6)


@pytest.fixture(scope="module")
def sys_() -> HyperTEESystem:
    return HyperTEESystem(SystemConfig(cs_memory_mb=64, ems_memory_mb=4))


@given(primitive=st.sampled_from(list(Primitive)), args=_ARGS,
       enclave_id=st.one_of(st.none(), st.integers(min_value=-5,
                                                   max_value=50)),
       request_id=st.integers(min_value=1, max_value=2**31))
@settings(max_examples=300, deadline=None)
def test_dispatch_is_total(sys_: HyperTEESystem, primitive, args,
                           enclave_id, request_id):
    """Any request yields a PrimitiveResponse; no exception escapes."""
    request = PrimitiveRequest(
        request_id=request_id, primitive=primitive,
        enclave_id=enclave_id, privilege=Privilege.SUPERVISOR, args=args)
    response = sys_.ems.dispatch(request)
    assert isinstance(response, PrimitiveResponse)
    assert response.request_id == request_id
    assert isinstance(response.status, ResponseStatus)
    assert response.service_cycles >= 0


@given(args=_ARGS)
@settings(max_examples=100, deadline=None)
def test_fuzzed_requests_never_leak_frames(sys_: HyperTEESystem, args):
    """Failed requests must not leak pool frames or ownership claims."""
    used_before = sys_.pool.used_count
    request = PrimitiveRequest(
        request_id=sys_.rng.randint(1, 2**31, stream="fuzz"),
        primitive=Primitive.EALLOC, enclave_id=None,
        privilege=Privilege.USER, args=args)
    response = sys_.ems.dispatch(request)
    if not response.ok:
        assert sys_.pool.used_count == used_before


def test_platform_still_functional_after_fuzzing(sys_: HyperTEESystem):
    """After the fuzz barrage the platform serves real work normally."""
    from repro.core.enclave import EnclaveConfig

    result, _, _ = sys_.enclaves.ecreate(EnclaveConfig(name="post-fuzz"))
    enclave_id = result["enclave_id"]
    sys_.enclaves.eadd(enclave_id, b"code")
    sys_.enclaves.emeas(enclave_id)
    sys_.enclaves.eenter(enclave_id)
    alloc, _, _ = sys_.pages.ealloc(enclave_id, 2)
    assert alloc["pages"] == 2
