"""Soak: thousands of serve ops across 4 shards with per-step invariants.

The serve driver's load loop (launch / enter / memory / batch / attest /
exit / migrate / destroy, seeded op mix) runs long enough to cycle many
enclave generations through every shard, and a per-step hook asserts
the fleet invariants the chaos suite checks only at the end:

* **Owner uniqueness** — no enclave ID resident on two shards at once.
* **Frame conservation** — every shard's ``used + free == capacity``;
  transfers move accounting, never create or leak it.
* **SLO report well-formedness** — the report the run emits has sane
  quantile rows at every sampling point, not just at the end.

Marked ``slow``: the fast loop runs the conformance suite instead.
"""

from __future__ import annotations

import pytest

from repro.core.api import HyperTEE
from repro.eval.serve import ServeConfig, run_serve
from tests.faults.chaoslib import check_invariants

pytestmark = pytest.mark.slow

SOAK_OPS = 2400
SOAK_SHARDS = 4
CHECK_EVERY = 20


@pytest.mark.parametrize("engine", ("reference", "fast"))
def test_serve_soak_holds_invariants(engine: str):
    """The multi-thousand-op drive never violates a fleet invariant."""
    slo_samples = []

    def invariants(step: int, tee: HyperTEE) -> None:
        if (step + 1) % CHECK_EVERY:
            return
        check_invariants(tee.system)  # uniqueness + conservation
        rows = tee.system.obs.slo.report()
        assert rows, "SLO engine lost its samples mid-run"
        for row in rows:
            assert row["count"] > 0
            assert row["p50"] is not None and row["p50"] >= 0
            assert row["p99"] >= row["p50"]
        slo_samples.append(len(rows))

    report = run_serve(
        ServeConfig(shards=SOAK_SHARDS, workers=4, ops=SOAK_OPS,
                    seed=0x50AC, engine=engine),
        on_step=invariants)

    assert slo_samples, "the invariant hook never ran"
    totals = report["totals"]
    assert totals["steps"] == SOAK_OPS
    assert totals["degraded"] == 0, "clean weather must not degrade"
    assert totals["completed"] == SOAK_OPS
    assert not report["starvation"]["starved"]

    # The soak actually soaked: transfers happened, every shard served,
    # and many enclave generations cycled through.
    assert totals["transfers"] > 0
    per_shard = report["shards"]["per_shard"]
    assert len(per_shard) == SOAK_SHARDS
    assert all(row["served"] > 0 for row in per_shard)
    assert sum(row["served"] for row in per_shard) == \
        totals["requests_served"]
    # Nothing left behind at the end: the final accounting balances.
    for row in per_shard:
        assert row["pool_used"] + row["pool_free"] == row["pool_capacity"]
