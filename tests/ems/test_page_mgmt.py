"""EALLOC / EFREE / demand-fault service."""

from __future__ import annotations

import pytest

from repro.common.constants import PAGE_SHIFT, PAGE_SIZE
from repro.core.config import SystemConfig
from repro.core.enclave import HEAP_BASE_VPN, EnclaveConfig
from repro.core.system import HyperTEESystem
from repro.errors import SanityCheckError


@pytest.fixture
def sys_() -> HyperTEESystem:
    return HyperTEESystem(SystemConfig(cs_memory_mb=48, ems_memory_mb=4))


def running_enclave(sys_: HyperTEESystem, heap_max: int = 64) -> int:
    result, _, _ = sys_.enclaves.ecreate(
        EnclaveConfig(heap_pages_max=heap_max))
    enclave_id = result["enclave_id"]
    sys_.enclaves.eadd(enclave_id, b"code")
    sys_.enclaves.emeas(enclave_id)
    sys_.enclaves.eenter(enclave_id)
    return enclave_id


def test_ealloc_maps_heap(sys_: HyperTEESystem):
    enclave_id = running_enclave(sys_)
    result, instr, _ = sys_.pages.ealloc(enclave_id, 4)
    assert instr > 0
    control = sys_.enclaves.get(enclave_id)
    base_vpn = result["vaddr"] >> PAGE_SHIFT
    assert base_vpn == HEAP_BASE_VPN
    for offset in range(4):
        pte = control.page_table.lookup(base_vpn + offset)
        assert pte is not None and pte.keyid == control.keyid


def test_ealloc_sequential_regions(sys_: HyperTEESystem):
    enclave_id = running_enclave(sys_)
    first, _, _ = sys_.pages.ealloc(enclave_id, 2)
    second, _, _ = sys_.pages.ealloc(enclave_id, 2)
    assert second["vaddr"] == first["vaddr"] + 2 * PAGE_SIZE


def test_ealloc_budget_enforced(sys_: HyperTEESystem):
    enclave_id = running_enclave(sys_, heap_max=4)
    sys_.pages.ealloc(enclave_id, 4)
    with pytest.raises(SanityCheckError):
        sys_.pages.ealloc(enclave_id, 1)


def test_ealloc_positive_pages(sys_: HyperTEESystem):
    enclave_id = running_enclave(sys_)
    with pytest.raises(SanityCheckError):
        sys_.pages.ealloc(enclave_id, 0)


def test_ealloc_pages_zeroed_under_enclave_key(sys_: HyperTEESystem):
    enclave_id = running_enclave(sys_)
    result, _, _ = sys_.pages.ealloc(enclave_id, 1)
    control = sys_.enclaves.get(enclave_id)
    pte = control.page_table.lookup(result["vaddr"] >> PAGE_SHIFT)
    data = sys_.memory.read(pte.ppn << PAGE_SHIFT, 64, control.keyid)
    assert data == bytes(64)


def test_efree_returns_to_pool(sys_: HyperTEESystem):
    enclave_id = running_enclave(sys_)
    result, _, _ = sys_.pages.ealloc(enclave_id, 4)
    free_before = sys_.pool.free_count
    sys_.pages.efree(enclave_id, result["vaddr"])
    assert sys_.pool.free_count == free_before + 4
    control = sys_.enclaves.get(enclave_id)
    assert control.page_table.lookup(result["vaddr"] >> PAGE_SHIFT) is None


def test_efree_unknown_region(sys_: HyperTEESystem):
    enclave_id = running_enclave(sys_)
    with pytest.raises(SanityCheckError):
        sys_.pages.efree(enclave_id, 0xDEAD000)


def test_fault_service_demand_allocates(sys_: HyperTEESystem):
    enclave_id = running_enclave(sys_)
    fault_vaddr = (HEAP_BASE_VPN + 10) << PAGE_SHIFT
    result, _, _ = sys_.pages.service_fault(enclave_id, fault_vaddr)
    assert result["pages"] == 1
    control = sys_.enclaves.get(enclave_id)
    assert control.page_table.lookup(HEAP_BASE_VPN + 10) is not None


def test_fault_outside_heap_rejected(sys_: HyperTEESystem):
    enclave_id = running_enclave(sys_)
    with pytest.raises(SanityCheckError):
        sys_.pages.service_fault(enclave_id, 0x1000)  # code region


def test_fault_beyond_budget_rejected(sys_: HyperTEESystem):
    enclave_id = running_enclave(sys_, heap_max=4)
    beyond = (HEAP_BASE_VPN + 4) << PAGE_SHIFT
    with pytest.raises(SanityCheckError):
        sys_.pages.service_fault(enclave_id, beyond)


def test_fault_on_mapped_page_rejected(sys_: HyperTEESystem):
    enclave_id = running_enclave(sys_)
    result, _, _ = sys_.pages.ealloc(enclave_id, 1)
    with pytest.raises(SanityCheckError):
        sys_.pages.service_fault(enclave_id, result["vaddr"])
