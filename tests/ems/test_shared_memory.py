"""Shared-memory management: keys, legal connections, permissions,
destroy rules, device grants (paper Section V)."""

from __future__ import annotations

import pytest

from repro.common.types import Permission
from repro.core.config import SystemConfig
from repro.core.enclave import EnclaveConfig
from repro.core.system import HyperTEESystem
from repro.errors import (
    ActiveConnectionsRemain,
    ConnectionNotAuthorized,
    NotRegionOwner,
    SanityCheckError,
    SharedMemoryError,
)


@pytest.fixture
def sys_() -> HyperTEESystem:
    return HyperTEESystem(SystemConfig(cs_memory_mb=48, ems_memory_mb=4))


def make_enclave(sys_: HyperTEESystem, name: str) -> int:
    result, _, _ = sys_.enclaves.ecreate(EnclaveConfig(name=name))
    enclave_id = result["enclave_id"]
    sys_.enclaves.eadd(enclave_id, name.encode())
    sys_.enclaves.emeas(enclave_id)
    return enclave_id


@pytest.fixture
def pair(sys_: HyperTEESystem) -> tuple[int, int]:
    return make_enclave(sys_, "sender"), make_enclave(sys_, "receiver")


def test_eshmget_creates_region(sys_: HyperTEESystem, pair):
    sender, _ = pair
    result, _, _ = sys_.shm.eshmget(sender, 4)
    region = sys_.shm.regions[result["shm_id"]]
    assert region.owner_enclave_id == sender
    assert len(region.frames) == 4
    # Contiguous frames (DMA requirement).
    assert region.frames == list(range(region.frames[0], region.frames[0] + 4))
    assert sys_.engine.has_key(region.keyid)


def test_region_key_is_dedicated(sys_: HyperTEESystem, pair):
    """Shared keys are separate from every private memory key (V-A)."""
    sender, _ = pair
    result, _, _ = sys_.shm.eshmget(sender, 1)
    region = sys_.shm.regions[result["shm_id"]]
    sender_control = sys_.enclaves.get(sender)
    assert region.keyid != sender_control.keyid
    assert region.key != sender_control.memory_key


def test_budget_and_count_sanity(sys_: HyperTEESystem, pair):
    sender, _ = pair
    with pytest.raises(SanityCheckError):
        sys_.shm.eshmget(sender, 0)
    with pytest.raises(SanityCheckError):
        sys_.shm.eshmget(sender, 10_000)  # beyond shared_pages_max


def test_unauthorized_attach_rejected(sys_: HyperTEESystem, pair):
    """The anti-brute-force rule: guessing a ShmID achieves nothing."""
    sender, receiver = pair
    result, _, _ = sys_.shm.eshmget(sender, 2)
    with pytest.raises(ConnectionNotAuthorized):
        sys_.shm.eshmat(receiver, result["shm_id"])


def test_share_then_attach(sys_: HyperTEESystem, pair):
    sender, receiver = pair
    shm_id = sys_.shm.eshmget(sender, 2)[0]["shm_id"]
    sys_.shm.eshmshr(sender, shm_id, receiver, Permission.RW)
    attach = sys_.shm.eshmat(receiver, shm_id)[0]
    receiver_control = sys_.enclaves.get(receiver)
    region = sys_.shm.regions[shm_id]
    pte = receiver_control.page_table.lookup(attach["vaddr"] >> 12)
    assert pte is not None and pte.keyid == region.keyid


def test_only_owner_authorizes(sys_: HyperTEESystem, pair):
    sender, receiver = pair
    third = make_enclave(sys_, "third")
    shm_id = sys_.shm.eshmget(sender, 1)[0]["shm_id"]
    with pytest.raises(NotRegionOwner):
        sys_.shm.eshmshr(receiver, shm_id, third, Permission.READ)


def test_granted_permission_capped_by_max(sys_: HyperTEESystem, pair):
    sender, receiver = pair
    shm_id = sys_.shm.eshmget(sender, 1, Permission.READ)[0]["shm_id"]
    with pytest.raises(SharedMemoryError):
        sys_.shm.eshmshr(sender, shm_id, receiver, Permission.RW)


def test_readonly_receiver_mapping(sys_: HyperTEESystem, pair):
    """Permission check against unprivileged tampering (V-C)."""
    sender, receiver = pair
    shm_id = sys_.shm.eshmget(sender, 1, Permission.RW)[0]["shm_id"]
    sys_.shm.eshmshr(sender, shm_id, receiver, Permission.READ)
    attach = sys_.shm.eshmat(receiver, shm_id)[0]
    pte = sys_.enclaves.get(receiver).page_table.lookup(attach["vaddr"] >> 12)
    assert pte.perm == Permission.READ


def test_double_attach_rejected(sys_: HyperTEESystem, pair):
    sender, _ = pair
    shm_id = sys_.shm.eshmget(sender, 1)[0]["shm_id"]
    sys_.shm.eshmat(sender, shm_id)
    with pytest.raises(SharedMemoryError):
        sys_.shm.eshmat(sender, shm_id)


def test_detach(sys_: HyperTEESystem, pair):
    sender, _ = pair
    shm_id = sys_.shm.eshmget(sender, 2)[0]["shm_id"]
    vaddr = sys_.shm.eshmat(sender, shm_id)[0]["vaddr"]
    sys_.shm.eshmdt(sender, shm_id)
    assert sys_.enclaves.get(sender).page_table.lookup(vaddr >> 12) is None
    with pytest.raises(SharedMemoryError):
        sys_.shm.eshmdt(sender, shm_id)  # not attached anymore


def test_destroy_rules(sys_: HyperTEESystem, pair):
    """Identity + active-connection checks against malicious release."""
    sender, receiver = pair
    shm_id = sys_.shm.eshmget(sender, 1)[0]["shm_id"]
    sys_.shm.eshmshr(sender, shm_id, receiver, Permission.RW)
    sys_.shm.eshmat(receiver, shm_id)

    with pytest.raises(NotRegionOwner):
        sys_.shm.eshmdes(receiver, shm_id)      # not the initial sender
    with pytest.raises(ActiveConnectionsRemain):
        sys_.shm.eshmdes(sender, shm_id)        # receiver still attached

    sys_.shm.eshmdt(receiver, shm_id)
    keyid = sys_.shm.regions[shm_id].keyid
    sys_.shm.eshmdes(sender, shm_id)
    assert shm_id not in sys_.shm.regions
    assert not sys_.engine.has_key(keyid)


def test_device_grant_configures_whitelist(sys_: HyperTEESystem, pair):
    sender, _ = pair
    shm_id = sys_.shm.eshmget(sender, 2)[0]["shm_id"]
    sys_.shm.grant_device(sender, shm_id, "gemmini", Permission.RW)
    region = sys_.shm.regions[shm_id]
    entries = sys_.ihub.dma_whitelist_for("gemmini")
    assert len(entries) == 1
    assert entries[0].base == region.base_paddr
    assert entries[0].size == region.size_bytes


def test_device_grant_requires_access(sys_: HyperTEESystem, pair):
    sender, receiver = pair
    shm_id = sys_.shm.eshmget(sender, 1)[0]["shm_id"]
    with pytest.raises(ConnectionNotAuthorized):
        sys_.shm.grant_device(receiver, shm_id, "gemmini", Permission.READ)


def test_destroy_clears_device_whitelist(sys_: HyperTEESystem, pair):
    sender, _ = pair
    shm_id = sys_.shm.eshmget(sender, 1)[0]["shm_id"]
    sys_.shm.grant_device(sender, shm_id, "gemmini", Permission.RW)
    sys_.shm.eshmdes(sender, shm_id)
    assert sys_.ihub.dma_whitelist_for("gemmini") == []


def test_unknown_region(sys_: HyperTEESystem, pair):
    sender, _ = pair
    with pytest.raises(SharedMemoryError):
        sys_.shm.eshmat(sender, 999)
