"""Enclave lifecycle: state machine, static allocation, teardown,
KeyID-slot exhaustion."""

from __future__ import annotations

import pytest

from repro.common.constants import PAGE_SIZE
from repro.common.types import EnclaveState
from repro.core.config import SystemConfig
from repro.core.enclave import EnclaveConfig
from repro.core.system import HyperTEESystem
from repro.errors import EnclaveStateError, SanityCheckError


@pytest.fixture
def sys_() -> HyperTEESystem:
    return HyperTEESystem(SystemConfig(cs_memory_mb=48, ems_memory_mb=4))


def create(sys_: HyperTEESystem, **kwargs) -> int:
    result, _, _ = sys_.enclaves.ecreate(EnclaveConfig(**kwargs))
    return result["enclave_id"]


def test_ecreate_static_allocation(sys_: HyperTEESystem):
    enclave_id = create(sys_, name="e", code_pages=2, stack_pages=3)
    control = sys_.enclaves.get(enclave_id)
    assert control.state is EnclaveState.CREATED
    # Stack is mapped at create; table frames + stack frames owned.
    assert len(control.frames) >= 3
    assert control.keyid > 0
    assert sys_.engine.has_key(control.keyid)


def test_eadd_respects_declared_code_pages(sys_: HyperTEESystem):
    enclave_id = create(sys_, code_pages=1)
    sys_.enclaves.eadd(enclave_id, b"code")
    with pytest.raises(SanityCheckError):
        sys_.enclaves.eadd(enclave_id, b"more")


def test_eadd_oversized_content(sys_: HyperTEESystem):
    enclave_id = create(sys_)
    with pytest.raises(SanityCheckError):
        sys_.enclaves.eadd(enclave_id, b"x" * (PAGE_SIZE + 1))


def test_eadd_content_encrypted_in_memory(sys_: HyperTEESystem):
    enclave_id = create(sys_)
    sys_.enclaves.eadd(enclave_id, b"SECRET-CODE-PAGE")
    control = sys_.enclaves.get(enclave_id)
    frame = control.frames[-1]
    raw = sys_.memory.read_raw(frame * PAGE_SIZE, 16)
    assert raw != b"SECRET-CODE-PAGE"


def test_state_machine_happy_path(sys_: HyperTEESystem):
    enclave_id = create(sys_)
    sys_.enclaves.eadd(enclave_id, b"code")
    sys_.enclaves.emeas(enclave_id)
    control = sys_.enclaves.get(enclave_id)
    assert control.state is EnclaveState.MEASURED
    assert control.measurement is not None
    sys_.enclaves.eenter(enclave_id)
    assert control.state is EnclaveState.RUNNING
    sys_.enclaves.eexit(enclave_id)
    assert control.state is EnclaveState.SUSPENDED
    sys_.enclaves.eresume(enclave_id)
    assert control.state is EnclaveState.RUNNING


def test_measurement_depends_on_content(sys_: HyperTEESystem):
    a = create(sys_)
    sys_.enclaves.eadd(a, b"image-one")
    result_a, _, _ = sys_.enclaves.emeas(a)
    b = create(sys_)
    sys_.enclaves.eadd(b, b"image-two")
    result_b, _, _ = sys_.enclaves.emeas(b)
    assert result_a["measurement"] != result_b["measurement"]


def test_eenter_requires_measured(sys_: HyperTEESystem):
    enclave_id = create(sys_)
    with pytest.raises(EnclaveStateError):
        sys_.enclaves.eenter(enclave_id)


def test_eadd_after_measure_rejected(sys_: HyperTEESystem):
    enclave_id = create(sys_)
    sys_.enclaves.eadd(enclave_id, b"code")
    sys_.enclaves.emeas(enclave_id)
    with pytest.raises(EnclaveStateError):
        sys_.enclaves.eadd(enclave_id, b"late")


def test_eresume_requires_suspended(sys_: HyperTEESystem):
    enclave_id = create(sys_)
    sys_.enclaves.eadd(enclave_id, b"code")
    sys_.enclaves.emeas(enclave_id)
    with pytest.raises(EnclaveStateError):
        sys_.enclaves.eresume(enclave_id)


def test_destroy_running_rejected(sys_: HyperTEESystem):
    enclave_id = create(sys_)
    sys_.enclaves.eadd(enclave_id, b"code")
    sys_.enclaves.emeas(enclave_id)
    sys_.enclaves.eenter(enclave_id)
    with pytest.raises(EnclaveStateError):
        sys_.enclaves.edestroy(enclave_id)


def test_destroy_reclaims_everything(sys_: HyperTEESystem):
    enclave_id = create(sys_)
    sys_.enclaves.eadd(enclave_id, b"code")
    control = sys_.enclaves.get(enclave_id)
    keyid = control.keyid
    frames = list(control.frames)
    pool_free_before = sys_.pool.free_count
    sys_.enclaves.edestroy(enclave_id)
    assert control.state is EnclaveState.DESTROYED
    assert not sys_.engine.has_key(keyid)
    assert sys_.pool.free_count >= pool_free_before + len(frames)
    # Frames were zeroed on the way back to the pool.
    for frame in frames:
        assert sys_.memory.read_raw(frame * PAGE_SIZE, 64) == bytes(64)
    with pytest.raises(EnclaveStateError):
        sys_.enclaves.get(enclave_id)


def test_unknown_enclave_rejected(sys_: HyperTEESystem):
    with pytest.raises(SanityCheckError):
        sys_.enclaves.get(9999)
    with pytest.raises(SanityCheckError):
        sys_.enclaves.get(None)


def test_keyid_exhaustion_suspends_and_recovers():
    """Section IV-C: on KeyID exhaustion the EMS suspends an enclave to
    free a slot; the suspended enclave gets its own slot number back on
    resume."""
    sys_ = HyperTEESystem(SystemConfig(cs_memory_mb=48, ems_memory_mb=4))
    sys_.engine.key_slots = sys_.engine.slots_in_use() + 2

    first_id = None
    ids = []
    for i in range(3):  # one more than the remaining slots
        result, _, _ = sys_.enclaves.ecreate(EnclaveConfig(name=f"e{i}"))
        ids.append(result["enclave_id"])
        if first_id is None:
            first_id = result["enclave_id"]

    first = sys_.enclaves.get(first_id)
    assert not sys_.engine.has_key(first.keyid)  # its slot was reclaimed

    # Bring it back: needs a slot again, evicting someone else.
    sys_.enclaves.eadd(first_id, b"code")
    sys_.enclaves.emeas(first_id)
    sys_.enclaves.eenter(first_id)
    assert sys_.engine.has_key(first.keyid)
