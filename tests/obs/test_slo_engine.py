"""The SLO engine: quantile digests, target table, budget arithmetic."""

from __future__ import annotations

import pytest

from repro.obs.metrics import MetricsRegistry, QuantileHistogram
from repro.obs.slo import (
    BATCH_OPERATION,
    DEFAULT_SLO_TABLE,
    QUANTILES,
    SLOEngine,
    load_slo_table,
)


# -- QuantileHistogram -------------------------------------------------------

def test_small_samples_are_exact_order_statistics():
    hist = QuantileHistogram()
    for value in [10, 20, 30, 40, 50, 60, 70, 80, 90, 100]:
        hist.observe(value)
    assert hist.exact_mode
    assert hist.percentile(0.50) == 50
    assert hist.percentile(0.99) == 100
    assert hist.percentile(0.999) == 100
    assert hist.quantiles() == {"p50": 50, "p95": 100, "p99": 100,
                                "p999": 100}


def test_overflow_switches_to_log_buckets_with_bounded_error():
    hist = QuantileHistogram(exact_limit=64)
    values = [1000 + 13 * i for i in range(500)]
    for value in values:
        hist.observe(value)
    assert not hist.exact_mode
    assert hist.count == 500
    ordered = sorted(values)
    for p in (0.50, 0.95, 0.99):
        exact = ordered[max(1, int(p * 500)) - 1]
        estimate = hist.percentile(p)
        # Quarter-octave buckets bound the relative quantile error ~9%.
        assert abs(estimate - exact) / exact < 0.10, (p, exact, estimate)


def test_buckets_are_maintained_in_both_modes():
    exact = QuantileHistogram(exact_limit=512)
    bucketed = QuantileHistogram(exact_limit=4)
    for value in [5, 50, 500, 5000, 50000, 500000]:
        exact.observe(value)
        bucketed.observe(value)
    assert exact.exact_mode and not bucketed.exact_mode
    # The Prometheus-facing bucket shape never depends on the mode.
    assert exact.buckets() == bucketed.buckets()
    assert sum(count for _, count in exact.buckets()) == 6


def test_min_max_mean_track_every_observation():
    hist = QuantileHistogram(exact_limit=2)
    for value in (8, 2, 14):
        hist.observe(value)
    assert (hist.min, hist.max) == (2, 14)
    assert hist.mean == pytest.approx(8.0)


# -- the declarative table ---------------------------------------------------

def test_default_table_loads_and_covers_the_batch_series():
    targets = load_slo_table(DEFAULT_SLO_TABLE)
    assert BATCH_OPERATION in targets
    assert targets["EALLOC"].percentile in QUANTILES
    assert targets["EALLOC"].error_budget == pytest.approx(0.001)


@pytest.mark.parametrize("row,message", [
    ({"operation": "X", "percentile": "p42", "threshold": 1,
      "objective": 0.9}, "percentile"),
    ({"operation": "X", "percentile": "p99", "threshold": 1,
      "objective": 0.0}, "objective"),
    ({"operation": "X", "percentile": "p99", "threshold": 0,
      "objective": 0.9}, "threshold"),
])
def test_bad_rows_are_rejected(row, message):
    with pytest.raises(ValueError, match=message):
        load_slo_table([row])


def test_duplicate_operations_are_rejected():
    row = {"operation": "X", "percentile": "p99", "threshold": 1,
           "objective": 0.9}
    with pytest.raises(ValueError, match="duplicate"):
        load_slo_table([row, dict(row)])


# -- the engine --------------------------------------------------------------

def _engine(table):
    return SLOEngine(MetricsRegistry(), table=table)


def test_compliant_operation_reports_zero_burn():
    engine = _engine([{"operation": "OP", "percentile": "p99",
                       "threshold": 100.0, "objective": 0.99}])
    for _ in range(50):
        engine.record("OP", 10)
    (row,) = engine.report()
    assert row["operation"] == "OP"
    assert row["compliant"] is True
    assert row["burn_rate"] == 0.0
    assert row["attained"] == 10


def test_violations_burn_the_error_budget():
    engine = _engine([{"operation": "OP", "percentile": "p50",
                       "threshold": 100.0, "objective": 0.90}])
    # 80 good, 20 over threshold: violating fraction 0.2, budget 0.1.
    for _ in range(80):
        engine.record("OP", 10)
    for _ in range(20):
        engine.record("OP", 500)
    (row,) = engine.report()
    assert row["burn_rate"] == pytest.approx(2.0)
    assert row["compliant"] is False


def test_zero_budget_objective_burns_infinitely_on_one_violation():
    engine = _engine([{"operation": "OP", "percentile": "p50",
                       "threshold": 100.0, "objective": 1.0}])
    engine.record("OP", 10)
    engine.record("OP", 500)
    (row,) = engine.report()
    assert row["burn_rate"] == float("inf")


def test_untargeted_operations_still_report_quantiles():
    engine = _engine([])
    engine.record("FREEFORM", 42)
    (row,) = engine.report()
    assert row["p50"] == 42
    assert row["threshold"] is None
    assert row["compliant"] is None


def test_report_sorts_targeted_operations_first():
    engine = _engine([{"operation": "ZZZ", "percentile": "p99",
                       "threshold": 100.0, "objective": 0.99}])
    engine.record("AAA", 1)
    engine.record("ZZZ", 1)
    assert [r["operation"] for r in engine.report()] == ["ZZZ", "AAA"]


def test_digest_and_operations_surface_the_series():
    engine = _engine([])
    assert engine.operations() == []
    assert engine.digest("OP") is None
    engine.record("OP", 7)
    assert engine.operations() == ["OP"]
    assert engine.digest("OP").count == 1
