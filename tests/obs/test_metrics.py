"""Instruments, families, and the registry's federation layer."""

from __future__ import annotations

import dataclasses

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    stats_asdict,
)


def test_counter_monotonic():
    c = Counter()
    c.inc()
    c.inc(4)
    assert c.value == 5
    with pytest.raises(MetricError):
        c.inc(-1)


def test_gauge_moves_both_ways():
    g = Gauge()
    g.set(10)
    g.inc(2.5)
    g.dec()
    assert g.value == 11.5


def test_histogram_buckets_are_log_spaced():
    h = Histogram(base=2.0)
    for v in (1, 2, 3, 4, 5, 1000):
        h.observe(v)
    bounds = [upper for upper, _ in h.buckets()]
    assert bounds == sorted(bounds)
    # 3 lands in the (2, 4] bucket, 1000 in (512, 1024].
    assert dict(h.buckets())[4.0] == 2
    assert dict(h.buckets())[1024.0] == 1
    assert h.count == 6 and h.min == 1 and h.max == 1000


def test_histogram_rejects_bad_input():
    h = Histogram()
    with pytest.raises(MetricError):
        h.observe(-1)
    with pytest.raises(MetricError):
        h.percentile(1.5)
    with pytest.raises(MetricError):
        Histogram(base=1.0)


def test_histogram_percentiles_bounded_error():
    h = Histogram(base=2.0)
    for v in range(1, 1001):
        h.observe(v)
    # Log buckets answer within a factor of base of the exact quantile.
    assert h.percentile(0.5) == pytest.approx(500, rel=1.0)
    assert h.percentile(0.99) == pytest.approx(990, rel=1.0)
    assert h.min <= h.percentile(0.01) <= h.percentile(0.99) <= h.max


def test_histogram_single_value_is_exact():
    h = Histogram()
    h.observe(350)
    for p in (0.0, 0.5, 0.99, 1.0):
        assert h.percentile(p) == 350
    assert h.mean == 350


def test_empty_histogram_percentile_is_zero():
    assert Histogram().percentile(0.5) == 0.0
    assert Histogram().mean == 0.0


def test_family_labels_positional_and_keyword():
    reg = MetricsRegistry()
    fam = reg.counter("hits", "test", ("primitive", "status"))
    fam.labels("EALLOC", "ok").inc()
    fam.labels(primitive="EALLOC", status="ok").inc()
    assert fam.labels("EALLOC", "ok").value == 2
    with pytest.raises(MetricError):
        fam.labels("EALLOC")  # wrong arity
    with pytest.raises(MetricError):
        fam.labels("x", status="y")  # mixed styles


def test_unlabelled_family_proxies_to_solo_child():
    reg = MetricsRegistry()
    reg.counter("events").inc(3)
    reg.gauge("depth").set(7)
    reg.histogram("lat").observe(42)
    assert reg.get("events").labels().value == 3
    assert reg.get("depth").labels().value == 7
    assert reg.get("lat").labels().count == 1
    with pytest.raises(MetricError):
        reg.counter("labelled", labelnames=("a",)).inc()


def test_registration_is_idempotent_but_typed():
    reg = MetricsRegistry()
    first = reg.counter("x", "help", ("a",))
    assert reg.counter("x", "other help", ("a",)) is first
    with pytest.raises(MetricError):
        reg.gauge("x")  # kind mismatch
    with pytest.raises(MetricError):
        reg.counter("x", labelnames=("b",))  # label mismatch


def test_federated_snapshot_reads_live_sources():
    @dataclasses.dataclass
    class FakeStats:
        served: int = 0

    stats = FakeStats()
    reg = MetricsRegistry()
    reg.register_source("fake", lambda: stats_asdict(stats))
    assert reg.federated_snapshot() == {"fake": {"served": 0}}
    stats.served = 9
    # Pull-based: the snapshot tracks the dataclass, no copy is stored.
    assert reg.federated_snapshot() == {"fake": {"served": 9}}
    assert reg.source_names() == ["fake"]
    with pytest.raises(MetricError):
        reg.register_source("fake", lambda: {})
