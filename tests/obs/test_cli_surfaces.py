"""CLI coverage for the observability surfaces: slo, flightrec, metrics
exit codes, and the bench --check gate's failure modes."""

from __future__ import annotations

import json

import pytest

from repro.core.api import HyperTEE
from repro.core.config import SystemConfig
from repro.obs import cli
from repro.obs.slo import QUANTILES


# -- slo ---------------------------------------------------------------------

def test_slo_table_leads_with_targets_and_exits_zero(capsys):
    assert cli.main(["slo"]) == 0
    out = capsys.readouterr().out
    assert "SLO report" in out
    assert "EALLOC" in out
    assert "p99<=" in out


def test_slo_json_rows_carry_the_budget_schema(capsys):
    assert cli.main(["slo", "--json"]) == 0
    rows = json.loads(capsys.readouterr().out)
    assert rows, "an instrumented run must produce SLO rows"
    targeted = [r for r in rows if r["threshold"] is not None]
    assert targeted, "the default table must match recorded operations"
    for row in rows:
        assert {"operation", "count", "mean", "exact", "percentile",
                "threshold", "objective", "unit", "attained", "compliant",
                "error_budget", "burn_rate", *QUANTILES} <= set(row)
    # The quickstart scenario is inside its SLOs: a red default would
    # make every fresh checkout look broken.
    assert all(r["compliant"] for r in targeted)


def test_slo_exits_nonzero_when_nothing_was_recorded(monkeypatch, capsys):
    idle = HyperTEE(SystemConfig(seed=3))
    idle.system.enable_observability()
    monkeypatch.setattr(cli, "run_instrumented_scenario",
                        lambda seed=0, engine="reference": idle)
    assert cli.main(["slo"]) == 1
    assert "no SLO samples" in capsys.readouterr().err


# -- flightrec ---------------------------------------------------------------

def test_flightrec_status_reports_the_ring(capsys):
    assert cli.main(["flightrec"]) == 0
    out = capsys.readouterr().out
    assert "flight recorder:" in out
    assert "0 trips" in out  # a clean scenario never trips


def test_flightrec_dump_writes_a_versioned_document(tmp_path, capsys):
    out_path = tmp_path / "box.json"
    assert cli.main(["flightrec", "dump", "--out", str(out_path)]) == 0
    dump = json.loads(out_path.read_text())
    assert dump["schema"].startswith("hypertee.flightrec/")
    assert dump["reason"] == "manual-dump"
    kinds = {e["kind"] for e in dump["events"]}
    assert "invocation" in kinds
    assert str(out_path) in capsys.readouterr().out


def test_flightrec_dump_unwritable_path_exits_one(tmp_path, capsys):
    assert cli.main(["flightrec", "dump",
                     "--out", str(tmp_path / "no" / "box.json")]) == 1
    assert "error:" in capsys.readouterr().err


# -- metrics exit codes ------------------------------------------------------

def test_metrics_exits_nonzero_on_an_empty_registry(monkeypatch, capsys):
    idle = HyperTEE(SystemConfig(seed=3))
    idle.system.enable_observability()
    monkeypatch.setattr(cli, "run_instrumented_scenario",
                        lambda seed=0, engine="reference": idle)
    assert cli.main(["metrics"]) == 1
    err = capsys.readouterr().err
    assert "no primitive samples" in err


def test_metrics_formats_still_exit_zero(capsys):
    assert cli.main(["metrics", "--format", "prom"]) == 0
    assert "# TYPE" in capsys.readouterr().out
    assert cli.main(["metrics", "--format", "json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert "hypertee_slo_operation_latency" in doc["metrics"]


def test_trace_unwritable_path_exits_one(tmp_path, capsys):
    assert cli.main(["trace", "--out",
                     str(tmp_path / "no" / "trace.json")]) == 1
    assert "error:" in capsys.readouterr().err


# -- bench --check failure modes ---------------------------------------------

def test_bench_writes_both_artifacts(tmp_path, capsys):
    comm = tmp_path / "comm.json"
    latency = tmp_path / "latency.json"
    assert cli.main(["bench", "--out", str(comm),
                     "--regress-out", str(latency)]) == 0
    assert json.loads(comm.read_text())["schema"].startswith("hypertee.")
    doc = json.loads(latency.read_text())
    assert doc["schema"] == "hypertee.regress/1"
    assert "lifecycle" in doc["scenarios"]
    out = capsys.readouterr().out
    assert str(comm) in out and str(latency) in out


def test_bench_check_missing_artifact_exits_two(tmp_path, capsys):
    missing = tmp_path / "nope.json"
    assert cli.main(["bench", "--check", str(missing)]) == 2
    assert "cannot load" in capsys.readouterr().err


def test_bench_check_rejects_a_foreign_schema(tmp_path, capsys):
    artifact = tmp_path / "old.json"
    artifact.write_text(json.dumps({"schema": "hypertee.bench/1"}))
    assert cli.main(["bench", "--check", str(artifact)]) == 1
    assert "regenerate" in capsys.readouterr().out


@pytest.mark.parametrize("argv", [["slo", "--seed", "7"],
                                  ["flightrec", "--seed", "7"]])
def test_new_commands_accept_a_seed(argv):
    assert cli.main(argv) == 0
