"""Tracer mechanics and the Chrome trace_event export."""

from __future__ import annotations

import json

from repro.obs.trace import Tracer, walk_roots


def _record_one_invocation(tracer: Tracer) -> None:
    root = tracer.add_span("EALLOC", "primitive", tracer.clock, 1000)
    tracer.add_span("emcall.gate", "emcall", tracer.clock, 350, parent=root)
    tracer.add_span("mailbox.request", "mailbox", tracer.clock + 350, 60,
                    parent=root)
    tracer.advance(1000)


def test_disabled_tracer_records_nothing():
    tracer = Tracer(enabled=False)
    assert tracer.add_span("x", "cat", 0, 10) is None
    tracer.advance(10)
    assert len(tracer) == 0 and tracer.clock == 0.0


def test_span_tree_and_queries():
    tracer = Tracer(enabled=True)
    _record_one_invocation(tracer)
    _record_one_invocation(tracer)
    assert len(tracer) == 6
    roots = list(walk_roots(tracer.spans()))
    assert [r.name for r in roots] == ["EALLOC", "EALLOC"]
    assert roots[1].start_cycle == 1000  # second invocation after advance
    kids = tracer.children_of(roots[0])
    assert [k.name for k in kids] == ["emcall.gate", "mailbox.request"]
    assert kids[1].end_cycle == 410
    assert tracer.find("mailbox.", category="mailbox")
    assert not tracer.find("mailbox.", category="emcall")


def test_capacity_drops_are_counted():
    tracer = Tracer(enabled=True, max_spans=2)
    for _ in range(4):
        tracer.add_span("s", "c", 0, 1)
    assert len(tracer) == 2 and tracer.dropped == 2


def test_clear_resets_everything():
    tracer = Tracer(enabled=True)
    _record_one_invocation(tracer)
    tracer.clear()
    assert len(tracer) == 0 and tracer.clock == 0.0 and tracer.dropped == 0


def test_chrome_export_shape(tmp_path):
    tracer = Tracer(enabled=True)
    _record_one_invocation(tracer)
    path = tmp_path / "trace.json"
    tracer.write_chrome_json(str(path))
    doc = json.loads(path.read_text())

    events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
    assert len(events) == 3
    assert meta and meta[0]["name"] == "thread_name"
    assert doc["otherData"]["clock"] == "cs-cycles"

    # Cycle -> microsecond conversion at the CS clock (2.5 GHz default).
    root = next(e for e in events if e["name"] == "EALLOC")
    assert root["ts"] == 0 and root["dur"] == 1000 * 1e6 / 2.5e9
    gate = next(e for e in events if e["name"] == "emcall.gate")
    assert gate["args"]["parent_id"] == root["args"]["span_id"]
    # Children nest inside the root by time containment.
    assert root["ts"] <= gate["ts"]
    assert gate["ts"] + gate["dur"] <= root["ts"] + root["dur"] + 1e-9
