"""The flight recorder: ring semantics, trips, and the crash black box."""

from __future__ import annotations

import json

import pytest

from repro.core.api import HyperTEE
from repro.core.config import SystemConfig
from repro.core.enclave import EnclaveConfig
from repro.cs.emcall import RetryPolicy
from repro.errors import EMCallTimeout
from repro.faults import FaultPlan, FaultRule
from repro.obs.flightrec import (
    DUMP_DIR_ENV,
    MAX_TRIP_FILES,
    SCHEMA,
    FlightRecorder,
)


# -- ring semantics ----------------------------------------------------------

def test_ring_keeps_the_newest_events_and_counts_drops():
    recorder = FlightRecorder(capacity=4)
    for i in range(10):
        recorder.record("tick", clock=i, index=i)
    assert len(recorder) == 4
    assert recorder.recorded_total == 10
    assert recorder.dropped == 6
    dump = recorder.snapshot()
    assert [e["index"] for e in dump["events"]] == [6, 7, 8, 9]
    # Sequence numbers are global, not ring-relative.
    assert [e["seq"] for e in dump["events"]] == [7, 8, 9, 10]


def test_snapshot_is_a_versioned_self_contained_document():
    recorder = FlightRecorder()
    recorder.record("fault", clock=5, point="mailbox.request.drop")
    dump = recorder.snapshot(reason="unit", detail={"k": "v"})
    assert dump["schema"] == SCHEMA
    assert dump["reason"] == "unit"
    assert dump["detail"] == {"k": "v"}
    assert dump["events"][0]["kind"] == "fault"
    json.dumps(dump)  # fully serializable as-is


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        FlightRecorder(capacity=0)


# -- trips -------------------------------------------------------------------

def test_trip_freezes_a_dump_and_counts(monkeypatch):
    monkeypatch.delenv(DUMP_DIR_ENV, raising=False)
    recorder = FlightRecorder()
    recorder.record("retry", clock=1, attempt=1)
    dump = recorder.trip("emcall-timeout", {"primitive": "EALLOC"})
    assert recorder.trips == 1
    assert recorder.last_dump is dump
    assert dump["reason"] == "emcall-timeout"
    assert dump["detail"]["primitive"] == "EALLOC"
    assert recorder.dump_paths == []  # no dir set, no file


def test_trip_writes_a_parseable_file_when_the_env_dir_is_set(
        tmp_path, monkeypatch):
    monkeypatch.setenv(DUMP_DIR_ENV, str(tmp_path / "dumps"))
    recorder = FlightRecorder()
    recorder.record("fault", clock=3, point="fabric.latency")
    recorder.trip("Chaos Invariant: pool!")
    (path,) = recorder.dump_paths
    with open(path, encoding="utf-8") as fh:
        dump = json.load(fh)
    assert dump["schema"] == SCHEMA
    assert dump["events"][0]["point"] == "fabric.latency"
    # Reason slugs keep filenames shell-safe.
    assert "flightrec-001-chaos-invariant-pool.json" in path


def test_trip_files_are_capped(tmp_path, monkeypatch):
    monkeypatch.setenv(DUMP_DIR_ENV, str(tmp_path))
    recorder = FlightRecorder()
    for i in range(MAX_TRIP_FILES + 5):
        recorder.trip(f"trip-{i}")
    assert recorder.trips == MAX_TRIP_FILES + 5
    assert len(recorder.dump_paths) == MAX_TRIP_FILES


def test_unwritable_dump_dir_never_raises(tmp_path, monkeypatch):
    target = tmp_path / "blocked"
    target.write_text("a file, not a directory")
    monkeypatch.setenv(DUMP_DIR_ENV, str(target))
    recorder = FlightRecorder()
    dump = recorder.trip("still-works")
    assert recorder.last_dump is dump
    assert recorder.dump_paths == []


def test_explicit_write_for_the_cli(tmp_path):
    recorder = FlightRecorder()
    recorder.record("invocation", clock=9, primitive="EALLOC")
    out = tmp_path / "box.json"
    recorder.write(str(out))
    dump = json.loads(out.read_text())
    assert dump["reason"] == "manual-dump"
    assert dump["events"][0]["primitive"] == "EALLOC"


# -- the crash black box, end to end -----------------------------------------

def _doomed_tee() -> HyperTEE:
    """A platform whose transport always drops: every invoke times out."""
    tee = HyperTEE(SystemConfig(seed=13))
    tee.system.enable_observability()
    tee.system.enable_fault_injection(FaultPlan(seed=13, rules=(
        FaultRule("mailbox.request.drop", probability=1.0),)))
    tee.system.emcall.retry_policy = RetryPolicy(max_attempts=2)
    return tee


def test_emcall_timeout_trips_a_parseable_black_box(tmp_path, monkeypatch):
    monkeypatch.setenv(DUMP_DIR_ENV, str(tmp_path))
    tee = _doomed_tee()
    with pytest.raises(EMCallTimeout):
        tee.launch_enclave(b"doomed " * 8,
                           EnclaveConfig(name="doomed", heap_pages_max=8))
    recorder = tee.system.obs.flightrec
    assert recorder.trips == 1
    dump = recorder.last_dump
    assert dump["reason"] == "emcall-timeout"
    assert dump["detail"]["primitive"] == "ECREATE"
    assert dump["detail"]["attempts"] == 2
    # The weather that killed the run is in the ring: the injected
    # faults and the expired deadlines.
    kinds = {e["kind"] for e in dump["events"]}
    assert "fault" in kinds and "timeout" in kinds
    # And the same document landed on disk for the CI artifact upload.
    (path,) = recorder.dump_paths
    assert json.loads(open(path, encoding="utf-8").read()) == dump


def test_flight_guard_trips_on_invariant_violations(monkeypatch):
    monkeypatch.delenv(DUMP_DIR_ENV, raising=False)
    from tests.faults.chaoslib import flight_guard

    tee = HyperTEE(SystemConfig(seed=13))
    tee.system.enable_observability()
    with pytest.raises(AssertionError):
        with flight_guard(tee, label="unit"):
            assert False, "synthetic invariant violation"
    recorder = tee.system.obs.flightrec
    assert recorder.trips == 1
    assert recorder.last_dump["reason"] == "unit-failure"
    assert recorder.last_dump["detail"]["error"] == "AssertionError"
