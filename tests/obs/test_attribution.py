"""Per-enclave attribution: bounded labels, owner mapping, the table."""

from __future__ import annotations

from repro.core.api import HyperTEE
from repro.core.config import SystemConfig
from repro.core.enclave import EnclaveConfig
from repro.ems.ownership import Owner
from repro.obs.attribution import (
    HOST_LABEL,
    OVERFLOW_LABEL,
    UNOWNED_LABEL,
    Attribution,
    TenantBuckets,
    normalize_requestor,
)
from repro.obs.metrics import MetricsRegistry


# -- requestor normalization -------------------------------------------------

def test_requestor_digits_fold_into_one_label():
    assert normalize_requestor("pid7-malloc") == "pid-malloc"
    assert normalize_requestor("pid123-malloc") == "pid-malloc"
    assert normalize_requestor("ems-pool") == "ems-pool"


# -- the LRU bucket map ------------------------------------------------------

def test_tracked_ids_get_stable_named_labels():
    buckets = TenantBuckets(capacity=4)
    assert buckets.label(7) == "e7"
    assert buckets.label(7) == "e7"
    assert buckets.label(None) == HOST_LABEL


def test_lru_eviction_mints_new_labels_within_the_limit():
    buckets = TenantBuckets(capacity=2)
    assert [buckets.label(i) for i in (1, 2, 3)] == ["e1", "e2", "e3"]
    # id 1 was evicted; re-seeing it mints again (budget allowing) and
    # evicts the now-oldest id 2.
    assert buckets.label(1) == "e1"
    assert buckets.minted == 4


def test_label_budget_exhausts_into_the_overflow_bucket():
    buckets = TenantBuckets(capacity=2, label_limit=3)
    for i in (1, 2, 3):
        buckets.label(i)
    assert buckets.label(4) == OVERFLOW_LABEL
    assert buckets.label(99) == OVERFLOW_LABEL
    assert buckets.overflowed == 2
    # Already-tracked ids keep their names; only new ids overflow.
    assert buckets.label(3) == "e3"


def test_total_cardinality_is_bounded_whatever_the_fleet_does():
    buckets = TenantBuckets(capacity=8)
    labels = {buckets.label(i) for i in range(10_000)}
    labels.add(buckets.label(None))
    assert len(labels) <= buckets.label_limit + 2


# -- owner mapping -----------------------------------------------------------

def test_owner_kinds_map_to_bounded_labels():
    attribution = Attribution(MetricsRegistry())
    assert attribution.owner_label(None) == UNOWNED_LABEL
    assert attribution.owner_label(Owner.enclave(3)) == "e3"
    assert attribution.owner_label(Owner.shared(9)) == "shared"
    assert attribution.owner_label(Owner.ems("meta")) == "ems"


# -- the table ---------------------------------------------------------------

def test_table_merges_every_family_per_enclave():
    attribution = Attribution(MetricsRegistry())
    attribution.record_invocation(1, cs_cycles=1000, count=2)
    attribution.record_ems_service(1, service_cycles=300)
    attribution.record_retry(1)
    attribution.record_timeout(1)
    attribution.record_demand_fault(1)
    attribution.record_pool_take(8, Owner.enclave(1))
    attribution.record_pool_return(3, Owner.enclave(1))
    attribution.record_invocation(2, cs_cycles=50)
    attribution.record_swap(4)

    rows = {row["enclave"]: row for row in attribution.table()}
    assert rows["e1"] == {
        "enclave": "e1", "invocations": 2, "cs_cycles": 1000,
        "ems_cycles": 300, "retries": 1, "timeouts": 1,
        "demand_faults": 1, "pool_pages": 5, "swap_pages": 0}
    assert rows["e2"]["cs_cycles"] == 50
    # EWB swap traffic is host-attributed by design.
    assert rows[HOST_LABEL]["swap_pages"] == 4
    # Busiest enclave leads.
    assert attribution.table()[0]["enclave"] == "e1"


def test_non_enclave_pool_owners_stay_out_of_the_tenant_table():
    attribution = Attribution(MetricsRegistry())
    attribution.record_pool_take(8, Owner.ems("pagetable"))
    attribution.record_pool_take(4, Owner.shared(1))
    attribution.record_invocation(1, cs_cycles=10)
    labels = {row["enclave"] for row in attribution.table()}
    assert labels == {"e1"}


# -- end to end --------------------------------------------------------------

def test_instrumented_run_attributes_cycles_to_the_enclave():
    tee = HyperTEE(SystemConfig(seed=31))
    tee.system.enable_observability()
    enclave = tee.launch_enclave(b"attribution end to end " * 12,
                                 EnclaveConfig(name="attr",
                                               heap_pages_max=16))
    with enclave.running():
        vaddr = enclave.ealloc(2)
        enclave.write(vaddr, b"attributed")
        enclave.efree(vaddr)
    enclave.destroy()

    rows = {row["enclave"]: row for row in tee.system.obs.attribution.table()}
    label = f"e{enclave.enclave_id}"
    assert rows[label]["invocations"] > 0
    assert rows[label]["cs_cycles"] > 0
    assert rows[label]["ems_cycles"] > 0
    # Pool pages all returned at destroy: the gauge is balanced.
    assert rows[label]["pool_pages"] == 0
    # OS-side frame traffic rides the wiring too, digit-normalized so a
    # per-process requestor cannot mint unbounded labels.
    tee.system.os.alloc_frames(3, requestor="pid7-stack")
    samples = dict()
    for labels, child in tee.system.obs.attribution._os_frames.samples():
        samples[labels["requestor"]] = child.value
    assert samples["pid-stack"] == 3
    # ... and no per-enclave allocation event ever reached the OS (the
    # paper's anti-channel: enclave names never appear as requestors).
    assert all("attr" not in requestor for requestor in samples)
