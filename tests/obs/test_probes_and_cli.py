"""End-to-end probes: the instrumented scenario, export surfaces, CLI."""

from __future__ import annotations

import json

import pytest

from repro.obs.cli import main, run_instrumented_scenario
from repro.obs.export import render_json, render_prometheus
from repro.obs.trace import walk_roots

#: Span names every primitive invocation decomposes into, in order.
LIFECYCLE = ["emcall.gate", "mailbox.request", "ems.service",
             "mailbox.response", "emcall.poll"]


@pytest.fixture(scope="module")
def traced_tee():
    """One instrumented scenario, shared by the read-only assertions."""
    return run_instrumented_scenario(seed=7)


def test_invocations_and_latency_populate(traced_tee):
    obs = traced_tee.system.obs
    inv = obs.metrics.get("hypertee_primitive_invocations_total")
    by_primitive = {labels["primitive"]: c.value for labels, c in inv.samples()}
    for prim in ("ECREATE", "EALLOC", "EENTER", "EATTEST", "EWB", "EDESTROY"):
        assert by_primitive.get(prim, 0) >= 1, prim
    rows = obs.primitive_latency_table()
    assert rows and all(r["p50"] <= r["p90"] <= r["p99"] <= r["max"]
                        for r in rows)
    # Every CS-visible latency includes at least gate + two transfers.
    assert all(r["p50"] >= 350 + 2 * 60 for r in rows)


def test_span_tree_decomposes_each_primitive(traced_tee):
    tracer = traced_tee.system.obs.tracer
    roots = list(walk_roots(tracer.spans()))
    assert len(roots) >= 10
    cursor = 0.0
    for root in roots:
        kids = sorted(tracer.children_of(root), key=lambda s: s.start_cycle)
        assert [k.name for k in kids] == LIFECYCLE
        # Children tile the root exactly: no gaps, no overlap.
        assert kids[0].start_cycle == root.start_cycle
        for a, b in zip(kids, kids[1:]):
            assert a.end_cycle == b.start_cycle
        assert kids[-1].end_cycle == root.end_cycle
        # Roots are laid end to end on the cycle timeline.
        assert root.start_cycle == cursor
        cursor = root.end_cycle
    # The EMS handler nests inside at least one service span.
    handlers = tracer.find("ems.handler:")
    assert handlers
    parents = {s.span_id: s for s in tracer.spans()}
    assert all(parents[h.parent_id].name == "ems.service" for h in handlers)


def test_subsystem_probes_fired(traced_tee):
    reg = traced_tee.system.obs.metrics
    mailbox = {labels["event"]: c.value
               for labels, c in reg.get("hypertee_mailbox_events_total").samples()}
    assert mailbox["request_pushed"] == mailbox["response_pushed"]
    assert mailbox["requests_fetched"] == mailbox["request_pushed"]
    assert reg.get("hypertee_ems_pump_batch_size").labels().count > 0
    # The boot-time refill predates enable_observability(); the take and
    # give-back probes keep the occupancy gauges current afterwards.
    assert reg.get("hypertee_pool_free_frames").labels().value > 0
    assert reg.get("hypertee_swap_surrendered_pages").labels().count == 1
    crypto = {labels["op"]: c.value
              for labels, c in reg.get("hypertee_crypto_ops_total").samples()}
    assert crypto.get("hash", 0) > 0  # measurement during launch
    walks = sum(c.value for _, c in reg.get("hypertee_ptw_walks_total").samples())
    assert walks > 0


def test_prometheus_rendering(traced_tee):
    text = render_prometheus(traced_tee.system.obs.metrics)
    assert "# TYPE hypertee_primitive_invocations_total counter" in text
    assert "# TYPE hypertee_primitive_latency_cs_cycles histogram" in text
    assert 'primitive="EALLOC"' in text
    assert 'le="+Inf"' in text
    # One value per sample line, no blank lines inside the exposition.
    for line in text.strip().splitlines():
        assert line.startswith("#") or len(line.rsplit(" ", 1)) == 2


def test_json_rendering(traced_tee):
    doc = json.loads(render_json(traced_tee.system.obs.metrics))
    lat = doc["metrics"]["hypertee_primitive_latency_cs_cycles"]
    assert lat["kind"] == "histogram"
    series = {s["labels"]["primitive"]: s["value"] for s in lat["series"]}
    assert series["EALLOC"]["count"] >= 1
    assert {"p50", "p90", "p99", "buckets"} <= set(series["EALLOC"])
    assert set(doc["subsystems"]) == {"ems", "mailbox", "fabric", "pool",
                                      "emcall", "tlb", "interrupts", "faults"}


def test_cli_metrics_table(capsys):
    assert main(["metrics"]) == 0
    out = capsys.readouterr().out
    assert "p50" in out and "p99" in out and "EALLOC" in out
    assert "Subsystem counters" in out


def test_cli_metrics_prom(capsys):
    assert main(["metrics", "--format", "prom"]) == 0
    assert "# HELP hypertee_primitive_invocations_total" in capsys.readouterr().out


def test_cli_trace_writes_valid_chrome_json(tmp_path, capsys):
    out_path = tmp_path / "t.json"
    assert main(["trace", "--out", str(out_path)]) == 0
    assert "spans" in capsys.readouterr().out
    doc = json.loads(out_path.read_text())
    names = {e["name"] for e in doc["traceEvents"]}
    assert {"emcall.gate", "mailbox.request", "ems.service"} <= names


def test_cli_bare_artifact_names_still_regenerate(capsys):
    assert main(["table4"]) == 0
    assert "Table IV" in capsys.readouterr().out
