"""Prometheus exposition hardening: hostile labels, new histogram kind."""

from __future__ import annotations

import json

from repro.obs.export import (
    registry_as_dict,
    render_json,
    render_prometheus,
)
from repro.obs.metrics import MetricsRegistry


def test_hostile_label_values_cannot_corrupt_the_scrape():
    registry = MetricsRegistry()
    counter = registry.counter("hypertee_hostile_total",
                               "hostile labels", ("name",))
    hostile = 'evil"} 1\nhypertee_forged_total{x="y'
    counter.labels(hostile).inc()
    counter.labels("back\\slash").inc()
    text = render_prometheus(registry)

    # One sample line per child; the newline/quote payload is escaped,
    # not emitted raw — no forged series appears.
    assert "hypertee_forged_total 1" not in text
    assert '\\"} 1\\n' in text
    assert 'name="back\\\\slash"' in text
    # Every non-comment line still splits into exactly name{...} value.
    for line in text.strip().splitlines():
        assert line.startswith("#") or len(line.rsplit(" ", 1)) == 2


def test_help_text_newlines_and_backslashes_are_escaped():
    registry = MetricsRegistry()
    registry.counter("hypertee_multiline_total",
                     "line one\nline two \\ done")
    text = render_prometheus(registry)
    assert ("# HELP hypertee_multiline_total "
            "line one\\nline two \\\\ done") in text
    assert text.count("\n# TYPE") == 1


def test_quantile_histogram_exposes_bucket_sum_count():
    registry = MetricsRegistry()
    digest = registry.quantile_histogram("hypertee_q_latency",
                                         "digest", ("operation",))
    for value in (10, 100, 1000):
        digest.labels("EALLOC").observe(value)
    text = render_prometheus(registry)

    assert "# TYPE hypertee_q_latency histogram" in text
    assert 'hypertee_q_latency_bucket{operation="EALLOC",le="+Inf"} 3' in text
    assert 'hypertee_q_latency_sum{operation="EALLOC"} 1110' in text
    assert 'hypertee_q_latency_count{operation="EALLOC"} 3' in text
    # Bucket lines are cumulative and end at the total.
    bucket_counts = [int(line.rsplit(" ", 1)[1])
                     for line in text.splitlines()
                     if line.startswith("hypertee_q_latency_bucket")]
    assert bucket_counts == sorted(bucket_counts)
    assert bucket_counts[-1] == 3


def test_json_export_carries_quantiles_for_the_new_kind():
    registry = MetricsRegistry()
    digest = registry.quantile_histogram("hypertee_q_latency", "digest")
    for value in range(1, 11):
        digest.observe(value)
    doc = registry_as_dict(registry)
    series = doc["metrics"]["hypertee_q_latency"]["series"][0]["value"]
    assert series["count"] == 10
    assert series["exact"] is True
    assert {"p50", "p95", "p99", "p999", "buckets"} <= set(series)
    json.loads(render_json(registry))  # round-trips
