"""Observability is out-of-band: tracing on vs off changes nothing.

The paper's architecture makes EMS-side management invisible to the CS;
the model's instrumentation must inherit that property. These tests run
the same workloads with tracing enabled and disabled and assert the
modelled results are bit-identical: cycle counts, stats summaries, the
Table VI attack outcomes, and the Fig. 8a bench output.

The same guarantee covers fault injection: a wired injector with an
*empty* plan draws nothing and changes nothing (the chaos machinery is
opt-in weather, never a tax on clean runs).
"""

from __future__ import annotations

from repro.attacks.harness import defense_matrix, expected_paper_matrix
from repro.baselines.hypertee_adapter import HyperTEEAdapter
from repro.common.types import Permission, Primitive
from repro.core.api import HyperTEE
from repro.core.config import SystemConfig
from repro.core.enclave import EnclaveConfig
from repro.eval.regenerate import fig8a, table4_rows
from repro.obs.cli import run_instrumented_scenario


def _workload(tee: HyperTEE) -> dict:
    """A quickstart-style run; returns everything attacker-visible."""
    enclave = tee.launch_enclave(b"noninterference " * 24,
                                 EnclaveConfig(name="ni", heap_pages_max=64))
    with enclave.running():
        vaddr = enclave.ealloc(4)
        enclave.write(vaddr, b"secret")
        data = enclave.read(vaddr, 6)
        enclave.write(vaddr + 5 * 4096, b"demand")
        region = enclave.create_shared_region(2, Permission.RW)
        share = enclave.attach(region)
        enclave.write(share, b"shared")
        enclave.detach(region)
        enclave.destroy_region(region)
        quote = enclave.attest(report_data=b"ni")
        enclave.efree(vaddr)
    tee.invoke_os(Primitive.EWB, {"pages": 2})
    enclave.destroy()
    return {
        "cycles": tee.primitive_cycles,
        "data": data,
        "measurement": quote.enclave.measurement,
        "signature": quote.enclave.signature,
        "summary": tee.system.stats_summary(),
    }


def test_tracing_does_not_perturb_the_model():
    plain = HyperTEE(SystemConfig(seed=1234))
    traced = HyperTEE(SystemConfig(seed=1234))
    traced.system.enable_observability()

    a = _workload(plain)
    b = _workload(traced)

    assert a["cycles"] == b["cycles"]
    assert a["data"] == b["data"]
    assert a["measurement"] == b["measurement"]
    assert a["signature"] == b["signature"]
    assert a["summary"] == b["summary"]
    # And the traced run really did record something.
    assert len(traced.system.obs.tracer) > 0
    assert len(plain.system.obs.tracer) == 0


def test_empty_fault_plan_is_bit_identical():
    """An attached injector with no rules is pure dead weight.

    The hardened EMCall path (deadlines, idempotency keys, retry
    plumbing) and the wired-but-empty injector must not shift a single
    cycle, stat, or signature relative to a plain system — faults are
    opt-in weather, not a tax.
    """
    from repro.faults import FaultPlan

    plain = HyperTEE(SystemConfig(seed=1234))
    injected = HyperTEE(SystemConfig(seed=1234))
    injected.system.enable_fault_injection(FaultPlan.empty())

    a = _workload(plain)
    b = _workload(injected)

    assert a["cycles"] == b["cycles"]
    assert a["data"] == b["data"]
    assert a["measurement"] == b["measurement"]
    assert a["signature"] == b["signature"]
    assert a["summary"] == b["summary"]
    # The injector really was consulted and really did nothing.
    assert injected.system.faults is not None
    assert injected.system.faults.stats.total_fired == 0


def test_empty_fault_plan_with_tracing_matches_tracing_alone():
    """Observability + empty injector == observability alone."""
    from repro.faults import FaultPlan

    traced = HyperTEE(SystemConfig(seed=77))
    traced.system.enable_observability()
    both = HyperTEE(SystemConfig(seed=77))
    both.system.enable_observability()
    both.system.enable_fault_injection(FaultPlan.empty())

    a = _workload(traced)
    b = _workload(both)
    assert a == b
    # No phantom fault spans on the timeline either.
    assert both.system.obs.tracer.find("fault:") == []


def test_table6_attacks_identical_with_tracing_on():
    def plain_factory():
        return HyperTEEAdapter()

    def traced_factory():
        tee = HyperTEE(SystemConfig(cs_memory_mb=96))
        tee.system.enable_observability()
        return HyperTEEAdapter(tee=tee)

    plain = defense_matrix({"hypertee": plain_factory})["hypertee"]
    traced = defense_matrix({"hypertee": traced_factory})["hypertee"]

    # AttackResult is a frozen dataclass: accuracy, outcome, and detail
    # must all match bit-for-bit, channel by channel.
    assert plain == traced
    expected = expected_paper_matrix()["hypertee"]
    for channel, result in traced.items():
        assert result.outcome is expected[channel], channel


def test_fig8a_bench_unaffected_by_an_instrumented_run():
    before = fig8a()
    run_instrumented_scenario(seed=99)
    assert fig8a() == before


def _batched_workload(tee: HyperTEE) -> dict:
    """The batched fast path; returns everything attacker-visible."""
    enclave = tee.launch_enclave_batched(b"ni batched " * 24,
                                         EnclaveConfig(name="nib",
                                                       heap_pages_max=64),
                                         batch_size=8)
    with enclave.running():
        for _ in range(2):
            vaddrs = enclave.ealloc_many([1] * 8)
            enclave.write(vaddrs[0], b"batched secret")
            data = enclave.read(vaddrs[0], 14)
            enclave.efree_many(vaddrs)
        quote = enclave.attest(report_data=b"nib")
    enclave.destroy()
    return {
        "cycles": tee.primitive_cycles,
        "data": data,
        "measurement": quote.enclave.measurement,
        "signature": quote.enclave.signature,
        "summary": tee.system.stats_summary(),
    }


def test_batched_path_identical_with_slo_and_flightrec_live():
    """PR-6 layers (SLO, attribution, flight recorder) on the fast path.

    The batched workload drives every new probe — per-element SLO
    amortization, batch envelopes, mailbox-wait residency, per-enclave
    attribution — and the modelled results must still be bit-identical
    to an uninstrumented system.
    """
    plain = HyperTEE(SystemConfig(seed=4242))
    traced = HyperTEE(SystemConfig(seed=4242))
    traced.system.enable_observability()

    a = _batched_workload(plain)
    b = _batched_workload(traced)
    assert a == b
    # The new layers really were live, not just attached.
    obs = traced.system.obs
    assert "emcall.batch" in obs.slo.operations()
    assert len(obs.flightrec) > 0
    assert any(row["enclave"].startswith("e")
               for row in obs.attribution.table())


def test_table4_rows_unaffected_by_an_instrumented_run():
    """The Table IV cost model is analytic; a fully instrumented run
    (SLO engine, attribution, flight recorder all recording) must not
    shift a single formula input."""
    before = table4_rows()
    tee = run_instrumented_scenario(seed=7)
    assert len(tee.system.obs.flightrec) > 0  # the recorder was live
    assert table4_rows() == before


def test_flightrec_and_slo_are_idle_until_probed():
    """Enabled-but-idle: attaching observability records nothing until
    the workload actually runs, and an untouched system's registry holds
    zero SLO samples, zero flight events, zero attribution rows."""
    tee = HyperTEE(SystemConfig(seed=5))
    tee.system.enable_observability()
    obs = tee.system.obs
    assert len(obs.flightrec) == 0
    assert obs.flightrec.trips == 0
    assert obs.slo.operations() == []
    assert obs.slo.report() == []
    assert obs.attribution.table() == []
