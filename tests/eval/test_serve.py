"""The serve load driver: determinism, schema, starvation, CLI.

``python -m repro serve`` is a CI surface (the serve smoke job uploads
its SLO artifact and trusts its exit code), so this file pins the
contract: one config always produces one report document, the document
carries every section the job reads, and the starvation detector fails
the process under pinned backpressure — and only then.
"""

from __future__ import annotations

import json

import pytest

from repro.eval.serve import CHAOS_MODES, SCHEMA, ServeConfig, \
    render_report, run_serve
from repro.obs.cli import main

QUICK = dict(shards=2, workers=2, ops=60, seed=0xD0C)


def test_same_config_same_report():
    """Bit-identical JSON documents from back-to-back runs."""
    first = run_serve(ServeConfig(**QUICK))
    second = run_serve(ServeConfig(**QUICK))
    assert json.dumps(first, default=str) == \
        json.dumps(second, default=str)


def test_report_schema_and_sections():
    """Every section the CI job and the render path consume is present."""
    report = run_serve(ServeConfig(**QUICK))
    assert report["schema"] == SCHEMA
    assert report["config"]["shards"] == 2
    totals = report["totals"]
    assert totals["steps"] == QUICK["ops"]
    assert totals["completed"] + totals["degraded"] >= totals["steps"]
    assert totals["requests_served"] > 0
    assert report["slo"], "a serve run must record SLO samples"
    for row in report["slo"]:
        assert {"operation", "count", "p50", "p99"} <= set(row)
    assert report["attribution"], "per-enclave attribution missing"
    shards = report["shards"]
    assert shards["num_shards"] == 2
    assert sum(r["served"] for r in shards["per_shard"]) == \
        totals["requests_served"]
    assert not report["starvation"]["starved"]
    rendered = render_report(report)
    assert "SLO report under serve load" in rendered
    assert "Per-shard attribution" in rendered


def test_single_shard_report_has_same_schema():
    """shards=1 synthesizes the per-shard section; one schema for all."""
    report = run_serve(ServeConfig(shards=1, workers=2, ops=40))
    shards = report["shards"]
    assert shards["num_shards"] == 1
    assert len(shards["per_shard"]) == 1
    assert shards["per_shard"][0]["served"] == \
        report["totals"]["requests_served"]
    assert shards["transfers_committed"] == 0


def test_queuefull_chaos_starves():
    """Pinned backpressure: zero completed ops, starvation flagged."""
    report = run_serve(ServeConfig(shards=2, workers=2, ops=15,
                                   chaos="queuefull"))
    starvation = report["starvation"]
    assert starvation["starved"]
    assert starvation["completed_ops"] == 0
    assert starvation["degraded_ops"] > 0
    assert "STARVATION" in render_report(report)


def test_config_validation():
    """Bad knobs are refused at construction, not mid-run."""
    with pytest.raises(ValueError):
        ServeConfig(shards=0)
    with pytest.raises(ValueError):
        ServeConfig(workers=0)
    with pytest.raises(ValueError):
        ServeConfig(ops=0)
    with pytest.raises(ValueError):
        ServeConfig(chaos="blizzard")
    assert "queuefull" in CHAOS_MODES


def test_cli_serve_smoke(tmp_path, capsys):
    """The subcommand: exit 0, artifact written, JSON mode parses."""
    out = tmp_path / "SERVE_SLO.json"
    assert main(["serve", "--shards", "2", "--workers", "2",
                 "--ops", "40", "--out", str(out)]) == 0
    document = json.loads(out.read_text())
    assert document["schema"] == SCHEMA
    capsys.readouterr()

    assert main(["serve", "--shards", "2", "--workers", "2",
                 "--ops", "40", "--json"]) == 0
    parsed = json.loads(capsys.readouterr().out)
    assert parsed["schema"] == SCHEMA


def test_cli_serve_starvation_exit_codes(capsys):
    """Starved runs exit 1 unless the gate is explicitly waived."""
    args = ["serve", "--shards", "2", "--workers", "2", "--ops", "10",
            "--chaos", "queuefull"]
    assert main(args) == 1
    capsys.readouterr()
    assert main([*args, "--no-fail-on-starvation"]) == 0
    capsys.readouterr()


def test_cli_serve_rejects_bad_config(capsys):
    """Config errors are a usage failure (exit 2), not a traceback."""
    assert main(["serve", "--shards", "0"]) == 2
    assert "error" in capsys.readouterr().err
