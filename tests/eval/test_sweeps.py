"""Sensitivity-sweep machinery."""

from __future__ import annotations

import repro.cs.emcall as emcall_module
import repro.eval.slo as slo_module
from repro.eval.sweeps import jitter_sweep, pool_exposure_sweep, slo_load_sweep


def test_pool_sweep_shape():
    points = pool_exposure_sweep(demand_pages=512,
                                 initial_sizes=(64, 512))
    assert [p.initial_pages for p in points] == [64, 512]
    assert all(p.refill_events >= 1 for p in points)
    assert points[0].refill_events >= points[1].refill_events


def test_slo_sweep_restores_think_time():
    original = slo_module.SLO_THINK_TIME_SECONDS
    points = slo_load_sweep(cs_cores=16, think_times=(20e-3, 5e-3))
    assert slo_module.SLO_THINK_TIME_SECONDS == original
    assert points[0].p99_factor <= points[1].p99_factor


def test_jitter_sweep_restores_window():
    original = emcall_module.EMCALL_POLL_JITTER_CYCLES
    points = jitter_sweep(windows=(0, 100), samples=8)
    assert emcall_module.EMCALL_POLL_JITTER_CYCLES == original
    assert points[0].latency_spread == 0
    assert points[1].latency_spread > 0
