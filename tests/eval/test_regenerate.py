"""The `python -m repro` regeneration CLI.

The figure/table regenerations are the heaviest tests in the tree;
they carry the ``slow`` marker so the fast loop can skip them with
``-m "not slow"`` (see pytest.ini).
"""

from __future__ import annotations

import pytest

from repro.eval.regenerate import ARTIFACTS, regenerate

pytestmark = pytest.mark.slow


def test_all_paper_artifacts_registered():
    assert set(ARTIFACTS) == {
        "table2", "table3", "table4", "table5", "table6", "tcb",
        "fig6", "fig7", "fig8a", "fig8b", "fig9", "fig10", "fig11",
        "fig12"}


@pytest.mark.parametrize("name", ["table4", "table5", "fig8a", "fig8b",
                                  "fig9", "fig10", "fig11", "fig12"])
def test_single_artifact_renders(name: str):
    text = regenerate([name])
    assert text.startswith("===")
    assert len(text.splitlines()) >= 4


def test_selection_order_respected():
    text = regenerate(["fig9", "table5"])
    assert text.index("Fig. 9") < text.index("Table V")


def test_unknown_artifact_rejected():
    with pytest.raises(SystemExit):
        regenerate(["fig99"])
