"""TCB inventory (paper Section VIII-A)."""

from __future__ import annotations

from repro.eval.tcb import (
    TCB_COMPONENTS,
    UNTRUSTED_MODULES,
    tcb_inventory,
    tcb_total_lines,
)


def test_inventory_covers_every_component():
    entries = tcb_inventory()
    assert {e.component for e in entries} == set(TCB_COMPONENTS)
    assert all(e.code_lines > 0 for e in entries)


def test_core_runtime_stays_formally_verifiable_sized():
    """The paper's EMS Runtime is 3843 LoC; verification frameworks
    handle tens of thousands. Our equivalent (dispatch + managers) must
    stay in that regime."""
    core = next(e for e in tcb_inventory()
                if e.component.startswith("EMS runtime"))
    assert core.code_lines < 10_000
    total = tcb_total_lines()
    assert total < 20_000  # "codebases comprising tens of thousands"


def test_untrusted_components_not_in_tcb():
    """The OS, SDK, scheduler, attacks, and baselines are attacker-side;
    they must never appear in a TCB component's module list."""
    tcb_modules = {module for modules in TCB_COMPONENTS.values()
                   for module in modules}
    for untrusted in UNTRUSTED_MODULES:
        assert not any(module.startswith(untrusted)
                       for module in tcb_modules), untrusted
