"""Golden pin for Table IV: exact values, not just paper-shape bands.

benchmarks/test_table4_primitives.py asserts the *shape* (each cell
lands within the paper's tolerance). This test pins the model's exact
output in ``tests/golden/table4.json`` so an accidental calibration or
cycle-model drift shows up as a diff even when it stays inside the
bands — e.g. a batching change that should leave the scalar paper
numbers bit-unchanged.

Legitimate model changes refresh the file with::

    python -m pytest tests/eval/test_golden_table4.py --update-golden

then review the JSON diff like any other code change.
"""

from __future__ import annotations

import json
import pathlib

from repro.eval.regenerate import table4_rows

GOLDEN = pathlib.Path(__file__).resolve().parent.parent / \
    "golden" / "table4.json"

#: Float cells are pinned to 12 decimal places: far below any physical
#: meaning, far above float noise, and stable across platforms.
_PLACES = 12


def _current() -> dict:
    return {
        "table": "IV",
        "columns": ["noncrypto_all", "noncrypto_emeas",
                    "crypto_all", "crypto_emeas"],
        "rows": {name: [round(value, _PLACES) for value in row]
                 for name, row in sorted(table4_rows().items())},
    }


def test_table4_matches_golden(update_golden):
    current = _current()
    if update_golden:
        GOLDEN.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN.write_text(json.dumps(current, indent=2, sort_keys=True)
                          + "\n", encoding="utf-8")
        return
    assert GOLDEN.exists(), \
        "tests/golden/table4.json missing — run with --update-golden"
    golden = json.loads(GOLDEN.read_text(encoding="utf-8"))
    assert current == golden, (
        "Table IV drifted from tests/golden/table4.json. If the change "
        "is intended, regenerate with --update-golden and commit the "
        "reviewed diff.")
