"""Fig. 6 queueing simulation properties."""

from __future__ import annotations


from repro.eval.slo import ADEQUATE_EMS, SLO_FACTOR, meets_slo, simulate


def test_simulation_produces_all_latencies():
    result = simulate(cs_cores=4, ems_cores=1, ems_name="weak",
                      requests_per_core=16)
    assert len(result.latencies) == 4 * 16


def test_deterministic_per_seed():
    a = simulate(4, 1, "weak", requests_per_core=8, seed=3)
    b = simulate(4, 1, "weak", requests_per_core=8, seed=3)
    assert a.latencies == b.latencies


def test_more_servers_never_hurt():
    one = simulate(32, 1, "medium", requests_per_core=16)
    two = simulate(32, 2, "medium", requests_per_core=16)
    assert two.p99_factor() <= one.p99_factor()


def test_more_load_never_helps():
    small = simulate(8, 2, "medium", requests_per_core=16)
    big = simulate(64, 2, "medium", requests_per_core=16)
    assert big.p99_factor() >= small.p99_factor()


def test_cdf_monotone():
    result = simulate(16, 2, "weak", requests_per_core=16)
    curve = result.cdf_curve([1, 2, 4, 8, 16])
    fractions = [y for _, y in curve]
    assert fractions == sorted(fractions)
    assert 0.0 <= fractions[0] and fractions[-1] <= 1.0


def test_paper_adequacy_conclusions():
    """Section VII-B: the paper's recommended EMS per CS size meets the
    SLO, and the next cheaper configuration for the big machines fails."""
    for cs_cores, (ems_cores, ems_name) in ADEQUATE_EMS.items():
        assert meets_slo(simulate(cs_cores, ems_cores, ems_name)), cs_cores
    # A single medium core is NOT adequate for 64 CS cores.
    assert not meets_slo(simulate(64, 1, "medium"))
    # Dual weak is not adequate for 64 either.
    assert not meets_slo(simulate(64, 2, "weak"))


def test_dual_matches_quad_for_big_cs():
    """The headline Fig. 6 observation: dual-OoO ~ quad-OoO at 64 cores."""
    dual = simulate(64, 2, "medium")
    quad = simulate(64, 4, "medium")
    assert meets_slo(dual) and meets_slo(quad)
    assert dual.fraction_within(SLO_FACTOR) >= 0.99
