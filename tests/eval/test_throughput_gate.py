"""The fast-kernel throughput gate behind ``bench --check`` (BENCH_pr7).

One real reference/fast measurement pair runs per module (the fixture);
every checker-logic test replays those canned results through a
monkeypatched ``run_scenario``, so the gate's three layers — exact
deterministic pins, the geomean floor, the calibrated speedup band —
are each exercised without re-paying wall-clock measurement.
"""

from __future__ import annotations

import copy
import pathlib

import pytest

from repro.eval import throughput

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def baseline():
    """(real per-engine results, single-scenario artifact built from them)."""
    scenario = throughput.SCENARIOS_BY_NAME["alloc_batch"]
    results = {engine: throughput.run_scenario(scenario, engine)
               for engine in throughput.ENGINES}
    mp = pytest.MonkeyPatch()
    mp.setattr(throughput, "SCENARIOS", (scenario,))
    mp.setattr(throughput, "run_scenario",
               lambda sc, engine, seed=throughput.DEFAULT_SEED:
               dict(results[engine]))
    try:
        report = throughput.build_report(calibration_repeats=1)
    finally:
        mp.undo()
    return results, report


@pytest.fixture
def replay(monkeypatch, baseline):
    """Artifact plus a checker that re-measures from the canned results."""
    results, report = baseline
    monkeypatch.setattr(throughput, "run_scenario",
                        lambda sc, engine, seed=throughput.DEFAULT_SEED:
                        dict(results[engine]))
    return copy.deepcopy(report)


# -- building ---------------------------------------------------------------

def test_report_shape_and_determinism_guard(baseline):
    results, report = baseline
    assert report["schema"] == throughput.SCHEMA
    scenario = report["scenarios"]["alloc_batch"]
    # Noise-free replay calibration collapses the band to its floor.
    assert scenario["tolerance"] == throughput.TOLERANCE_FLOOR
    assert scenario["requests"] == results["reference"]["requests"]
    assert scenario["state_digest"] == results["fast"]["state_digest"]
    assert scenario["measured"]["cache"]["stream_hits"] > 0


def test_engine_divergence_refuses_to_build(monkeypatch, baseline):
    results, _report = baseline

    def diverging(scenario, engine, seed=throughput.DEFAULT_SEED):
        result = dict(results[engine])
        if engine == "fast":
            result["requests"] += 1
        return result

    monkeypatch.setattr(
        throughput, "SCENARIOS",
        (throughput.SCENARIOS_BY_NAME["alloc_batch"],))
    monkeypatch.setattr(throughput, "run_scenario", diverging)
    with pytest.raises(RuntimeError, match="engine divergence"):
        throughput.build_report(calibration_repeats=0)


# -- checking ---------------------------------------------------------------

def test_fresh_artifact_passes_its_own_check(replay):
    ok, messages = throughput.check_report(replay)
    assert ok
    assert any("passed" in m for m in messages)
    assert any("geomean" in m for m in messages)


def test_speedup_decay_beyond_the_band_fails(replay):
    ok, messages = throughput.check_report(replay, scale_fast=0.01)
    assert not ok
    assert any("regressed" in m for m in messages)
    assert any("no longer earns its keep" in m for m in messages)


def test_speedup_improvement_is_noted_but_passes(replay):
    ok, messages = throughput.check_report(replay, scale_fast=2.0)
    assert ok
    assert any("re-baselining" in m for m in messages)


def test_deterministic_drift_is_a_structural_failure(replay):
    replay["scenarios"]["alloc_batch"]["state_digest"] = "0" * 64
    ok, messages = throughput.check_report(replay)
    assert not ok
    assert any("re-baseline deliberately" in m for m in messages)


def test_request_count_drift_is_a_structural_failure(replay):
    replay["scenarios"]["alloc_batch"]["requests"] += 1
    ok, messages = throughput.check_report(replay)
    assert not ok
    assert any("modelled behaviour changed" in m for m in messages)


def test_unknown_scenario_in_artifact_fails(replay):
    replay["scenarios"]["renamed"] = replay["scenarios"].pop("alloc_batch")
    ok, messages = throughput.check_report(replay)
    assert not ok
    assert any("unknown scenario" in m for m in messages)


def test_schema_mismatch_refuses_to_compare():
    ok, messages = throughput.check_report({"schema": "hypertee.throughput/0"})
    assert not ok
    assert "regenerate" in messages[0]


# -- rendering and serialization ---------------------------------------------

def test_render_and_write_roundtrip(replay, tmp_path):
    table = throughput.render_report(replay)
    assert "alloc_batch" in table
    assert "geomean" in table
    path = tmp_path / "tput.json"
    throughput.write_report(replay, str(path))
    assert throughput.load_report(str(path)) == replay
    assert path.read_text().endswith("\n")


# -- the committed artifact --------------------------------------------------

def test_committed_artifact_is_well_formed():
    report = throughput.load_report(str(REPO_ROOT / throughput.DEFAULT_REPORT))
    assert report["schema"] == throughput.SCHEMA
    assert set(report["scenarios"]) == set(throughput.SCENARIOS_BY_NAME)
    assert report["geomean_speedup"] >= report["gate_geomean_speedup"]
    for scenario in report["scenarios"].values():
        assert scenario["tolerance"] >= throughput.TOLERANCE_FLOOR
        assert len(scenario["state_digest"]) == 64
        assert scenario["measured"]["speedup"] > 1.0


@pytest.mark.slow
def test_committed_artifact_passes_a_real_check():
    report = throughput.load_report(str(REPO_ROOT / throughput.DEFAULT_REPORT))
    ok, messages = throughput.check_report(report)
    assert ok, messages
