"""TLB-flush overhead model (Fig. 11) and the report renderer."""

from __future__ import annotations


from repro.eval.overhead import (
    bitmap_update_flush_overhead,
    context_switch_flush_overhead,
    tlb_refill_cycles,
)
from repro.eval.report import pct, render_series, render_table, times


def test_refill_bounded_by_tlb_capacity():
    assert tlb_refill_cycles(4) == tlb_refill_cycles(64)  # both >= 1024 pages
    assert tlb_refill_cycles(1) < tlb_refill_cycles(4)


def test_fig11_anchor_point():
    """32 MB at 400 Hz: no more than 1.81% (the paper's stated bound)."""
    overhead = context_switch_flush_overhead(32, 400)
    assert overhead <= 0.0181 + 1e-6
    assert overhead > 0.015


def test_overhead_monotone_in_frequency_and_size():
    assert (context_switch_flush_overhead(32, 400)
            > context_switch_flush_overhead(32, 100))
    assert (context_switch_flush_overhead(32, 200)
            >= context_switch_flush_overhead(2, 200))


def test_bitmap_update_flushes_under_paper_bound():
    """Section VII-C: below 0.7% on SPEC at 16.72 flushes/B-instr."""
    assert bitmap_update_flush_overhead() < 0.007


def test_render_table():
    out = render_table("T", ["a", "bb"], [[1, 2], ["xxx", 4]])
    lines = out.splitlines()
    assert lines[0] == "=== T ==="
    assert "xxx" in out and "bb" in out
    assert len(lines) == 5


def test_render_series_and_formatters():
    out = render_series("S", [(1, 2.0)], x_label="mb", y_label="ovh")
    assert "mb" in out and "ovh" in out
    assert pct(0.0213) == "2.13%"
    assert times(4.26) == "4.3x"
