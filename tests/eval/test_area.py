"""Table V area model."""

from __future__ import annotations

import pytest

from repro.eval.area import (
    TABLE5_CS_AREA,
    TABLE5_OVERHEAD_PCT,
    cs_area_mm2,
    ems_area_mm2,
    ems_core_mm2,
    table5_rows,
)
from repro.hw.core import EMS_MEDIUM, EMS_WEAK


def test_cs_area_matches_published_points():
    for cores, published in TABLE5_CS_AREA.items():
        assert cs_area_mm2(cores) == pytest.approx(published, rel=0.01)


def test_medium_core_bigger_than_weak():
    assert ems_core_mm2(EMS_MEDIUM) > 3 * ems_core_mm2(EMS_WEAK)


def test_ems_area_includes_crypto_engine():
    assert ems_area_mm2(1, "weak") > ems_core_mm2(EMS_WEAK) + 0.19


def test_overheads_match_table5():
    for row in table5_rows():
        published = TABLE5_OVERHEAD_PCT[row.cs_cores]
        assert row.overhead_pct == pytest.approx(published, abs=0.06), \
            f"{row.cs_cores} cores"


def test_overhead_below_one_percent_everywhere():
    """The paper's headline claim: EMS < 1% of the SoC at every size."""
    assert all(row.overhead_pct <= 1.0 for row in table5_rows())


def test_biggest_soc_has_smallest_relative_cost():
    rows = {row.cs_cores: row.overhead_pct for row in table5_rows()}
    assert rows[64] == min(rows.values())
