"""The statistical perf-regression gate behind ``bench --check``."""

from __future__ import annotations

import copy
import json

import pytest

from repro.eval import regress


@pytest.fixture(scope="module")
def report():
    """One calibration seed keeps the module-scoped build fast."""
    return regress.build_report(
        calibration_seeds=regress.CALIBRATION_SEEDS[:1])


# -- building ---------------------------------------------------------------

def test_report_covers_every_scenario_with_full_stats(report):
    assert report["schema"] == regress.SCHEMA
    assert set(report["scenarios"]) == set(regress.SCENARIOS)
    for scenario in report["scenarios"].values():
        assert scenario["tolerance"] >= regress.TOLERANCE_FLOOR
        assert scenario["operations"]
        for stats in scenario["operations"].values():
            assert set(stats) == {"count", *regress.STAT_KEYS}
            assert stats["count"] > 0
            assert stats["p50"] <= stats["p95"] <= stats["p99"]


def test_scenarios_are_seed_deterministic():
    a = regress.run_scenario("lifecycle", regress.DEFAULT_SEED)
    b = regress.run_scenario("lifecycle", regress.DEFAULT_SEED)
    assert a == b


def test_calibration_seeds_actually_move_the_latencies():
    base = regress.run_scenario("alloc_scalar", regress.DEFAULT_SEED)
    cal = regress.run_scenario("alloc_scalar", regress.CALIBRATION_SEEDS[0])
    assert base != cal  # jitter differs, so the band is non-trivial


# -- checking ---------------------------------------------------------------

def test_fresh_artifact_passes_its_own_check(report):
    ok, messages = regress.check_report(report)
    assert ok
    assert any("passed" in m for m in messages)


def test_uniform_slowdown_beyond_the_band_fails(report):
    ok, messages = regress.check_report(report, inflate=1.5)
    assert not ok
    assert any("regressed" in m for m in messages)


def test_uniform_speedup_is_noted_but_passes(report):
    ok, messages = regress.check_report(report, inflate=0.5)
    assert ok
    assert any("improved" in m for m in messages)


def test_count_drift_is_a_structural_failure(report):
    tampered = copy.deepcopy(report)
    scenario = tampered["scenarios"]["lifecycle"]
    operation = next(iter(scenario["operations"]))
    scenario["operations"][operation]["count"] += 1
    ok, messages = regress.check_report(tampered)
    assert not ok
    assert any("workload changed" in m for m in messages)


def test_schema_mismatch_refuses_to_compare():
    ok, messages = regress.check_report({"schema": "hypertee.regress/0"})
    assert not ok
    assert "regenerate" in messages[0]


def test_unknown_scenario_in_artifact_fails(report):
    tampered = copy.deepcopy(report)
    tampered["scenarios"]["phantom"] = {"operations": {}, "tolerance": 0.1}
    ok, messages = regress.check_report(tampered)
    assert not ok
    assert any("unknown scenario" in m for m in messages)


# -- the committed artifact -------------------------------------------------

def test_committed_artifact_matches_a_rebuild(tmp_path):
    committed = regress.load_report(regress.DEFAULT_REPORT)
    rebuilt = regress.build_report()
    out = tmp_path / "fresh.json"
    regress.write_report(rebuilt, str(out))
    assert json.loads(out.read_text()) == committed


def test_render_report_shows_one_block_per_scenario(report):
    text = regress.render_report(report)
    for name in regress.SCENARIOS:
        assert name in text
    assert "band" in text
