"""Property-based laws for the wire codec and the mailbox packet types.

The codec's contract is two laws, checked here over Hypothesis-generated
artifacts rather than hand-picked examples:

* **round-trip**: ``decode(encode(x)) == x`` for every artifact type;
* **tamper-evidence**: flipping *any single byte* of the wire form (or
  truncating / extending it) makes decode raise :class:`CodecError` —
  the CRC32 trailer guarantees single-byte flips can never parse.

The packet-layer batch containers carry the algebraic identities the
mailbox and EMCall rely on (``request_id`` aliasing, ``ok`` as the
conjunction over elements), so those are pinned here too.

Example counts are deliberately bounded (tier-1 runs this file).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.codec import (
    CodecError,
    decode_quote,
    decode_sealed_blob,
    decode_snapshot,
    encode_quote,
    encode_sealed_blob,
    encode_snapshot,
)
from repro.common.packets import (
    BatchRequest,
    BatchResponse,
    PrimitiveRequest,
    PrimitiveResponse,
    ResponseStatus,
)
from repro.common.types import Primitive, Privilege
from repro.cvm.manager import CVMSnapshot
from repro.ems.attestation import AttestationQuote, Certificate
from repro.ems.sealing import SealedBlob

# -- artifact strategies ----------------------------------------------------

_blobs = st.builds(
    SealedBlob,
    nonce=st.binary(max_size=24),
    ciphertext=st.binary(max_size=128),
    tag=st.binary(max_size=48))

_certs = st.builds(
    Certificate,
    subject=st.text(
        alphabet=st.characters(codec="ascii", exclude_categories=("C",)),
        max_size=24),
    measurement=st.binary(max_size=32),
    report_data=st.binary(max_size=32),
    signature=st.binary(max_size=48))

_quotes = st.builds(AttestationQuote, platform=_certs, enclave=_certs)

_snapshots = st.builds(
    CVMSnapshot,
    snapshot_id=st.integers(min_value=0, max_value=2**63 - 1),
    name=st.text(
        alphabet=st.characters(codec="ascii", exclude_categories=("C",)),
        max_size=16),
    encrypted_pages=st.lists(
        st.binary(max_size=64), max_size=4).map(tuple),
    measurement=st.binary(max_size=32))

_CODECS = {
    "sealed_blob": (encode_sealed_blob, decode_sealed_blob, _blobs),
    "quote": (encode_quote, decode_quote, _quotes),
    "snapshot": (encode_snapshot, decode_snapshot, _snapshots),
}


# -- law 1: encode∘decode = identity ----------------------------------------

@given(blob=_blobs)
@settings(max_examples=60, deadline=None)
def test_sealed_blob_roundtrip_law(blob):
    assert decode_sealed_blob(encode_sealed_blob(blob)) == blob


@given(quote=_quotes)
@settings(max_examples=40, deadline=None)
def test_quote_roundtrip_law(quote):
    assert decode_quote(encode_quote(quote)) == quote


@given(snapshot=_snapshots)
@settings(max_examples=40, deadline=None)
def test_snapshot_roundtrip_law(snapshot):
    assert decode_snapshot(encode_snapshot(snapshot)) == snapshot


# -- law 2: any single-byte flip is rejected --------------------------------

@pytest.mark.parametrize("artifact", sorted(_CODECS))
@given(data=st.data(), position=st.integers(min_value=0),
       flip=st.integers(min_value=1, max_value=255))
@settings(max_examples=80, deadline=None)
def test_single_byte_flip_rejected(artifact, data, position, flip):
    encode, decode, strategy = _CODECS[artifact]
    wire = encode(data.draw(strategy))
    index = position % len(wire)
    corrupted = bytearray(wire)
    corrupted[index] ^= flip  # flip != 0, so the byte really changes
    with pytest.raises(CodecError):
        decode(bytes(corrupted))


@pytest.mark.parametrize("artifact", sorted(_CODECS))
@given(data=st.data(), cut=st.integers(min_value=1, max_value=8))
@settings(max_examples=30, deadline=None)
def test_truncation_rejected(artifact, data, cut):
    encode, decode, strategy = _CODECS[artifact]
    wire = encode(data.draw(strategy))
    with pytest.raises(CodecError):
        decode(wire[:-min(cut, len(wire))])


@pytest.mark.parametrize("artifact", sorted(_CODECS))
@given(data=st.data(), extra=st.binary(min_size=1, max_size=8))
@settings(max_examples=30, deadline=None)
def test_extension_rejected(artifact, data, extra):
    encode, decode, strategy = _CODECS[artifact]
    wire = encode(data.draw(strategy))
    with pytest.raises(CodecError):
        decode(wire + extra)


# -- packet-layer batch container laws --------------------------------------

_requests = st.builds(
    PrimitiveRequest,
    request_id=st.integers(min_value=0, max_value=2**31),
    primitive=st.sampled_from(Primitive),
    enclave_id=st.none() | st.integers(min_value=1, max_value=64),
    privilege=st.sampled_from(Privilege),
    args=st.just({}))

_responses = st.builds(
    PrimitiveResponse,
    request_id=st.integers(min_value=0, max_value=2**31),
    status=st.sampled_from(ResponseStatus),
    result=st.just({}),
    service_cycles=st.integers(min_value=0, max_value=10_000))


@given(batch_id=st.integers(min_value=0, max_value=2**31),
       requests=st.lists(_requests, min_size=1, max_size=8))
@settings(max_examples=40, deadline=None)
def test_batch_request_laws(batch_id, requests):
    batch = BatchRequest(batch_id=batch_id, requests=requests)
    # The transport keys every packet off request_id; for a batch that
    # is the batch_id (one envelope == one packet).
    assert batch.request_id == batch.batch_id == batch_id
    assert len(batch) == len(requests)
    assert list(batch.requests) == list(requests)


@given(batch_id=st.integers(min_value=0, max_value=2**31),
       responses=st.lists(_responses, min_size=1, max_size=8))
@settings(max_examples=40, deadline=None)
def test_batch_response_ok_is_conjunction(batch_id, responses):
    batch = BatchResponse(batch_id=batch_id, responses=responses)
    assert batch.request_id == batch_id
    assert batch.ok == all(r.ok for r in responses)
    assert len(batch) == len(responses)


def test_empty_batches_rejected():
    with pytest.raises(ValueError):
        BatchRequest(batch_id=1, requests=())
    with pytest.raises(ValueError):
        BatchResponse(batch_id=1, responses=())
