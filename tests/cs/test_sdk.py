"""HostApp SDK and the host<->enclave transfer buffer."""

from __future__ import annotations

import pytest

from repro.core.api import HyperTEE
from repro.core.enclave import EnclaveConfig
from repro.cs.sdk import HostApp
from repro.errors import ConfigurationError


@pytest.fixture
def tee() -> HyperTEE:
    return HyperTEE()


@pytest.fixture
def app(tee: HyperTEE) -> HostApp:
    app = HostApp(tee, "hostapp")
    app.launch(b"enclave code", EnclaveConfig(name="svc",
                                              host_shared_pages=2))
    return app


def test_launch_requires_buffer_declaration(tee: HyperTEE):
    app = HostApp(tee, "hostapp")
    with pytest.raises(ConfigurationError):
        app.launch(b"code", EnclaveConfig(name="nobuf"))


def test_host_to_enclave_transfer(app: HostApp):
    enclave_vaddr = app.send(b"encrypted user payload")
    with app.enclave.running():
        assert app.enclave.read(enclave_vaddr, 22) == b"encrypted user payload"


def test_enclave_to_host_transfer(app: HostApp):
    with app.enclave.running():
        app.enclave.write(HostApp.enclave_buffer_vaddr(100), b"public result")
    assert app.receive(13, offset=100) == b"public result"


def test_buffer_is_plaintext_shared(app: HostApp):
    """The transfer buffer is intentionally host-visible plaintext: the
    confidentiality of its contents comes from application-level
    encryption (remote users send ciphertext), not the hardware."""
    app.write_buffer(0, b"visible to both")
    control = app.tee.system.enclaves.enclaves[app.enclave.enclave_id]
    frame = control.host_shared_frames[0]
    raw = app.tee.system.memory.read_raw(frame * 4096, 15)
    assert raw == b"visible to both"


def test_buffer_bounds(app: HostApp):
    with pytest.raises(ValueError):
        app.write_buffer(2 * 4096 - 4, b"spills over")
    with pytest.raises(ValueError):
        app.read_buffer(-1, 4)


def test_buffer_not_bitmap_marked(app: HostApp):
    control = app.tee.system.enclaves.enclaves[app.enclave.enclave_id]
    for frame in control.host_shared_frames:
        assert not app.tee.system.bitmap.is_enclave(frame)


def test_enclave_private_memory_still_private(app: HostApp):
    """The transfer buffer does not weaken the enclave's own memory."""
    with app.enclave.running():
        vaddr = app.enclave.ealloc(1)
        app.enclave.write(vaddr, b"still secret")
        control = app.tee.system.enclaves.enclaves[app.enclave.enclave_id]
        frame = control.page_table.lookup(vaddr >> 12).ppn
    assert app.tee.system.memory.read_raw(frame * 4096, 12) != b"still secret"


def test_destroy_releases_buffer_frames(app: HostApp):
    control = app.tee.system.enclaves.enclaves[app.enclave.enclave_id]
    frames = list(control.host_shared_frames)
    free_before = app.tee.system.os.free_frame_count()
    app.enclave.destroy()
    assert app.tee.system.os.free_frame_count() >= free_before + len(frames)


def test_two_hostapps_have_separate_buffers(tee: HyperTEE):
    a = HostApp(tee, "a")
    a.launch(b"code-a", EnclaveConfig(name="a", host_shared_pages=1))
    b = HostApp(tee, "b")
    b.launch(b"code-b", EnclaveConfig(name="b", host_shared_pages=1))
    a.write_buffer(0, b"for-a")
    b.write_buffer(0, b"for-b")
    assert a.read_buffer(0, 5) == b"for-a"
    assert b.read_buffer(0, 5) == b"for-b"
