"""CS core: context switches and the full load/store path."""

from __future__ import annotations

import itertools

import pytest

from repro.common.constants import PAGE_SIZE
from repro.common.types import Permission, Privilege
from repro.cs.cpu import CSCore
from repro.errors import ConfigurationError, IsolationViolation
from repro.hw.bitmap import BitmapReader, EnclaveBitmap
from repro.hw.fabric import AddressPartition, IHub
from repro.hw.memory import PhysicalMemory
from repro.hw.page_table import PageTable


@pytest.fixture
def rig(plain_memory: PhysicalMemory):
    size = plain_memory.size_bytes
    ihub = IHub(AddressPartition(0, size - 0x100000, size - 0x100000, 0x100000))
    bitmap = EnclaveBitmap(plain_memory, base_paddr=0)
    core = CSCore(0, plain_memory, ihub, BitmapReader(bitmap))
    counter = itertools.count(10)
    table = PageTable(plain_memory, next(counter),
                      allocate_frame=lambda: next(counter), asid=1)
    return core, table, bitmap


def test_no_context_faults(rig):
    core, _, _ = rig
    with pytest.raises(ConfigurationError):
        core.load(0x1000, 4)


def test_load_store_roundtrip(rig):
    core, table, _ = rig
    table.map(0x100, 300, Permission.RW)
    core.set_host_context(table)
    core.store(0x100 * PAGE_SIZE, b"hello core")
    assert core.load(0x100 * PAGE_SIZE, 10) == b"hello core"
    assert core.cycles > 0


def test_cs_core_cannot_reach_ems_region(rig):
    core, table, _ = rig
    ems_frame = (core.ihub.partition.ems_base // PAGE_SIZE) + 1
    table.map(0x100, ems_frame, Permission.RW)
    core.set_host_context(table)
    with pytest.raises(IsolationViolation):
        core.load(0x100 * PAGE_SIZE, 4)


def test_enclave_context_switch(rig):
    core, host_table, _ = rig
    enclave_table = PageTable(core.memory, 200,
                              allocate_frame=lambda: 201, asid=2)
    core.set_host_context(host_table, Privilege.SUPERVISOR)
    core.enter_enclave_context(7, enclave_table)
    assert core.in_enclave and core.current_enclave_id == 7
    assert core.privilege is Privilege.USER
    assert core.ptw.is_enclave_mode
    core.exit_enclave_context()
    assert not core.in_enclave
    assert core.active_table is host_table
    assert core.privilege is Privilege.SUPERVISOR


def test_context_switch_flushes_tlb(rig):
    core, table, _ = rig
    table.map(0x100, 300, Permission.RW)
    core.set_host_context(table)
    core.load(0x100 * PAGE_SIZE, 4)
    assert core.tlb.entry_count() == 1
    core.enter_enclave_context(1, table)
    assert core.tlb.entry_count() == 0


def test_exit_without_enter_faults(rig):
    core, _, _ = rig
    with pytest.raises(ConfigurationError):
        core.exit_enclave_context()
