"""EMCall interrupt routing (paper Section III-B exception handling)."""

from __future__ import annotations

import pytest

from repro.common.constants import CS_CORE_FREQ_HZ
from repro.common.types import EnclaveState
from repro.core.api import HyperTEE
from repro.core.enclave import EnclaveConfig


@pytest.fixture
def rig():
    tee = HyperTEE()
    enclave = tee.launch_enclave(b"interruptible",
                                 EnclaveConfig(name="victim"))
    return tee, enclave


def test_host_interrupts_go_to_os(rig):
    tee, _ = rig
    route = tee.system.emcall.handle_interrupt(
        tee.system.primary_core, "timer")
    assert route == "cs"


def test_page_faults_route_to_ems(rig):
    tee, enclave = rig
    enclave.enter()
    route = tee.system.emcall.handle_interrupt(enclave.core, "page-fault")
    assert route == "ems"
    # The enclave keeps running — the fault is serviced, not delivered
    # to the untrusted OS.
    control = tee.system.enclaves.enclaves[enclave.enclave_id]
    assert control.state is EnclaveState.RUNNING


def test_timer_suspends_enclave_then_routes_to_os(rig):
    tee, enclave = rig
    enclave.enter()
    route = tee.system.emcall.handle_interrupt(enclave.core, "timer")
    assert route == "cs"
    control = tee.system.enclaves.enclaves[enclave.enclave_id]
    assert control.state is EnclaveState.SUSPENDED
    assert not enclave.core.in_enclave  # host context restored atomically


def test_resume_after_timer(rig):
    tee, enclave = rig
    enclave.enter()
    vaddr = enclave.ealloc(1)
    enclave.write(vaddr, b"across interrupts")
    tee.system.emcall.handle_interrupt(enclave.core, "timer")
    enclave.resume()
    assert enclave.read(vaddr, 17) == b"across interrupts"
    enclave.exit()


def test_interrupt_storm_flags_and_evicts(rig):
    """Single-stepping storms trip the anomaly detector through the
    EMCall path, pulling the enclave off the core."""
    tee, enclave = rig
    enclave.enter()
    period = int(CS_CORE_FREQ_HZ / 200_000)  # ~200 kHz
    route = "ems"
    for i in range(64):
        if not enclave.core.in_enclave:
            break
        route = tee.system.emcall.handle_interrupt(
            enclave.core, "page-fault", cycle=i * period)
    assert tee.system.interrupt_monitor.is_flagged(enclave.enclave_id)
    assert not enclave.core.in_enclave
    assert route == "cs"


def test_benign_interrupt_rate_not_flagged(rig):
    tee, enclave = rig
    enclave.enter()
    period = int(CS_CORE_FREQ_HZ / 100)  # 100 Hz timer
    for i in range(1, 20):
        tee.system.emcall.handle_interrupt(enclave.core, "timer",
                                           cycle=i * period)
        if i < 19:
            enclave.resume()
    assert not tee.system.interrupt_monitor.is_flagged(enclave.enclave_id)
