"""Preemptive scheduling of hosts and enclaves together."""

from __future__ import annotations

import pytest

from repro.common.constants import PAGE_SIZE
from repro.core.api import HyperTEE
from repro.core.enclave import EnclaveConfig
from repro.cs.scheduler import EnclaveTask, HostTask, Scheduler


@pytest.fixture
def tee() -> HyperTEE:
    return HyperTEE()


def counting_enclave_program(total_steps: int, log: list):
    """An enclave program writing a counter to its heap each quantum."""
    state = {"vaddr": None, "step": 0}

    def program(enclave) -> bool:
        if state["vaddr"] is None:
            state["vaddr"] = enclave.ealloc(1)
        state["step"] += 1
        enclave.write(state["vaddr"], state["step"].to_bytes(4, "little"))
        log.append(("enclave", state["step"]))
        return state["step"] >= total_steps

    return program, state


def counting_host_program(tee: HyperTEE, process, total_steps: int, log: list):
    """A host program bumping a counter in its own memory each quantum."""
    vaddr, _ = tee.system.os.malloc(process, PAGE_SIZE)
    state = {"step": 0}

    def program(core) -> bool:
        state["step"] += 1
        core.store(vaddr, state["step"].to_bytes(4, "little"))
        log.append(("host", state["step"]))
        return state["step"] >= total_steps

    return program, vaddr, state


def test_interleaves_enclave_and_host(tee: HyperTEE):
    log: list = []
    enclave = tee.launch_enclave(b"scheduled", EnclaveConfig(name="e"))
    eprog, estate = counting_enclave_program(4, log)
    process = tee.system.os.create_process("app")
    hprog, hvaddr, hstate = counting_host_program(tee, process, 4, log)

    scheduler = Scheduler(tee)
    scheduler.add(EnclaveTask("e", enclave, eprog))
    scheduler.add(HostTask("h", process, hprog))
    scheduler.run()

    assert scheduler.pending == 0
    assert scheduler.stats.completed == 2
    # Genuinely interleaved, not run-to-completion.
    kinds = [kind for kind, _ in log]
    assert kinds[:4] == ["enclave", "host", "enclave", "host"]


def test_enclave_state_survives_preemption(tee: HyperTEE):
    """Heap contents written in slice N are intact in slice N+1, across
    real EEXIT/ERESUME transitions."""
    log: list = []
    enclave = tee.launch_enclave(b"persistent", EnclaveConfig(name="p"))
    prog, state = counting_enclave_program(5, log)
    other = tee.system.os.create_process("noise")
    nprog, _, _ = counting_host_program(tee, other, 5, log)

    scheduler = Scheduler(tee)
    scheduler.add(EnclaveTask("p", enclave, prog))
    scheduler.add(HostTask("noise", other, nprog))
    scheduler.run()

    with enclave.running():
        final = int.from_bytes(enclave.read(state["vaddr"], 4), "little")
    assert final == 5


def test_preemption_goes_through_emcall(tee: HyperTEE):
    """Every enclave preemption is a timer delivered to EMCall — the
    scheduler never touches enclave context directly."""
    log: list = []
    enclave = tee.launch_enclave(b"preempted", EnclaveConfig(name="x"))
    prog, _ = counting_enclave_program(3, log)
    scheduler = Scheduler(tee)
    scheduler.add(EnclaveTask("x", enclave, prog))

    observed_before = tee.system.interrupt_monitor.stats.observed
    scheduler.run()
    # Two preemptions (slices 1 and 2; slice 3 finishes).
    assert scheduler.stats.timer_interrupts == 2
    assert tee.system.interrupt_monitor.stats.observed == observed_before + 2


def test_hosts_cannot_see_enclave_data_between_slices(tee: HyperTEE):
    """After a preemption, the next host slice runs with the host context
    and only ciphertext in DRAM."""
    log: list = []
    enclave = tee.launch_enclave(b"secret-holder", EnclaveConfig(name="s"))
    prog, state = counting_enclave_program(2, log)
    process = tee.system.os.create_process("spy")

    leaks: list = []

    def spy(core) -> bool:
        control = tee.system.enclaves.enclaves[enclave.enclave_id]
        if state["vaddr"] is not None:
            frame = control.page_table.lookup(state["vaddr"] >> 12)
            if frame is not None:
                raw = tee.system.memory.read_raw(frame.ppn << 12, 4)
                leaks.append(raw)
        return len(leaks) >= 2

    scheduler = Scheduler(tee)
    scheduler.add(EnclaveTask("s", enclave, prog))
    scheduler.add(HostTask("spy", process, spy))
    scheduler.run()

    for raw in leaks:
        # Counter values are 1, 2, ... — the raw view must never show them.
        assert int.from_bytes(raw, "little") not in (1, 2, 3)


def test_normal_quantum_does_not_trip_anomaly_detector(tee: HyperTEE):
    log: list = []
    enclave = tee.launch_enclave(b"long-runner", EnclaveConfig(name="l"))
    prog, _ = counting_enclave_program(30, log)
    scheduler = Scheduler(tee)
    scheduler.add(EnclaveTask("l", enclave, prog))
    scheduler.run()
    assert not tee.system.interrupt_monitor.is_flagged(enclave.enclave_id)


def test_tiny_quantum_storm_is_flagged(tee: HyperTEE):
    """A malicious scheduler shrinking the quantum to single-step the
    enclave trips the detector, which evicts the enclave."""
    log: list = []
    enclave = tee.launch_enclave(b"stepped", EnclaveConfig(name="v"))
    prog, _ = counting_enclave_program(10_000, log)
    scheduler = Scheduler(tee, quantum_cycles=10_000)  # ~250 kHz
    scheduler.add(EnclaveTask("v", enclave, prog))
    with pytest.raises(Exception):
        # The detector suspends the enclave mid-schedule; the facade's
        # next resume/step then fails — the storm cannot continue.
        scheduler.run(max_slices=100)
    assert tee.system.interrupt_monitor.is_flagged(enclave.enclave_id)
