"""EMCall: privilege checks, identity stamping, response handling."""

from __future__ import annotations

import pytest

from repro.common.types import PRIMITIVE_PRIVILEGE, Primitive, Privilege
from repro.core.config import SystemConfig
from repro.core.enclave import EnclaveConfig
from repro.core.system import HyperTEESystem
from repro.errors import PrivilegeViolation


@pytest.fixture
def sys_() -> HyperTEESystem:
    return HyperTEESystem(SystemConfig(cs_memory_mb=48, ems_memory_mb=4))


def test_cross_privilege_blocked(sys_: HyperTEESystem):
    """Table II privilege assignments are enforced by EMCall, not EMS."""
    core = sys_.primary_core
    core.privilege = Privilege.USER
    with pytest.raises(PrivilegeViolation):
        sys_.emcall.invoke(Primitive.ECREATE,
                           {"config": EnclaveConfig()}, core=core)
    core.privilege = Privilege.SUPERVISOR
    with pytest.raises(PrivilegeViolation):
        sys_.emcall.invoke(Primitive.EALLOC, {"pages": 1}, core=core)


def test_all_primitives_have_privilege_assignments():
    assert set(PRIMITIVE_PRIVILEGE) == set(Primitive)


def test_invoke_returns_latency(sys_: HyperTEESystem):
    core = sys_.primary_core
    core.privilege = Privilege.SUPERVISOR
    result = sys_.emcall.invoke(Primitive.ECREATE,
                                {"config": EnclaveConfig()}, core=core)
    assert result.ok
    assert result.cs_cycles > result.response.service_cycles  # transport added


def test_enclave_identity_is_hardware_stamped(sys_: HyperTEESystem):
    """A caller-supplied enclave_id argument cannot impersonate: the
    request's identity comes from the core context."""
    core = sys_.primary_core
    core.privilege = Privilege.USER
    core.current_enclave_id = None  # not in an enclave
    result = sys_.emcall.invoke(
        Primitive.EALLOC, {"pages": 1, "enclave_id": 12345}, core=core)
    # The EMS rejects it: no stamped identity means no enclave caller.
    assert not result.ok


def test_bitmap_flush_counter(sys_: HyperTEESystem):
    before = sys_.emcall.bitmap_flush_count
    sys_.emcall.flush_tlbs_for_bitmap_change([1, 2, 3])
    assert sys_.emcall.bitmap_flush_count == before + 1


def test_page_fault_routing_requires_enclave(sys_: HyperTEESystem):
    from repro.errors import EMCallError

    with pytest.raises(EMCallError):
        sys_.emcall.handle_enclave_page_fault(sys_.primary_core, 0x1000)
