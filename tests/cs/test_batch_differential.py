"""Differential: the batched fast path is bit-identical to scalar EMCalls.

The batching optimisation must be *purely* a transport amortization —
same enclave memory image, same measurements, same attestation
signatures, same sealed bytes, same functional subsystem counters. Only
communication-shaped quantities (cycle totals, mailbox packet counts,
IRQ counts, coalesced TLB shootdowns) may differ.

Each case runs one randomized alloc/write/free workload twice on two
identically-seeded platforms — once through scalar ``invoke`` calls,
once through ``invoke_batch`` envelopes — then diffs the end states,
including a hash of *all* of physical memory.
"""

from __future__ import annotations

import hashlib
import random

import pytest

from repro.core.api import HyperTEE
from repro.core.config import SystemConfig
from repro.core.enclave import EnclaveConfig

#: ems counters that only exist to describe the batched transport; the
#: rest of the ems group must match exactly.
_EMS_TRANSPORT_KEYS = {"batches_served", "batched_elements"}


def _memory_digest(system) -> str:
    memory = system.memory
    digest = hashlib.sha256()
    step = 1 << 20
    for offset in range(0, memory.size_bytes, step):
        digest.update(memory.read_raw(
            offset, min(step, memory.size_bytes - offset)))
    return digest.hexdigest()


def _run_workload(*, batched: bool, seed: int, workload_seed: int) -> dict:
    tee = HyperTEE(SystemConfig(seed=seed, cs_memory_mb=64, ems_memory_mb=8))
    code = b"differential enclave " * 300
    config = EnclaveConfig(name="diff", heap_pages_max=160)
    launch = tee.launch_enclave_batched if batched else tee.launch_enclave
    enclave = launch(code, config)

    rnd = random.Random(workload_seed)
    live: list[tuple[int, int, bytes]] = []  # (vaddr, pages, payload)

    with enclave.running():
        for _ in range(4):
            page_counts = [rnd.randint(1, 3)
                           for _ in range(rnd.randint(1, 6))]
            if batched:
                vaddrs = enclave.ealloc_many(page_counts)
            else:
                vaddrs = [enclave.ealloc(pages) for pages in page_counts]
            for vaddr, pages in zip(vaddrs, page_counts):
                payload = rnd.randbytes(rnd.randint(1, 64))
                enclave.write(vaddr, payload)
                live.append((vaddr, pages, payload))
            rnd.shuffle(live)
            drop = live[:rnd.randint(0, len(live) // 2)]
            del live[:len(drop)]
            if drop:
                if batched:
                    enclave.efree_many([vaddr for vaddr, _, _ in drop])
                else:
                    for vaddr, _, _ in drop:
                        enclave.efree(vaddr)
        readback = [(vaddr, enclave.read(vaddr, len(payload)))
                    for vaddr, _, payload in live]
        quote = enclave.attest(report_data=b"differential")
        sealed = enclave.seal(b"differential secret")

    summary = tee.system.stats_summary()
    return {
        "measurement": enclave.measurement,
        "quote": quote,
        "sealed": sealed,
        "readback": readback,
        "memory": _memory_digest(tee.system),
        "pool": summary["pool"],
        "ems": {key: value for key, value in summary["ems"].items()
                if key not in _EMS_TRANSPORT_KEYS},
        # Comm-shaped numbers, kept so the test can assert they *did*
        # diverge (otherwise the batch path silently didn't engage).
        "comm": {"mailbox": summary["mailbox"],
                 "primitive_cycles": tee.primitive_cycles},
    }


@pytest.mark.parametrize("workload_seed", [11, 23, 47])
def test_batched_equals_scalar_bit_for_bit(workload_seed):
    scalar = _run_workload(batched=False, seed=5, workload_seed=workload_seed)
    batch = _run_workload(batched=True, seed=5, workload_seed=workload_seed)

    # Functional state: bit-identical, attestation signatures included.
    assert batch["measurement"] == scalar["measurement"]
    assert batch["quote"] == scalar["quote"]
    assert batch["sealed"] == scalar["sealed"]
    assert batch["readback"] == scalar["readback"]
    assert batch["memory"] == scalar["memory"]
    assert batch["pool"] == scalar["pool"]
    assert batch["ems"] == scalar["ems"]

    # ... while the transport genuinely took the fast path: fewer
    # doorbells, fewer cycles spent on comm.
    assert batch["comm"]["mailbox"]["batches_sent"] > 0
    assert scalar["comm"]["mailbox"]["batches_sent"] == 0
    assert (batch["comm"]["mailbox"]["requests_sent"]
            < scalar["comm"]["mailbox"]["requests_sent"])
    assert (batch["comm"]["primitive_cycles"]
            < scalar["comm"]["primitive_cycles"])


def test_scalar_path_unchanged_when_batching_unused():
    """Two scalar runs on the same seed agree with themselves (control).

    Guards the differential itself: if the workload driver were
    non-deterministic, the batched-vs-scalar comparison would be
    meaningless.
    """
    first = _run_workload(batched=False, seed=9, workload_seed=3)
    second = _run_workload(batched=False, seed=9, workload_seed=3)
    assert first == second
