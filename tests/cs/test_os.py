"""CS operating system: frames, processes, malloc path, observation logs."""

from __future__ import annotations

import pytest

from repro.common.constants import PAGE_SHIFT, PAGE_SIZE
from repro.cs.os import CSOperatingSystem
from repro.errors import ConfigurationError, HyperTEEError
from repro.hw.memory import PhysicalMemory


@pytest.fixture
def os_(plain_memory: PhysicalMemory) -> CSOperatingSystem:
    return CSOperatingSystem(plain_memory, first_free_frame=8)


def test_rejects_empty_free_list(plain_memory: PhysicalMemory):
    with pytest.raises(ConfigurationError):
        CSOperatingSystem(plain_memory,
                          first_free_frame=plain_memory.num_frames)


def test_alloc_and_release(os_: CSOperatingSystem):
    before = os_.free_frame_count()
    frames = os_.alloc_frames(4, requestor="test")
    assert len(frames) == 4
    assert os_.free_frame_count() == before - 4
    os_.release_frames(frames)
    assert os_.free_frame_count() == before


def test_alloc_logs_events(os_: CSOperatingSystem):
    """The allocation log is the controlled-channel observation surface."""
    os_.alloc_frames(2, requestor="ems-pool")
    event = os_.allocation_log[-1]
    assert event.requestor == "ems-pool" and event.pages == 2


def test_alloc_exhaustion(os_: CSOperatingSystem):
    with pytest.raises(HyperTEEError):
        os_.alloc_frames(os_.free_frame_count() + 1)
    with pytest.raises(ValueError):
        os_.alloc_frames(0)


def test_process_creation(os_: CSOperatingSystem):
    proc = os_.create_process("app")
    assert proc.pid in os_.processes
    assert proc.table.asid == proc.pid


def test_malloc_maps_and_zeroes(os_: CSOperatingSystem):
    proc = os_.create_process("app")
    vaddr, cycles = os_.malloc(proc, 3 * PAGE_SIZE)
    assert cycles > 0
    for offset in range(3):
        pte = proc.table.lookup((vaddr >> PAGE_SHIFT) + offset)
        assert pte is not None
        assert os_.memory.read_raw(pte.ppn << PAGE_SHIFT, 8) == bytes(8)


def test_malloc_cycle_model_scales_with_pages(os_: CSOperatingSystem):
    proc = os_.create_process("app")
    _, small = os_.malloc(proc, PAGE_SIZE)
    _, large = os_.malloc(proc, 64 * PAGE_SIZE)
    assert large > small


def test_free_unmaps_and_recycles(os_: CSOperatingSystem):
    proc = os_.create_process("app")
    vaddr, _ = os_.malloc(proc, 2 * PAGE_SIZE)
    before = os_.free_frame_count()
    cycles = os_.free(proc, vaddr)
    assert cycles > 0
    assert os_.free_frame_count() == before + 2
    assert proc.table.lookup(vaddr >> PAGE_SHIFT) is None


def test_free_unknown_region(os_: CSOperatingSystem):
    proc = os_.create_process("app")
    with pytest.raises(ValueError):
        os_.free(proc, 0xDEAD000)


def test_swap_log(os_: CSOperatingSystem):
    frames = os_.alloc_frames(3)
    os_.record_swap_result("victim-hint", frames)
    assert os_.swap_log[-1].frames == tuple(frames)
