"""Cross-cutting isolation integration tests — the paper's core security
claims exercised end to end on a booted platform."""

from __future__ import annotations

import pytest

from repro.common.constants import PAGE_SHIFT, PAGE_SIZE
from repro.common.types import Permission
from repro.core.api import APIError, HyperTEE
from repro.core.enclave import EnclaveConfig
from repro.errors import BitmapViolation, IsolationViolation


def find_secret_frame(tee: HyperTEE, enclave, vaddr: int) -> int:
    control = tee.system.enclaves.enclaves[enclave.enclave_id]
    return control.page_table.lookup(vaddr >> PAGE_SHIFT).ppn


def test_host_raw_read_sees_ciphertext(tee: HyperTEE):
    """Cold-boot style: enclave data on DRAM is ciphertext."""
    enclave = tee.launch_enclave(b"code")
    with enclave.running():
        vaddr = enclave.ealloc(1)
        enclave.write(vaddr, b"top secret value")
        frame = find_secret_frame(tee, enclave, vaddr)
    raw = tee.system.memory.read_raw(frame << PAGE_SHIFT, 16)
    assert raw != b"top secret value"


def test_host_mapped_read_hits_bitmap(tee: HyperTEE):
    """A hostile OS maps the enclave frame into a host process: the PTW
    bitmap check blocks the access (Fig. 5)."""
    enclave = tee.launch_enclave(b"code")
    with enclave.running():
        vaddr = enclave.ealloc(1)
        enclave.write(vaddr, b"top secret value")
        frame = find_secret_frame(tee, enclave, vaddr)

    process = tee.system.os.create_process("attacker")
    process.table.map(0x500, frame, Permission.RW)
    core = tee.system.primary_core
    core.set_host_context(process.table)
    with pytest.raises(BitmapViolation):
        core.load(0x500 << PAGE_SHIFT, 16)


def test_enclaves_isolated_from_each_other(tee: HyperTEE):
    """Enclave B never observes enclave A's plaintext: distinct KeyIDs
    and page ownership keep frames disjoint."""
    a = tee.launch_enclave(b"code-a", EnclaveConfig(name="a"))
    b = tee.launch_enclave(b"code-b", EnclaveConfig(name="b"))
    with a.running():
        va = a.ealloc(1)
        a.write(va, b"a's secret")
    with b.running():
        vb = b.ealloc(1)
        b.write(vb, b"b's secret")

    ctrl_a = tee.system.enclaves.enclaves[a.enclave_id]
    ctrl_b = tee.system.enclaves.enclaves[b.enclave_id]
    assert ctrl_a.keyid != ctrl_b.keyid
    assert not (set(ctrl_a.frames) & set(ctrl_b.frames))
    frame_a = ctrl_a.page_table.lookup(va >> PAGE_SHIFT).ppn
    # Even reading A's frame under B's key yields garbage.
    assert tee.system.memory.read(
        frame_a << PAGE_SHIFT, 10, ctrl_b.keyid) != b"a's secret"


def test_cs_cannot_touch_ems_private_memory(tee: HyperTEE):
    """Unidirectional isolation through the iHub."""
    process = tee.system.os.create_process("prober")
    ems_frame = tee.system.partition.ems_base >> PAGE_SHIFT
    process.table.map(0x600, ems_frame, Permission.RW)
    core = tee.system.primary_core
    core.set_host_context(process.table)
    with pytest.raises(IsolationViolation):
        core.load(0x600 << PAGE_SHIFT, 8)


def test_host_processes_unaffected_by_enclaves(tee: HyperTEE):
    """Normal host execution continues to work alongside enclaves."""
    process = tee.system.os.create_process("app")
    vaddr, _ = tee.system.os.malloc(process, 2 * PAGE_SIZE)
    core = tee.system.primary_core
    core.set_host_context(process.table)
    core.store(vaddr, b"host business as usual")
    assert core.load(vaddr, 22) == b"host business as usual"

    enclave = tee.launch_enclave(b"code")
    with enclave.running():
        enclave.write(enclave.ealloc(1), b"enclave data")

    core.set_host_context(process.table)
    assert core.load(vaddr, 22) == b"host business as usual"


def test_enclave_cannot_reach_host_pages(tee: HyperTEE):
    """The dedicated table contains only enclave mappings: arbitrary
    host addresses fault inside the enclave."""
    process = tee.system.os.create_process("app")
    host_vaddr, _ = tee.system.os.malloc(process, PAGE_SIZE)
    enclave = tee.launch_enclave(b"code")
    with enclave.running():
        from repro.errors import SanityCheckError

        with pytest.raises((APIError, SanityCheckError)):
            enclave.read(host_vaddr, 4)


def test_destroyed_enclave_frames_recycle_cleanly(tee: HyperTEE):
    """Frames freed by EDESTROY are zeroed before any reuse: a host
    process that later receives them via EWB sees only zeros."""
    enclave = tee.launch_enclave(b"code")
    with enclave.running():
        vaddr = enclave.ealloc(2)
        enclave.write(vaddr, b"residual secret")
    enclave.destroy()

    from repro.common.types import Primitive

    result = tee.invoke_os(Primitive.EWB, {"pages": 8})
    for frame in result.result("frames"):
        assert tee.system.memory.read_raw(
            frame << PAGE_SHIFT, PAGE_SIZE) == bytes(PAGE_SIZE)


def test_shared_region_invisible_to_host(tee: HyperTEE):
    a = tee.launch_enclave(b"code-a", EnclaveConfig(name="a"))
    with a.running():
        region = a.create_shared_region(1)
        va = a.attach(region)
        a.write(va, b"shared secret")
    control = tee.system.shm.regions[region.shm_id]
    raw = tee.system.memory.read_raw(control.base_paddr, 13)
    assert raw != b"shared secret"
