"""Documentation quality gate: every public item carries a docstring.

"Doc comments on every public item" is a stated deliverable; this
meta-test enforces it mechanically across the whole package — modules,
public classes, public functions, and public methods.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro


def _walk_modules():
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


ALL_MODULES = list(_walk_modules())


@pytest.mark.parametrize("module", ALL_MODULES,
                         ids=[m.__name__ for m in ALL_MODULES])
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), module.__name__


def _public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-exports are documented at their home
        if inspect.isclass(obj) or inspect.isfunction(obj):
            yield name, obj


@pytest.mark.parametrize("module", ALL_MODULES,
                         ids=[m.__name__ for m in ALL_MODULES])
def test_public_items_have_docstrings(module):
    undocumented = []
    for name, obj in _public_members(module):
        if not (obj.__doc__ and obj.__doc__.strip()):
            undocumented.append(name)
        if inspect.isclass(obj):
            for method_name, method in vars(obj).items():
                if method_name.startswith("_"):
                    continue
                if not inspect.isfunction(method):
                    continue
                if not (method.__doc__ and method.__doc__.strip()):
                    undocumented.append(f"{name}.{method_name}")
    assert not undocumented, (
        f"{module.__name__}: missing docstrings on {undocumented}")
