"""Wire codecs: roundtrips, strictness, end-to-end use."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.codec import (
    CodecError,
    decode_quote,
    decode_sealed_blob,
    decode_snapshot,
    encode_quote,
    encode_sealed_blob,
    encode_snapshot,
)
from repro.cvm.manager import CVMSnapshot
from repro.ems.attestation import AttestationQuote, Certificate
from repro.ems.sealing import SealedBlob


def test_sealed_blob_roundtrip():
    blob = SealedBlob(nonce=b"n" * 16, ciphertext=b"cipher" * 10,
                      tag=b"t" * 32)
    assert decode_sealed_blob(encode_sealed_blob(blob)) == blob


@given(nonce=st.binary(min_size=0, max_size=32),
       ciphertext=st.binary(min_size=0, max_size=256),
       tag=st.binary(min_size=0, max_size=64))
@settings(max_examples=40, deadline=None)
def test_sealed_blob_roundtrip_property(nonce, ciphertext, tag):
    blob = SealedBlob(nonce=nonce, ciphertext=ciphertext, tag=tag)
    assert decode_sealed_blob(encode_sealed_blob(blob)) == blob


def test_quote_roundtrip():
    quote = AttestationQuote(
        platform=Certificate("platform", b"m" * 32, b"", b"s" * 32),
        enclave=Certificate("enclave", b"e" * 32, b"report", b"g" * 32))
    assert decode_quote(encode_quote(quote)) == quote


def test_snapshot_roundtrip():
    snapshot = CVMSnapshot(snapshot_id=7, name="db-vm",
                           encrypted_pages=(b"a" * 4096, b"b" * 4096),
                           measurement=b"m" * 32)
    assert decode_snapshot(encode_snapshot(snapshot)) == snapshot


def test_wrong_magic_rejected():
    blob = SealedBlob(nonce=b"n", ciphertext=b"c", tag=b"t")
    wire = encode_sealed_blob(blob)
    with pytest.raises(CodecError, match="magic"):
        decode_quote(wire)


def test_truncation_rejected():
    blob = SealedBlob(nonce=b"n" * 16, ciphertext=b"c" * 64, tag=b"t" * 32)
    wire = encode_sealed_blob(blob)
    with pytest.raises(CodecError):
        decode_sealed_blob(wire[:-5])


def test_trailing_garbage_rejected():
    blob = SealedBlob(nonce=b"n", ciphertext=b"c", tag=b"t")
    with pytest.raises(CodecError, match="trailing"):
        decode_sealed_blob(encode_sealed_blob(blob) + b"extra")


def test_end_to_end_seal_persist_unseal(tee):
    """Seal -> encode to 'disk' -> decode -> unseal, across the codec."""
    enclave = tee.launch_enclave(b"persisting enclave")
    with enclave.running():
        wire = encode_sealed_blob(enclave.seal(b"database key"))
    # ... bytes rest on untrusted storage, then come back ...
    with enclave.running():
        assert enclave.unseal(decode_sealed_blob(wire)) == b"database key"


def test_end_to_end_quote_over_the_wire(tee):
    """Quotes survive serialization and still verify at the CA."""
    enclave = tee.launch_enclave(b"attested service")
    with enclave.running():
        wire = encode_quote(enclave.attest(report_data=b"nonce"))
    quote = decode_quote(wire)
    assert tee.system.certificate_authority().verify_quote(
        quote, enclave.measurement)


def test_end_to_end_snapshot_over_the_wire():
    from repro.common.rng import DeterministicRng
    from repro.core.config import SystemConfig
    from repro.core.system import HyperTEESystem
    from repro.cvm.image import VMOwner

    sys_ = HyperTEESystem(SystemConfig(cs_memory_mb=64, ems_memory_mb=4))
    owner = VMOwner("t", DeterministicRng(3).stream("o").randbytes)
    image = owner.build_image("vm", b"vm content " * 500)
    pub = owner.challenge()
    ems_public, cert = sys_.cvm.platform_challenge(pub)
    wrapped = owner.release_key("vm", sys_.certificate_authority(),
                                ems_public, cert)
    cvm_id = sys_.cvm.cvm_create(image, wrapped, pub)
    sys_.cvm.guest_write(cvm_id, 0x100, b"state")

    wire = encode_snapshot(sys_.cvm.snapshot(cvm_id))
    restored = sys_.cvm.restore(decode_snapshot(wire))
    assert sys_.cvm.guest_read(restored, 0x100, 5) == b"state"
