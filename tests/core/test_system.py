"""SoC wiring: boot, partition, bitmap placement, determinism."""

from __future__ import annotations

from repro.core.config import SystemConfig
from repro.core.system import HyperTEESystem


def test_boot_produces_platform_measurement(system: HyperTEESystem):
    assert len(system.boot_report.platform_measurement) == 32
    assert (system.attestation.platform_measurement
            == system.boot_report.platform_measurement)


def test_partition_covers_memory(system: HyperTEESystem):
    part = system.partition
    assert part.cs_size + part.ems_size == system.memory.size_bytes
    assert part.ems_base == part.cs_base + part.cs_size


def test_bitmap_self_protected(system: HyperTEESystem):
    first_bitmap_frame = system.bitmap.base_paddr // 4096
    assert system.bitmap.is_enclave(first_bitmap_frame)


def test_core_count_respected():
    sys_ = HyperTEESystem(SystemConfig(cs_memory_mb=48, ems_memory_mb=4,
                                       cs_cores=4))
    assert len(sys_.cores) == 4
    assert sys_.primary_core is sys_.cores[0]


def test_efuse_locked_after_manufacturing(system: HyperTEESystem):
    import pytest

    from repro.errors import HardwareFault

    with pytest.raises(HardwareFault):
        system.efuse.burn("extra", b"x")


def test_same_seed_same_roots():
    a = HyperTEESystem(SystemConfig(cs_memory_mb=48, ems_memory_mb=4, seed=5))
    b = HyperTEESystem(SystemConfig(cs_memory_mb=48, ems_memory_mb=4, seed=5))
    assert a.efuse.read("SK") == b.efuse.read("SK")


def test_different_seed_different_roots():
    a = HyperTEESystem(SystemConfig(cs_memory_mb=48, ems_memory_mb=4, seed=5))
    b = HyperTEESystem(SystemConfig(cs_memory_mb=48, ems_memory_mb=4, seed=6))
    assert a.efuse.read("SK") != b.efuse.read("SK")


def test_bitmap_checking_toggle():
    off = HyperTEESystem(SystemConfig(cs_memory_mb=48, ems_memory_mb=4,
                                      bitmap_checking=False))
    assert off.primary_core.ptw.bitmap_reader is None
    on = HyperTEESystem(SystemConfig(cs_memory_mb=48, ems_memory_mb=4))
    assert on.primary_core.ptw.bitmap_reader is not None


def test_crypto_profile_selection():
    sw = HyperTEESystem(SystemConfig(cs_memory_mb=48, ems_memory_mb=4,
                                     crypto="software"))
    assert sw.crypto.profile.name == "software"
