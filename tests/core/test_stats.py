"""Platform statistics: per-core EMS accounting and the summary view."""

from __future__ import annotations

import pytest

from repro.common.packets import PrimitiveRequest
from repro.common.types import Primitive, Privilege
from repro.core.api import HyperTEE
from repro.core.config import SystemConfig
from repro.core.enclave import EnclaveConfig
from repro.core.system import HyperTEESystem


def test_per_core_accounting_spreads_work():
    sys_ = HyperTEESystem(SystemConfig(cs_memory_mb=64, ems_memory_mb=4,
                                       ems_cores=2))
    for i in range(8):
        sys_.mailbox.push_request(PrimitiveRequest(
            500 + i, Primitive.ECREATE, None, Privilege.SUPERVISOR,
            {"config": EnclaveConfig(name=f"e{i}")}))
    sys_.ems.pump()
    cycles = sys_.ems.stats.per_core_cycles
    assert len(cycles) == 2
    assert all(c > 0 for c in cycles)
    utilization = sys_.ems.stats.utilization()
    assert sum(utilization) == pytest.approx(1.0)
    # Round-robin keeps the split roughly balanced.
    assert 0.3 < utilization[0] < 0.7


def test_utilization_of_idle_runtime():
    sys_ = HyperTEESystem(SystemConfig(cs_memory_mb=48, ems_memory_mb=4,
                                       ems_cores=2))
    assert sys_.ems.stats.utilization() == [0.0, 0.0]


def test_stats_summary_structure():
    tee = HyperTEE(SystemConfig(cs_memory_mb=48, ems_memory_mb=4,
                                cs_cores=2))
    enclave = tee.launch_enclave(b"code")
    with enclave.running():
        enclave.write(enclave.ealloc(1), b"x")

    summary = tee.system.stats_summary()
    assert set(summary) == {"ems", "mailbox", "fabric", "pool", "emcall",
                            "tlb", "interrupts"}
    assert summary["ems"]["served"] >= 6           # lifecycle + alloc
    assert summary["mailbox"]["requests_sent"] >= 6
    assert summary["pool"]["takes"] > 0
    assert "core0" in summary["tlb"] and "core1" in summary["tlb"]
