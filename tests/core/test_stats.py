"""Platform statistics: per-core EMS accounting and the summary view."""

from __future__ import annotations

import pytest

from repro.common.packets import PrimitiveRequest
from repro.common.types import Primitive, Privilege
from repro.core.api import HyperTEE
from repro.core.config import SystemConfig
from repro.core.enclave import EnclaveConfig
from repro.core.system import HyperTEESystem


def test_per_core_accounting_spreads_work():
    sys_ = HyperTEESystem(SystemConfig(cs_memory_mb=64, ems_memory_mb=4,
                                       ems_cores=2))
    for i in range(8):
        sys_.mailbox.push_request(PrimitiveRequest(
            500 + i, Primitive.ECREATE, None, Privilege.SUPERVISOR,
            {"config": EnclaveConfig(name=f"e{i}")}))
    sys_.ems.pump()
    cycles = sys_.ems.stats.per_core_cycles
    assert len(cycles) == 2
    assert all(c > 0 for c in cycles)
    utilization = sys_.ems.stats.utilization()
    assert sum(utilization) == pytest.approx(1.0)
    # Round-robin keeps the split roughly balanced.
    assert 0.3 < utilization[0] < 0.7


def test_utilization_of_idle_runtime():
    sys_ = HyperTEESystem(SystemConfig(cs_memory_mb=48, ems_memory_mb=4,
                                       ems_cores=2))
    assert sys_.ems.stats.utilization() == [0.0, 0.0]


def test_stats_summary_structure():
    tee = HyperTEE(SystemConfig(cs_memory_mb=48, ems_memory_mb=4,
                                cs_cores=2))
    enclave = tee.launch_enclave(b"code")
    with enclave.running():
        enclave.write(enclave.ealloc(1), b"x")

    summary = tee.system.stats_summary()
    assert set(summary) == {"ems", "mailbox", "fabric", "pool", "emcall",
                            "tlb", "interrupts", "faults"}
    assert summary["ems"]["served"] >= 6           # lifecycle + alloc
    assert summary["mailbox"]["requests_sent"] >= 6
    assert summary["pool"]["takes"] > 0
    assert "core0" in summary["tlb"] and "core1" in summary["tlb"]


def _exercised_tee() -> HyperTEE:
    tee = HyperTEE(SystemConfig(cs_memory_mb=48, ems_memory_mb=4,
                                cs_cores=2))
    enclave = tee.launch_enclave(b"stats coverage")
    with enclave.running():
        vaddr = enclave.ealloc(2)
        enclave.write(vaddr, b"x")
        enclave.efree(vaddr)
    tee.invoke_os(Primitive.EWB, {"pages": 1})
    enclave.destroy()
    return tee


def _numeric_leaves(tree: dict) -> list[tuple[str, float]]:
    out = []
    for key, value in tree.items():
        if isinstance(value, dict):
            out.extend((f"{key}.{inner}", v)
                       for inner, v in _numeric_leaves(value))
        elif isinstance(value, (int, float)):
            out.append((key, value))
    return out


def test_stats_summary_counters_non_negative():
    summary = _exercised_tee().system.stats_summary()
    leaves = _numeric_leaves(summary)
    assert leaves
    for name, value in leaves:
        assert value >= 0, name


def test_stats_summary_matches_legacy_dataclasses():
    """The registry federates the live *Stats; it must not fork them."""
    tee = _exercised_tee()
    sys_ = tee.system
    summary = sys_.stats_summary()
    assert summary["mailbox"]["requests_sent"] == sys_.mailbox.stats.requests_sent
    assert summary["mailbox"]["response_rejects"] == \
        sys_.mailbox.stats.response_rejects
    assert summary["ems"]["served"] == sys_.ems.stats.served
    assert summary["pool"]["takes"] == sys_.pool.stats.takes
    assert summary["emcall"]["bitmap_flushes"] == \
        sys_.emcall.bitmap_flush_count
    # A later snapshot reflects new traffic without re-registration.
    before = summary["mailbox"]["requests_sent"]
    enclave = tee.launch_enclave(b"second wave")
    enclave.destroy()
    assert sys_.stats_summary()["mailbox"]["requests_sent"] > before


def test_stats_summary_sources_match_schema():
    sys_ = HyperTEESystem(SystemConfig(cs_memory_mb=48, ems_memory_mb=4))
    assert set(sys_.obs.metrics.source_names()) == set(sys_.stats_summary())
