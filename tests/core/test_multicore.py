"""Multi-core operation: concurrent enclaves on distinct CS cores."""

from __future__ import annotations

import pytest

from repro.common.constants import PAGE_SIZE
from repro.common.types import Permission
from repro.core.api import HyperTEE
from repro.core.config import SystemConfig
from repro.core.enclave import EnclaveConfig


@pytest.fixture
def tee() -> HyperTEE:
    return HyperTEE(SystemConfig(cs_memory_mb=64, ems_memory_mb=4,
                                 cs_cores=4))


def test_enclaves_run_concurrently_on_distinct_cores(tee: HyperTEE):
    sys_ = tee.system
    a = tee.launch_enclave(b"core0 enclave", EnclaveConfig(name="a"),
                           core=sys_.cores[0])
    b = tee.launch_enclave(b"core1 enclave", EnclaveConfig(name="b"),
                           core=sys_.cores[1])
    a.enter()
    b.enter()  # both entered at the same time, on different cores
    assert sys_.cores[0].current_enclave_id == a.enclave_id
    assert sys_.cores[1].current_enclave_id == b.enclave_id

    va = a.ealloc(1)
    vb = b.ealloc(1)
    a.write(va, b"core0 secret")
    b.write(vb, b"core1 secret")
    assert a.read(va, 12) == b"core0 secret"
    assert b.read(vb, 12) == b"core1 secret"
    a.exit()
    b.exit()


def test_same_vaddr_isolated_across_cores(tee: HyperTEE):
    """Both enclaves use the same heap vaddr; per-core contexts and
    per-enclave tables keep the data apart."""
    sys_ = tee.system
    a = tee.launch_enclave(b"alpha", EnclaveConfig(name="a"),
                           core=sys_.cores[0])
    b = tee.launch_enclave(b"beta", EnclaveConfig(name="b"),
                           core=sys_.cores[1])
    a.enter()
    b.enter()
    va, vb = a.ealloc(1), b.ealloc(1)
    assert va == vb  # same virtual address in both address spaces
    a.write(va, b"AAAA")
    b.write(vb, b"BBBB")
    assert a.read(va, 4) == b"AAAA"
    assert b.read(vb, 4) == b"BBBB"
    a.exit()
    b.exit()


def test_bitmap_shootdown_reaches_all_cores(tee: HyperTEE):
    """A bitmap change flushes matching TLB entries on *every* core."""
    sys_ = tee.system
    # Warm a translation for the same frame on two cores' host contexts.
    process = sys_.os.create_process("shared")
    vaddr, _ = sys_.os.malloc(process, PAGE_SIZE)
    for core in sys_.cores[:2]:
        core.set_host_context(process.table)
        core.load(vaddr, 4)
        assert core.tlb.entry_count() >= 1

    frame = process.table.lookup(vaddr >> 12).ppn
    sys_.emcall.flush_tlbs_for_bitmap_change([frame])
    for core in sys_.cores[:2]:
        assert all(e.ppn != frame
                   for bucket in core.tlb._sets for e in bucket)


def test_shared_region_across_cores(tee: HyperTEE):
    sys_ = tee.system
    sender = tee.launch_enclave(b"sender", EnclaveConfig(name="s"),
                                core=sys_.cores[0])
    receiver = tee.launch_enclave(b"receiver", EnclaveConfig(name="r"),
                                  core=sys_.cores[2])
    sender.enter()
    receiver.enter()
    region = sender.create_shared_region(1, Permission.RW)
    sender.share_with(region, receiver, Permission.RW)
    va = sender.attach(region)
    sender.write(va, b"cross-core message")
    vb = receiver.attach(region)
    assert receiver.read(vb, 18) == b"cross-core message"
    sender.exit()
    receiver.exit()


def test_host_work_continues_on_other_cores(tee: HyperTEE):
    sys_ = tee.system
    enclave = tee.launch_enclave(b"busy", EnclaveConfig(name="busy"),
                                 core=sys_.cores[0])
    enclave.enter()
    process = sys_.os.create_process("host")
    vaddr, _ = sys_.os.malloc(process, PAGE_SIZE)
    core3 = sys_.cores[3]
    core3.set_host_context(process.table)
    core3.store(vaddr, b"host on core 3")
    assert core3.load(vaddr, 14) == b"host on core 3"
    enclave.exit()
