"""System and enclave configuration validation."""

from __future__ import annotations

import pytest

from repro.core.config import SystemConfig
from repro.core.enclave import EnclaveConfig
from repro.errors import ConfigurationError


def test_default_system_config_valid():
    config = SystemConfig()
    assert config.ems_core == "medium"
    assert config.crypto == "engine"


def test_invalid_memory():
    with pytest.raises(ConfigurationError):
        SystemConfig(cs_memory_mb=1)
    with pytest.raises(ConfigurationError):
        SystemConfig(ems_memory_mb=0)


def test_invalid_cores():
    with pytest.raises(ConfigurationError):
        SystemConfig(cs_cores=0)
    with pytest.raises(ConfigurationError):
        SystemConfig(ems_cores=0)


def test_invalid_ems_core_name():
    with pytest.raises(ConfigurationError):
        SystemConfig(ems_core="mega")


def test_invalid_crypto():
    with pytest.raises(ConfigurationError):
        SystemConfig(crypto="quantum")


def test_enclave_config_defaults():
    config = EnclaveConfig()
    assert config.static_pages == config.code_pages + config.stack_pages


def test_enclave_config_validation():
    with pytest.raises(ConfigurationError):
        EnclaveConfig(code_pages=0)
    with pytest.raises(ConfigurationError):
        EnclaveConfig(stack_pages=0)
    with pytest.raises(ConfigurationError):
        EnclaveConfig(heap_pages_max=-1)
