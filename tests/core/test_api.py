"""The public API facade: launch, run, memory, shm, attest, seal."""

from __future__ import annotations

import pytest

from repro.common.constants import PAGE_SIZE
from repro.common.types import Permission
from repro.core.api import APIError, HyperTEE, local_attest
from repro.core.enclave import EnclaveConfig


def test_launch_measures(tee: HyperTEE):
    enclave = tee.launch_enclave(b"code bytes")
    assert len(enclave.measurement) == 32


def test_multi_page_code_splits(tee: HyperTEE):
    code = b"x" * (2 * PAGE_SIZE + 100)
    enclave = tee.launch_enclave(code)
    assert enclave.config.code_pages == 3


def test_measurement_deterministic_per_code(tee: HyperTEE):
    a = tee.launch_enclave(b"same code", EnclaveConfig(name="a", code_pages=1))
    b = tee.launch_enclave(b"same code", EnclaveConfig(name="b", code_pages=1))
    assert a.measurement == b.measurement
    c = tee.launch_enclave(b"diff code", EnclaveConfig(name="c", code_pages=1))
    assert c.measurement != a.measurement


def test_memory_requires_entered(tee: HyperTEE):
    enclave = tee.launch_enclave(b"code")
    with pytest.raises(APIError):
        enclave.ealloc(1)
    with pytest.raises(APIError):
        enclave.read(0x100000, 4)


def test_running_context_manager(tee: HyperTEE):
    enclave = tee.launch_enclave(b"code")
    with enclave.running():
        assert enclave.core.in_enclave
    assert not enclave.core.in_enclave


def test_alloc_write_read(tee: HyperTEE):
    enclave = tee.launch_enclave(b"code")
    with enclave.running():
        vaddr = enclave.ealloc(2)
        enclave.write(vaddr + 100, b"deep secret")
        assert enclave.read(vaddr + 100, 11) == b"deep secret"
        enclave.efree(vaddr)


def test_demand_fault_transparent(tee: HyperTEE):
    """A write past the eager allocation demand-faults through EMCall."""
    enclave = tee.launch_enclave(b"code")
    with enclave.running():
        vaddr = enclave.ealloc(1)
        target = vaddr + 5 * PAGE_SIZE
        enclave.write(target, b"faulted in")
        assert enclave.read(target, 10) == b"faulted in"


def test_enter_exit_resume_cycle(tee: HyperTEE):
    enclave = tee.launch_enclave(b"code")
    enclave.enter()
    vaddr = enclave.ealloc(1)
    enclave.write(vaddr, b"persist")
    enclave.exit()
    enclave.resume()
    assert enclave.read(vaddr, 7) == b"persist"
    enclave.exit()


def test_data_survives_destroyed_context_not(tee: HyperTEE):
    enclave = tee.launch_enclave(b"code")
    with enclave.running():
        vaddr = enclave.ealloc(1)
        enclave.write(vaddr, b"gone soon")
    enclave.destroy()
    with pytest.raises(APIError):
        enclave.enter()


def test_shared_region_flow(tee: HyperTEE):
    sender = tee.launch_enclave(b"sender", EnclaveConfig(name="s"))
    receiver = tee.launch_enclave(b"receiver", EnclaveConfig(name="r"))
    with sender.running():
        region = sender.create_shared_region(2)
        sender.share_with(region, receiver, Permission.RW)
        va = sender.attach(region)
        sender.write(va, b"broadcast!")
    with receiver.running():
        vb = receiver.attach(region)
        assert receiver.read(vb, 10) == b"broadcast!"
        receiver.write(vb, b"answered!!")
        receiver.detach(region)
    with sender.running():
        assert sender.read(va, 10) == b"answered!!"
        sender.detach(region)
        sender.destroy_region(region)


def test_readonly_receiver_cannot_write(tee: HyperTEE):
    sender = tee.launch_enclave(b"sender", EnclaveConfig(name="s"))
    receiver = tee.launch_enclave(b"receiver", EnclaveConfig(name="r"))
    with sender.running():
        region = sender.create_shared_region(1, Permission.RW)
        sender.share_with(region, receiver, Permission.READ)
    with receiver.running():
        vb = receiver.attach(region)
        receiver.read(vb, 4)
        from repro.errors import AccessPermissionError

        with pytest.raises(AccessPermissionError):
            receiver.write(vb, b"tamper")


def test_seal_unseal(tee: HyperTEE):
    enclave = tee.launch_enclave(b"code")
    with enclave.running():
        blob = enclave.seal(b"disk data")
        assert enclave.unseal(blob) == b"disk data"


def test_seal_bound_to_identity(tee: HyperTEE):
    a = tee.launch_enclave(b"code-a", EnclaveConfig(name="a", code_pages=1))
    b = tee.launch_enclave(b"code-b", EnclaveConfig(name="b", code_pages=1))
    with a.running():
        blob = a.seal(b"for a only")
    from repro.errors import SealingError

    with b.running():
        with pytest.raises(SealingError):
            b.unseal(blob)


def test_local_attest_via_api(tee: HyperTEE):
    challenger = tee.launch_enclave(b"challenger")
    verifier = tee.launch_enclave(b"verifier")
    assert local_attest(challenger, verifier) == verifier.measurement


def test_primitive_cycles_accumulate(tee: HyperTEE):
    before = tee.primitive_cycles
    tee.launch_enclave(b"code")
    assert tee.primitive_cycles > before
