"""Differential matrix: the fast kernel is bit-identical to the reference.

``engine="fast"`` (repro.core.fastkernel) is *pinned* to the reference
interpreter, not merely close to it: for every (platform seed, workload
seed) cell in the grid, a randomized mixed workload must produce the
same whole-memory SHA-256, the same measurements and attestation
signatures, the same sealed bytes, the same live per-primitive cycle
rows (the Table-IV-style surface), the same pool/EMS/mailbox counters,
and the same federated metrics snapshot — with observability off *and*
on (the probes must also be non-interfering on the fast path).

A small grid runs in tier 1; the full grid is marked ``slow`` and runs
in the CI kernel job. Error paths (privilege, batch-size, unbatchable)
are differential too: same exception type, same message.
"""

from __future__ import annotations

import hashlib
import random

import pytest

from repro.common.types import Permission, Primitive
from repro.core.api import APIError, HyperTEE
from repro.core.config import SystemConfig
from repro.core.enclave import EnclaveConfig
from repro.errors import EMCallError

#: The platform-seed x workload-seed grid. Tier 1 runs the first cell
#: per axis; the slow sweep runs the cross product.
PLATFORM_SEEDS = (5, 0x1EE7)
WORKLOAD_SEEDS = (11, 23, 47)


def _memory_digest(system) -> str:
    memory = system.memory
    digest = hashlib.sha256()
    step = 1 << 20
    for offset in range(0, memory.size_bytes, step):
        digest.update(memory.read_raw(
            offset, min(step, memory.size_bytes - offset)))
    return digest.hexdigest()


def _run_workload(engine: str, seed: int, workload_seed: int,
                  observability: bool) -> dict:
    """One randomized mixed workload; returns every pinned surface."""
    tee = HyperTEE(SystemConfig(seed=seed, engine=engine))
    if observability:
        tee.system.enable_observability()
    rnd = random.Random(workload_seed)
    enclave = tee.launch_enclave(
        b"kernel differential enclave " * 24,
        EnclaveConfig(name="kdiff", heap_pages_max=2048))
    regions: list[tuple[int, int]] = []
    with enclave.running():
        for _ in range(25):
            if regions and rnd.random() < 0.4:
                vaddr, _pages = regions.pop(rnd.randrange(len(regions)))
                enclave.efree(vaddr)
            else:
                pages = rnd.randint(1, 6)
                vaddr = enclave.ealloc(pages)
                enclave.write(vaddr, rnd.randbytes(rnd.randint(1, 4096)))
                regions.append((vaddr, pages))
        vaddrs = enclave.ealloc_many([2] * 8)
        enclave.write(vaddrs[0], b"batched payload")
        readback = enclave.read(vaddrs[0], 15)
        enclave.efree_many(vaddrs)
        quote = enclave.attest(report_data=b"kernel differential")
        sealed = enclave.seal(b"kernel differential secret")
        unsealed = enclave.unseal(sealed)
        region = enclave.create_shared_region(2, Permission.RW)
        share_va = enclave.attach(region)
        enclave.write(share_va, b"shared bytes")
        enclave.detach(region)
        enclave.destroy_region(region)
    tee.invoke_os(Primitive.EWB, {"pages": 2})
    enclave.destroy()
    out = {
        "memory": _memory_digest(tee.system),
        "measurement": enclave.measurement,
        "quote": quote,
        "sealed": sealed,
        "unsealed": unsealed,
        "readback": readback,
        "primitive_cycles": tee.primitive_cycles,
        "stats": tee.system.stats_summary(),
    }
    if observability:
        # The live per-primitive cycle surface (Table-IV-style rows) and
        # the full federated registry, both engine-tagged by nothing:
        # they must be indistinguishable.
        out["latency_rows"] = tee.system.obs.primitive_latency_table()
        out["slo"] = tee.system.obs.slo.report()
    return out


def _assert_identical(reference: dict, fast: dict) -> None:
    for key in reference:
        assert fast[key] == reference[key], f"fast kernel diverged on {key}"


@pytest.mark.parametrize("workload_seed", WORKLOAD_SEEDS[:2])
def test_fast_equals_reference_tier1(workload_seed):
    reference = _run_workload("reference", PLATFORM_SEEDS[0], workload_seed,
                              observability=False)
    fast = _run_workload("fast", PLATFORM_SEEDS[0], workload_seed,
                         observability=False)
    _assert_identical(reference, fast)


def test_fast_equals_reference_with_observability():
    reference = _run_workload("reference", PLATFORM_SEEDS[0],
                              WORKLOAD_SEEDS[0], observability=True)
    fast = _run_workload("fast", PLATFORM_SEEDS[0], WORKLOAD_SEEDS[0],
                         observability=True)
    _assert_identical(reference, fast)


def test_fast_observability_noninterference():
    """Probes on the fast path change nothing the model can see."""
    bare = _run_workload("fast", PLATFORM_SEEDS[0], WORKLOAD_SEEDS[1],
                         observability=False)
    observed = _run_workload("fast", PLATFORM_SEEDS[0], WORKLOAD_SEEDS[1],
                             observability=True)
    for key in ("memory", "measurement", "quote", "sealed",
                "primitive_cycles"):
        assert observed[key] == bare[key]


def test_fast_run_is_self_deterministic():
    """Control: the fast engine agrees with itself (guards the matrix)."""
    first = _run_workload("fast", PLATFORM_SEEDS[0], WORKLOAD_SEEDS[0],
                          observability=False)
    second = _run_workload("fast", PLATFORM_SEEDS[0], WORKLOAD_SEEDS[0],
                           observability=False)
    assert first == second


@pytest.mark.slow
@pytest.mark.parametrize("seed", PLATFORM_SEEDS)
@pytest.mark.parametrize("workload_seed", WORKLOAD_SEEDS)
@pytest.mark.parametrize("observability", (False, True))
def test_fast_equals_reference_full_grid(seed, workload_seed, observability):
    reference = _run_workload("reference", seed, workload_seed, observability)
    fast = _run_workload("fast", seed, workload_seed, observability)
    _assert_identical(reference, fast)


# -- error-path parity ---------------------------------------------------------


def _pair(**config):
    return (HyperTEE(SystemConfig(engine="reference", **config)),
            HyperTEE(SystemConfig(engine="fast", **config)))


def _error_of(exc_type, fn):
    with pytest.raises(exc_type) as excinfo:
        fn()
    return str(excinfo.value)


def test_privilege_error_parity():
    reference, fast = _pair(seed=7)
    errors = [
        _error_of(EMCallError,
                  lambda tee=tee: tee.invoke_user(Primitive.ECREATE, {}))
        for tee in (reference, fast)
    ]
    assert errors[0] == errors[1]


def test_batch_size_error_parity():
    from repro.eval.calibration import EMCALL_BATCH_MAX

    reference, fast = _pair(seed=7)
    calls = [(Primitive.EALLOC, {"pages": 1})] * (EMCALL_BATCH_MAX + 1)
    errors = [
        _error_of(EMCallError, lambda tee=tee: tee.invoke_os_batch(calls))
        for tee in (reference, fast)
    ]
    assert errors[0] == errors[1]


def test_unbatchable_error_parity():
    reference, fast = _pair(seed=7)
    calls = [(Primitive.EENTER, {"enclave_id": 1})]
    errors = [
        _error_of(EMCallError, lambda tee=tee: tee.invoke_os_batch(calls))
        for tee in (reference, fast)
    ]
    assert errors[0] == errors[1]


def test_failed_primitive_parity():
    """A failing EMCall (bad handle) degrades identically on both engines."""
    reference, fast = _pair(seed=7)
    errors = [
        _error_of(APIError,
                  lambda tee=tee: tee.invoke_os(Primitive.EDESTROY,
                                                {"enclave_id": 999}))
        for tee in (reference, fast)
    ]
    assert errors[0] == errors[1]
