"""Property layer for the fast kernel (hypothesis).

Three families, matching the three things the fast kernel precomputes:

* **cost-table compilation round-trip** — every entry of the compiled
  :class:`~repro.eval.costtable.CostTable` equals the scalar arithmetic
  the reference interpreter performs over ``eval/calibration.py``
  constants, for arbitrary pages/batch-size/service inputs (including
  the float64 truncation corners the exactness notes call out);
* **cycle-charge conservation** — the vectorized per-core scatter
  (`np.add.at` over round-robin core indices) charges exactly what the
  reference's scalar loop charges, core by core, for any batch; and the
  total charge is invariant under any permutation of the events;
* **slot/pool invariants** — the memory pool never double-grants a
  frame, only ever takes back frames it granted, and reuses frames in
  stable FIFO order; the frame-slot caches return bit-identical bytes
  to the reference crypto for arbitrary keys/contents, keep a stable
  slot per frame, and survive the zero/data content alternation their
  two ways exist for.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.constants import CACHE_LINE_SIZE, MAC_BITS, PAGE_SIZE
from repro.common.rng import DeterministicRng
from repro.common.types import Primitive
from repro.core.fastkernel import FrameSlotCache, xor_page
from repro.crypto.cipher import KeystreamCipher
from repro.crypto.hashes import truncated_mac
from repro.eval import calibration
from repro.eval.costtable import PRIMITIVE_INDEX, compile_cost_table
from repro.hw.core import EMS_CONFIGS
from repro.hw.memory import PhysicalMemory

# -- cost-table compilation round-trip -----------------------------------------


def _reference_instructions(primitive: Primitive, pages: int) -> int:
    """The scalar arithmetic the EMS handlers perform, re-derived."""
    if primitive is Primitive.EALLOC:
        return (calibration.EALLOC_BASE_INSTR
                + pages * calibration.EALLOC_PER_PAGE_INSTR)
    base = calibration.PRIMITIVE_BASE_INSTR.get(primitive.value, 0)
    per_page_key = {Primitive.EADD: "EADD_PER_PAGE",
                    Primitive.EFREE: "EFREE_PER_PAGE",
                    Primitive.EWB: "EWB_PER_PAGE"}.get(primitive)
    if per_page_key is not None:
        base += pages * calibration.PRIMITIVE_BASE_INSTR[per_page_key]
    return base


@given(primitive=st.sampled_from(list(Primitive)),
       pages=st.integers(min_value=0, max_value=4096))
def test_costtable_instructions_roundtrip(primitive, pages):
    table = compile_cost_table()
    assert table.instructions(primitive, pages) == \
        _reference_instructions(primitive, pages)


@given(choices=st.lists(
    st.tuples(st.sampled_from(list(Primitive)),
              st.integers(min_value=0, max_value=512)),
    min_size=1, max_size=32))
def test_costtable_vectorized_matches_scalar(choices):
    table = compile_cost_table()
    indices = np.array([PRIMITIVE_INDEX[p] for p, _ in choices],
                       dtype=np.int64)
    pages = np.array([n for _, n in choices], dtype=np.int64)
    vec = table.instructions_vec(indices, pages)
    assert vec.tolist() == [table.instructions(p, n) for p, n in choices]


@given(instructions=st.lists(st.integers(min_value=0, max_value=10_000_000),
                             min_size=1, max_size=64),
       core=st.sampled_from(sorted(EMS_CONFIGS)))
def test_costtable_service_cycles_exact(instructions, core):
    """numpy divide-truncate == int(instr / ipc), element for element."""
    table = compile_cost_table()
    config = EMS_CONFIGS[core]
    vec = table.service_cycles_vec(np.array(instructions, dtype=np.int64),
                                  config.sustained_ipc)
    assert vec.tolist() == [config.cycles_for_instructions(i)
                            for i in instructions]


@given(n=st.integers(min_value=1, max_value=calibration.EMCALL_BATCH_MAX),
       service=st.integers(min_value=0, max_value=1 << 40),
       jitter=st.integers(min_value=0,
                          max_value=calibration.EMCALL_POLL_JITTER_CYCLES),
       extra=st.integers(min_value=0, max_value=100_000))
def test_costtable_cs_cycle_formulas(n, service, jitter, extra):
    """Dispatch/transfer tables reproduce the EMCall gate's arithmetic."""
    from repro.common.constants import CS_CORE_FREQ_HZ, EMS_CORE_FREQ_HZ

    table = compile_cost_table()
    dispatch = (calibration.EMCALL_DISPATCH_CYCLES
                + (n - 1) * calibration.EMCALL_BATCH_PER_REQ_CYCLES)
    transfer = (calibration.MAILBOX_TRANSFER_CYCLES
                + (n - 1) * calibration.MAILBOX_BATCH_PER_REQ_CYCLES)
    ratio = CS_CORE_FREQ_HZ / EMS_CORE_FREQ_HZ
    expected = dispatch + 2 * transfer + int(service * ratio) + jitter + extra
    assert table.batch_cs_cycles(n, service, jitter, extra) == expected
    if n == 1:
        assert table.scalar_cs_cycles(service, jitter, extra) == expected


@given(total=st.integers(min_value=0, max_value=1 << 40),
       n=st.integers(min_value=1, max_value=calibration.EMCALL_BATCH_MAX))
def test_costtable_shares_conserve_total(total, n):
    shares = compile_cost_table().per_request_shares(total, n)
    assert int(shares.sum()) == total
    share, remainder = divmod(total, n)
    assert shares.tolist() == [share + 1] * remainder + \
        [share] * (n - remainder)


# -- cycle-charge conservation -------------------------------------------------


@given(service=st.lists(st.integers(min_value=0, max_value=1 << 30),
                        min_size=1, max_size=64),
       num_cores=st.integers(min_value=1, max_value=8),
       start=st.integers(min_value=0, max_value=7))
def test_percore_scatter_matches_scalar_loop(service, num_cores, start):
    """The numpy round-robin scatter == the reference per-event loop."""
    start %= num_cores
    scalar = [0] * num_cores
    core = start
    for cycles in service:
        scalar[core] += cycles
        core = (core + 1) % num_cores

    array = np.array(service, dtype=np.int64)
    shares = np.zeros(num_cores, dtype=np.int64)
    np.add.at(shares, (start + np.arange(len(service))) % num_cores, array)
    assert shares.tolist() == scalar
    assert core == (start + len(service)) % num_cores


@given(service=st.lists(st.integers(min_value=0, max_value=1 << 30),
                        min_size=1, max_size=64),
       seed=st.integers(min_value=0, max_value=1 << 16))
def test_total_charge_invariant_under_permutation(service, seed):
    """Batched totals don't depend on event order (sum conservation)."""
    import random

    permuted = service[:]
    random.Random(seed).shuffle(permuted)
    assert int(np.array(permuted, dtype=np.int64).sum()) == sum(service)


# -- slot/pool invariants ------------------------------------------------------


class _SequentialOS:
    """Minimal FrameSource: hands out fresh ascending frame numbers."""

    def __init__(self):
        self.next_frame = 0

    def alloc_frames(self, count, requestor=""):
        frames = list(range(self.next_frame, self.next_frame + count))
        self.next_frame += count
        return frames

    def free_frames(self, frames, requestor=""):
        pass


@settings(max_examples=40, deadline=None)
@given(ops=st.lists(st.tuples(st.booleans(),
                              st.integers(min_value=1, max_value=8)),
                    min_size=1, max_size=60),
       seed=st.integers(min_value=0, max_value=1 << 16))
def test_pool_grant_invariants(ops, seed):
    """No double-grant; freed subset of allocated; FIFO reuse order."""
    from repro.ems.memory_pool import EnclaveMemoryPool

    memory = PhysicalMemory(4 * 1024 * 1024)
    pool = EnclaveMemoryPool(_SequentialOS(), memory,
                             DeterministicRng(seed), initial_pages=64)
    outstanding: set[int] = set()
    returned_order: list[int] = []
    for is_take, pages in ops:
        if is_take:
            if pool.free_count < pages:
                continue
            frames = pool.take(pages)
            assert len(frames) == pages
            assert not outstanding & set(frames), "double-granted frame"
            # Stable FIFO reuse: among the frames we returned, recycling
            # happens in return order (fresh/initial frames may
            # interleave — they entered the queue at other times — but
            # never reorder the returned ones relative to each other).
            recycled = [f for f in frames if f in set(returned_order)]
            assert recycled == returned_order[:len(recycled)], \
                "recycled frames out of FIFO order"
            del returned_order[:len(recycled)]
            outstanding |= set(frames)
        elif outstanding:
            give = sorted(outstanding)[:pages]
            assert set(give) <= outstanding, "freed frame never granted"
            pool.give_back(give)
            outstanding -= set(give)
            returned_order.extend(give)
    assert pool.used_count == len(outstanding)


@given(key=st.binary(min_size=32, max_size=32),
       frame=st.integers(min_value=0, max_value=15))
def test_slot_stream_matches_reference(key, frame):
    """A slot-served stream is the reference keystream, bit for bit."""
    cache = FrameSlotCache(16)
    cipher = KeystreamCipher(key)
    stream = cache.page_stream(frame, cipher)
    assert stream == cipher.keystream(frame * PAGE_SIZE, PAGE_SIZE)
    # Stable slot: the same (frame, key) serves the identical object,
    # counted as a hit, never a refill.
    fills = cache.stream_fills
    assert cache.page_stream(frame, cipher) is stream
    assert cache.stream_fills == fills


@given(key=st.binary(min_size=32, max_size=32),
       raw_seed=st.binary(min_size=1, max_size=64),
       other_seed=st.binary(min_size=1, max_size=64))
@settings(max_examples=25, deadline=None)
def test_slot_macs_match_reference_and_survive_alternation(
        key, raw_seed, other_seed):
    raw = (raw_seed * (PAGE_SIZE // len(raw_seed) + 1))[:PAGE_SIZE]
    other = (other_seed * (PAGE_SIZE // len(other_seed) + 1))[:PAGE_SIZE]
    cache = FrameSlotCache(4)
    expected = [truncated_mac(key, raw[off:off + CACHE_LINE_SIZE], MAC_BITS)
                for off in range(0, PAGE_SIZE, CACHE_LINE_SIZE)]
    assert cache.page_macs(2, key, raw) == expected
    # The two ways absorb the zero/data alternation without refills.
    cache.page_macs(2, key, other)
    fills = cache.mac_fills
    for _ in range(4):
        cache.page_macs(2, key, raw)
        cache.page_macs(2, key, other)
    assert cache.mac_fills == fills


@settings(max_examples=40, deadline=None)
@given(ops=st.lists(
    st.tuples(
        st.sampled_from(("write", "drop")),
        st.integers(min_value=0, max_value=4 * PAGE_SIZE - 1),  # paddr
        st.sampled_from((1, 8, CACHE_LINE_SIZE, 256, PAGE_SIZE,
                         PAGE_SIZE + CACHE_LINE_SIZE, 2 * PAGE_SIZE)),
        st.sampled_from((0, 1, 2, 9)),  # keyid: host, programmed x2, unknown
        st.integers(min_value=0, max_value=255)),  # fill byte (0 = zero page)
    min_size=1, max_size=24))
def test_fast_engine_matches_reference_on_arbitrary_spans(ops):
    """Full datapath differential: any span, any keyid, any content.

    Exercises every fall-through seam in the fast engine — sub-page
    reads on cold slots, multi-page spans, host passthrough, unknown
    KeyIDs (throwaway ciphers), MAC drop on aligned and unaligned
    blocks — against a reference engine fed the identical op stream.
    The raw DRAM bytes, the decrypted plaintext, every integrity
    verdict, and the final MAC tables must all agree.
    """
    from repro.core.fastkernel.slots import FastMemoryEncryptionEngine
    from repro.errors import IntegrityViolation
    from repro.hw.encryption_engine import MemoryEncryptionEngine

    size = 4 * PAGE_SIZE
    engines = {"reference": MemoryEncryptionEngine(),
               "fast": FastMemoryEncryptionEngine(num_frames=4)}
    backing = {name: bytearray(size) for name in engines}
    readers = {name: (lambda store: lambda addr, n:
                      bytes(store[addr:addr + n]))(store)
               for name, store in backing.items()}
    for keyid in (1, 2):
        for engine in engines.values():
            engine.program_key(keyid, bytes([keyid]) * 32, from_ems=True)

    def _verdict(engine, name, paddr, length, keyid):
        try:
            engine.verify_macs(paddr, length, keyid, readers[name])
        except IntegrityViolation as exc:
            return str(exc)
        return None

    for kind, paddr, length, keyid, fill in ops:
        length = min(length, size - paddr)
        if kind == "drop":
            for engine in engines.values():
                engine.drop_block_macs(paddr, length)
            continue
        plain = bytes([fill]) * length
        raws = {}
        for name, engine in engines.items():
            raw = engine.encrypt_access(paddr, plain, keyid)
            assert engine.decrypt_access(paddr, raw, keyid) == plain
            backing[name][paddr:paddr + length] = raw
            engine.record_macs(paddr, length, keyid, readers[name])
            raws[name] = raw
        assert raws["fast"] == raws["reference"]
        verdicts = [_verdict(engine, name, paddr, length, keyid)
                    for name, engine in engines.items()]
        assert verdicts[0] == verdicts[1]
    assert bytes(backing["fast"]) == bytes(backing["reference"])
    assert engines["fast"]._macs == engines["reference"]._macs


@given(data=st.binary(min_size=1, max_size=2 * PAGE_SIZE))
def test_xor_matches_scalar(data):
    from repro.core.fastkernel.slots import _xor

    stream = bytes((i * 37 + 11) & 0xFF for i in range(len(data)))
    expected = bytes(a ^ b for a, b in zip(data, stream))
    assert _xor(data, stream) == expected
    if len(data) == PAGE_SIZE:
        assert xor_page(data, stream) == expected
