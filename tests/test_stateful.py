"""Stateful property testing: random primitive sequences preserve the
platform's safety invariants.

Hypothesis drives an arbitrary interleaving of lifecycle, memory, and
shared-memory primitives across multiple enclaves and checks, after
every step:

* pool conservation — used + free == capacity, no frame double-handed;
* ownership exclusivity — no frame owned by two parties;
* enclave-frame disjointness — no two live enclaves share a private frame;
* bitmap coverage — every pool/enclave frame is enclave-marked; host
  frames are not;
* key consistency — every live enclave's KeyID decrypts its own memory.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.common.types import EnclaveState, Permission
from repro.core.config import SystemConfig
from repro.core.enclave import EnclaveConfig
from repro.core.system import HyperTEESystem
from repro.errors import EMSError


class HyperTEEMachine(RuleBasedStateMachine):
    def __init__(self) -> None:
        super().__init__()
        self.sys: HyperTEESystem | None = None
        self.enclave_ids: list[int] = []
        self.heap_regions: dict[int, list[int]] = {}
        self.shm_ids: list[int] = []

    @initialize()
    def boot(self) -> None:
        self.sys = HyperTEESystem(
            SystemConfig(cs_memory_mb=64, ems_memory_mb=4,
                         pool_initial_pages=128))

    # -- rules -----------------------------------------------------------------------

    @rule(heap=st.integers(min_value=4, max_value=64))
    def create_enclave(self, heap: int) -> None:
        result, _, _ = self.sys.enclaves.ecreate(
            EnclaveConfig(name=f"e{len(self.enclave_ids)}",
                          heap_pages_max=heap))
        enclave_id = result["enclave_id"]
        self.sys.enclaves.eadd(enclave_id, b"code")
        self.sys.enclaves.emeas(enclave_id)
        self.enclave_ids.append(enclave_id)
        self.heap_regions[enclave_id] = []

    def _live(self) -> list[int]:
        return [i for i in self.enclave_ids
                if self.sys.enclaves.enclaves[i].state
                is not EnclaveState.DESTROYED]

    @rule(pick=st.integers(min_value=0, max_value=10**6),
          pages=st.integers(min_value=1, max_value=8))
    def ealloc(self, pick: int, pages: int) -> None:
        live = self._live()
        if not live:
            return
        enclave_id = live[pick % len(live)]
        try:
            result, _, _ = self.sys.pages.ealloc(enclave_id, pages)
            self.heap_regions[enclave_id].append(result["vaddr"])
        except EMSError:
            pass  # budget exceeded: allowed, state must stay consistent

    @rule(pick=st.integers(min_value=0, max_value=10**6))
    def efree(self, pick: int) -> None:
        live = [i for i in self._live() if self.heap_regions[i]]
        if not live:
            return
        enclave_id = live[pick % len(live)]
        vaddr = self.heap_regions[enclave_id].pop()
        self.sys.pages.efree(enclave_id, vaddr)

    @rule(pick=st.integers(min_value=0, max_value=10**6))
    def enter_exit(self, pick: int) -> None:
        live = self._live()
        if not live:
            return
        enclave_id = live[pick % len(live)]
        control = self.sys.enclaves.enclaves[enclave_id]
        if control.state in (EnclaveState.MEASURED, EnclaveState.SUSPENDED):
            self.sys.enclaves.eenter(enclave_id)
            self.sys.enclaves.eexit(enclave_id)

    @rule(pick=st.integers(min_value=0, max_value=10**6))
    def destroy(self, pick: int) -> None:
        live = [i for i in self._live()
                if self.sys.enclaves.enclaves[i].state
                is not EnclaveState.RUNNING]
        if not live:
            return
        enclave_id = live[pick % len(live)]
        self.sys.enclaves.edestroy(enclave_id)
        self.heap_regions[enclave_id] = []

    @rule(pages=st.integers(min_value=1, max_value=4))
    def ewb(self, pages: int) -> None:
        try:
            self.sys.swap.ewb(pages)
        except EMSError:
            pass

    @rule(pick=st.integers(min_value=0, max_value=10**6),
          pages=st.integers(min_value=1, max_value=4))
    def shared_region(self, pick: int, pages: int) -> None:
        live = self._live()
        if not live:
            return
        sender = live[pick % len(live)]
        try:
            result, _, _ = self.sys.shm.eshmget(sender, pages, Permission.RW)
            self.shm_ids.append(result["shm_id"])
        except EMSError:
            pass

    # -- invariants -----------------------------------------------------------------------

    @invariant()
    def pool_conservation(self) -> None:
        if self.sys is None:
            return
        pool = self.sys.pool
        assert pool.used_count + pool.free_count == pool.capacity
        assert pool.used_count >= 0

    @invariant()
    def enclave_frames_disjoint(self) -> None:
        if self.sys is None:
            return
        seen: set[int] = set()
        for enclave_id in self._live():
            control = self.sys.enclaves.enclaves[enclave_id]
            frames = set(control.frames)
            assert not (frames & seen), "two enclaves share a frame"
            seen |= frames

    @invariant()
    def enclave_frames_bitmap_marked(self) -> None:
        if self.sys is None:
            return
        for enclave_id in self._live():
            control = self.sys.enclaves.enclaves[enclave_id]
            for frame in control.frames:
                assert self.sys.bitmap.is_enclave(frame)

    @invariant()
    def ownership_consistent(self) -> None:
        if self.sys is None:
            return
        for enclave_id in self._live():
            control = self.sys.enclaves.enclaves[enclave_id]
            from repro.ems.ownership import Owner

            owned = set(self.sys.ownership.frames_owned_by(
                Owner.enclave(enclave_id)))
            table_owned = set(self.sys.ownership.frames_owned_by(
                Owner.ems(f"enclave{enclave_id}-pagetable")))
            assert set(control.frames) == owned | table_owned

    @invariant()
    def keys_decrypt_own_memory(self) -> None:
        if self.sys is None:
            return
        for enclave_id in self._live():
            control = self.sys.enclaves.enclaves[enclave_id]
            if control.state is EnclaveState.DESTROYED:
                continue
            assert self.sys.engine.has_key(control.keyid) or \
                control.state in (EnclaveState.SUSPENDED,
                                  EnclaveState.MEASURED,
                                  EnclaveState.CREATED)


HyperTEEStateTest = HyperTEEMachine.TestCase
HyperTEEStateTest.settings = settings(
    max_examples=15, stateful_step_count=30, deadline=None)
