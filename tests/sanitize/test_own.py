"""The OWN sanitizer: double-grants, transfer windows, fleet hygiene.

Unit tests drive the manager hooks directly with fake tables; the
integration tests run the sharded transfer scenario and assert the
sealed prepare/commit protocol stays clean — the dynamic twin of
teelint's TEE009/TEE010.
"""

from __future__ import annotations

import pytest

from repro.sanitize.manager import SanitizerManager


@pytest.fixture
def manager() -> SanitizerManager:
    return SanitizerManager(("own",))


class _Table:
    """Identity stand-in for a PageOwnershipTable."""


def test_cross_table_double_grant_fires(manager):
    a, b = _Table(), _Table()
    manager.on_claim(a, [17], "enclave:7")
    assert manager.ok()
    manager.on_claim(b, [17], "enclave:8")
    assert not manager.ok()
    v = manager.violations[0]
    assert v.kind == "DOUBLE-GRANT"
    assert "frame 17" in v.message


def test_same_owner_reclaim_is_not_a_double_grant(manager):
    table = _Table()
    manager.on_claim(table, [4], "enclave:1")
    manager.on_claim(table, [4], "enclave:1")  # idempotent re-record
    assert manager.ok()


def test_release_then_claim_elsewhere_is_clean(manager):
    a, b = _Table(), _Table()
    manager.on_claim(a, [5], "enclave:1")
    manager.on_release(a, [5], "enclave:1")
    manager.on_claim(b, [5], "enclave:2")
    assert manager.ok()
    assert manager.own.live_grants() == 1


def test_pool_take_of_owned_frame_fires(manager):
    manager.on_claim(_Table(), [30, 31], "enclave:3")
    manager.on_pool_take(None, [31], "enclave:9")
    assert not manager.ok()
    assert "pool handed out frame 31" in manager.violations[0].message


def test_raw_write_inside_prepare_window_fires(manager):
    from repro.common.constants import PAGE_SIZE

    manager.on_transfer_prepare(42, [100, 101], 0, 1)
    manager.on_raw_write(None, 100 * PAGE_SIZE + 8, b"mutation")
    assert not manager.ok()
    v = manager.violations[0]
    assert v.kind == "ACCESS-AFTER-PREPARE"
    assert "enclave 42" in v.message
    # Writes outside the window's frames stay clean.
    manager.violations.clear()
    manager.on_raw_write(None, 300 * PAGE_SIZE, b"elsewhere")
    assert manager.ok()
    # Commit closes the window.
    manager.on_transfer_manifest_verified(42)
    manager.on_transfer_commit(42, 0, 1)
    manager.on_raw_write(None, 100 * PAGE_SIZE, b"fine now")
    assert manager.ok()


def test_ownership_mutation_before_verification_fires(manager):
    manager.on_transfer_prepare(7, [50], 0, 1)
    manager.on_claim(_Table(), [50], "enclave:7")
    assert any(v.kind == "UNVERIFIED-MUTATION"
               for v in manager.violations)


def test_verified_transfer_mutations_are_clean(manager):
    src, dst = _Table(), _Table()
    manager.on_claim(src, [60], "enclave:9")
    manager.on_transfer_prepare(9, [60], 0, 1)
    manager.on_transfer_manifest_verified(9)
    manager.on_release(src, [60], "enclave:9")
    manager.on_claim(dst, [60], "enclave:9")
    manager.on_transfer_commit(9, 0, 1)
    assert manager.ok()
    assert manager.own.open_transfers() == 0


def test_commit_without_verification_fires(manager):
    manager.on_transfer_prepare(3, [70], 1, 0)
    manager.on_transfer_commit(3, 1, 0)
    assert not manager.ok()
    assert "without a verified manifest" in manager.violations[0].message


def test_abort_closes_the_window_silently(manager):
    manager.on_transfer_prepare(4, [80], 0, 1)
    manager.on_transfer_abort(4)
    assert manager.own.open_transfers() == 0
    manager.on_claim(_Table(), [80], "enclave:4")
    assert manager.ok()


def test_shard_transfer_scenario_is_clean():
    from repro.sanitize.scenario import run_sanitized_shard_scenario

    manager = run_sanitized_shard_scenario(sanitizers=("secret", "own"))
    manager.check_clean("shard-transfer")
    assert manager.stats.claims_checked > 0
    # The scenario ran exactly one cross-shard transfer: its prepare /
    # verify / commit phases must all be in the recorded event stream.
    assert manager.own.open_transfers() == 0


def test_interrupted_transfer_stays_clean():
    """An interrupted transfer aborts its window; no false positives."""
    from repro.core.api import HyperTEE
    from repro.core.config import SystemConfig
    from repro.core.enclave import EnclaveConfig
    from repro.errors import TransferInterrupted
    from repro.faults import FaultPlan, FaultRule

    tee = HyperTEE(SystemConfig(ems_shards=2))
    manager = tee.system.enable_sanitizers(("own",)).san
    enclave = tee.launch_enclave(b"own interrupt enclave " * 16,
                                 EnclaveConfig(name="own-int",
                                               heap_pages_max=8))
    pool = tee.system.shard_pool
    src = pool.resolve(enclave.enclave_id)
    dst = (src + 1) % pool.num_shards
    tee.system.enable_fault_injection(FaultPlan(seed=1, rules=(
        FaultRule("ems.transfer.interrupt", probability=1.0),)))
    with pytest.raises(TransferInterrupted):
        pool.transfer_enclave(enclave.enclave_id, dst)
    tee.system.enable_fault_injection(FaultPlan(seed=1, rules=()))
    assert manager.own.open_transfers() == 0
    # The enclave still lives on the source shard and keeps working.
    with enclave.running():
        vaddr = enclave.ealloc(1)
        enclave.write(vaddr, b"still here")
        enclave.efree(vaddr)
    enclave.destroy()
    manager.check_clean("interrupted-transfer")


def test_seeded_double_grant_is_detected_end_to_end():
    from repro.sanitize.cli import _seed_own_violation

    manager = _seed_own_violation(seed=0x1EE7)
    assert not manager.ok()
    assert manager.violations[0].kind == "DOUBLE-GRANT"
    assert any("own.claim" in line
               for v in manager.violations for line in v.trail)
