"""Non-interference: sanitizers observe; they never change the model.

The contract that makes teesan safe to leave on in CI: a platform with
sanitizers attached is bit-identical — cycle counts, quotes, report
documents, golden surfaces — to one without. These tests run the same
deterministic workloads twice and diff everything a user could see.
"""

from __future__ import annotations

import json

from repro.common.types import Permission, Primitive
from repro.core.api import HyperTEE
from repro.core.config import SystemConfig
from repro.core.enclave import EnclaveConfig


def _run_lifecycle(sanitize: bool) -> dict:
    tee = HyperTEE(SystemConfig(seed=0xD1FF))
    tee.system.enable_observability()
    if sanitize:
        tee.system.enable_sanitizers(("secret", "own"))
    enclave = tee.launch_enclave(b"noninterference enclave " * 24,
                                 EnclaveConfig(name="nonint",
                                               heap_pages_max=32))
    with enclave.running():
        vaddr = enclave.ealloc(3)
        enclave.write(vaddr, b"identical either way")
        readback = enclave.read(vaddr, 20)
        enclave.write(vaddr + 4 * 4096, b"demand")
        region = enclave.create_shared_region(1, Permission.RW)
        share_va = enclave.attach(region)
        enclave.write(share_va, b"shared")
        enclave.detach(region)
        enclave.destroy_region(region)
        quote = enclave.attest(report_data=b"nonint")
        enclave.efree(vaddr)
    tee.invoke_os(Primitive.EWB, {"pages": 1})
    enclave.destroy()
    return {
        "readback": readback.hex(),
        "measurement": quote.enclave.measurement.hex(),
        "signature": quote.enclave.signature.hex(),
        "primitive_cycles": tee.primitive_cycles,
        "ems_stats": vars(tee.system.ems.stats).copy(),
        "pool": [tee.system.pool.used_count, tee.system.pool.free_count,
                 tee.system.pool.capacity],
        "slo": tee.system.obs.slo.report(),
        "latency": tee.system.obs.primitive_latency_table(),
    }


def test_lifecycle_is_bit_identical_with_sanitizers_on():
    plain = _run_lifecycle(sanitize=False)
    sanitized = _run_lifecycle(sanitize=True)
    assert json.dumps(plain, sort_keys=True, default=str) == \
        json.dumps(sanitized, sort_keys=True, default=str)


def test_serve_report_is_identical_modulo_sanitize_section():
    from repro.eval.serve import ServeConfig, run_serve

    plain = run_serve(ServeConfig(ops=60, shards=2, workers=2))
    sanitized = run_serve(ServeConfig(ops=60, shards=2, workers=2,
                                      sanitize=("secret", "own", "det")))
    section = sanitized.pop("sanitize")
    assert section["ok"], "the serve workload must run clean"
    plain["config"]["sanitize"] = sanitized["config"]["sanitize"] = None
    assert json.dumps(plain, sort_keys=True, default=str) == \
        json.dumps(sanitized, sort_keys=True, default=str)


def test_sanitize_stats_surface_only_when_enabled():
    """The default metrics document is unchanged (pinned elsewhere);
    the ``sanitize`` source appears only on sanitized platforms."""
    plain = HyperTEE(SystemConfig(seed=1))
    plain.system.enable_observability()
    assert "sanitize" not in plain.system.obs.metrics.federated_snapshot()

    sanitized = HyperTEE(SystemConfig(seed=1))
    sanitized.system.enable_observability()
    sanitized.system.enable_sanitizers(("secret",))
    snapshot = sanitized.system.obs.metrics.federated_snapshot()
    assert "sanitize" in snapshot
    assert snapshot["sanitize"]["secrets_registered"] >= 2  # EK + SK
