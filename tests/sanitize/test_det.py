"""The DET sanitizer: bisection laws and the engine lockstep check.

``bisect_divergence`` is pinned against a linear-scan oracle with
hypothesis; the integration tests run the real reference-vs-fast
lockstep and its seeded perturbation — the dynamic twin of teelint's
TEE011 (engine-parity) concern.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sanitize.det import (
    bisect_divergence,
    format_lockstep_report,
    run_lockstep,
)

entries = st.tuples(st.sampled_from(["ECREATE", "EADD", "EENTER"]),
                    st.sampled_from(["ok", "fail"]),
                    st.integers(min_value=0, max_value=10_000),
                    st.integers(min_value=0, max_value=10_000))


def _oracle(a: list, b: list) -> int | None:
    for i in range(min(len(a), len(b))):
        if a[i] != b[i]:
            return i
    if len(a) != len(b):
        return min(len(a), len(b))
    return None


@settings(max_examples=80, deadline=None)
@given(a=st.lists(entries, max_size=30), b=st.lists(entries, max_size=30))
def test_bisect_matches_linear_oracle(a, b):
    assert bisect_divergence(a, b) == _oracle(a, b)


@settings(max_examples=40, deadline=None)
@given(trail=st.lists(entries, min_size=1, max_size=30),
       data=st.data())
def test_bisect_finds_a_single_perturbation_exactly(trail, data):
    index = data.draw(st.integers(min_value=0, max_value=len(trail) - 1))
    perturbed = list(trail)
    name, status, cs, svc = perturbed[index]
    perturbed[index] = (name, status, cs + 1, svc)
    assert bisect_divergence(trail, perturbed) == index


def test_equal_trails_have_no_divergence():
    trail = [("EENTER", "ok", 10, 5)] * 8
    assert bisect_divergence(trail, list(trail)) is None
    assert bisect_divergence([], []) is None


def test_length_mismatch_diverges_at_the_shorter_end():
    trail = [("EADD", "ok", 3, 1)] * 4
    assert bisect_divergence(trail, trail[:2]) == 2
    assert bisect_divergence(trail[:2], trail) == 2


def test_reference_and_fast_run_in_lockstep():
    report = run_lockstep()
    assert report["ok"] is True
    assert report["first_divergence"] is None
    assert report["events"][0] == report["events"][1] > 0
    text = format_lockstep_report(report)
    assert "in lockstep" in text and "ERROR" not in text


def test_perturbed_lockstep_is_detected_and_bisected():
    report = run_lockstep(perturb_event=3)
    assert report["ok"] is False
    assert report["first_divergence"] == 3
    assert report["diverged_a"]["cs_cycles"] + 1 == \
        report["diverged_b"]["cs_cycles"]
    text = format_lockstep_report(report)
    assert "ERROR: TeeSan LOCKSTEP-DIVERGENCE" in text
    assert "diverged at event 3" in text


def test_lockstep_is_seed_stable():
    """Same seed, same trails: the report is deterministic."""
    assert run_lockstep(seed=0xD0D0) == run_lockstep(seed=0xD0D0)
