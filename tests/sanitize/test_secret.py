"""The SECRET sanitizer: every surface check, plus the clean scenario.

Each test seeds one concrete leak through a manager-level hook and
expects the matching SECRET-LEAK diagnostic; the final tests run the
full sanitized lifecycle and assert the real platform stays clean —
the dynamic twin of teelint's TEE004.
"""

from __future__ import annotations

import pytest

from repro.common.constants import PAGE_SIZE
from repro.sanitize.manager import (
    SanitizerManager,
    SanitizeViolationError,
)


SECRET = bytes(range(200, 232))


@pytest.fixture
def manager() -> SanitizerManager:
    san = SanitizerManager(("secret",))
    san.register_secret(SECRET, "unit-key")
    return san


class _Memory:
    """Just enough PhysicalMemory for the frame-lifecycle checks."""

    def __init__(self) -> None:
        self.frames: dict[int, bytes] = {}

    def read_raw(self, paddr: int, length: int) -> bytes:
        frame = paddr // PAGE_SIZE
        data = self.frames.get(frame, bytes(PAGE_SIZE))
        offset = paddr % PAGE_SIZE
        return data[offset:offset + length]


class _Packet:
    def __init__(self, **fields):
        self.__dict__.update(fields)


def test_wire_packet_leak_fires(manager):
    packet = _Packet(request_id=9, args={"blob": b"xx" + SECRET})
    manager.on_wire_packet(packet, "request")
    assert not manager.ok()
    v = manager.violations[0]
    assert v.kind == "SECRET-LEAK"
    assert "crossed the CS<->EMS boundary" in v.message
    assert "unit-key" in v.message
    assert SECRET.hex() not in v.message  # reports never carry the value


def test_wire_packet_recurses_into_batches(manager):
    inner = _Packet(request_id=1, args={"k": SECRET})
    outer = _Packet(batch_id=5, requests=[inner])
    manager.on_wire_packet(outer, "request")
    assert not manager.ok()
    assert "request.batched" in manager.violations[0].message


def test_clean_wire_packet_passes(manager):
    packet = _Packet(request_id=2, args={"payload": b"plain data",
                                         "nested": [b"ok", "text"]})
    manager.on_wire_packet(packet, "request")
    assert manager.ok()
    assert manager.stats.wire_packets_scanned == 1


def test_raw_write_leak_marks_shadow_and_fires(manager):
    manager.on_raw_write(_Memory(), 3 * PAGE_SIZE + 100, b"x" + SECRET)
    assert not manager.ok()
    assert "DRAM bus" in manager.violations[0].message
    spans = manager.shadow.spans_for(3)
    assert [(s.start, s.end) for s in spans] == [(101, 101 + len(SECRET))]


def test_raw_write_spanning_frames_taints_both(manager):
    start = 5 * PAGE_SIZE - 16  # last 16 bytes of frame 4, rest in 5
    manager.on_raw_write(_Memory(), start, SECRET)
    assert manager.shadow.is_tainted(4) and manager.shadow.is_tainted(5)
    assert manager.shadow.spans_for(4)[0].end == PAGE_SIZE
    assert manager.shadow.spans_for(5)[0].start == 0


def test_overwrite_clears_shadow_and_zero_frame_scrubs(manager):
    memory = _Memory()
    manager.on_raw_write(memory, 7 * PAGE_SIZE, SECRET)
    assert manager.shadow.is_tainted(7)
    # Overwriting the range with non-secret bytes untaints it.
    manager.on_raw_write(memory, 7 * PAGE_SIZE, bytes(len(SECRET)))
    assert not manager.shadow.is_tainted(7)
    # And zeroing scrubs whatever was left.
    manager.on_raw_write(memory, 7 * PAGE_SIZE + 64, SECRET)
    manager.on_zero_frame(7)
    assert not manager.shadow.is_tainted(7)


def test_regranted_frame_with_live_shadow_fires(manager):
    memory = _Memory()
    manager.on_raw_write(memory, 9 * PAGE_SIZE, SECRET)
    violations_before = len(manager.violations)
    manager.on_pool_take(memory, [9], owner="new-owner")
    assert len(manager.violations) == violations_before + 1
    assert "regranted frame 9" in manager.violations[-1].message


def test_freed_frame_retaining_secret_fires(manager):
    memory = _Memory()
    memory.frames[11] = SECRET + bytes(PAGE_SIZE - len(SECRET))
    manager.on_pool_return(memory, [11], owner="dead-enclave")
    assert not manager.ok()
    assert "retained in freed frame 11" in manager.violations[0].message
    assert "EWB" not in manager.violations[0].message
    manager.violations.clear()
    manager.on_pool_surrender(memory, [11])
    assert "EWB surrender" in manager.violations[0].message


def test_observable_scan_catches_raw_and_hex(manager):
    manager.on_observable("flightrec.fault", {"detail": SECRET})
    assert not manager.ok()
    manager.violations.clear()
    manager.on_observable("flightrec.fault",
                          {"detail": f"key={SECRET.hex()}"})
    assert not manager.ok()
    assert "observability payload" in manager.violations[0].message
    manager.violations.clear()
    manager.on_observable("flightrec.fault", {"detail": "all quiet"})
    assert manager.ok()


def test_codec_artifact_scan(manager):
    manager.on_codec_encode("sealed_blob", b"HTSB" + SECRET)
    assert not manager.ok()
    assert "encoded artifact sealed_blob" in manager.violations[0].message


def test_check_clean_raises_with_report(manager):
    manager.on_codec_encode("quote", SECRET)
    with pytest.raises(SanitizeViolationError) as excinfo:
        manager.check_clean("unit")
    text = str(excinfo.value)
    assert "ERROR: TeeSan SECRET-LEAK" in text
    assert "SUMMARY: TeeSan:" in text


def test_full_lifecycle_scenario_is_clean():
    from repro.sanitize.scenario import run_sanitized_scenario

    manager = run_sanitized_scenario(sanitizers=("secret", "own"))
    manager.check_clean("lifecycle")
    assert manager.stats.secrets_registered >= 5
    assert manager.stats.wire_packets_scanned > 0
    assert manager.stats.raw_writes_scanned > 0
    assert manager.stats.frames_scanned > 0


def test_fast_engine_scenario_is_clean():
    from repro.sanitize.scenario import run_sanitized_scenario

    manager = run_sanitized_scenario(engine="fast",
                                     sanitizers=("secret", "own"))
    manager.check_clean("lifecycle-fast")


def test_seeded_leak_is_detected_end_to_end():
    """The CLI's seeded SECRET violation, via the library path."""
    from repro.sanitize.cli import _seed_secret_violation

    manager = _seed_secret_violation(seed=0x1EE7, engine="reference")
    assert not manager.ok()
    kinds = {v.kind for v in manager.violations}
    assert kinds == {"SECRET-LEAK"}
    assert any("DRAM bus" in v.message for v in manager.violations)
    # The trail names the mint that produced the leaked key.
    assert any("secret.mint" in line
               for v in manager.violations for line in v.trail)
