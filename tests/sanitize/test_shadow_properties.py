"""Property-based laws for the taint shadow state.

Hypothesis pins the three laws the SECRET sanitizer's docstring claims:

* **monotone under copy/concat** — a buffer containing a registered
  secret still contains it after being embedded in any larger buffer;
* **erasure only via modelled encrypt/digest** — the keystream cipher
  and the hash primitives never reproduce a registered value as a
  substring of their output;
* **shadow-map algebra** — marking and clearing byte ranges behaves
  like interval arithmetic (clears split spans, full clears empty the
  frame, tainted-byte accounting is consistent).

Example counts are bounded (this file runs in tier-1).
"""

from __future__ import annotations

import hashlib

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.cipher import KeystreamCipher
from repro.sanitize.shadow import (
    MIN_SECRET_BYTES,
    ShadowMap,
    TaintRegistry,
)

# Secrets with enough byte diversity to pass registration.
secrets = st.binary(min_size=MIN_SECRET_BYTES, max_size=48).filter(
    lambda value: len(set(value)) >= 4)
padding = st.binary(min_size=0, max_size=64)


@settings(max_examples=60, deadline=None)
@given(value=secrets, prefix=padding, suffix=padding)
def test_taint_is_monotone_under_copy_and_concat(value, prefix, suffix):
    registry = TaintRegistry()
    assert registry.register(value, "k")
    embedded = prefix + value + suffix
    hits = registry.scan(embedded)
    assert hits, "concatenation must preserve taint"
    assert any(embedded[h.offset:h.offset + h.length] == value
               for h in hits)
    # A copy of the embedding buffer is just as tainted.
    assert registry.scan(bytes(bytearray(embedded)))


@settings(max_examples=60, deadline=None)
@given(value=secrets, tweak=st.integers(min_value=0, max_value=2**40))
def test_encryption_erases_taint(value, tweak):
    registry = TaintRegistry()
    assert registry.register(value, "k")
    ciphertext = KeystreamCipher(b"some-unrelated-cipher-keying").encrypt(
        value, tweak=tweak)
    assert not registry.scan(ciphertext), \
        "ciphertext reproduced the plaintext secret"


@settings(max_examples=60, deadline=None)
@given(value=secrets)
def test_digests_erase_taint(value):
    registry = TaintRegistry()
    assert registry.register(value, "k")
    for digest in (hashlib.sha256(value).digest(),
                   hashlib.sha3_256(value).digest()):
        assert not registry.scan(digest)


@settings(max_examples=60, deadline=None)
@given(value=secrets, chop=st.integers(min_value=1, max_value=8))
def test_slicing_away_part_of_a_secret_erases_it(value, chop):
    registry = TaintRegistry()
    assert registry.register(value, "k")
    assert not registry.scan(value[chop:])
    assert not registry.scan(value[:-chop])


def test_registration_refuses_weak_values():
    registry = TaintRegistry()
    assert not registry.register(b"short", "too-short")
    assert not registry.register(bytes(32), "all-zero")
    assert not registry.register(b"\x01\x02" * 16, "two-symbols")
    assert len(registry) == 0
    # First label wins on duplicate registration.
    value = bytes(range(16))
    assert registry.register(value, "first")
    assert not registry.register(value, "second")
    assert registry.labels() == ["first"]


def test_scan_text_finds_hex_encoded_secrets():
    registry = TaintRegistry()
    value = bytes(range(20))
    registry.register(value, "hexleak")
    hits = registry.scan_text(f"dump: {value.hex()} end")
    assert hits and hits[0].label == "hexleak"
    assert not registry.scan_text("dump: nothing here")


# -- ShadowMap interval algebra ---------------------------------------------

ranges = st.tuples(st.integers(min_value=0, max_value=4000),
                   st.integers(min_value=1, max_value=96))


@settings(max_examples=60, deadline=None)
@given(spans=st.lists(ranges, min_size=1, max_size=8),
       clear=ranges)
def test_clear_range_removes_exactly_the_overlap(spans, clear):
    shadow = ShadowMap()
    for start, width in spans:
        shadow.mark(0, start, start + width, "k")
    cstart, cwidth = clear
    cend = cstart + cwidth
    shadow.clear_range(0, cstart, cend)
    for span in shadow.spans_for(0):
        assert span.end <= cstart or span.start >= cend, \
            f"span [{span.start},{span.end}) survived inside the clear"
        assert span.start < span.end


@settings(max_examples=60, deadline=None)
@given(spans=st.lists(ranges, min_size=0, max_size=8))
def test_clear_frame_always_empties(spans):
    shadow = ShadowMap()
    for start, width in spans:
        shadow.mark(3, start, start + width, "k")
    shadow.clear_frame(3)
    assert not shadow.is_tainted(3)
    assert shadow.spans_for(3) == []
    assert 3 not in shadow.tainted_frames()


def test_tainted_byte_accounting():
    shadow = ShadowMap()
    shadow.mark(1, 0, 10, "a")
    shadow.mark(2, 100, 150, "b")
    assert shadow.total_tainted_bytes() == 60
    assert shadow.tainted_frames() == [1, 2]
    # Clearing the middle of a span splits it, conserving the outside.
    shadow.clear_range(2, 120, 130)
    kept = shadow.spans_for(2)
    assert [(s.start, s.end) for s in kept] == [(100, 120), (130, 150)]
    assert shadow.total_tainted_bytes() == 50
    # Degenerate marks are ignored.
    shadow.mark(4, 10, 10, "noop")
    assert not shadow.is_tainted(4)
