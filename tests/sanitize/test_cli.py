"""``python -m repro sanitize`` and ``serve --sanitize``: exit codes,
diagnostics, report artifacts, and the COMMANDS-tuple lockstep."""

from __future__ import annotations

import json

import pytest

from repro.obs.cli import COMMANDS, build_parser, main


def test_sanitize_is_a_registered_subcommand():
    # main() routes by COMMANDS; the parser must know every entry.
    parser = build_parser()
    args = parser.parse_args(["sanitize", "--check"])
    assert args.check is True
    assert "sanitize" in COMMANDS


def test_check_runs_clean(capsys):
    assert main(["sanitize", "--check"]) == 0
    out = capsys.readouterr().out
    assert "teesan lifecycle: clean" in out
    assert "teesan shard-transfer: clean" in out
    assert "in lockstep" in out


def test_check_writes_the_report_artifact(tmp_path, capsys):
    path = tmp_path / "teesan.json"
    assert main(["sanitize", "--check", "--report", str(path)]) == 0
    document = json.loads(path.read_text())
    assert document["schema"] == "hypertee.teesan.run/1"
    assert document["ok"] is True
    assert set(document["scenarios"]) == {"lifecycle", "shard-transfer"}
    for scenario in document["scenarios"].values():
        assert scenario["schema"] == "hypertee.teesan/1"
        assert scenario["violations"] == []
    assert document["det"]["ok"] is True


def test_check_json_output(capsys):
    assert main(["sanitize", "--check", "--json"]) == 0
    document = json.loads(capsys.readouterr().out)
    assert document["ok"] is True


@pytest.mark.parametrize("name,needle", [
    ("secret", "ERROR: TeeSan SECRET-LEAK"),
    ("own", "ERROR: TeeSan DOUBLE-GRANT"),
    ("det", "ERROR: TeeSan LOCKSTEP-DIVERGENCE"),
])
def test_seeded_violations_exit_1_with_diagnostic(name, needle, capsys):
    assert main(["sanitize", "--seed-violation", name]) == 1
    assert needle in capsys.readouterr().out


def test_sanitizer_subset_selection(capsys):
    assert main(["sanitize", "--check", "--sanitize", "secret"]) == 0
    out = capsys.readouterr().out
    assert "lifecycle: clean" in out
    assert "lockstep" not in out  # det was not selected


def test_bad_sanitizer_name_is_rejected(capsys):
    assert main(["sanitize", "--check", "--sanitize", "bogus"]) == 2
    assert "unknown sanitizer" in capsys.readouterr().err


def test_serve_with_sanitizers_attached(capsys):
    assert main(["serve", "--ops", "40", "--shards", "2",
                 "--workers", "2", "--sanitize", "secret,own",
                 "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["config"]["sanitize"] == ["secret", "own"]
    assert report["sanitize"]["ok"] is True
    assert report["sanitize"]["stats"]["events"] > 0


def test_serve_without_sanitizers_has_no_section(capsys):
    assert main(["serve", "--ops", "24", "--shards", "1",
                 "--workers", "1", "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert "sanitize" not in report


def test_serve_rejects_bad_sanitizer_list(capsys):
    assert main(["serve", "--ops", "8", "--sanitize", "nope"]) == 2
    assert "unknown sanitizer" in capsys.readouterr().err


def test_fast_engine_check_runs_clean(capsys):
    assert main(["sanitize", "--check", "--engine", "fast",
                 "--sanitize", "secret,own"]) == 0
    assert "clean" in capsys.readouterr().out
