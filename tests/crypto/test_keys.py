"""Key derivation tree: separation, determinism, binding."""

from __future__ import annotations

import pytest

from repro.crypto.keys import KeyDerivation, RootKeys


@pytest.fixture
def kdf() -> KeyDerivation:
    roots = RootKeys(endorsement_key=b"E" * 32, sealed_key=b"S" * 32)
    return KeyDerivation(roots)


def test_derivations_are_deterministic(kdf: KeyDerivation):
    assert kdf.enclave_memory_key(b"m") == kdf.enclave_memory_key(b"m")


def test_purpose_separation(kdf: KeyDerivation):
    """The same context under different labels yields unrelated keys."""
    measurement = b"m" * 32
    keys = {
        kdf.enclave_memory_key(measurement),
        kdf.sealing_key(measurement),
        kdf.report_key(measurement),
        kdf.attestation_key(measurement),
    }
    assert len(keys) == 4


def test_enclave_keys_bound_to_measurement(kdf: KeyDerivation):
    assert kdf.enclave_memory_key(b"m1") != kdf.enclave_memory_key(b"m2")


def test_shared_memory_key_binding(kdf: KeyDerivation):
    """Shared keys derive from (sender EnclaveID, ShmID) — Section V-A."""
    assert kdf.shared_memory_key(1, 10) != kdf.shared_memory_key(2, 10)
    assert kdf.shared_memory_key(1, 10) != kdf.shared_memory_key(1, 11)
    assert kdf.shared_memory_key(1, 10) == kdf.shared_memory_key(1, 10)


def test_different_devices_derive_different_keys():
    a = KeyDerivation(RootKeys(b"E" * 32, b"S" * 32))
    b = KeyDerivation(RootKeys(b"E" * 32, b"T" * 32))
    assert a.sealing_key(b"m") != b.sealing_key(b"m")


def test_attestation_key_rotates_with_salt(kdf: KeyDerivation):
    assert kdf.attestation_key(b"salt1") != kdf.attestation_key(b"salt2")


def test_root_generation_uses_entropy_source():
    calls = []

    def fake_entropy(n: int) -> bytes:
        calls.append(n)
        return bytes(n)

    roots = RootKeys.generate(fake_entropy)
    assert len(roots.endorsement_key) == 32
    assert len(roots.sealed_key) == 32
    assert len(calls) == 2
