"""Crypto engine: functional ops and the Table III latency profiles."""

from __future__ import annotations

from repro.crypto.engine import ENGINE_CRYPTO, SOFTWARE_CRYPTO, CryptoEngine


def test_measure_returns_hash_and_cycles():
    engine = CryptoEngine(ENGINE_CRYPTO)
    digest, cycles = engine.measure(b"enclave image")
    assert len(digest) == 32
    assert cycles > 0


def test_sign_verify_roundtrip():
    engine = CryptoEngine(ENGINE_CRYPTO)
    signature, _ = engine.sign(b"k" * 32, b"message")
    ok, _ = engine.verify(b"k" * 32, b"message", signature)
    assert ok


def test_verify_rejects_forgery():
    engine = CryptoEngine(ENGINE_CRYPTO)
    signature, _ = engine.sign(b"k" * 32, b"message")
    ok, _ = engine.verify(b"k" * 32, b"tampered", signature)
    assert not ok
    ok, _ = engine.verify(b"x" * 32, b"message", signature)
    assert not ok


def test_bulk_encrypt_roundtrip():
    engine = CryptoEngine(ENGINE_CRYPTO)
    ct, _ = engine.bulk_encrypt(b"k" * 32, b"page-data" * 100, tweak=7)
    pt, _ = engine.bulk_decrypt(b"k" * 32, ct, tweak=7)
    assert pt == b"page-data" * 100


def test_software_hash_is_much_slower_than_engine():
    """Table IV hinges on the ~78x hash gap (EMEAS 7.8% -> 0.1%)."""
    sw = CryptoEngine(SOFTWARE_CRYPTO).hash_cycles(1 << 20)
    hw = CryptoEngine(ENGINE_CRYPTO).hash_cycles(1 << 20)
    assert 60 < sw / hw < 100


def test_hash_cycles_scale_with_size():
    engine = CryptoEngine(ENGINE_CRYPTO)
    assert engine.hash_cycles(1 << 20) > engine.hash_cycles(1 << 10)


def test_sign_much_slower_than_verify():
    """Table III: RSA sign 123 ops/s vs verify 10K ops/s."""
    engine = CryptoEngine(ENGINE_CRYPTO)
    assert engine.sign_cycles() > 10 * engine.verify_cycles()
