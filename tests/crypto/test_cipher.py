"""KeystreamCipher: roundtrip, address alignment, key separation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.cipher import KeystreamCipher

KEY_A = b"a" * 32
KEY_B = b"b" * 32


def test_roundtrip_basic():
    cipher = KeystreamCipher(KEY_A)
    data = b"the quick brown fox"
    assert cipher.decrypt(cipher.encrypt(data, tweak=100), tweak=100) == data


def test_rejects_short_keys():
    with pytest.raises(ValueError):
        KeystreamCipher(b"short")


def test_ciphertext_differs_from_plaintext():
    cipher = KeystreamCipher(KEY_A)
    data = b"x" * 64
    assert cipher.encrypt(data, tweak=0) != data


def test_wrong_key_yields_garbage():
    ct = KeystreamCipher(KEY_A).encrypt(b"secret-payload!!", tweak=4096)
    assert KeystreamCipher(KEY_B).decrypt(ct, tweak=4096) != b"secret-payload!!"


def test_wrong_tweak_yields_garbage():
    cipher = KeystreamCipher(KEY_A)
    ct = cipher.encrypt(b"secret-payload!!", tweak=4096)
    assert cipher.decrypt(ct, tweak=8192) != b"secret-payload!!"


def test_same_plaintext_different_addresses_differ():
    """XTS-style behaviour: the address tweak breaks ECB-style equality."""
    cipher = KeystreamCipher(KEY_A)
    assert cipher.encrypt(b"A" * 64, tweak=0) != cipher.encrypt(b"A" * 64, tweak=64)


def test_partial_overwrite_is_consistent():
    """An 8-byte store inside a page decrypts correctly afterwards.

    This is the address-aligned-keystream property the page-table model
    depends on (PTE-sized stores inside engine-zeroed frames).
    """
    cipher = KeystreamCipher(KEY_A)
    page = cipher.encrypt(bytes(4096), tweak=0)
    word = cipher.encrypt(b"12345678", tweak=24)
    patched = page[:24] + word + page[32:]
    recovered = cipher.decrypt(patched, tweak=0)
    assert recovered[24:32] == b"12345678"
    assert recovered[:24] == bytes(24)
    assert recovered[32:] == bytes(4096 - 32)


@given(data=st.binary(min_size=0, max_size=4096),
       tweak=st.integers(min_value=0, max_value=2**40))
@settings(max_examples=60, deadline=None)
def test_roundtrip_property(data: bytes, tweak: int):
    cipher = KeystreamCipher(KEY_A)
    assert cipher.decrypt(cipher.encrypt(data, tweak), tweak) == data


@given(start=st.integers(min_value=0, max_value=10_000),
       length=st.integers(min_value=1, max_value=256),
       offset=st.integers(min_value=0, max_value=256))
@settings(max_examples=60, deadline=None)
def test_keystream_is_position_pure(start: int, length: int, offset: int):
    """Encrypting a sub-range standalone equals slicing a larger range."""
    cipher = KeystreamCipher(KEY_A)
    big = cipher.encrypt(bytes(length + offset), tweak=start)
    small = cipher.encrypt(bytes(length), tweak=start + offset)
    assert big[offset:offset + length] == small
