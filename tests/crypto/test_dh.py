"""Diffie-Hellman exchange used by attestation."""

from __future__ import annotations

import pytest

from repro.crypto.dh import GENERATOR, PRIME, DiffieHellman


def test_shared_key_agreement():
    alice = DiffieHellman(private=123456789)
    bob = DiffieHellman(private=987654321)
    assert alice.shared_key(bob.public) == bob.shared_key(alice.public)


def test_distinct_privates_distinct_publics():
    assert DiffieHellman(private=3).public != DiffieHellman(private=5).public


def test_shared_key_is_256_bits():
    alice = DiffieHellman(private=111)
    bob = DiffieHellman(private=222)
    assert len(alice.shared_key(bob.public)) == 32


def test_rejects_out_of_range_private():
    with pytest.raises(ValueError):
        DiffieHellman(private=1)
    with pytest.raises(ValueError):
        DiffieHellman(private=PRIME - 1)


def test_rejects_degenerate_peer_values():
    alice = DiffieHellman(private=12345)
    for bad in (0, 1, PRIME - 1, PRIME):
        with pytest.raises(ValueError):
            alice.shared_key(bad)


def test_from_entropy_deterministic_source():
    source = lambda n: b"\x07" * n
    a = DiffieHellman.from_entropy(source)
    b = DiffieHellman.from_entropy(source)
    assert a.public == b.public


def test_group_parameters_sane():
    assert PRIME % 2 == 1
    assert GENERATOR == 2
    assert PRIME.bit_length() == 2048
