"""Measurement hashing and MAC primitives."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.constants import MAC_BITS
from repro.crypto.hashes import (
    constant_time_equal,
    keyed_mac,
    measure,
    truncated_mac,
)


def test_measure_deterministic():
    assert measure(b"a", b"b") == measure(b"a", b"b")


def test_measure_is_injective_on_chunking():
    """Length framing: ("ab","c") must differ from ("a","bc")."""
    assert measure(b"ab", b"c") != measure(b"a", b"bc")


def test_measure_differs_on_content():
    assert measure(b"image-v1") != measure(b"image-v2")


def test_keyed_mac_depends_on_key_and_data():
    assert keyed_mac(b"k1", b"data") != keyed_mac(b"k2", b"data")
    assert keyed_mac(b"k1", b"data") != keyed_mac(b"k1", b"datb")


def test_truncated_mac_width():
    mac = truncated_mac(b"key", b"block")
    assert 0 <= mac < (1 << MAC_BITS)


def test_truncated_mac_custom_width():
    assert 0 <= truncated_mac(b"key", b"block", bits=8) < 256


def test_constant_time_equal():
    assert constant_time_equal(b"same", b"same")
    assert not constant_time_equal(b"same", b"diff")


@given(st.binary(max_size=128), st.binary(max_size=128))
@settings(max_examples=50, deadline=None)
def test_mac_collision_resistance_smoke(a: bytes, b: bytes):
    """Distinct inputs virtually never collide at full width."""
    if a != b:
        assert keyed_mac(b"key", a) != keyed_mac(b"key", b)
