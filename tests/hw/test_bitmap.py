"""Enclave bitmap: bit bookkeeping, self-protection, reader view."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.constants import PAGE_SIZE
from repro.hw.bitmap import BitmapReader, EnclaveBitmap
from repro.hw.memory import PhysicalMemory


@pytest.fixture
def bitmap(plain_memory: PhysicalMemory) -> EnclaveBitmap:
    return EnclaveBitmap(plain_memory, base_paddr=PAGE_SIZE)


def test_base_must_be_page_aligned(plain_memory: PhysicalMemory):
    with pytest.raises(ValueError):
        EnclaveBitmap(plain_memory, base_paddr=100)


def test_set_and_clear(bitmap: EnclaveBitmap):
    assert not bitmap.is_enclave(100)
    bitmap.set_enclave(100, True)
    assert bitmap.is_enclave(100)
    bitmap.set_enclave(100, False)
    assert not bitmap.is_enclave(100)


def test_self_protection(bitmap: EnclaveBitmap):
    """The bitmap's own backing pages are marked as enclave memory."""
    own_frame = bitmap.base_paddr // PAGE_SIZE
    assert bitmap.is_enclave(own_frame)


def test_out_of_range_frame(bitmap: EnclaveBitmap):
    with pytest.raises(ValueError):
        bitmap.is_enclave(bitmap.memory.num_frames)
    with pytest.raises(ValueError):
        bitmap.set_enclave(-1, True)


def test_bits_are_independent(bitmap: EnclaveBitmap):
    """Adjacent frames share a byte; updates must not clobber siblings."""
    bitmap.set_enclave(40, True)
    bitmap.set_enclave(41, True)
    bitmap.set_enclave(40, False)
    assert not bitmap.is_enclave(40)
    assert bitmap.is_enclave(41)


def test_reader_is_read_only(bitmap: EnclaveBitmap):
    reader = BitmapReader(bitmap)
    bitmap.set_enclave(7, True)
    assert reader.is_enclave(7)
    assert not hasattr(reader, "set_enclave")


def test_bitmap_lives_in_real_memory(bitmap: EnclaveBitmap):
    """The bit is a real byte at BM_BASE + frame/8 — Fig. 5's retrieve."""
    bitmap.set_enclave(16, True)
    byte = bitmap.memory.read_raw(bitmap.base_paddr + 2, 1)[0]
    assert byte & 1


@given(frames=st.lists(st.integers(min_value=64, max_value=500),
                       unique=True, min_size=1, max_size=40))
@settings(max_examples=30, deadline=None)
def test_set_membership_property(frames: list[int]):
    memory = PhysicalMemory(4 * 1024 * 1024)
    bitmap = EnclaveBitmap(memory, base_paddr=0)
    for frame in frames:
        bitmap.set_enclave(frame, True)
    marked = set(bitmap.enclave_frames())
    protected = set(range((bitmap.size_bytes + PAGE_SIZE - 1) // PAGE_SIZE))
    assert marked == set(frames) | protected
