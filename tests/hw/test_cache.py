"""Cache models: functional set-associative cache and the latency model."""

from __future__ import annotations

import pytest

from repro.hw.cache import MemoryHierarchyModel, SetAssociativeCache


def test_too_small_cache_rejected():
    with pytest.raises(ValueError):
        SetAssociativeCache(size_kb=0)


def test_miss_then_hit():
    cache = SetAssociativeCache(size_kb=4, ways=2)
    assert not cache.access(0x1000)
    assert cache.access(0x1000)
    assert cache.stats.hits == 1 and cache.stats.misses == 1


def test_same_line_different_bytes_hit():
    cache = SetAssociativeCache(size_kb=4, ways=2)
    cache.access(0x1000)
    assert cache.access(0x1030)  # same 64B line


def test_lru_eviction():
    cache = SetAssociativeCache(size_kb=4, ways=2)  # 32 sets
    stride = cache.num_sets * cache.line_size
    cache.access(0)
    cache.access(stride)
    cache.access(0)              # 0 is MRU
    cache.access(2 * stride)     # evicts `stride`
    assert cache.contains(0)
    assert not cache.contains(stride)
    assert cache.stats.evictions == 1


def test_contains_does_not_touch_lru():
    cache = SetAssociativeCache(size_kb=4, ways=2)
    stride = cache.num_sets * cache.line_size
    cache.access(0)
    cache.access(stride)
    cache.contains(0)            # probe, not touch
    cache.access(2 * stride)     # evicts 0 (still LRU)
    assert not cache.contains(0)


def test_flush():
    cache = SetAssociativeCache(size_kb=4, ways=2)
    cache.access(0x40)
    cache.flush()
    assert cache.resident_lines() == 0


def test_hierarchy_latency_monotone_in_misses():
    model = MemoryHierarchyModel()
    assert (model.average_access_cycles(0.5, 0.8)
            > model.average_access_cycles(0.1, 0.2))


def test_encryption_adder_only_hits_dram_path():
    base = MemoryHierarchyModel()
    enc = base.with_encryption(5.7)
    # No DRAM traffic -> no adder visible.
    assert enc.average_access_cycles(0.0, 0.0) == base.average_access_cycles(0.0, 0.0)
    # Heavy DRAM traffic -> adder visible.
    assert enc.average_access_cycles(0.6, 0.9) > base.average_access_cycles(0.6, 0.9)
