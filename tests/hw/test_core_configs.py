"""Core configurations (Table III) and the cycle model."""

from __future__ import annotations

import pytest

from repro.hw.core import (
    CS_CORE,
    EMS_CONFIGS,
    EMS_MEDIUM,
    EMS_STRONG,
    EMS_WEAK,
    ems_config,
)


def test_table3_structure():
    assert EMS_WEAK.pipeline == "in-order" and EMS_WEAK.rob_entries == 0
    assert EMS_MEDIUM.pipeline == "ooo" and EMS_MEDIUM.rob_entries == 96
    assert EMS_STRONG.pipeline == "ooo" and EMS_STRONG.rob_entries == 128
    assert CS_CORE.fetch_width == 8 and CS_CORE.l2_kb == 1024


def test_frequencies():
    """Section VII-E: CS at 2.5 GHz, EMS at 750 MHz."""
    assert CS_CORE.freq_hz == 2.5e9
    for config in EMS_CONFIGS.values():
        assert config.freq_hz == 750e6


def test_ipc_ordering():
    assert EMS_WEAK.sustained_ipc < EMS_MEDIUM.sustained_ipc
    assert EMS_MEDIUM.sustained_ipc < EMS_STRONG.sustained_ipc
    assert EMS_STRONG.sustained_ipc < CS_CORE.sustained_ipc


def test_cycle_model():
    cycles = EMS_MEDIUM.cycles_for_instructions(1380)
    assert cycles == int(1380 / EMS_MEDIUM.sustained_ipc)
    assert EMS_MEDIUM.seconds_for_instructions(1380) == cycles / 750e6
    assert CS_CORE.cycles_from_seconds(1e-6) == 2500


def test_ems_config_lookup():
    assert ems_config("weak") is EMS_WEAK
    with pytest.raises(ValueError):
        ems_config("turbo")
