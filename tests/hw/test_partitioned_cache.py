"""CAT-style cache partitioning: prime+probe dies at the partition."""

from __future__ import annotations

import pytest

from repro.hw.cache import PartitionedCache


@pytest.fixture
def cache() -> PartitionedCache:
    cache = PartitionedCache(size_kb=64, ways=8)
    cache.allocate_ways("attacker", 4)
    cache.allocate_ways("victim", 4)
    return cache


def test_allocation_rules(cache: PartitionedCache):
    with pytest.raises(ValueError):
        cache.allocate_ways("attacker", 1)   # already allocated
    with pytest.raises(ValueError):
        cache.allocate_ways("third", 1)      # no ways left
    with pytest.raises(ValueError):
        cache.access("nobody", 0)            # unallocated domain


def test_hit_miss_within_domain(cache: PartitionedCache):
    assert not cache.access("victim", 0x1000)
    assert cache.access("victim", 0x1000)


def test_domain_capacity_is_its_ways(cache: PartitionedCache):
    """With 4 ways, a domain holds 4 conflicting lines, not 8."""
    stride = cache.num_sets * cache.line_size
    for i in range(4):
        cache.access("victim", i * stride)
    assert all(cache.contains("victim", i * stride) for i in range(4))
    cache.access("victim", 4 * stride)  # evicts the domain's own LRU
    assert not cache.contains("victim", 0)


def test_no_cross_domain_eviction(cache: PartitionedCache):
    """The prime+probe signal: victim activity must never evict the
    attacker's primed lines."""
    stride = cache.num_sets * cache.line_size
    primed = [i * stride + 0x40 for i in range(4)]
    for paddr in primed:
        cache.access("attacker", paddr & ~0x3F)
    # Victim hammers the same sets far beyond its capacity.
    for i in range(32):
        cache.access("victim", i * stride)
    for paddr in primed:
        assert cache.contains("attacker", paddr & ~0x3F)


def test_tags_are_domain_private(cache: PartitionedCache):
    """Even identical addresses don't hit across domains (no shared
    lines to flush+reload)."""
    cache.access("victim", 0x2000)
    assert not cache.contains("attacker", 0x2000)
    assert not cache.access("attacker", 0x2000)  # its own miss + fill
