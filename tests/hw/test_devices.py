"""EMS storage devices and DMA peripherals."""

from __future__ import annotations

import pytest

from repro.common.types import Permission
from repro.errors import DMAViolation, HardwareFault
from repro.hw.devices import (
    EEPROM,
    AcceleratorSpec,
    DMAEngine,
    EFuse,
    GemminiAccelerator,
    NICController,
    PrivateFlash,
)
from repro.hw.fabric import AddressPartition, IHub, WhitelistEntry
from repro.hw.memory import PhysicalMemory


def test_efuse_burn_once():
    fuse = EFuse()
    fuse.burn("EK", b"e" * 32)
    assert fuse.read("EK") == b"e" * 32
    with pytest.raises(HardwareFault):
        fuse.burn("EK", b"x" * 32)


def test_efuse_lock():
    fuse = EFuse()
    fuse.lock()
    with pytest.raises(HardwareFault):
        fuse.burn("SK", b"s" * 32)


def test_efuse_unprogrammed_read_faults():
    with pytest.raises(HardwareFault):
        EFuse().read("missing")


def test_flash_store_load_tamper():
    flash = PrivateFlash()
    flash.store("img", b"runtime-image")
    assert flash.load("img") == b"runtime-image"
    flash.tamper("img", 3, 0x00)
    assert flash.load("img") != b"runtime-image"
    with pytest.raises(HardwareFault):
        flash.load("other")


def test_eeprom():
    rom = EEPROM()
    rom.write("hash", b"h" * 32)
    assert rom.read("hash") == b"h" * 32
    with pytest.raises(HardwareFault):
        rom.read("nope")


@pytest.fixture
def dma_setup():
    memory = PhysicalMemory(1024 * 1024)
    ihub = IHub(AddressPartition(0, 1024 * 1024, 1024 * 1024, 0))
    ihub.configure_dma_whitelist(
        "dev", [WhitelistEntry(0x10000, 0x4000, Permission.RW)], from_ems=True)
    return memory, ihub, DMAEngine("dev", ihub, memory)


def test_dma_moves_data(dma_setup):
    memory, _, dma = dma_setup
    dma.write(0x10000, b"payload")
    assert memory.read(0x10000, 7) == b"payload"
    assert dma.read(0x10000, 7) == b"payload"
    assert dma.stats.transfers == 2


def test_dma_blocked_outside_whitelist(dma_setup):
    _, _, dma = dma_setup
    with pytest.raises(DMAViolation):
        dma.read(0x20000, 16)


def test_gemmini_throughput_model(dma_setup):
    _, _, dma = dma_setup
    accel = GemminiAccelerator(dma, AcceleratorSpec(), utilization=0.5)
    # 16x16 PEs at 750 MHz, 50% utilized -> 96 GMAC/s.
    assert accel.compute_seconds(96e9) == pytest.approx(1.0)


def test_gemmini_run_layer_goes_through_dma(dma_setup):
    memory, _, dma = dma_setup
    accel = GemminiAccelerator(dma)
    memory.write(0x10000, b"w" * 64)
    seconds = accel.run_layer(0x10000, 64, 0x11000, 64, macs=1e6)
    assert seconds > 0
    assert dma.stats.bytes_moved == 128


def test_gemmini_layer_blocked_outside_region(dma_setup):
    _, _, dma = dma_setup
    accel = GemminiAccelerator(dma)
    with pytest.raises(DMAViolation):
        accel.run_layer(0x20000, 64, 0x21000, 64, macs=1e6)


def test_nic_wire_time(dma_setup):
    _, _, dma = dma_setup
    nic = NICController(dma, line_rate_gbps=10.0)
    assert nic.wire_seconds(1.25e9) == pytest.approx(1.0)


def test_nic_transmit_receive(dma_setup):
    memory, _, dma = dma_setup
    nic = NICController(dma)
    memory.write(0x10000, b"pkt")
    assert nic.transmit(0x10000, 3) > 0
    assert nic.receive(0x10000, b"rx-payload") > 0
    assert memory.read(0x10000, 10) == b"rx-payload"
