"""TLB: lookup/insert, LRU, selective flushes, stats."""

from __future__ import annotations

import pytest

from repro.common.types import Permission
from repro.hw.tlb import TLB, TLBEntry


def entry(vpn: int, ppn: int = 0, asid: int = 1, checked: bool = True) -> TLBEntry:
    return TLBEntry(vpn=vpn, ppn=ppn or vpn + 1000, perm=Permission.RW,
                    keyid=0, asid=asid, checked=checked)


def test_entries_must_divide_into_ways():
    with pytest.raises(ValueError):
        TLB(entries=30, ways=4)


def test_miss_then_hit():
    tlb = TLB(entries=16, ways=4)
    assert tlb.lookup(1, 0x10) is None
    tlb.insert(entry(0x10))
    hit = tlb.lookup(1, 0x10)
    assert hit is not None and hit.ppn == 0x10 + 1000
    assert tlb.stats.misses == 1 and tlb.stats.hits == 1


def test_asid_disambiguation():
    tlb = TLB(entries=16, ways=4)
    tlb.insert(entry(0x10, ppn=111, asid=1))
    tlb.insert(entry(0x10, ppn=222, asid=2))
    assert tlb.lookup(1, 0x10).ppn == 111
    assert tlb.lookup(2, 0x10).ppn == 222


def test_lru_eviction_within_set():
    tlb = TLB(entries=8, ways=2)  # 4 sets
    # Three VPNs mapping to the same set (vpn % 4 == 0).
    tlb.insert(entry(0))
    tlb.insert(entry(4))
    tlb.lookup(1, 0)          # make vpn 0 most recent
    tlb.insert(entry(8))      # evicts vpn 4 (LRU)
    assert tlb.lookup(1, 0) is not None
    assert tlb.lookup(1, 4) is None
    assert tlb.lookup(1, 8) is not None


def test_insert_replaces_same_key():
    tlb = TLB(entries=8, ways=2)
    tlb.insert(entry(0, ppn=1))
    tlb.insert(entry(0, ppn=2))
    assert tlb.entry_count() == 1
    assert tlb.lookup(1, 0).ppn == 2


def test_flush_all():
    tlb = TLB(entries=16, ways=4)
    for vpn in range(6):
        tlb.insert(entry(vpn))
    dropped = tlb.flush_all()
    assert dropped == 6
    assert tlb.entry_count() == 0
    assert tlb.stats.full_flushes == 1


def test_flush_asid_selective():
    tlb = TLB(entries=16, ways=4)
    tlb.insert(entry(1, asid=1))
    tlb.insert(entry(2, asid=2))
    assert tlb.flush_asid(1) == 1
    assert tlb.lookup(2, 2) is not None
    assert tlb.lookup(1, 1) is None


def test_flush_frame_selective():
    """Bitmap-change shootdown: drop entries translating to one frame."""
    tlb = TLB(entries=16, ways=4)
    tlb.insert(entry(1, ppn=500))
    tlb.insert(entry(2, ppn=501))
    assert tlb.flush_frame(500) == 1
    assert tlb.lookup(1, 1) is None
    assert tlb.lookup(1, 2) is not None
