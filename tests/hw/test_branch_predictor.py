"""Branch predictor isolation: branch shadowing with/without flushes."""

from __future__ import annotations

from repro.attacks.result import outcome_from_accuracy, recovery_accuracy
from repro.common.types import AttackOutcome
from repro.hw.branch_predictor import (
    BranchPredictor,
    branch_shadow_probe,
    run_victim_branches,
)

SECRET = [1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 0, 1]


def test_predictor_learns_directions():
    predictor = BranchPredictor(flush_on_switch=False)
    for _ in range(3):
        predictor.record_branch(0x400, taken=True)
        predictor.record_branch(0x500, taken=False)
    assert predictor.predict(0x400) is True
    assert predictor.predict(0x500) is False


def test_counters_saturate():
    predictor = BranchPredictor(flush_on_switch=False)
    for _ in range(10):
        predictor.record_branch(0x400, taken=True)
    predictor.record_branch(0x400, taken=False)  # one flip
    assert predictor.predict(0x400) is True      # still biased taken


def test_btb_capacity_bounded():
    predictor = BranchPredictor(btb_entries=4, flush_on_switch=False)
    for i in range(10):
        predictor.record_branch(0x1000 + 16 * i, taken=True)
    assert predictor.btb_occupancy() <= 4


def test_branch_shadowing_leaks_without_flush():
    """BranchScope/branch-shadowing: shared tables read the secret out."""
    predictor = BranchPredictor(flush_on_switch=False)
    pcs = run_victim_branches(predictor, 0x10000, SECRET)
    # context switch to the attacker — tables NOT flushed
    predictor.on_context_switch()
    recovered = [1 if taken else 0
                 for taken in branch_shadow_probe(predictor, pcs)]
    accuracy = recovery_accuracy(SECRET, recovered)
    assert outcome_from_accuracy(accuracy) is AttackOutcome.LEAKED


def test_flush_on_switch_defends():
    predictor = BranchPredictor(flush_on_switch=True)
    pcs = run_victim_branches(predictor, 0x10000, SECRET)
    predictor.on_context_switch()  # tables invalidated here
    predictions = branch_shadow_probe(predictor, pcs)
    # Post-flush the predictor returns its reset state for everything:
    # no victim-dependent variation survives.
    assert len(set(predictions)) == 1
    recovered = [1 if taken else 0 for taken in predictions]
    accuracy = recovery_accuracy(SECRET, recovered)
    assert outcome_from_accuracy(accuracy) is not AttackOutcome.LEAKED
    assert predictor.stats.flushes == 1


def test_flush_does_not_break_later_training():
    predictor = BranchPredictor(flush_on_switch=True)
    predictor.on_context_switch()
    for _ in range(3):
        predictor.record_branch(0x800, taken=True)
    assert predictor.predict(0x800) is True
