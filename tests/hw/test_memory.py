"""Physical memory: bounds, frames, KeyID routing, raw vs bus views."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.constants import PAGE_SIZE
from repro.errors import PhysicalAddressError
from repro.hw.memory import PhysicalMemory


def test_size_must_be_page_multiple():
    with pytest.raises(ValueError):
        PhysicalMemory(PAGE_SIZE + 1)
    with pytest.raises(ValueError):
        PhysicalMemory(0)


def test_out_of_range_access_faults(plain_memory: PhysicalMemory):
    with pytest.raises(PhysicalAddressError):
        plain_memory.read(plain_memory.size_bytes, 1)
    with pytest.raises(PhysicalAddressError):
        plain_memory.write(plain_memory.size_bytes - 1, b"ab")


def test_plain_roundtrip(plain_memory: PhysicalMemory):
    plain_memory.write(0x1234, b"hello")
    assert plain_memory.read(0x1234, 5) == b"hello"


def test_cross_page_write_and_read(plain_memory: PhysicalMemory):
    data = bytes(range(100)) * 100  # 10 KB, spans 3 frames
    plain_memory.write(PAGE_SIZE - 50, data)
    assert plain_memory.read(PAGE_SIZE - 50, len(data)) == data


def test_untouched_memory_reads_zero(plain_memory: PhysicalMemory):
    assert plain_memory.read(0x4000, 16) == bytes(16)


def test_keyed_write_is_ciphertext_on_dram(memory: PhysicalMemory):
    memory.encryption_engine.program_key(3, b"k" * 32, from_ems=True)
    memory.write(0x3000, b"confidential", keyid=3)
    assert memory.read_raw(0x3000, 12) != b"confidential"
    assert memory.read(0x3000, 12, keyid=3) == b"confidential"


def test_wrong_keyid_reads_garbage(memory: PhysicalMemory):
    memory.encryption_engine.program_key(3, b"k" * 32, from_ems=True)
    memory.encryption_engine.program_key(4, b"q" * 32, from_ems=True)
    memory.write(0x3000, b"confidential", keyid=3)
    assert memory.read(0x3000, 12, keyid=4) != b"confidential"


def test_host_keyid_is_plaintext(memory: PhysicalMemory):
    memory.write(0x5000, b"public data", keyid=0)
    assert memory.read_raw(0x5000, 11) == b"public data"


def test_zero_frame(memory: PhysicalMemory):
    memory.write_raw(2 * PAGE_SIZE, b"\xff" * PAGE_SIZE)
    memory.zero_frame(2)
    assert memory.read_raw(2 * PAGE_SIZE, PAGE_SIZE) == bytes(PAGE_SIZE)


def test_write_frame_requires_full_page(memory: PhysicalMemory):
    with pytest.raises(ValueError):
        memory.write_frame(1, b"short")


def test_frame_roundtrip_keyed(memory: PhysicalMemory):
    memory.encryption_engine.program_key(9, b"z" * 32, from_ems=True)
    payload = bytes(range(256)) * 16
    memory.write_frame(3, payload, keyid=9)
    assert memory.read_frame(3, keyid=9) == payload


@given(addr=st.integers(min_value=0, max_value=8 * 1024 * 1024 - 256),
       data=st.binary(min_size=1, max_size=256))
@settings(max_examples=50, deadline=None)
def test_roundtrip_property(addr: int, data: bytes):
    mem = PhysicalMemory(8 * 1024 * 1024)
    mem.write(addr, data)
    assert mem.read(addr, len(data)) == data
