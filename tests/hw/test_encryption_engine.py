"""Memory encryption engine: key slots, EMS gating, integrity MACs."""

from __future__ import annotations

import pytest

from repro.common.constants import PAGE_SIZE
from repro.errors import IntegrityViolation, IsolationViolation, KeySlotExhausted
from repro.hw.encryption_engine import MemoryEncryptionEngine
from repro.hw.memory import PhysicalMemory


def test_only_ems_programs_keys():
    engine = MemoryEncryptionEngine()
    with pytest.raises(IsolationViolation):
        engine.program_key(1, b"k" * 32, from_ems=False)
    with pytest.raises(IsolationViolation):
        engine.release_key(1, from_ems=False)


def test_keyid_zero_reserved():
    engine = MemoryEncryptionEngine()
    with pytest.raises(ValueError):
        engine.program_key(0, b"k" * 32, from_ems=True)


def test_slot_exhaustion():
    engine = MemoryEncryptionEngine(key_slots=2)
    engine.program_key(1, b"a" * 32, from_ems=True)
    engine.program_key(2, b"b" * 32, from_ems=True)
    with pytest.raises(KeySlotExhausted):
        engine.program_key(3, b"c" * 32, from_ems=True)
    engine.release_key(1, from_ems=True)
    engine.program_key(3, b"c" * 32, from_ems=True)  # now fits
    assert engine.slots_in_use() == 2


def test_reprogramming_same_keyid_is_not_a_new_slot():
    engine = MemoryEncryptionEngine(key_slots=1)
    engine.program_key(1, b"a" * 32, from_ems=True)
    engine.program_key(1, b"b" * 32, from_ems=True)
    assert engine.slots_in_use() == 1


def test_physical_tamper_detected(memory: PhysicalMemory):
    """Cold-boot style raw modification trips the MAC on the next read."""
    engine = memory.encryption_engine
    engine.program_key(5, b"k" * 32, from_ems=True)
    memory.write(0x2000, b"A" * 64, keyid=5)
    raw = bytearray(memory.read_raw(0x2000, 64))
    raw[0] ^= 0xFF
    memory.write_raw(0x2000, bytes(raw))
    with pytest.raises(IntegrityViolation):
        memory.read(0x2000, 64, keyid=5)


def test_host_data_not_integrity_checked(memory: PhysicalMemory):
    memory.write(0x2000, b"host data here!!", keyid=0)
    raw = bytearray(memory.read_raw(0x2000, 16))
    raw[3] ^= 0xFF
    memory.write_raw(0x2000, bytes(raw))
    memory.read(0x2000, 16, keyid=0)  # no exception: host path unchecked


def test_integrity_can_be_disabled():
    mem = PhysicalMemory(1024 * 1024)
    mem.encryption_engine = MemoryEncryptionEngine(integrity_enabled=False)
    mem.encryption_engine.program_key(5, b"k" * 32, from_ems=True)
    mem.write(0x1000, b"B" * 64, keyid=5)
    raw = bytearray(mem.read_raw(0x1000, 64))
    raw[0] ^= 0xFF
    mem.write_raw(0x1000, bytes(raw))
    mem.read(0x1000, 64, keyid=5)  # garbage, but no violation raised


def test_host_overwrite_drops_stale_enclave_macs(memory: PhysicalMemory):
    """A frame returned to the host must not trip old MACs for the host."""
    engine = memory.encryption_engine
    engine.program_key(5, b"k" * 32, from_ems=True)
    memory.write(0x3000, b"C" * 64, keyid=5)
    memory.write(0x3000, b"host takes over." * 4, keyid=0)
    assert memory.read(0x3000, 64, keyid=0) == b"host takes over." * 4


def test_zero_frame_drops_macs(memory: PhysicalMemory):
    engine = memory.encryption_engine
    engine.program_key(6, b"k" * 32, from_ems=True)
    memory.write(4 * PAGE_SIZE, b"D" * 64, keyid=6)
    memory.zero_frame(4)
    # Freshly zeroed frame readable under the key without a violation.
    memory.read(4 * PAGE_SIZE, 64, keyid=6)


def test_unprogrammed_keyid_decrypts_to_garbage(memory: PhysicalMemory):
    memory.write(0x6000, b"plaintext-bytes!", keyid=0)
    out = memory.read(0x6000, 16, keyid=777)  # never programmed
    assert out != b"plaintext-bytes!"
