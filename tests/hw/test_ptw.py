"""Page-table walker: the Fig. 5 pipeline — TLB, walk, bitmap check,
permissions, A/D bits, enclave-mode bypass."""

from __future__ import annotations

import itertools

import pytest

from repro.common.constants import PAGE_SIZE
from repro.common.types import AccessType, Permission
from repro.errors import AccessPermissionError, BitmapViolation, PageFault
from repro.hw.bitmap import BitmapReader, EnclaveBitmap
from repro.hw.memory import PhysicalMemory
from repro.hw.page_table import PageTable, PageTableWalker
from repro.hw.tlb import TLB


@pytest.fixture
def setup(plain_memory: PhysicalMemory):
    bitmap = EnclaveBitmap(plain_memory, base_paddr=0)
    counter = itertools.count(10)
    table = PageTable(plain_memory, next(counter),
                      allocate_frame=lambda: next(counter), asid=1)
    walker = PageTableWalker(plain_memory, TLB(entries=16, ways=4),
                             BitmapReader(bitmap))
    return plain_memory, bitmap, table, walker


def test_basic_translation(setup):
    _, _, table, walker = setup
    table.map(0x100, 500, Permission.RW)
    result = walker.translate(table, 0x100 * PAGE_SIZE + 0x20, AccessType.READ)
    assert result.paddr == 500 * PAGE_SIZE + 0x20
    assert not result.tlb_hit and result.bitmap_checked


def test_tlb_hit_skips_bitmap_check(setup):
    _, _, table, walker = setup
    table.map(0x100, 500, Permission.RW)
    walker.translate(table, 0x100 * PAGE_SIZE, AccessType.READ)
    second = walker.translate(table, 0x100 * PAGE_SIZE + 8, AccessType.READ)
    assert second.tlb_hit and not second.bitmap_checked
    assert second.cycles < 5


def test_unmapped_faults(setup):
    _, _, table, walker = setup
    with pytest.raises(PageFault):
        walker.translate(table, 0x123 * PAGE_SIZE, AccessType.READ)
    assert walker.stats.page_faults == 1


def test_permission_enforced(setup):
    _, _, table, walker = setup
    table.map(0x100, 500, Permission.READ)
    with pytest.raises(AccessPermissionError):
        walker.translate(table, 0x100 * PAGE_SIZE, AccessType.WRITE)
    with pytest.raises(AccessPermissionError):
        walker.translate(table, 0x100 * PAGE_SIZE, AccessType.EXECUTE)


def test_permission_enforced_on_tlb_hit(setup):
    _, _, table, walker = setup
    table.map(0x100, 500, Permission.READ)
    walker.translate(table, 0x100 * PAGE_SIZE, AccessType.READ)
    with pytest.raises(AccessPermissionError):
        walker.translate(table, 0x100 * PAGE_SIZE, AccessType.WRITE)


def test_bitmap_violation(setup):
    """Non-enclave access to an enclave frame must fault (Fig. 5)."""
    _, bitmap, table, walker = setup
    table.map(0x100, 500, Permission.RW)
    bitmap.set_enclave(500, True)
    with pytest.raises(BitmapViolation):
        walker.translate(table, 0x100 * PAGE_SIZE, AccessType.READ)
    assert walker.stats.bitmap_violations == 1


def test_enclave_mode_bypasses_bitmap(setup):
    """IS_ENCLAVE set: the enclave may touch enclave frames."""
    _, bitmap, table, walker = setup
    table.map(0x100, 500, Permission.RW)
    bitmap.set_enclave(500, True)
    walker.is_enclave_mode = True
    result = walker.translate(table, 0x100 * PAGE_SIZE, AccessType.READ)
    assert result.ppn == 500 and not result.bitmap_checked


def test_stale_tlb_entry_closed_by_frame_flush(setup):
    """The EMCall shootdown path: after a bitmap change, the flushed
    entry cannot be used to slip past the check."""
    _, bitmap, table, walker = setup
    table.map(0x100, 500, Permission.RW)
    walker.translate(table, 0x100 * PAGE_SIZE, AccessType.READ)  # cached
    bitmap.set_enclave(500, True)
    walker.tlb.flush_frame(500)
    with pytest.raises(BitmapViolation):
        walker.translate(table, 0x100 * PAGE_SIZE, AccessType.READ)


def test_walker_sets_accessed_and_dirty(setup):
    """The A/D updates are the controlled-channel observable on
    OS-owned tables — they must really land in the PTE."""
    _, _, table, walker = setup
    table.map(0x100, 500, Permission.RW)
    walker.translate(table, 0x100 * PAGE_SIZE, AccessType.READ)
    pte = table.lookup(0x100)
    assert pte.accessed and not pte.dirty
    walker.translate(table, 0x100 * PAGE_SIZE, AccessType.WRITE)
    assert table.lookup(0x100).dirty


def test_no_bitmap_reader_disables_check(setup):
    plain_memory, bitmap, table, _ = setup
    walker = PageTableWalker(plain_memory, TLB(entries=16, ways=4), None)
    table.map(0x100, 500, Permission.RW)
    bitmap.set_enclave(500, True)
    result = walker.translate(table, 0x100 * PAGE_SIZE, AccessType.READ)
    assert not result.bitmap_checked  # ablation: check removed


def test_walk_cycle_accounting(setup):
    _, _, table, walker = setup
    table.map(0x100, 500, Permission.RW)
    result = walker.translate(table, 0x100 * PAGE_SIZE, AccessType.READ)
    expected = (PageTableWalker.WALK_STEP_CYCLES * 3
                + PageTableWalker.BITMAP_CHECK_CYCLES)
    assert result.cycles == expected
