"""Mailbox: queueing, exclusive response binding, replay rejection."""

from __future__ import annotations

import pytest

from repro.common.packets import PrimitiveRequest, PrimitiveResponse, ResponseStatus
from repro.common.types import Primitive, Privilege
from repro.errors import MailboxError
from repro.hw.mailbox import Mailbox


def req(request_id: int) -> PrimitiveRequest:
    return PrimitiveRequest(request_id=request_id, primitive=Primitive.EALLOC,
                            enclave_id=1, privilege=Privilege.USER)


def resp(request_id: int) -> PrimitiveResponse:
    return PrimitiveResponse(request_id=request_id, status=ResponseStatus.OK)


def test_request_flow_and_irq():
    box = Mailbox()
    box.push_request(req(1))
    assert box.irq_pending
    fetched = box.fetch_requests()
    assert [r.request_id for r in fetched] == [1]
    assert not box.irq_pending


def test_response_binding():
    box = Mailbox()
    box.push_request(req(1))
    box.fetch_requests()
    assert box.poll_response(1) is None  # still pending
    box.push_response(resp(1))
    got = box.poll_response(1)
    assert got is not None and got.request_id == 1


def test_foreign_request_id_rejected():
    """A requester cannot fish for responses it did not issue."""
    box = Mailbox()
    box.push_request(req(1))
    with pytest.raises(MailboxError):
        box.poll_response(999)


def test_response_collected_once():
    box = Mailbox()
    box.push_request(req(1))
    box.fetch_requests()
    box.push_response(resp(1))
    assert box.poll_response(1) is not None
    with pytest.raises(MailboxError):
        box.poll_response(1)  # already collected — replay impossible


def test_duplicate_request_id_rejected():
    box = Mailbox()
    box.push_request(req(1))
    with pytest.raises(MailboxError):
        box.push_request(req(1))


def test_response_for_unknown_request_rejected():
    box = Mailbox()
    with pytest.raises(MailboxError):
        box.push_response(resp(42))


def test_duplicate_response_rejected():
    box = Mailbox()
    box.push_request(req(1))
    box.fetch_requests()
    box.push_response(resp(1))
    with pytest.raises(MailboxError):
        box.push_response(resp(1))


def test_capacity_limit():
    box = Mailbox(capacity=2)
    box.push_request(req(1))
    box.push_request(req(2))
    with pytest.raises(MailboxError):
        box.push_request(req(3))


def test_fetch_max_count():
    box = Mailbox()
    for i in range(5):
        box.push_request(req(i))
    assert len(box.fetch_requests(max_count=3)) == 3
    assert box.pending_request_count() == 2


def test_response_queue_capacity_enforced():
    """push_response honours the same capacity limit as push_request."""
    box = Mailbox(capacity=2)
    box.push_request(req(1))
    box.push_request(req(2))
    box.fetch_requests()
    box.push_request(req(3))
    box.fetch_requests()
    box.push_response(resp(1))
    box.push_response(resp(2))
    with pytest.raises(MailboxError):
        box.push_response(resp(3))
    assert box.stats.response_rejects == 1
    # Collecting a response frees a slot; the retry then lands.
    assert box.poll_response(1) is not None
    box.push_response(resp(3))
    assert box.poll_response(3) is not None
    assert box.stats.response_rejects == 1


def test_partial_drain_keeps_irq_asserted():
    """The IRQ line tracks queue occupancy, not fetch attempts."""
    box = Mailbox()
    for i in range(4):
        box.push_request(req(i))
    assert box.irq_pending
    box.fetch_requests(max_count=2)
    # Two requests are still queued: the line must stay asserted so the
    # EMS re-enters its drain loop instead of stranding the tail.
    assert box.irq_pending
    box.fetch_requests(max_count=2)
    assert not box.irq_pending
    # A full drain of an already-empty queue keeps it deasserted.
    box.fetch_requests()
    assert not box.irq_pending
