"""IOMMU: EMS-only management, translation, IOTLB invalidation."""

from __future__ import annotations

import pytest

from repro.common.constants import PAGE_SIZE
from repro.common.types import AccessType, Permission
from repro.errors import DMAViolation, IsolationViolation
from repro.hw.iommu import IOMMU, IOMMUDevice
from repro.hw.memory import PhysicalMemory


@pytest.fixture
def iommu() -> IOMMU:
    return IOMMU(iotlb_entries=4)


def test_only_ems_manages_tables(iommu: IOMMU):
    with pytest.raises(IsolationViolation):
        iommu.map("gpu", 0, 100, Permission.RW, 1, from_ems=False)
    with pytest.raises(IsolationViolation):
        iommu.unmap("gpu", 0, from_ems=False)
    with pytest.raises(IsolationViolation):
        iommu.invalidate_iotlb("gpu", from_ems=False)
    with pytest.raises(IsolationViolation):
        iommu.clear_device("gpu", from_ems=False)


def test_translate_mapped(iommu: IOMMU):
    iommu.map("gpu", 5, 200, Permission.RW, keyid=7, from_ems=True)
    paddr, keyid = iommu.translate("gpu", 5 * PAGE_SIZE + 0x10,
                                   AccessType.READ)
    assert paddr == 200 * PAGE_SIZE + 0x10 and keyid == 7


def test_unmapped_iova_faults(iommu: IOMMU):
    with pytest.raises(DMAViolation):
        iommu.translate("gpu", 0x1000, AccessType.READ)
    assert iommu.stats.faults == 1


def test_permission_enforced(iommu: IOMMU):
    iommu.map("gpu", 0, 100, Permission.READ, keyid=1, from_ems=True)
    iommu.translate("gpu", 0, AccessType.READ)
    with pytest.raises(DMAViolation):
        iommu.translate("gpu", 0, AccessType.WRITE)


def test_tables_are_per_device(iommu: IOMMU):
    iommu.map("gpu", 0, 100, Permission.RW, keyid=1, from_ems=True)
    with pytest.raises(DMAViolation):
        iommu.translate("nic", 0, AccessType.READ)


def test_iotlb_hits(iommu: IOMMU):
    iommu.map("gpu", 0, 100, Permission.RW, keyid=1, from_ems=True)
    iommu.translate("gpu", 0, AccessType.READ)
    iommu.translate("gpu", 8, AccessType.READ)
    assert iommu.stats.iotlb_hits == 1


def test_unmap_invalidates_iotlb(iommu: IOMMU):
    """No stale-IOTLB window: unmap immediately kills cached entries."""
    iommu.map("gpu", 0, 100, Permission.RW, keyid=1, from_ems=True)
    iommu.translate("gpu", 0, AccessType.READ)  # cached
    iommu.unmap("gpu", 0, from_ems=True)
    with pytest.raises(DMAViolation):
        iommu.translate("gpu", 0, AccessType.READ)


def test_iotlb_capacity_eviction(iommu: IOMMU):
    for iovn in range(6):
        iommu.map("gpu", iovn, 100 + iovn, Permission.RW, keyid=1,
                  from_ems=True)
        iommu.translate("gpu", iovn * PAGE_SIZE, AccessType.READ)
    # Capacity 4: early entries evicted, but translation still works
    # through the tables.
    paddr, _ = iommu.translate("gpu", 0, AccessType.READ)
    assert paddr == 100 * PAGE_SIZE


def test_device_moves_data_through_translation():
    memory = PhysicalMemory(4 * 1024 * 1024)
    iommu = IOMMU()
    iommu.map("gpu", 0, 50, Permission.RW, keyid=0, from_ems=True)
    device = IOMMUDevice("gpu", iommu, memory)
    device.write(0x20, b"gpu payload")
    assert device.read(0x20, 11) == b"gpu payload"
    assert memory.read(50 * PAGE_SIZE + 0x20, 11) == b"gpu payload"
