"""iHub: unidirectional isolation and the DMA whitelist."""

from __future__ import annotations

import pytest

from repro.common.types import AccessType, Permission
from repro.errors import DMAViolation, IsolationViolation
from repro.hw.fabric import AddressPartition, IHub, WhitelistEntry

PART = AddressPartition(cs_base=0, cs_size=0x100000,
                        ems_base=0x100000, ems_size=0x40000)


@pytest.fixture
def ihub() -> IHub:
    return IHub(PART)


def test_partition_membership():
    assert PART.in_cs(0x50000, 16)
    assert not PART.in_cs(0x100000, 1)
    assert PART.in_ems(0x100000, 16)
    assert not PART.in_ems(0x50000)


def test_cs_cannot_touch_ems_space(ihub: IHub):
    with pytest.raises(IsolationViolation):
        ihub.check_cs_access(0x100000, 8)
    assert ihub.stats.isolation_blocks == 1


def test_cs_access_within_cs_ok(ihub: IHub):
    ihub.check_cs_access(0x1000, 8)


def test_ems_reaches_everything(ihub: IHub):
    """Unidirectional: EMS masters may access CS and EMS space alike."""
    ihub.check_ems_access(0x1000, 8)
    ihub.check_ems_access(0x100000, 8)


def test_dma_whitelist_only_configurable_by_ems(ihub: IHub):
    entry = WhitelistEntry(base=0x2000, size=0x1000, perm=Permission.RW)
    with pytest.raises(IsolationViolation):
        ihub.configure_dma_whitelist("nic", [entry], from_ems=False)
    with pytest.raises(IsolationViolation):
        ihub.clear_dma_whitelist("nic", from_ems=False)


def test_dma_inside_region_allowed(ihub: IHub):
    ihub.configure_dma_whitelist(
        "nic", [WhitelistEntry(0x2000, 0x1000, Permission.RW)], from_ems=True)
    ihub.check_dma("nic", 0x2000, 0x800, AccessType.READ)
    ihub.check_dma("nic", 0x2800, 0x800, AccessType.WRITE)


def test_dma_outside_region_discarded(ihub: IHub):
    ihub.configure_dma_whitelist(
        "nic", [WhitelistEntry(0x2000, 0x1000, Permission.RW)], from_ems=True)
    with pytest.raises(DMAViolation):
        ihub.check_dma("nic", 0x3000, 16, AccessType.READ)  # just past end
    with pytest.raises(DMAViolation):
        ihub.check_dma("nic", 0x2F00, 0x200, AccessType.READ)  # straddles


def test_dma_permission_enforced(ihub: IHub):
    ihub.configure_dma_whitelist(
        "nic", [WhitelistEntry(0x2000, 0x1000, Permission.READ)], from_ems=True)
    ihub.check_dma("nic", 0x2000, 16, AccessType.READ)
    with pytest.raises(DMAViolation):
        ihub.check_dma("nic", 0x2000, 16, AccessType.WRITE)


def test_unlisted_device_blocked(ihub: IHub):
    with pytest.raises(DMAViolation):
        ihub.check_dma("rogue", 0x2000, 16, AccessType.READ)


def test_whitelist_is_per_device(ihub: IHub):
    ihub.configure_dma_whitelist(
        "nic", [WhitelistEntry(0x2000, 0x1000, Permission.RW)], from_ems=True)
    with pytest.raises(DMAViolation):
        ihub.check_dma("gpu", 0x2000, 16, AccessType.READ)


def test_clear_whitelist(ihub: IHub):
    ihub.configure_dma_whitelist(
        "nic", [WhitelistEntry(0x2000, 0x1000, Permission.RW)], from_ems=True)
    ihub.clear_dma_whitelist("nic", from_ems=True)
    with pytest.raises(DMAViolation):
        ihub.check_dma("nic", 0x2000, 16, AccessType.READ)
