"""Page tables: PTE encoding, mapping, lookup, flags, enumeration."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.constants import PAGE_SIZE
from repro.common.types import Permission
from repro.errors import PageFault
from repro.hw.memory import PhysicalMemory
from repro.hw.page_table import DecodedPTE, PageTable, encode_pte


def make_table(memory: PhysicalMemory, keyid: int = 0) -> PageTable:
    counter = itertools.count(10)
    if keyid:
        memory.encryption_engine.program_key(keyid, b"t" * 32, from_ems=True)
    return PageTable(memory, root_frame=next(counter),
                     allocate_frame=lambda: next(counter),
                     table_keyid=keyid, asid=1)


def test_pte_encode_decode_roundtrip():
    word = encode_pte(ppn=0x12345, perm=Permission.RX, keyid=42,
                      accessed=True, dirty=False)
    pte = DecodedPTE.from_word(word)
    assert pte.valid and pte.ppn == 0x12345 and pte.keyid == 42
    assert pte.perm == Permission.RX and pte.accessed and not pte.dirty


def test_map_and_lookup(memory: PhysicalMemory):
    table = make_table(memory)
    table.map(vpn=0x100, ppn=77, perm=Permission.RW, keyid=0)
    pte = table.lookup(0x100)
    assert pte is not None and pte.ppn == 77 and pte.perm == Permission.RW


def test_lookup_unmapped_returns_none(memory: PhysicalMemory):
    assert make_table(memory).lookup(0x200) is None


def test_unmap(memory: PhysicalMemory):
    table = make_table(memory)
    table.map(0x100, 77, Permission.RW)
    assert table.unmap(0x100)
    assert table.lookup(0x100) is None
    assert not table.unmap(0x100)


def test_widely_spread_vpns(memory: PhysicalMemory):
    """Distinct level-2 indices force full intermediate-node builds."""
    table = make_table(memory)
    vpns = [0x1, 0x10000, 0x7FFFF, 0x40000]
    for i, vpn in enumerate(vpns):
        table.map(vpn, 100 + i, Permission.READ)
    for i, vpn in enumerate(vpns):
        assert table.lookup(vpn).ppn == 100 + i


def test_set_flags(memory: PhysicalMemory):
    table = make_table(memory)
    table.map(0x100, 77, Permission.RW)
    table.set_flags(0x100, accessed=True, dirty=True)
    pte = table.lookup(0x100)
    assert pte.accessed and pte.dirty
    table.set_flags(0x100, accessed=False)
    assert not table.lookup(0x100).accessed


def test_set_flags_unmapped_faults(memory: PhysicalMemory):
    with pytest.raises(PageFault):
        make_table(memory).set_flags(0x100, accessed=True)


def test_mapped_vpns_enumeration(memory: PhysicalMemory):
    table = make_table(memory)
    vpns = {0x100, 0x101, 0x40000}
    for vpn in vpns:
        table.map(vpn, vpn & 0xFF, Permission.READ)
    assert set(table.mapped_vpns()) == vpns


def test_encrypted_table_is_ciphertext_raw(memory: PhysicalMemory):
    """An enclave table's PTE frames read raw yield no decodable PTEs.

    This is the property that kills page-table controlled channels: the
    OS can read the raw frames but sees keystream output.
    """
    table = make_table(memory, keyid=6)
    table.map(0x100, 77, Permission.RW, keyid=6)
    leaf_frame = table.table_frames()[-1]
    raw = memory.read_raw(leaf_frame * PAGE_SIZE, PAGE_SIZE)
    decoded = [DecodedPTE.from_word(int.from_bytes(raw[i:i + 8], "little"))
               for i in range(0, PAGE_SIZE, 8)]
    # The real mapping (ppn=77) must not be recoverable.
    assert not any(pte.valid and pte.ppn == 77 for pte in decoded)


def test_encrypted_table_functional(memory: PhysicalMemory):
    table = make_table(memory, keyid=6)
    table.map(0x100, 77, Permission.RW, keyid=6)
    assert table.lookup(0x100).ppn == 77


@given(mappings=st.dictionaries(
    st.integers(min_value=0, max_value=(1 << 27) - 1),
    st.integers(min_value=0, max_value=1000),
    min_size=1, max_size=25))
@settings(max_examples=25, deadline=None)
def test_map_lookup_property(mappings: dict[int, int]):
    memory = PhysicalMemory(8 * 1024 * 1024)
    table = make_table(memory)
    for vpn, ppn in mappings.items():
        table.map(vpn, ppn, Permission.RW)
    for vpn, ppn in mappings.items():
        assert table.lookup(vpn).ppn == ppn
    assert set(table.mapped_vpns()) == set(mappings)
