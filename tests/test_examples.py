"""Every example script runs clean end to end.

The examples are part of the public API surface; this keeps them from
rotting. Each runs in a subprocess exactly as a user would run it.
"""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_present():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 6


@pytest.mark.parametrize("script", EXAMPLES, ids=[p.stem for p in EXAMPLES])
def test_example_runs(script: pathlib.Path):
    result = subprocess.run(
        [sys.executable, str(script)], capture_output=True, text=True,
        timeout=180)
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip()  # every example narrates what it did
