"""HyperTEE adapter: the attacker operations really run against the
live system and really fail for the modelled reasons."""

from __future__ import annotations

import pytest

from repro.baselines.hypertee_adapter import HyperTEEAdapter


@pytest.fixture(scope="module")
def adapter() -> HyperTEEAdapter:
    return HyperTEEAdapter()


def test_victim_runs_real_enclave(adapter: HyperTEEAdapter):
    victim = adapter.new_victim(heap_pages=8)
    adapter.victim_touch(victim, 3)
    control = adapter.tee.system.enclaves.enclaves[victim.enclave.enclave_id]
    # The touch demand-faulted a real page into the dedicated table.
    from repro.core.enclave import HEAP_BASE_VPN

    assert control.page_table.lookup(HEAP_BASE_VPN + 3) is not None


def test_victim_touch_bounds(adapter: HyperTEEAdapter):
    victim = adapter.new_victim(heap_pages=4)
    with pytest.raises(ValueError):
        adapter.victim_touch(victim, 4)


def test_allocation_log_holds_only_bulk_pool_entries(adapter: HyperTEEAdapter):
    victim = adapter.new_victim(heap_pages=8)
    for page in range(6):
        adapter.victim_touch(victim, page)
    assert adapter.attacker_allocation_events() is None
    # But the OS log is not empty — it holds bulk pool refills.
    log = adapter.tee.system.os.allocation_log
    assert any(e.requestor == "ems-pool" for e in log)


def test_pte_reads_return_nothing(adapter: HyperTEEAdapter):
    victim = adapter.new_victim(heap_pages=4)
    adapter.victim_touch(victim, 1)
    assert adapter.attacker_read_accessed(victim, 1) is None
    assert not adapter.attacker_clear_accessed(victim)


def test_swap_untargetable_but_functional(adapter: HyperTEEAdapter):
    victim = adapter.new_victim(heap_pages=4)
    adapter.victim_touch(victim, 0)
    swaps_before = len(adapter.tee.system.os.swap_log)
    assert adapter.attacker_swap_out(victim, 0) is False
    # EWB actually ran: the OS received (random, useless) frames.
    assert len(adapter.tee.system.os.swap_log) == swaps_before + 1
    assert adapter.attacker_observe_swap_in(victim, 0) is None
