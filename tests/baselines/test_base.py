"""Baseline TEE model mechanics."""

from __future__ import annotations

import pytest

from repro.baselines.base import (
    BaselineTEE,
    prime_cache_sets,
    probe_cache_sets,
    run_secret_dependent_task,
)
from repro.baselines.catalog import make_baseline
from repro.hw.cache import SetAssociativeCache


def test_victim_touch_bounds():
    tee = make_baseline("sgx")
    victim = tee.new_victim(heap_pages=4)
    with pytest.raises(ValueError):
        tee.victim_touch(victim, 4)


def test_demand_allocation_events_in_order():
    tee = make_baseline("sgx")
    victim = tee.new_victim(heap_pages=8)
    for page in (3, 1, 7):
        tee.victim_touch(victim, page)
    assert tee.attacker_allocation_events() == [3, 1, 7]


def test_repeat_touch_not_reallocated():
    tee = make_baseline("sgx")
    victim = tee.new_victim(heap_pages=8)
    tee.victim_touch(victim, 3)
    tee.victim_touch(victim, 3)
    assert tee.attacker_allocation_events() == [3]


def test_static_paging_produces_no_events():
    tee = make_baseline("trustzone")
    victim = tee.new_victim(heap_pages=8)
    tee.victim_touch(victim, 3)
    assert tee.attacker_allocation_events() is None


def test_accessed_bits_follow_touches():
    tee = make_baseline("sgx")
    victim = tee.new_victim(heap_pages=8)
    tee.victim_touch(victim, 2)
    assert tee.attacker_read_accessed(victim, 2) is True
    assert tee.attacker_read_accessed(victim, 3) is False
    assert tee.attacker_clear_accessed(victim)
    assert tee.attacker_read_accessed(victim, 2) is False


def test_protected_ptes_opaque():
    tee = make_baseline("tdx")
    victim = tee.new_victim(heap_pages=8)
    tee.victim_touch(victim, 2)
    assert tee.attacker_read_accessed(victim, 2) is None
    assert not tee.attacker_clear_accessed(victim)


def test_swap_and_swapin_observation():
    tee = make_baseline("sgx")
    victim = tee.new_victim(heap_pages=8)
    tee.victim_touch(victim, 2)
    assert tee.attacker_swap_out(victim, 2)
    assert tee.attacker_observe_swap_in(victim, 2) is False
    tee.victim_touch(victim, 2)
    assert tee.attacker_observe_swap_in(victim, 2) is True


def test_unknown_mgmt_task_rejected():
    tee = make_baseline("sgx")
    with pytest.raises(ValueError):
        tee.run_mgmt_task("gardening", [1, 0])


def test_prime_probe_game_detects_secret_sets():
    cache = SetAssociativeCache(size_kb=256, ways=8)
    prime_cache_sets(cache, 8)
    run_secret_dependent_task(cache, [1, 0, 1, 1], probe_sets=8)
    signal = probe_cache_sets(cache, 8)
    # Bits 1,0,1,1 -> victim touched sets 1, 2, 5, 7.
    assert signal == [False, True, True, False, False, True, False, True]


def test_probe_is_silent_without_task():
    cache = SetAssociativeCache(size_kb=256, ways=8)
    prime_cache_sets(cache, 8)
    assert probe_cache_sets(cache, 8) == [False] * 8
