"""Baseline catalog: profiles encode the Table VI architecture facts."""

from __future__ import annotations

import pytest

from repro.baselines.base import BaselineTEE
from repro.baselines.catalog import (
    BASELINE_PROFILES,
    all_tee_models,
    make_baseline,
)


def test_all_table6_rows_present():
    assert set(BASELINE_PROFILES) == {
        "sgx", "sev", "tdx", "cca", "trustzone", "keystone", "penglai", "cure"}


def test_make_baseline():
    tee = make_baseline("sgx")
    assert isinstance(tee, BaselineTEE)
    assert tee.name == "sgx"
    with pytest.raises(ValueError):
        make_baseline("nonexistent")


def test_no_baseline_manages_communication():
    assert not any(p.comm_managed for p in BASELINE_PROFILES.values())


def test_sgx_fully_open():
    p = BASELINE_PROFILES["sgx"]
    assert p.os_sees_demand_allocations and p.os_reads_enclave_ptes
    assert p.os_targets_swap and not p.attestation_isolated


def test_tdx_closes_only_page_tables():
    p = BASELINE_PROFILES["tdx"]
    assert not p.os_reads_enclave_ptes
    assert p.os_sees_demand_allocations and p.os_targets_swap


def test_trustzone_static():
    assert not BASELINE_PROFILES["trustzone"].dynamic_paging


def test_sev_isolates_attestation_only():
    p = BASELINE_PROFILES["sev"]
    assert p.attestation_isolated and not p.paging_isolated


def test_all_tee_models_includes_hypertee():
    models = all_tee_models()
    assert [m.name for m in models][-1] == "hypertee"
    assert len(models) == len(BASELINE_PROFILES) + 1
    without = all_tee_models(include_hypertee=False)
    assert len(without) == len(BASELINE_PROFILES)
