"""Engine parametrization for the chaos suite.

Every chaos scenario runs on both execution engines: fault handling is
exactly the territory where the fast kernel delegates back to the
reference interpreter (``FastEMCall`` refuses batching when an injector
is wired), so the fast cells exercise that complete-delegation seam plus
the fast encryption engine, which *does* stay active under chaos.
"""

from __future__ import annotations

import pytest


@pytest.fixture(params=("reference", "fast"))
def engine(request) -> str:
    return request.param
