"""EMCall retry/timeout hardening: deadlines, backoff, idempotent retry.

The timeout tests double as the regression pin for the original bug:
the poll loop used to spin forever on a lost response (no deadline, no
typed error). It must now terminate within ``deadline_polls`` per attempt
and surface a typed :class:`EMCallTimeout` — or a structured
:class:`DegradedResult` when the policy opts into degraded mode.
"""

from __future__ import annotations

import pytest

from repro.common.types import Primitive, Privilege
from repro.core.api import APIError, HyperTEE
from repro.core.enclave import EnclaveConfig
from repro.cs.emcall import DegradedResult, RetryPolicy
from repro.errors import EMCallError, EMCallTimeout
from repro.eval.calibration import (
    EMCALL_DEADLINE_POLLS,
    EMCALL_POLL_INTERVAL_CYCLES,
)
from repro.faults import FaultPlan, FaultRule


def _black_hole(system) -> None:
    """An EMS that eats requests and never answers (crashed runtime)."""
    system.emcall._ems_pump = lambda: system.mailbox.fetch_requests()


@pytest.fixture
def supervisor(system):
    system.primary_core.privilege = Privilege.SUPERVISOR
    return system.primary_core


# -- the timeout regression (the poll loop used to hang here) ---------------


def test_lost_response_raises_typed_timeout(system, supervisor):
    _black_hole(system)
    with pytest.raises(EMCallTimeout) as excinfo:
        system.emcall.invoke(Primitive.ECREATE,
                             {"config": EnclaveConfig()}, core=supervisor)
    err = excinfo.value
    assert err.primitive == "ECREATE"
    assert err.attempts == system.emcall.retry_policy.max_attempts
    assert err.deadline_polls == EMCALL_DEADLINE_POLLS["ECREATE"]
    assert err.waited_cycles > 0
    # Typed: still catchable as the generic gate error.
    assert isinstance(err, EMCallError)


def test_poll_loop_is_bounded(system, supervisor):
    _black_hole(system)
    with pytest.raises(EMCallTimeout):
        system.emcall.invoke(Primitive.EWB, {"pages": 1}, core=supervisor)
    budget = (EMCALL_DEADLINE_POLLS["EWB"]
              * system.emcall.retry_policy.max_attempts)
    assert system.mailbox.stats.poll_attempts <= budget
    # Every timed-out attempt released its slot (late answers go stale).
    assert system.mailbox.stats.requests_cancelled == \
        system.emcall.retry_policy.max_attempts


def test_degrade_policy_returns_structured_result(system, supervisor):
    _black_hole(system)
    system.emcall.retry_policy = RetryPolicy(max_attempts=2, degrade=True)
    outcome = system.emcall.invoke(Primitive.EWB, {"pages": 1},
                                   core=supervisor)
    assert isinstance(outcome, DegradedResult)
    assert outcome.degraded and not outcome.ok
    assert outcome.response is None
    assert outcome.attempts == 2
    assert len(outcome.request_ids) == 2  # each attempt's id, for forensics
    assert outcome.cs_cycles > 0
    assert outcome.result("frames", default="unreached") == "unreached"


def test_detached_ems_is_a_typed_error_not_a_hang(system, supervisor):
    """Invoking before secure boot wires the pump fails fast and typed."""
    system.emcall._ems_pump = None
    with pytest.raises(EMCallError, match="EMS not attached"):
        system.emcall.invoke(Primitive.EWB, {"pages": 1}, core=supervisor)
    assert system.mailbox.stats.requests_sent == 0  # nothing even queued


def test_degradation_is_visible_in_metrics(system, supervisor):
    system.enable_observability()
    _black_hole(system)
    system.emcall.retry_policy = RetryPolicy(max_attempts=2, degrade=True)
    outcome = system.emcall.invoke(Primitive.EWB, {"pages": 1},
                                   core=supervisor)
    assert outcome.degraded
    families = {m.name: m for m in system.obs.metrics.families()}
    degraded = families["hypertee_emcall_degraded_total"]
    assert sum(c.value for _, c in degraded.samples()) == 1
    # The successful-path flag is the complement, not a constant.
    clean = type(system)(system.config)
    core = clean.primary_core
    core.privilege = Privilege.SUPERVISOR
    result = clean.emcall.invoke(Primitive.EWB, {"pages": 1}, core=core)
    assert result.degraded is False


def test_degraded_result_surfaces_as_api_error(system):
    _black_hole(system)
    system.emcall.retry_policy = RetryPolicy(max_attempts=2, degrade=True)
    tee = HyperTEE(system=system)
    with pytest.raises(APIError, match="degraded after 2 attempts"):
        tee.launch_enclave(b"code", EnclaveConfig(name="doomed"))


# -- retry paths that recover ------------------------------------------------


def test_dropped_response_retried_and_replayed(system, supervisor):
    system.enable_fault_injection(FaultPlan(rules=(
        FaultRule("mailbox.response.drop", count=1),)))
    result = system.emcall.invoke(Primitive.ECREATE,
                                  {"config": EnclaveConfig()},
                                  core=supervisor)
    assert result.ok
    assert result.attempts == 2
    # The EMS executed ECREATE once and replayed the cached outcome for
    # the retry — no double-create.
    assert result.response.result.get("replayed") is True
    assert system.ems.stats.idempotent_replays == 1
    assert len(system.enclaves.enclaves) == 1
    # The wasted polls and the backoff wait are CS-visible.
    assert system.mailbox.stats.responses_dropped == 1
    assert system.mailbox.stats.requests_cancelled == 1


def test_transient_handler_crash_is_retried(system, supervisor):
    system.enable_fault_injection(FaultPlan(rules=(
        FaultRule("ems.handler.exception", count=1),)))
    result = system.emcall.invoke(Primitive.ECREATE,
                                  {"config": EnclaveConfig()},
                                  core=supervisor)
    assert result.ok
    assert result.attempts == 2
    assert system.ems.stats.transient_failures == 1
    # The crash fired before the handler ran, so the retry is the first
    # (and only) real execution: nothing was replayed, nothing doubled.
    assert system.ems.stats.idempotent_replays == 0
    assert len(system.enclaves.enclaves) == 1


def test_queue_full_burst_is_ridden_out(system, supervisor):
    system.enable_fault_injection(FaultPlan(rules=(
        FaultRule("mailbox.queue_full", count=1, magnitude=2),)))
    result = system.emcall.invoke(Primitive.EWB, {"pages": 1},
                                  core=supervisor)
    assert result.ok
    assert result.attempts == 3  # two refused pushes, then through
    assert system.mailbox.stats.injected_queue_full == 2


def test_retries_cost_cycles(system, supervisor):
    """The timed-out attempt's polls and the backoff are all charged."""
    system.enable_fault_injection(FaultPlan(rules=(
        FaultRule("mailbox.response.drop", count=1),)))
    faulted = system.emcall.invoke(Primitive.ECREATE,
                                   {"config": EnclaveConfig()},
                                   core=supervisor)
    assert faulted.attempts == 2
    # Attempt 1 polled out its full deadline before being cancelled;
    # every one of those waits is CS-visible, plus a non-zero backoff.
    wasted_polls = (EMCALL_DEADLINE_POLLS["ECREATE"] - 1) \
        * EMCALL_POLL_INTERVAL_CYCLES
    backoff_floor = system.emcall.retry_policy.backoff_base_cycles
    assert faulted.cs_cycles > wasted_polls + backoff_floor


def test_fabric_latency_spike_lands_in_cs_cycles(system, supervisor):
    spike = 5_000
    system.enable_fault_injection(FaultPlan(rules=(
        FaultRule("fabric.latency", count=1, magnitude=spike),)))
    result = system.emcall.invoke(Primitive.EWB, {"pages": 1},
                                  core=supervisor)
    assert result.ok and result.attempts == 1
    clean_system = type(system)(system.config)
    clean_core = clean_system.primary_core
    clean_core.privilege = Privilege.SUPERVISOR
    clean = clean_system.emcall.invoke(Primitive.EWB, {"pages": 1},
                                       core=clean_core)
    assert result.cs_cycles == clean.cs_cycles + spike


def test_retry_telemetry_reaches_metrics(system, supervisor):
    system.enable_observability()
    system.enable_fault_injection(FaultPlan(rules=(
        FaultRule("mailbox.response.drop", count=1),)))
    result = system.emcall.invoke(Primitive.ECREATE,
                                  {"config": EnclaveConfig()},
                                  core=supervisor)
    assert result.attempts == 2
    names = {m.name for m in system.obs.metrics.families()}
    assert {"hypertee_faults_injected_total",
            "hypertee_emcall_retries_total",
            "hypertee_emcall_timeouts_total"} <= names
