"""Each fault point exercised in isolation, with probability-1 rules.

These drive the Mailbox and the EMS runtime directly (below EMCall), so
every injected behaviour is observable without retry machinery on top.
"""

from __future__ import annotations

import pytest

from repro.common.packets import (
    PrimitiveRequest,
    PrimitiveResponse,
    ResponseStatus,
)
from repro.common.types import Primitive, Privilege
from repro.errors import MailboxError
from repro.faults import FaultInjector, FaultPlan, FaultRule
from repro.hw.mailbox import Mailbox


def _request(request_id: int, **kwargs) -> PrimitiveRequest:
    return PrimitiveRequest(request_id=request_id, primitive=Primitive.EWB,
                            enclave_id=None, privilege=Privilege.SUPERVISOR,
                            **kwargs)


def _mailbox_with(*rules: FaultRule, seed: int = 7) -> Mailbox:
    mailbox = Mailbox()
    mailbox.faults = FaultInjector(FaultPlan(seed=seed, rules=rules))
    return mailbox


# -- mailbox: request leg ---------------------------------------------------


def test_request_drop_loses_packet_but_claims_slot():
    mailbox = _mailbox_with(FaultRule("mailbox.request.drop", count=1))
    mailbox.push_request(_request(1))
    assert mailbox.stats.requests_dropped == 1
    assert mailbox.fetch_requests() == []
    # The slot stays claimed: EMCall polls the id until its deadline...
    assert mailbox.poll_response(1) is None
    # ...and the id cannot be reused while outstanding.
    with pytest.raises(MailboxError):
        mailbox.push_request(_request(1))


def test_request_corrupt_discarded_at_ems_rx_edge():
    mailbox = _mailbox_with(FaultRule("mailbox.request.corrupt", count=1))
    mailbox.push_request(_request(1))
    assert mailbox.pending_request_count() == 1  # in flight, CRC-broken
    assert mailbox.fetch_requests() == []        # Rx edge discards it
    assert mailbox.stats.corrupt_discards == 1


def test_request_duplicate_suppressed_by_sequence_check():
    mailbox = _mailbox_with(FaultRule("mailbox.request.duplicate", count=1))
    mailbox.push_request(_request(1))
    assert mailbox.pending_request_count() == 2
    fetched = mailbox.fetch_requests()
    assert [r.request_id for r in fetched] == [1]
    assert mailbox.stats.duplicate_discards == 1


def test_queue_full_burst_refuses_magnitude_pushes():
    mailbox = _mailbox_with(
        FaultRule("mailbox.queue_full", count=1, magnitude=3))
    for request_id in (1, 2, 3):
        with pytest.raises(MailboxError, match="injected burst"):
            mailbox.push_request(_request(request_id))
    # The burst is spent; the fourth push goes through.
    mailbox.push_request(_request(4))
    assert mailbox.stats.injected_queue_full == 3
    assert [r.request_id for r in mailbox.fetch_requests()] == [4]


# -- mailbox: response leg ---------------------------------------------------


def _deliver(mailbox: Mailbox, request_id: int) -> None:
    mailbox.push_request(_request(request_id))
    mailbox.fetch_requests()


def test_response_drop_keeps_request_outstanding():
    mailbox = _mailbox_with(FaultRule("mailbox.response.drop", count=1))
    _deliver(mailbox, 1)
    mailbox.push_response(PrimitiveResponse(1, ResponseStatus.OK))
    assert mailbox.stats.responses_dropped == 1
    assert mailbox.poll_response(1) is None  # still waiting


def test_response_corrupt_discarded_at_cs_rx_edge():
    mailbox = _mailbox_with(FaultRule("mailbox.response.corrupt", count=1))
    _deliver(mailbox, 1)
    mailbox.push_response(PrimitiveResponse(1, ResponseStatus.OK))
    assert mailbox.poll_response(1) is None  # CRC discard, counted
    assert mailbox.stats.corrupt_discards == 1
    # The slot survives the discard; a retried response gets through.
    mailbox.push_response(PrimitiveResponse(1, ResponseStatus.OK))
    assert mailbox.poll_response(1).ok


def test_response_duplicate_never_double_binds():
    mailbox = _mailbox_with(FaultRule("mailbox.response.duplicate", count=1))
    _deliver(mailbox, 1)
    mailbox.push_response(PrimitiveResponse(1, ResponseStatus.OK))
    assert mailbox.stats.duplicate_discards == 1
    assert mailbox.pending_response_count() == 1
    assert mailbox.poll_response(1).ok


def test_cancelled_request_turns_late_response_stale():
    mailbox = _mailbox_with()  # no rules needed for this path
    _deliver(mailbox, 1)
    mailbox.cancel_request(1)
    assert mailbox.stats.requests_cancelled == 1
    # The EMS posts the answer late; it is discarded, not an error.
    mailbox.push_response(PrimitiveResponse(1, ResponseStatus.OK))
    assert mailbox.stats.stale_responses == 1
    assert mailbox.pending_response_count() == 0
    with pytest.raises(MailboxError):
        mailbox.poll_response(1)  # the slot is gone


def test_fabric_latency_stretches_transfer_leg():
    mailbox = _mailbox_with(FaultRule("fabric.latency", count=1,
                                      magnitude=500))
    assert mailbox.transfer_cycles("request") == Mailbox.TRANSFER_CYCLES + 500
    assert mailbox.transfer_cycles("response") == Mailbox.TRANSFER_CYCLES


# -- EMS runtime points ------------------------------------------------------


def _wire(system, *rules: FaultRule, seed: int = 11):
    plan = FaultPlan(seed=seed, rules=rules)
    system.enable_fault_injection(plan)
    return system


def test_handler_exception_answers_transient(system):
    _wire(system, FaultRule("ems.handler.exception", count=1))
    request = _request(901, args={"pages": 1})
    response = system.ems.dispatch(request)
    assert response.status is ResponseStatus.TRANSIENT
    assert system.ems.stats.transient_failures == 1
    # The crash fired before the handler ran: nothing was swapped.
    assert system.ems.stats.served == 0


def test_handler_stall_defers_and_inflates_response(system):
    _wire(system, FaultRule("ems.handler.stall", count=1,
                            magnitude=120_000))
    system.mailbox.push_request(_request(902, args={"pages": 1}))
    assert system.ems.pump() == 1
    assert system.ems.stats.stalled_responses == 1
    # Held back for magnitude // 50_000 = 2 pump rounds.
    assert system.mailbox.poll_response(902) is None
    system.ems.pump()
    assert system.mailbox.poll_response(902) is None
    system.ems.pump()
    response = system.mailbox.poll_response(902)
    assert response is not None
    assert response.service_cycles >= 120_000  # the stall is accounted


def test_core_pause_freezes_pump_rounds(system):
    _wire(system, FaultRule("ems.core.pause", count=1, magnitude=3))
    system.mailbox.push_request(_request(903, args={"pages": 1}))
    assert system.ems.pump() == 0  # round 1 of the pause
    assert system.ems.pump() == 0  # round 2
    assert system.ems.pump() == 0  # round 3
    assert system.ems.stats.paused_rounds == 3
    assert system.ems.pump() == 1  # thawed; the backlog drains
    assert system.mailbox.poll_response(903).ok


def test_idempotent_replay_answers_from_cache(system):
    first = _request(904, args={"pages": 1},
                     idempotency_key="c0-k77")
    retry = _request(905, args={"pages": 1},
                     idempotency_key="c0-k77")
    assert system.ems.dispatch(first).ok
    replayed = system.ems.dispatch(retry)
    assert replayed.ok
    assert replayed.result.get("replayed") is True
    assert system.ems.stats.idempotent_replays == 1
    assert system.ems.stats.served == 1  # the handler ran exactly once
