"""Shared machinery for the chaos suite: plans, lifecycles, invariants."""

from __future__ import annotations

import contextlib
import os

from repro.core.api import HyperTEE
from repro.core.config import SystemConfig
from repro.core.enclave import EnclaveConfig
from repro.core.system import HyperTEESystem
from repro.cs.emcall import RetryPolicy
from repro.faults import FaultPlan, FaultRule


def chaos_seed_count(default: int = 3) -> int:
    """How many plan seeds to sweep (CI sets CHAOS_SEEDS for depth)."""
    return int(os.environ.get("CHAOS_SEEDS", default))


def transport_chaos_plan(seed: int, drop: float = 0.10,
                         corrupt: float = 0.05,
                         duplicate: float = 0.05) -> FaultPlan:
    """Degraded transport on both mailbox queues."""
    return FaultPlan(seed=seed, rules=(
        FaultRule("mailbox.request.drop", probability=drop),
        FaultRule("mailbox.response.drop", probability=drop),
        FaultRule("mailbox.request.corrupt", probability=corrupt),
        FaultRule("mailbox.response.corrupt", probability=corrupt),
        FaultRule("mailbox.request.duplicate", probability=duplicate),
        FaultRule("mailbox.response.duplicate", probability=duplicate),
    ))


def kitchen_sink_plan(seed: int) -> FaultPlan:
    """Every fault point at once, at survivable rates."""
    return FaultPlan(seed=seed, rules=(
        FaultRule("mailbox.request.drop", probability=0.06),
        FaultRule("mailbox.response.drop", probability=0.06),
        FaultRule("mailbox.request.corrupt", probability=0.04),
        FaultRule("mailbox.response.corrupt", probability=0.04),
        FaultRule("mailbox.request.duplicate", probability=0.04),
        FaultRule("mailbox.response.duplicate", probability=0.04),
        FaultRule("mailbox.queue_full", probability=0.02, magnitude=2),
        FaultRule("ems.handler.exception", probability=0.04),
        FaultRule("ems.handler.stall", probability=0.04, magnitude=60_000),
        FaultRule("ems.core.pause", probability=0.02, magnitude=3),
        FaultRule("fabric.latency", probability=0.05, magnitude=500),
    ))


def chaos_sanitizers() -> tuple[str, ...]:
    """Which teesan sanitizers the chaos suite attaches (opt-out).

    ``CHAOS_SANITIZE=`` (empty) disables them; any other value is a
    comma list. The default runs SECRET+OWN under every chaos plan —
    the sanitizers assert the decoupling invariants *while* the fault
    injector is actively trying to break them. DET is omitted: it
    compares engines, which a single chaos platform doesn't have.
    """
    from repro.sanitize.manager import parse_sanitizer_list

    return parse_sanitizer_list(os.environ.get("CHAOS_SANITIZE",
                                               "secret,own"))


def chaos_tee(plan: FaultPlan, *, max_attempts: int = 16,
              observability: bool = True, **config) -> HyperTEE:
    """A booted platform with the plan wired in and retries deepened.

    Chaos rates are far above anything a real fabric would see, so the
    gate gets a deeper retry budget than the production default: at a
    ~27% per-attempt loss rate the retry feedback loop (every failed
    attempt creates the next fault opportunity) can walk through a
    cluster of bad draws, and 16 attempts pushes the residual timeout
    probability below 1e-9 per invocation.
    """
    config.setdefault("cs_memory_mb", 96)
    config.setdefault("ems_memory_mb", 4)
    tee = HyperTEE(SystemConfig(**config))
    if observability:
        tee.system.enable_observability()
    sanitizers = chaos_sanitizers()
    if sanitizers:
        tee.system.enable_sanitizers(sanitizers)
    tee.system.enable_fault_injection(plan)
    tee.system.emcall.retry_policy = RetryPolicy(max_attempts=max_attempts)
    return tee


def run_lifecycle(tee: HyperTEE, enclaves: int = 8,
                  heap_pages: int = 2) -> list[bytes]:
    """The full enclave lifecycle for N concurrently-live enclaves.

    Launch all N (create + add + measure), then for each: enter, alloc,
    write/read its own secret, attest, free, exit — and finally destroy
    all N. Returns each enclave's read-back, which must match what that
    enclave wrote (response binding: no cross-delivery).
    """
    handles = [
        tee.launch_enclave(f"chaos-enclave-{i}".encode() * 8,
                           EnclaveConfig(name=f"chaos{i}",
                                         heap_pages_max=64))
        for i in range(enclaves)
    ]
    readbacks = []
    for i, enclave in enumerate(handles):
        secret = f"secret-of-{i}".encode()
        with enclave.running():
            vaddr = enclave.ealloc(heap_pages)
            enclave.write(vaddr, secret)
            readbacks.append(enclave.read(vaddr, len(secret)))
            quote = enclave.attest(report_data=f"chaos{i}".encode())
            assert quote.enclave.measurement  # attestation still works
            enclave.efree(vaddr)
    for enclave in handles:
        enclave.destroy()
    return readbacks


def run_batched_lifecycle(tee: HyperTEE, enclaves: int = 4,
                          rounds: int = 2, batch: int = 8) -> list[bytes]:
    """The lifecycle of :func:`run_lifecycle`, over the batched fast path.

    Launches via ``launch_enclave_batched`` (bulk EADD envelopes) and
    drives each enclave through ``rounds`` rounds of ``batch``-wide
    ealloc_many / write / read / efree_many, plus an attestation.
    Returns each enclave's final read-back.
    """
    handles = [
        tee.launch_enclave_batched(f"chaos-batch-{i}".encode() * 8,
                                   EnclaveConfig(name=f"chaosb{i}",
                                                 heap_pages_max=4 * batch),
                                   batch_size=batch)
        for i in range(enclaves)
    ]
    readbacks = []
    for i, enclave in enumerate(handles):
        secret = f"batch-secret-of-{i}".encode()
        with enclave.running():
            for _ in range(rounds):
                vaddrs = enclave.ealloc_many([1] * batch)
                enclave.write(vaddrs[0], secret)
                readback = enclave.read(vaddrs[0], len(secret))
                enclave.efree_many(vaddrs)
            quote = enclave.attest(report_data=f"chaosb{i}".encode())
            assert quote.enclave.measurement
        readbacks.append(readback)
    for enclave in handles:
        enclave.destroy()
    return readbacks


@contextlib.contextmanager
def flight_guard(tee: HyperTEE, label: str = "chaos"):
    """Trip the flight recorder's black box if the guarded block dies.

    Wrap a chaos workload (and its invariant checks) in this: on any
    exception the last N structured events — fault fires, retries,
    rejects, timeouts — are frozen into a dump, written to
    ``$REPRO_FLIGHTREC_DIR`` when set (the chaos CI job uploads that
    directory as an artifact on failure), and the exception re-raised.
    """
    try:
        yield tee
    except BaseException as exc:
        obs = getattr(tee.system, "obs", None)
        if obs is not None and obs.enabled:
            obs.trip_flightrec(f"{label}-failure",
                               error=type(exc).__name__,
                               detail=str(exc)[:500])
        raise


@contextlib.contextmanager
def sanitize_guard(tee: HyperTEE, label: str = "chaos"):
    """Fail the guarded block if any runtime sanitizer fired inside it.

    The complement of :func:`flight_guard`: that one preserves evidence
    when the workload *crashes*; this one turns silent invariant
    violations — a secret on the wire, a double-granted frame — into a
    hard failure with the teesan report attached, even though the
    workload itself "passed". A no-op on unsanitized platforms.
    """
    san = getattr(tee.system, "san", None)
    before = len(san.violations) if san is not None else 0
    yield tee
    if san is not None and len(san.violations) > before:
        san.check_clean(label)


def check_invariants(system: HyperTEESystem) -> None:
    """Pool / bitmap / ownership invariants that no fault may break.

    On a sharded platform every shard's pool/ownership/manager triple is
    checked independently, plus the fleet-level invariant that no
    enclave ID is resident on two shards at once.
    """
    from repro.common.types import EnclaveState
    from repro.ems.ownership import Owner

    if system.shard_pool is None:
        cells = [(system.pool, system.ownership, system.enclaves)]
    else:
        cells = [(s.pool, s.ownership, s.enclaves)
                 for s in system.shard_pool.shards]
        seen: dict[int, int] = {}
        for shard in system.shard_pool.shards:
            for enclave_id in shard.enclaves.enclaves:
                assert enclave_id not in seen, (
                    f"enclave {enclave_id} resident on shards "
                    f"{seen[enclave_id]} and {shard.index}")
                seen[enclave_id] = shard.index

    san = getattr(system, "san", None)
    if san is not None:
        # The dynamic invariants ride along with the structural ones:
        # any sanitizer finding accumulated so far fails the run here,
        # with the full teesan report and event trail in the message.
        san.check_clean("chaos invariants")

    for pool, ownership, enclaves in cells:
        assert pool.used_count + pool.free_count == pool.capacity, \
            "pool frame conservation violated"
        assert pool.used_count >= 0 and pool.free_count >= 0

        live_ids = {i for i, c in enclaves.enclaves.items()
                    if c.state is not EnclaveState.DESTROYED}
        for enclave_id in live_ids:
            for frame in ownership.frames_owned_by(
                    Owner.enclave(enclave_id)):
                assert system.bitmap.is_enclave(frame), (
                    f"enclave {enclave_id} owns frame {frame} "
                    "outside the bitmap")
