"""Chaos on the sharded fleet: outages, interrupted transfers, weather.

The single-EMS chaos suite proves the gate's hardening; this file
re-proves it when the EMS is a 4-shard fleet, plus the two shard-only
fault points:

* ``ems.shard.fail`` — one shard freezes for a few pump rounds while
  its siblings keep serving; the retry machinery rides out the outage
  and every invocation still terminates.
* ``ems.transfer.interrupt`` — a cross-shard migration dies between
  prepare and commit; nothing may double-apply and the fleet's frame
  accounting must balance to the page.

Marked ``chaos``; both engines via the suite-wide ``engine`` fixture.
"""

from __future__ import annotations

import pytest

from repro.attacks.harness import evaluate_tee, expected_paper_matrix
from repro.common.types import AttackOutcome
from repro.errors import TransferInterrupted
from repro.faults import FaultPlan, FaultRule
from tests.faults.chaoslib import (
    chaos_seed_count,
    chaos_tee,
    check_invariants,
    flight_guard,
    kitchen_sink_plan,
    run_lifecycle,
    transport_chaos_plan,
)

pytestmark = pytest.mark.chaos

SHARDS = 4


def _shard_outage_plan(seed: int) -> FaultPlan:
    """Transport weather plus intermittent shard freezes."""
    base = transport_chaos_plan(seed, drop=0.08, corrupt=0.04,
                                duplicate=0.04)
    return FaultPlan(seed=seed, rules=base.rules + (
        FaultRule("ems.shard.fail", probability=0.05, magnitude=3),
    ))


@pytest.mark.parametrize("seed", range(chaos_seed_count()))
def test_shard_outages_terminate(seed: int, engine: str):
    """Shard freezes under degraded transport: no hangs, no corruption."""
    tee = chaos_tee(_shard_outage_plan(seed), engine=engine,
                    ems_shards=SHARDS)
    with flight_guard(tee, label="shard-outage"):
        readbacks = run_lifecycle(tee, enclaves=8)
        assert readbacks == [f"secret-of-{i}".encode() for i in range(8)]
        check_invariants(tee.system)
    assert tee.system.faults.stats.total_fired > 0


@pytest.mark.parametrize("seed", range(chaos_seed_count()))
def test_kitchen_sink_on_fleet(seed: int, engine: str):
    """Every fault point at once on 4 shards, still a working platform."""
    plan = kitchen_sink_plan(seed)
    plan = FaultPlan(seed=seed, rules=plan.rules + (
        FaultRule("ems.shard.fail", probability=0.03, magnitude=2),
    ))
    tee = chaos_tee(plan, engine=engine, ems_shards=SHARDS)
    with flight_guard(tee, label="fleet-kitchen-sink"):
        readbacks = run_lifecycle(tee, enclaves=6)
        assert readbacks == [f"secret-of-{i}".encode() for i in range(6)]
        check_invariants(tee.system)


def test_interrupted_transfers_never_double_apply(engine: str):
    """A storm of interrupted migrations leaves accounting exact.

    Every odd attempt is interrupted (probability 1.0, then the retry
    consumes the next fire opportunity's outcome); after the storm each
    enclave is resident on exactly one shard, its frame set is intact,
    and fleet-wide pool usage equals the sum of what the enclaves own.
    """
    from repro.core.enclave import EnclaveConfig
    from repro.ems.ownership import Owner

    tee = chaos_tee(
        FaultPlan(seed=0xC0, rules=(
            FaultRule("ems.transfer.interrupt", probability=0.5),)),
        engine=engine, ems_shards=SHARDS)
    pool = tee.system.shard_pool
    enclaves = [
        tee.launch_enclave(f"xfer-{i}".encode() * 16,
                           EnclaveConfig(name=f"xfer{i}",
                                         heap_pages_max=8))
        for i in range(4)
    ]
    frames = {
        e.enclave_id: set(
            pool.shard_of(e.enclave_id).ownership.frames_owned_by(
                Owner.enclave(e.enclave_id)))
        for e in enclaves
    }
    usage_before = sum(s.pool.used_count for s in pool.shards)

    attempts = interrupted = 0
    with flight_guard(tee, label="transfer-interrupt"):
        for round_index in range(6):
            for enclave in enclaves:
                src = pool.resolve(enclave.enclave_id)
                dst = (src + 1 + round_index) % SHARDS
                if dst == src:
                    continue
                attempts += 1
                try:
                    pool.transfer_enclave(enclave.enclave_id, dst)
                except TransferInterrupted:
                    interrupted += 1
                check_invariants(tee.system)

    assert interrupted > 0, "a 50% interrupt plan that never fired"
    assert pool.transfers_interrupted == interrupted
    assert pool.transfers_committed == attempts - interrupted
    # No double-apply anywhere: each enclave's frame set is exactly its
    # launch-time set, wherever it now lives, and usage is conserved.
    for enclave in enclaves:
        shard = pool.shard_of(enclave.enclave_id)
        assert set(shard.ownership.frames_owned_by(
            Owner.enclave(enclave.enclave_id))) == frames[enclave.enclave_id]
    assert sum(s.pool.used_count for s in pool.shards) == usage_before

    # The fleet still serves: full post-storm lifecycle on each enclave.
    for i, enclave in enumerate(enclaves):
        with enclave.running():
            vaddr = enclave.ealloc(1)
            enclave.write(vaddr, f"alive{i}".encode())
            assert enclave.read(vaddr, 6) == f"alive{i}".encode()
        enclave.destroy()
    check_invariants(tee.system)


def test_table6_unchanged_with_idle_shard_points(engine: str):
    """The defense matrix ignores shard weather that never engages.

    The plan carries both shard fault points, but the attack harness
    performs no transfers and the shard-fail rule is given zero
    probability mass after boot — Table VI must come out exactly the
    paper's all-defended column.
    """
    from repro.baselines.hypertee_adapter import HyperTEEAdapter

    def sharded_hypertee():
        return HyperTEEAdapter(tee=chaos_tee(
            FaultPlan(seed=3, rules=(
                FaultRule("ems.shard.fail", probability=0.0),
                FaultRule("ems.transfer.interrupt", probability=1.0),
            )),
            observability=False, engine=engine, ems_shards=SHARDS))

    outcomes = {channel: result.outcome
                for channel, result in evaluate_tee(sharded_hypertee).items()}
    assert outcomes == expected_paper_matrix()["hypertee"]
    assert set(outcomes.values()) == {AttackOutcome.DEFENDED}
