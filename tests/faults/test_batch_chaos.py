"""Chaos for the batched EMCall fast path: one envelope, many fates.

A batch crosses the transport as a single packet, so drop / corrupt /
duplicate faults hit the whole envelope; the new
``mailbox.batch.element_corrupt`` point and ``ems.handler.exception``
instead wound individual elements mid-batch. The properties under test:

1. **Termination** — batched invocations never hang, whatever the
   weather (bounded retries; the test returning is the proof).
2. **Suffix-only replay** — elements the EMS has acknowledged are never
   re-sent: a retried batch carries only the unacknowledged tail, in a
   shrunken envelope (``idempotent_replays == 0`` when only elements
   fail; ``> 0`` only when whole envelopes are lost and the EMS-side
   cache absorbs the replay).
3. **No double-apply** — pool takes, measurements, and enclave state
   match a fault-free reference exactly; a double-applied EALLOC or
   EADD would show up immediately.

Marked ``chaos``; CI deepens the sweep via ``CHAOS_SEEDS``.
"""

from __future__ import annotations

import pytest

from repro.core.enclave import EnclaveConfig
from repro.faults import FaultPlan, FaultRule
from tests.faults.chaoslib import (
    chaos_seed_count,
    chaos_tee,
    check_invariants,
    flight_guard,
    run_batched_lifecycle,
    transport_chaos_plan,
)

pytestmark = pytest.mark.chaos


def _alloc_rounds(tee, *, rounds: int = 6, batch: int = 8) -> bytes:
    """One enclave, ``rounds`` full-batch alloc/free rounds; measurement."""
    enclave = tee.launch_enclave_batched(
        b"batch chaos enclave " * 16,
        EnclaveConfig(name="bchaos", heap_pages_max=(rounds + 1) * batch),
        batch_size=batch)
    with enclave.running():
        for _ in range(rounds):
            vaddrs = enclave.ealloc_many([1] * batch)
            enclave.write(vaddrs[-1], b"tail element")
            assert enclave.read(vaddrs[-1], 12) == b"tail element"
            enclave.efree_many(vaddrs)
    measurement = enclave.measurement
    enclave.destroy()
    return measurement


def _fault_free_reference(engine: str = "reference", **kwargs):
    tee = chaos_tee(FaultPlan.empty(), observability=False, engine=engine)
    measurement = _alloc_rounds(tee, **kwargs)
    return measurement, tee.system.pool.stats.takes


@pytest.mark.parametrize("seed", range(chaos_seed_count()))
def test_batched_lifecycle_survives_transport_chaos(seed: int, engine: str):
    """Envelope drop/corrupt/duplicate at 10%/5%/5%, batched end to end."""
    tee = chaos_tee(transport_chaos_plan(seed), engine=engine)
    with flight_guard(tee, label="batch-transport-chaos"):
        readbacks = run_batched_lifecycle(tee, enclaves=4)
        assert readbacks == [f"batch-secret-of-{i}".encode()
                             for i in range(4)]
        check_invariants(tee.system)
    injector = tee.system.faults
    assert injector.stats.total_fired > 0
    # The lifecycle really rode the fast path.
    assert tee.system.mailbox.stats.batches_sent > 0
    assert tee.system.ems.stats.batches_served > 0


@pytest.mark.parametrize("seed", range(chaos_seed_count()))
def test_element_corrupt_replays_only_the_wounded_suffix(seed: int,
                                                         engine: str):
    """A CRC-broken *element* is replayed alone; its siblings are not.

    The EMS answers TRANSIENT for the corrupted element without running
    its handler, EMCall re-sends just that element in a shrunken
    envelope, and no acknowledged element ever crosses again — so the
    EMS-side idempotency cache is never even consulted.
    """
    reference_measurement, reference_takes = _fault_free_reference(engine)
    plan = FaultPlan(seed=seed, rules=(
        FaultRule("mailbox.batch.element_corrupt", probability=0.25),))
    tee = chaos_tee(plan, engine=engine)
    measurement = _alloc_rounds(tee)
    check_invariants(tee.system)

    injector = tee.system.faults
    ems = tee.system.ems.stats
    fired = injector.fired_count("mailbox.batch.element_corrupt")
    assert fired > 0, "a 25% element-corrupt plan must fire"
    # Every firing produced exactly one TRANSIENT element answer.
    assert ems.transient_failures == fired
    # Suffix-only replay: the wounded elements crossed again (more
    # batched elements than a clean run would need) in extra envelopes.
    assert tee.system.mailbox.stats.batched_requests > 0
    assert ems.batches_served > 0
    # ... but acknowledged elements never re-crossed: the idempotency
    # cache saw no replayed keys at all.
    assert ems.idempotent_replays == 0
    # No double-apply: the pool granted exactly the fault-free number of
    # frames, and the measurement is bit-identical.
    assert tee.system.pool.stats.takes == reference_takes
    assert measurement == reference_measurement


@pytest.mark.parametrize("seed", range(chaos_seed_count()))
def test_handler_exception_mid_batch_is_transient_and_isolated(seed: int,
                                                               engine: str):
    """A handler crash on element k answers TRANSIENT for k alone.

    Elements before and after k in the same envelope complete normally
    (one failing primitive doesn't poison its batch), and k is retried
    with its original idempotency key until it lands.
    """
    reference_measurement, reference_takes = _fault_free_reference(engine)
    plan = FaultPlan(seed=seed, rules=(
        FaultRule("ems.handler.exception", probability=0.15),))
    tee = chaos_tee(plan, engine=engine)
    measurement = _alloc_rounds(tee)
    check_invariants(tee.system)

    ems = tee.system.ems.stats
    assert ems.transient_failures > 0, "a 15% crash plan must fire"
    assert tee.system.pool.stats.takes == reference_takes
    assert measurement == reference_measurement


@pytest.mark.parametrize("seed", range(chaos_seed_count()))
def test_lost_envelopes_replay_through_the_idempotency_cache(seed: int,
                                                             engine: str):
    """Dropping whole batch envelopes (or responses) never double-applies.

    A lost *response* means the EMS applied the batch but EMCall never
    saw it; the full-envelope retry re-sends the same idempotency keys
    and the cache answers them without re-running handlers — takes and
    measurements stay exactly at the fault-free reference.
    """
    reference_measurement, reference_takes = _fault_free_reference(engine)
    plan = FaultPlan(seed=seed, rules=(
        FaultRule("mailbox.request.drop", probability=0.10),
        FaultRule("mailbox.response.drop", probability=0.10),
        FaultRule("mailbox.request.duplicate", probability=0.08),
        FaultRule("mailbox.response.duplicate", probability=0.08),
    ))
    tee = chaos_tee(plan, engine=engine)
    measurement = _alloc_rounds(tee)
    check_invariants(tee.system)

    injector = tee.system.faults
    assert injector.stats.total_fired > 0
    assert tee.system.pool.stats.takes == reference_takes
    assert measurement == reference_measurement
    # If any response was dropped, the replayed envelope was absorbed by
    # the EMS idempotency cache rather than re-applied.
    if injector.fired_count("mailbox.response.drop"):
        assert tee.system.ems.stats.idempotent_replays > 0
