"""Seeded chaos runs: the platform survives adversarial weather.

Every run here injects real faults (10% drops and worse) and asserts the
four system-level properties the hardening exists for:

1. **Termination** — no invocation hangs; retries are bounded.
2. **Binding** — every response lands on its own request; each enclave
   reads back exactly what it wrote and attests its own identity.
3. **Idempotency** — retried primitives are never double-applied; the
   measurements match a fault-free reference bit-for-bit.
4. **Observability** — every injected fault is visible in the Perfetto
   trace and the metrics export.

Marked ``chaos``: excluded from the fast loop, run by the CI chaos job
(which deepens the sweep via the ``CHAOS_SEEDS`` env var).
"""

from __future__ import annotations

import pytest

from repro.attacks.harness import evaluate_tee, expected_paper_matrix
from repro.common.types import AttackOutcome
from repro.obs.export import render_prometheus
from tests.faults.chaoslib import (
    chaos_seed_count,
    chaos_tee,
    check_invariants,
    flight_guard,
    kitchen_sink_plan,
    run_lifecycle,
    transport_chaos_plan,
)

pytestmark = pytest.mark.chaos


def _fault_free_measurements(count: int = 8,
                             engine: str = "reference") -> list[bytes]:
    from repro.core.enclave import EnclaveConfig
    from repro.faults import FaultPlan

    tee = chaos_tee(FaultPlan.empty(), observability=False, engine=engine)
    return [tee.launch_enclave(f"chaos-enclave-{i}".encode() * 8,
                               EnclaveConfig(name=f"chaos{i}",
                                             heap_pages_max=64)).measurement
            for i in range(count)]


@pytest.mark.parametrize("seed", range(chaos_seed_count()))
def test_transport_chaos_full_lifecycle(seed: int, engine: str):
    """The acceptance run: 10% drop on both queues, 8 enclaves, no hangs.

    Bounded retries mean the test itself is the termination proof: if
    any invocation hung, the suite would never return (pytest-level
    wall-clock is the backstop).
    """
    tee = chaos_tee(transport_chaos_plan(seed), engine=engine)
    with flight_guard(tee, label="transport-chaos"):
        readbacks = run_lifecycle(tee, enclaves=8)
        # Binding: every enclave read back its own secret through
        # degraded transport — a cross-delivered response would corrupt
        # at least one.
        assert readbacks == [f"secret-of-{i}".encode() for i in range(8)]
        check_invariants(tee.system)
    injector = tee.system.faults
    assert injector.stats.total_fired > 0, \
        "a 10% plan that never fired is not a chaos run"

    # Observability: every fired fault is an instant span on the
    # ``faults`` track and a sample in the metrics export.
    fault_spans = tee.system.obs.tracer.find("fault:")
    assert len(fault_spans) == injector.stats.total_fired
    families = {m.name: m for m in tee.system.obs.metrics.families()}
    injected = families["hypertee_faults_injected_total"]
    assert sum(c.value for _, c in injected.samples()) == \
        injector.stats.total_fired
    assert "hypertee_faults_injected_total" in render_prometheus(
        tee.system.obs.metrics)


@pytest.mark.parametrize("seed", range(chaos_seed_count()))
def test_chaos_measurements_match_fault_free_reference(seed: int,
                                                       engine: str):
    """Idempotency end-to-end: retries never double-EADD.

    A double-applied EADD would fold an extra page hash into the
    measurement; equality with the fault-free reference is therefore a
    bit-level proof that no retried request was applied twice.
    """
    reference = _fault_free_measurements(engine=engine)
    tee = chaos_tee(transport_chaos_plan(seed, drop=0.15, corrupt=0.08,
                                         duplicate=0.08),
                    observability=False, engine=engine)
    from repro.core.enclave import EnclaveConfig

    for i, expected in enumerate(reference):
        enclave = tee.launch_enclave(
            f"chaos-enclave-{i}".encode() * 8,
            EnclaveConfig(name=f"chaos{i}", heap_pages_max=64))
        assert enclave.measurement == expected
    check_invariants(tee.system)


@pytest.mark.parametrize("seed", range(chaos_seed_count()))
def test_kitchen_sink_chaos_terminates(seed: int, engine: str):
    """All eleven fault points at once; the platform still completes."""
    tee = chaos_tee(kitchen_sink_plan(seed), engine=engine)
    with flight_guard(tee, label="kitchen-sink"):
        readbacks = run_lifecycle(tee, enclaves=4)
        assert readbacks == [f"secret-of-{i}".encode() for i in range(4)]
        check_invariants(tee.system)
    stats = tee.system.mailbox.stats
    # Late answers to cancelled requests must be discarded, not mixed
    # into later invocations' slots.
    assert stats.requests_cancelled >= stats.stale_responses


def test_table6_outcomes_unchanged_under_faults(engine: str):
    """The defense matrix is about architecture, not weather: HyperTEE
    defends all five channels even on a degraded fabric."""
    from repro.baselines.hypertee_adapter import HyperTEEAdapter

    def faulted_hypertee():
        return HyperTEEAdapter(tee=chaos_tee(
            transport_chaos_plan(seed=1, drop=0.05, corrupt=0.03,
                                 duplicate=0.03),
            observability=False, engine=engine))

    outcomes = {channel: result.outcome
                for channel, result in evaluate_tee(faulted_hypertee).items()}
    assert outcomes == expected_paper_matrix()["hypertee"]
    assert set(outcomes.values()) == {AttackOutcome.DEFENDED}
