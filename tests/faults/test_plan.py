"""FaultPlan / FaultRule schema, validation, and determinism."""

from __future__ import annotations

import pytest

from repro.errors import FaultConfigError
from repro.faults import FAULT_POINTS, FaultInjector, FaultPlan, FaultRule


def test_catalog_covers_all_subsystems():
    prefixes = {p.split(".")[0] for p in FAULT_POINTS}
    assert prefixes == {"mailbox", "ems", "fabric"}


def test_rule_rejects_unknown_point():
    with pytest.raises(FaultConfigError):
        FaultRule("mailbox.request.teleport")


def test_rule_rejects_bad_probability():
    with pytest.raises(FaultConfigError):
        FaultRule("mailbox.request.drop", probability=1.5)
    with pytest.raises(FaultConfigError):
        FaultRule("mailbox.request.drop", probability=-0.1)


def test_rule_rejects_negative_count_after_magnitude():
    with pytest.raises(FaultConfigError):
        FaultRule("mailbox.request.drop", count=-1)
    with pytest.raises(FaultConfigError):
        FaultRule("mailbox.request.drop", after=-1)
    with pytest.raises(FaultConfigError):
        FaultRule("fabric.latency", magnitude=-5)


def test_plan_round_trips_through_dict():
    plan = FaultPlan(seed=42, rules=(
        FaultRule("mailbox.response.drop", probability=0.25, count=3,
                  after=10),
        FaultRule("fabric.latency", magnitude=700),
    ))
    clone = FaultPlan.from_dict(plan.to_dict())
    assert clone == plan
    assert clone.to_dict() == plan.to_dict()


def test_rule_from_dict_rejects_unknown_fields():
    with pytest.raises(FaultConfigError, match="unknown FaultRule fields"):
        FaultRule.from_dict({"point": "fabric.latency", "severity": 9})


def test_empty_plan_is_empty():
    assert FaultPlan.empty().is_empty
    assert not FaultPlan(rules=(FaultRule("fabric.latency"),)).is_empty


def test_rules_for_filters_by_point():
    plan = FaultPlan(rules=(
        FaultRule("mailbox.request.drop"),
        FaultRule("mailbox.response.drop"),
        FaultRule("mailbox.request.drop", after=5),
    ))
    assert len(plan.rules_for("mailbox.request.drop")) == 2
    assert plan.rules_for("ems.core.pause") == ()


def test_injector_is_deterministic_across_instances():
    plan = FaultPlan(seed=99, rules=(
        FaultRule("mailbox.request.drop", probability=0.3),))
    a = FaultInjector(plan)
    b = FaultInjector(plan)
    decisions_a = [a.fires("mailbox.request.drop") is not None
                   for _ in range(200)]
    decisions_b = [b.fires("mailbox.request.drop") is not None
                   for _ in range(200)]
    assert decisions_a == decisions_b
    assert any(decisions_a) and not all(decisions_a)


def test_count_and_after_semantics():
    plan = FaultPlan(rules=(
        FaultRule("mailbox.response.drop", after=2, count=3),))
    injector = FaultInjector(plan)
    fired = [injector.fires("mailbox.response.drop") is not None
             for _ in range(10)]
    assert fired == [False, False, True, True, True,
                     False, False, False, False, False]
    assert injector.stats.opportunities["mailbox.response.drop"] == 10
    assert injector.stats.fired["mailbox.response.drop"] == 3
    assert injector.fired_count("mailbox.response.drop") == 3
    assert injector.fired_count("fabric.latency") == 0


def test_empty_injector_never_fires_and_counts_opportunities():
    injector = FaultInjector(FaultPlan.empty())
    for point in FAULT_POINTS:
        assert injector.fires(point) is None
    assert injector.stats.total_fired == 0


def test_magnitude_reported_per_point():
    plan = FaultPlan(rules=(FaultRule("fabric.latency", magnitude=900),))
    injector = FaultInjector(plan)
    assert injector.magnitude("fabric.latency") == 900
    assert injector.magnitude("ems.handler.stall", default=123) == 123
