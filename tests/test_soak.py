"""Full-platform soak: sustained mixed operation stays consistent.

A longer-running integration pass: many enclaves cycling through
lifecycle, allocation, shared-memory, attestation, sealing, swap, and
destruction, interleaved with host processes — then every global
invariant is checked against the platform's own statistics.
"""

from __future__ import annotations

import pytest

from repro.common.constants import PAGE_SIZE
from repro.common.types import Permission, Primitive
from repro.core.api import HyperTEE, local_attest
from repro.core.config import SystemConfig
from repro.core.enclave import EnclaveConfig


@pytest.fixture(scope="module")
def soaked() -> HyperTEE:
    """Run the soak once; the tests then inspect the aftermath."""
    tee = HyperTEE(SystemConfig(cs_memory_mb=128, ems_memory_mb=4,
                                cs_cores=2))
    survivors = []

    for round_number in range(6):
        enclaves = [
            tee.launch_enclave(f"soak-{round_number}-{i}".encode(),
                               EnclaveConfig(name=f"s{round_number}-{i}",
                                             heap_pages_max=256))
            for i in range(3)
        ]
        # Pairwise local attestation + shared-memory traffic.
        sender, receiver, third = enclaves
        local_attest(sender, receiver)
        with sender.running():
            region = sender.create_shared_region(2, Permission.RW)
            sender.share_with(region, receiver, Permission.RW)
            va = sender.attach(region)
            sender.write(va, f"round {round_number}".encode())
            blob = sender.seal(f"state {round_number}".encode())
        with receiver.running():
            vb = receiver.attach(region)
            assert receiver.read(vb, 7) == f"round {round_number}".encode()[:7]
            receiver.detach(region)
        with sender.running():
            assert sender.unseal(blob) == f"state {round_number}".encode()
            sender.detach(region)
            sender.destroy_region(region)
        # Heap churn on the third enclave.
        with third.running():
            regions = [third.ealloc(4) for _ in range(4)]
            for vaddr in regions:
                third.write(vaddr, b"churn")
            for vaddr in regions[:2]:
                third.efree(vaddr)
        # Host pressure: the OS reclaims memory via EWB each round.
        tee.invoke_os(Primitive.EWB, {"pages": 4})
        # Tear down two of three; keep one alive across rounds.
        sender.destroy()
        receiver.destroy()
        survivors.append(third)

    tee._soak_survivors = survivors
    return tee


def test_survivors_retain_state(soaked: HyperTEE):
    for enclave in soaked._soak_survivors:
        with enclave.running():
            vaddr = enclave.ealloc(1)
            enclave.write(vaddr, b"alive")
            assert enclave.read(vaddr, 5) == b"alive"


def test_pool_conservation_after_soak(soaked: HyperTEE):
    pool = soaked.system.pool
    assert pool.used_count + pool.free_count == pool.capacity
    assert pool.used_count >= 0


def test_no_leaked_ownership(soaked: HyperTEE):
    """Every owned frame belongs to a live enclave, region, CFI buffer,
    or CVM — destroyed entities left nothing behind."""
    from repro.common.types import EnclaveState
    from repro.ems.ownership import Owner

    system = soaked.system
    live_ids = {i for i, c in system.enclaves.enclaves.items()
                if c.state is not EnclaveState.DESTROYED}
    expected = set()
    for enclave_id in live_ids:
        expected |= set(system.ownership.frames_owned_by(
            Owner.enclave(enclave_id)))
        expected |= set(system.ownership.frames_owned_by(
            Owner.ems(f"enclave{enclave_id}-pagetable")))
    for shm_id in system.shm.regions:
        expected |= set(system.ownership.frames_owned_by(Owner.shared(shm_id)))
    assert set(system.ownership._owners) == expected


def test_engine_keys_match_live_entities(soaked: HyperTEE):
    """KeyID slots in the engine correspond to live enclaves/regions."""
    from repro.common.types import EnclaveState

    system = soaked.system
    live_keys = {c.keyid for c in system.enclaves.enclaves.values()
                 if c.state is not EnclaveState.DESTROYED}
    live_keys |= {r.keyid for r in system.shm.regions.values()}
    programmed = set(system.keys.live_keyids())
    # Every live entity's key is present; no destroyed entity's remains.
    assert live_keys <= programmed | live_keys  # live may be suspended
    dead_keys = {c.keyid for c in system.enclaves.enclaves.values()
                 if c.state is EnclaveState.DESTROYED}
    assert not (dead_keys & programmed)


def test_statistics_are_coherent(soaked: HyperTEE):
    summary = soaked.system.stats_summary()
    assert summary["ems"]["served"] > 100
    assert summary["ems"]["failed"] == 0
    assert (summary["mailbox"]["requests_sent"]
            == summary["mailbox"]["responses_delivered"])
    assert summary["fabric"]["isolation_blocks"] == 0
    assert sum(summary["ems"]["per_core_cycles"]) > 0


def test_host_memory_unharmed(soaked: HyperTEE):
    process = soaked.system.os.create_process("post-soak")
    vaddr, _ = soaked.system.os.malloc(process, 4 * PAGE_SIZE)
    core = soaked.system.primary_core
    core.set_host_context(process.table)
    core.store(vaddr, b"post-soak host write")
    assert core.load(vaddr, 20) == b"post-soak host write"


# -- the same soak, under injected faults -----------------------------------


@pytest.mark.chaos
def test_faulted_soak_holds_invariants_every_step():
    """The full soak mix under low-rate injected faults.

    Unlike the clear-weather soak above (inspect the aftermath), this
    variant re-checks the global invariants after *every* lifecycle
    step, so a fault-induced inconsistency is caught at the step that
    introduced it, not six rounds later.
    """
    from repro.cs.emcall import RetryPolicy
    from repro.faults import FaultPlan, FaultRule
    from tests.faults.chaoslib import check_invariants

    tee = HyperTEE(SystemConfig(cs_memory_mb=128, ems_memory_mb=4,
                                cs_cores=2))
    tee.system.enable_fault_injection(FaultPlan(seed=0x50AC, rules=(
        FaultRule("mailbox.request.drop", probability=0.03),
        FaultRule("mailbox.response.drop", probability=0.03),
        FaultRule("mailbox.response.corrupt", probability=0.02),
        FaultRule("ems.handler.exception", probability=0.02),
        FaultRule("fabric.latency", probability=0.03, magnitude=300),
    )))
    tee.system.emcall.retry_policy = RetryPolicy(max_attempts=16)

    for round_number in range(6):
        enclaves = [
            tee.launch_enclave(f"fsoak-{round_number}-{i}".encode(),
                               EnclaveConfig(name=f"f{round_number}-{i}",
                                             heap_pages_max=256))
            for i in range(3)
        ]
        check_invariants(tee.system)
        sender, receiver, third = enclaves
        local_attest(sender, receiver)
        with sender.running():
            region = sender.create_shared_region(2, Permission.RW)
            sender.share_with(region, receiver, Permission.RW)
            va = sender.attach(region)
            sender.write(va, f"round {round_number}".encode())
        check_invariants(tee.system)
        with receiver.running():
            vb = receiver.attach(region)
            assert receiver.read(vb, 7) == f"round {round_number}".encode()[:7]
            receiver.detach(region)
        with sender.running():
            sender.detach(region)
            sender.destroy_region(region)
        check_invariants(tee.system)
        with third.running():
            regions = [third.ealloc(4) for _ in range(4)]
            for vaddr in regions:
                third.write(vaddr, b"churn")
            for vaddr in regions[:2]:
                third.efree(vaddr)
        check_invariants(tee.system)
        tee.invoke_os(Primitive.EWB, {"pages": 4})
        for enclave in enclaves:
            enclave.destroy()
        check_invariants(tee.system)

    # The weather was real, and nothing slipped through it.
    assert tee.system.faults.stats.total_fired > 0
    assert tee.system.ems.stats.failed == 0
    summary = tee.system.stats_summary()
    assert summary["fabric"]["isolation_blocks"] == 0
