"""CLI-level incremental behaviour: --stats, --changed, cache flags,
--json-out/--write-baseline composition, and --baseline-expire."""

from __future__ import annotations

import datetime
import json
import subprocess

import pytest

from repro.analysis.baseline import Baseline
from repro.analysis.engine import run_lint
from repro.obs.cli import main

from .conftest import FIXTURES, REPO_ROOT

BAD = str(FIXTURES / "tee001_bad" / "repro")
GOOD = str(FIXTURES / "tee001_good" / "repro")


def stats_fields(out: str) -> dict[str, str]:
    line = next(ln for ln in out.splitlines()
                if ln.startswith("teelint-stats: "))
    return dict(part.split("=", 1)
                for part in line.split(" ")[1:])


# -- --stats and the warm/cold speedup ---------------------------------------

def test_stats_line_is_machine_parseable(tmp_path, capsys):
    assert main(["lint", GOOD, "--no-baseline", "--stats",
                 "--cache-dir", str(tmp_path / "c")]) == 0
    fields = stats_fields(capsys.readouterr().out)
    assert fields["cache"] == "miss"
    assert float(fields["total_ms"]) > 0
    assert int(fields["modules"]) > 0
    # Identical file contents (empty __init__.py files) share one
    # parse entry, so repeats hit even on a cold run; every file is
    # accounted for either way.
    assert int(fields["parse_misses"]) > 0
    assert int(fields["parse_hits"]) + int(fields["parse_misses"]) \
        == int(fields["modules"])


def test_warm_lint_is_at_least_3x_faster_than_cold(tmp_path, capsys):
    # The acceptance bar for the whole incremental engine. The analysis
    # package itself is the workload: big enough (~25 modules, all 8
    # rules incl. the taint fixpoint) that the ratio is not noise.
    target = str(REPO_ROOT / "src" / "repro" / "analysis")
    args = ["lint", target, "--no-baseline", "--stats",
            "--cache-dir", str(tmp_path / "c")]
    main(args)
    cold = stats_fields(capsys.readouterr().out)
    main(args)
    warm = stats_fields(capsys.readouterr().out)
    assert (cold["cache"], warm["cache"]) == ("miss", "hit")
    assert float(cold["total_ms"]) >= 3 * float(warm["total_ms"]), \
        f"warm lint not >=3x faster: cold={cold['total_ms']}ms " \
        f"warm={warm['total_ms']}ms"


def test_no_cache_disables_both_layers(tmp_path, capsys):
    args = ["lint", GOOD, "--no-baseline", "--stats", "--no-cache"]
    main(args)
    main(args)
    fields = stats_fields(capsys.readouterr().out)
    assert fields["cache"] == "off"


# -- --changed ---------------------------------------------------------------

@pytest.fixture
def git_repo(tmp_path, monkeypatch):
    """A committed package: a violation in dep.py, which imports base."""
    repo = tmp_path / "work"
    pkg = repo / "pkg"
    pkg.mkdir(parents=True)
    (pkg / "__init__.py").write_text("")
    (pkg / "base.py").write_text("VALUE = 1\n")
    (pkg / "dep.py").write_text(
        "from pkg.base import VALUE\n\nSTALL_CYCLES = 123\n")
    (pkg / "clean.py").write_text("OTHER = 2\n")
    env_git = ["git", "-C", str(repo), "-c", "user.email=t@t",
               "-c", "user.name=t"]
    subprocess.run([*env_git[:3], "init", "-q"], check=True)
    subprocess.run([*env_git[:3], "add", "."], check=True)
    subprocess.run([*env_git, "commit", "-qm", "seed"], check=True)
    monkeypatch.chdir(repo)
    return repo


def lint_changed(repo, capsys) -> tuple[int, str]:
    status = main(["lint", str(repo / "pkg"), "--no-baseline",
                   "--changed", "--no-cache", "--stats"])
    return status, capsys.readouterr().out


def test_changed_with_a_clean_diff_reports_nothing(git_repo, capsys):
    # dep.py holds a TEE003 violation, but nothing changed: exit 0.
    status, out = lint_changed(git_repo, capsys)
    assert status == 0
    assert stats_fields(out)["scoped_modules"] == "0"


def test_changed_ignores_violations_outside_the_diff(git_repo, capsys):
    (git_repo / "pkg" / "clean.py").write_text("OTHER = 3\n")
    status, out = lint_changed(git_repo, capsys)
    assert status == 0          # dep.py's violation is out of scope
    assert stats_fields(out)["scoped_modules"] == "1"


def test_changed_reports_violations_in_modified_files(git_repo, capsys):
    (git_repo / "pkg" / "dep.py").write_text(
        "from pkg.base import VALUE\n\nSTALL_CYCLES = 124\n")
    status, out = lint_changed(git_repo, capsys)
    assert status == 1
    assert "TEE003" in out


def test_changed_includes_reverse_dependencies(git_repo, capsys):
    # Touch base.py only: dep.py imports it, so dep.py's existing
    # violation comes back into scope.
    (git_repo / "pkg" / "base.py").write_text("VALUE = 7\n")
    status, out = lint_changed(git_repo, capsys)
    assert status == 1
    assert "TEE003" in out
    assert int(stats_fields(out)["scoped_modules"]) >= 2


def test_changed_scoping_skips_stale_baseline_noise(git_repo):
    # A scoped run sees a slice of the findings; baseline entries for
    # out-of-scope findings must not be reported as stale.
    result = run_lint([git_repo / "pkg"], changed_files=set())
    assert result.stale_baseline == []
    assert result.scoped_modules == 0


def test_changed_outside_a_git_tree_exits_two(tmp_path, monkeypatch,
                                              capsys):
    tree = tmp_path / "nogit" / "pkg"
    tree.mkdir(parents=True)
    (tree / "__init__.py").write_text("")
    monkeypatch.setenv("GIT_CEILING_DIRECTORIES", str(tmp_path))
    monkeypatch.chdir(tmp_path / "nogit")
    assert main(["lint", str(tree), "--no-baseline", "--changed",
                 "--no-cache"]) == 2
    assert "git" in capsys.readouterr().err


# -- flag composition --------------------------------------------------------

def test_json_out_composes_with_write_baseline(tmp_path, capsys):
    baseline = tmp_path / "b.json"
    artifact = tmp_path / "out.json"
    assert main(["lint", BAD, "--no-cache", "--baseline", str(baseline),
                 "--write-baseline", "--json-out", str(artifact)]) == 0
    assert baseline.exists()
    payload = json.loads(artifact.read_text())
    # The artifact captures the findings as they were accepted.
    assert payload["findings"] and payload["ok"] is False


def test_baseline_expire_requires_write_baseline(capsys):
    assert main(["lint", GOOD, "--no-cache",
                 "--baseline-expire", "90"]) == 2
    assert "--write-baseline" in capsys.readouterr().err


def test_baseline_expire_stamps_dates(tmp_path, capsys):
    baseline = tmp_path / "b.json"
    assert main(["lint", BAD, "--no-cache", "--baseline", str(baseline),
                 "--write-baseline", "--baseline-expire", "30"]) == 0
    entries = Baseline.load(baseline).entries
    assert entries
    for entry in entries:
        added = datetime.date.fromisoformat(entry.added)
        expires = datetime.date.fromisoformat(entry.expires)
        assert (expires - added).days == 30


def test_expired_entries_warn_but_do_not_fail(tmp_path, capsys):
    baseline_path = tmp_path / "b.json"
    findings = run_lint([BAD]).findings
    Baseline.from_findings(
        findings, reason="time-boxed exception",
        added=datetime.date(2020, 1, 1), expire_days=1,
    ).save(baseline_path)
    assert main(["lint", BAD, "--no-cache",
                 "--baseline", str(baseline_path)]) == 0
    out = capsys.readouterr().out
    assert "expired baseline entry" in out
    assert "0 error(s)" in out
