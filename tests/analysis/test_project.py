"""Project scanning, module naming, import resolution, and the graph."""

from __future__ import annotations

import textwrap

from repro.analysis import Project, run_lint
from repro.analysis.project import module_name_for

from .conftest import FIXTURES


def write_tree(root, files: dict[str, str]) -> None:
    for rel, body in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(body), encoding="utf-8")


def test_module_names_follow_init_chain(tmp_path):
    write_tree(tmp_path, {
        "repro/__init__.py": "",
        "repro/cs/__init__.py": "",
        "repro/cs/sched.py": "",
        "repro/orphan_dir/loose.py": "",  # no __init__.py: not a package
    })
    assert module_name_for(tmp_path / "repro/cs/sched.py") == \
        "repro.cs.sched"
    assert module_name_for(tmp_path / "repro/cs/__init__.py") == "repro.cs"
    assert module_name_for(tmp_path / "repro/orphan_dir/loose.py") == "loose"


def test_scan_collects_modules_and_relpaths():
    project = Project.scan([FIXTURES / "tee001_good" / "repro"])
    names = {m.name for m in project}
    assert "repro.core.api" in names
    assert project.by_name["repro.core.api"].relpath == "repro/core/api.py"
    assert project.by_name["repro.core.api"].subsystem == "core"
    assert project.by_name["repro"].subsystem == ""


def test_from_import_resolves_submodule_vs_symbol(tmp_path):
    write_tree(tmp_path, {
        "repro/__init__.py": "",
        "repro/pkg/__init__.py": "",
        "repro/pkg/sub.py": "",
        "repro/user.py": """\
            from repro.pkg import sub
            from repro.pkg.sub import something
        """,
    })
    project = Project.scan([tmp_path / "repro"])
    targets = [e.target for e in project.import_edges()["repro.user"]]
    # ``from repro.pkg import sub`` reaches the submodule; importing a
    # symbol from it reaches the module that defines the symbol.
    assert targets == ["repro.pkg.sub", "repro.pkg.sub"]


def test_relative_imports_resolve_against_the_package(tmp_path):
    write_tree(tmp_path, {
        "repro/__init__.py": "",
        "repro/pkg/__init__.py": "from .sub import thing\n",
        "repro/pkg/sub.py": "thing = 1\n",
        "repro/pkg/peer.py": "from . import sub\nfrom .sub import thing\n",
    })
    project = Project.scan([tmp_path / "repro"])
    edges = project.import_edges()
    assert [e.target for e in edges["repro.pkg"]] == ["repro.pkg.sub"]
    assert [e.target for e in edges["repro.pkg.peer"]] == \
        ["repro.pkg.sub", "repro.pkg.sub"]


def test_graph_excludes_mediator_subsystems():
    project = Project.scan([FIXTURES / "tee001_good" / "repro"])
    adj = project.graph(exclude_subsystems=("core",))
    assert "repro.core.api" not in adj
    assert all("repro.core.api" not in targets for targets in adj.values())
    full = project.graph()
    assert {"repro.cs.sched", "repro.ems.runtime"} <= \
        full["repro.core.api"]


def test_shortest_path_finds_the_transitive_chain():
    project = Project.scan([FIXTURES / "tee001_bad" / "repro"])
    adj = project.graph(exclude_subsystems=("core",))
    goals = {m.name for m in project if m.subsystem == "ems"}
    path = project.shortest_path("repro.cs.top", goals, adj)
    assert path == ["repro.cs.top", "repro.common.mid", "repro.ems.runtime"]


def test_syntax_errors_become_tee000_findings(tmp_path):
    write_tree(tmp_path, {
        "repro/__init__.py": "",
        "repro/broken.py": "def oops(:\n",
        "repro/fine.py": "x = 1\n",
    })
    result = run_lint([tmp_path / "repro"])
    assert result.modules_scanned == 2  # the broken file is not a module
    tee000 = [f for f in result.findings if f.rule == "TEE000"]
    assert len(tee000) == 1
    assert tee000[0].path == "repro/broken.py"
    assert tee000[0].blocking
