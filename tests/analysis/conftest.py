"""Shared helpers for the teelint test suite."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import run_lint

FIXTURES = Path(__file__).parent / "fixtures"

#: Fixture trees are lint inputs, not test modules — some (tee012)
#: contain ``tests/test_*.py`` stubs that pytest must never collect.
collect_ignore = ["fixtures"]

#: Repository root (tests/analysis/ -> tests/ -> repo).
REPO_ROOT = Path(__file__).parents[2]


@pytest.fixture
def lint_fixture():
    """Run a single rule over one fixture tree's ``repro`` package."""

    def _lint(fixture: str, rule: str):
        root = FIXTURES / fixture / "repro"
        assert root.is_dir(), f"missing fixture tree {root}"
        return run_lint([root], only=(rule,))

    return _lint
