"""The incremental cache: parse layer, result layer, invalidation.

The two invariants that keep caching honest:

* **identical inputs replay identical findings** (hit: no parsing, no
  rule execution);
* **any input change re-runs** — file content (hash key) or rule
  behaviour (the ``version`` class attribute in the rules signature).
"""

from __future__ import annotations

import ast

import pytest

from repro.analysis.cache import CACHE_DIRNAME, LintCache, content_hash
from repro.analysis.engine import run_lint
from repro.analysis.rules import rules_signature

BAD_SOURCE = "STALL_CYCLES = 123\n"


@pytest.fixture
def tree(tmp_path):
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "mod.py").write_text(BAD_SOURCE)
    return pkg


@pytest.fixture
def cache(tmp_path):
    return LintCache(tmp_path / CACHE_DIRNAME)


# -- the parse layer ---------------------------------------------------------

def test_parse_cache_round_trips_the_ast(cache):
    text = "def f(x):\n    return x + 1\n"
    cold = cache.parse(text)
    warm = cache.parse(text)
    assert (cache.parse_misses, cache.parse_hits) == (1, 1)
    assert ast.dump(cold) == ast.dump(warm) == ast.dump(ast.parse(text))


def test_corrupt_parse_entries_fall_back_to_reparsing(cache):
    text = "x = 1\n"
    cache.parse(text)
    (pickle_file,) = (cache.directory / "parse").glob("*.pkl")
    pickle_file.write_bytes(b"not a pickle")
    assert ast.dump(cache.parse(text)) == ast.dump(ast.parse(text))
    assert cache.parse_misses == 2


def test_syntax_errors_propagate_and_are_never_cached(cache):
    with pytest.raises(SyntaxError):
        cache.parse("def broken(:\n")
    with pytest.raises(SyntaxError):
        cache.parse("def broken(:\n")
    assert cache.parse_hits == 0


# -- the result layer --------------------------------------------------------

def test_warm_run_replays_findings_without_rule_execution(tree, cache):
    cold = run_lint([tree], only=("TEE003",), cache=cache)
    warm = run_lint([tree], only=("TEE003",), cache=cache)
    assert cold.cache_state == "miss"
    assert warm.cache_state == "hit"
    assert [f.fingerprint for f in warm.findings] == \
        [f.fingerprint for f in cold.findings]
    assert warm.findings[0].key == "literal:STALL_CYCLES=123"
    assert warm.modules_scanned == cold.modules_scanned


def test_content_change_invalidates_the_result(tree, cache):
    run_lint([tree], only=("TEE003",), cache=cache)
    (tree / "mod.py").write_text("STALL_CYCLES = 999\n")
    rerun = run_lint([tree], only=("TEE003",), cache=cache)
    assert rerun.cache_state == "miss"
    assert rerun.findings[0].key == "literal:STALL_CYCLES=999"


def test_rule_version_bump_invalidates_the_result(tree, cache):
    class CountingRule:
        id = "TST001"
        title = "counts its own executions"
        version = 1
        calls = 0

        def check(self, project):
            type(self).calls += 1
            return iter(())

    rule = CountingRule()
    run_lint([tree], rules=[rule], cache=cache)
    run_lint([tree], rules=[rule], cache=cache)
    assert CountingRule.calls == 1          # second run was a hit
    CountingRule.version = 2
    result = run_lint([tree], rules=[rule], cache=cache)
    assert result.cache_state == "miss"
    assert CountingRule.calls == 2


def test_rules_signature_covers_id_and_version():
    class A:
        id = "TEEX"
        version = 3

    class B:
        id = "TEEY"                          # no version attr -> 1

    assert rules_signature([B(), A()]) == "TEEX:3,TEEY:1"


def test_corrupt_result_entries_are_misses(tree, cache):
    run_lint([tree], only=("TEE003",), cache=cache)
    for path in (cache.directory / "results").glob("*.json"):
        path.write_text("{ not json")
    rerun = run_lint([tree], only=("TEE003",), cache=cache)
    assert rerun.cache_state == "miss"
    assert rerun.findings[0].key == "literal:STALL_CYCLES=123"


def test_suppressions_and_baseline_are_applied_after_the_cache(
        tree, cache):
    from repro.analysis.baseline import Baseline

    cold = run_lint([tree], only=("TEE003",), cache=cache)
    accepted = Baseline.from_findings(cold.findings, reason="known")
    warm = run_lint([tree], only=("TEE003",), baseline=accepted,
                    cache=cache)
    # Same raw results replayed, but the baseline (outside the key)
    # reclassifies them live.
    assert warm.cache_state == "hit"
    assert warm.findings == [] and len(warm.baselined) == 1


def test_baseline_file_edit_between_runs_is_never_masked_by_the_cache(
        tree, cache, tmp_path):
    # The baseline lives *outside* the result key on purpose: editing
    # teelint.baseline.json between runs must not require a cold run,
    # and must not replay stale classifications either. The raw
    # findings replay from the cache; the freshly loaded baseline
    # reclassifies them on every run.
    from repro.analysis.baseline import Baseline

    cold = run_lint([tree], only=("TEE003",), cache=cache)
    assert [f.key for f in cold.findings] == ["literal:STALL_CYCLES=123"]

    baseline_path = tmp_path / "teelint.baseline.json"
    Baseline.from_findings(cold.findings, reason="accepted for now") \
        .save(baseline_path)
    warm = run_lint([tree], only=("TEE003",),
                    baseline=Baseline.load(baseline_path), cache=cache)
    assert warm.cache_state == "hit"
    assert warm.findings == [] and len(warm.baselined) == 1

    # Retire the exception by editing the file: still a cache hit, but
    # the finding resurfaces live instead of staying buried.
    baseline_path.write_text('{"findings": []}', encoding="utf-8")
    rerun = run_lint([tree], only=("TEE003",),
                     baseline=Baseline.load(baseline_path), cache=cache)
    assert rerun.cache_state == "hit"
    assert [f.key for f in rerun.findings] == \
        ["literal:STALL_CYCLES=123"]
    assert rerun.baselined == []


def test_tee012_chaos_corpus_edit_invalidates_the_result(tmp_path):
    # The chaos corpus is input the source manifest cannot see; the
    # rule's corpus_signature hook folds it into the result key so a
    # warm cache never replays stale coverage verdicts.
    import shutil

    from .conftest import FIXTURES

    cache = LintCache(tmp_path / CACHE_DIRNAME)
    root = tmp_path / "tree"
    shutil.copytree(FIXTURES / "tee012_good", root)
    cold = run_lint([root / "repro"], only=("TEE012",), cache=cache)
    warm = run_lint([root / "repro"], only=("TEE012",), cache=cache)
    assert cold.findings == [] and warm.findings == []
    assert warm.cache_state == "hit"

    stub = root / "tests" / "test_chaos_stub.py"
    stub.write_text(stub.read_text(encoding="utf-8")
                    .replace("ems.stall", "ems.sta11"), encoding="utf-8")
    rerun = run_lint([root / "repro"], only=("TEE012",), cache=cache)
    assert rerun.cache_state == "miss"
    assert [f.key for f in rerun.findings] == \
        ["untested-point:ems.stall"]


def test_content_hash_is_stable_and_sensitive():
    assert content_hash("a") == content_hash("a")
    assert content_hash("a") != content_hash("b")
