"""Per-rule fixture tests: the bad tree fires, the good twin is silent.

Every rule gets the same treatment — run it alone (``only=``) over the
miniature ``repro`` package in ``fixtures/teeNNN_bad`` and assert the
exact finding keys, then over ``fixtures/teeNNN_good`` and assert
silence. Keys (not messages) are the contract: they feed the baseline
fingerprints.
"""

from __future__ import annotations

from repro.analysis.findings import Severity


def keys(result):
    return {f.key for f in result.findings}


def by_key(result):
    return {f.key: f for f in result.findings}


# -- TEE001 boundary ---------------------------------------------------------

def test_tee001_bad_fires_direct_and_transitive(lint_fixture):
    result = lint_fixture("tee001_bad", "TEE001")
    assert keys(result) == {
        "repro.cs.sched->repro.ems.runtime",
        "repro.ems.pool->repro.cs.sched",
        "repro.attacks.evil->repro.ems.runtime",
        "transitive:repro.cs.top->repro.common.mid~>repro.ems.runtime",
    }
    assert all(f.severity is Severity.ERROR for f in result.findings)
    transitive = by_key(result)[
        "transitive:repro.cs.top->repro.common.mid~>repro.ems.runtime"]
    # The full chain is spelled out so the first shared link is obvious.
    assert "repro.common.mid" in transitive.message


def test_tee001_direct_findings_point_at_the_import_line(lint_fixture):
    result = lint_fixture("tee001_bad", "TEE001")
    direct = by_key(result)["repro.cs.sched->repro.ems.runtime"]
    assert direct.path == "repro/cs/sched.py"
    assert direct.line == 1


def test_tee001_good_is_silent(lint_fixture):
    result = lint_fixture("tee001_good", "TEE001")
    assert result.findings == []
    # The mediator really is in the tree (core imports both sides).
    assert result.modules_scanned >= 10


# -- TEE002 determinism ------------------------------------------------------

def test_tee002_bad_fires_on_every_entropy_leak(lint_fixture):
    result = lint_fixture("tee002_bad", "TEE002")
    assert keys(result) == {
        "import:random",
        "from:random.randint",
        "call:random.random",
        "call:time.time",
        "call:datetime.datetime.now",
        "call:os.urandom",
        "call:random.Random()",
    }
    severities = {f.key: f.severity for f in result.findings}
    assert severities["import:random"] is Severity.WARNING
    assert severities["call:time.time"] is Severity.ERROR
    assert severities["call:random.Random()"] is Severity.ERROR


def test_tee002_good_rng_provider_is_exempt(lint_fixture):
    result = lint_fixture("tee002_good", "TEE002")
    assert result.findings == []


# -- TEE003 cycle accounting -------------------------------------------------

def test_tee003_bad_fires_on_stray_literals_and_dead_truth(lint_fixture):
    result = lint_fixture("tee003_bad", "TEE003")
    assert keys(result) == {
        "literal:STALL_CYCLES=123",
        "literal:COSTS_CYCLES=9",
        "literal:flush_cycles=42",
        "literal:warmup_cycles=10",
        "dead:DEAD_CYCLES",
    }
    found = by_key(result)
    assert found["dead:DEAD_CYCLES"].severity is Severity.WARNING
    assert found["dead:DEAD_CYCLES"].path == "repro/eval/calibration.py"
    assert found["literal:STALL_CYCLES=123"].severity is Severity.ERROR


def test_tee003_good_named_costs_are_silent(lint_fixture):
    result = lint_fixture("tee003_good", "TEE003")
    # 2 * STALL_CYCLES, zero initialisers, and constant references
    # are all structure, not duplicated truth.
    assert result.findings == []


# -- TEE004 secret flow ------------------------------------------------------

def test_tee004_bad_fires_on_every_sink_class(lint_fixture):
    result = lint_fixture("tee004_bad", "TEE004")
    assert keys(result) == {
        "flow:report->metric label",
        "flow:trace->trace span arg",
        "flow:log_it->log call (info)",
        "flow:banner->f-string",
        "flow:wire->packet field (PrimitiveRequest)",
    }
    assert all(f.severity is Severity.ERROR for f in result.findings)


def test_tee004_good_digests_and_crypto_use_are_silent(lint_fixture):
    # Hash digests of keys, len() of keys, and passing a key to the
    # crypto provider are all legitimate; only raw material at an
    # observable sink fires.
    result = lint_fixture("tee004_good", "TEE004")
    assert result.findings == []


# -- TEE005 registry consistency ---------------------------------------------

def test_tee005_bad_fires_on_typo_dead_point_and_dup_metric(lint_fixture):
    result = lint_fixture("tee005_bad", "TEE005")
    assert keys(result) == {
        "unknown-point:mailbox.dorp",
        "dead-point:ems.stall",
        "dup-metric:hypertee_demo_total",
    }
    found = by_key(result)
    assert found["unknown-point:mailbox.dorp"].severity is Severity.ERROR
    assert found["dead-point:ems.stall"].severity is Severity.WARNING
    assert found["dead-point:ems.stall"].path == "repro/faults/plan.py"
    # The duplicate points back at the first declaration site.
    assert "repro/obs/a.py" in found["dup-metric:hypertee_demo_total"].message


def test_tee005_good_consulted_points_and_unique_metrics(lint_fixture):
    result = lint_fixture("tee005_good", "TEE005")
    assert result.findings == []


# -- TEE004 interprocedural --------------------------------------------------

def test_tee004_interproc_bad_crosses_two_calls_and_a_method(lint_fixture):
    # Source in Vault.material() (a method), secret returned through a
    # summary, sink reached two calls away inside emit().
    result = lint_fixture("tee004_interproc_bad", "TEE004")
    assert keys(result) == {"flow:announce->emit~>log call (info)"}
    finding = by_key(result)["flow:announce->emit~>log call (info)"]
    assert finding.severity is Severity.ERROR
    assert finding.path == "repro/flow.py"
    assert "emit" in finding.message


def test_tee004_interproc_good_sanitized_twin_is_silent(lint_fixture):
    result = lint_fixture("tee004_interproc_good", "TEE004")
    assert result.findings == []


# -- TEE004 flight-recorder sinks --------------------------------------------

def test_tee004_flightrec_bad_fires_on_black_box_sinks(lint_fixture):
    # The flight-recorder ring lands verbatim in crash-dump artifacts,
    # so record_event() and anything called on a flightrec receiver are
    # observable sinks for key material.
    result = lint_fixture("tee004_flightrec_bad", "TEE004")
    assert keys(result) == {
        "flow:crash_dump->flight recorder event",
        "flow:stash->flight recorder event",
        "flow:note->flight recorder (push)",
    }
    assert all(f.severity is Severity.ERROR for f in result.findings)


def test_tee004_flightrec_good_digested_twin_is_silent(lint_fixture):
    result = lint_fixture("tee004_flightrec_good", "TEE004")
    assert result.findings == []


# -- TEE004 teesan report sinks ----------------------------------------------

def test_tee004_sanitize_bad_fires_on_teesan_report_sinks(lint_fixture):
    # teesan diagnostics are printed, written to CI artifacts, and
    # embedded in exception text — the reporting APIs are sinks, so key
    # material must be redacted before it reaches a violation message.
    result = lint_fixture("tee004_sanitize_bad", "TEE004")
    assert keys(result) == {
        "flow:diagnose->teesan report (report_violation)",
        "flow:render->teesan report (format_violation)",
        "flow:summarize->teesan report (format_summary)",
    }
    assert all(f.severity is Severity.ERROR for f in result.findings)


def test_tee004_sanitize_good_redacted_twin_is_silent(lint_fixture):
    result = lint_fixture("tee004_sanitize_good", "TEE004")
    assert result.findings == []


# -- TEE006 lifecycle typestate ----------------------------------------------

def test_tee006_bad_fires_on_every_protocol_violation(lint_fixture):
    result = lint_fixture("tee006_bad", "TEE006")
    assert keys(result) == {
        "typestate:use_without_enter:e.write():measured",
        "typestate:double_destroy:e.destroy():destroyed",
        "typestate:resume_before_exit:e.resume():running",
        "typestate:reenter:e.running():running",
        "left-running:leak:e",
    }
    found = by_key(result)
    assert found["left-running:leak:e"].severity is Severity.WARNING
    assert found["typestate:double_destroy:e.destroy():destroyed"] \
        .severity is Severity.ERROR


def test_tee006_good_ordered_branches_and_handoffs_are_silent(lint_fixture):
    # Straight-line use, `with e.running():`, suspend/resume, branch
    # joins, escaping receivers, and unknown provenance: all silent.
    result = lint_fixture("tee006_good", "TEE006")
    assert result.findings == []


def test_tee006_real_sdk_lifecycle_is_clean():
    # The real CS SDK and the benchmark driver launch/enter/destroy in
    # protocol order — the rule must agree with the runtime machine.
    from repro.analysis import run_lint
    from .conftest import REPO_ROOT
    src = REPO_ROOT / "src" / "repro"
    result = run_lint([src / "cs" / "sdk.py", src / "eval" / "bench.py"],
                      only=("TEE006",))
    assert result.findings == []


# -- TEE007 exception safety -------------------------------------------------

def test_tee007_bad_fires_on_swallowed_signals_and_missing_status(
        lint_fixture):
    result = lint_fixture("tee007_bad", "TEE007")
    assert keys(result) == {
        "swallow:swallow_timeout:EMCallTimeout",
        "swallow:swallow_all:Exception",
        "swallow:bare:bare except",
        "missing-status:no_status",
    }
    assert all(f.severity is Severity.ERROR for f in result.findings)


def test_tee007_good_typed_outcomes_are_exempt(lint_fixture):
    # Narrow handlers, re-raises, DegradedResult construction, and
    # status-carrying/splatted PrimitiveResponse calls: all silent.
    result = lint_fixture("tee007_good", "TEE007")
    assert result.findings == []


def test_tee007_real_ems_crash_handler_is_exempt():
    # ems/runtime.py catches Exception on the dispatch path but turns
    # it into a typed PrimitiveResponse — exactly the idiom the rule
    # must not flag.
    from repro.analysis import run_lint
    from .conftest import REPO_ROOT
    runtime = REPO_ROOT / "src" / "repro" / "ems" / "runtime.py"
    result = run_lint([runtime], only=("TEE007",))
    assert result.findings == []


# -- TEE008 secret-dependent timing ------------------------------------------

def test_tee008_bad_fires_on_asymmetric_cost_arms(lint_fixture):
    result = lint_fixture("tee008_bad", "TEE008")
    functions = sorted(k.split(":")[1] for k in keys(result))
    assert functions == ["accumulate", "charge"]
    for finding in result.findings:
        assert finding.severity is Severity.ERROR
        assert finding.key.startswith("timing:")
        assert "asymmetric" in finding.message


def test_tee008_good_equal_sanitized_and_public_branches(lint_fixture):
    result = lint_fixture("tee008_good", "TEE008")
    assert result.findings == []


def test_tee008_real_model_charges_uniformly():
    # The real model's cycle accounting never branches on key material:
    # the defense the paper claims is the one the code implements.
    from repro.analysis import run_lint
    from .conftest import REPO_ROOT
    result = run_lint([REPO_ROOT / "src" / "repro"], only=("TEE008",))
    assert result.findings == []


# -- TEE009 transfer protocol typestate ---------------------------------------

def test_tee009_bad_fires_on_every_protocol_break(lint_fixture):
    result = lint_fixture("tee009_bad", "TEE009")
    assert keys(result) == {
        "mutation-before-auth:mutate_before_auth:release_all()",
        "mutation-before-verify:mutate_before_auth:release_all()",
        "mutation-before-auth:mutate_before_auth:claim_all()",
        "mutation-before-verify:mutate_before_auth:claim_all()",
        "abort-after-mutation:abort_midway",
        "unpaired-seal:prepare_only",
        "mutation-before-auth:prepare_only:release_all()",
        "mutation-before-auth:prepare_only:claim_all()",
        "unbound-manifest:wrong_magic",
    }
    assert all(f.severity is Severity.ERROR for f in result.findings)
    abort = by_key(result)["abort-after-mutation:abort_midway"]
    # The finding points at the late raise, not the function header.
    assert "raises after fleet state" in abort.message


def test_tee009_good_full_protocol_and_single_sided_are_silent(
        lint_fixture):
    # The complete prepare/commit dance is clean, and single-sided
    # claim/release (creation, teardown) never enters scope.
    result = lint_fixture("tee009_good", "TEE009")
    assert result.findings == []


def test_tee009_real_shardpool_transfer_is_clean():
    # ShardPool.transfer_enclave is the protocol's reference
    # implementation — the rule must agree with it.
    from repro.analysis import run_lint
    from .conftest import REPO_ROOT
    result = run_lint([REPO_ROOT / "src" / "repro"], only=("TEE009",))
    assert result.findings == []


# -- TEE010 shard isolation ---------------------------------------------------

def test_tee010_bad_fires_on_unrouted_fleet_access(lint_fixture):
    result = lint_fixture("tee010_bad", "TEE010")
    # Nothing from repro/ems/shardpool.py: the coordinator is exempt.
    assert keys(result) == {
        "cached-shard-ref:__init__:home",
        "hardcoded-shard:peek_mailbox:shards[0]",
        "sibling-component:peek_mailbox:mailbox",
        "hardcoded-shard:drain_second:gates[1]",
        "hardcoded-shard:last_shard_backlog:shards[-1]",
        "sibling-component:last_shard_backlog:pages",
    }
    assert all(f.severity is Severity.ERROR for f in result.findings)
    assert all(f.path == "repro/eval/driver.py" for f in result.findings)


def test_tee010_good_routed_access_is_silent(lint_fixture):
    # Routed subscripts, shard_of().mailbox, slices, iteration, and the
    # constructor-argument primary designation are all sanctioned.
    result = lint_fixture("tee010_good", "TEE010")
    assert result.findings == []


def test_tee010_real_emcall_and_serve_route_everything():
    from repro.analysis import run_lint
    from .conftest import REPO_ROOT
    result = run_lint([REPO_ROOT / "src" / "repro"], only=("TEE010",))
    assert result.findings == []


# -- TEE011 kernel determinism ------------------------------------------------

def test_tee011_bad_fires_on_float_charging_paths(lint_fixture):
    result = lint_fixture("tee011_bad", "TEE011")
    assert keys(result) == {
        "float-return:service_cycles",
        "float-cost:charge_batch:cycles",
        "float-cost-acc:charge_batch:total_cycles",
        "float-scatter:scatter:shares_cycles",
        "banned-reduction:summarize:mean",
        "banned-reduction:summarize:std",
    }
    assert all(f.severity is Severity.ERROR for f in result.findings)


def test_tee011_good_integer_spellings_are_silent(lint_fixture):
    # dtype=np.int64, //, divmod, int(...), .astype(np.int64): all the
    # sanctioned spellings type as INT and stay silent.
    result = lint_fixture("tee011_good", "TEE011")
    assert result.findings == []


def test_tee011_real_fast_engine_is_integer_exact():
    # The differential matrix pins the fast engine bit-for-bit; the
    # rule must agree the shipped kernels qualify.
    from repro.analysis import run_lint
    from .conftest import REPO_ROOT
    result = run_lint([REPO_ROOT / "src" / "repro"], only=("TEE011",))
    assert result.findings == []


# -- TEE012 fault coverage ----------------------------------------------------

def test_tee012_bad_fires_on_unfired_and_untested_points(lint_fixture):
    result = lint_fixture("tee012_bad", "TEE012")
    assert keys(result) == {
        "unfired-point:disk.ghost",
        "untested-point:ems.stall",
        "untested-point:disk.ghost",
    }
    assert all(f.severity is Severity.ERROR for f in result.findings)
    # Both findings anchor at the catalogue declaration line.
    assert all(f.path == "repro/faults/plan.py" for f in result.findings)


def test_tee012_good_covered_catalogue_is_silent(lint_fixture):
    result = lint_fixture("tee012_good", "TEE012")
    assert result.findings == []


def test_tee012_missing_corpus_is_a_warning(tmp_path):
    # A plan with no tests/ ancestor within reach: coverage cannot be
    # verified, which is a WARNING, never silence.
    import shutil

    from repro.analysis import run_lint
    from .conftest import FIXTURES
    deep = tmp_path / "a" / "b" / "c" / "d"
    shutil.copytree(FIXTURES / "tee012_good" / "repro", deep / "repro")
    result = run_lint([deep / "repro"], only=("TEE012",))
    assert keys(result) == {"no-chaos-corpus"}
    finding = result.findings[0]
    assert finding.severity is Severity.WARNING


def test_tee012_real_catalogue_is_fully_covered():
    # Every shipped FAULT_POINTS entry is consulted somewhere in src
    # and named by at least one chaos test.
    from repro.analysis import run_lint
    from .conftest import REPO_ROOT
    result = run_lint([REPO_ROOT / "src" / "repro"], only=("TEE012",))
    assert result.findings == []
