"""The ``python -m repro lint`` surface and the subcommand inventory."""

from __future__ import annotations

import json

import pytest

from repro.obs.cli import COMMANDS, build_parser, main

from .conftest import FIXTURES

BAD = str(FIXTURES / "tee001_bad" / "repro")
GOOD = str(FIXTURES / "tee001_good" / "repro")


# -- subcommand inventory (the --help bugfix) --------------------------------

def test_commands_constant_matches_the_parser():
    parser = build_parser()
    sub = next(a for a in parser._actions
               if hasattr(a, "choices") and a.choices)
    assert tuple(sub.choices) == COMMANDS == \
        ("regen", "metrics", "trace", "slo", "flightrec", "bench", "serve",
         "lint", "sanitize")


def test_help_lists_every_subcommand_with_help_text(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["--help"])
    assert exc.value.code == 0
    out = capsys.readouterr().out
    for command in COMMANDS:
        assert command in out
    assert "teelint" in out  # the one-line lint help is present


def test_lint_dispatches_as_a_subcommand_not_an_artifact(capsys):
    # Regression: main() used to know only regen/metrics/trace/bench and
    # would rewrite ``lint`` into ``regen lint`` (an unknown artifact).
    assert main(["lint", GOOD, "--no-baseline"]) == 0
    assert "teelint" in capsys.readouterr().out


def test_bare_artifact_names_still_regenerate(capsys):
    # The back-compat path must survive the inventory change.
    assert main(["table4"]) == 0
    assert "Table IV" in capsys.readouterr().out


# -- exit codes --------------------------------------------------------------

def test_lint_clean_tree_exits_zero(capsys):
    assert main(["lint", GOOD, "--no-baseline"]) == 0
    out = capsys.readouterr().out
    assert "0 error(s)" in out


def test_lint_violations_exit_one(capsys):
    assert main(["lint", BAD, "--no-baseline"]) == 1
    out = capsys.readouterr().out
    assert "TEE001" in out


def test_lint_missing_path_exits_two(capsys):
    assert main(["lint", "/nonexistent/tree"]) == 2


def test_lint_unknown_rule_exits_two(capsys):
    assert main(["lint", GOOD, "--rules", "TEE999"]) == 2


def test_warning_only_findings_do_not_block(capsys):
    bad002 = str(FIXTURES / "tee002_bad" / "repro")
    # TEE002's import-of-random finding alone is a warning: exit 0.
    # (The errors in the same fixture are what block; filter them away
    # by scanning with a rule that yields nothing for this tree.)
    assert main(["lint", bad002, "--no-baseline", "--rules", "TEE001"]) == 0


# -- formats -----------------------------------------------------------------

def test_json_format_is_valid_and_complete(capsys):
    assert main(["lint", BAD, "--no-baseline", "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == 2
    assert payload["ok"] is False
    assert payload["counts"]["error"] == len(payload["findings"])
    first = payload["findings"][0]
    assert {"rule", "severity", "path", "line", "message",
            "fingerprint"} <= set(first)


def test_github_format_emits_workflow_commands(capsys):
    assert main(["lint", BAD, "--no-baseline", "--format", "github"]) == 1
    lines = capsys.readouterr().out.strip().splitlines()
    annotations = [ln for ln in lines if ln.startswith("::")]
    assert annotations, "no workflow commands emitted"
    assert all(ln.startswith("::error file=repro/") for ln in annotations)
    assert any("title=teelint TEE001" in ln for ln in annotations)


def test_json_out_writes_the_artifact(tmp_path, capsys):
    out = tmp_path / "findings.json"
    assert main(["lint", GOOD, "--no-baseline",
                 "--json-out", str(out)]) == 0
    assert json.loads(out.read_text())["ok"] is True


def test_sarif_format_emits_valid_runs(capsys):
    assert main(["lint", BAD, "--no-baseline", "--format", "sarif"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == "2.1.0"
    (run,) = payload["runs"]
    assert run["tool"]["driver"]["name"] == "teelint"
    assert all(r["ruleId"] == "TEE001" for r in run["results"])
    assert all("teelintFingerprint/v1" in r["partialFingerprints"]
               for r in run["results"])


def test_sarif_out_writes_the_artifact_with_repo_relative_uris(
        tmp_path, capsys, monkeypatch):
    # Scanned from the repo root, finding paths (repro/...) gain the
    # shared parent prefix so code scanning resolves them.
    from .conftest import REPO_ROOT
    monkeypatch.chdir(REPO_ROOT)
    out = tmp_path / "teelint.sarif"
    assert main(["lint", "src/repro/eval", "--no-baseline",
                 "--rules", "TEE001", "--no-cache",
                 "--sarif-out", str(out)]) == 0
    payload = json.loads(out.read_text())
    assert payload["runs"][0]["results"] == []
    capsys.readouterr()

    monkeypatch.chdir(FIXTURES / "tee001_bad")
    assert main(["lint", "repro", "--no-baseline", "--no-cache",
                 "--sarif-out", str(out)]) == 1
    payload = json.loads(out.read_text())
    uris = [r["locations"][0]["physicalLocation"]["artifactLocation"]
            ["uri"] for r in payload["runs"][0]["results"]]
    # Scan root == cwd child: no prefix to add.
    assert uris and all(u.startswith("repro/") for u in uris)


def test_sarif_base_path_resolution():
    from pathlib import Path

    from repro.analysis.cli import sarif_base_path
    from .conftest import REPO_ROOT

    import os
    cwd = Path.cwd()
    try:
        os.chdir(REPO_ROOT)
        assert sarif_base_path([Path("src/repro")]) == "src"
        assert sarif_base_path([Path("src/repro/eval"),
                                Path("src/repro/cs")]) == "src/repro"
        # Mixed parents or paths outside the cwd: emit as-is.
        assert sarif_base_path([Path("src/repro"), Path("tests")]) == ""
        assert sarif_base_path([Path("/")]) == ""
    finally:
        os.chdir(cwd)


# -- baseline workflow -------------------------------------------------------

def test_write_baseline_then_rerun_is_clean(tmp_path, capsys):
    baseline = tmp_path / "teelint.baseline.json"
    assert main(["lint", BAD, "--baseline", str(baseline),
                 "--write-baseline"]) == 0
    assert baseline.exists()
    capsys.readouterr()

    assert main(["lint", BAD, "--baseline", str(baseline)]) == 0
    out = capsys.readouterr().out
    assert "0 error(s)" in out
    assert "baselined" in out
