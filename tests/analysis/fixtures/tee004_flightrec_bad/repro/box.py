def crash_dump(flightrec, sealing_key):
    flightrec.record_event("trip", key=sealing_key)


def stash(recorder, session_key):
    recorder.record_event("note", session_key)


def note(flightrec, signing_key):
    flightrec.push(signing_key)
