def use_without_enter(ems):
    e = ems.launch_enclave("workload.bin")
    e.write(0, b"data")         # MEASURED: never entered
    e.destroy()


def double_destroy(ems):
    e = ems.launch_enclave("workload.bin")
    e.enter()
    e.exit()
    e.destroy()
    e.destroy()                 # already DESTROYED


def resume_before_exit(ems):
    e = ems.launch_enclave("workload.bin")
    e.enter()
    e.resume()                  # RUNNING: resume needs SUSPENDED
    e.exit()
    e.destroy()


def reenter(ems):
    e = ems.launch_enclave("workload.bin")
    e.enter()
    with e.running():           # already RUNNING
        e.read(0, 4)
    e.destroy()


def leak(ems):
    e = ems.launch_enclave("workload.bin")
    e.enter()
    e.read(0, 16)
    # never exited, destroyed, or handed off: the slot leaks
