"""TEE010 fixture twin: every sanctioned spelling of fleet access."""


class LoadDriver:
    def __init__(self, gates, pool):
        gates = list(gates)
        self.pool = pool
        self._gates = gates
        # Designating a primary once, from the constructor argument,
        # is the documented convention (a role, not a routing decision).
        self._primary = gates[0]

    def invoke(self, enclave_id, payload):
        # Routed index: the subscript comes from the router.
        return self._gates[self.pool.resolve(enclave_id)].invoke(payload)

    def mailbox_of(self, enclave_id):
        # Router-sanctioned component reach.
        return self.pool.shard_of(enclave_id).mailbox

    def enable_obs(self, obs):
        # Slices and iteration are fleet-wide fan-out, not placement.
        for shard in self.pool.shards[1:]:
            shard.mailbox.obs = obs

    def fleet_backlog(self):
        return sum(s.pool.used_count for s in self.pool.shards)
