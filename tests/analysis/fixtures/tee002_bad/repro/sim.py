import datetime
import os
import random
import time
from random import randint


def jitter():
    return random.random() + time.time()


def stamp():
    return datetime.datetime.now()


def nonce():
    return os.urandom(8) + bytes([randint(0, 255)])


def fresh_rng():
    return random.Random()
