"""TEE011 fixture twin: the sanctioned integer spellings."""

import numpy as np


def service_cycles(instr, ipc_numer, ipc_denom):
    return (instr * ipc_denom) // ipc_numer


def service_cycles_vec(instructions, sustained_ipc):
    return (instructions / sustained_ipc).astype(np.int64)


def charge_batch(n, deltas):
    cycles = np.zeros(n, dtype=np.int64)
    total_cycles = 0
    for delta in deltas:
        total_cycles += int(delta)
    return cycles, total_cycles


def scatter(idx, service):
    shares_cycles = np.zeros(8, dtype=np.int64)
    np.add.at(shares_cycles, idx, service.astype(np.int64))
    return shares_cycles


def split_shares(total_cycles, n):
    share, remainder = divmod(total_cycles, n)
    out = np.full(n, share, dtype=np.int64)
    out[:remainder] += 1
    return out
