import hashlib


def redact(value):
    return hashlib.sha256(value).hexdigest()[:8]


def diagnose(manager, sealing_key):
    manager.report_violation("secret", "SECRET-LEAK",
                             "leaked value " + redact(sealing_key))


def render(violation, signing_key):
    del signing_key  # diagnostics carry labels, never values
    return format_violation(violation)


def summarize(counts, session_key):
    return format_summary(counts, len(session_key))
