def run(inj, rng):
    dropped = inj.fires("mailbox.drop", rng)
    stalled = inj.magnitude("ems.stall", rng)
    return dropped, stalled
