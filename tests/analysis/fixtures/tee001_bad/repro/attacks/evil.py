from repro.ems.runtime import EnclaveRuntime  # adversary peeks at EMS
