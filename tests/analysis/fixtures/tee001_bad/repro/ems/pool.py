import repro.cs.sched  # direct ems -> cs
