class EnclaveRuntime:
    pass
