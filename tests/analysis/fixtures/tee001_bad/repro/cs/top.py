from repro.common.mid import helper  # transitive cs -> common -> ems
