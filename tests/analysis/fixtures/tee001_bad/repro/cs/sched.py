from repro.ems.runtime import EnclaveRuntime  # direct cs -> ems
