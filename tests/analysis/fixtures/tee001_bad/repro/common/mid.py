from repro.ems.runtime import EnclaveRuntime  # common -> ems: legal alone


def helper():
    return EnclaveRuntime()
