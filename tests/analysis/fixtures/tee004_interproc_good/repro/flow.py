import hashlib

from repro.audit import emit


def announce(logger, vault):
    # Sanitized twin: the digest erases the label, so the summary-based
    # chain through emit() stays silent.
    token = hashlib.sha256(vault.material()).hexdigest()[:8]
    emit(logger, token)
