class Vault:
    def material(self):
        return self.session_key("enclave-1")
