def emit(logger, value):
    logger.info("value=%s", value)
