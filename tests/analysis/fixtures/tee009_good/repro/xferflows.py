"""TEE009 fixture twin: the full prepare/commit protocol, plus
single-sided bookkeeping that must stay out of scope."""

MAGIC = b"HTEE-XFER1"


def transfer(pool, sealing, src, dst, frames, owner, eid, control):
    manifest = MAGIC + eid.to_bytes(8, "little") \
        + len(frames).to_bytes(4, "little")
    token = sealing.seal(b"measurement", manifest)
    if pool.faults is not None:
        raise RuntimeError("interrupted before commit; nothing moved")
    opened = sealing.unseal(b"measurement", token)
    if opened[:len(MAGIC)] != MAGIC:
        raise ValueError("binding check failed")
    dst.ownership.verify_unowned(frames)
    src.ownership.release_all(frames, owner)
    dst.ownership.claim_all(frames, owner)
    src.pool.disown_used(len(frames))
    dst.pool.adopt_used(len(frames))
    del src.enclaves.enclaves[eid]
    dst.enclaves.enclaves[eid] = control
    return {"moved": len(frames)}


def create_claims(dst, frames, owner):
    # Enclave creation claims frames one-sided: not a transfer flow.
    dst.ownership.claim_all(frames, owner)


def teardown_releases(src, frames, owner):
    # Teardown releases one-sided: not a transfer flow either.
    src.ownership.release_all(frames, owner)
