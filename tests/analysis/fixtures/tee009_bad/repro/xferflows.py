"""TEE009 fixture: transfer flows that break the prepare/commit protocol."""

MAGIC = b"HTEE-XFER1"


def mutate_before_auth(sealing, src, dst, frames, owner, eid):
    # Frames move before the unsealed manifest binding is checked and
    # before verify_unowned runs: four findings (auth + verify per op).
    manifest = MAGIC + eid.to_bytes(8, "little")
    token = sealing.seal(b"measurement", manifest)
    src.ownership.release_all(frames, owner)
    dst.ownership.claim_all(frames, owner)
    opened = sealing.unseal(b"measurement", token)
    assert opened == manifest
    dst.ownership.verify_unowned(frames)


def abort_midway(pool, sealing, src, dst, frames, owner, eid):
    # The interrupt check fires *after* release_all: an abort here
    # strands the fleet half-transferred.
    manifest = MAGIC + eid.to_bytes(8, "little")
    token = sealing.seal(b"measurement", manifest)
    opened = sealing.unseal(b"measurement", token)
    if opened != manifest:
        raise ValueError("binding check failed")
    dst.ownership.verify_unowned(frames)
    src.ownership.release_all(frames, owner)
    if pool.faults is not None:
        raise RuntimeError("interrupted mid-commit")
    dst.ownership.claim_all(frames, owner)


def prepare_only(sealing, src, dst, frames, owner):
    # Seals a token but never unseals one: the commit side skipped
    # authentication entirely (and therefore mutates unauthenticated).
    token = sealing.seal(b"measurement", MAGIC + b":prep")
    dst.ownership.verify_unowned(frames)
    src.ownership.release_all(frames, owner)
    dst.ownership.claim_all(frames, owner)
    return token


def wrong_magic(sealing, src, dst, frames, owner, eid):
    # Protocol shape is right but the manifest lacks the HTEE-XFER
    # magic, so the commit-side binding check cannot authenticate it.
    manifest = b"EVIL-XFER" + eid.to_bytes(8, "little")
    token = sealing.seal(b"measurement", manifest)
    opened = sealing.unseal(b"measurement", token)
    if opened != manifest:
        raise ValueError("binding check failed")
    dst.ownership.verify_unowned(frames)
    src.ownership.release_all(frames, owner)
    dst.ownership.claim_all(frames, owner)
