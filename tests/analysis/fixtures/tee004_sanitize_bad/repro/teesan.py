def diagnose(manager, sealing_key):
    manager.report_violation("secret", "SECRET-LEAK",
                             "leaked value " + str(sealing_key))


def render(signing_key):
    return format_violation(signing_key)


def summarize(counts, session_key):
    return format_summary(counts, session_key)
