def report(metrics, sealing_key):
    metrics.labels(sealing_key)


def trace(tracer, keymgr):
    session_key = keymgr.session_key("enclave-1")
    tracer.add_span("attest", key=session_key)


def log_it(logger, private_key):
    logger.info("key=%s", private_key)


def banner(attestation_key):
    return f"attesting with {attestation_key}"


def wire(PrimitiveRequest, derived_key):
    return PrimitiveRequest(payload=derived_key)
