"""TEE011 fixture: float arithmetic leaking into the charging path."""

import numpy as np


def service_cycles(instr, ipc):
    return instr / ipc


def charge_batch(n, deltas):
    cycles = np.zeros(n)
    total_cycles = 0
    for delta in deltas:
        total_cycles += delta * 0.5
    return cycles, total_cycles


def scatter(idx, service):
    shares_cycles = np.zeros(8, dtype=np.int64)
    service = np.asarray(service, dtype=np.float64)
    np.add.at(shares_cycles, idx, service)
    return shares_cycles


def summarize(samples):
    avg = samples.mean()
    spread = samples.std()
    return avg, spread
