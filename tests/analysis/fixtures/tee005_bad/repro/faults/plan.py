FAULT_POINTS = {
    "mailbox.drop": "drop one EMCall packet",
    "ems.stall": "stall the handler",
}
