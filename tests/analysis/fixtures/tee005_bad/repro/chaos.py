def run(inj, rng):
    dropped = inj.fires("mailbox.drop", rng)
    ghosted = inj.fires("mailbox.dorp", rng)
    return dropped, ghosted
