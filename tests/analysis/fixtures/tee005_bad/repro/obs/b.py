def setup(reg):
    return reg.counter("hypertee_demo_total", "demo counter again")
