from repro.eval.calibration import FLUSH_CYCLES, STALL_CYCLES


def run(engine):
    spent_cycles = 0
    engine.step(flush_cycles=FLUSH_CYCLES)
    spent_cycles += 2 * STALL_CYCLES
    return spent_cycles
