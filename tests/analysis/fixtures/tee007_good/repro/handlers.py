from repro.common.packets import PrimitiveResponse, ResponseStatus
from repro.cs.emcall import DegradedResult
from repro.errors import EMCallTimeout


def narrow(mapping, key):
    try:
        return mapping[key]
    except KeyError:            # narrow: not a fault signal
        return None


def typed(call):
    try:
        return call()
    except EMCallTimeout:
        return DegradedResult(reason="timeout")


def reraise(call):
    try:
        return call()
    except Exception as exc:
        raise RuntimeError("wrapped") from exc


def with_status(request_id):
    return PrimitiveResponse(request_id, ResponseStatus.OK)


def kw_status(request_id):
    return PrimitiveResponse(request_id, status=ResponseStatus.ERROR)


def splat_status(request_id, fields):
    return PrimitiveResponse(request_id, **fields)
