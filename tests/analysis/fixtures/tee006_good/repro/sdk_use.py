def straight(ems):
    e = ems.launch_enclave("workload.bin")
    e.enter()
    e.write(0, b"x")
    e.exit()
    e.destroy()


def with_block(ems):
    e = ems.launch_enclave("workload.bin")
    with e.running():
        e.read(0, 8)
    e.destroy()


def suspend_and_resume(ems):
    e = ems.launch_enclave("workload.bin")
    e.enter()
    e.exit()
    e.resume()
    e.exit()
    e.destroy()


def handoff(ems):
    e = ems.launch_enclave("workload.bin")
    e.enter()
    return e                    # escapes: the caller owns the lifecycle


def branchy(ems, flag):
    e = ems.launch_enclave("workload.bin")
    e.enter()
    if flag:
        e.write(0, b"a")
    else:
        e.read(0, 4)
    e.exit()
    e.destroy()


def unknown_provenance(e):
    # Parameter receivers start UNKNOWN: no claims, no findings.
    e.write(0, b"x")
    e.exit()
