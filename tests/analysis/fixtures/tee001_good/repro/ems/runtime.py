from repro.common.types import WireType


class EnclaveRuntime:
    kind = WireType
