from repro.common.types import WireType


def schedule():
    return WireType()
