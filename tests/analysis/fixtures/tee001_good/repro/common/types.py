class WireType:
    pass
