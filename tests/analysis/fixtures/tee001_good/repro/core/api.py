from repro.cs.sched import schedule
from repro.ems.runtime import EnclaveRuntime


def boot():
    return schedule(), EnclaveRuntime()
