from repro.cs.sched import schedule


def attack():
    return schedule()
