from repro.eval.calibration import AES_BLOCK_CYCLES, RSA_SIGN_CYCLES


def charge(meter, secret_key):
    if secret_key[0] == 0:
        meter.charge(cycles=AES_BLOCK_CYCLES)   # only this arm charges
    else:
        meter.idle()


def accumulate(state, private_key):
    if private_key:
        state.total_cycles += RSA_SIGN_CYCLES
    else:
        state.total_cycles += 0                 # free on the else arm
