from repro.audit import emit


def announce(logger, vault):
    # Method call: vault.material() resolves through the symbol table
    # (unique method name) and its summary says the result is secret.
    token = vault.material()
    # Two calls away from the source: emit()'s summary says parameter 1
    # reaches a log sink inside the callee.
    emit(logger, token)
