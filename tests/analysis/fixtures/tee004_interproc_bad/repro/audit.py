def emit(logger, value):
    # Sink: parameter 1 reaches a log call, recorded in emit()'s
    # summary. Nothing fires here — "value" is not secret-named.
    logger.info("value=%s", value)
