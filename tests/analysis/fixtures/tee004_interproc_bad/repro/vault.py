class Vault:
    def material(self):
        # Source: the provider call taints the return value, so the
        # *summary* of material() says returns_secret — the name
        # "material" itself matches no secret pattern.
        return self.session_key("enclave-1")
