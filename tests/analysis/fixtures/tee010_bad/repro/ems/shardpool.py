"""The pool coordinator owns the fleet: exempt from TEE010 by module
name, even though it indexes shards and reaches their components."""


class ShardPool:
    def __init__(self, shards):
        self.shards = list(shards)

    def resolve(self, enclave_id):
        return hash(enclave_id) % len(self.shards)

    def shard_of(self, enclave_id):
        return self.shards[self.resolve(enclave_id)]

    def primary_mailbox(self):
        return self.shards[0].mailbox
