"""TEE010 fixture: out-of-band access to sibling shards."""


class LoadDriver:
    def __init__(self, pool):
        self.pool = pool
        self.home = pool.shard_of(7)

    def peek_mailbox(self):
        return self.pool.shards[0].mailbox

    def drain_second(self):
        gate = self.pool.gates[1]
        return gate.pump()

    def last_shard_backlog(self):
        return len(self.pool.shards[-1].pages)
