from repro.eval.calibration import USED_CYCLES

STALL_CYCLES = 123

COSTS_CYCLES = {"decode": 9}


def run(engine):
    engine.step(flush_cycles=42)


def warm(warmup_cycles=10):
    return warmup_cycles + USED_CYCLES
