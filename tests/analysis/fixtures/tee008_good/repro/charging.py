from repro.eval.calibration import AES_BLOCK_CYCLES


def equalized(meter, secret_key):
    if secret_key[0] == 0:
        meter.charge(cycles=AES_BLOCK_CYCLES)
    else:
        meter.charge(cycles=AES_BLOCK_CYCLES)   # same cost both arms


def sanitized_branch(meter, secret_key):
    if len(secret_key) > 16:                    # len() erases the label
        meter.charge(cycles=AES_BLOCK_CYCLES)
    else:
        meter.idle()


def public_branch(meter, mode):
    if mode == "fast":                          # not secret-tainted
        meter.charge(cycles=AES_BLOCK_CYCLES)
    else:
        meter.idle()
