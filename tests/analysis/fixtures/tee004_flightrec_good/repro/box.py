import hashlib


def crash_dump(flightrec, sealing_key):
    fingerprint = hashlib.sha256(sealing_key).hexdigest()[:8]
    flightrec.record_event("trip", key=fingerprint)


def stash(recorder, session_key):
    recorder.record_event("note", len(session_key))


def note(flightrec, signing_key):
    flightrec.push(hashlib.sha256(signing_key).hexdigest()[:8])
