import hashlib


def report(metrics, sealing_key):
    digest = hashlib.sha256(sealing_key).hexdigest()[:8]
    metrics.labels(digest)


def seal(crypto, sealing_key, payload):
    return crypto.encrypt(sealing_key, payload)


def banner(attestation_key):
    return f"attesting with key of {len(attestation_key)} bytes"
