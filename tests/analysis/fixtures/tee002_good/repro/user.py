from repro.common.rng import DeterministicRng


def draw(seed):
    return DeterministicRng(seed).stream("user").randint(0, 9)
