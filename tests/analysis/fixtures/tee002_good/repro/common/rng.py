import random


class DeterministicRng:
    def __init__(self, seed):
        self._seed = seed

    def stream(self, name):
        return random.Random((self._seed, name).__hash__())
