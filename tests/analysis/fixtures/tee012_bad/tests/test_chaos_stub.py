"""Chaos-corpus stub for the TEE012 fixture (never collected by
pytest: tests/analysis/conftest.py ignores the fixtures tree).

Covers the doorbell-drop point only; the other catalogue entries
ship untested.
"""

COVERED = ["net.drop"]
