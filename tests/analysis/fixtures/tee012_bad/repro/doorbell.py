"""TEE012 fixture consumer: consults net.drop and ems.stall only."""


class Doorbell:
    def __init__(self, faults):
        self.faults = faults

    def send(self, payload):
        if self.faults is not None and self.faults.fires("net.drop"):
            return None
        return payload

    def pump_round(self):
        return self.faults.magnitude("ems.stall")
