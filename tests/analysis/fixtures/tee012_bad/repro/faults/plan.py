"""TEE012 fixture catalogue: one covered point, one untested, one dead."""

FAULT_POINTS = {
    "net.drop": "drop one mailbox doorbell",
    "ems.stall": "stall the runtime for one pump round",
    "disk.ghost": "declared but never wired anywhere",
}
