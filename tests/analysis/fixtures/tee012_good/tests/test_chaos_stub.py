"""Chaos-corpus stub for the TEE012 fixture twin (never collected by
pytest: tests/analysis/conftest.py ignores the fixtures tree).

References every declared point: net.drop and ems.stall.
"""

COVERED = ["net.drop", "ems.stall"]
