"""TEE012 fixture twin consumer: consults every declared point."""


class Doorbell:
    def __init__(self, faults):
        self.faults = faults

    def send(self, payload):
        if self.faults is not None and self.faults.fires("net.drop"):
            return None
        return payload

    def pump_round(self):
        return self.faults.magnitude("ems.stall")
