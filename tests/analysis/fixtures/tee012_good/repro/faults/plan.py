"""TEE012 fixture twin catalogue: every point fires and is tested."""

FAULT_POINTS = {
    "net.drop": "drop one mailbox doorbell",
    "ems.stall": "stall the runtime for one pump round",
}
