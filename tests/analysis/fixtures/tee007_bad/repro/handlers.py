from repro.common.packets import PrimitiveResponse
from repro.errors import EMCallTimeout


def swallow_timeout(call):
    try:
        return call()
    except EMCallTimeout:
        return None             # the timeout vanishes


def swallow_all(call):
    try:
        return call()
    except Exception:
        pass                    # everything vanishes


def bare(call):
    try:
        return call()
    except:                     # noqa: E722
        return 0


def no_status(request_id):
    return PrimitiveResponse(request_id)    # no ResponseStatus
