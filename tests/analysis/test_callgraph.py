"""Symbol-table and call-resolution unit tests.

The interprocedural rules are only as good as call resolution, so the
resolution strategies each get a direct test: module bindings, dotted
module references, facade re-exports, ``self.method`` with base-class
walks, and the guarded unique-method-name fallback.
"""

from __future__ import annotations

import ast
import textwrap

from repro.analysis.callgraph import SymbolTable
from repro.analysis.project import Project

TREE = {
    "pkg/__init__.py": """
        from pkg.impl import derive_key
    """,
    "pkg/impl.py": """
        def derive_key(seed):
            return seed * 2
    """,
    "pkg/api.py": """
        class Base:
            def helper(self):
                return 1

        class Child(Base):
            def caller(self):
                return self.helper()

            def unique_op(self):
                return 2
    """,
    "pkg/use.py": """
        import pkg
        import pkg.impl
        from pkg.impl import derive_key

        def by_name(seed):
            return derive_key(seed)

        def by_module(seed):
            return pkg.impl.derive_key(seed)

        def by_facade(seed):
            return pkg.derive_key(seed)

        def by_fallback(obj):
            return obj.unique_op()

        def generic_fallback(obj):
            return obj.get("x")
    """,
}


def build(tmp_path, files=TREE):
    for rel, text in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text))
    project = Project.scan([tmp_path / "pkg"])
    return project, SymbolTable(project)


def first_call(table, qualname) -> ast.Call:
    info = table.functions[qualname]
    for node in ast.walk(info.node):
        if isinstance(node, ast.Call):
            return node
    raise AssertionError(f"no call in {qualname}")


def resolved(table, caller_qualname):
    caller = table.functions[caller_qualname]
    target = table.resolve_call(caller, first_call(table, caller_qualname))
    return target.qualname if target is not None else None


def test_name_call_resolves_through_import_binding(tmp_path):
    _, table = build(tmp_path)
    assert resolved(table, "pkg.use.by_name") == "pkg.impl.derive_key"


def test_dotted_module_call_resolves(tmp_path):
    _, table = build(tmp_path)
    assert resolved(table, "pkg.use.by_module") == "pkg.impl.derive_key"


def test_facade_reexport_is_chased_to_the_definition(tmp_path):
    # ``pkg.derive_key`` is a re-export in pkg/__init__.py; resolution
    # must land on the defining module.
    _, table = build(tmp_path)
    assert resolved(table, "pkg.use.by_facade") == "pkg.impl.derive_key"


def test_self_method_walks_base_classes(tmp_path):
    _, table = build(tmp_path)
    assert resolved(table, "pkg.api.Child.caller") == "pkg.api.Base.helper"


def test_unique_method_fallback_resolves_opaque_receivers(tmp_path):
    _, table = build(tmp_path)
    assert resolved(table, "pkg.use.by_fallback") == \
        "pkg.api.Child.unique_op"


def test_generic_names_never_use_the_fallback(tmp_path):
    # Even a unique ``get`` definition must not capture every
    # ``obj.get(...)`` in the tree.
    _, table = build(tmp_path)
    assert resolved(table, "pkg.use.generic_fallback") is None


def test_ambiguous_method_names_do_not_resolve(tmp_path):
    files = dict(TREE)
    files["pkg/other.py"] = """
        class Other:
            def unique_op(self):
                return 3
    """
    _, table = build(tmp_path, files)
    assert resolved(table, "pkg.use.by_fallback") is None


def test_nested_functions_are_indexed_but_not_name_addressable(tmp_path):
    files = dict(TREE)
    files["pkg/nested.py"] = """
        def outer():
            def inner():
                return 1
            return inner()
    """
    _, table = build(tmp_path, files)
    nested = [q for q in table.functions if "<locals>" in q]
    assert len(nested) == 1 and "inner" in nested[0]
    # The nested name is invisible to cross-module resolution.
    assert table.resolve("pkg.use", "inner") is None


def test_method_short_names_include_the_class(tmp_path):
    _, table = build(tmp_path)
    assert table.functions["pkg.api.Child.caller"].short_name == \
        "Child.caller"
    assert table.functions["pkg.impl.derive_key"].short_name == \
        "derive_key"
