"""teelint's most important test: the real tree passes its own rules.

The architectural invariants are only worth enforcing in CI if they
hold *now*. This self-check runs the full catalogue over ``src/repro``
with the checked-in baseline and pins: no live findings, no stale
baseline entries, and every baseline entry carrying a real reason.
"""

from __future__ import annotations

import pytest

from repro.analysis import run_lint
from repro.analysis.baseline import BASELINE_FILENAME, Baseline
from repro.analysis.rules import rule_catalogue

from .conftest import REPO_ROOT

SRC = REPO_ROOT / "src" / "repro"
BASELINE_PATH = REPO_ROOT / BASELINE_FILENAME


@pytest.fixture(scope="module")
def self_result():
    return run_lint([SRC], baseline=Baseline.load(BASELINE_PATH))


def test_src_repro_is_clean(self_result):
    formatted = "\n".join(
        f"{f.location()} {f.rule} {f.message}" for f in self_result.findings)
    assert self_result.findings == [], \
        f"unbaselined teelint findings in src/repro:\n{formatted}"
    assert self_result.ok


def test_the_tree_is_actually_scanned(self_result):
    # Guard against a path typo silently scanning nothing.
    assert self_result.modules_scanned > 80


def test_baseline_has_no_stale_entries(self_result):
    assert self_result.stale_baseline == []


def test_every_baseline_entry_is_documented():
    baseline = Baseline.load(BASELINE_PATH)
    assert len(baseline) > 0  # the one known documented exception
    for entry in baseline.entries:
        assert len(entry.reason) > 20, \
            f"baseline entry {entry.key} needs a real reason"
        assert entry.reason != "baselined pre-existing finding", \
            f"baseline entry {entry.key} still has the placeholder reason"


def test_known_exceptions_are_baselined_not_fixed(self_result):
    # The one documented exception stays visible as a baselined
    # finding; if it disappears the stale check above will also fire.
    keys = {f.key for f in self_result.baselined}
    assert keys == {"import:random"}


def test_rule_catalogue_is_complete():
    assert set(rule_catalogue()) == \
        {"TEE001", "TEE002", "TEE003", "TEE004", "TEE005", "TEE006",
         "TEE007", "TEE008", "TEE009", "TEE010", "TEE011", "TEE012"}
