"""Fingerprints, inline suppressions, and the baseline file lifecycle."""

from __future__ import annotations

import json

import pytest

from repro.analysis.baseline import Baseline, BaselineEntry, line_suppresses
from repro.analysis.findings import Finding, Severity


def make_finding(rule="TEE001", path="repro/cs/x.py", line=10,
                 key="a->b") -> Finding:
    return Finding(rule=rule, severity=Severity.ERROR, path=path,
                   line=line, key=key, message="m")


# -- fingerprints ------------------------------------------------------------

def test_fingerprint_survives_line_moves():
    # Editing the file must not invalidate the baseline: the fingerprint
    # hashes rule|path|key, never the line number.
    assert make_finding(line=10).fingerprint == \
        make_finding(line=99).fingerprint


@pytest.mark.parametrize("change", [
    {"rule": "TEE002"}, {"path": "repro/cs/y.py"}, {"key": "a->c"},
])
def test_fingerprint_changes_with_identity(change):
    assert make_finding().fingerprint != make_finding(**change).fingerprint


# -- inline suppressions -----------------------------------------------------

@pytest.mark.parametrize("line,rule,expected", [
    ("import random  # teelint: disable", "TEE002", True),
    ("import random  # teelint: disable=TEE002", "TEE002", True),
    ("import random  # teelint: disable=TEE001,TEE002", "TEE002", True),
    ("import random  # teelint: disable=TEE001", "TEE002", False),
    ("import random  # noqa", "TEE002", False),
    ("import random", "TEE002", False),
])
def test_line_suppresses(line, rule, expected):
    assert line_suppresses(line, rule) is expected


# -- the baseline file -------------------------------------------------------

def test_round_trip_and_matching(tmp_path):
    finding = make_finding()
    baseline = Baseline.from_findings([finding], reason="documented why")
    path = tmp_path / "teelint.baseline.json"
    baseline.save(path)

    loaded = Baseline.load(path)
    assert len(loaded) == 1
    assert loaded.matches(finding)
    assert not loaded.matches(make_finding(key="other"))
    assert loaded.entries[0].reason == "documented why"


def test_missing_file_is_an_empty_baseline(tmp_path):
    baseline = Baseline.load(tmp_path / "nope.json")
    assert len(baseline) == 0
    assert not baseline.matches(make_finding())


def test_stale_entries_are_reported():
    live = make_finding()
    gone = BaselineEntry(fingerprint="feedfacecafebeef", rule="TEE003",
                         path="repro/old.py", key="dead:X", reason="r")
    baseline = Baseline(
        Baseline.from_findings([live]).entries + [gone])
    assert baseline.stale_entries([live]) == [gone]
    assert baseline.stale_entries([]) != []


def test_from_findings_dedupes_shared_fingerprints():
    # Two findings with the same rule/path/key (e.g. the same literal on
    # two lines) share one fingerprint and one baseline entry.
    baseline = Baseline.from_findings(
        [make_finding(line=1), make_finding(line=2)])
    assert len(baseline) == 1


def test_saved_file_is_sorted_and_documented(tmp_path):
    baseline = Baseline.from_findings([
        make_finding(path="repro/z.py", key="k"),
        make_finding(path="repro/a.py", key="k"),
    ])
    path = tmp_path / "teelint.baseline.json"
    baseline.save(path)
    data = json.loads(path.read_text())
    assert "reason" in data["comment"] or "exception" in data["comment"]
    assert [e["path"] for e in data["findings"]] == \
        ["repro/a.py", "repro/z.py"]
    assert path.read_text().endswith("\n")


def test_unicode_reason_round_trips(tmp_path):
    # Reasons are prose and prose has accents/arrows/CJK; the file is
    # UTF-8 end to end.
    reason = "héritage: flux café → 日本語 ≥3×, non-ASCII survives"
    baseline = Baseline.from_findings([make_finding()], reason=reason)
    path = tmp_path / "teelint.baseline.json"
    baseline.save(path)
    assert Baseline.load(path).entries[0].reason == reason


@pytest.mark.parametrize("line,rule,expected", [
    ("x = 1  # teelint: disable=TEE004, TEE008", "TEE008", True),
    ("x = 1  # teelint: disable=TEE004 ,TEE008", "TEE004", True),
    ("x = 1  # teelint: disable=TEE004,TEE006,TEE008", "TEE006", True),
    ("x = 1  # teelint: disable=TEE004, TEE008", "TEE006", False),
])
def test_multi_id_disable_parsing(line, rule, expected):
    assert line_suppresses(line, rule) is expected


# -- expiry metadata ---------------------------------------------------------

def test_entries_without_dates_never_expire():
    import datetime
    entry = BaselineEntry(fingerprint="ab", rule="TEE001", path="p",
                          key="k", reason="r")
    assert not entry.expired(datetime.date(2099, 1, 1))


def test_expiry_boundary_and_unparsable_dates():
    import datetime
    entry = BaselineEntry(fingerprint="ab", rule="TEE001", path="p",
                          key="k", reason="r", added="2026-01-01",
                          expires="2026-03-01")
    assert not entry.expired(datetime.date(2026, 3, 1))  # expires EOD
    assert entry.expired(datetime.date(2026, 3, 2))
    broken = BaselineEntry(fingerprint="cd", rule="TEE001", path="p",
                           key="k", reason="r", expires="not-a-date")
    assert broken.expired(datetime.date(2026, 1, 1))


def test_from_findings_stamps_added_and_expires(tmp_path):
    import datetime
    added = datetime.date(2026, 8, 5)
    baseline = Baseline.from_findings([make_finding()], reason="why",
                                      added=added, expire_days=90)
    entry = baseline.entries[0]
    assert entry.added == "2026-08-05"
    assert entry.expires == "2026-11-03"
    # Round-trip through the file keeps the dates.
    path = tmp_path / "b.json"
    baseline.save(path)
    loaded = Baseline.load(path).entries[0]
    assert (loaded.added, loaded.expires) == ("2026-08-05", "2026-11-03")
    # Dateless entries serialize without the keys at all.
    bare = Baseline.from_findings([make_finding()], reason="why")
    assert "added" not in bare.entries[0].to_dict()


def test_expired_entries_listed_but_still_matching():
    import datetime
    entry = BaselineEntry(
        fingerprint=make_finding().fingerprint, rule="TEE001",
        path="repro/cs/x.py", key="a->b", reason="r",
        added="2026-01-01", expires="2026-02-01")
    baseline = Baseline([entry])
    today = datetime.date(2026, 8, 5)
    assert baseline.expired_entries(today) == [entry]
    assert baseline.matches(make_finding())  # expired != unmatched
