"""Renderer edge cases not reached through the CLI tests."""

from __future__ import annotations

from repro.analysis.baseline import BaselineEntry
from repro.analysis.cli import default_baseline_path, default_scan_path
from repro.analysis.engine import LintResult
from repro.analysis.findings import Finding, Severity
from repro.analysis.render import (
    render_github,
    render_human,
    render_json,
    render_sarif,
)

from .conftest import REPO_ROOT


def result_with(findings=(), stale=()):
    return LintResult(findings=list(findings), baselined=[], suppressed=[],
                      stale_baseline=list(stale), modules_scanned=3)


STALE = BaselineEntry(fingerprint="ab" * 8, rule="TEE003",
                      path="repro/gone.py", key="dead:X", reason="r")


def test_human_report_shows_stale_baseline_entries():
    out = render_human(result_with(stale=[STALE]))
    assert "stale baseline entry: TEE003 repro/gone.py" in out
    assert "drop it" in out


def test_human_report_groups_findings_by_file():
    findings = [
        Finding(rule="TEE002", severity=Severity.ERROR, path="repro/a.py",
                line=3, key="k1", message="first", fix_hint="hint one"),
        Finding(rule="TEE002", severity=Severity.WARNING, path="repro/a.py",
                line=9, key="k2", message="second"),
        Finding(rule="TEE005", severity=Severity.INFO, path="repro/b.py",
                line=1, key="k3", message="third"),
    ]
    out = render_human(result_with(findings))
    # One header per file, icons per severity, hints only when present.
    assert out.index("repro/a.py") < out.index("repro/b.py")
    assert "E TEE002  first" in out
    assert "W TEE002  second" in out
    assert "I TEE005  third" in out
    assert out.count("fix:") == 1


def test_json_reports_stale_entries():
    import json
    payload = json.loads(render_json(result_with(stale=[STALE])))
    assert payload["stale_baseline"][0]["key"] == "dead:X"


def test_github_escapes_newlines_and_percent():
    finding = Finding(rule="TEE001", severity=Severity.ERROR,
                      path="repro/a.py", line=2, key="k",
                      message="50% broken\nsecond line")
    out = render_github(result_with([finding]))
    assert "50%25 broken%0Asecond line" in out
    assert "\nsecond line" not in out.splitlines()[0]


def test_default_paths_resolve_to_this_checkout():
    scan = default_scan_path()
    assert scan.name == "repro"
    assert (scan / "analysis").is_dir()
    assert default_baseline_path() == REPO_ROOT / "teelint.baseline.json"


def test_default_baseline_prefers_cwd_copy(tmp_path, monkeypatch):
    local = tmp_path / "teelint.baseline.json"
    local.write_text("{}")
    monkeypatch.chdir(tmp_path)
    assert default_baseline_path() == local


# -- GitHub property escaping ------------------------------------------------

def test_github_escapes_colons_and_commas_in_properties():
    # ``:`` would terminate the workflow command and ``,`` the property
    # list; both must be %-escaped in file= and title= (but line=/col=
    # are integers and the message payload keeps literal colons).
    finding = Finding(rule="TEE004", severity=Severity.ERROR,
                      path="repro/odd,name:v2.py", line=7, key="k",
                      message="flows into sink: metric label")
    out = render_github(result_with([finding])).splitlines()[0]
    assert "file=repro/odd%2Cname%3Av2.py," in out
    assert "title=teelint TEE004::" in out
    assert out.endswith("flows into sink: metric label")


def test_github_property_escaping_composes_with_percent():
    finding = Finding(rule="TEE001", severity=Severity.ERROR,
                      path="repro/50%,x.py", line=1, key="k", message="m")
    out = render_github(result_with([finding]))
    assert "file=repro/50%25%2Cx.py," in out


# -- expired baseline entries ------------------------------------------------

EXPIRED = BaselineEntry(fingerprint="cd" * 8, rule="TEE004",
                        path="repro/old.py", key="flow:x->print",
                        reason="time-boxed", added="2026-01-01",
                        expires="2026-02-01")


def result_with_expired():
    result = result_with()
    result.expired_baseline = [EXPIRED]
    return result


def test_human_report_warns_on_expired_entries():
    out = render_human(result_with_expired())
    assert "expired baseline entry: TEE004 repro/old.py" in out
    assert "2026-02-01" in out


def test_json_carries_expired_entries_and_cache_state():
    import json
    payload = json.loads(render_json(result_with_expired()))
    assert payload["version"] == 2
    assert payload["expired_baseline"][0]["expires"] == "2026-02-01"
    assert payload["cache_state"] == "off"


def test_human_summary_mentions_changed_scoping():
    result = result_with()
    result.scoped_modules = 4
    out = render_human(result)
    assert "scoped to 4 changed/dependent modules" in out


# -- SARIF -------------------------------------------------------------------

SARIF_FINDINGS = [
    Finding(rule="TEE010", severity=Severity.ERROR, path="repro/a.py",
            line=7, col=4, key="hardcoded-shard:f:shards[0]",
            message="shards[0] hardcodes a shard index",
            fix_hint="route through shard_of"),
    Finding(rule="TEE002", severity=Severity.WARNING, path="repro/b.py",
            line=0, key="import:random", message="imports random"),
]


def test_sarif_shape_levels_and_fingerprints():
    import json
    payload = json.loads(render_sarif(result_with(SARIF_FINDINGS)))
    assert payload["version"] == "2.1.0"
    assert "sarif-schema-2.1.0" in payload["$schema"]
    (run,) = payload["runs"]
    assert run["tool"]["driver"]["name"] == "teelint"
    # Rules array covers exactly the rules used, sorted, and every
    # result's ruleIndex points back into it.
    assert [r["id"] for r in run["tool"]["driver"]["rules"]] == \
        ["TEE002", "TEE010"]
    results = run["results"]
    assert [r["ruleId"] for r in results] == ["TEE010", "TEE002"]
    for result in results:
        rules = run["tool"]["driver"]["rules"]
        assert rules[result["ruleIndex"]]["id"] == result["ruleId"]
    assert results[0]["level"] == "error"
    assert results[1]["level"] == "warning"
    # Fix hints ride in the message; fingerprints match the baseline's.
    assert results[0]["message"]["text"].endswith(
        "— fix: route through shard_of")
    assert results[0]["partialFingerprints"]["teelintFingerprint/v1"] \
        == SARIF_FINDINGS[0].fingerprint


def test_sarif_base_path_prefixes_uris_and_clamps_lines():
    import json
    payload = json.loads(render_sarif(result_with(SARIF_FINDINGS),
                                      base_path="src/"))
    locations = [r["locations"][0]["physicalLocation"]
                 for r in payload["runs"][0]["results"]]
    assert locations[0]["artifactLocation"]["uri"] == "src/repro/a.py"
    assert locations[0]["region"] == {"startLine": 7, "startColumn": 5}
    # Module-level findings (line 0) clamp to 1: SARIF lines are 1-based.
    assert locations[1]["region"]["startLine"] == 1


def test_sarif_regions_carry_end_spans_when_the_finding_has_one():
    import json
    spanned = Finding(
        rule="TEE004", severity=Severity.ERROR, path="repro/c.py",
        line=12, col=8, end_line=13, end_col=27,
        key="flow:emit->print", message="key material flows into print")
    payload = json.loads(render_sarif(result_with([spanned])))
    (result,) = payload["runs"][0]["results"]
    region = result["locations"][0]["physicalLocation"]["region"]
    # SARIF columns are 1-based and endColumn is exclusive: ast's
    # 0-based end_col_offset maps to end_col + 1.
    assert region == {"startLine": 12, "startColumn": 9,
                      "endLine": 13, "endColumn": 28}
    # Span-less findings (end_line 0) emit no end keys at all rather
    # than a zero region code scanning would reject.
    payload = json.loads(render_sarif(result_with(SARIF_FINDINGS)))
    region = (payload["runs"][0]["results"][0]["locations"][0]
              ["physicalLocation"]["region"])
    assert "endLine" not in region and "endColumn" not in region


def test_boundary_findings_span_the_whole_import_statement():
    # End-to-end: the TEE001 fixture's finding carries the ast span of
    # the offending import, and the JSON artifact round-trips it.
    import json as _json

    from repro.analysis import run_lint

    from .conftest import FIXTURES
    result = run_lint([FIXTURES / "tee001_bad" / "repro"])
    finding = next(f for f in result.findings if f.rule == "TEE001"
                   and f.line > 0)
    assert finding.end_line >= finding.line > 0
    assert finding.end_col > 0
    entry = _json.loads(render_json(result))["findings"]
    match = next(e for e in entry if e["key"] == finding.key)
    assert (match["end_line"], match["end_col"]) == \
        (finding.end_line, finding.end_col)


def test_sarif_excludes_baselined_and_suppressed():
    import json
    result = result_with([SARIF_FINDINGS[0]])
    result.baselined = [SARIF_FINDINGS[1]]
    payload = json.loads(render_sarif(result))
    (run,) = payload["runs"]
    assert [r["ruleId"] for r in run["results"]] == ["TEE010"]
    assert [r["id"] for r in run["tool"]["driver"]["rules"]] == ["TEE010"]


def test_sarif_rule_descriptions_come_from_the_catalogue():
    import json
    payload = json.loads(render_sarif(result_with([SARIF_FINDINGS[0]])))
    (rule,) = payload["runs"][0]["tool"]["driver"]["rules"]
    from repro.analysis.rules import rule_catalogue
    assert rule["shortDescription"]["text"] == \
        rule_catalogue()["TEE010"]
