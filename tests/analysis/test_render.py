"""Renderer edge cases not reached through the CLI tests."""

from __future__ import annotations

from repro.analysis.baseline import BaselineEntry
from repro.analysis.cli import default_baseline_path, default_scan_path
from repro.analysis.engine import LintResult
from repro.analysis.findings import Finding, Severity
from repro.analysis.render import render_github, render_human, render_json

from .conftest import REPO_ROOT


def result_with(findings=(), stale=()):
    return LintResult(findings=list(findings), baselined=[], suppressed=[],
                      stale_baseline=list(stale), modules_scanned=3)


STALE = BaselineEntry(fingerprint="ab" * 8, rule="TEE003",
                      path="repro/gone.py", key="dead:X", reason="r")


def test_human_report_shows_stale_baseline_entries():
    out = render_human(result_with(stale=[STALE]))
    assert "stale baseline entry: TEE003 repro/gone.py" in out
    assert "drop it" in out


def test_human_report_groups_findings_by_file():
    findings = [
        Finding(rule="TEE002", severity=Severity.ERROR, path="repro/a.py",
                line=3, key="k1", message="first", fix_hint="hint one"),
        Finding(rule="TEE002", severity=Severity.WARNING, path="repro/a.py",
                line=9, key="k2", message="second"),
        Finding(rule="TEE005", severity=Severity.INFO, path="repro/b.py",
                line=1, key="k3", message="third"),
    ]
    out = render_human(result_with(findings))
    # One header per file, icons per severity, hints only when present.
    assert out.index("repro/a.py") < out.index("repro/b.py")
    assert "E TEE002  first" in out
    assert "W TEE002  second" in out
    assert "I TEE005  third" in out
    assert out.count("fix:") == 1


def test_json_reports_stale_entries():
    import json
    payload = json.loads(render_json(result_with(stale=[STALE])))
    assert payload["stale_baseline"][0]["key"] == "dead:X"


def test_github_escapes_newlines_and_percent():
    finding = Finding(rule="TEE001", severity=Severity.ERROR,
                      path="repro/a.py", line=2, key="k",
                      message="50% broken\nsecond line")
    out = render_github(result_with([finding]))
    assert "50%25 broken%0Asecond line" in out
    assert "\nsecond line" not in out.splitlines()[0]


def test_default_paths_resolve_to_this_checkout():
    scan = default_scan_path()
    assert scan.name == "repro"
    assert (scan / "analysis").is_dir()
    assert default_baseline_path() == REPO_ROOT / "teelint.baseline.json"


def test_default_baseline_prefers_cwd_copy(tmp_path, monkeypatch):
    local = tmp_path / "teelint.baseline.json"
    local.write_text("{}")
    monkeypatch.chdir(tmp_path)
    assert default_baseline_path() == local
