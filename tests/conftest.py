"""Shared fixtures for the HyperTEE test suite, plus tier auto-marking.

Every test that is not explicitly ``slow`` or ``chaos`` belongs to the
fast tier-1 suite and gets the ``tier1`` marker automatically, so
``-m tier1`` and ``-m "not slow and not chaos"`` select the same set.
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden", action="store_true", default=False,
        help="rewrite tests/golden/*.json from the current model instead "
             "of comparing against it (review the diff before committing)")


@pytest.fixture
def update_golden(request) -> bool:
    """True when the run should refresh golden files, not assert them."""
    return request.config.getoption("--update-golden")


def pytest_collection_modifyitems(items):
    for item in items:
        if item.get_closest_marker("slow") is None and \
                item.get_closest_marker("chaos") is None:
            item.add_marker(pytest.mark.tier1)

from repro.common.rng import DeterministicRng
from repro.core.api import HyperTEE
from repro.core.config import SystemConfig
from repro.core.system import HyperTEESystem
from repro.hw.encryption_engine import MemoryEncryptionEngine
from repro.hw.memory import PhysicalMemory


@pytest.fixture(autouse=True)
def _detach_codec_sanitizer():
    """The codec's teesan hook is module-global; never leak it across tests."""
    yield
    from repro.common import codec

    codec.set_sanitizer(None)


@pytest.fixture
def rng() -> DeterministicRng:
    return DeterministicRng(seed=1234)


@pytest.fixture
def memory() -> PhysicalMemory:
    """16 MiB of physical memory with an encryption engine attached."""
    mem = PhysicalMemory(16 * 1024 * 1024)
    mem.encryption_engine = MemoryEncryptionEngine()
    return mem


@pytest.fixture
def plain_memory() -> PhysicalMemory:
    """8 MiB of physical memory without an engine (plaintext path)."""
    return PhysicalMemory(8 * 1024 * 1024)


@pytest.fixture
def system() -> HyperTEESystem:
    """A small booted HyperTEE platform."""
    return HyperTEESystem(SystemConfig(cs_memory_mb=48, ems_memory_mb=4))


@pytest.fixture
def tee(system: HyperTEESystem) -> HyperTEE:
    """The user-facing facade over the booted platform."""
    return HyperTEE(system=system)
