"""DNN and NIC communication workload models."""

from __future__ import annotations

import pytest

from repro.workloads.dnn import (
    ALL_DNN_MODELS,
    MLP_MODELS,
    MOBILENET,
    RESNET50,
    accelerator_compute_seconds,
    conventional_timing,
    hypertee_timing,
    speedup,
)
from repro.workloads.nic import NICTransfer


def test_model_roster():
    assert len(ALL_DNN_MODELS) == 6  # resnet, mobilenet, 4 MLPs
    assert len(MLP_MODELS) == 4


def test_compute_time_scales_with_macs():
    assert (accelerator_compute_seconds(RESNET50)
            > accelerator_compute_seconds(MOBILENET))


def test_conventional_pays_crypto_twice():
    timing = conventional_timing(RESNET50)
    assert timing.crypto_seconds > 0
    assert timing.crypto_share > 0.5


def test_hypertee_pays_no_crypto():
    timing = hypertee_timing(RESNET50)
    assert timing.crypto_seconds == 0
    assert timing.setup_seconds > 0  # one-time shm setup


def test_mlp_crypto_share_higher_than_resnet():
    """Fewer layers relative to data -> crypto dominates harder."""
    assert (conventional_timing(MLP_MODELS[0]).crypto_share
            > conventional_timing(RESNET50).crypto_share)


def test_speedups_ordered():
    assert speedup(MLP_MODELS[0]) > speedup(RESNET50) > 1.0


def test_nic_wire_time():
    transfer = NICTransfer(total_bytes=1.25e9)
    assert transfer.wire_seconds == pytest.approx(1.0)


def test_nic_crypto_dominates_conventional():
    transfer = NICTransfer(total_bytes=10e6)
    assert transfer.crypto_share() > 0.95


def test_nic_speedup_scale_free():
    """The speedup is a rate ratio — independent of transfer size."""
    small = NICTransfer(total_bytes=1e6).speedup()
    large = NICTransfer(total_bytes=1e9).speedup()
    assert small == pytest.approx(large)
