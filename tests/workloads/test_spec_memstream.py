"""SPEC CPU2017 and MemStream profiles."""

from __future__ import annotations

from repro.workloads.memstream import MEMSTREAM_SIZES_MB, memstream_points
from repro.workloads.spec import SPEC_INT_WORKLOADS, spec_suite


def test_spec_suite_composition():
    names = {p.name for p in spec_suite()}
    assert "xalancbmk_r" in names and "mcf_r" in names
    assert len(names) == 10


def test_xalancbmk_has_paper_tlb_miss_rate():
    """The paper states xalancbmk_r misses 0.8% of accesses."""
    xalan = next(p for p in SPEC_INT_WORKLOADS if p.name == "xalancbmk_r")
    assert xalan.dtlb_miss_rate == 0.008


def test_other_spec_miss_rates_below_paper_bound():
    """Everything but xalancbmk stays under the paper's 0.2%... footnote
    allows slightly more for the pointer-chasing trio."""
    for profile in SPEC_INT_WORKLOADS:
        assert profile.dtlb_miss_rate <= 0.008


def test_spec_profiles_have_no_enclave_side():
    for profile in SPEC_INT_WORKLOADS:
        assert profile.image_bytes == 0 and profile.alloc_calls == 0


def test_memstream_sizes():
    points = memstream_points()
    assert tuple(p.size_mb for p in points) == MEMSTREAM_SIZES_MB


def test_memstream_miss_rates_grow_with_footprint():
    points = memstream_points()
    assert points[-1].l2_miss_rate > points[0].l2_miss_rate


def test_memstream_encryption_increases_latency():
    point = memstream_points()[0]
    assert point.average_latency(True) > point.average_latency(False)
    assert 0 < point.latency_overhead() < 0.10
