"""Scenario runner semantics."""

from __future__ import annotations

import pytest

from repro.eval.scenarios import (
    ALL_SCENARIOS,
    ENCLAVE_CRYPTO,
    ENCLAVE_FULL,
    ENCLAVE_NONCRYPTO,
    HOST_BITMAP,
    HOST_NATIVE,
)
from repro.hw.core import EMS_MEDIUM, EMS_WEAK
from repro.workloads.runner import host_baseline, run_workload
from repro.workloads.rv8 import RV8_WORKLOADS

AES = RV8_WORKLOADS["aes"]


def test_host_native_has_no_security_costs():
    run = run_workload(AES, HOST_NATIVE)
    assert run.lifecycle_cycles == 0
    assert run.emeas_cycles == 0
    assert run.encryption_cycles == 0
    assert run.bitmap_cycles == 0


def test_host_bitmap_adds_only_bitmap():
    base = run_workload(AES, HOST_NATIVE)
    bm = run_workload(AES, HOST_BITMAP)
    assert bm.bitmap_cycles > 0
    assert bm.total_cycles - base.total_cycles == bm.bitmap_cycles


def test_enclave_run_replaces_allocation_path():
    host = run_workload(AES, HOST_NATIVE)
    enclave = run_workload(AES, ENCLAVE_CRYPTO)
    assert enclave.allocation_cycles != host.allocation_cycles
    assert enclave.lifecycle_cycles > 0
    assert enclave.bitmap_cycles == 0  # enclaves skip the bitmap check


def test_enclave_noncrypto_hashes_slowly():
    slow = run_workload(AES, ENCLAVE_NONCRYPTO)
    fast = run_workload(AES, ENCLAVE_CRYPTO)
    assert slow.emeas_cycles > 50 * fast.emeas_cycles


def test_memory_encryption_only_in_m_encrypt():
    assert run_workload(AES, ENCLAVE_CRYPTO).encryption_cycles == 0
    assert run_workload(AES, ENCLAVE_FULL).encryption_cycles > 0


def test_weak_ems_costs_more():
    weak = run_workload(AES, ENCLAVE_FULL, EMS_WEAK)
    medium = run_workload(AES, ENCLAVE_FULL, EMS_MEDIUM)
    assert weak.primitive_cycles > medium.primitive_cycles


def test_overhead_vs_baseline():
    base = host_baseline(AES)
    assert run_workload(AES, ENCLAVE_FULL).overhead_vs(base) > 0
    assert base.overhead_vs(base) == pytest.approx(0.0)


def test_scenario_registry():
    assert "Host-Native" in ALL_SCENARIOS
    assert ALL_SCENARIOS["Enclave-Full"].memory_encryption
