"""Traces and the micro-simulation executor."""

from __future__ import annotations

import pytest

from repro.common.constants import PAGE_SIZE
from repro.core.config import SystemConfig
from repro.core.system import HyperTEESystem
from repro.workloads.executor import TraceExecutor, measure_bitmap_overhead
from repro.workloads.trace import (
    hotspot_trace,
    pointer_chase_trace,
    random_trace,
    sequential_trace,
)

BASE = 0x10000000


def make_system(bitmap: bool = True) -> HyperTEESystem:
    return HyperTEESystem(SystemConfig(cs_memory_mb=64, ems_memory_mb=4,
                                       bitmap_checking=bitmap))


def make_executor(bitmap: bool = True, footprint: int = 64 * PAGE_SIZE):
    executor = TraceExecutor(make_system(bitmap))
    executor.map_region(BASE, footprint)
    return executor


def test_sequential_trace_shape():
    accesses = list(sequential_trace(BASE, 2 * PAGE_SIZE, stride=64))
    assert len(accesses) == 2 * PAGE_SIZE // 64
    assert accesses[0].vaddr == BASE
    assert accesses[-1].vaddr == BASE + 2 * PAGE_SIZE - 64


def test_traces_stay_in_footprint():
    footprint = 8 * PAGE_SIZE
    for trace in (random_trace(BASE, footprint, accesses=200),
                  hotspot_trace(BASE, footprint, accesses=200),
                  pointer_chase_trace(BASE, footprint, accesses=200)):
        for access in trace:
            assert BASE <= access.vaddr < BASE + footprint


def test_executor_counts_accesses():
    executor = make_executor()
    stats = executor.run(sequential_trace(BASE, 4 * PAGE_SIZE))
    assert stats.accesses == 4 * PAGE_SIZE // 64
    assert stats.total_cycles > 0


def test_sequential_has_low_tlb_miss_rate():
    executor = make_executor()
    stats = executor.run(sequential_trace(BASE, 16 * PAGE_SIZE, passes=4))
    # One miss per page on the first pass, hits afterwards.
    assert stats.tlb_miss_rate < 0.005


def test_random_misses_more_than_sequential():
    footprint = 256 * PAGE_SIZE
    seq = make_executor(footprint=footprint).run(
        sequential_trace(BASE, footprint, passes=1))
    rnd = make_executor(footprint=footprint).run(
        random_trace(BASE, footprint, accesses=seq.accesses))
    assert rnd.tlb_miss_rate > 4 * seq.tlb_miss_rate


def test_hotspot_between_extremes():
    footprint = 256 * PAGE_SIZE
    kwargs = dict(accesses=4000)
    seq = make_executor(footprint=footprint).run(
        sequential_trace(BASE, footprint, passes=1))
    hot = make_executor(footprint=footprint).run(
        hotspot_trace(BASE, footprint, **kwargs))
    rnd = make_executor(footprint=footprint).run(
        random_trace(BASE, footprint, **kwargs))
    assert seq.tlb_miss_rate < hot.tlb_miss_rate < rnd.tlb_miss_rate


def test_bitmap_checks_follow_tlb_misses():
    executor = make_executor(footprint=128 * PAGE_SIZE)
    stats = executor.run(random_trace(BASE, 128 * PAGE_SIZE, accesses=2000))
    assert stats.bitmap_checks == stats.tlb_misses


def test_no_bitmap_checks_when_disabled():
    executor = make_executor(bitmap=False, footprint=32 * PAGE_SIZE)
    stats = executor.run(random_trace(BASE, 32 * PAGE_SIZE, accesses=500))
    assert stats.bitmap_checks == 0


def test_measured_overhead_matches_analytic_formula():
    """Cross-validation: the measured bitmap overhead equals the Fig. 10
    formula evaluated at the *measured* TLB miss rate."""
    footprint = 200 * PAGE_SIZE
    factory = lambda: random_trace(BASE, footprint, accesses=3000, seed=5)
    overhead, stats = measure_bitmap_overhead(
        make_system(True), make_system(False), factory, BASE, footprint)

    from repro.eval.calibration import BITMAP_SERIAL_CYCLES

    predicted_extra = stats.tlb_miss_rate * BITMAP_SERIAL_CYCLES
    base_per_access = stats.avg_cycles_per_access - predicted_extra
    predicted = predicted_extra / base_per_access
    assert overhead == pytest.approx(predicted, rel=0.05)
    assert overhead > 0
