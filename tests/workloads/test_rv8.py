"""RV8/wolfSSL profile solving."""

from __future__ import annotations

from repro.workloads.rv8 import (
    RV8_SPECS,
    RV8_WORKLOADS,
    WOLFSSL,
    miniz_with_memory,
    rv8_suite,
    solve_profile,
)


def test_all_table4_workloads_present():
    assert set(RV8_WORKLOADS) == {"aes", "dhrystone", "miniz", "norx",
                                  "primes", "qsort", "sha512", "wolfssl"}


def test_suite_selection():
    assert len(rv8_suite()) == 8
    assert all(p.name != "wolfssl" for p in rv8_suite(include_wolfssl=False))


def test_solve_is_stable():
    spec = RV8_SPECS[0]
    assert solve_profile(spec) == solve_profile(spec)


def test_solved_shares_land_on_targets():
    """The fixed point reproduces the Table IV shares it was fed."""
    from repro.eval.scenarios import ENCLAVE_NONCRYPTO
    from repro.workloads.runner import host_baseline, run_workload

    for spec in RV8_SPECS:
        profile = RV8_WORKLOADS[spec.name]
        base = host_baseline(profile)
        run = run_workload(profile, ENCLAVE_NONCRYPTO)
        emeas_share = run.emeas_cycles / base.total_cycles
        assert abs(emeas_share - spec.emeas_noncrypto_share) < 0.004, spec.name


def test_wolfssl_is_biggest_image():
    assert WOLFSSL.image_bytes == max(p.image_bytes
                                      for p in RV8_WORKLOADS.values())


def test_miniz_memory_variant():
    small = miniz_with_memory(2)
    large = miniz_with_memory(32)
    assert large.alloc_calls > small.alloc_calls
    assert small.name == "miniz-2mb"
