"""Cost-model functions match the live system's arithmetic."""

from __future__ import annotations

from repro.common.types import Primitive, Privilege
from repro.core.config import SystemConfig
from repro.core.enclave import EnclaveConfig
from repro.core.system import HyperTEESystem
from repro.eval.calibration import EMCALL_POLL_JITTER_CYCLES
from repro.hw.core import EMS_MEDIUM, EMS_WEAK
from repro.workloads import costs


def test_ealloc_cycles_scale_with_pages():
    assert costs.ealloc_cycles(512, EMS_MEDIUM) > costs.ealloc_cycles(32, EMS_MEDIUM)


def test_ealloc_cycles_scale_with_core():
    assert costs.ealloc_cycles(32, EMS_WEAK) > costs.ealloc_cycles(32, EMS_MEDIUM)


def test_host_malloc_affine():
    base = costs.host_malloc_cycles(1)
    assert costs.host_malloc_cycles(11) - costs.host_malloc_cycles(1) == \
        10 * (costs.host_malloc_cycles(2) - base)


def test_lifecycle_cycles_scale_with_image():
    assert (costs.lifecycle_cycles(100, EMS_MEDIUM)
            > costs.lifecycle_cycles(10, EMS_MEDIUM))


def test_emeas_crypto_profile_gap():
    from repro.crypto.engine import ENGINE_CRYPTO, SOFTWARE_CRYPTO

    sw = costs.emeas_hash_cycles(1 << 20, SOFTWARE_CRYPTO)
    hw = costs.emeas_hash_cycles(1 << 20, ENGINE_CRYPTO)
    assert sw / hw > 50


def test_closed_form_matches_live_system():
    """The analytic EALLOC latency tracks an actual invocation through
    EMCall + mailbox + EMS runtime within the jitter window."""
    sys_ = HyperTEESystem(SystemConfig(cs_memory_mb=48, ems_memory_mb=4))
    result, _, _ = sys_.enclaves.ecreate(EnclaveConfig(heap_pages_max=128))
    enclave_id = result["enclave_id"]
    sys_.enclaves.eadd(enclave_id, b"c")
    sys_.enclaves.emeas(enclave_id)
    sys_.enclaves.eenter(enclave_id)

    core = sys_.primary_core
    core.current_enclave_id = enclave_id
    core.privilege = Privilege.USER
    live = sys_.emcall.invoke(Primitive.EALLOC, {"pages": 32}, core=core)
    analytic = costs.ealloc_cycles(32, EMS_MEDIUM)
    assert abs(live.cs_cycles - analytic) <= EMCALL_POLL_JITTER_CYCLES
