"""CVM lifecycle, guest memory, shared regions, snapshot/restore."""

from __future__ import annotations

import dataclasses

import pytest

from repro.common.constants import PAGE_SIZE
from repro.core.config import SystemConfig
from repro.core.system import HyperTEESystem
from repro.common.rng import DeterministicRng
from repro.cvm.image import VMOwner
from repro.errors import AttestationError, EnclaveStateError, SanityCheckError

VM_CONTENT = b"confidential VM kernel + rootfs " * 300  # ~3 pages


@pytest.fixture
def sys_() -> HyperTEESystem:
    return HyperTEESystem(SystemConfig(cs_memory_mb=64, ems_memory_mb=4))


@pytest.fixture
def owner() -> VMOwner:
    return VMOwner("tenant", DeterministicRng(99).stream("owner").randbytes)


def deploy(sys_: HyperTEESystem, owner: VMOwner, content=VM_CONTENT) -> int:
    image = owner.build_image("vm1", content)
    owner_public = owner.challenge()
    ems_public, cert = sys_.cvm.platform_challenge(owner_public)
    wrapped = owner.release_key("vm1", sys_.certificate_authority(),
                                ems_public, cert)
    return sys_.cvm.cvm_create(image, wrapped, owner_public)


def test_image_is_ciphertext(owner: VMOwner):
    image = owner.build_image("vm1", VM_CONTENT)
    assert VM_CONTENT[:64] not in image.ciphertext
    assert image.pages == (len(VM_CONTENT) + PAGE_SIZE - 1) // PAGE_SIZE


def test_owner_refuses_unattested_platform(sys_: HyperTEESystem,
                                           owner: VMOwner):
    """A platform whose cert fails CA verification never gets the key."""
    owner.build_image("vm1", VM_CONTENT)
    owner.challenge()
    other = HyperTEESystem(SystemConfig(cs_memory_mb=48, ems_memory_mb=4,
                                        seed=7))
    ems_public, cert = other.cvm.platform_challenge(0)
    with pytest.raises(AttestationError):
        # Verifying `other`'s cert against `sys_`'s CA record fails.
        owner.release_key("vm1", sys_.certificate_authority(),
                          ems_public, cert)


def test_deploy_and_guest_memory(sys_: HyperTEESystem, owner: VMOwner):
    cvm_id = deploy(sys_, owner)
    # The image content landed in guest memory.
    assert sys_.cvm.guest_read(cvm_id, 0, 32) == VM_CONTENT[:32]
    # Guest writes round-trip.
    sys_.cvm.guest_write(cvm_id, 0x1000, b"guest state")
    assert sys_.cvm.guest_read(cvm_id, 0x1000, 11) == b"guest state"


def test_guest_memory_is_ciphertext_to_host(sys_: HyperTEESystem,
                                            owner: VMOwner):
    cvm_id = deploy(sys_, owner)
    control = sys_.cvm.cvms[cvm_id]
    frame = control.guest_pages[0]
    assert sys_.memory.read_raw(frame * PAGE_SIZE, 32) != VM_CONTENT[:32]


def test_guest_access_bounds(sys_: HyperTEESystem, owner: VMOwner):
    cvm_id = deploy(sys_, owner)
    with pytest.raises(SanityCheckError):
        sys_.cvm.guest_read(cvm_id, 100 * PAGE_SIZE, 8)


def test_guest_alloc_grows_memory(sys_: HyperTEESystem, owner: VMOwner):
    cvm_id = deploy(sys_, owner)
    first = sys_.cvm.guest_alloc(cvm_id, 2)
    gpa = first * PAGE_SIZE
    assert sys_.cvm.guest_read(cvm_id, gpa, 16) == bytes(16)
    sys_.cvm.guest_write(cvm_id, gpa, b"grown")
    assert sys_.cvm.guest_read(cvm_id, gpa, 5) == b"grown"


def test_cvm_shared_memory(sys_: HyperTEESystem, owner: VMOwner):
    a = deploy(sys_, owner)
    image2 = owner.build_image("vm1", b"second vm" * 500)
    pub = owner.challenge()
    ems_public, cert = sys_.cvm.platform_challenge(pub)
    wrapped = owner.release_key("vm1", sys_.certificate_authority(),
                                ems_public, cert)
    b = sys_.cvm.cvm_create(image2, wrapped, pub)

    gpn_a, gpn_b = sys_.cvm.share_pages(a, b, pages=2)
    sys_.cvm.shared_write(a, gpn_a, b"cvm broadcast")
    assert sys_.cvm.shared_read(b, gpn_b, 13) == b"cvm broadcast"
    # Private pages are NOT shared-readable.
    with pytest.raises(SanityCheckError):
        sys_.cvm.shared_read(a, 0, 8)


def test_snapshot_restore_roundtrip(sys_: HyperTEESystem, owner: VMOwner):
    cvm_id = deploy(sys_, owner)
    sys_.cvm.guest_write(cvm_id, 0x800, b"precious runtime state")
    snapshot = sys_.cvm.snapshot(cvm_id)

    restored = sys_.cvm.restore(snapshot)
    assert restored != cvm_id
    assert sys_.cvm.guest_read(restored, 0x800, 22) == b"precious runtime state"
    assert sys_.cvm.guest_read(restored, 0, 32) == VM_CONTENT[:32]


def test_snapshot_pages_are_ciphertext(sys_: HyperTEESystem, owner: VMOwner):
    cvm_id = deploy(sys_, owner)
    snapshot = sys_.cvm.snapshot(cvm_id)
    assert VM_CONTENT[:64] not in snapshot.encrypted_pages[0]


def test_tampered_snapshot_refused(sys_: HyperTEESystem, owner: VMOwner):
    """Storage flips one byte -> Merkle verification rejects restore."""
    cvm_id = deploy(sys_, owner)
    snapshot = sys_.cvm.snapshot(cvm_id)
    pages = list(snapshot.encrypted_pages)
    pages[1] = bytes([pages[1][0] ^ 1]) + pages[1][1:]
    tampered = dataclasses.replace(snapshot, encrypted_pages=tuple(pages))
    with pytest.raises(EnclaveStateError, match="Merkle"):
        sys_.cvm.restore(tampered)


def test_destroy_reclaims(sys_: HyperTEESystem, owner: VMOwner):
    cvm_id = deploy(sys_, owner)
    control = sys_.cvm.cvms[cvm_id]
    frames = list(control.guest_pages.values())
    keyid = control.keyid
    free_before = sys_.pool.free_count
    sys_.cvm.cvm_destroy(cvm_id)
    assert sys_.pool.free_count >= free_before + len(frames)
    assert not sys_.engine.has_key(keyid)
    with pytest.raises(SanityCheckError):
        sys_.cvm.guest_read(cvm_id, 0, 4)


def test_wrong_measurement_image_refused(sys_: HyperTEESystem,
                                         owner: VMOwner):
    image = owner.build_image("vm1", VM_CONTENT)
    tampered = dataclasses.replace(image, measurement=b"\x00" * 32)
    pub = owner.challenge()
    ems_public, cert = sys_.cvm.platform_challenge(pub)
    wrapped = owner.release_key("vm1", sys_.certificate_authority(),
                                ems_public, cert)
    with pytest.raises(AttestationError):
        sys_.cvm.cvm_create(tampered, wrapped, pub)
