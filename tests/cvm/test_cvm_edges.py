"""CVM manager edge cases and failure injection."""

from __future__ import annotations

import dataclasses

import pytest

from repro.common.rng import DeterministicRng
from repro.core.config import SystemConfig
from repro.core.system import HyperTEESystem
from repro.cvm.image import VMOwner, WrappedImageKey
from repro.cvm.migration import migrate
from repro.errors import AttestationError, SanityCheckError


@pytest.fixture
def sys_() -> HyperTEESystem:
    return HyperTEESystem(SystemConfig(cs_memory_mb=64, ems_memory_mb=4))


@pytest.fixture
def owner() -> VMOwner:
    return VMOwner("tenant", DeterministicRng(42).stream("o").randbytes)


def deploy(sys_, owner, content=b"vm " * 2000) -> int:
    image = owner.build_image("vm", content)
    pub = owner.challenge()
    ems_public, cert = sys_.cvm.platform_challenge(pub)
    wrapped = owner.release_key("vm", sys_.certificate_authority(),
                                ems_public, cert)
    return sys_.cvm.cvm_create(image, wrapped, pub)


def test_release_key_requires_challenge(owner, sys_):
    owner.build_image("vm", b"content")
    ems_public, cert = sys_.cvm.platform_challenge(0)
    with pytest.raises(AttestationError):
        owner.release_key("vm", sys_.certificate_authority(),
                          ems_public, cert)


def test_tampered_wrapped_key_rejected(sys_, owner):
    image = owner.build_image("vm", b"content " * 600)
    pub = owner.challenge()
    ems_public, cert = sys_.cvm.platform_challenge(pub)
    wrapped = owner.release_key("vm", sys_.certificate_authority(),
                                ems_public, cert)
    bad = WrappedImageKey(wrapped=wrapped.wrapped, tag=b"\x00" * 32)
    with pytest.raises(AttestationError, match="authentication"):
        sys_.cvm.cvm_create(image, bad, pub)


def test_create_without_exchange_rejected(sys_, owner):
    fresh = HyperTEESystem(SystemConfig(cs_memory_mb=48, ems_memory_mb=4,
                                        seed=77))
    image = owner.build_image("vm", b"content " * 600)
    pub = owner.challenge()
    ems_public, cert = sys_.cvm.platform_challenge(pub)
    wrapped = owner.release_key("vm", sys_.certificate_authority(),
                                ems_public, cert)
    with pytest.raises(AttestationError):
        fresh.cvm.cvm_create(image, wrapped, pub)  # no exchange on `fresh`


def test_guest_write_cross_page_rejected(sys_, owner):
    cvm_id = deploy(sys_, owner)
    with pytest.raises(SanityCheckError):
        sys_.cvm.guest_write(cvm_id, 4090, b"crosses the page boundary")


def test_share_with_destroyed_cvm_rejected(sys_, owner):
    a = deploy(sys_, owner)
    b = deploy(sys_, owner, content=b"second " * 800)
    sys_.cvm.cvm_destroy(b)
    with pytest.raises(SanityCheckError):
        sys_.cvm.share_pages(a, b, pages=1)


def test_snapshot_includes_shared_pages(sys_, owner):
    a = deploy(sys_, owner)
    b = deploy(sys_, owner, content=b"second " * 800)
    gpn_a, _ = sys_.cvm.share_pages(a, b, pages=1)
    sys_.cvm.shared_write(a, gpn_a, b"shared state")
    snapshot = sys_.cvm.snapshot(a)
    restored = sys_.cvm.restore(snapshot)
    # The shared page's content rides along in the snapshot (as the
    # restored CVM's private copy).
    gpa = gpn_a * 4096
    assert sys_.cvm.guest_read(restored, gpa, 12) == b"shared state"


def test_shared_frames_reclaimed_with_last_participant(sys_, owner):
    """Shared frames survive the first participant's destruction and are
    zeroed and reclaimed with the last one — no leak, no early free."""
    a = deploy(sys_, owner)
    b = deploy(sys_, owner, content=b"second " * 800)
    gpn_a, gpn_b = sys_.cvm.share_pages(a, b, pages=2)
    sys_.cvm.shared_write(a, gpn_a, b"cross-vm")
    region_frames = [sys_.cvm.cvms[a].guest_pages[gpn_a + i]
                     for i in range(2)]

    free_before = sys_.pool.free_count
    sys_.cvm.cvm_destroy(a)
    # First destruction: region intact, still usable by b.
    assert sys_.cvm.shared_read(b, gpn_b, 8) == b"cross-vm"
    assert sys_.ownership.owner_of(region_frames[0]) is not None

    sys_.cvm.cvm_destroy(b)
    # Last destruction: region reclaimed and zeroed.
    assert sys_.ownership.owner_of(region_frames[0]) is None
    assert sys_.pool.free_count > free_before
    for frame in region_frames:
        assert sys_.memory.read_raw(frame * 4096, 64) == bytes(64)


def test_double_destroy_rejected(sys_, owner):
    cvm_id = deploy(sys_, owner)
    sys_.cvm.cvm_destroy(cvm_id)
    with pytest.raises(SanityCheckError):
        sys_.cvm.cvm_destroy(cvm_id)


def test_restore_foreign_snapshot_without_secrets(sys_, owner):
    cvm_id = deploy(sys_, owner)
    snapshot = sys_.cvm.snapshot(cvm_id)
    foreign = dataclasses.replace(snapshot, snapshot_id=999)
    with pytest.raises(SanityCheckError, match="secrets"):
        sys_.cvm.restore(foreign)


def test_migrate_then_snapshot_on_destination(owner):
    """The migrated CVM is fully functional: it can snapshot again."""
    source = HyperTEESystem(SystemConfig(cs_memory_mb=64, ems_memory_mb=4,
                                         seed=8))
    dest = HyperTEESystem(SystemConfig(cs_memory_mb=64, ems_memory_mb=4,
                                       seed=9))
    cvm_id = deploy(source, owner)
    source.cvm.guest_write(cvm_id, 0x100, b"roundtrip")
    new_id = migrate(source, dest, cvm_id)
    snapshot = dest.cvm.snapshot(new_id)
    restored = dest.cvm.restore(snapshot)
    assert dest.cvm.guest_read(restored, 0x100, 9) == b"roundtrip"
