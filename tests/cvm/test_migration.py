"""CVM migration between two platforms."""

from __future__ import annotations

import pytest

from repro.common.rng import DeterministicRng
from repro.core.config import SystemConfig
from repro.core.system import HyperTEESystem
from repro.cvm.image import VMOwner
from repro.cvm.migration import _unwrap, _wrap, migrate
from repro.cvm.manager import SnapshotSecrets
from repro.errors import AttestationError

VM_CONTENT = b"vm to be migrated across hosts " * 260


def make_platform(seed: int) -> HyperTEESystem:
    return HyperTEESystem(SystemConfig(cs_memory_mb=64, ems_memory_mb=4,
                                       seed=seed))


def deploy(sys_: HyperTEESystem) -> int:
    owner = VMOwner("tenant",
                    DeterministicRng(7).stream("owner").randbytes)
    image = owner.build_image("vm", VM_CONTENT)
    pub = owner.challenge()
    ems_public, cert = sys_.cvm.platform_challenge(pub)
    wrapped = owner.release_key("vm", sys_.certificate_authority(),
                                ems_public, cert)
    return sys_.cvm.cvm_create(image, wrapped, pub)


def test_migration_moves_state():
    source, dest = make_platform(1), make_platform(2)
    cvm_id = deploy(source)
    source.cvm.guest_write(cvm_id, 0x400, b"live migration payload")

    new_id = migrate(source, dest, cvm_id)

    assert dest.cvm.guest_read(new_id, 0x400, 22) == b"live migration payload"
    assert dest.cvm.guest_read(new_id, 0, 16) == VM_CONTENT[:16]
    # The source copy is gone.
    assert source.cvm.cvms[cvm_id].state == "destroyed"


def test_migrated_cvm_uses_destination_keys():
    source, dest = make_platform(3), make_platform(4)
    cvm_id = deploy(source)
    new_id = migrate(source, dest, cvm_id)
    control = dest.cvm.cvms[new_id]
    assert dest.engine.has_key(control.keyid)


def test_secrets_wrap_roundtrip_and_tamper():
    secrets = SnapshotSecrets(key=b"k" * 32, merkle_root=b"r" * 32)
    sealed = _wrap(b"c" * 32, secrets)
    assert _unwrap(b"c" * 32, sealed) == secrets
    with pytest.raises(AttestationError):
        _unwrap(b"x" * 32, sealed)  # wrong channel key


def test_measurement_preserved_across_migration():
    source, dest = make_platform(5), make_platform(6)
    cvm_id = deploy(source)
    measurement = source.cvm.cvms[cvm_id].measurement
    new_id = migrate(source, dest, cvm_id)
    assert dest.cvm.cvms[new_id].measurement == measurement
