"""Merkle tree: roots, proofs, updates."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.merkle import MerkleTree


def leaves(n: int) -> list[bytes]:
    return [bytes([i]) * 32 for i in range(n)]


def test_single_leaf():
    tree = MerkleTree(leaves(1))
    proof = tree.prove(0)
    assert proof.steps == ()
    assert MerkleTree.verify(tree.root, leaves(1)[0], proof)


def test_empty_rejected():
    with pytest.raises(ValueError):
        MerkleTree([])


def test_root_changes_with_content():
    assert MerkleTree(leaves(4)).root != MerkleTree(leaves(5)[1:]).root


def test_root_changes_with_order():
    data = leaves(4)
    assert MerkleTree(data).root != MerkleTree(list(reversed(data))).root


@pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 7, 8, 9, 16, 33])
def test_all_proofs_verify(n: int):
    data = leaves(n)
    tree = MerkleTree(data)
    for i in range(n):
        assert MerkleTree.verify(tree.root, data[i], tree.prove(i)), (n, i)


def test_proof_rejects_wrong_leaf():
    data = leaves(8)
    tree = MerkleTree(data)
    proof = tree.prove(3)
    assert not MerkleTree.verify(tree.root, b"tampered" * 4, proof)


def test_proof_rejects_wrong_position():
    data = leaves(8)
    tree = MerkleTree(data)
    assert not MerkleTree.verify(tree.root, data[2], tree.prove(3))


def test_out_of_range():
    tree = MerkleTree(leaves(4))
    with pytest.raises(IndexError):
        tree.prove(4)
    with pytest.raises(IndexError):
        tree.update(7, b"x")


def test_update_matches_rebuild():
    data = leaves(9)
    tree = MerkleTree(data)
    data[5] = b"new content" * 3
    tree.update(5, data[5])
    assert tree.root == MerkleTree(data).root
    assert MerkleTree.verify(tree.root, data[5], tree.prove(5))


@given(n=st.integers(min_value=1, max_value=24),
       index=st.integers(min_value=0, max_value=23),
       payload=st.binary(min_size=1, max_size=64))
@settings(max_examples=40, deadline=None)
def test_update_property(n: int, index: int, payload: bytes):
    index %= n
    data = leaves(n)
    tree = MerkleTree(data)
    data[index] = payload
    tree.update(index, payload)
    assert tree.root == MerkleTree(data).root
