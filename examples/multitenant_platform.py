"""A multi-tenant platform: scheduling, CFI, and anomaly detection.

Three tenants timeshare one HyperTEE platform under the preemptive
scheduler: an enclave analytics job, an enclave under CFI monitoring,
and a plain host batch job. Preemption travels the real architecture
path (timer -> EMCall -> EEXIT/ERESUME). Then two things go wrong on
purpose: one enclave takes a control-flow detour (the EMS CFI monitor
kills it) and a malicious scheduler tries to single-step another (the
interrupt anomaly detector evicts it).

Run with::

    python examples/multitenant_platform.py
"""

from __future__ import annotations

from repro.core.api import HyperTEE
from repro.core.enclave import EnclaveConfig
from repro.cs.scheduler import EnclaveTask, HostTask, Scheduler


def make_counter_program(steps: int):
    """An enclave program accumulating state in protected heap."""
    state = {"vaddr": None, "step": 0}

    def program(enclave) -> bool:
        if state["vaddr"] is None:
            state["vaddr"] = enclave.ealloc(1)
        state["step"] += 1
        enclave.write(state["vaddr"], state["step"].to_bytes(4, "little"))
        return state["step"] >= steps

    return program, state


def main() -> None:
    tee = HyperTEE()

    # --- normal multi-tenant operation -------------------------------------
    analytics = tee.launch_enclave(b"analytics enclave",
                                   EnclaveConfig(name="analytics"))
    aprog, astate = make_counter_program(5)

    monitored = tee.launch_enclave(b"monitored enclave",
                                   EnclaveConfig(name="monitored"))
    cfg = {(0x100, 0x200), (0x200, 0x100)}
    tee.system.cfi.register_policy(monitored.enclave_id, cfg)
    mprog, _ = make_counter_program(5)

    batch = tee.system.os.create_process("batch")
    batch_state = {"step": 0}

    def batch_program(core) -> bool:
        batch_state["step"] += 1
        return batch_state["step"] >= 5

    scheduler = Scheduler(tee)
    scheduler.add(EnclaveTask("analytics", analytics, aprog))
    scheduler.add(EnclaveTask("monitored", monitored, mprog))
    scheduler.add(HostTask("batch", batch, batch_program))
    scheduler.run()

    print(f"scheduler: {scheduler.stats.slices} slices, "
          f"{scheduler.stats.timer_interrupts} timer preemptions, "
          f"{scheduler.stats.completed} tasks completed")
    with analytics.running():
        value = int.from_bytes(analytics.read(astate['vaddr'], 4), "little")
    print(f"analytics state after timesharing: counter={value} (intact)")

    # --- a control-flow hijack is detected -----------------------------------
    tee.system.cfi.record_transfer(monitored.enclave_id, 0x100, 0x200)
    tee.system.cfi.record_transfer(monitored.enclave_id, 0x200, 0x6666)
    violations = tee.system.cfi.scan(monitored.enclave_id)
    print(f"\nCFI monitor: violation {violations[0][1]:#x} detected; "
          f"enclave #{monitored.enclave_id} terminated by the EMS")

    # --- a single-stepping scheduler is caught ---------------------------------
    victim = tee.launch_enclave(b"stepped enclave",
                                EnclaveConfig(name="victim"))
    vprog, _ = make_counter_program(10_000)
    stepper = Scheduler(tee, quantum_cycles=10_000)  # ~250 kHz interrupts
    stepper.add(EnclaveTask("victim", victim, vprog))
    try:
        stepper.run(max_slices=100)
    except Exception:
        pass
    flagged = tee.system.interrupt_monitor.is_flagged(victim.enclave_id)
    print(f"anomaly detector: single-stepping scheduler "
          f"{'flagged and evicted the enclave' if flagged else 'missed?!'}")


if __name__ == "__main__":
    main()
