"""Confidential VM lifecycle and migration (paper Section IX).

A tenant deploys an encrypted VM image to an attested HyperTEE platform,
the CVM runs and accumulates state, gets snapshotted (Merkle-protected,
key held in EMS private memory), survives a storage-tampering attempt,
and finally live-migrates to a second platform over an EMS-to-EMS
attested channel.

Run with::

    python examples/confidential_vm.py
"""

from __future__ import annotations

import dataclasses

from repro.common.rng import DeterministicRng
from repro.core.config import SystemConfig
from repro.core.system import HyperTEESystem
from repro.cvm.image import VMOwner
from repro.cvm.migration import migrate
from repro.errors import AttestationError, EnclaveStateError


def main() -> None:
    host_a = HyperTEESystem(SystemConfig(cs_memory_mb=64, ems_memory_mb=4,
                                         seed=101))
    host_b = HyperTEESystem(SystemConfig(cs_memory_mb=64, ems_memory_mb=4,
                                         seed=202))
    owner = VMOwner("tenant",
                    DeterministicRng(55).stream("tenant").randbytes)

    # --- encrypted image deployment -----------------------------------------
    image = owner.build_image("db-vm", b"confidential database VM " * 400)
    print(f"built encrypted image: {image.pages} pages, "
          f"measurement {image.measurement.hex()[:16]}…")

    owner_public = owner.challenge()
    ems_public, cert = host_a.cvm.platform_challenge(owner_public)
    wrapped = owner.release_key("db-vm", host_a.certificate_authority(),
                                ems_public, cert)
    print("host A attested; image key released under the channel key")

    cvm_id = host_a.cvm.cvm_create(image, wrapped, owner_public)
    print(f"CVM #{cvm_id} running on host A")

    # An unattested platform never gets the key.
    rogue = HyperTEESystem(SystemConfig(cs_memory_mb=48, ems_memory_mb=4,
                                        seed=999))
    owner.challenge()
    rogue_public, rogue_cert = rogue.cvm.platform_challenge(0)
    try:
        owner.release_key("db-vm", host_a.certificate_authority(),
                          rogue_public, rogue_cert)
        raise AssertionError("rogue platform must not receive the key")
    except AttestationError:
        print("rogue platform failed attestation; key withheld")

    # --- runtime state + snapshot ----------------------------------------------
    host_a.cvm.guest_write(cvm_id, 0x2000, b"customer records v17")
    snapshot = host_a.cvm.snapshot(cvm_id)
    print(f"\nsnapshot #{snapshot.snapshot_id}: "
          f"{len(snapshot.encrypted_pages)} encrypted pages; Merkle root "
          f"held in EMS private memory")

    # Storage tampering is caught by Merkle verification.
    pages = list(snapshot.encrypted_pages)
    pages[0] = bytes([pages[0][0] ^ 1]) + pages[0][1:]
    tampered = dataclasses.replace(snapshot, encrypted_pages=tuple(pages))
    try:
        host_a.cvm.restore(tampered)
        raise AssertionError("tampered snapshot must not restore")
    except EnclaveStateError:
        print("tampered snapshot rejected by Merkle verification")

    restored = host_a.cvm.restore(snapshot)
    assert host_a.cvm.guest_read(restored, 0x2000, 20) == b"customer records v17"
    print(f"clean restore -> CVM #{restored}, state intact")

    # --- migration -----------------------------------------------------------------
    migrated = migrate(host_a, host_b, restored)
    assert host_b.cvm.guest_read(migrated, 0x2000, 20) == b"customer records v17"
    print(f"\nmigrated to host B as CVM #{migrated}: state verified, "
          f"source copy destroyed")
    print("the CVM encryption key and root hash crossed only the "
          "EMS-to-EMS attested channel")


if __name__ == "__main__":
    main()
