"""Attestation workflows: remote (SIGMA-style) and local, plus sealing.

A remote user verifies that (a) the platform booted genuine HyperTEE
firmware and (b) the enclave runs exactly the expected binary, then
derives a session key bound to that verification. A tampered enclave
fails verification.

Run with::

    python examples/attestation_workflow.py
"""

from __future__ import annotations

from repro.core.api import HyperTEE, local_attest
from repro.core.enclave import EnclaveConfig
from repro.crypto.cipher import KeystreamCipher
from repro.ems.attestation import RemoteSession


def main() -> None:
    tee = HyperTEE()
    ca = tee.system.certificate_authority()

    service_code = b"genuine inference service v1.0"
    enclave = tee.launch_enclave(service_code,
                                 EnclaveConfig(name="service"))
    print(f"service enclave launched, measurement "
          f"{enclave.measurement.hex()[:24]}…")

    # --- remote attestation -------------------------------------------------
    # The remote user knows (out of band) the measurement of the binary
    # they expect, and trusts the CA's record of this device.
    session = RemoteSession(ca=ca,
                            expected_enclave_measurement=enclave.measurement)
    with enclave.running():
        enclave_key = enclave.remote_attest(session)
    assert session.session_key == enclave_key
    print("remote attestation complete: platform + enclave verified, "
          "session key established")

    # The session key encrypts subsequent traffic.
    wire = KeystreamCipher(session.session_key).encrypt(b"confidential query")
    answer = KeystreamCipher(enclave_key).decrypt(wire)
    assert answer == b"confidential query"
    print("encrypted a query under the negotiated session key")

    # --- a tampered enclave fails -------------------------------------------
    evil = tee.launch_enclave(b"trojaned inference service",
                              EnclaveConfig(name="evil"))
    bad_session = RemoteSession(
        ca=ca, expected_enclave_measurement=enclave.measurement)
    try:
        with evil.running():
            evil.remote_attest(bad_session)
        raise AssertionError("tampered enclave must not attest")
    except Exception as exc:
        print(f"tampered enclave rejected: {type(exc).__name__}")

    # --- local attestation ----------------------------------------------------
    # Two enclaves prove to each other they run on the same platform.
    peer = tee.launch_enclave(b"storage helper enclave",
                              EnclaveConfig(name="helper"))
    verified = local_attest(enclave, peer)
    assert verified == peer.measurement
    print("local attestation: service verified the helper enclave "
          "is co-resident")

    # --- sealing -------------------------------------------------------------------
    with enclave.running():
        blob = enclave.seal(b"model license key")
    print("sealed a license key: HostApp can now persist the blob")
    with enclave.running():
        assert enclave.unseal(blob) == b"model license key"
    print("the same enclave identity unsealed it after 're-launch'")


if __name__ == "__main__":
    main()
