"""Quickstart: boot a HyperTEE platform, launch an enclave, use it.

Run with::

    python examples/quickstart.py

Walks the basic lifecycle a HostApp developer sees: launch (ECREATE +
EADD + EMEAS under the hood), enter, allocate and touch protected heap,
demonstrate that the host sees only ciphertext, seal data for disk, and
tear down.
"""

from __future__ import annotations

from repro.common.constants import PAGE_SHIFT
from repro.core.api import HyperTEE
from repro.core.enclave import EnclaveConfig


def main() -> None:
    # One call boots the whole platform: memory + encryption engine,
    # iHub partition, enclave bitmap, secure boot of the EMS, EMCall.
    tee = HyperTEE()
    print("platform booted; EMS runtime verified by secure boot")
    print(f"  platform measurement: "
          f"{tee.system.boot_report.platform_measurement.hex()[:24]}…")

    # Launch: the code is EADDed page by page and measured by the EMS.
    code = b"example enclave code segment " * 40
    enclave = tee.launch_enclave(
        code, EnclaveConfig(name="quickstart", heap_pages_max=64))
    print(f"\nenclave #{enclave.enclave_id} launched")
    print(f"  measurement: {enclave.measurement.hex()[:24]}…")

    with enclave.running():
        # Dynamic memory comes from the EMS pool via EALLOC; the CS OS
        # never observes which pages this enclave uses.
        vaddr = enclave.ealloc(4)
        enclave.write(vaddr, b"the enclave's secret")
        assert enclave.read(vaddr, 20) == b"the enclave's secret"
        print(f"\nwrote a secret at enclave vaddr {vaddr:#x}")

        # Demand paging: touching past the allocation faults through
        # EMCall to the EMS, which maps a zeroed page transparently.
        enclave.write(vaddr + 5 * 4096, b"demand-faulted page")
        print("touched an unmapped heap page; the EMS demand-allocated it")

        # The host's view of the same physical frame is ciphertext.
        control = tee.system.enclaves.enclaves[enclave.enclave_id]
        frame = control.page_table.lookup(vaddr >> PAGE_SHIFT).ppn
        raw = tee.system.memory.read_raw(frame << PAGE_SHIFT, 20)
        print(f"host raw view of that frame: {raw.hex()[:40]}… (ciphertext)")
        assert raw != b"the enclave's secret"

        # Seal for persistent storage: bound to this enclave identity on
        # this physical device.
        blob = enclave.seal(b"state to survive reboot")
        assert enclave.unseal(blob) == b"state to survive reboot"
        print("sealed and unsealed persistent state")

    enclave.destroy()
    print("\nenclave destroyed; all frames zeroed and returned to the pool")
    print(f"total primitive latency spent: {tee.primitive_cycles} CS cycles")


if __name__ == "__main__":
    main()
