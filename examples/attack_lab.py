"""Attack lab: run the paper's management-task attacks live.

Executes the allocation / page-table / swap controlled-channel attacks
and the management-task prime+probe against both an SGX-style baseline
and a live HyperTEE platform, then prints the recovered secrets — the
executable version of the paper's Table VI argument.

Run with::

    python examples/attack_lab.py
"""

from __future__ import annotations

from repro.attacks.comm_attack import communication_attack
from repro.attacks.controlled_channel import (
    allocation_attack,
    make_secret,
    page_table_attack,
    swap_attack,
)
from repro.attacks.side_channel import mgmt_microarch_attack
from repro.baselines.catalog import make_baseline
from repro.baselines.hypertee_adapter import HyperTEEAdapter


def main() -> None:
    secret = make_secret(16)
    print(f"victim secret: {''.join(map(str, secret))}\n")

    attacks = [
        ("allocation channel", lambda t: allocation_attack(t, secret)),
        ("page-table channel", lambda t: page_table_attack(t, secret)),
        ("swap channel", lambda t: swap_attack(t, secret)),
        ("mgmt prime+probe", lambda t: mgmt_microarch_attack(t, secret)),
        ("communication", communication_attack),
    ]

    header = f"{'attack':20s} {'vs SGX':>22s} {'vs HyperTEE':>22s}"
    print(header)
    print("-" * len(header))
    for name, attack in attacks:
        # Fresh platforms per attack so runs cannot contaminate each other.
        sgx_result = attack(make_baseline("sgx"))
        hyper_result = attack(HyperTEEAdapter())
        print(f"{name:20s} "
              f"{sgx_result.outcome.value:>12s} ({sgx_result.accuracy:.2f}) "
              f"{hyper_result.outcome.value:>12s} ({hyper_result.accuracy:.2f})")

    print("\naccuracy 1.00 = full secret recovered; ~0.50 = guessing.")
    print("On HyperTEE the attacks are not merely harder — the observable")
    print("events they rely on (per-page allocations, readable enclave")
    print("PTEs, targeted evictions, shared-cache footprints of management")
    print("tasks) do not exist on the CS side at all.")


if __name__ == "__main__":
    main()
