"""Secure DNN inference on an accelerator (the paper's Fig. 12 scenario).

A *user enclave* holds confidential model weights; a *driver enclave*
owns the Gemmini accelerator. They communicate through EMS-managed shared
enclave memory, and the driver grants the accelerator's DMA engine access
to exactly that region through the iHub whitelist. A rogue device outside
the whitelist is blocked.

Run with::

    python examples/secure_accelerator.py
"""

from __future__ import annotations

from repro.common.types import Permission
from repro.core.api import HyperTEE, local_attest
from repro.core.enclave import EnclaveConfig
from repro.errors import DMAViolation
from repro.hw.devices import DMAEngine, GemminiAccelerator
from repro.workloads.dnn import RESNET50, conventional_timing, speedup


def main() -> None:
    tee = HyperTEE()
    system = tee.system

    user = tee.launch_enclave(b"dnn-model-owner",
                              EnclaveConfig(name="user", shared_pages_max=16))
    driver = tee.launch_enclave(b"gemmini-driver",
                                EnclaveConfig(name="driver"))
    print(f"user enclave #{user.enclave_id}, driver enclave "
          f"#{driver.enclave_id} launched")

    # The enclaves authenticate each other on-platform before sharing.
    peer = local_attest(driver, user)
    assert peer == user.measurement
    print("local attestation: driver verified the user enclave's identity")

    # User enclave creates the shared region and authorizes the driver.
    with user.running():
        region = user.create_shared_region(8, Permission.RW)
        user.share_with(region, driver, Permission.RW)
        va_user = user.attach(region)
        user.write(va_user, b"layer-0 weights + activations")
        print(f"user enclave staged model data in shared region "
              f"#{region.shm_id}")

    # Driver attaches and whitelists the accelerator's DMA engine onto
    # the region's (contiguous) physical range.
    with driver.running():
        va_driver = driver.attach(region)
        assert driver.read(va_driver, 29) == b"layer-0 weights + activations"
        driver.grant_device(region, "gemmini", Permission.RW)
        print("driver attached and whitelisted the Gemmini DMA engine")

    control = system.shm.regions[region.shm_id]
    gemmini_dma = DMAEngine("gemmini", system.ihub, system.memory)
    accelerator = GemminiAccelerator(gemmini_dma)

    # The accelerator streams a layer straight from shared enclave
    # memory — plaintext speed, no software crypto on the path.
    seconds = accelerator.run_layer(
        input_paddr=control.base_paddr, input_bytes=2048,
        output_paddr=control.base_paddr + 2048, output_bytes=2048,
        macs=8e6, keyid=control.keyid)
    print(f"gemmini executed a layer in {seconds * 1e6:.1f} µs of compute, "
          f"{gemmini_dma.stats.bytes_moved} bytes moved by DMA")

    # A rogue device (never whitelisted) cannot read the region.
    rogue = DMAEngine("rogue-nic", system.ihub, system.memory)
    try:
        rogue.read(control.base_paddr, 64)
        raise AssertionError("rogue DMA should have been discarded")
    except DMAViolation:
        print("rogue DMA engine blocked by the iHub whitelist")

    # What this buys end to end (the Fig. 12 numbers):
    conv = conventional_timing(RESNET50)
    print(f"\nResNet50 inference, conventional TEE: "
          f"{conv.total_seconds * 1e3:.1f} ms "
          f"({conv.crypto_share * 100:.1f}% spent in software crypto)")
    print(f"ResNet50 inference, HyperTEE shared memory: "
          f"{conv.total_seconds / speedup(RESNET50) * 1e3:.1f} ms "
          f"-> {speedup(RESNET50):.1f}x speedup")


if __name__ == "__main__":
    main()
