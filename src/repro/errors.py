"""Exception hierarchy for the HyperTEE model.

Every fault the modelled hardware or the EMS runtime can raise derives from
:class:`HyperTEEError`, so callers can catch the whole family, while tests
can assert on precise failure modes (e.g. a bitmap violation versus an
ownership conflict).
"""

from __future__ import annotations


class HyperTEEError(Exception):
    """Base class for all errors raised by the HyperTEE model."""


class ConfigurationError(HyperTEEError):
    """A system or enclave configuration is inconsistent or unsupported."""


# --------------------------------------------------------------------------
# Hardware-level faults
# --------------------------------------------------------------------------

class HardwareFault(HyperTEEError):
    """Base class for faults raised by modelled hardware components."""


class PhysicalAddressError(HardwareFault):
    """A physical address is outside the installed memory."""


class BitmapViolation(HardwareFault):
    """A non-enclave access targeted a page marked as enclave memory.

    Raised by the page-table walker's bitmap checking logic (paper Fig. 5).
    """


class PageFault(HardwareFault):
    """A virtual address has no valid mapping in the active page table."""

    def __init__(self, vaddr: int, message: str = "") -> None:
        super().__init__(message or f"page fault at vaddr {vaddr:#x}")
        self.vaddr = vaddr


class AccessPermissionError(HardwareFault):
    """A mapping exists but forbids the attempted access type."""


class IntegrityViolation(HardwareFault):
    """A memory block's MAC did not verify (physical tampering detected)."""


class DMAViolation(HardwareFault):
    """A DMA access fell outside the whitelisted region for the device."""


class IsolationViolation(HardwareFault):
    """CS-side hardware or software touched an EMS-private resource.

    The iHub enforces unidirectional isolation: EMS may reach CS resources,
    never the reverse (paper Section III-A).
    """


class KeySlotExhausted(HardwareFault):
    """The memory encryption engine has no free KeyID slot."""


# --------------------------------------------------------------------------
# EMCall / mailbox faults
# --------------------------------------------------------------------------

class EMCallError(HyperTEEError):
    """Base class for faults raised by the trusted call gate."""


class PrivilegeViolation(EMCallError):
    """A primitive was invoked from the wrong privilege level."""


class ForgedRequestError(EMCallError):
    """A request claimed an enclave identity it does not hold."""


class MailboxError(EMCallError):
    """Malformed traffic on the mailbox (unknown request id, replay, ...)."""


class EMCallTimeout(EMCallError):
    """No response arrived within the per-primitive poll deadline.

    Raised after EMCall exhausts its bounded retries; carries enough
    context for the caller (or a degraded-mode wrapper) to account for
    the wasted cycles and decide what to do next.
    """

    def __init__(self, primitive: str, attempts: int, deadline_polls: int,
                 waited_cycles: int) -> None:
        super().__init__(
            f"{primitive}: no response after {attempts} attempt(s) of "
            f"{deadline_polls} polls each ({waited_cycles} CS cycles waited)")
        self.primitive = primitive
        self.attempts = attempts
        self.deadline_polls = deadline_polls
        self.waited_cycles = waited_cycles


# --------------------------------------------------------------------------
# EMS runtime faults (returned to CS as failed primitive responses)
# --------------------------------------------------------------------------

class EMSError(HyperTEEError):
    """Base class for failures detected inside the EMS runtime."""


class SanityCheckError(EMSError):
    """A primitive request failed the EMS argument sanity check."""


class EnclaveStateError(EMSError):
    """A primitive is illegal in the enclave's current lifecycle state."""


class OwnershipError(EMSError):
    """A physical page is already owned by a different enclave or region."""


class OutOfEnclaveMemory(EMSError):
    """The enclave memory pool could not satisfy an allocation."""


class SharedMemoryError(EMSError):
    """Generic shared-memory management failure."""


class ConnectionNotAuthorized(SharedMemoryError):
    """An enclave tried to attach a region it was never granted (§V-A)."""


class NotRegionOwner(SharedMemoryError):
    """Only the initial sender enclave may perform this operation (§V-C)."""


class ActiveConnectionsRemain(SharedMemoryError):
    """A region cannot be destroyed while attachments are active (§V-C)."""


class ShardError(EMSError):
    """A multi-EMS shard-pool operation is invalid (bad shard index,
    enclave not resident on the addressed shard, transfer misuse)."""


class TransferInterrupted(ShardError):
    """A cross-shard ownership transfer aborted between prepare and
    commit; no state moved, and the transfer may be retried."""


# --------------------------------------------------------------------------
# Fault injection (the chaos harness itself, not the modelled hardware)
# --------------------------------------------------------------------------

class FaultConfigError(ConfigurationError):
    """A FaultPlan names an unknown point or carries invalid parameters."""


# --------------------------------------------------------------------------
# Attestation / boot faults
# --------------------------------------------------------------------------

class AttestationError(HyperTEEError):
    """A measurement or certificate failed verification."""


class SecureBootError(HyperTEEError):
    """A boot-chain stage's hash did not match its golden value."""


class SealingError(HyperTEEError):
    """Sealed data failed authentication on unseal."""
