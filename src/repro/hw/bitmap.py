"""Enclave memory bitmap (paper Section IV-B, Fig. 5).

One bit per physical page records whether the page belongs to enclave
memory. The bitmap enables *non-contiguous* enclave memory — the paper's
argument against contiguous-region (SGX EPC) or range-register (CURE,
Penglai-style) isolation — and is checked by the CS page-table walker
after every PTE load for non-enclave accesses.

The bitmap lives in real modelled memory at ``BM_BASE``, and its own
backing pages are themselves marked as enclave memory so untrusted CS
software cannot read or flip bits directly.
"""

from __future__ import annotations

from repro.common.constants import PAGE_SHIFT, PAGE_SIZE
from repro.hw.memory import PhysicalMemory


class EnclaveBitmap:
    """The page-granular enclave-ownership bitmap in physical memory."""

    def __init__(self, memory: PhysicalMemory, base_paddr: int) -> None:
        if base_paddr % PAGE_SIZE:
            raise ValueError("bitmap base must be page aligned")
        self.memory = memory
        self.base_paddr = base_paddr
        self.size_bytes = (memory.num_frames + 7) // 8
        self._self_protect()

    def _self_protect(self) -> None:
        """Mark the bitmap's own backing pages as enclave memory."""
        first = self.base_paddr >> PAGE_SHIFT
        last = (self.base_paddr + self.size_bytes - 1) >> PAGE_SHIFT
        for frame in range(first, last + 1):
            self.set_enclave(frame, True)

    def _locate(self, frame_number: int) -> tuple[int, int]:
        if not 0 <= frame_number < self.memory.num_frames:
            raise ValueError(f"frame {frame_number} out of range")
        return self.base_paddr + (frame_number >> 3), frame_number & 7

    def is_enclave(self, frame_number: int) -> bool:
        """True when ``frame_number`` is marked as enclave memory."""
        byte_addr, bit = self._locate(frame_number)
        value = self.memory.read_raw(byte_addr, 1)[0]
        return bool((value >> bit) & 1)

    def set_enclave(self, frame_number: int, flag: bool) -> None:
        """Set/clear the enclave bit. Callers must be EMS or EMCall.

        The model enforces that discipline structurally: untrusted CS
        software only ever receives the :class:`BitmapReader` view below.
        """
        byte_addr, bit = self._locate(frame_number)
        value = self.memory.read_raw(byte_addr, 1)[0]
        if flag:
            value |= 1 << bit
        else:
            value &= ~(1 << bit)
        self.memory.write_raw(byte_addr, bytes([value]))

    def enclave_frames(self) -> list[int]:
        """All frames currently marked enclave (test/diagnostic helper)."""
        return [f for f in range(self.memory.num_frames) if self.is_enclave(f)]


class BitmapReader:
    """Read-only bitmap view handed to the PTW checking logic.

    Models the hardware check path: the PTW may *retrieve* bitmap bits
    (one extra memory read, performed in parallel with the permission
    check per the paper) but can never update them.
    """

    def __init__(self, bitmap: EnclaveBitmap) -> None:
        self._bitmap = bitmap

    def is_enclave(self, frame_number: int) -> bool:
        """Retrieve one bitmap bit (the PTW check path)."""
        return self._bitmap.is_enclave(frame_number)
