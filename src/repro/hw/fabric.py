"""On-chip fabric and iHub (paper Sections III-A, III-D, V-C).

The iHub mediates between the CS cores and the HyperTEE IP and enforces:

* **Unidirectional isolation** — EMS masters may access the entire CS
  memory space and I/O; CS masters can never reach EMS-private memory or
  devices. At SoC boot, chip-initialization logic carves the physical
  address space into a CS region and an EMS-private region.
* **The mailbox** — the only legitimate CS->EMS communication channel.
* **The DMA whitelist** — register pairs (base, size, permission) per DMA
  device, exclusively configurable by the EMS; accesses outside a
  device's legal region are discarded (raise).
* **The engine configuration path** — KeyID programming reaches the
  memory encryption engine only through the iHub's EMS port.
"""

from __future__ import annotations

import dataclasses

from repro.common.types import AccessType, Permission
from repro.errors import DMAViolation, IsolationViolation
from repro.hw.mailbox import Mailbox


@dataclasses.dataclass(frozen=True)
class AddressPartition:
    """The boot-time split of physical memory (Section III-D, point 3)."""

    cs_base: int
    cs_size: int
    ems_base: int
    ems_size: int

    def in_cs(self, paddr: int, length: int = 1) -> bool:
        """Does [paddr, paddr+length) lie in the CS region?"""
        return self.cs_base <= paddr and paddr + length <= self.cs_base + self.cs_size

    def in_ems(self, paddr: int, length: int = 1) -> bool:
        """Does [paddr, paddr+length) lie in the EMS region?"""
        return self.ems_base <= paddr and paddr + length <= self.ems_base + self.ems_size


@dataclasses.dataclass(frozen=True)
class WhitelistEntry:
    """One DMA whitelist register pair (address, size, permission)."""

    base: int
    size: int
    perm: Permission

    def covers(self, paddr: int, length: int, access: AccessType) -> bool:
        """Does this register pair admit the access?"""
        inside = self.base <= paddr and paddr + length <= self.base + self.size
        return inside and self.perm.allows(access)


@dataclasses.dataclass
class FabricStats:
    cs_accesses: int = 0
    ems_accesses: int = 0
    isolation_blocks: int = 0
    dma_checks: int = 0
    dma_blocks: int = 0


class FabricProbe:
    """What an on-chip-fabric observer can see of EMS traffic.

    Ring/mesh interconnect attacks [84], [85] observe *that* traffic
    crossed a link, and when — never its contents or its originating
    task. The probe therefore exposes only an event count stream: the
    number of EMS-side fabric transactions in each observation window.
    Section VIII-C's argument is that this stream is useless because
    concurrent primitive service interleaves many tasks' accesses and
    the attacker can neither slow nor isolate a victim primitive.
    """

    def __init__(self) -> None:
        self._events = 0

    def record(self, count: int = 1) -> None:
        """The fabric crossed ``count`` EMS transactions."""
        self._events += count

    def window(self) -> int:
        """Read and reset the observation window's event count."""
        out, self._events = self._events, 0
        return out


class IHub:
    """The CS<->EMS bridge with its security checks."""

    def __init__(self, partition: AddressPartition,
                 mailbox: Mailbox | None = None) -> None:
        self.partition = partition
        self.mailbox = mailbox if mailbox is not None else Mailbox()
        self._dma_whitelist: dict[str, list[WhitelistEntry]] = {}
        self.stats = FabricStats()
        #: The interconnect observer's view of EMS traffic (Section VIII-C).
        self.probe = FabricProbe()
        #: Fault injector for the transfer path (None = clear weather).
        self.faults = None
        #: Additional per-shard mailboxes on the fabric (multi-EMS
        #: scale-out); the primary ``self.mailbox`` is shard 0's.
        self.shard_mailboxes: list[Mailbox] = []

    def register_shard_mailbox(self, mailbox: Mailbox) -> None:
        """Put an extra EMS shard's mailbox on the fabric.

        The shard's mailbox is subject to the same transport weather as
        the primary one: if a fault injector is already attached it is
        inherited immediately, otherwise :meth:`attach_faults` will wire
        it later.
        """
        self.shard_mailboxes.append(mailbox)
        if self.faults is not None:
            mailbox.faults = self.faults

    def attach_faults(self, injector) -> None:
        """Wire a fault injector into the transfer path.

        The iHub owns the CS<->EMS link, so it is the attachment point
        for transport weather: every mailbox on the fabric (the primary
        one and any shard mailboxes) inherits the same injector for its
        queue-level faults, and ``fabric.latency`` spikes land on the
        mailbox's transfer legs.
        """
        self.faults = injector
        self.mailbox.faults = injector
        for mailbox in self.shard_mailboxes:
            mailbox.faults = injector

    # -- memory access checks ------------------------------------------------------

    def check_cs_access(self, paddr: int, length: int = 1) -> None:
        """Gate a CS-master access: EMS-private space is invisible.

        Raises :class:`IsolationViolation` when the CS touches the EMS
        region — this is the unidirectional-isolation half that protects
        management tasks from CS observation.
        """
        self.stats.cs_accesses += 1
        if self.partition.in_ems(paddr, length):
            self.stats.isolation_blocks += 1
            raise IsolationViolation(
                f"CS access to EMS-private address {paddr:#x}")

    def check_ems_access(self, paddr: int, length: int = 1) -> None:
        """Gate an EMS-master access: the whole space is reachable."""
        self.stats.ems_accesses += 1
        self.probe.record()
        # Unidirectional: no restriction for EMS masters.

    # -- DMA whitelist (Section V-C) --------------------------------------------------

    def configure_dma_whitelist(self, device_id: str,
                                entries: list[WhitelistEntry], *,
                                from_ems: bool) -> None:
        """Install the legal-region registers for one DMA device.

        The whitelist registers are control registers in the fabric,
        exclusively configurable by the EMS.
        """
        if not from_ems:
            raise IsolationViolation("DMA whitelist is configurable only by EMS")
        self._dma_whitelist[device_id] = list(entries)

    def clear_dma_whitelist(self, device_id: str, *, from_ems: bool) -> None:
        """Remove a device's legal region (EMS only)."""
        if not from_ems:
            raise IsolationViolation("DMA whitelist is configurable only by EMS")
        self._dma_whitelist.pop(device_id, None)

    def check_dma(self, device_id: str, paddr: int, length: int,
                  access: AccessType) -> None:
        """Validate one DMA transfer; out-of-region accesses are discarded."""
        self.stats.dma_checks += 1
        entries = self._dma_whitelist.get(device_id, [])
        if not any(entry.covers(paddr, length, access) for entry in entries):
            self.stats.dma_blocks += 1
            raise DMAViolation(
                f"DMA by {device_id!r} to [{paddr:#x}, {paddr + length:#x}) "
                f"({access.value}) outside its legal region")

    def dma_whitelist_for(self, device_id: str) -> list[WhitelistEntry]:
        """The device's current whitelist entries."""
        return list(self._dma_whitelist.get(device_id, []))
