"""EMS-private storage devices and DMA peripherals.

EMS side (paper Fig. 4, Section VI "Secure boot"):

* :class:`EFuse` — one-time-programmable root-key storage.
* :class:`PrivateFlash` — holds the encrypted EMS Runtime image.
* :class:`EEPROM` — golden hashes for the boot chain.
* BootROM behaviour lives in :mod:`repro.ems.boot`.

CS side peripherals used by the communication evaluation (Section VII-D):

* :class:`DMAEngine` — a master that moves bytes through the iHub's DMA
  whitelist check.
* :class:`GemminiAccelerator` — a Gemmini-like DNN accelerator: consumes
  weights/activations from shared memory via DMA, with a throughput model
  used by the Fig. 12 bench.
* :class:`NICController` — a NIC moving packet buffers via DMA.
"""

from __future__ import annotations

import dataclasses

from repro.common.constants import HOST_KEYID
from repro.common.types import AccessType
from repro.errors import HardwareFault
from repro.hw.fabric import IHub
from repro.hw.memory import PhysicalMemory


class EFuse:
    """One-time-programmable storage for EK/SK (Section VI)."""

    def __init__(self) -> None:
        self._bits: dict[str, bytes] = {}
        self._locked = False

    def burn(self, name: str, value: bytes) -> None:
        """Program a field once, at manufacturing. Re-burning faults."""
        if self._locked:
            raise HardwareFault("eFuse array is locked")
        if name in self._bits:
            raise HardwareFault(f"eFuse field {name!r} already burnt")
        self._bits[name] = bytes(value)

    def lock(self) -> None:
        """End of manufacturing: no further programming possible."""
        self._locked = True

    def read(self, name: str) -> bytes:
        """Read a programmed field; unprogrammed fields fault."""
        try:
            return self._bits[name]
        except KeyError:
            raise HardwareFault(f"eFuse field {name!r} not programmed") from None


class PrivateFlash:
    """EMS-private flash holding the encrypted runtime image."""

    def __init__(self) -> None:
        self._images: dict[str, bytes] = {}

    def store(self, name: str, blob: bytes) -> None:
        """Store an (encrypted) image blob."""
        self._images[name] = bytes(blob)

    def load(self, name: str) -> bytes:
        """Load a stored image blob."""
        try:
            return self._images[name]
        except KeyError:
            raise HardwareFault(f"no image {name!r} in flash") from None

    def tamper(self, name: str, offset: int, new_byte: int) -> None:
        """Physically corrupt one byte (attack-model helper for boot tests)."""
        blob = bytearray(self.load(name))
        blob[offset] = new_byte
        self._images[name] = bytes(blob)


class EEPROM:
    """On-chip EEPROM holding golden boot-chain hashes."""

    def __init__(self) -> None:
        self._values: dict[str, bytes] = {}

    def write(self, name: str, value: bytes) -> None:
        """Record a golden value."""
        self._values[name] = bytes(value)

    def read(self, name: str) -> bytes:
        """Read a golden value; missing fields fault."""
        try:
            return self._values[name]
        except KeyError:
            raise HardwareFault(f"EEPROM field {name!r} missing") from None


@dataclasses.dataclass
class DMAStats:
    transfers: int = 0
    bytes_moved: int = 0
    blocked: int = 0


class DMAEngine:
    """A DMA master whose every access crosses the iHub whitelist check.

    ``keyid`` is the KeyID the device's accesses carry on the bus; for
    enclave-shared regions the driver enclave arranges (via EMS) that the
    whitelisted region's data is accessible to the device.
    """

    def __init__(self, device_id: str, ihub: IHub, memory: PhysicalMemory) -> None:
        self.device_id = device_id
        self.ihub = ihub
        self.memory = memory
        self.stats = DMAStats()

    def read(self, paddr: int, length: int, keyid: int = HOST_KEYID) -> bytes:
        """DMA read through the iHub whitelist check."""
        self.ihub.check_dma(self.device_id, paddr, length, AccessType.READ)
        self.stats.transfers += 1
        self.stats.bytes_moved += length
        return self.memory.read(paddr, length, keyid)

    def write(self, paddr: int, data: bytes, keyid: int = HOST_KEYID) -> None:
        """DMA write through the iHub whitelist check."""
        self.ihub.check_dma(self.device_id, paddr, len(data), AccessType.WRITE)
        self.stats.transfers += 1
        self.stats.bytes_moved += len(data)
        self.memory.write(paddr, data, keyid)


@dataclasses.dataclass(frozen=True)
class AcceleratorSpec:
    """Gemmini-like systolic-array throughput (paper Table III)."""

    pe_rows: int = 16
    pe_cols: int = 16
    freq_hz: float = 750e6

    @property
    def macs_per_second(self) -> float:
        return self.pe_rows * self.pe_cols * self.freq_hz


class GemminiAccelerator:
    """A DNN accelerator fed through DMA from (shared) memory.

    The Fig. 12 evaluation only needs compute time and data volume:
    ``compute_seconds`` converts a layer's MAC count through the systolic
    array model; data movement happens through :class:`DMAEngine` so the
    whitelist is genuinely on the path.
    """

    def __init__(self, dma: DMAEngine, spec: AcceleratorSpec | None = None,
                 utilization: float = 0.55) -> None:
        self.dma = dma
        self.spec = spec if spec is not None else AcceleratorSpec()
        self.utilization = utilization

    def compute_seconds(self, macs: float) -> float:
        """Wall time to execute ``macs`` multiply-accumulates."""
        return macs / (self.spec.macs_per_second * self.utilization)

    def run_layer(self, input_paddr: int, input_bytes: int,
                  output_paddr: int, output_bytes: int,
                  macs: float, keyid: int = HOST_KEYID) -> float:
        """Fetch inputs, compute, store outputs. Returns compute seconds."""
        self.dma.read(input_paddr, input_bytes, keyid)
        seconds = self.compute_seconds(macs)
        self.dma.write(output_paddr, bytes(output_bytes), keyid)
        return seconds


class NICController:
    """A NIC moving packet buffers by DMA (Fig. 12 scenario 2)."""

    def __init__(self, dma: DMAEngine, line_rate_gbps: float = 10.0) -> None:
        self.dma = dma
        self.line_rate_bytes_per_sec = line_rate_gbps * 1e9 / 8

    def wire_seconds(self, nbytes: int) -> float:
        """Serialization time of ``nbytes`` at line rate."""
        return nbytes / self.line_rate_bytes_per_sec

    def transmit(self, paddr: int, length: int, keyid: int = HOST_KEYID) -> float:
        """DMA a TX buffer out; returns wire time."""
        self.dma.read(paddr, length, keyid)
        return self.wire_seconds(length)

    def receive(self, paddr: int, payload: bytes, keyid: int = HOST_KEYID) -> float:
        """DMA an RX buffer in; returns wire time."""
        self.dma.write(paddr, payload, keyid)
        return self.wire_seconds(len(payload))
