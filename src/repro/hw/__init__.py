"""Hardware models: memory, encryption engine, TLB, PTW, caches, cores,
fabric/iHub, mailbox, and devices.

These are behavioural models with cycle accounting, not RTL. Each module's
docstring names the paper section and figure it implements.
"""

from repro.hw.memory import PhysicalMemory
from repro.hw.encryption_engine import MemoryEncryptionEngine
from repro.hw.bitmap import EnclaveBitmap
from repro.hw.tlb import TLB
from repro.hw.page_table import PageTable, PageTableWalker
from repro.hw.core import CoreConfig, CS_CORE, EMS_WEAK, EMS_MEDIUM, EMS_STRONG
from repro.hw.mailbox import Mailbox
from repro.hw.fabric import IHub

__all__ = [
    "PhysicalMemory",
    "MemoryEncryptionEngine",
    "EnclaveBitmap",
    "TLB",
    "PageTable",
    "PageTableWalker",
    "CoreConfig",
    "CS_CORE",
    "EMS_WEAK",
    "EMS_MEDIUM",
    "EMS_STRONG",
    "Mailbox",
    "IHub",
]
