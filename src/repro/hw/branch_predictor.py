"""Branch predictor with flush-on-context-switch isolation.

Paper Section IX lists predictor-table invalidation on context switches /
privilege changes [98]-[101] among the orthogonal countermeasures
HyperTEE can incorporate against microarchitectural attacks on enclave
*execution*. This module models a BTB + gshare-style PHT shared by all
software on a core, the branch-shadowing observation primitive built on
it [8], and the isolation knob that defeats it.

With ``flush_on_switch`` off, an attacker running after the victim reads
the victim's branch directions out of the shared PHT (BranchScope-style);
with it on, the tables are invalidated at every context switch and the
attacker sees only its own training.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass
class PredictorStats:
    lookups: int = 0
    flushes: int = 0


class BranchPredictor:
    """A gshare-style pattern history table + BTB, per core."""

    def __init__(self, pht_entries: int = 512, btb_entries: int = 128,
                 flush_on_switch: bool = True) -> None:
        self.pht_entries = pht_entries
        self.btb_entries = btb_entries
        self.flush_on_switch = flush_on_switch
        #: 2-bit saturating counters, weakly-not-taken initial state.
        self._pht: dict[int, int] = {}
        self._btb: dict[int, int] = {}
        self.stats = PredictorStats()

    def _pht_index(self, pc: int) -> int:
        return (pc >> 2) % self.pht_entries

    # -- execution-side interface --------------------------------------------------------

    def record_branch(self, pc: int, taken: bool) -> None:
        """Update the predictor with one resolved branch."""
        index = self._pht_index(pc)
        counter = self._pht.get(index, 1)
        counter = min(3, counter + 1) if taken else max(0, counter - 1)
        self._pht[index] = counter
        if taken:
            if len(self._btb) >= self.btb_entries and pc not in self._btb:
                self._btb.pop(next(iter(self._btb)))
            self._btb[pc] = pc + 4  # target irrelevant to the model

    def predict(self, pc: int) -> bool:
        """Predicted direction for a branch at ``pc``."""
        self.stats.lookups += 1
        return self._pht.get(self._pht_index(pc), 1) >= 2

    # -- the isolation mechanism ----------------------------------------------------------------

    def on_context_switch(self) -> None:
        """Called by EMCall/OS on every context or privilege switch."""
        if self.flush_on_switch:
            self._pht.clear()
            self._btb.clear()
            self.stats.flushes += 1

    def btb_occupancy(self) -> int:
        """Live BTB entries (capacity diagnostics)."""
        return len(self._btb)


def branch_shadow_probe(predictor: BranchPredictor,
                        victim_pcs: list[int]) -> list[bool]:
    """Branch-shadowing read-out: probe each victim PC's predicted
    direction from attacker context (aliased PHT entries)."""
    return [predictor.predict(pc) for pc in victim_pcs]


def run_victim_branches(predictor: BranchPredictor, base_pc: int,
                        secret: list[int], repeats: int = 4) -> list[int]:
    """A victim whose branch at ``base_pc + 8i`` goes by secret bit i.

    Returns the PC list an attacker would shadow.
    """
    pcs = [base_pc + 8 * i for i in range(len(secret))]
    for _ in range(repeats):
        for pc, bit in zip(pcs, secret):
            predictor.record_branch(pc, taken=bool(bit))
    return pcs
