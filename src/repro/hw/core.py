"""Core configurations and the cycle-cost model (paper Table III).

The FPGA prototype pairs a large BOOM-class CS core with one of three EMS
core configurations (weak in-order Rocket-class, medium 2-wide OoO,
strong 4-wide OoO). We model each as a :class:`CoreConfig` carrying the
Table III parameters plus a sustained-IPC estimate for management-style
code, from which primitive service times are computed.

Frequencies come from the paper's timing analysis (Section VII-E): CS
cores close at 2.5 GHz, EMS cores at 750 MHz.
"""

from __future__ import annotations

import dataclasses

from repro.common.constants import CS_CORE_FREQ_HZ, EMS_CORE_FREQ_HZ


@dataclasses.dataclass(frozen=True)
class CoreConfig:
    """One core design point (a column of paper Table III)."""

    name: str
    pipeline: str            # "in-order" | "ooo"
    fetch_width: int
    decode_width: int
    rob_entries: int         # 0 for in-order
    l1i_kb: int
    l1d_kb: int
    l2_kb: int
    itlb_entries: int
    dtlb_entries: int
    freq_hz: float
    #: Sustained IPC on pointer-chasing management code; drives primitive
    #: service-time and workload-runtime estimates.
    sustained_ipc: float

    def cycles_for_instructions(self, instructions: int | float) -> int:
        """Cycles to retire ``instructions`` at the sustained IPC."""
        return int(instructions / self.sustained_ipc)

    def seconds_for_instructions(self, instructions: int | float) -> float:
        """Wall time to retire ``instructions`` on this core."""
        return self.cycles_for_instructions(instructions) / self.freq_hz

    def cycles_from_seconds(self, seconds: float) -> int:
        """Convert wall time to this core's cycles."""
        return int(seconds * self.freq_hz)


#: The CS application core (Table III "CS core" column).
CS_CORE = CoreConfig(
    name="cs-boom", pipeline="ooo", fetch_width=8, decode_width=4,
    rob_entries=128, l1i_kb=64, l1d_kb=64, l2_kb=1024,
    itlb_entries=32, dtlb_entries=32,
    freq_hz=CS_CORE_FREQ_HZ, sustained_ipc=2.4,
)

#: EMS "Weak": single-issue in-order Rocket-class core.
EMS_WEAK = CoreConfig(
    name="ems-weak", pipeline="in-order", fetch_width=1, decode_width=1,
    rob_entries=0, l1i_kb=16, l1d_kb=16, l2_kb=256,
    itlb_entries=8, dtlb_entries=8,
    freq_hz=EMS_CORE_FREQ_HZ, sustained_ipc=0.56,
)

#: EMS "Medium": 2-wide out-of-order core.
EMS_MEDIUM = CoreConfig(
    name="ems-medium", pipeline="ooo", fetch_width=4, decode_width=2,
    rob_entries=96, l1i_kb=32, l1d_kb=32, l2_kb=512,
    itlb_entries=16, dtlb_entries=16,
    freq_hz=EMS_CORE_FREQ_HZ, sustained_ipc=1.38,
)

#: EMS "Strong": 4-wide out-of-order core (CS-class pipeline at EMS clock).
EMS_STRONG = CoreConfig(
    name="ems-strong", pipeline="ooo", fetch_width=8, decode_width=4,
    rob_entries=128, l1i_kb=64, l1d_kb=64, l2_kb=512,
    itlb_entries=32, dtlb_entries=32,
    freq_hz=EMS_CORE_FREQ_HZ, sustained_ipc=1.43,
)

EMS_CONFIGS: dict[str, CoreConfig] = {
    "weak": EMS_WEAK,
    "medium": EMS_MEDIUM,
    "strong": EMS_STRONG,
}


def ems_config(name: str) -> CoreConfig:
    """Look up an EMS core config by its paper name (weak/medium/strong)."""
    try:
        return EMS_CONFIGS[name]
    except KeyError:
        raise ValueError(
            f"unknown EMS config {name!r}; expected one of {sorted(EMS_CONFIGS)}"
        ) from None
