"""Set-associative TLB with the bitmap-checked bit (paper Fig. 5).

After the PTW validates a translation against the enclave bitmap, the TLB
entry is installed with ``checked=True`` so subsequent hits skip the
bitmap retrieval. To prevent circumvention via stale entries, EMCall
flushes relevant entries on enclave context switches and bitmap changes
(paper Section IV-B); the flush interfaces here are what EMCall calls.

Timing: the model counts hits, misses, and flushes; the cycle cost of a
miss (PTW walk + optional bitmap retrieve) is accounted by the core model.
"""

from __future__ import annotations

import dataclasses

from repro.common.types import Permission


@dataclasses.dataclass
class TLBEntry:
    vpn: int
    ppn: int
    perm: Permission
    keyid: int
    asid: int
    checked: bool = False  # bitmap check already performed
    lru_tick: int = 0


@dataclasses.dataclass
class TLBStats:
    hits: int = 0
    misses: int = 0
    full_flushes: int = 0
    selective_flushes: int = 0


class TLB:
    """A ``sets`` x ``ways`` TLB keyed by (ASID, VPN)."""

    def __init__(self, entries: int = 32, ways: int = 4) -> None:
        if entries % ways:
            raise ValueError("entries must divide evenly into ways")
        self.sets = entries // ways
        self.ways = ways
        self._sets: list[list[TLBEntry]] = [[] for _ in range(self.sets)]
        self._tick = 0
        self.stats = TLBStats()
        #: Out-of-band observability hook (attached by the system). Only
        #: the flush paths probe; lookups stay probe-free (hot path).
        self.obs = None

    def _set_for(self, vpn: int) -> list[TLBEntry]:
        return self._sets[vpn % self.sets]

    def lookup(self, asid: int, vpn: int) -> TLBEntry | None:
        """Return the matching entry, updating LRU, or None on miss."""
        self._tick += 1
        for entry in self._set_for(vpn):
            if entry.vpn == vpn and entry.asid == asid:
                entry.lru_tick = self._tick
                self.stats.hits += 1
                return entry
        self.stats.misses += 1
        return None

    def insert(self, entry: TLBEntry) -> None:
        """Install an entry, evicting LRU within the set if needed."""
        self._tick += 1
        entry.lru_tick = self._tick
        bucket = self._set_for(entry.vpn)
        for i, existing in enumerate(bucket):
            if existing.vpn == entry.vpn and existing.asid == entry.asid:
                bucket[i] = entry
                return
        if len(bucket) >= self.ways:
            bucket.remove(min(bucket, key=lambda e: e.lru_tick))
        bucket.append(entry)

    # -- flush interfaces used by EMCall -------------------------------------------

    def flush_all(self) -> int:
        """Full flush (enclave context switch). Returns entries dropped."""
        dropped = sum(len(bucket) for bucket in self._sets)
        for bucket in self._sets:
            bucket.clear()
        self.stats.full_flushes += 1
        if self.obs is not None:
            self.obs.record_tlb_flush("full", dropped)
        return dropped

    def flush_asid(self, asid: int) -> int:
        """Drop all entries for one address space."""
        dropped = 0
        for bucket in self._sets:
            keep = [e for e in bucket if e.asid != asid]
            dropped += len(bucket) - len(keep)
            bucket[:] = keep
        self.stats.selective_flushes += 1
        if self.obs is not None:
            self.obs.record_tlb_flush("asid", dropped)
        return dropped

    def flush_frame(self, ppn: int) -> int:
        """Drop entries translating to one physical page (bitmap change)."""
        dropped = 0
        for bucket in self._sets:
            keep = [e for e in bucket if e.ppn != ppn]
            dropped += len(bucket) - len(keep)
            bucket[:] = keep
        self.stats.selective_flushes += 1
        if self.obs is not None:
            self.obs.record_tlb_flush("frame", dropped)
        return dropped

    def entry_count(self) -> int:
        """Valid entries across all sets."""
        return sum(len(bucket) for bucket in self._sets)
