"""Sv39-style page tables and the page-table walker with bitmap checking.

The PTW implements the paper's Fig. 5 pipeline:

1. TLB lookup; on hit with ``checked`` set, translate immediately.
2. On miss, walk the 3-level table *in memory* (PTEs are real bytes in
   the modelled :class:`~repro.hw.memory.PhysicalMemory`, so an untrusted
   OS really can read and clobber PTEs of tables it owns — that is the
   page-table controlled channel).
3. For non-enclave accesses (``IS_ENCLAVE`` register clear), retrieve the
   enclave bitmap bit for the translated frame; if the frame is enclave
   memory, raise :class:`~repro.errors.BitmapViolation`.
4. Install the TLB entry with ``checked=True``.

PTE layout (64-bit)::

    bit  0      V (valid)
    bits 1-3    R / W / X
    bit  6      A (accessed)   <- set by walker; the classic SGX
    bit  7      D (dirty)         controlled-channel observable
    bits 10-37  PPN (28 bits; 40-bit physical addresses, 4 KiB pages)
    bits 48-63  KeyID (high 16 bits of the 56-bit bus, Section IV-C)
"""

from __future__ import annotations

import dataclasses
from typing import Callable

from repro.common.constants import HOST_KEYID, PAGE_SHIFT, PAGE_SIZE
from repro.common.types import AccessType, Permission
from repro.errors import AccessPermissionError, BitmapViolation, PageFault
from repro.eval.calibration import (
    PTW_BITMAP_CHECK_CYCLES,
    PTW_STEP_CYCLES,
    TLB_HIT_CYCLES,
)
from repro.hw.bitmap import BitmapReader
from repro.hw.memory import PhysicalMemory
from repro.hw.tlb import TLB, TLBEntry

PTE_SIZE = 8
LEVELS = 3
INDEX_BITS = 9
ENTRIES_PER_LEVEL = 1 << INDEX_BITS

_V_BIT = 1 << 0
_R_BIT = 1 << 1
_W_BIT = 1 << 2
_X_BIT = 1 << 3
_A_BIT = 1 << 6
_D_BIT = 1 << 7
_PPN_SHIFT = 10
_PPN_MASK = (1 << 28) - 1
_KEYID_SHIFT = 48
_KEYID_MASK = (1 << 16) - 1


def encode_pte(ppn: int, perm: Permission, keyid: int,
               accessed: bool = False, dirty: bool = False) -> int:
    """Pack a PTE word."""
    word = _V_BIT
    if perm & Permission.READ:
        word |= _R_BIT
    if perm & Permission.WRITE:
        word |= _W_BIT
    if perm & Permission.EXECUTE:
        word |= _X_BIT
    if accessed:
        word |= _A_BIT
    if dirty:
        word |= _D_BIT
    word |= (ppn & _PPN_MASK) << _PPN_SHIFT
    word |= (keyid & _KEYID_MASK) << _KEYID_SHIFT
    return word


@dataclasses.dataclass(frozen=True)
class DecodedPTE:
    valid: bool
    ppn: int
    perm: Permission
    keyid: int
    accessed: bool
    dirty: bool

    @classmethod
    def from_word(cls, word: int) -> "DecodedPTE":
        perm = Permission.NONE
        if word & _R_BIT:
            perm |= Permission.READ
        if word & _W_BIT:
            perm |= Permission.WRITE
        if word & _X_BIT:
            perm |= Permission.EXECUTE
        return cls(
            valid=bool(word & _V_BIT),
            ppn=(word >> _PPN_SHIFT) & _PPN_MASK,
            perm=perm,
            keyid=(word >> _KEYID_SHIFT) & _KEYID_MASK,
            accessed=bool(word & _A_BIT),
            dirty=bool(word & _D_BIT),
        )


class PageTable:
    """One 3-level page table rooted at a physical frame.

    ``table_keyid`` is the KeyID the table's own pages are stored under:
    ``HOST_KEYID`` for OS-owned tables (readable/forgeable by the OS —
    the attack surface), or the owning enclave's KeyID for the dedicated
    enclave tables the EMS maintains (Section IV-A), which makes raw reads
    of PTE frames yield ciphertext.
    """

    def __init__(self, memory: PhysicalMemory, root_frame: int,
                 allocate_frame: Callable[[], int],
                 table_keyid: int = HOST_KEYID, asid: int = 0) -> None:
        self.memory = memory
        self.root_frame = root_frame
        self.table_keyid = table_keyid
        self.asid = asid
        self._allocate_frame = allocate_frame
        self._table_frames: list[int] = [root_frame]
        self._zero_table_frame(root_frame)

    def _zero_table_frame(self, frame: int) -> None:
        """Write a frame of invalid PTEs *through* the table's KeyID.

        A raw zeroed frame would decrypt to keystream garbage under an
        enclave KeyID; table frames must hold zeros as seen by the
        walker, so they are initialized through the encryption engine.
        """
        self.memory.write(frame << PAGE_SHIFT, bytes(PAGE_SIZE),
                          self.table_keyid)

    # -- raw PTE access ----------------------------------------------------------

    @staticmethod
    def _indices(vpn: int) -> tuple[int, ...]:
        return tuple((vpn >> (INDEX_BITS * level)) & (ENTRIES_PER_LEVEL - 1)
                     for level in reversed(range(LEVELS)))

    def _pte_addr(self, table_frame: int, index: int) -> int:
        return (table_frame << PAGE_SHIFT) + index * PTE_SIZE

    def read_pte_word(self, table_frame: int, index: int) -> int:
        """Load one PTE word through the table's KeyID."""
        addr = self._pte_addr(table_frame, index)
        return int.from_bytes(self.memory.read(addr, PTE_SIZE, self.table_keyid), "little")

    def write_pte_word(self, table_frame: int, index: int, word: int) -> None:
        """Store one PTE word through the table's KeyID."""
        addr = self._pte_addr(table_frame, index)
        self.memory.write(addr, word.to_bytes(PTE_SIZE, "little"), self.table_keyid)

    # -- mapping management (called by the table's owner: OS or EMS) ----------------

    def map(self, vpn: int, ppn: int, perm: Permission,
            keyid: int = HOST_KEYID) -> None:
        """Create a leaf mapping vpn -> ppn, building intermediate levels."""
        frame = self.root_frame
        indices = self._indices(vpn)
        for index in indices[:-1]:
            word = self.read_pte_word(frame, index)
            pte = DecodedPTE.from_word(word)
            if not pte.valid:
                child = self._allocate_frame()
                self._zero_table_frame(child)
                self._table_frames.append(child)
                # Non-leaf: valid, no RWX, carries the child PPN.
                self.write_pte_word(frame, index,
                                    _V_BIT | ((child & _PPN_MASK) << _PPN_SHIFT))
                frame = child
            else:
                frame = pte.ppn
        self.write_pte_word(frame, indices[-1], encode_pte(ppn, perm, keyid))

    def unmap(self, vpn: int) -> bool:
        """Invalidate the leaf PTE. Returns False if nothing was mapped."""
        leaf = self._find_leaf(vpn)
        if leaf is None:
            return False
        frame, index = leaf
        if not DecodedPTE.from_word(self.read_pte_word(frame, index)).valid:
            return False
        self.write_pte_word(frame, index, 0)
        return True

    def lookup(self, vpn: int) -> DecodedPTE | None:
        """Software walk without side effects (owner's own view)."""
        leaf = self._find_leaf(vpn)
        if leaf is None:
            return None
        frame, index = leaf
        pte = DecodedPTE.from_word(self.read_pte_word(frame, index))
        return pte if pte.valid else None

    def _find_leaf(self, vpn: int) -> tuple[int, int] | None:
        frame = self.root_frame
        indices = self._indices(vpn)
        for index in indices[:-1]:
            pte = DecodedPTE.from_word(self.read_pte_word(frame, index))
            if not pte.valid:
                return None
            frame = pte.ppn
        return frame, indices[-1]

    def set_flags(self, vpn: int, accessed: bool | None = None,
                  dirty: bool | None = None) -> None:
        """Set/clear A/D flags on a leaf PTE (walker and OS both use this)."""
        leaf = self._find_leaf(vpn)
        if leaf is None:
            raise PageFault(vpn << PAGE_SHIFT, "set_flags on unmapped vpn")
        frame, index = leaf
        word = self.read_pte_word(frame, index)
        if accessed is not None:
            word = word | _A_BIT if accessed else word & ~_A_BIT
        if dirty is not None:
            word = word | _D_BIT if dirty else word & ~_D_BIT
        self.write_pte_word(frame, index, word)

    def mapped_vpns(self) -> list[int]:
        """Enumerate all valid leaf VPNs (diagnostic/teardown helper)."""
        found: list[int] = []

        def recurse(frame: int, level: int, prefix: int) -> None:
            for index in range(ENTRIES_PER_LEVEL):
                pte = DecodedPTE.from_word(self.read_pte_word(frame, index))
                if not pte.valid:
                    continue
                vpn_part = (prefix << INDEX_BITS) | index
                if level == LEVELS - 1:
                    found.append(vpn_part)
                else:
                    recurse(pte.ppn, level + 1, vpn_part)

        recurse(self.root_frame, 0, 0)
        return found

    def table_frames(self) -> list[int]:
        """Physical frames holding this table's nodes (for protection)."""
        return list(self._table_frames)


@dataclasses.dataclass
class WalkResult:
    """Outcome of one hardware translation."""

    paddr: int
    ppn: int
    keyid: int
    perm: Permission
    tlb_hit: bool
    bitmap_checked: bool
    cycles: int


@dataclasses.dataclass
class PTWStats:
    walks: int = 0
    bitmap_checks: int = 0
    bitmap_violations: int = 0
    page_faults: int = 0


class PageTableWalker:
    """The hardware PTW of one CS core, with bitmap checking (Fig. 5).

    ``is_enclave_mode`` models the IS_ENCLAVE register: set only at the
    highest privilege level (by EMCall) when the core enters an enclave.
    Enclave accesses skip the bitmap check (their isolation comes from the
    dedicated EMS-managed table); non-enclave accesses must pass it.
    """

    #: Memory-access cycles per PTE load during a walk.
    WALK_STEP_CYCLES = PTW_STEP_CYCLES
    #: Extra cycles for the bitmap retrieval. The check runs in parallel
    #: with the original permission check (paper Section VII-C), so only
    #: the serialized tail is visible.
    BITMAP_CHECK_CYCLES = PTW_BITMAP_CHECK_CYCLES
    TLB_HIT_CYCLES = TLB_HIT_CYCLES

    def __init__(self, memory: PhysicalMemory, tlb: TLB,
                 bitmap_reader: BitmapReader | None) -> None:
        self.memory = memory
        self.tlb = tlb
        self.bitmap_reader = bitmap_reader
        self.is_enclave_mode = False  # IS_ENCLAVE register
        self.stats = PTWStats()
        #: Out-of-band observability hook (attached by the system). Only
        #: the miss/walk path probes; TLB hits stay probe-free.
        self.obs = None

    def translate(self, table: PageTable, vaddr: int,
                  access: AccessType) -> WalkResult:
        """Translate ``vaddr`` through ``table``, enforcing Fig. 5 checks."""
        vpn = vaddr >> PAGE_SHIFT
        offset = vaddr & (PAGE_SIZE - 1)

        entry = self.tlb.lookup(table.asid, vpn)
        if entry is not None and (entry.checked or self.is_enclave_mode):
            if not entry.perm.allows(access):
                raise AccessPermissionError(
                    f"{access.value} not permitted at {vaddr:#x}")
            if access is AccessType.WRITE:
                table.set_flags(vpn, dirty=True)
            return WalkResult(
                paddr=(entry.ppn << PAGE_SHIFT) | offset, ppn=entry.ppn,
                keyid=entry.keyid, perm=entry.perm, tlb_hit=True,
                bitmap_checked=False, cycles=self.TLB_HIT_CYCLES)

        # TLB miss: hardware walk.
        self.stats.walks += 1
        cycles = self.WALK_STEP_CYCLES * LEVELS
        pte = table.lookup(vpn)
        if pte is None:
            self.stats.page_faults += 1
            raise PageFault(vaddr)
        if not pte.perm.allows(access):
            raise AccessPermissionError(f"{access.value} not permitted at {vaddr:#x}")

        bitmap_checked = False
        if not self.is_enclave_mode and self.bitmap_reader is not None:
            self.stats.bitmap_checks += 1
            cycles += self.BITMAP_CHECK_CYCLES
            bitmap_checked = True
            if self.bitmap_reader.is_enclave(pte.ppn):
                self.stats.bitmap_violations += 1
                raise BitmapViolation(
                    f"non-enclave access to enclave frame {pte.ppn}")

        # Walker sets A (and D on stores) — the controlled-channel
        # observable on OS-owned tables.
        table.set_flags(vpn, accessed=True,
                        dirty=True if access is AccessType.WRITE else None)
        self.tlb.insert(TLBEntry(vpn=vpn, ppn=pte.ppn, perm=pte.perm,
                                 keyid=pte.keyid, asid=table.asid, checked=True))
        if self.obs is not None:
            self.obs.record_ptw_walk(cycles, bitmap_checked)
        return WalkResult(
            paddr=(pte.ppn << PAGE_SHIFT) | offset, ppn=pte.ppn,
            keyid=pte.keyid, perm=pte.perm, tlb_hit=False,
            bitmap_checked=bitmap_checked, cycles=cycles)
