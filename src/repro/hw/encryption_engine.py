"""Multi-key memory encryption engine with integrity (paper Section IV-C).

Models a commercial MK-TME/SME-style engine:

* a KeyID -> key slot table, configurable **only by the EMS via iHub**
  (the engine refuses configuration from any other master);
* per-cache-line encryption tweaked by physical address;
* a 28-bit SHA-3-based MAC per line for integrity; violation raises
  :class:`~repro.errors.IntegrityViolation`;
* KeyID slot exhaustion, which the EMS resolves by suspending an enclave
  and reclaiming its slot (exercised in tests).

KeyID 0 (``HOST_KEYID``) is plaintext passthrough for non-enclave memory.

MACs are computed over the *full stored line*, so the engine exposes
``record_macs`` / ``verify_macs`` hooks that :class:`PhysicalMemory` calls
with a raw-line reader after the store has landed.
"""

from __future__ import annotations

from typing import Callable

from repro.common.constants import (
    CACHE_LINE_SIZE,
    DEFAULT_KEY_SLOTS,
    HOST_KEYID,
    MAC_BITS,
)
from repro.crypto.cipher import KeystreamCipher
from repro.crypto.hashes import truncated_mac
from repro.errors import IntegrityViolation, IsolationViolation, KeySlotExhausted

LineReader = Callable[[int, int], bytes]


class MemoryEncryptionEngine:
    """The per-SoC encryption + integrity engine on the memory path."""

    def __init__(self, key_slots: int = DEFAULT_KEY_SLOTS,
                 integrity_enabled: bool = True) -> None:
        self.key_slots = key_slots
        self.integrity_enabled = integrity_enabled
        self._ciphers: dict[int, KeystreamCipher] = {}
        self._mac_keys: dict[int, bytes] = {}
        #: line physical address -> (keyid, mac over stored line content)
        self._macs: dict[int, tuple[int, int]] = {}
        #: Runtime sanitizer manager (None = off); see repro.sanitize.
        self.san = None

    # -- configuration (iHub-gated) ---------------------------------------------

    def program_key(self, keyid: int, key: bytes, *, from_ems: bool) -> None:
        """Install ``key`` in slot ``keyid``.

        Only the EMS, through its iHub configuration path, may program
        keys; any other master raises :class:`IsolationViolation` —
        "configured only by EMS via iHub" (paper Section IV-C).
        """
        if not from_ems:
            raise IsolationViolation("only EMS may program encryption keys")
        if keyid == HOST_KEYID:
            raise ValueError("KeyID 0 is reserved for host plaintext")
        if keyid not in self._ciphers and len(self._ciphers) >= self.key_slots:
            raise KeySlotExhausted(f"all {self.key_slots} KeyID slots in use")
        self._ciphers[keyid] = KeystreamCipher(key)
        self._mac_keys[keyid] = key
        if self.san is not None:
            self.san.on_key_programmed(keyid)

    def release_key(self, keyid: int, *, from_ems: bool) -> None:
        """Free a KeyID slot (enclave destroyed or suspended)."""
        if not from_ems:
            raise IsolationViolation("only EMS may release encryption keys")
        self._ciphers.pop(keyid, None)
        self._mac_keys.pop(keyid, None)
        if self.san is not None:
            self.san.on_key_released(keyid)

    def slots_in_use(self) -> int:
        """Programmed KeyID slots."""
        return len(self._ciphers)

    def has_key(self, keyid: int) -> bool:
        """Is ``keyid`` currently programmed?"""
        return keyid in self._ciphers

    # -- data transform -----------------------------------------------------------

    def encrypt_access(self, paddr: int, data: bytes, keyid: int) -> bytes:
        """Transform a store on its way to DRAM."""
        if keyid == HOST_KEYID:
            return data
        return self._cipher_for(keyid).encrypt(data, tweak=paddr)

    def decrypt_access(self, paddr: int, raw: bytes, keyid: int) -> bytes:
        """Transform a load on its way from DRAM."""
        if keyid == HOST_KEYID:
            return raw
        return self._cipher_for(keyid).decrypt(raw, tweak=paddr)

    # -- integrity ------------------------------------------------------------------

    @staticmethod
    def _lines(paddr: int, length: int):
        line = paddr - (paddr % CACHE_LINE_SIZE)
        end = paddr + length
        while line < end:
            yield line
            line += CACHE_LINE_SIZE

    def record_macs(self, paddr: int, length: int, keyid: int,
                    read_raw: LineReader) -> None:
        """Record MACs over every stored line a write touched.

        Host-KeyID writes drop any stale enclave MAC on the line instead
        (the line now holds host data).
        """
        if keyid == HOST_KEYID:
            for line in self._lines(paddr, length):
                self._macs.pop(line, None)
            return
        if not self.integrity_enabled:
            return
        mac_key = self._mac_keys.get(keyid)
        if mac_key is None:
            return
        for line in self._lines(paddr, length):
            content = read_raw(line, CACHE_LINE_SIZE)
            self._macs[line] = (keyid, truncated_mac(mac_key, content, MAC_BITS))

    def verify_macs(self, paddr: int, length: int, keyid: int,
                    read_raw: LineReader) -> None:
        """Verify MACs before a load's data is released to the core.

        Raises :class:`IntegrityViolation` on mismatch — the paper's
        response to physical tampering (Section IV-C). Lines never written
        under this keyid (freshly zeroed pages) carry no MAC and pass.
        """
        if keyid == HOST_KEYID or not self.integrity_enabled:
            return
        mac_key = self._mac_keys.get(keyid)
        if mac_key is None:
            return
        for line in self._lines(paddr, length):
            recorded = self._macs.get(line)
            if recorded is None:
                continue
            rec_keyid, rec_mac = recorded
            if rec_keyid != keyid:
                # The line belongs to a different key domain: the access
                # simply decrypts to garbage (MK-TME behaviour); the MAC
                # guards the *owning* domain against tampering, not
                # cross-domain reads.
                continue
            content = read_raw(line, CACHE_LINE_SIZE)
            if truncated_mac(mac_key, content, MAC_BITS) != rec_mac:
                raise IntegrityViolation(
                    f"MAC mismatch at line {line:#x} (keyid {keyid})"
                )

    def drop_block_macs(self, paddr: int, length: int) -> None:
        """Forget MACs over a range (page zeroed / reassigned by EMS)."""
        for line in self._lines(paddr, length):
            self._macs.pop(line, None)

    # -- helpers ---------------------------------------------------------------

    def _cipher_for(self, keyid: int) -> KeystreamCipher:
        cipher = self._ciphers.get(keyid)
        if cipher is None:
            # Unknown KeyID: decrypt-to-garbage via a keyid-bound throwaway
            # cipher. Accesses under a wrong/unprogrammed KeyID yield noise
            # rather than faulting, matching MK-TME behaviour.
            cipher = KeystreamCipher(b"unprogrammed-keyid-" + keyid.to_bytes(8, "little"))
        return cipher
