"""IOMMU with EMS-managed translation tables (paper Sections V-B and IX).

The FPGA prototype had no IOMMU, so the paper whitelists contiguous DMA
ranges; for IOMMU-backed peripherals (GPUs above all) it prescribes that
*the EMS manages the IOMMU*: register configuration, IOTLB invalidation,
and maintenance of the address-translation tables that record which
memory a device may reach. This module implements that design:

* per-device IOVA -> physical translation tables, writable only through
  the EMS port (``from_ems=True``), like every other EMS-owned resource;
* a per-device IOTLB whose entries the EMS invalidates on unmap — a
  stale-entry test mirrors the CS-side TLB shootdown discipline;
* translation faults for unmapped IOVAs and permission violations, so a
  compromised device simply cannot address enclave memory that was never
  granted to it.
"""

from __future__ import annotations

import dataclasses

from repro.common.constants import PAGE_SHIFT, PAGE_SIZE
from repro.common.types import AccessType, Permission
from repro.errors import DMAViolation, IsolationViolation


@dataclasses.dataclass(frozen=True)
class IOMMUEntry:
    frame: int
    perm: Permission
    keyid: int


@dataclasses.dataclass
class IOMMUStats:
    translations: int = 0
    iotlb_hits: int = 0
    faults: int = 0
    invalidations: int = 0


class IOMMU:
    """One IOMMU instance shared by the SoC's IOMMU-backed devices."""

    def __init__(self, iotlb_entries: int = 32) -> None:
        #: device id -> {iovn: IOMMUEntry} — the translation tables.
        self._tables: dict[str, dict[int, IOMMUEntry]] = {}
        #: device id -> {iovn: IOMMUEntry} — the IOTLB (cached subset).
        self._iotlb: dict[str, dict[int, IOMMUEntry]] = {}
        self._iotlb_entries = iotlb_entries
        self.stats = IOMMUStats()

    # -- EMS-only management ----------------------------------------------------------

    def map(self, device_id: str, iovn: int, frame: int, perm: Permission,
            keyid: int, *, from_ems: bool) -> None:
        """Install one IOVA-page -> frame mapping for a device."""
        if not from_ems:
            raise IsolationViolation("IOMMU tables are managed only by EMS")
        self._tables.setdefault(device_id, {})[iovn] = IOMMUEntry(
            frame=frame, perm=perm, keyid=keyid)

    def unmap(self, device_id: str, iovn: int, *, from_ems: bool) -> None:
        """Remove a mapping and invalidate the matching IOTLB entry."""
        if not from_ems:
            raise IsolationViolation("IOMMU tables are managed only by EMS")
        self._tables.get(device_id, {}).pop(iovn, None)
        self.invalidate_iotlb(device_id, iovn, from_ems=True)

    def invalidate_iotlb(self, device_id: str, iovn: int | None = None, *,
                         from_ems: bool) -> None:
        """IOTLB shootdown: one entry, or the device's whole cache."""
        if not from_ems:
            raise IsolationViolation("IOTLB invalidation is EMS-only")
        self.stats.invalidations += 1
        if iovn is None:
            self._iotlb.pop(device_id, None)
        else:
            self._iotlb.get(device_id, {}).pop(iovn, None)

    def clear_device(self, device_id: str, *, from_ems: bool) -> None:
        """Drop a device's whole table + IOTLB (EMS only)."""
        if not from_ems:
            raise IsolationViolation("IOMMU tables are managed only by EMS")
        self._tables.pop(device_id, None)
        self._iotlb.pop(device_id, None)

    # -- the translation path (what device DMA traverses) -----------------------------------

    def translate(self, device_id: str, iova: int,
                  access: AccessType) -> tuple[int, int]:
        """Translate a device access; returns (paddr, keyid).

        Raises :class:`DMAViolation` on unmapped IOVAs or insufficient
        permission — the device-side equivalent of a blocked access.
        """
        self.stats.translations += 1
        iovn, offset = iova >> PAGE_SHIFT, iova & (PAGE_SIZE - 1)

        cached = self._iotlb.get(device_id, {}).get(iovn)
        if cached is not None:
            self.stats.iotlb_hits += 1
            entry = cached
        else:
            entry = self._tables.get(device_id, {}).get(iovn)
            if entry is None:
                self.stats.faults += 1
                raise DMAViolation(
                    f"IOMMU fault: {device_id!r} has no mapping for "
                    f"IOVA {iova:#x}")
            iotlb = self._iotlb.setdefault(device_id, {})
            if len(iotlb) >= self._iotlb_entries:
                iotlb.pop(next(iter(iotlb)))
            iotlb[iovn] = entry

        if not entry.perm.allows(access):
            self.stats.faults += 1
            raise DMAViolation(
                f"IOMMU: {access.value} not permitted at IOVA {iova:#x} "
                f"for {device_id!r}")
        return (entry.frame << PAGE_SHIFT) | offset, entry.keyid

    def mapped_iovns(self, device_id: str) -> list[int]:
        """IOVA pages currently mapped for a device."""
        return sorted(self._tables.get(device_id, {}))


class IOMMUDevice:
    """A DMA master (e.g. a GPU) whose accesses go through the IOMMU."""

    def __init__(self, device_id: str, iommu: IOMMU, memory) -> None:
        self.device_id = device_id
        self.iommu = iommu
        self.memory = memory

    def read(self, iova: int, length: int) -> bytes:
        """Device read through IOMMU translation."""
        paddr, keyid = self.iommu.translate(self.device_id, iova,
                                            AccessType.READ)
        return self.memory.read(paddr, length, keyid)

    def write(self, iova: int, data: bytes) -> None:
        """Device write through IOMMU translation."""
        paddr, keyid = self.iommu.translate(self.device_id, iova,
                                            AccessType.WRITE)
        self.memory.write(paddr, data, keyid)
