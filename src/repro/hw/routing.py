"""Enclave-ID shard routing for the multi-EMS fabric (scale-out layer).

With more than one EMS shard on the fabric, the iHub must steer every
EMCall to the mailbox of the shard that owns the target enclave. The
steering function lives here, in hardware, because both sides consult
it — the CS-side gate (:class:`repro.cs.emcall.ShardedEMCall`) to pick a
mailbox, and the EMS-side shard pool (:mod:`repro.ems.shardpool`) to
place new enclaves — and the hw layer is the only one both may import
(teelint TEE001 forbids any cs<->ems edge).

The function is Lamping & Veach's *jump consistent hash*: a pure,
stateless map ``(enclave_id, num_shards) -> shard`` that is

* **total** — defined for every 64-bit enclave ID and shard count >= 1;
* **stable** — no table, no state: the same inputs always give the same
  shard, so routing hardware on every initiator agrees by construction;
* **balanced** — IDs spread uniformly across shards (within the usual
  hash bound);
* **monotone** — growing the fleet from N to N+1 shards moves only the
  keys that land on the new shard (~1/(N+1) of them); nothing shuffles
  *between* existing shards. That is the minimal-movement property the
  rebalancing tests pin.

Transferred enclaves are the one exception to pure-function routing: a
cross-shard ownership transfer (see :mod:`repro.ems.shardpool`) installs
an override entry consulted before the hash. The hash stays the
tie-breaker for every ID that was never migrated.
"""

from __future__ import annotations

from typing import Iterable, Sequence

#: The 64-bit LCG multiplier of the jump-consistent-hash reference
#: implementation (Lamping & Veach, 2014).
_JUMP_LCG_MULTIPLIER = 2862933555777941757
_MASK_64 = (1 << 64) - 1


def shard_for(enclave_id: int, num_shards: int) -> int:
    """The home shard of ``enclave_id`` in a fleet of ``num_shards``.

    Pure and stateless; see the module docstring for the guarantees.
    """
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    key = enclave_id & _MASK_64
    b, j = -1, 0
    while j < num_shards:
        b = j
        key = (key * _JUMP_LCG_MULTIPLIER + 1) & _MASK_64
        j = int((b + 1) * ((1 << 31) / ((key >> 33) + 1)))
    return b


def split_by_shard(shards: Sequence[int]) -> list[tuple[int, list[int]]]:
    """Group batch element indices by their routed shard.

    ``shards[i]`` is the shard element ``i`` routes to. Returns
    ``(shard, indices)`` groups in order of first appearance, each
    ``indices`` list ascending — the envelope-splitting order the
    sharded gate uses, chosen so that :func:`reassemble` restores
    request order exactly.
    """
    groups: dict[int, list[int]] = {}
    order: list[int] = []
    for index, shard in enumerate(shards):
        if shard not in groups:
            groups[shard] = []
            order.append(shard)
        groups[shard].append(index)
    return [(shard, groups[shard]) for shard in order]


def reassemble(total: int, parts: Iterable[tuple[list[int], Sequence]]) -> list:
    """Merge per-shard response lists back into request order.

    ``parts`` pairs each group's original element indices with the
    responses that came back for them (same length, same order). The
    result has one entry per original request position; a missing or
    doubly-covered position is a structural failure (a lost sub-batch
    must never silently become a hole in the caller's response list).
    """
    out: list = [None] * total
    filled = 0
    for indices, responses in parts:
        if len(indices) != len(responses):
            raise ValueError(
                f"sub-batch shape mismatch: {len(indices)} requests vs "
                f"{len(responses)} responses")
        for index, response in zip(indices, responses):
            out[index] = response
        filled += len(indices)
    if filled != total:
        raise ValueError(
            f"sub-batches cover {filled} of {total} request positions")
    return out
