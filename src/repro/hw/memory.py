"""Physical memory model: frames, byte storage, per-access KeyID.

The front-side bus carries 56 bits: low 40 = physical address, high 16 =
KeyID (paper Section IV-C). The memory model therefore takes a KeyID on
every access and routes data through the memory encryption engine, so data
written under one KeyID reads back as garbage under another — the property
the paper relies on to make PTW-based exfiltration useless (Section
VIII-C, "CS PTW").

Storage is sparse (dict of frame -> bytearray): modelled memories can be
"64 MB" without allocating 64 MB of host RAM until touched.
"""

from __future__ import annotations

from repro.common.constants import HOST_KEYID, PAGE_SHIFT, PAGE_SIZE
from repro.errors import PhysicalAddressError


class PhysicalMemory:
    """Byte-addressable physical memory organised in 4 KiB frames."""

    def __init__(self, size_bytes: int) -> None:
        if size_bytes <= 0 or size_bytes % PAGE_SIZE:
            raise ValueError("memory size must be a positive multiple of the page size")
        self.size_bytes = size_bytes
        self.num_frames = size_bytes >> PAGE_SHIFT
        self._frames: dict[int, bytearray] = {}
        #: Optional encryption engine; attached by the SoC at construction.
        self.encryption_engine = None
        #: Runtime sanitizer manager (None = off); see repro.sanitize.
        self.san = None

    # -- frame helpers ---------------------------------------------------------

    def _frame(self, frame_number: int) -> bytearray:
        if not 0 <= frame_number < self.num_frames:
            raise PhysicalAddressError(f"frame {frame_number} out of range")
        if frame_number not in self._frames:
            self._frames[frame_number] = bytearray(PAGE_SIZE)
        return self._frames[frame_number]

    def check_range(self, paddr: int, length: int) -> None:
        """Raise PhysicalAddressError on out-of-range accesses."""
        if paddr < 0 or paddr + length > self.size_bytes:
            raise PhysicalAddressError(
                f"access [{paddr:#x}, {paddr + length:#x}) beyond {self.size_bytes:#x}"
            )

    # -- raw access (what lands on the DRAM bus: ciphertext) -------------------

    def read_raw(self, paddr: int, length: int) -> bytes:
        """Read stored (post-engine, i.e. ciphertext) bytes."""
        self.check_range(paddr, length)
        out = bytearray()
        while length:
            frame_number, offset = paddr >> PAGE_SHIFT, paddr & (PAGE_SIZE - 1)
            take = min(length, PAGE_SIZE - offset)
            out += self._frame(frame_number)[offset:offset + take]
            paddr += take
            length -= take
        return bytes(out)

    def write_raw(self, paddr: int, data: bytes) -> None:
        """Write bytes as-is, bypassing the encryption engine.

        This is the physical-attack surface: a cold-boot attacker reads
        and writes raw DRAM contents through these methods.
        """
        self.check_range(paddr, len(data))
        if self.san is not None:
            self.san.on_raw_write(self, paddr, data)
        view = memoryview(data)
        while view:
            frame_number, offset = paddr >> PAGE_SHIFT, paddr & (PAGE_SIZE - 1)
            take = min(len(view), PAGE_SIZE - offset)
            self._frame(frame_number)[offset:offset + take] = view[:take]
            paddr += take
            view = view[take:]

    # -- bus access (through the encryption engine) ----------------------------

    def read(self, paddr: int, length: int, keyid: int = HOST_KEYID) -> bytes:
        """Read through the memory encryption engine under ``keyid``.

        Integrity MACs are verified before data leaves the engine; a
        mismatch raises :class:`~repro.errors.IntegrityViolation`.
        """
        raw = self.read_raw(paddr, length)
        if self.encryption_engine is None:
            return raw
        self.encryption_engine.verify_macs(paddr, length, keyid, self.read_raw)
        return self.encryption_engine.decrypt_access(paddr, raw, keyid)

    def write(self, paddr: int, data: bytes, keyid: int = HOST_KEYID) -> None:
        """Write through the memory encryption engine under ``keyid``."""
        if self.encryption_engine is None:
            self.write_raw(paddr, data)
            return
        self.write_raw(paddr, self.encryption_engine.encrypt_access(paddr, data, keyid))
        self.encryption_engine.record_macs(paddr, len(data), keyid, self.read_raw)

    # -- page-granularity conveniences ------------------------------------------

    def zero_frame(self, frame_number: int) -> None:
        """Zero one frame (EMS zeroes pages before pool return / mapping)."""
        frame = self._frame(frame_number)
        frame[:] = bytes(PAGE_SIZE)
        if self.san is not None:
            self.san.on_zero_frame(frame_number)
        if self.encryption_engine is not None:
            self.encryption_engine.drop_block_macs(frame_number << PAGE_SHIFT, PAGE_SIZE)

    def read_frame(self, frame_number: int, keyid: int = HOST_KEYID) -> bytes:
        """Read one full frame under ``keyid``."""
        return self.read(frame_number << PAGE_SHIFT, PAGE_SIZE, keyid)

    def write_frame(self, frame_number: int, data: bytes, keyid: int = HOST_KEYID) -> None:
        """Write one full frame under ``keyid``."""
        if len(data) != PAGE_SIZE:
            raise ValueError("frame writes must be exactly one page")
        self.write(frame_number << PAGE_SHIFT, data, keyid)
