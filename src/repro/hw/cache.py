"""Cache models: a functional set-associative simulator and an analytic
memory-hierarchy latency model.

Two consumers:

* The functional :class:`SetAssociativeCache` backs tests of the
  unidirectional-coherence argument (Section III-D): EMS-private data
  bypasses the CS LLC, so a CS-resident prime+probe observer sees no
  eviction signal from EMS activity (exercised in the attack tests).
* :class:`MemoryHierarchyModel` converts a workload profile's miss rates
  into an average memory-access latency, including the encryption +
  integrity adder measured in Fig. 8(b).
"""

from __future__ import annotations

import dataclasses

from repro.common.constants import CACHE_LINE_SIZE
from repro.eval.calibration import (
    CS_DRAM_ACCESS_CYCLES,
    CS_L1_HIT_CYCLES,
    CS_L2_HIT_CYCLES,
)


@dataclasses.dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class SetAssociativeCache:
    """A tag-only set-associative cache (no data payload, LRU replacement)."""

    def __init__(self, size_kb: int, ways: int = 8,
                 line_size: int = CACHE_LINE_SIZE) -> None:
        size_bytes = size_kb * 1024
        self.num_sets = size_bytes // (ways * line_size)
        if self.num_sets == 0:
            raise ValueError("cache too small for its associativity")
        self.ways = ways
        self.line_size = line_size
        self._sets: list[dict[int, int]] = [dict() for _ in range(self.num_sets)]
        self._tick = 0
        self.stats = CacheStats()

    def _locate(self, paddr: int) -> tuple[int, int]:
        line = paddr // self.line_size
        return line % self.num_sets, line // self.num_sets

    def access(self, paddr: int) -> bool:
        """Touch one address; returns True on hit."""
        self._tick += 1
        index, tag = self._locate(paddr)
        bucket = self._sets[index]
        if tag in bucket:
            bucket[tag] = self._tick
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        if len(bucket) >= self.ways:
            victim = min(bucket, key=bucket.get)
            del bucket[victim]
            self.stats.evictions += 1
        bucket[tag] = self._tick
        return False

    def contains(self, paddr: int) -> bool:
        """Probe without updating LRU (prime+probe observer primitive)."""
        index, tag = self._locate(paddr)
        return tag in self._sets[index]

    def flush(self) -> None:
        """Drop every line (context-switch isolation)."""
        for bucket in self._sets:
            bucket.clear()

    def resident_lines(self) -> int:
        """Number of lines currently cached."""
        return sum(len(bucket) for bucket in self._sets)


class PartitionedCache:
    """A way-partitioned shared cache (Intel CAT-style, paper Section IX).

    Each security domain receives an exclusive subset of the ways; a
    line allocated by domain A can never evict a line of domain B, which
    removes the cross-domain eviction signal prime+probe needs. This is
    one of the orthogonal countermeasures the paper notes can be layered
    under HyperTEE for the enclaves' *own* execution.
    """

    def __init__(self, size_kb: int, ways: int = 8,
                 line_size: int = CACHE_LINE_SIZE) -> None:
        size_bytes = size_kb * 1024
        self.num_sets = size_bytes // (ways * line_size)
        if self.num_sets == 0:
            raise ValueError("cache too small for its associativity")
        self.ways = ways
        self.line_size = line_size
        #: domain -> allocated way indices.
        self._allocations: dict[str, tuple[int, ...]] = {}
        self._free_ways = list(range(ways))
        #: (set index, way) -> (domain, tag, tick)
        self._lines: dict[tuple[int, int], tuple[str, int, int]] = {}
        self._tick = 0
        self.stats = CacheStats()

    def allocate_ways(self, domain: str, count: int) -> None:
        """Assign ``count`` exclusive ways to a domain (CAT CLOS setup)."""
        if domain in self._allocations:
            raise ValueError(f"domain {domain!r} already allocated")
        if count > len(self._free_ways):
            raise ValueError("not enough free ways")
        ways = tuple(self._free_ways[:count])
        del self._free_ways[:count]
        self._allocations[domain] = ways

    def _domain_ways(self, domain: str) -> tuple[int, ...]:
        try:
            return self._allocations[domain]
        except KeyError:
            raise ValueError(f"domain {domain!r} has no ways") from None

    def access(self, domain: str, paddr: int) -> bool:
        """Touch one address within the domain's partition; True on hit."""
        self._tick += 1
        line = paddr // self.line_size
        index, tag = line % self.num_sets, line // self.num_sets
        ways = self._domain_ways(domain)
        for way in ways:
            entry = self._lines.get((index, way))
            if entry is not None and entry[0] == domain and entry[1] == tag:
                self._lines[(index, way)] = (domain, tag, self._tick)
                self.stats.hits += 1
                return True
        self.stats.misses += 1
        # Fill into the domain's LRU way only — never another domain's.
        victim = min(ways, key=lambda w: self._lines.get((index, w),
                                                         ("", 0, -1))[2])
        if (index, victim) in self._lines:
            self.stats.evictions += 1
        self._lines[(index, victim)] = (domain, tag, self._tick)
        return False

    def contains(self, domain: str, paddr: int) -> bool:
        """Probe without touching LRU (the observer primitive)."""
        line = paddr // self.line_size
        index, tag = line % self.num_sets, line // self.num_sets
        return any(
            self._lines.get((index, way), ("", None, 0))[:2] == (domain, tag)
            for way in self._domain_ways(domain))


@dataclasses.dataclass(frozen=True)
class MemoryHierarchyModel:
    """Average-latency model of the L1/L2/DRAM path.

    Latencies are in core cycles. ``encryption_adder_cycles`` is the extra
    DRAM-path latency for encrypted + integrity-protected lines; it only
    applies to off-chip accesses, which is why MemStream (miss-heavy)
    shows the worst case (~3.1% avg, Fig. 8b) and cache-friendly programs
    show nearly nothing.
    """

    l1_hit_cycles: float = float(CS_L1_HIT_CYCLES)
    l2_hit_cycles: float = float(CS_L2_HIT_CYCLES)
    dram_cycles: float = float(CS_DRAM_ACCESS_CYCLES)
    encryption_adder_cycles: float = 0.0

    def average_access_cycles(self, l1_miss_rate: float, l2_miss_rate: float) -> float:
        """Expected cycles per memory access given local miss rates."""
        dram = self.dram_cycles + self.encryption_adder_cycles
        return (self.l1_hit_cycles
                + l1_miss_rate * (self.l2_hit_cycles + l2_miss_rate * (dram - 0.0)))

    def with_encryption(self, adder_cycles: float) -> "MemoryHierarchyModel":
        """A copy with the given DRAM-path encryption adder."""
        return dataclasses.replace(self, encryption_adder_cycles=adder_cycles)
