"""The dedicated mailbox between CS and EMS (paper Fig. 3, Section III-C).

Traffic flows::

    EMCall Tx ring  --transmitter-->  mailbox request queue  --irq--> EMS Rx
    EMS workers     --------------->  mailbox response queue <--poll-- EMCall

Security properties enforced structurally:

* The queues are invisible to CS software: only :class:`MailboxPort`
  handles are exported, and the CS-side port can *only* push requests and
  pop the response matching a request id it issued. There is no "peek all
  responses" on the CS side (exclusive request/response binding).
* Only EMCall holds the CS-side port (constructed by the SoC and handed
  to the firmware), which is what blocks direct request forgery from
  untrusted software.
* Response retrieval is by polling, never via CS interrupt handlers
  (whose code is untrusted).
"""

from __future__ import annotations

import collections
import dataclasses

from repro.common.packets import PrimitiveRequest, PrimitiveResponse
from repro.errors import MailboxError


@dataclasses.dataclass
class MailboxStats:
    requests_sent: int = 0
    responses_delivered: int = 0
    poll_attempts: int = 0
    irqs_raised: int = 0
    #: push_response attempts rejected because the response map was at
    #: capacity (the response queue is as finite as the request queue).
    response_rejects: int = 0


class Mailbox:
    """The hardware FIFO pair inside iHub."""

    #: Cycles (CS clock) for one packet to cross the fabric into a queue.
    TRANSFER_CYCLES = 60

    def __init__(self, capacity: int = 256) -> None:
        self.capacity = capacity
        self._requests: collections.deque[PrimitiveRequest] = collections.deque()
        self._responses: dict[int, PrimitiveResponse] = {}
        self._outstanding: set[int] = set()
        self.stats = MailboxStats()
        #: Set by push_request; the EMS runtime's interrupt line.
        self.irq_pending = False
        #: Out-of-band observability hook (attached by the system).
        self.obs = None

    # -- CS side (used exclusively by EMCall) -----------------------------------

    def push_request(self, request: PrimitiveRequest) -> None:
        """Transmitter moves one Tx packet into the request queue."""
        if len(self._requests) >= self.capacity:
            raise MailboxError("request queue full")
        if request.request_id in self._outstanding:
            raise MailboxError(f"duplicate request id {request.request_id}")
        self._requests.append(request)
        self._outstanding.add(request.request_id)
        self.irq_pending = True
        self.stats.requests_sent += 1
        self.stats.irqs_raised += 1
        if self.obs is not None:
            self.obs.record_mailbox_push(len(self._requests))

    def poll_response(self, request_id: int) -> PrimitiveResponse | None:
        """EMCall polls for *its own* response; None while pending.

        A request id that was never issued (or was already collected)
        raises — a foreign requester cannot fish for others' responses.
        """
        self.stats.poll_attempts += 1
        if request_id not in self._outstanding:
            raise MailboxError(f"request id {request_id} unknown or already collected")
        response = self._responses.pop(request_id, None)
        if response is not None:
            self._outstanding.discard(request_id)
            self.stats.responses_delivered += 1
        return response

    # -- EMS side -----------------------------------------------------------------

    def fetch_requests(self, max_count: int | None = None) -> list[PrimitiveRequest]:
        """EMS drains pending requests into its Rx task queue.

        The IRQ line stays asserted while requests remain queued, so a
        partial drain (``max_count`` below the backlog) re-fires instead
        of stranding the tail until the next push.
        """
        out: list[PrimitiveRequest] = []
        while self._requests and (max_count is None or len(out) < max_count):
            out.append(self._requests.popleft())
        self.irq_pending = bool(self._requests)
        if self.obs is not None:
            self.obs.record_mailbox_fetch(len(out), len(self._requests))
        return out

    def push_response(self, response: PrimitiveResponse) -> None:
        """EMS posts a completed primitive's response packet.

        The response map is a hardware FIFO too: it enforces the same
        ``capacity`` as the request queue, so uncollected responses
        cannot grow it without bound.
        """
        if len(self._responses) >= self.capacity:
            self.stats.response_rejects += 1
            if self.obs is not None:
                self.obs.record_mailbox_reject("response_queue_full")
            raise MailboxError("response queue full")
        if response.request_id not in self._outstanding:
            raise MailboxError(
                f"response for unknown request id {response.request_id}")
        if response.request_id in self._responses:
            raise MailboxError(
                f"duplicate response for request id {response.request_id}")
        self._responses[response.request_id] = response
        if self.obs is not None:
            self.obs.record_mailbox_response()

    # -- introspection (tests only) -------------------------------------------------

    def pending_request_count(self) -> int:
        """Requests waiting for the EMS (tests only)."""
        return len(self._requests)

    def pending_response_count(self) -> int:
        """Responses awaiting collection (tests only)."""
        return len(self._responses)
