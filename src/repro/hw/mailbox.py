"""The dedicated mailbox between CS and EMS (paper Fig. 3, Section III-C).

Traffic flows::

    EMCall Tx ring  --transmitter-->  mailbox request queue  --irq--> EMS Rx
    EMS workers     --------------->  mailbox response queue <--poll-- EMCall

Security properties enforced structurally:

* The queues are invisible to CS software: only :class:`MailboxPort`
  handles are exported, and the CS-side port can *only* push requests and
  pop the response matching a request id it issued. There is no "peek all
  responses" on the CS side (exclusive request/response binding).
* Only EMCall holds the CS-side port (constructed by the SoC and handed
  to the firmware), which is what blocks direct request forgery from
  untrusted software.
* Response retrieval is by polling, never via CS interrupt handlers
  (whose code is untrusted).

Degraded-weather behaviour (fault injection; ``docs/fault_injection.md``):
packets travel in envelopes carrying transport metadata. A drop fault
loses the envelope in flight; a corrupt fault breaks its CRC so the
*receiving* edge discards it (request Rx on the EMS side, response Rx on
the CS side) — a corrupted packet can therefore never be delivered, let
alone to the wrong request id. A duplicate fault re-delivers the
envelope; the Rx sequence check drops the copy. All of it is counted in
:class:`MailboxStats` and surfaced through the observability probes.
"""

from __future__ import annotations

import collections
import dataclasses

from repro.common.packets import (
    BatchRequest,
    BatchResponse,
    PrimitiveRequest,
    PrimitiveResponse,
)
from repro.errors import MailboxError
from repro.eval.calibration import MAILBOX_TRANSFER_CYCLES

#: Anything the CS side may transmit: a scalar request or one batch
#: envelope (one doorbell/IRQ for N packed requests).
RequestPacket = PrimitiveRequest | BatchRequest
ResponsePacket = PrimitiveResponse | BatchResponse

#: Sliding window of request ids remembered by the EMS Rx sequence check
#: (for duplicate-delivery suppression). Bounded so chaos soaks cannot
#: grow it without limit.
_SEQUENCE_WINDOW = 8192


@dataclasses.dataclass
class MailboxStats:
    requests_sent: int = 0
    responses_delivered: int = 0
    poll_attempts: int = 0
    irqs_raised: int = 0
    #: push_response attempts rejected because the response map was at
    #: capacity (the response queue is as finite as the request queue).
    response_rejects: int = 0
    #: Injected in-flight losses, per direction.
    requests_dropped: int = 0
    responses_dropped: int = 0
    #: CRC-failed packets discarded at the receiving edge.
    corrupt_discards: int = 0
    #: Re-delivered packets discarded by the Rx sequence check.
    duplicate_discards: int = 0
    #: Pushes refused during an injected queue-full burst.
    injected_queue_full: int = 0
    #: Request slots released by EMCall after a poll deadline expired.
    requests_cancelled: int = 0
    #: Responses that arrived for an already-cancelled request.
    stale_responses: int = 0
    #: Batch envelopes pushed (each is one transaction carrying N
    #: requests; also counted once in ``requests_sent``).
    batches_sent: int = 0
    #: Total primitive requests packed inside those batch envelopes.
    batched_requests: int = 0


@dataclasses.dataclass
class _Envelope:
    """One packet in flight, with its transport metadata."""

    packet: RequestPacket | ResponsePacket
    corrupted: bool = False


class Mailbox:
    """The hardware FIFO pair inside iHub."""

    #: Cycles (CS clock) for one packet to cross the fabric into a queue.
    TRANSFER_CYCLES = MAILBOX_TRANSFER_CYCLES

    def __init__(self, capacity: int = 256) -> None:
        self.capacity = capacity
        self._requests: collections.deque[_Envelope] = collections.deque()
        self._responses: dict[int, _Envelope] = {}
        self._outstanding: set[int] = set()
        #: Request ids EMCall gave up on; late responses for them are
        #: stale and silently discarded (counted).
        self._cancelled: set[int] = set()
        #: The EMS Rx edge's duplicate-suppression window.
        self._seen_ids: set[int] = set()
        self._seen_order: collections.deque[int] = collections.deque()
        #: Remaining pushes refused by an injected queue-full burst.
        self._forced_full = 0
        self.stats = MailboxStats()
        #: Set by push_request; the EMS runtime's interrupt line.
        self.irq_pending = False
        #: Out-of-band observability hook (attached by the system).
        self.obs = None
        #: Fault injector (attached via IHub.attach_faults; None = clear).
        self.faults = None
        #: Runtime sanitizer manager (None = off); see repro.sanitize.
        self.san = None

    # -- fabric transfer timing (latency spikes inject here) --------------------

    def transfer_cycles(self, leg: str) -> int:
        """CS cycles for one packet to cross the fabric on ``leg``.

        The iHub transfer path is where latency spikes land: a
        ``fabric.latency`` fault stretches this one leg by its magnitude.
        """
        del leg  # both legs share the injection point
        extra = 0
        if self.faults is not None:
            extra = self.faults.magnitude("fabric.latency")
        return self.TRANSFER_CYCLES + extra

    # -- CS side (used exclusively by EMCall) -----------------------------------

    def push_request(self, request: RequestPacket) -> None:
        """Transmitter moves one Tx packet into the request queue.

        A :class:`~repro.common.packets.BatchRequest` is one packet here:
        it claims a single slot, raises a single IRQ, and is dropped /
        corrupted / duplicated as a unit by the fault points (the chaos
        suite then exercises the per-element replay semantics).
        """
        if self._forced_full > 0:
            self._forced_full -= 1
            self.stats.injected_queue_full += 1
            if self.obs is not None:
                self.obs.record_mailbox_reject("request_queue_full")
            raise MailboxError("request queue full (injected burst)")
        if self.faults is not None:
            burst = self.faults.magnitude("mailbox.queue_full")
            if burst > 0:
                # This push starts the burst; it and the next burst-1
                # pushes see a full queue.
                self._forced_full = burst - 1
                self.stats.injected_queue_full += 1
                if self.obs is not None:
                    self.obs.record_mailbox_reject("request_queue_full")
                raise MailboxError("request queue full (injected burst)")
        if len(self._requests) >= self.capacity:
            raise MailboxError("request queue full")
        if request.request_id in self._outstanding:
            raise MailboxError(f"duplicate request id {request.request_id}")
        # The CS-side slot is claimed even when the packet is lost in
        # flight: EMCall owns the id and polls it until its deadline.
        self._outstanding.add(request.request_id)
        self._cancelled.discard(request.request_id)
        self.stats.requests_sent += 1
        if isinstance(request, BatchRequest):
            self.stats.batches_sent += 1
            self.stats.batched_requests += len(request)
        if self.san is not None:
            # The packet is on the fabric from here on, delivered or not.
            self.san.on_wire_packet(request, "request")
        if self.faults is not None and \
                self.faults.fires("mailbox.request.drop"):
            self.stats.requests_dropped += 1
            return
        envelope = _Envelope(request)
        if self.faults is not None and \
                self.faults.fires("mailbox.request.corrupt"):
            envelope.corrupted = True
        self._requests.append(envelope)
        if self.faults is not None and \
                self.faults.fires("mailbox.request.duplicate"):
            self._requests.append(dataclasses.replace(envelope))
        self.irq_pending = True
        self.stats.irqs_raised += 1
        if self.obs is not None:
            self.obs.record_mailbox_push(len(self._requests))

    def poll_response(self, request_id: int) -> ResponsePacket | None:
        """EMCall polls for *its own* response; None while pending.

        A request id that was never issued (or was already collected)
        raises — a foreign requester cannot fish for others' responses.
        A CRC-broken response is discarded here, at the CS Rx edge, and
        polling continues as if nothing had arrived.
        """
        self.stats.poll_attempts += 1
        if request_id not in self._outstanding:
            raise MailboxError(f"request id {request_id} unknown or already collected")
        envelope = self._responses.pop(request_id, None)
        if envelope is None:
            return None
        if envelope.corrupted:
            self.stats.corrupt_discards += 1
            if self.obs is not None:
                self.obs.record_mailbox_reject("response_corrupt")
            return None
        self._outstanding.discard(request_id)
        self.stats.responses_delivered += 1
        return envelope.packet

    def cancel_request(self, request_id: int) -> None:
        """EMCall releases a slot after its poll deadline expired.

        Any response that later arrives for the id is stale: it is
        discarded (counted), never delivered — the retried invocation
        carries a fresh request id.
        """
        if request_id not in self._outstanding:
            raise MailboxError(f"cannot cancel unknown request id {request_id}")
        self._outstanding.discard(request_id)
        self._responses.pop(request_id, None)
        self._cancelled.add(request_id)
        self.stats.requests_cancelled += 1
        if self.obs is not None:
            self.obs.record_mailbox_reject("request_cancelled")

    # -- EMS side -----------------------------------------------------------------

    def fetch_requests(self, max_count: int | None = None) -> list[RequestPacket]:
        """EMS drains pending requests into its Rx task queue.

        The IRQ line stays asserted while requests remain queued, so a
        partial drain (``max_count`` below the backlog) re-fires instead
        of stranding the tail until the next push. The Rx edge discards
        CRC-broken packets and duplicate deliveries (sequence check);
        neither counts against ``max_count``.
        """
        out: list[RequestPacket] = []
        while self._requests and (max_count is None or len(out) < max_count):
            envelope = self._requests.popleft()
            if envelope.corrupted:
                self.stats.corrupt_discards += 1
                if self.obs is not None:
                    self.obs.record_mailbox_reject("request_corrupt")
                continue
            request = envelope.packet
            if request.request_id in self._seen_ids:
                self.stats.duplicate_discards += 1
                if self.obs is not None:
                    self.obs.record_mailbox_reject("request_duplicate")
                continue
            self._seen_ids.add(request.request_id)
            self._seen_order.append(request.request_id)
            if len(self._seen_order) > _SEQUENCE_WINDOW:
                self._seen_ids.discard(self._seen_order.popleft())
            out.append(request)
        self.irq_pending = bool(self._requests)
        if self.obs is not None:
            self.obs.record_mailbox_fetch(len(out), len(self._requests))
        return out

    def push_response(self, response: ResponsePacket) -> None:
        """EMS posts a completed primitive's response packet.

        The response map is a hardware FIFO too: it enforces the same
        ``capacity`` as the request queue, so uncollected responses
        cannot grow it without bound. A response for a cancelled request
        is stale — discarded and counted, not an error (the EMS cannot
        know EMCall gave up).
        """
        if self.san is not None:
            # Scanned before any delivery outcome: a stale or rejected
            # response still crossed the fabric with its payload.
            self.san.on_wire_packet(response, "response")
        if response.request_id in self._cancelled:
            self.stats.stale_responses += 1
            if self.obs is not None:
                self.obs.record_mailbox_reject("response_stale")
            return
        if len(self._responses) >= self.capacity:
            self.stats.response_rejects += 1
            if self.obs is not None:
                self.obs.record_mailbox_reject("response_queue_full")
            raise MailboxError("response queue full")
        if response.request_id not in self._outstanding:
            raise MailboxError(
                f"response for unknown request id {response.request_id}")
        if response.request_id in self._responses:
            raise MailboxError(
                f"duplicate response for request id {response.request_id}")
        if self.faults is not None and \
                self.faults.fires("mailbox.response.drop"):
            self.stats.responses_dropped += 1
            return
        envelope = _Envelope(response)
        if self.faults is not None and \
                self.faults.fires("mailbox.response.corrupt"):
            envelope.corrupted = True
        self._responses[response.request_id] = envelope
        if self.faults is not None and \
                self.faults.fires("mailbox.response.duplicate"):
            # The duplicate copy hits the CS Rx sequence check and is
            # discarded — the map can only ever bind one response per id.
            self.stats.duplicate_discards += 1
            if self.obs is not None:
                self.obs.record_mailbox_reject("response_duplicate")
        if self.obs is not None:
            self.obs.record_mailbox_response()

    # -- introspection (tests only) -------------------------------------------------

    def pending_request_count(self) -> int:
        """Requests waiting for the EMS (tests only)."""
        return len(self._requests)

    def pending_response_count(self) -> int:
        """Responses awaiting collection (tests only)."""
        return len(self._responses)
