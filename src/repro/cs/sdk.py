"""The HostApp SDK (paper Fig. 2 programming model).

A :class:`HostApp` is the untrusted application that manages an enclave's
environment: it compiles-and-launches the enclave (ECREATE/EADD/EMEAS
through the facade), and moves data in and out through the declared
transfer buffer — the host-visible shared region of Section IV-A. Remote
users send *encrypted* payloads to the HostApp, which places them in the
buffer; the enclave decrypts inside (with a key from attestation), so the
HostApp never sees plaintext secrets.
"""

from __future__ import annotations

from repro.common.constants import PAGE_SHIFT, PAGE_SIZE
from repro.core.api import Enclave, HyperTEE
from repro.core.enclave import HOST_SHM_BASE_VPN, EnclaveConfig
from repro.common.types import Permission
from repro.cs.os import HostProcess
from repro.errors import ConfigurationError

#: Where the transfer buffer appears in the HostApp's address space.
HOSTAPP_BUFFER_VPN = 0x2000


class HostApp:
    """One untrusted host application and its enclave."""

    def __init__(self, tee: HyperTEE, name: str) -> None:
        self.tee = tee
        self.name = name
        self.process: HostProcess = tee.system.os.create_process(name)
        self.enclave: Enclave | None = None
        self._buffer_pages = 0

    # -- lifecycle ---------------------------------------------------------------------

    def launch(self, code: bytes, config: EnclaveConfig) -> Enclave:
        """Launch the enclave and map the declared transfer buffer."""
        return self._launch(code, config, batched=False)

    def launch_batched(self, code: bytes, config: EnclaveConfig,
                       batch_size: int = 8) -> Enclave:
        """:meth:`launch` over the batched EMCall fast path.

        Large images pay one EADD round trip per page under
        :meth:`launch`; here the pages travel ``batch_size`` to a mailbox
        envelope. The enclave and its measurement come out bit-identical
        — only the communication cycles drop.
        """
        return self._launch(code, config, batched=True,
                            batch_size=batch_size)

    def _launch(self, code: bytes, config: EnclaveConfig, *,
                batched: bool, batch_size: int = 8) -> Enclave:
        if config.host_shared_pages < 1:
            raise ConfigurationError(
                "HostApp.launch needs host_shared_pages >= 1 in the "
                "enclave configuration (the Fig. 2 config file)")
        if batched:
            self.enclave = self.tee.launch_enclave_batched(
                code, config, batch_size=batch_size)
        else:
            self.enclave = self.tee.launch_enclave(code, config)
        control = self.tee.system.enclaves.enclaves[self.enclave.enclave_id]
        for offset, frame in enumerate(control.host_shared_frames):
            self.process.table.map(HOSTAPP_BUFFER_VPN + offset, frame,
                                   Permission.RW)
        self._buffer_pages = config.host_shared_pages
        return self.enclave

    # -- the transfer buffer, host side -----------------------------------------------------

    @property
    def buffer_vaddr(self) -> int:
        return HOSTAPP_BUFFER_VPN << PAGE_SHIFT

    @property
    def buffer_bytes(self) -> int:
        return self._buffer_pages * PAGE_SIZE

    def _host_core(self):
        core = self.tee.system.primary_core
        core.set_host_context(self.process.table)
        return core

    def write_buffer(self, offset: int, data: bytes) -> None:
        """HostApp stores into the transfer buffer (its own mapping)."""
        self._check_range(offset, len(data))
        self._host_core().store(self.buffer_vaddr + offset, data)

    def read_buffer(self, offset: int, length: int) -> bytes:
        """HostApp loads from the transfer buffer (its own mapping)."""
        self._check_range(offset, length)
        return self._host_core().load(self.buffer_vaddr + offset, length)

    def _check_range(self, offset: int, length: int) -> None:
        if offset < 0 or offset + length > self.buffer_bytes:
            raise ValueError("access beyond the declared transfer buffer")

    # -- the transfer buffer, enclave side ---------------------------------------------------------

    @staticmethod
    def enclave_buffer_vaddr(offset: int = 0) -> int:
        """Where the same buffer appears inside the enclave."""
        return (HOST_SHM_BASE_VPN << PAGE_SHIFT) + offset

    def send(self, data: bytes, offset: int = 0) -> int:
        """HostApp -> enclave: place data, return the enclave-side vaddr."""
        self.write_buffer(offset, data)
        return self.enclave_buffer_vaddr(offset)

    def receive(self, length: int, offset: int = 0) -> bytes:
        """Enclave -> HostApp: collect what the enclave left behind."""
        return self.read_buffer(offset, length)
