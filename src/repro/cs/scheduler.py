"""Preemptive CS scheduler: time-slicing hosts and enclaves together.

The CS OS timeshares its cores among ordinary processes and enclaves.
Enclave preemption goes through the architecture's full path: the timer
interrupt lands in EMCall (`handle_interrupt`), which suspends the
enclave via EEXIT — atomically restoring the host context — before the
untrusted scheduler ever runs; resumption is an ERESUME. The scheduler
itself never touches enclave state, which is precisely the paper's
division of labour.

Tasks implement a cooperative ``step`` (one quantum's worth of work);
the scheduler provides the preemption machinery around it.
"""

from __future__ import annotations

import abc
import collections
import dataclasses

from repro.common.types import Privilege
from repro.core.api import Enclave, HyperTEE
from repro.cs.cpu import CSCore
from repro.cs.os import HostProcess
from repro.eval.calibration import SCHED_QUANTUM_CYCLES

#: Default quantum: 10 ms at the CS clock (a 100 Hz timer tick).
DEFAULT_QUANTUM_CYCLES = SCHED_QUANTUM_CYCLES


class Task(abc.ABC):
    """One schedulable entity."""

    name: str

    @abc.abstractmethod
    def step(self, core: CSCore) -> bool:
        """Run one quantum of work; return True when finished."""

    @abc.abstractmethod
    def install(self, core: CSCore, scheduler: "Scheduler") -> None:
        """Put this task's context on the core."""

    @abc.abstractmethod
    def preempt(self, core: CSCore, scheduler: "Scheduler") -> None:
        """Timer fired: save context and vacate the core."""


class HostTask(Task):
    """A host process running a step function under its page table."""

    def __init__(self, name: str, process: HostProcess, program) -> None:
        self.name = name
        self.process = process
        self._program = program

    def install(self, core: CSCore, scheduler: "Scheduler") -> None:
        """Switch the core to this process's address space."""
        core.set_host_context(self.process.table, Privilege.USER)

    def step(self, core: CSCore) -> bool:
        """Run the program for one quantum."""
        return self._program(core)

    def preempt(self, core: CSCore, scheduler: "Scheduler") -> None:
        """Host preemption: nothing enclave-sensitive to protect."""


class EnclaveTask(Task):
    """An enclave; entry/exit goes through EMCall on every slice."""

    def __init__(self, name: str, enclave: Enclave, program) -> None:
        self.name = name
        self.enclave = enclave
        self._program = program
        self._started = False

    def install(self, core: CSCore, scheduler: "Scheduler") -> None:
        """EENTER on the first slice, ERESUME afterwards."""
        if not self._started:
            self.enclave.enter()
            self._started = True
        else:
            self.enclave.resume()

    def step(self, core: CSCore) -> bool:
        """Run the enclave program for one quantum."""
        return self._program(self.enclave)

    def preempt(self, core: CSCore, scheduler: "Scheduler") -> None:
        """Deliver the timer through EMCall: suspend via EEXIT."""
        if core.in_enclave:
            route = scheduler.tee.system.emcall.handle_interrupt(
                core, "timer", cycle=scheduler.now_cycles)
            assert route == "cs"
        self.enclave._entered = False  # facade state follows the suspend


@dataclasses.dataclass
class SchedulerStats:
    slices: int = 0
    timer_interrupts: int = 0
    completed: int = 0


class Scheduler:
    """Round-robin over all CS cores with a fixed quantum."""

    def __init__(self, tee: HyperTEE,
                 quantum_cycles: int = DEFAULT_QUANTUM_CYCLES) -> None:
        self.tee = tee
        self.quantum_cycles = quantum_cycles
        self.now_cycles = 0
        self._ready: collections.deque[Task] = collections.deque()
        self.stats = SchedulerStats()

    def add(self, task: Task) -> None:
        """Enqueue a task for execution."""
        self._ready.append(task)

    def run(self, max_slices: int = 10_000) -> None:
        """Drive everything to completion (or the slice bound)."""
        core = self.tee.system.primary_core
        while self._ready and self.stats.slices < max_slices:
            task = self._ready.popleft()
            task.install(core, self)
            finished = task.step(core)
            self.stats.slices += 1
            self.now_cycles += self.quantum_cycles
            if finished:
                # Let the task exit cleanly (enclaves EEXIT themselves).
                if isinstance(task, EnclaveTask) and core.in_enclave:
                    task.enclave.exit()
                self.stats.completed += 1
                continue
            self.stats.timer_interrupts += 1
            task.preempt(core, self)
            self._ready.append(task)

    @property
    def pending(self) -> int:
        """Tasks still in the ready queue."""
        return len(self._ready)
