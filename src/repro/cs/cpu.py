"""CS core execution context.

A :class:`CSCore` bundles the per-core hardware state the model needs:
the TLB, the page-table walker (with its ``IS_ENCLAVE`` register), the
current privilege level, and the active address-space context. Loads and
stores issued through a core traverse, in order: PTW (with bitmap check)
-> iHub CS-access gate -> memory encryption engine. That is the full
Fig. 5 path, so every test and attack exercises real translation.
"""

from __future__ import annotations

import dataclasses
from typing import Any

from repro.common.types import AccessType, Privilege
from repro.errors import ConfigurationError
from repro.hw.bitmap import BitmapReader
from repro.hw.core import CS_CORE, CoreConfig
from repro.hw.fabric import IHub
from repro.hw.memory import PhysicalMemory
from repro.hw.page_table import PageTable, PageTableWalker, WalkResult
from repro.hw.tlb import TLB


@dataclasses.dataclass
class SavedContext:
    """Host context saved by EMCall across an enclave entry."""

    table: PageTable | None
    privilege: Privilege
    extra: dict[str, Any] = dataclasses.field(default_factory=dict)


class CSCore:
    """One CS application core with its private translation hardware."""

    def __init__(self, core_id: int, memory: PhysicalMemory, ihub: IHub,
                 bitmap_reader: BitmapReader | None,
                 config: CoreConfig = CS_CORE) -> None:
        self.core_id = core_id
        self.config = config
        self.memory = memory
        self.ihub = ihub
        self.tlb = TLB(entries=config.dtlb_entries, ways=4)
        self.ptw = PageTableWalker(memory, self.tlb, bitmap_reader)
        self.privilege = Privilege.SUPERVISOR
        self.active_table: PageTable | None = None
        self.current_enclave_id: int | None = None
        self._saved: SavedContext | None = None
        #: Cycle cost accumulated by loads/stores on this core.
        self.cycles = 0

    # -- context switching (driven only by EMCall / the OS scheduler) ---------------

    def set_host_context(self, table: PageTable,
                         privilege: Privilege = Privilege.USER) -> None:
        """Run a host process: host table, bitmap checking active."""
        self.active_table = table
        self.privilege = privilege
        self.current_enclave_id = None
        self.ptw.is_enclave_mode = False

    def enter_enclave_context(self, enclave_id: int, table: PageTable) -> None:
        """Atomically installed by EMCall during EENTER/ERESUME."""
        self._saved = SavedContext(table=self.active_table, privilege=self.privilege)
        self.active_table = table
        self.privilege = Privilege.USER
        self.current_enclave_id = enclave_id
        self.ptw.is_enclave_mode = True
        self.tlb.flush_all()

    def exit_enclave_context(self) -> None:
        """Restore the host context on EEXIT (EMCall-driven)."""
        if self._saved is None:
            raise ConfigurationError("exit_enclave_context without a saved context")
        self.active_table = self._saved.table
        self.privilege = self._saved.privilege
        self._saved = None
        self.current_enclave_id = None
        self.ptw.is_enclave_mode = False
        self.tlb.flush_all()

    @property
    def in_enclave(self) -> bool:
        return self.current_enclave_id is not None

    # -- memory operations ------------------------------------------------------------

    def _translate(self, vaddr: int, access: AccessType) -> WalkResult:
        if self.active_table is None:
            raise ConfigurationError("core has no active address space")
        result = self.ptw.translate(self.active_table, vaddr, access)
        self.cycles += result.cycles
        return result

    def load(self, vaddr: int, length: int) -> bytes:
        """Load bytes; must not cross a page boundary."""
        result = self._translate(vaddr, AccessType.READ)
        self.ihub.check_cs_access(result.paddr, length)
        return self.memory.read(result.paddr, length, result.keyid)

    def store(self, vaddr: int, data: bytes) -> None:
        """Store bytes; must not cross a page boundary."""
        result = self._translate(vaddr, AccessType.WRITE)
        self.ihub.check_cs_access(result.paddr, len(data))
        self.memory.write(result.paddr, data, result.keyid)

    def touch(self, vaddr: int, access: AccessType = AccessType.READ) -> WalkResult:
        """Translate-only access (workload drivers use this for footprints)."""
        result = self._translate(vaddr, access)
        self.ihub.check_cs_access(result.paddr, 1)
        return result
