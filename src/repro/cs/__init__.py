"""Computing Subsystem software: CPU core contexts, the (untrusted,
possibly adversarial) CS operating system, the trusted EMCall firmware,
and the HostApp-facing SDK."""

from repro.cs.cpu import CSCore
from repro.cs.os import CSOperatingSystem, HostProcess
from repro.cs.emcall import EMCall, InvokeResult

__all__ = ["CSCore", "CSOperatingSystem", "HostProcess", "EMCall",
           "InvokeResult", "HostApp"]


def __getattr__(name: str):
    # HostApp pulls in the API facade, which itself imports this package;
    # exporting it lazily keeps the import graph acyclic.
    if name == "HostApp":
        from repro.cs.sdk import HostApp

        return HostApp
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
