"""EMCall — the trusted call gate between CS software and the EMS.

EMCall is firmware at the highest CS privilege level (M-mode). It is the
*only* component holding the CS-side mailbox port, and it implements the
four protections of paper Section III-B:

1. **Cross-privilege restriction** — each primitive may only be invoked
   from its Table II privilege level; EMCall checks the core's current
   privilege register and rejects anything else.
2. **Forgery prevention** — the ``enclaveID`` stamped into every request
   is read from the core's hardware context, never from caller arguments.
3. **Sanity checking** happens on the EMS side (see
   :mod:`repro.ems.runtime`); EMCall transports arguments opaquely.
4. **Atomic CS register updates** — context installs for EENTER/ERESUME
   and restores for EEXIT are performed by EMCall with interrupts
   modelled as deferred, including the TLB flushes required on enclave
   context switches and bitmap changes (Section IV-B).

Exception routing (Section III-B): page faults raised during enclave
execution are forwarded to the EMS as allocation requests; other traps go
to the CS OS.

Responses are retrieved by *polling* with jitter, never via the untrusted
CS interrupt path (Section III-C).
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Any, Callable

from repro.common.constants import CS_CORE_FREQ_HZ, EMS_CORE_FREQ_HZ
from repro.common.packets import PrimitiveRequest, PrimitiveResponse
from repro.common.rng import DeterministicRng
from repro.common.types import PRIMITIVE_PRIVILEGE, Primitive
from repro.cs.cpu import CSCore
from repro.errors import EMCallError, PrivilegeViolation
from repro.eval.calibration import (
    EMCALL_DISPATCH_CYCLES,
    EMCALL_POLL_JITTER_CYCLES,
)
from repro.hw.mailbox import Mailbox


@dataclasses.dataclass(frozen=True)
class InvokeResult:
    """Response plus the CS-visible latency of the whole invocation."""

    response: PrimitiveResponse
    cs_cycles: int

    @property
    def ok(self) -> bool:
        return self.response.ok

    def result(self, name: str, default: Any = None) -> Any:
        """Field from the response's result dict."""
        return self.response.result.get(name, default)


class EMCall:
    """The M-mode call gate instance of one SoC."""

    def __init__(self, mailbox: Mailbox, rng: DeterministicRng,
                 cores: list[CSCore]) -> None:
        self.mailbox = mailbox
        self._rng = rng
        self._cores = cores
        self._request_ids = itertools.count(1)
        #: Synchronous EMS pump, attached by the SoC after the EMS boots.
        self._ems_pump: Callable[[], None] | None = None
        #: Count of TLB flushes triggered by bitmap updates (Fig. 11 input).
        self.bitmap_flush_count = 0
        #: Optional anomaly-detector callback (enclave_id, cycle).
        self._interrupt_observer = None
        #: Out-of-band observability hook (attached by the system).
        self.obs = None

    def attach_ems(self, pump: Callable[[], None]) -> None:
        """Wire the EMS runtime's pump (done after secure boot)."""
        self._ems_pump = pump

    # -- the invocation path ---------------------------------------------------------------

    def invoke(self, primitive: Primitive, args: dict[str, Any], *,
               core: CSCore) -> InvokeResult:
        """Invoke one enclave primitive on behalf of ``core``'s context."""
        required = PRIMITIVE_PRIVILEGE[primitive]
        if core.privilege is not required:
            raise PrivilegeViolation(
                f"{primitive.value} requires {required.name}, "
                f"core {core.core_id} is at {core.privilege.name}")

        request = PrimitiveRequest(
            request_id=next(self._request_ids),
            primitive=primitive,
            enclave_id=core.current_enclave_id,   # hardware-stamped identity
            privilege=core.privilege,
            args=dict(args),
        )
        self.mailbox.push_request(request)
        if self._ems_pump is None:
            raise EMCallError("EMS not attached; secure boot incomplete?")
        self._ems_pump()

        response = self.mailbox.poll_response(request.request_id)
        polls = 1
        while response is None:
            self._ems_pump()
            response = self.mailbox.poll_response(request.request_id)
            polls += 1
            if polls > 64:
                raise EMCallError(f"no response for request {request.request_id}")

        self._apply_cs_actions(core, response)

        jitter = self._rng.randint(0, EMCALL_POLL_JITTER_CYCLES, stream="emcall-jitter")
        ems_to_cs = CS_CORE_FREQ_HZ / EMS_CORE_FREQ_HZ
        cs_cycles = (EMCALL_DISPATCH_CYCLES
                     + 2 * Mailbox.TRANSFER_CYCLES
                     + int(response.service_cycles * ems_to_cs)
                     + jitter)
        if self.obs is not None:
            self.obs.record_invocation(
                primitive=primitive.value, status=response.status.value,
                request_id=request.request_id, cs_cycles=cs_cycles,
                dispatch_cycles=EMCALL_DISPATCH_CYCLES,
                transfer_cycles=Mailbox.TRANSFER_CYCLES,
                service_cycles=response.service_cycles,
                jitter_cycles=jitter, polls=polls,
                enclave_id=request.enclave_id, core_id=core.core_id)
        return InvokeResult(response=response, cs_cycles=cs_cycles)

    # -- CS-side effects the EMS cannot perform itself ------------------------------------------

    def _apply_cs_actions(self, core: CSCore, response: PrimitiveResponse) -> None:
        """Perform register/TLB updates the response requests, atomically.

        The EMS manages enclave control structures, but CS core registers
        are unreachable from the EMS; EMCall applies those updates with
        interrupts deferred (Section III-B, mechanism 4).
        """
        actions = response.result.get("cs_actions")
        if not actions:
            return
        enter = actions.get("enter_context")
        if enter is not None:
            core.enter_enclave_context(enter["enclave_id"], enter["page_table"])
        if actions.get("exit_context"):
            core.exit_enclave_context()
        frames = actions.get("flush_frames")
        if frames:
            self.flush_tlbs_for_bitmap_change(frames)
        if actions.get("flush_all"):
            for other in self._cores:
                other.tlb.flush_all()

    def flush_tlbs_for_bitmap_change(self, frames: list[int]) -> None:
        """Selective TLB shootdown after enclave bitmap bits changed."""
        self.bitmap_flush_count += 1
        for other in self._cores:
            for frame in frames:
                other.tlb.flush_frame(frame)

    # -- exception routing (Section III-B) ----------------------------------------------------------

    def handle_interrupt(self, core: CSCore, cause: str,
                         cycle: int = 0) -> str:
        """First-level handler for interrupts during enclave execution.

        EMCall records the cause/PC and routes by type (Section III-B):
        memory-management exceptions go to the EMS; timer interrupts and
        illegal instructions go to the CS OS — after EMCall suspends the
        enclave (atomic register save + context restore) so the untrusted
        handler never sees enclave state. Enclave interrupts also feed the
        Varys-style anomaly detector when one is attached.

        Returns the routing decision: ``"ems"`` or ``"cs"``.
        """
        if not core.in_enclave:
            return "cs"  # plain host interrupt: straight to the OS
        if self._interrupt_observer is not None:
            flagged = self._interrupt_observer(core.current_enclave_id, cycle)
            if flagged:
                # The detector suspended the enclave EMS-side; EMCall
                # restores the host context (the CS-register half of the
                # suspension) and hands the core to the OS.
                core.exit_enclave_context()
                return "cs"
        if cause in ("page-fault", "misaligned-access"):
            return "ems"
        # Timer / illegal-instruction / external: suspend the enclave and
        # hand the (enclave-state-free) core to the CS OS.
        self.invoke(Primitive.EEXIT, {}, core=core)
        return "cs"

    def attach_interrupt_observer(self, observer) -> None:
        """Hook for the interrupt anomaly detector (Section IX)."""
        self._interrupt_observer = observer

    def handle_enclave_page_fault(self, core: CSCore, vaddr: int) -> InvokeResult:
        """Route an in-enclave page fault to the EMS as a demand allocation.

        The faulting core is in user mode inside the enclave; EMCall
        records cause/PC and forwards a memory-management request (the
        paper routes page faults and misaligned accesses to EMS, timer
        interrupts and illegal instructions to the CS OS).
        """
        if not core.in_enclave:
            raise EMCallError("enclave page-fault path taken outside an enclave")
        return self.invoke(Primitive.EALLOC, {"fault_vaddr": vaddr}, core=core)
