"""EMCall — the trusted call gate between CS software and the EMS.

EMCall is firmware at the highest CS privilege level (M-mode). It is the
*only* component holding the CS-side mailbox port, and it implements the
four protections of paper Section III-B:

1. **Cross-privilege restriction** — each primitive may only be invoked
   from its Table II privilege level; EMCall checks the core's current
   privilege register and rejects anything else.
2. **Forgery prevention** — the ``enclaveID`` stamped into every request
   is read from the core's hardware context, never from caller arguments.
3. **Sanity checking** happens on the EMS side (see
   :mod:`repro.ems.runtime`); EMCall transports arguments opaquely.
4. **Atomic CS register updates** — context installs for EENTER/ERESUME
   and restores for EEXIT are performed by EMCall with interrupts
   modelled as deferred, including the TLB flushes required on enclave
   context switches and bitmap changes (Section IV-B).

Exception routing (Section III-B): page faults raised during enclave
execution are forwarded to the EMS as allocation requests; other traps go
to the CS OS.

Responses are retrieved by *polling* with jitter, never via the untrusted
CS interrupt path (Section III-C).

Degraded-weather hardening (``docs/fault_injection.md``): the poll loop
carries a **per-primitive deadline**; an expired deadline cancels the
mailbox slot and retries with **exponential backoff plus jitter**, every
wasted cycle accounted into the CS-visible latency. Retried
non-idempotent primitives (ECREATE/EADD) carry an **idempotency key** so
the EMS deduplicates re-applies. When the EMS stays unreachable past the
bounded retries, EMCall raises a typed :class:`~repro.errors.EMCallTimeout`
— or, with ``retry_policy.degrade`` set, returns a structured
:class:`DegradedResult` instead of hanging. The fault-free path is
bit-identical to the unhardened gate (pinned by
``tests/obs/test_noninterference.py``).

Batched fast path (``docs/performance.md``): :meth:`EMCall.invoke_batch`
packs N independent requests into one mailbox envelope — one trap, one
doorbell/IRQ, one fabric crossing per direction — with per-element
status, per-element idempotency keys (a retried envelope replays only
its non-acknowledged elements), and bitmap-change TLB shootdowns
coalesced across the batch. The scalar path is untouched: with batching
unused, every modelled cycle is bit-identical to before (pinned by the
differential and noninterference suites).
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Any, Callable

from repro.common.constants import CS_CORE_FREQ_HZ, EMS_CORE_FREQ_HZ
from repro.common.packets import (
    BatchRequest,
    BatchResponse,
    PrimitiveRequest,
    PrimitiveResponse,
    ResponseStatus,
)
from repro.common.rng import DeterministicRng
from repro.common.types import PRIMITIVE_PRIVILEGE, Primitive
from repro.cs.cpu import CSCore
from repro.errors import EMCallError, EMCallTimeout, MailboxError, PrivilegeViolation
from repro.eval.calibration import (
    EMCALL_BACKOFF_BASE_CYCLES,
    EMCALL_BACKOFF_JITTER_CYCLES,
    EMCALL_BATCH_MAX,
    EMCALL_BATCH_PER_REQ_CYCLES,
    EMCALL_DEADLINE_POLLS,
    EMCALL_DEFAULT_DEADLINE_POLLS,
    EMCALL_DISPATCH_CYCLES,
    EMCALL_POLL_INTERVAL_CYCLES,
    EMCALL_POLL_JITTER_CYCLES,
    MAILBOX_BATCH_PER_REQ_CYCLES,
)
from repro.hw.mailbox import Mailbox
from repro.hw.routing import reassemble, split_by_shard

#: Primitives that switch the core's execution context (and with it the
#: privilege register). Mid-batch context switches would make the
#: remaining elements execute under a different identity than the one
#: EMCall stamped at submission, so these stay scalar-only.
_UNBATCHABLE = frozenset({Primitive.EENTER, Primitive.ERESUME,
                          Primitive.EEXIT})

#: OS-privilege lifecycle primitives that name their target enclave in
#: the argument dict; everything else acts on the core's hardware-stamped
#: identity (or, for EWB, on no enclave at all).
_OS_TARGETED = frozenset({Primitive.EADD, Primitive.EMEAS, Primitive.EENTER,
                          Primitive.ERESUME, Primitive.EDESTROY})

#: Nearly every primitive mutates EMS state in a way a blind re-send
#: could double-apply (ECREATE/EADD most visibly — a re-added page would
#: corrupt the measurement — but also EENTER/EALLOC/ESHMAT state
#: transitions), so EMCall stamps *every* request with an idempotency
#: key: a retry after a lost response replays the cached outcome
#: EMS-side instead of re-executing the handler.


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """How hard EMCall fights degraded transport before giving up."""

    #: Total tries per invocation (first attempt included).
    max_attempts: int = 4
    #: First-retry backoff in CS cycles; doubles each further attempt.
    backoff_base_cycles: int = EMCALL_BACKOFF_BASE_CYCLES
    #: Uniform jitter 0..this added to every backoff wait.
    backoff_jitter_cycles: int = EMCALL_BACKOFF_JITTER_CYCLES
    #: Return a :class:`DegradedResult` instead of raising
    #: :class:`~repro.errors.EMCallTimeout` when retries are exhausted.
    degrade: bool = False


@dataclasses.dataclass(frozen=True)
class InvokeResult:
    """Response plus the CS-visible latency of the whole invocation."""

    response: PrimitiveResponse
    cs_cycles: int
    #: How many sends it took (1 = clean weather).
    attempts: int = 1

    @property
    def ok(self) -> bool:
        return self.response.ok

    @property
    def degraded(self) -> bool:
        return False

    def result(self, name: str, default: Any = None) -> Any:
        """Field from the response's result dict."""
        return self.response.result.get(name, default)


@dataclasses.dataclass(frozen=True)
class DegradedResult:
    """The structured "EMS unreachable" outcome (no hang, no response).

    Returned instead of :class:`InvokeResult` when ``retry_policy.degrade``
    is set and every attempt timed out: the caller gets the full story —
    what was tried, for how long, under which request ids — and can shed
    load or escalate instead of blocking.
    """

    primitive: Primitive
    attempts: int
    cs_cycles: int
    reason: str
    request_ids: tuple[int, ...] = ()

    @property
    def ok(self) -> bool:
        return False

    @property
    def degraded(self) -> bool:
        return True

    @property
    def response(self) -> None:
        return None

    def result(self, name: str, default: Any = None) -> Any:
        """Mirror of :meth:`InvokeResult.result`; always the default."""
        del name
        return default


@dataclasses.dataclass(frozen=True)
class BatchInvokeResult:
    """Per-element responses plus the amortized CS-visible batch latency.

    ``cs_cycles`` is the whole transaction: one dispatch, one fabric
    crossing per direction (plus the marginal per-element streaming
    cost), the summed EMS service time, and one jitter draw.
    :meth:`per_request_cycles` splits it into per-element shares that sum
    exactly to the total, so facade-level accounting stays conserved.
    """

    responses: tuple[PrimitiveResponse, ...]
    cs_cycles: int
    #: How many envelope sends the batch needed (1 = clean weather).
    attempts: int = 1

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.responses)

    @property
    def degraded(self) -> bool:
        return False

    def __len__(self) -> int:
        return len(self.responses)

    def per_request_cycles(self) -> tuple[int, ...]:
        """Amortized per-element CS cycles (shares sum to the total)."""
        n = len(self.responses)
        share, remainder = divmod(self.cs_cycles, n)
        return tuple(share + (1 if i < remainder else 0) for i in range(n))

    def invoke_results(self) -> tuple[InvokeResult, ...]:
        """Per-element :class:`InvokeResult` views with amortized cycles."""
        return tuple(
            InvokeResult(response=response, cs_cycles=cycles,
                         attempts=self.attempts)
            for response, cycles in zip(self.responses,
                                        self.per_request_cycles()))

    def result(self, index: int, name: str, default: Any = None) -> Any:
        """Field from element ``index``'s response result dict."""
        return self.responses[index].result.get(name, default)


class EMCall:
    """The M-mode call gate instance of one SoC."""

    def __init__(self, mailbox: Mailbox, rng: DeterministicRng,
                 cores: list[CSCore]) -> None:
        self.mailbox = mailbox
        self._rng = rng
        self._cores = cores
        self._request_ids = itertools.count(1)
        self._idempotency_ids = itertools.count(1)
        #: Synchronous EMS pump, attached by the SoC after the EMS boots.
        self._ems_pump: Callable[[], None] | None = None
        #: Count of TLB flushes triggered by bitmap updates (Fig. 11 input).
        self.bitmap_flush_count = 0
        #: Optional anomaly-detector callback (enclave_id, cycle).
        self._interrupt_observer = None
        #: Out-of-band observability hook (attached by the system).
        self.obs = None
        #: Fault injector (None = clear weather); see repro.faults.
        self.faults = None
        #: Runtime sanitizer manager (None = off); see repro.sanitize.
        self.san = None
        #: Retry/timeout/degradation knobs; swap for a custom policy.
        self.retry_policy = RetryPolicy()

    def attach_ems(self, pump: Callable[[], None]) -> None:
        """Wire the EMS runtime's pump (done after secure boot)."""
        self._ems_pump = pump

    # -- the invocation path ---------------------------------------------------------------

    def invoke(self, primitive: Primitive, args: dict[str, Any], *,
               core: CSCore) -> InvokeResult | DegradedResult:
        """Invoke one enclave primitive on behalf of ``core``'s context."""
        required = PRIMITIVE_PRIVILEGE[primitive]
        if core.privilege is not required:
            raise PrivilegeViolation(
                f"{primitive.value} requires {required.name}, "
                f"core {core.core_id} is at {core.privilege.name}")
        if self._ems_pump is None:
            raise EMCallError("EMS not attached; secure boot incomplete?")

        policy = self.retry_policy
        deadline_polls = EMCALL_DEADLINE_POLLS.get(
            primitive.value, EMCALL_DEFAULT_DEADLINE_POLLS)
        idempotency_key = f"c{core.core_id}-k{next(self._idempotency_ids)}"

        #: Cycles beyond the clean-path formula: extra polls, backoff
        #: waits, and injected fabric latency — all CS-visible.
        extra_cycles = 0
        request_ids: list[int] = []
        response: PrimitiveResponse | None = None
        request: PrimitiveRequest | None = None
        attempts = 0
        polls = 0

        while attempts < policy.max_attempts:
            attempts += 1
            request = PrimitiveRequest(
                request_id=next(self._request_ids),
                primitive=primitive,
                enclave_id=core.current_enclave_id,   # hardware-stamped identity
                privilege=core.privilege,
                args=dict(args),
                idempotency_key=idempotency_key,
            )
            request_ids.append(request.request_id)
            try:
                self.mailbox.push_request(request)
            except MailboxError:
                # Queue full (real backlog or injected burst): the
                # transmitter backs off and re-sends.
                extra_cycles += self._backoff(primitive, attempts,
                                              core.current_enclave_id)
                continue
            # Both transfer legs cross the iHub; latency spikes land here.
            extra_cycles += \
                self.mailbox.transfer_cycles("request") - Mailbox.TRANSFER_CYCLES

            self._ems_pump()
            response = self.mailbox.poll_response(request.request_id)
            polls = 1
            while response is None and polls < deadline_polls:
                self._ems_pump()
                response = self.mailbox.poll_response(request.request_id)
                polls += 1
            # Only polls beyond the first cost cycles: the clean
            # synchronous path is charged exactly as before hardening.
            extra_cycles += EMCALL_POLL_INTERVAL_CYCLES * (polls - 1)

            if response is None:
                # Deadline expired: release the slot (late responses
                # become stale) and back off before the re-send.
                self.mailbox.cancel_request(request.request_id)
                if self.obs is not None:
                    self.obs.record_emcall_timeout(
                        primitive.value, attempts,
                        enclave_id=core.current_enclave_id)
                extra_cycles += self._backoff(primitive, attempts,
                                              core.current_enclave_id)
                continue
            if response.request_id != request.request_id:
                raise EMCallError(
                    f"mailbox delivered response {response.request_id} "
                    f"for request {request.request_id}")
            if response.status is ResponseStatus.TRANSIENT:
                # The EMS runtime failed before touching state; safe to
                # re-send under the same idempotency key.
                response = None
                extra_cycles += self._backoff(primitive, attempts,
                                              core.current_enclave_id)
                continue
            extra_cycles += \
                self.mailbox.transfer_cycles("response") - Mailbox.TRANSFER_CYCLES
            break

        if response is None:
            waited = extra_cycles + EMCALL_DISPATCH_CYCLES
            if policy.degrade:
                if self.obs is not None:
                    self.obs.record_emcall_degraded(
                        primitive.value, attempts,
                        enclave_id=core.current_enclave_id)
                return DegradedResult(
                    primitive=primitive, attempts=attempts,
                    cs_cycles=waited,
                    reason=f"no response within {deadline_polls} polls x "
                           f"{attempts} attempts",
                    request_ids=tuple(request_ids))
            if self.obs is not None:
                self.obs.trip_flightrec(
                    "emcall-timeout", primitive=primitive.value,
                    attempts=attempts, deadline_polls=deadline_polls,
                    waited_cycles=waited,
                    enclave_id=core.current_enclave_id)
            raise EMCallTimeout(primitive.value, attempts, deadline_polls,
                                waited)

        self._apply_cs_actions(core, response)

        jitter = self._rng.randint(0, EMCALL_POLL_JITTER_CYCLES, stream="emcall-jitter")
        ems_to_cs = CS_CORE_FREQ_HZ / EMS_CORE_FREQ_HZ
        cs_cycles = (EMCALL_DISPATCH_CYCLES
                     + 2 * Mailbox.TRANSFER_CYCLES
                     + int(response.service_cycles * ems_to_cs)
                     + jitter
                     + extra_cycles)
        if self.obs is not None:
            self.obs.record_invocation(
                primitive=primitive.value, status=response.status.value,
                request_id=request.request_id, cs_cycles=cs_cycles,
                dispatch_cycles=EMCALL_DISPATCH_CYCLES,
                transfer_cycles=Mailbox.TRANSFER_CYCLES,
                service_cycles=response.service_cycles,
                jitter_cycles=jitter, polls=polls,
                enclave_id=request.enclave_id, core_id=core.core_id,
                attempts=attempts)
        if self.san is not None:
            self.san.on_invocation(primitive.value, response.status.value,
                                   cs_cycles, response.service_cycles)
        return InvokeResult(response=response, cs_cycles=cs_cycles,
                            attempts=attempts)

    # -- the batched fast path -------------------------------------------------------------

    def invoke_batch(self, calls: list[tuple[Primitive, dict[str, Any]]], *,
                     core: CSCore) -> BatchInvokeResult | DegradedResult:
        """Invoke N independent primitives in one mailbox transaction.

        The batch pays one M-mode trap, one doorbell/IRQ, and one fabric
        crossing per direction; every element beyond the first costs only
        its packing and streaming margin (Table IV's fixed transmission
        cost amortized N ways). Elements are dispatched EMS-side in
        submission order with *per-element* status: a failing element
        reports its own error without poisoning its siblings.

        Retry semantics compose with the PR-2 hardening: every element
        carries its own idempotency key, so a timed-out envelope is
        re-sent whole but the EMS replays (not re-applies) the elements
        it already served, and elements answered ``TRANSIENT`` are
        re-sent alone in a shrunken follow-up envelope — only the
        non-acknowledged suffix ever travels again.

        Context-switching primitives (EENTER/ERESUME/EEXIT) are scalar
        only; a batch containing one raises :class:`EMCallError`.
        """
        if not calls:
            raise EMCallError("invoke_batch needs at least one call")
        if len(calls) > EMCALL_BATCH_MAX:
            raise EMCallError(
                f"batch of {len(calls)} exceeds EMCALL_BATCH_MAX="
                f"{EMCALL_BATCH_MAX}")
        if self._ems_pump is None:
            raise EMCallError("EMS not attached; secure boot incomplete?")
        for primitive, _ in calls:
            if primitive in _UNBATCHABLE:
                raise EMCallError(
                    f"{primitive.value} switches the core context and "
                    "cannot be batched")
            required = PRIMITIVE_PRIVILEGE[primitive]
            if core.privilege is not required:
                raise PrivilegeViolation(
                    f"{primitive.value} requires {required.name}, "
                    f"core {core.core_id} is at {core.privilege.name}")

        policy = self.retry_policy
        n = len(calls)
        #: Stable per-element idempotency keys: a replayed element is the
        #: *same* logical operation however many envelopes carry it.
        keys = [f"c{core.core_id}-k{next(self._idempotency_ids)}"
                for _ in calls]
        deadline_polls = max(
            EMCALL_DEADLINE_POLLS.get(primitive.value,
                                      EMCALL_DEFAULT_DEADLINE_POLLS)
            for primitive, _ in calls)

        final: dict[int, PrimitiveResponse] = {}
        pending = list(range(n))
        extra_cycles = 0
        batch_ids: list[int] = []
        attempts = 0
        polls = 0

        while pending and attempts < policy.max_attempts:
            attempts += 1
            elements = tuple(
                PrimitiveRequest(
                    request_id=next(self._request_ids),
                    primitive=calls[i][0],
                    enclave_id=core.current_enclave_id,  # hardware-stamped
                    privilege=core.privilege,
                    args=dict(calls[i][1]),
                    idempotency_key=keys[i])
                for i in pending)
            batch = BatchRequest(batch_id=next(self._request_ids),
                                 requests=elements)
            batch_ids.append(batch.batch_id)
            try:
                self.mailbox.push_request(batch)
            except MailboxError:
                extra_cycles += self._batch_backoff(attempts,
                                                    core.current_enclave_id)
                continue
            extra_cycles += \
                self.mailbox.transfer_cycles("request") - Mailbox.TRANSFER_CYCLES

            self._ems_pump()
            response = self.mailbox.poll_response(batch.batch_id)
            polls = 1
            while response is None and polls < deadline_polls:
                self._ems_pump()
                response = self.mailbox.poll_response(batch.batch_id)
                polls += 1
            extra_cycles += EMCALL_POLL_INTERVAL_CYCLES * (polls - 1)

            if response is None:
                # Envelope (or its response) lost: release the slot and
                # re-send the whole remaining suffix; idempotency keys
                # make the EMS replay what it already applied.
                self.mailbox.cancel_request(batch.batch_id)
                if self.obs is not None:
                    self.obs.record_emcall_timeout(
                        "BATCH", attempts,
                        enclave_id=core.current_enclave_id)
                extra_cycles += self._batch_backoff(attempts,
                                                    core.current_enclave_id)
                continue
            if not isinstance(response, BatchResponse) or \
                    response.batch_id != batch.batch_id:
                raise EMCallError(
                    f"mailbox delivered {response!r} for batch "
                    f"{batch.batch_id}")
            extra_cycles += \
                self.mailbox.transfer_cycles("response") - Mailbox.TRANSFER_CYCLES

            still_pending: list[int] = []
            for index, element_response in zip(pending, response.responses):
                if element_response.status is ResponseStatus.TRANSIENT:
                    # The handler crashed before touching state; only
                    # this element re-travels (the shrunken suffix).
                    still_pending.append(index)
                else:
                    final[index] = element_response
            pending = still_pending
            if pending:
                extra_cycles += self._batch_backoff(attempts,
                                                    core.current_enclave_id)

        if pending:
            waited = extra_cycles + EMCALL_DISPATCH_CYCLES
            unresolved = calls[pending[0]][0]
            if policy.degrade:
                if self.obs is not None:
                    self.obs.record_emcall_degraded(
                        "BATCH", attempts,
                        enclave_id=core.current_enclave_id)
                return DegradedResult(
                    primitive=unresolved, attempts=attempts,
                    cs_cycles=waited,
                    reason=f"{len(pending)} of {n} batch elements "
                           f"unacknowledged within {deadline_polls} polls x "
                           f"{attempts} attempts",
                    request_ids=tuple(batch_ids))
            if self.obs is not None:
                self.obs.trip_flightrec(
                    "emcall-batch-timeout",
                    primitive=f"BATCH[{unresolved.value}]",
                    attempts=attempts, deadline_polls=deadline_polls,
                    waited_cycles=waited, pending=len(pending),
                    batch_size=n, enclave_id=core.current_enclave_id)
            raise EMCallTimeout(f"BATCH[{unresolved.value}]", attempts,
                                deadline_polls, waited)

        responses = tuple(final[i] for i in range(n))
        self._apply_batch_cs_actions(core, responses)

        jitter = self._rng.randint(0, EMCALL_POLL_JITTER_CYCLES,
                                   stream="emcall-jitter")
        ems_to_cs = CS_CORE_FREQ_HZ / EMS_CORE_FREQ_HZ
        service_cycles = sum(r.service_cycles for r in responses)
        transfer_cycles = (Mailbox.TRANSFER_CYCLES
                           + (n - 1) * MAILBOX_BATCH_PER_REQ_CYCLES)
        dispatch_cycles = (EMCALL_DISPATCH_CYCLES
                           + (n - 1) * EMCALL_BATCH_PER_REQ_CYCLES)
        cs_cycles = (dispatch_cycles
                     + 2 * transfer_cycles
                     + int(service_cycles * ems_to_cs)
                     + jitter
                     + extra_cycles)
        if self.obs is not None:
            self.obs.record_batch_invocation(
                primitives=[p.value for p, _ in calls],
                statuses=[r.status.value for r in responses],
                cs_cycles=cs_cycles, dispatch_cycles=dispatch_cycles,
                transfer_cycles=transfer_cycles,
                service_cycles=[r.service_cycles for r in responses],
                request_ids=[r.request_id for r in responses],
                jitter_cycles=jitter, polls=polls,
                enclave_id=core.current_enclave_id, core_id=core.core_id,
                attempts=attempts)
        result = BatchInvokeResult(responses=responses, cs_cycles=cs_cycles,
                                   attempts=attempts)
        if self.san is not None:
            for (primitive, _), response, cycles in zip(
                    calls, responses, result.per_request_cycles()):
                self.san.on_invocation(primitive.value,
                                       response.status.value,
                                       cycles, response.service_cycles)
        return result

    def _batch_backoff(self, attempt: int,
                       enclave_id: int | None = None) -> int:
        """Backoff before a batch re-send (same policy as the scalar gate)."""
        return self._backoff_named("BATCH", attempt, enclave_id)

    def _apply_batch_cs_actions(self, core: CSCore,
                                responses: tuple[PrimitiveResponse, ...]) -> None:
        """Apply CS-side actions for a whole batch, flushes coalesced.

        Bitmap-change TLB shootdowns across the batch are merged into a
        *single* cross-core flush over the union of frames — one IPI
        storm instead of N (the Fig. 11 cost paid once). Context actions
        cannot appear here (context primitives are unbatchable).
        """
        frames_union: list[int] = []
        seen: set[int] = set()
        flush_all = False
        for response in responses:
            actions = response.result.get("cs_actions")
            if not actions:
                continue
            for frame in actions.get("flush_frames") or ():
                if frame not in seen:
                    seen.add(frame)
                    frames_union.append(frame)
            if actions.get("flush_all"):
                flush_all = True
        if frames_union:
            self.flush_tlbs_for_bitmap_change(frames_union)
        if flush_all:
            for other in self._cores:
                other.tlb.flush_all()

    def _backoff(self, primitive: Primitive, attempt: int,
                 enclave_id: int | None = None) -> int:
        """Cycles of exponential backoff (with jitter) before a re-send."""
        return self._backoff_named(primitive.value, attempt, enclave_id)

    def _backoff_named(self, label: str, attempt: int,
                       enclave_id: int | None = None) -> int:
        """Backoff implementation shared by the scalar and batch gates.

        Drawn from a dedicated RNG stream that is only touched on actual
        retries, so clean-weather runs consume no extra randomness.
        """
        if attempt >= self.retry_policy.max_attempts:
            return 0  # no re-send follows; nothing to wait for
        wait = self.retry_policy.backoff_base_cycles * (2 ** (attempt - 1))
        jitter = self._rng.randint(
            0, self.retry_policy.backoff_jitter_cycles,
            stream="emcall-backoff")
        if self.obs is not None:
            self.obs.record_emcall_retry(label, attempt, wait + jitter,
                                         enclave_id=enclave_id)
        return wait + jitter

    # -- CS-side effects the EMS cannot perform itself ------------------------------------------

    def _apply_cs_actions(self, core: CSCore, response: PrimitiveResponse) -> None:
        """Perform register/TLB updates the response requests, atomically.

        The EMS manages enclave control structures, but CS core registers
        are unreachable from the EMS; EMCall applies those updates with
        interrupts deferred (Section III-B, mechanism 4).
        """
        actions = response.result.get("cs_actions")
        if not actions:
            return
        enter = actions.get("enter_context")
        if enter is not None:
            core.enter_enclave_context(enter["enclave_id"], enter["page_table"])
        if actions.get("exit_context"):
            core.exit_enclave_context()
        frames = actions.get("flush_frames")
        if frames:
            self.flush_tlbs_for_bitmap_change(frames)
        if actions.get("flush_all"):
            for other in self._cores:
                other.tlb.flush_all()

    def flush_tlbs_for_bitmap_change(self, frames: list[int]) -> None:
        """Selective TLB shootdown after enclave bitmap bits changed."""
        self.bitmap_flush_count += 1
        for other in self._cores:
            for frame in frames:
                other.tlb.flush_frame(frame)

    # -- exception routing (Section III-B) ----------------------------------------------------------

    def handle_interrupt(self, core: CSCore, cause: str,
                         cycle: int = 0) -> str:
        """First-level handler for interrupts during enclave execution.

        EMCall records the cause/PC and routes by type (Section III-B):
        memory-management exceptions go to the EMS; timer interrupts and
        illegal instructions go to the CS OS — after EMCall suspends the
        enclave (atomic register save + context restore) so the untrusted
        handler never sees enclave state. Enclave interrupts also feed the
        Varys-style anomaly detector when one is attached.

        Returns the routing decision: ``"ems"`` or ``"cs"``.
        """
        if not core.in_enclave:
            return "cs"  # plain host interrupt: straight to the OS
        if self._interrupt_observer is not None:
            flagged = self._interrupt_observer(core.current_enclave_id, cycle)
            if flagged:
                # The detector suspended the enclave EMS-side; EMCall
                # restores the host context (the CS-register half of the
                # suspension) and hands the core to the OS.
                core.exit_enclave_context()
                return "cs"
        if cause in ("page-fault", "misaligned-access"):
            return "ems"
        # Timer / illegal-instruction / external: suspend the enclave and
        # hand the (enclave-state-free) core to the CS OS.
        self.invoke(Primitive.EEXIT, {}, core=core)
        return "cs"

    def attach_interrupt_observer(self, observer) -> None:
        """Hook for the interrupt anomaly detector (Section IX)."""
        self._interrupt_observer = observer

    def handle_enclave_page_fault(self, core: CSCore, vaddr: int) -> InvokeResult:
        """Route an in-enclave page fault to the EMS as a demand allocation.

        The faulting core is in user mode inside the enclave; EMCall
        records cause/PC and forwards a memory-management request (the
        paper routes page faults and misaligned accesses to EMS, timer
        interrupts and illegal instructions to the CS OS).
        """
        if not core.in_enclave:
            raise EMCallError("enclave page-fault path taken outside an enclave")
        if self.obs is not None:
            self.obs.record_demand_fault(core.current_enclave_id)
        return self.invoke(Primitive.EALLOC, {"fault_vaddr": vaddr}, core=core)


class ShardedEMCall:
    """The M-mode gate of a multi-EMS SoC: one sub-gate per shard.

    Routing is deterministic and happens *before* transport: the gate
    resolves the target enclave to its owning shard (pure hash plus the
    transfer overrides, injected by the system as callbacks so the CS
    layer never touches EMS state) and delegates to that shard's
    ordinary :class:`EMCall` (or :class:`FastEMCall`), which owns that
    shard's mailbox. Validation — privilege, batchability, batch size —
    mirrors the single-gate checks byte-for-byte and runs before any
    routing side effect, so rejected calls mint no IDs on any shard.

    ECREATE is the special case: the new enclave has no ID yet, so the
    gate asks the shard pool's placement callback for one. The pool
    mints a platform-global ID whose hash home is the serving shard and
    the gate stamps it into the request (``preassigned_id``), keeping
    later routing a pure function of the ID. EWB targets no enclave and
    round-robins across shards so every pool sheds frames under memory
    pressure.

    Batch envelopes may span shards: the gate splits the batch into
    per-shard sub-envelopes (first-appearance order, submission order
    within each) and reassembles per-element responses in the original
    request order. Cycle accounting sums the sub-envelope transactions
    — the modelled cost of genuinely crossing several mailboxes.
    """

    def __init__(self, gates: list[EMCall], cores: list[CSCore]) -> None:
        if not gates:
            raise EMCallError("a sharded gate needs at least one sub-gate")
        gates = list(gates)
        self._gates = gates
        #: Shard 0's gate: the platform's primary port for core-local /
        #: fleet-neutral operations. Designated once here, from the
        #: constructor argument — shard 0 always exists and never
        #: leaves the fleet, so this is a role, not a routing decision
        #: (TEE010 bans per-call-site fleet indexing for everything
        #: that *is* one).
        self._primary = gates[0]
        self._cores = cores
        #: Placement/resolution callbacks (injected by the system from
        #: the shard pool — the CS layer holds opaque callables only).
        self._place: Callable[[], tuple[int, int]] | None = None
        self._resolve: Callable[[int], int] | None = None
        self._ewb_next = 0

    def attach_shard_router(self, place: Callable[[], tuple[int, int]],
                            resolve: Callable[[int], int]) -> None:
        """Wire the shard pool's placement and resolution callbacks."""
        self._place = place
        self._resolve = resolve

    # -- fan-out attributes (the system and tests address one gate) ------------

    @property
    def gates(self) -> tuple["EMCall", ...]:
        """The per-shard sub-gates, shard order (read-only view)."""
        return tuple(self._gates)

    @property
    def retry_policy(self) -> RetryPolicy:
        return self._primary.retry_policy

    @retry_policy.setter
    def retry_policy(self, policy: RetryPolicy) -> None:
        for gate in self._gates:
            gate.retry_policy = policy

    @property
    def obs(self):
        return self._primary.obs

    @obs.setter
    def obs(self, obs) -> None:
        for gate in self._gates:
            gate.obs = obs

    @property
    def faults(self):
        return self._primary.faults

    @faults.setter
    def faults(self, injector) -> None:
        for gate in self._gates:
            gate.faults = injector

    @property
    def san(self):
        return self._primary.san

    @san.setter
    def san(self, manager) -> None:
        for gate in self._gates:
            gate.san = manager

    @property
    def bitmap_flush_count(self) -> int:
        return sum(gate.bitmap_flush_count for gate in self._gates)

    @property
    def mailbox(self) -> Mailbox:
        """Shard 0's mailbox (the primary port on the fabric)."""
        return self._primary.mailbox

    # -- routing ----------------------------------------------------------------

    def _route(self, primitive: Primitive, args: dict[str, Any],
               core: CSCore) -> int:
        """The shard index serving this (already validated) call."""
        if primitive is Primitive.EWB:
            shard = self._ewb_next
            self._ewb_next = (self._ewb_next + 1) % len(self._gates)
            return shard
        if primitive in _OS_TARGETED:
            target = args.get("enclave_id")
        else:
            target = core.current_enclave_id
        if not isinstance(target, int):
            # Malformed or absent target: shard 0's runtime issues the
            # same sanity reject a single EMS would.
            return 0
        return self._resolve(target)

    def _check_privilege(self, primitive: Primitive, core: CSCore) -> None:
        required = PRIMITIVE_PRIVILEGE[primitive]
        if core.privilege is not required:
            raise PrivilegeViolation(
                f"{primitive.value} requires {required.name}, "
                f"core {core.core_id} is at {core.privilege.name}")

    # -- the invocation path ------------------------------------------------------

    def invoke(self, primitive: Primitive, args: dict[str, Any], *,
               core: CSCore) -> InvokeResult | DegradedResult:
        """Route one primitive to its owning shard's gate."""
        self._check_privilege(primitive, core)
        if primitive is Primitive.ECREATE and self._place is not None:
            enclave_id, shard = self._place()
            args = dict(args)
            args["preassigned_id"] = enclave_id
            return self._gates[shard].invoke(primitive, args, core=core)
        shard = self._route(primitive, args, core)
        return self._gates[shard].invoke(primitive, args, core=core)

    def invoke_batch(self, calls: list[tuple[Primitive, dict[str, Any]]], *,
                     core: CSCore) -> BatchInvokeResult | DegradedResult:
        """Split a batch across the owning shards; reassemble in order."""
        if not calls:
            raise EMCallError("invoke_batch needs at least one call")
        if len(calls) > EMCALL_BATCH_MAX:
            raise EMCallError(
                f"batch of {len(calls)} exceeds EMCALL_BATCH_MAX="
                f"{EMCALL_BATCH_MAX}")
        for primitive, _ in calls:
            if primitive in _UNBATCHABLE:
                raise EMCallError(
                    f"{primitive.value} switches the core context and "
                    "cannot be batched")
            self._check_privilege(primitive, core)

        routed: list[tuple[Primitive, dict[str, Any]]] = []
        shards: list[int] = []
        for primitive, args in calls:
            if primitive is Primitive.ECREATE and self._place is not None:
                enclave_id, shard = self._place()
                args = dict(args)
                args["preassigned_id"] = enclave_id
            else:
                shard = self._route(primitive, args, core)
            routed.append((primitive, args))
            shards.append(shard)

        total_cycles = 0
        max_attempts = 0
        parts: list[tuple[list[int], tuple[PrimitiveResponse, ...]]] = []
        for shard, indices in split_by_shard(shards):
            sub_calls = [routed[i] for i in indices]
            sub = self._gates[shard].invoke_batch(sub_calls, core=core)
            if sub.degraded:
                # Propagate the outage with the cross-shard context and
                # every cycle this transaction burned anywhere.
                return DegradedResult(
                    primitive=sub.primitive,
                    attempts=max(max_attempts, sub.attempts),
                    cs_cycles=total_cycles + sub.cs_cycles,
                    reason=f"shard {shard}: {sub.reason}",
                    request_ids=sub.request_ids)
            total_cycles += sub.cs_cycles
            max_attempts = max(max_attempts, sub.attempts)
            parts.append((indices, sub.responses))

        responses = tuple(reassemble(len(calls), parts))
        return BatchInvokeResult(responses=responses, cs_cycles=total_cycles,
                                 attempts=max_attempts)

    # -- CS-side effects / exception routing --------------------------------------

    def flush_tlbs_for_bitmap_change(self, frames: list[int]) -> None:
        """Selective TLB shootdown (core-local state; any gate serves)."""
        self._primary.flush_tlbs_for_bitmap_change(frames)

    def _gate_for_core(self, core: CSCore) -> EMCall:
        """The gate owning the enclave the core is currently inside."""
        enclave_id = core.current_enclave_id
        if isinstance(enclave_id, int):
            return self._gates[self._resolve(enclave_id)]
        return self._primary

    def handle_interrupt(self, core: CSCore, cause: str,
                         cycle: int = 0) -> str:
        """Route an interrupt through the owning shard's gate."""
        return self._gate_for_core(core).handle_interrupt(core, cause, cycle)

    def attach_interrupt_observer(self, observer) -> None:
        """Hook the anomaly detector into every shard's gate."""
        for gate in self._gates:
            gate.attach_interrupt_observer(observer)

    def handle_enclave_page_fault(self, core: CSCore,
                                  vaddr: int) -> InvokeResult:
        """Route an in-enclave demand fault to the owning shard."""
        return self._gate_for_core(core).handle_enclave_page_fault(core, vaddr)
