"""The CS operating system — untrusted, and in attack scenarios, hostile.

The OS owns the CS free-frame list, host processes and their page tables,
and the host ``malloc`` path whose latency is the Fig. 8a baseline. It is
deliberately given full introspection over everything it manages:

* :attr:`CSOperatingSystem.allocation_log` records every frame-allocation
  event with requestor and size — the *allocation-based controlled
  channel*. Under HyperTEE the only entries relating to enclaves are the
  EMS pool's bulk, demand-decoupled requests.
* Host page tables are ordinary :class:`~repro.hw.page_table.PageTable`
  objects under ``HOST_KEYID`` — the OS can read PTEs, clear A/D bits,
  and observe walker updates (the *page-table channel*). Enclave tables
  are EMS-owned and never registered here.
* :meth:`request_enclave_swap` invokes EWB and records what the OS learns
  (the *swap channel*).

The attack harness drives these capabilities against both HyperTEE and
the baseline TEE models.
"""

from __future__ import annotations

import collections
import dataclasses
import itertools

from repro.common.constants import HOST_KEYID, PAGE_SHIFT, PAGE_SIZE
from repro.common.types import Permission
from repro.errors import ConfigurationError, HyperTEEError
from repro.eval.calibration import (
    HOST_MALLOC_BASE_CYCLES,
    HOST_MALLOC_PER_PAGE_CYCLES,
)
from repro.hw.memory import PhysicalMemory
from repro.hw.page_table import PageTable


@dataclasses.dataclass(frozen=True)
class AllocationEvent:
    """One entry in the OS's allocation log (the observation channel)."""

    seq: int
    requestor: str
    pages: int
    frames: tuple[int, ...]


@dataclasses.dataclass(frozen=True)
class SwapEvent:
    """What the OS learns from one EWB round."""

    seq: int
    enclave_hint: str
    frames: tuple[int, ...]


class HostProcess:
    """A non-enclave process: page table plus a bump heap."""

    #: Heap starts at 16 MiB virtual.
    HEAP_BASE_VPN = 0x1000

    def __init__(self, pid: int, name: str, table: PageTable) -> None:
        self.pid = pid
        self.name = name
        self.table = table
        self.heap_next_vpn = self.HEAP_BASE_VPN
        #: vaddr -> list of frames, for free().
        self.heap_regions: dict[int, list[int]] = {}


class CSOperatingSystem:
    """Frame allocator + process manager + (attack-capable) observer."""

    def __init__(self, memory: PhysicalMemory, first_free_frame: int,
                 frame_limit: int | None = None) -> None:
        self.memory = memory
        limit = frame_limit if frame_limit is not None else memory.num_frames
        if first_free_frame >= limit:
            raise ConfigurationError("no free frames left for the OS")
        self._free: collections.deque[int] = collections.deque(
            range(first_free_frame, limit))
        self._pid_counter = itertools.count(1)
        self._seq = itertools.count()
        self.processes: dict[int, HostProcess] = {}
        self.allocation_log: list[AllocationEvent] = []
        self.swap_log: list[SwapEvent] = []
        #: Observability facade (attached by enable_observability).
        self.obs = None

    # -- frame management -------------------------------------------------------------

    def free_frame_count(self) -> int:
        """Frames currently on the OS free list."""
        return len(self._free)

    def alloc_frames(self, n: int, requestor: str = "os") -> list[int]:
        """Hand out ``n`` frames, logging the event (observable!)."""
        if n <= 0:
            raise ValueError("must allocate a positive number of frames")
        if len(self._free) < n:
            raise HyperTEEError("CS OS out of physical frames")
        frames = [self._free.popleft() for _ in range(n)]
        self.allocation_log.append(AllocationEvent(
            seq=next(self._seq), requestor=requestor,
            pages=n, frames=tuple(frames)))
        if self.obs is not None:
            self.obs.record_os_alloc(requestor, n)
        return frames

    def release_frames(self, frames: list[int]) -> None:
        """Return frames to the free list."""
        self._free.extend(frames)

    # -- processes ---------------------------------------------------------------------

    def create_process(self, name: str) -> HostProcess:
        """Spawn a host process with a fresh OS-owned page table."""
        pid = next(self._pid_counter)
        root = self.alloc_frames(1, requestor=f"pid{pid}-pagetable")[0]
        table = PageTable(
            self.memory, root,
            allocate_frame=lambda: self.alloc_frames(
                1, requestor=f"pid{pid}-pagetable")[0],
            table_keyid=HOST_KEYID, asid=pid)
        process = HostProcess(pid, name, table)
        self.processes[pid] = process
        return process

    # -- host allocation path (Fig. 8a baseline) -----------------------------------------

    def malloc(self, process: HostProcess, nbytes: int,
               perm: Permission = Permission.RW) -> tuple[int, int]:
        """Allocate and map ``nbytes`` for a host process.

        Returns ``(vaddr, cs_cycles)``. The cycle model is the calibrated
        host path: a fixed syscall/allocator cost plus per-page zeroing
        and PTE setup.
        """
        pages = max(1, (nbytes + PAGE_SIZE - 1) >> PAGE_SHIFT)
        frames = self.alloc_frames(pages, requestor=f"pid{process.pid}-malloc")
        vpn = process.heap_next_vpn
        for offset, frame in enumerate(frames):
            self.memory.zero_frame(frame)
            process.table.map(vpn + offset, frame, perm, HOST_KEYID)
        process.heap_next_vpn += pages
        vaddr = vpn << PAGE_SHIFT
        process.heap_regions[vaddr] = frames
        cycles = HOST_MALLOC_BASE_CYCLES + pages * HOST_MALLOC_PER_PAGE_CYCLES
        return vaddr, cycles

    def malloc_batch(self, process: HostProcess, sizes: list[int],
                     perm: Permission = Permission.RW
                     ) -> tuple[list[int], int]:
        """Allocate N regions with one syscall-shaped transaction.

        The host-side analogue of the EMS pool's bulk requests (and of
        the batched EMCall path): one allocator entry covers every
        region, so the allocation log gains a *single* bulk event and
        the fixed ``HOST_MALLOC_BASE_CYCLES`` cost is paid once instead
        of N times. Returns ``([vaddr, ...], total_cs_cycles)``.
        """
        if not sizes:
            raise ValueError("malloc_batch needs at least one size")
        page_counts = [max(1, (nbytes + PAGE_SIZE - 1) >> PAGE_SHIFT)
                       for nbytes in sizes]
        frames = self.alloc_frames(sum(page_counts),
                                   requestor=f"pid{process.pid}-malloc-batch")
        vaddrs: list[int] = []
        cursor = 0
        for pages in page_counts:
            vpn = process.heap_next_vpn
            region = frames[cursor:cursor + pages]
            cursor += pages
            for offset, frame in enumerate(region):
                self.memory.zero_frame(frame)
                process.table.map(vpn + offset, frame, perm, HOST_KEYID)
            process.heap_next_vpn += pages
            vaddr = vpn << PAGE_SHIFT
            process.heap_regions[vaddr] = region
            vaddrs.append(vaddr)
        cycles = (HOST_MALLOC_BASE_CYCLES
                  + sum(page_counts) * HOST_MALLOC_PER_PAGE_CYCLES)
        return vaddrs, cycles

    def free(self, process: HostProcess, vaddr: int) -> int:
        """Unmap and release a malloc'd region; returns cycle cost."""
        frames = process.heap_regions.pop(vaddr, None)
        if frames is None:
            raise ValueError(f"{vaddr:#x} is not an allocated region")
        vpn = vaddr >> PAGE_SHIFT
        for offset in range(len(frames)):
            process.table.unmap(vpn + offset)
        self.release_frames(frames)
        return HOST_MALLOC_BASE_CYCLES // 2 + len(frames) * 80

    # -- enclave page swapping (OS side of EWB, Section IV-A) ------------------------------

    def record_swap_result(self, enclave_hint: str, frames: list[int]) -> None:
        """Log what an EWB round revealed, then reclaim the frames."""
        self.swap_log.append(SwapEvent(
            seq=next(self._seq), enclave_hint=enclave_hint,
            frames=tuple(frames)))
        self.release_frames(frames)
