"""Evaluation support: calibration constants, scenario names, the SLO
queueing simulation, the area model, and table/series rendering."""
