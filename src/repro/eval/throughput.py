"""Engine throughput benchmarking and the fast-kernel gate (BENCH_pr7).

``BENCH_pr6.json`` gates *modelled* latency — cycles the simulation
charges. What nothing gated until now is how fast the simulator itself
runs: the whole point of :mod:`repro.core.fastkernel` is wall-clock
throughput, and an optimization that quietly decays (or quietly
diverges from the reference) should fail CI, not a code reviewer's
intuition. This module closes that gap with a two-part artifact:

* a **deterministic** section per scenario — simulated requests served,
  total modelled CS cycles, and a SHA-256 digest of all of physical
  memory — recorded once because both engines are required to produce
  *identical* values (the build refuses to write the artifact
  otherwise). :func:`check_report` re-runs both engines and compares
  these fields exactly: any drift is a structural failure, equivalent
  to regenerating the artifact and diffing it, and any reference/fast
  disagreement is a kernel-divergence failure.
* a **measured** section — requests/second per engine and the
  fast/reference speedup. Wall-clock numbers are machine-local, so the
  committed rps values are informational; what the gate enforces is the
  *speedup ratio* (both engines run on the same machine back-to-back,
  so the ratio transfers): the fresh geometric-mean speedup must stay
  at or above :data:`GATE_GEOMEAN_SPEEDUP`, and each scenario's speedup
  must stay inside a calibrated band around its committed value.

The band is calibrated like the latency gate's: the measurement repeats
:data:`CALIBRATION_REPEATS` extra times at build, and the tolerance is
the worst observed relative deviation times :data:`SAFETY_FACTOR`,
floored at :data:`TOLERANCE_FLOOR` (generous, because this is the one
artifact in the repo whose inputs are wall-clock, not modelled).

Scenarios run on a deliberately small memory pool
(:data:`POOL_PAGES`) with warm-up rounds sized to cycle every pool
frame at least once, so the fast kernel's frame-slot caches are
measured in steady state — the regime a long-running evaluation sweep
actually sits in — rather than during first-touch fills.
"""

from __future__ import annotations

import hashlib
import json
import math
import time
from dataclasses import dataclass
from typing import Any, Callable

#: Artifact document version; bump on any schema change.
SCHEMA = "hypertee.throughput/1"

#: Default committed artifact name.
DEFAULT_REPORT = "BENCH_pr7.json"

#: Seed for the committed baseline (deterministic sections depend on it).
DEFAULT_SEED = 0xFA57

#: The engines under comparison, reference first.
ENGINES = ("reference", "fast")

#: Hard floor on the fresh geometric-mean speedup (the PR's headline
#: claim; CI fails if the fast kernel decays below it).
GATE_GEOMEAN_SPEEDUP = 3.0

#: Calibrated noise, widened by this factor to keep the gate quiet.
SAFETY_FACTOR = 2.0

#: Minimum speedup tolerance: wall-clock ratios on shared CI runners
#: jitter far more than modelled cycles do.
TOLERANCE_FLOOR = 0.25

#: Extra measurement repeats used only to calibrate the noise band.
CALIBRATION_REPEATS = 2

#: Enclave-pool size for throughput scenarios: small enough that the
#: warm-up rounds cycle every frame (the pool free list is FIFO, so a
#: frame recycles only after the whole pool has turned over).
POOL_PAGES = 256


@dataclass(frozen=True)
class Scenario:
    """One throughput workload: a per-round body plus its warm-up."""

    name: str
    #: Rounds run before timing starts (sized to turn the pool over).
    warm: int
    #: Rounds inside the timed window.
    timed: int
    #: (enclave, data) -> None; one round of work.
    body: Callable[[Any, bytes], None]


def _round_alloc_scalar(enclave, data: bytes) -> None:
    vaddrs = [enclave.ealloc(2) for _ in range(8)]
    for vaddr in vaddrs:
        enclave.efree(vaddr)


def _round_alloc_batch(enclave, data: bytes) -> None:
    vaddrs = enclave.ealloc_many([4] * 8)
    enclave.efree_many(vaddrs)


def _round_page_rw(enclave, data: bytes) -> None:
    vaddrs = enclave.ealloc_many([2] * 4)
    for vaddr in vaddrs:
        enclave.write(vaddr, data)
        enclave.read(vaddr, len(data))
    enclave.efree_many(vaddrs)


def _round_mixed(enclave, data: bytes) -> None:
    from repro.common.types import Permission

    vaddrs = enclave.ealloc_many([2] * 4)
    for vaddr in vaddrs:
        enclave.write(vaddr, data[:4096])
    region = enclave.create_shared_region(1, Permission.RW)
    share_va = enclave.attach(region)
    enclave.write(share_va, b"shm bytes")
    enclave.detach(region)
    enclave.destroy_region(region)
    enclave.efree_many(vaddrs)


#: The throughput suite, in artifact order. All four shapes exercise the
#: simulation kernel's hot paths (EMCall transport + memory datapath);
#: ``mixed`` includes per-round shared-memory key churn, which bounds
#: the achievable speedup by construction (fresh keys mean cold caches).
SCENARIOS: tuple[Scenario, ...] = (
    Scenario("alloc_scalar", warm=35, timed=30, body=_round_alloc_scalar),
    Scenario("alloc_batch", warm=10, timed=30, body=_round_alloc_batch),
    Scenario("page_rw", warm=35, timed=30, body=_round_page_rw),
    Scenario("mixed", warm=20, timed=30, body=_round_mixed),
)

#: Scenario lookup by name.
SCENARIOS_BY_NAME = {scenario.name: scenario for scenario in SCENARIOS}


def memory_digest(system) -> str:
    """SHA-256 over all of physical memory (raw stored bytes)."""
    digest = hashlib.sha256()
    memory = system.memory
    step = 1 << 20
    for base in range(0, memory.size_bytes, step):
        digest.update(memory.read_raw(
            base, min(step, memory.size_bytes - base)))
    return digest.hexdigest()


def run_scenario(scenario: Scenario, engine: str,
                 seed: int = DEFAULT_SEED) -> dict[str, Any]:
    """One scenario on one engine: deterministic outcome + measured rate.

    The deterministic fields (``requests``, ``primitive_cycles``,
    ``state_digest``) depend only on (scenario, seed) — never on the
    engine or on the clock — and are what the differential gate pins.
    """
    from repro.core.api import HyperTEE
    from repro.core.config import SystemConfig
    from repro.core.enclave import EnclaveConfig

    tee = HyperTEE(SystemConfig(seed=seed, engine=engine,
                                pool_initial_pages=POOL_PAGES))
    enclave = tee.launch_enclave(
        b"throughput scenario enclave " * 16,
        EnclaveConfig(name=f"tput-{scenario.name}",
                      heap_pages_max=(scenario.warm + scenario.timed) * 40))
    data = bytes(range(256)) * 32  # 8 KiB: two pages, non-zero content
    with enclave.running():
        for _ in range(scenario.warm):
            scenario.body(enclave, data)
        served_before = tee.system.ems_requests_served()
        # Wall-clock is the measured quantity here, not modelled state:
        # the simulation's outcome is identical with or without timing.
        start = time.perf_counter()  # teelint: disable=TEE002 -- host-side benchmark timing, outside the modelled system
        for _ in range(scenario.timed):
            scenario.body(enclave, data)
        elapsed = time.perf_counter() - start  # teelint: disable=TEE002 -- host-side benchmark timing, outside the modelled system
    served = tee.system.ems_requests_served() - served_before
    result = {
        "requests": tee.system.ems_requests_served(),
        "primitive_cycles": tee.primitive_cycles,
        "state_digest": memory_digest(tee.system),
        "rps": served / elapsed,
    }
    slots = getattr(tee.system.engine, "slots", None)
    if slots is not None:
        result["cache"] = {
            "stream_hits": slots.stream_hits,
            "stream_fills": slots.stream_fills,
            "mac_hits": slots.mac_hits,
            "mac_fills": slots.mac_fills,
        }
    return result


def _measure_pair(scenario: Scenario, seed: int
                  ) -> tuple[dict[str, Any], dict[str, Any]]:
    """(reference result, fast result), divergence-checked."""
    reference = run_scenario(scenario, "reference", seed)
    fast = run_scenario(scenario, "fast", seed)
    for key in ("requests", "primitive_cycles", "state_digest"):
        if reference[key] != fast[key]:
            raise RuntimeError(
                f"engine divergence in scenario {scenario.name!r}: "
                f"{key} reference={reference[key]!r} fast={fast[key]!r}")
    return reference, fast


def _geomean(values: list[float]) -> float:
    return math.exp(sum(map(math.log, values)) / len(values))


def build_report(seed: int = DEFAULT_SEED,
                 calibration_repeats: int = CALIBRATION_REPEATS
                 ) -> dict[str, Any]:
    """The throughput baseline: deterministic pins + measured speedups.

    Raises :class:`RuntimeError` on any reference/fast divergence — a
    diverging kernel must never produce a committed artifact.
    """
    scenarios: dict[str, Any] = {}
    speedups: list[float] = []
    for scenario in SCENARIOS:
        reference, fast = _measure_pair(scenario, seed)
        speedup = fast["rps"] / reference["rps"]
        worst = 0.0
        for _ in range(calibration_repeats):
            cal_ref, cal_fast = _measure_pair(scenario, seed)
            cal_speedup = cal_fast["rps"] / cal_ref["rps"]
            worst = max(worst, abs(cal_speedup - speedup) / speedup)
        tolerance = round(max(worst * SAFETY_FACTOR, TOLERANCE_FLOOR), 4)
        speedups.append(speedup)
        scenarios[scenario.name] = {
            "requests": reference["requests"],
            "primitive_cycles": reference["primitive_cycles"],
            "state_digest": reference["state_digest"],
            "measured": {
                "reference_rps": round(reference["rps"], 1),
                "fast_rps": round(fast["rps"], 1),
                "speedup": round(speedup, 3),
                "cache": fast["cache"],
            },
            "tolerance": tolerance,
        }
    return {
        "schema": SCHEMA,
        "seed": seed,
        "gate_geomean_speedup": GATE_GEOMEAN_SPEEDUP,
        "geomean_speedup": round(_geomean(speedups), 3),
        "scenarios": scenarios,
    }


def check_report(committed: dict[str, Any],
                 scale_fast: float = 1.0) -> tuple[bool, list[str]]:
    """Re-run the suite on both engines and gate against ``committed``.

    Three layers, strictest first:

    1. deterministic fields must equal the artifact *exactly* (and the
       two engines each other — enforced inside the measurement);
    2. the fresh geometric-mean speedup must be >= the committed gate;
    3. each scenario's speedup must sit inside its calibrated band
       (slower -> failure; faster -> noted, re-baseline when convenient).

    Returns ``(ok, messages)``. ``scale_fast`` multiplies the fast
    engine's measured rate — a test hook that simulates a fast-kernel
    slowdown without patching the kernel.
    """
    if committed.get("schema") != SCHEMA:
        return False, [f"artifact schema {committed.get('schema')!r} != "
                       f"{SCHEMA} (regenerate with --throughput-out)"]
    seed = committed["seed"]
    gate = committed.get("gate_geomean_speedup", GATE_GEOMEAN_SPEEDUP)
    messages: list[str] = []
    ok = True
    speedups: list[float] = []
    for name, baseline in committed["scenarios"].items():
        scenario = SCENARIOS_BY_NAME.get(name)
        if scenario is None:
            ok = False
            messages.append(f"{name}: unknown scenario in artifact")
            continue
        try:
            reference, fast = _measure_pair(scenario, seed)
        except RuntimeError as exc:
            ok = False
            messages.append(str(exc))
            continue
        for key in ("requests", "primitive_cycles", "state_digest"):
            if reference[key] != baseline[key]:
                ok = False
                messages.append(
                    f"{name}: {key} {reference[key]!r} != committed "
                    f"{baseline[key]!r} (modelled behaviour changed; "
                    "re-baseline deliberately)")
        speedup = fast["rps"] * scale_fast / reference["rps"]
        speedups.append(speedup)
        pinned = baseline["measured"]["speedup"]
        tolerance = baseline["tolerance"]
        deviation = abs(speedup - pinned) / pinned
        if deviation > tolerance:
            if speedup < pinned:
                ok = False
                messages.append(
                    f"{name}: speedup regressed {pinned:.2f}x -> "
                    f"{speedup:.2f}x (-{deviation:.1%}, band "
                    f"{tolerance:.1%})")
            else:
                messages.append(
                    f"{name}: speedup improved {pinned:.2f}x -> "
                    f"{speedup:.2f}x (+{deviation:.1%}); consider "
                    "re-baselining")
    if speedups:
        geomean = _geomean(speedups)
        if geomean < gate:
            ok = False
            messages.append(
                f"geomean speedup {geomean:.2f}x below the {gate:.1f}x "
                "gate: the fast kernel no longer earns its keep")
        else:
            messages.append(
                f"geomean speedup {geomean:.2f}x (gate {gate:.1f}x)")
    if ok:
        messages.append("throughput check passed: engines identical, "
                        "speedup inside every calibrated band")
    return ok, messages


def render_report(report: dict[str, Any]) -> str:
    """The artifact as a readable table."""
    from repro.eval.report import render_table

    rows = []
    for name, scenario in report["scenarios"].items():
        measured = scenario["measured"]
        rows.append([
            name, scenario["requests"],
            f"{measured['reference_rps']:.0f}",
            f"{measured['fast_rps']:.0f}",
            f"{measured['speedup']:.2f}x",
            f"{scenario['tolerance']:.0%}",
        ])
    return render_table(
        f"Engine throughput (sim-req/s, seed {report['seed']:#x}; "
        f"geomean {report['geomean_speedup']:.2f}x, "
        f"gate {report['gate_geomean_speedup']:.1f}x)",
        ["scenario", "requests", "ref req/s", "fast req/s", "speedup",
         "band"], rows)


def write_report(report: dict[str, Any], path: str) -> None:
    """Serialize deterministically (stable key order, trailing newline)."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_report(path: str) -> dict[str, Any]:
    """Read a committed artifact back."""
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)
