"""TCB inventory (paper Section VIII-A).

The paper's trust argument leans on the EMS Runtime being small — 3843
lines of memory-safe Rust, "small enough to be formally verified by
state-of-the-art frameworks". This module computes the same inventory
for the model: which components are in the TCB, which module implements
each, and how large each is — so the smallness claim stays checkable as
the codebase evolves.
"""

from __future__ import annotations

import dataclasses
import pathlib

#: TCB component -> modules implementing it (paths relative to repro/).
TCB_COMPONENTS: dict[str, tuple[str, ...]] = {
    "EMS runtime (dispatch + managers)": (
        "ems/runtime.py", "ems/lifecycle.py", "ems/page_mgmt.py",
        "ems/memory_pool.py", "ems/swapping.py", "ems/ownership.py",
        "ems/shared_memory.py", "ems/key_mgmt.py", "ems/attestation.py",
        "ems/sealing.py", "ems/boot.py",
    ),
    "EMS extension services (§IX)": (
        "ems/cfi.py", "ems/monitor.py", "cvm/manager.py",
        "cvm/migration.py", "cvm/image.py",
    ),
    "EMCall firmware": ("cs/emcall.py",),
    "Crypto (engine-backed)": (
        "crypto/hashes.py", "crypto/cipher.py", "crypto/keys.py",
        "crypto/dh.py", "crypto/engine.py", "crypto/merkle.py",
    ),
}

#: Explicitly *outside* the TCB: the pieces attackers control.
UNTRUSTED_MODULES = ("cs/os.py", "cs/sdk.py", "cs/scheduler.py",
                     "attacks", "baselines")


@dataclasses.dataclass(frozen=True)
class TCBEntry:
    """One TCB component's size."""

    component: str
    modules: tuple[str, ...]
    code_lines: int


def _count_code_lines(path: pathlib.Path) -> int:
    """Non-blank, non-comment lines (the conventional LoC measure)."""
    count = 0
    in_docstring = False
    for raw in path.read_text().splitlines():
        line = raw.strip()
        if in_docstring:
            if line.endswith('"""') or line.endswith("'''"):
                in_docstring = False
            continue
        if line.startswith(('"""', "'''")):
            # Single-line docstrings close themselves.
            if not (len(line) > 3 and line.endswith(('"""', "'''"))):
                in_docstring = True
            continue
        if not line or line.startswith("#"):
            continue
        count += 1
    return count


def tcb_inventory() -> list[TCBEntry]:
    """Compute the per-component TCB size of this model."""
    root = pathlib.Path(__file__).resolve().parent.parent
    entries = []
    for component, modules in TCB_COMPONENTS.items():
        lines = sum(_count_code_lines(root / module) for module in modules)
        entries.append(TCBEntry(component=component, modules=modules,
                                code_lines=lines))
    return entries


def tcb_total_lines() -> int:
    """The whole software-TCB size, for the smallness check."""
    return sum(entry.code_lines for entry in tcb_inventory())
