"""Shared overhead computations: the TLB-flush model (Fig. 11) and the
bitmap-update flush cost on non-enclave workloads (Section VII-C text).
"""

from __future__ import annotations

from repro.common.constants import CS_CORE_FREQ_HZ, PAGE_SIZE
from repro.eval.calibration import (
    BITMAP_FLUSHES_PER_BILLION_INSTR,
    CS_L2_TLB_ENTRIES,
    TLB_REFILL_FRACTION,
    TLB_REFILL_WALK_CYCLES,
)


def tlb_refill_cycles(working_set_mb: float) -> float:
    """Cycles to re-warm the TLB after a full flush.

    Bounded by the working set (small programs reload few entries) and by
    the L2 TLB capacity (Table III: 1024 entries); only the fraction of
    entries actually re-touched before the next flush costs anything.
    """
    working_pages = working_set_mb * 1024 * 1024 / PAGE_SIZE
    entries = min(working_pages, CS_L2_TLB_ENTRIES)
    return entries * TLB_REFILL_FRACTION * TLB_REFILL_WALK_CYCLES


def context_switch_flush_overhead(working_set_mb: float,
                                  switch_hz: float) -> float:
    """Fig. 11: relative overhead of enclave context-switch TLB flushes.

    Every enclave entry/exit flushes the TLB (stale-entry prevention,
    Section IV-B); at ``switch_hz`` switches per second the refill cost
    is a fixed cycle tax per second of execution.
    """
    return switch_hz * tlb_refill_cycles(working_set_mb) / CS_CORE_FREQ_HZ


def bitmap_update_flush_overhead(working_set_mb: float = 4.0,
                                 ipc: float = 2.0) -> float:
    """Section VII-C: flushes from bitmap updates on non-enclave work.

    The paper measures 16.72 flushes per billion instructions for
    enclave workloads and reports that the induced overhead on SPEC
    CPU2017 stays below 0.7%.
    """
    flushes_per_instr = BITMAP_FLUSHES_PER_BILLION_INSTR / 1e9
    cycles_per_instr = flushes_per_instr * tlb_refill_cycles(working_set_mb)
    return cycles_per_instr * ipc  # overhead relative to 1/ipc CPI
