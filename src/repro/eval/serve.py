"""The serve load driver: sustained multi-enclave traffic with SLOs.

Every other evaluation entry point runs one scripted scenario; ``serve``
models what the platform looks like *in service* — a fleet of worker
HostApps launching, entering, exercising, attesting, migrating, and
destroying enclaves in a long deterministic loop, with the
:mod:`repro.obs` SLO engine and per-enclave attribution watching. Its
report answers the operations questions the scripted scenarios cannot:
are the latency SLOs met under sustained mixed traffic, which shard
served what, and does the gate degrade (rather than wedge) when the
mailbox backpressures?

The driver is fully deterministic: the op mix is drawn from a
:class:`~repro.common.rng.DeterministicRng` stream seeded by the config,
and the platform itself is seeded the same way, so one
``(seed, shards, workers, ops, engine)`` tuple always produces the same
report document (pinned by tests/eval/test_serve.py).

Chaos mode ``queuefull`` pins the request queue full for the whole run
(probability 1.0, effectively unbounded burst) with a degrading retry
policy — the canonical *starvation* scenario. The report's
``starvation`` section records whether the run made forward progress;
``python -m repro serve --chaos queuefull`` exiting nonzero is the CI
self-check that the starvation detector actually detects.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable

from repro.common.rng import DeterministicRng
from repro.common.types import Permission, Primitive
from repro.core.api import APIError, HyperTEE
from repro.core.config import SystemConfig
from repro.core.enclave import EnclaveConfig
from repro.cs.emcall import RetryPolicy
from repro.errors import ShardError, TransferInterrupted
from repro.eval.report import render_table
from repro.faults.plan import FaultPlan, FaultRule

#: Report document version; bump on any schema change.
SCHEMA = "hypertee.serve/1"

#: Chaos modes the driver knows how to stage.
CHAOS_MODES = ("none", "queuefull")

#: Worker phase cycle; each serve step advances one worker one phase.
_PHASES = ("launch", "enter", "memory", "batch", "attest", "exit",
           "transfer", "destroy")


@dataclasses.dataclass(frozen=True)
class ServeConfig:
    """One serve run, fully specified (the report embeds this verbatim)."""

    #: EMS shards backing the platform (1 = the classic single EMS).
    shards: int = 4
    #: Concurrent worker HostApps cycling through enclave lifecycles.
    workers: int = 3
    #: Total serve steps (each advances one worker one lifecycle phase).
    ops: int = 400
    #: Seed for both the platform and the op-mix stream.
    seed: int = 0x5E12
    #: Execution engine: ``reference`` or ``fast``.
    engine: str = "reference"
    #: Every Nth enclave generation migrates shards before destroy
    #: (ignored at shards=1).
    transfer_every: int = 3
    #: OS-driven EWB pressure every N steps (0 disables).
    ewb_every: int = 50
    #: Adversarial weather: one of :data:`CHAOS_MODES`.
    chaos: str = "none"
    #: Runtime sanitizers (teesan) to attach; empty tuple = off, which
    #: keeps the run bit-identical to the pre-sanitizer driver.
    sanitize: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.ops < 1:
            raise ValueError(f"ops must be >= 1, got {self.ops}")
        if self.transfer_every < 1:
            raise ValueError(
                f"transfer_every must be >= 1, got {self.transfer_every}")
        if self.ewb_every < 0:
            raise ValueError(
                f"ewb_every must be >= 0, got {self.ewb_every}")
        if self.chaos not in CHAOS_MODES:
            raise ValueError(
                f"chaos must be one of {CHAOS_MODES}, got {self.chaos!r}")
        from repro.sanitize.manager import SANITIZERS

        for name in self.sanitize:
            if name not in SANITIZERS:
                raise ValueError(
                    f"sanitize must name only {SANITIZERS}, got {name!r}")


class _Worker:
    """One HostApp's lifecycle state machine (driver-internal)."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.enclave = None
        self.phase = 0
        self.generation = 0
        self.vaddrs: list[int] = []

    def reset(self) -> None:
        """Abandon the current enclave (after a degraded primitive)."""
        self.enclave = None
        self.phase = 0
        self.vaddrs = []


def _build_platform(cfg: ServeConfig) -> HyperTEE:
    # One CS core per worker: each worker holds its own enclave context
    # (entered enclaves pin the core's privilege/context registers, so
    # two workers sharing a core would nest their EENTERs).
    tee = HyperTEE(SystemConfig(seed=cfg.seed, engine=cfg.engine,
                                ems_shards=cfg.shards,
                                cs_cores=cfg.workers))
    tee.system.enable_observability()
    if cfg.sanitize:
        tee.system.enable_sanitizers(cfg.sanitize)
    if cfg.chaos == "queuefull":
        tee.system.enable_fault_injection(FaultPlan.build(
            [FaultRule(point="mailbox.queue_full", probability=1.0,
                       magnitude=1_000_000)],
            seed=cfg.seed))
        # Degrade instead of raising: the serve loop observes structured
        # DegradedResults (surfaced as APIError) and keeps driving.
        tee.system.emcall.retry_policy = RetryPolicy(degrade=True)
    return tee


def _step_worker(tee: HyperTEE, worker: _Worker, rng: DeterministicRng,
                 cfg: ServeConfig, totals: dict[str, int]) -> None:
    """Advance one worker one phase; raises APIError when degraded."""
    phase = _PHASES[worker.phase]
    stream = f"serve-w{worker.index}"
    if phase == "launch":
        code = rng.randbytes(rng.randint(600, 9000, stream), stream)
        worker.enclave = tee.launch_enclave_batched(
            code, EnclaveConfig(name=f"serve-w{worker.index}",
                                heap_pages_max=64),
            core=tee.system.cores[worker.index])
    elif phase == "enter":
        worker.enclave.enter()
    elif phase == "memory":
        enc = worker.enclave
        vaddr = enc.ealloc(rng.randint(1, 4, stream))
        payload = rng.randbytes(rng.randint(8, 64, stream), stream)
        enc.write(vaddr, payload)
        if enc.read(vaddr, len(payload)) != payload:
            raise APIError("serve readback mismatch")  # pragma: no cover
        worker.vaddrs.append(vaddr)
    elif phase == "batch":
        enc = worker.enclave
        counts = [rng.randint(1, 3, stream)
                  for _ in range(rng.randint(2, 4, stream))]
        enc.efree_many(enc.ealloc_many(counts, Permission.RW))
        for vaddr in worker.vaddrs:
            enc.efree(vaddr)
        worker.vaddrs = []
    elif phase == "attest":
        worker.enclave.attest(report_data=rng.randbytes(16, stream))
    elif phase == "exit":
        worker.enclave.exit()
    elif phase == "transfer":
        pool = tee.system.shard_pool
        if pool is not None and worker.generation % cfg.transfer_every == 0:
            eid = worker.enclave.enclave_id
            dst = (pool.resolve(eid) + 1) % pool.num_shards
            try:
                pool.transfer_enclave(eid, dst)
                totals["transfers"] += 1
            except TransferInterrupted:
                totals["transfers_interrupted"] += 1
            except ShardError:
                pass  # already home after an earlier migration chain
    elif phase == "destroy":
        worker.enclave.destroy()
        worker.enclave = None
        worker.generation += 1
    worker.phase = (worker.phase + 1) % len(_PHASES)


def _shard_section(tee: HyperTEE) -> dict[str, Any]:
    """Per-shard attribution (synthesized at shards=1 for one schema)."""
    system = tee.system
    if system.shard_pool is not None:
        return system.shard_pool.stats_summary()
    from repro.common.types import EnclaveState

    return {
        "num_shards": 1,
        "transfers_committed": 0,
        "transfers_interrupted": 0,
        "overrides": 0,
        "per_shard": [{
            "shard": 0,
            "served": system.ems.stats.served,
            "failed": system.ems.stats.failed,
            "service_cycles": system.ems.stats.total_service_cycles,
            "enclaves": sum(
                1 for c in system.enclaves.enclaves.values()
                if c.state is not EnclaveState.DESTROYED),
            "pool_used": system.pool.used_count,
            "pool_free": system.pool.free_count,
            "pool_capacity": system.pool.capacity,
            "transfers_in": 0,
            "transfers_out": 0,
        }],
    }


def run_serve(cfg: ServeConfig,
              on_step: Callable[[int, HyperTEE], None] | None = None,
              ) -> dict[str, Any]:
    """Drive the load loop; returns the serve report document.

    ``on_step`` (tests/soak hook) runs after every serve step with the
    step index and the live facade — per-step invariants go there.
    """
    tee = _build_platform(cfg)
    rng = DeterministicRng(cfg.seed)
    workers = [_Worker(i) for i in range(cfg.workers)]
    totals = {"steps": 0, "completed": 0, "degraded": 0,
              "transfers": 0, "transfers_interrupted": 0}

    for step in range(cfg.ops):
        worker = workers[rng.randint(0, cfg.workers - 1, "serve-mix")]
        totals["steps"] += 1
        try:
            _step_worker(tee, worker, rng, cfg, totals)
            totals["completed"] += 1
        except APIError:
            # Degraded transport (or a failed primitive under weather):
            # the worker abandons its enclave and starts a fresh
            # lifecycle; the platform itself must stay serviceable.
            totals["degraded"] += 1
            worker.reset()
        if cfg.ewb_every and (step + 1) % cfg.ewb_every == 0:
            try:
                tee.invoke_os(Primitive.EWB, {"pages": 1})
            except APIError:
                totals["degraded"] += 1
        if on_step is not None:
            on_step(step, tee)

    # Starvation: the run degraded and never completed a single phase —
    # the platform made zero forward progress under backpressure.
    starved = totals["degraded"] > 0 and totals["completed"] == 0
    report: dict[str, Any] = {
        "schema": SCHEMA,
        "config": dataclasses.asdict(cfg),
        "totals": {
            **totals,
            "requests_served": tee.system.ems_requests_served(),
            "primitive_cycles": tee.primitive_cycles,
        },
        "slo": tee.system.obs.slo.report(),
        "attribution": tee.system.obs.attribution.table(),
        "shards": _shard_section(tee),
        "starvation": {
            "starved": starved,
            "degraded_ops": totals["degraded"],
            "completed_ops": totals["completed"],
        },
    }
    if cfg.sanitize:
        # Present only on sanitized runs: the default document (and the
        # report pinned by the determinism tests) is unchanged.
        report["sanitize"] = tee.system.san.to_dict()
    return report


def render_report(report: dict[str, Any]) -> str:
    """Human-readable serve report (tables over the JSON document)."""
    cfg = report["config"]
    totals = report["totals"]
    lines = [
        f"serve: {totals['steps']} steps, {totals['completed']} completed, "
        f"{totals['degraded']} degraded | engine={cfg['engine']} "
        f"shards={cfg['shards']} workers={cfg['workers']} "
        f"seed={cfg['seed']:#x}",
        f"EMS requests served: {totals['requests_served']}, transfers: "
        f"{totals['transfers']} committed / "
        f"{totals['transfers_interrupted']} interrupted",
        "",
    ]

    def fmt(value, spec=".0f"):
        return "-" if value is None else format(value, spec)

    slo_rows = [[r["operation"], r["count"],
                 fmt(r["p50"]), fmt(r["p95"]), fmt(r["p99"]),
                 "-" if r["threshold"] is None
                 else f"{r['percentile']}<={r['threshold']:.0f}",
                 {True: "yes", False: "NO", None: "-"}[r["compliant"]]]
                for r in report["slo"]]
    lines.append(render_table(
        "SLO report under serve load",
        ["operation", "count", "p50", "p95", "p99", "target", "ok"],
        slo_rows))
    lines.append("")

    shard_rows = [[s["shard"], s["served"], s["failed"], s["enclaves"],
                   s["pool_used"], s["transfers_in"], s["transfers_out"]]
                  for s in report["shards"]["per_shard"]]
    lines.append(render_table(
        f"Per-shard attribution ({report['shards']['num_shards']} shards)",
        ["shard", "served", "failed", "enclaves", "pool used",
         "xfer in", "xfer out"],
        shard_rows))
    lines.append("")

    attr_rows = [[r["enclave"], r["invocations"], r["cs_cycles"],
                  r["ems_cycles"], r["retries"], r["demand_faults"]]
                 for r in report["attribution"][:10]]
    lines.append(render_table(
        "Per-enclave attribution (top 10 by CS cycles)",
        ["enclave", "invocations", "cs cycles", "ems cycles", "retries",
         "faults"],
        attr_rows))

    sanitize = report.get("sanitize")
    if sanitize is not None:
        lines.append("")
        lines.append(
            f"teesan: sanitizers={','.join(sanitize['sanitizers'])} "
            f"events={sanitize['stats']['events']} "
            f"violations={len(sanitize['violations'])} "
            f"{'CLEAN' if sanitize['ok'] else 'VIOLATIONS'}")

    starvation = report["starvation"]
    if starvation["starved"]:
        lines.append("")
        lines.append(
            f"STARVATION: {starvation['degraded_ops']} ops degraded, "
            f"{starvation['completed_ops']} completed — the platform made "
            "no forward progress")
    return "\n".join(lines)
