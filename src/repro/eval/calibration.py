"""Calibration constants pinning the timing model to the paper's numbers.

Every constant names the paper table/figure it was fitted against. The
model is *predictive in shape*: these constants are fitted once, and the
benches then reproduce whole curves/tables (including points the constants
were not directly fitted to, e.g. intermediate sizes and configurations).

Units: "CS cycles" are cycles of the 2.5 GHz CS core; "EMS instructions"
are retired instructions on the EMS core (converted to cycles through the
config's sustained IPC, which is how the weak/medium/strong EMS choice
changes primitive latency — Fig. 7).
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Host allocation path (Fig. 8a baseline)
# ---------------------------------------------------------------------------

#: CS cycles for a host ``malloc`` that reaches the OS mmap path: syscall
#: entry/exit, VMA bookkeeping, buddy allocator.
HOST_MALLOC_BASE_CYCLES = 2_000

#: CS cycles per page for host allocation: demand-zeroing plus PTE setup.
HOST_MALLOC_PER_PAGE_CYCLES = 600

# ---------------------------------------------------------------------------
# EMCall / mailbox transport (Section III-C)
# ---------------------------------------------------------------------------

#: CS cycles for EMCall to assemble, privilege-check, and enqueue one
#: request packet (trap to M-mode included).
EMCALL_DISPATCH_CYCLES = 350

#: CS cycles of response-polling obfuscation jitter (uniform 0..this);
#: the noise EMCall injects against timing observation of EMS responses.
EMCALL_POLL_JITTER_CYCLES = 200

#: CS cycles between consecutive response polls. Charged only for polls
#: beyond the first, so the fault-free synchronous path (one poll) costs
#: exactly what it always did.
EMCALL_POLL_INTERVAL_CYCLES = 40

#: Response-poll deadline, in poll rounds, for primitives without an
#: explicit entry below. 64 preserves the pre-hardening poll cap.
EMCALL_DEFAULT_DEADLINE_POLLS = 64

#: Per-primitive poll-deadline overrides: heavyweight primitives (bulk
#: crypto, control-structure setup) earn a longer leash before EMCall
#: declares a timeout and retries.
EMCALL_DEADLINE_POLLS = {
    "ECREATE": 128,
    "EADD": 96,
    "EWB": 128,
    "EATTEST": 128,
    "EDESTROY": 96,
}

#: CS cycles for EMCall to pack/validate each *additional* request into a
#: batch envelope (the first element pays the full EMCALL_DISPATCH_CYCLES
#: trap-and-assemble cost). Batching amortizes the trap, not the packing.
EMCALL_BATCH_PER_REQ_CYCLES = 40

#: Marginal fabric cycles per extra packet in a batch envelope, each
#: direction. The envelope still pays one full Mailbox.TRANSFER_CYCLES
#: crossing (one doorbell, one IRQ); additional elements stream behind
#: the header at bus width.
MAILBOX_BATCH_PER_REQ_CYCLES = 8

#: Largest batch EMCall accepts in one envelope (mailbox slot sizing).
EMCALL_BATCH_MAX = 64

#: First-retry backoff in CS cycles; doubles per attempt (plus jitter).
EMCALL_BACKOFF_BASE_CYCLES = 2_000

#: Uniform jitter 0..this added to each backoff wait, decorrelating
#: retry storms from concurrent cores.
EMCALL_BACKOFF_JITTER_CYCLES = 256

# ---------------------------------------------------------------------------
# EMS primitive service work, in EMS instructions (Fig. 7, Fig. 8a, Table IV)
# ---------------------------------------------------------------------------
# Fitted so that on the *medium* EMS core (sustained IPC 1.38 at 750 MHz)
# EALLOC shows +49.7% over malloc at 128 KiB falling to +6.3% at 2 MiB
# (Fig. 8a: the fixed transmission/EMCall cost dominates small requests,
# per the paper's own attribution) and the full primitive mix costs
# ~2.0% of enclave runtime on the medium core (Fig. 7).

#: Fixed work per EALLOC: request parse, sanity check, pool pop, ownership
#: update, page-table-node setup, response build.
EALLOC_BASE_INSTR = 4_700

#: Per-page work for EALLOC: zeroing, bitmap set, PTE install.
EALLOC_PER_PAGE_INSTR = 256

#: Fixed work for the remaining primitives (EMS instructions).
PRIMITIVE_BASE_INSTR = {
    "ECREATE": 9_000,      # control structure, key derivation, pool reserve
    "EADD": 700,           # per-page load is charged separately
    "EADD_PER_PAGE": 420,
    "EENTER": 2_600,       # context install handed to EMCall
    "ERESUME": 1_900,
    "EEXIT": 1_400,
    "EDESTROY": 6_000,
    "EFREE": 900,
    "EFREE_PER_PAGE": 160,
    "EWB": 1_800,
    "EWB_PER_PAGE": 520,   # plus bulk encryption via the crypto engine
    "ESHMGET": 2_400,
    "ESHMAT": 1_700,
    "ESHMDT": 1_100,
    "ESHMSHR": 1_300,
    "ESHMDES": 1_600,
    "EMEAS": 1_200,        # plus the hash itself via the crypto profile
    "EATTEST": 2_000,      # plus sign/verify via the crypto profile
}

#: EMS instructions to look up and replay a cached idempotent result
#: (the PR-2 replay cache hit path; far below any real handler cost).
EMS_REPLAY_LOOKUP_INSTR = 300

#: EMS cycles of injected handler stall converted into one deferred
#: pump round by the fault machinery (docs/fault_injection.md).
EMS_STALL_CYCLES_PER_ROUND = 50_000

# ---------------------------------------------------------------------------
# Mailbox / iHub fabric (Section IV-C)
# ---------------------------------------------------------------------------

#: CS cycles for one packet to cross the fabric into a mailbox queue.
#: Together with EMCALL_DISPATCH_CYCLES this fixes the fixed-cost floor
#: that dominates small EALLOCs in Fig. 8a.
MAILBOX_TRANSFER_CYCLES = 60

# ---------------------------------------------------------------------------
# CS scheduler (Fig. 6 multi-core runs)
# ---------------------------------------------------------------------------

#: Default scheduling quantum: 10 ms at the 2.5 GHz CS clock (a 100 Hz
#: timer tick).
SCHED_QUANTUM_CYCLES = 25_000_000

# ---------------------------------------------------------------------------
# CS memory hierarchy (workload trace replay; Table III cache latencies)
# ---------------------------------------------------------------------------

#: Load-to-use cycles on an L1 data-cache hit.
CS_L1_HIT_CYCLES = 3

#: Load-to-use cycles on an L2 hit.
CS_L2_HIT_CYCLES = 14

#: Cycles for a DRAM access that misses the on-chip hierarchy.
CS_DRAM_ACCESS_CYCLES = 160

# ---------------------------------------------------------------------------
# Page-table walker (Fig. 5, Fig. 10)
# ---------------------------------------------------------------------------

#: Memory-access cycles per PTE load during a hardware walk.
PTW_STEP_CYCLES = 40

#: Serialized extra cycles for the PTW bitmap retrieval (the check
#: itself overlaps the original permission check; Section VII-C).
PTW_BITMAP_CHECK_CYCLES = 12

#: Cycles for a TLB hit (no walk).
TLB_HIT_CYCLES = 1

# ---------------------------------------------------------------------------
# Crypto engine fixed per-operation setup (Table III / Table IV)
# ---------------------------------------------------------------------------

#: EMS cycles of fixed per-operation setup on the hardware engine
#: (command submission + DMA descriptor).
CRYPTO_ENGINE_SETUP_CYCLES = 200

#: EMS cycles of fixed per-operation setup for software crypto (a
#: function call, no device round-trip).
CRYPTO_SOFTWARE_SETUP_CYCLES = 50

# ---------------------------------------------------------------------------
# Memory encryption + integrity (Fig. 8b, Fig. 9)
# ---------------------------------------------------------------------------

#: Extra DRAM-path cycles per off-chip access for decrypt + MAC check.
#: Fitted to Fig. 8b's 3.1% average MemStream latency overhead.
ENCRYPTION_DRAM_ADDER_CYCLES = 5.7

# ---------------------------------------------------------------------------
# Bitmap checking in the PTW (Fig. 10)
# ---------------------------------------------------------------------------

#: Serialized tail of the bitmap retrieve after a PTW walk (the check
#: itself overlaps the original permission check). Fitted to Fig. 10:
#: xalancbmk_r with a 0.8% D-TLB miss rate shows 4.6% overhead.
BITMAP_SERIAL_CYCLES = 12.0

# ---------------------------------------------------------------------------
# TLB flush on enclave context switch / bitmap update (Fig. 11)
# ---------------------------------------------------------------------------

#: CS cycles to re-walk one TLB entry after a flush.
TLB_REFILL_WALK_CYCLES = 120

#: CS L2 TLB capacity bounds the refill volume (Table III: 1024 entries).
CS_L2_TLB_ENTRIES = 1024

#: Fraction of flushed entries that are actually re-walked before the next
#: flush (cold entries never refill).
TLB_REFILL_FRACTION = 0.92

#: Paper's measured bitmap-update flush rate for enclave workloads:
#: 16.72 flushes per billion instructions (Section VII-C).
BITMAP_FLUSHES_PER_BILLION_INSTR = 16.72

# ---------------------------------------------------------------------------
# Software crypto on the CS core (Fig. 12 conventional baseline)
# ---------------------------------------------------------------------------

#: Bytes/sec for in-enclave software AES-GCM on the CS core. Conventional
#: enclave<->accelerator communication pays this twice per transfer
#: (encrypt on one side, decrypt on the other).
CS_SOFTWARE_CRYPTO_BYTES_PER_SEC = 0.5e9

#: One-time shared-memory setup in HyperTEE (ESHMGET+ESHMAT+ESHMSHR and
#: attestation), amortized over an inference/transfer session, seconds.
SHM_SETUP_SECONDS = 120e-6

# ---------------------------------------------------------------------------
# SLO simulation (Fig. 6)
# ---------------------------------------------------------------------------

#: Think time between successive primitive requests from one CS core
#: (seconds): the CS-side work between 2 MB EALLOCs in the Fig. 6
#: experiment. Applications allocating 2 MB chunks do so every few
#: milliseconds of real work.
SLO_THINK_TIME_SECONDS = 10e-3

#: Latency a non-enclave allocation needs at the 99th percentile — the
#: "baseline" each Fig. 6 curve is normalized to.
SLO_BASELINE_SECONDS = HOST_MALLOC_BASE_CYCLES / 2.5e9 + 512 * \
    HOST_MALLOC_PER_PAGE_CYCLES / 2.5e9
