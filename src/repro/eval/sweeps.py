"""Sensitivity analyses around the design's tunables.

The paper fixes its parameters (pool sizing, jitter window, EMS core
count); these sweeps show how the security/performance conclusions move
when they change — the analyses a deployer would run before picking
different values:

* :func:`pool_exposure_sweep` — initial pool size vs how many OS-visible
  refill events a fixed enclave workload produces (the residual signal
  the allocation channel could ever see);
* :func:`slo_load_sweep` — per-core primitive rate vs p99 latency for a
  fixed EMS configuration (where a dual-OoO EMS stops sufficing);
* :func:`jitter_sweep` — the EMCall jitter window vs the latency spread
  an attacker must overcome.
"""

from __future__ import annotations

import dataclasses

from repro.common.rng import DeterministicRng
from repro.core.config import SystemConfig
from repro.core.system import HyperTEESystem
from repro.cs.os import CSOperatingSystem
from repro.ems.memory_pool import EnclaveMemoryPool
from repro.hw.bitmap import EnclaveBitmap
from repro.hw.memory import PhysicalMemory


@dataclasses.dataclass(frozen=True)
class PoolExposurePoint:
    """One pool-size design point."""

    initial_pages: int
    refill_events: int
    frames_requested: int


def pool_exposure_sweep(demand_pages: int = 2048,
                        chunk: int = 8,
                        initial_sizes: tuple[int, ...] = (64, 128, 256, 512,
                                                          1024, 2048),
                        ) -> list[PoolExposurePoint]:
    """How pool sizing trades memory footprint against OS-visible events.

    Serves ``demand_pages`` of enclave allocations in ``chunk``-page
    requests from pools of different initial sizes and counts the bulk
    refills the OS observes.
    """
    points = []
    for initial in initial_sizes:
        memory = PhysicalMemory(64 * 1024 * 1024)
        os_ = CSOperatingSystem(memory, first_free_frame=16)
        bitmap = EnclaveBitmap(memory, base_paddr=0)
        pool = EnclaveMemoryPool(os_, memory, DeterministicRng(3),
                                 bitmap=bitmap, initial_pages=initial)
        served = 0
        while served < demand_pages:
            pool.take(chunk)
            served += chunk
        points.append(PoolExposurePoint(
            initial_pages=initial,
            refill_events=pool.stats.refills,
            frames_requested=pool.stats.frames_requested_from_os))
    return points


@dataclasses.dataclass(frozen=True)
class LoadPoint:
    """One offered-load design point of the SLO sweep."""

    think_time_seconds: float
    p99_factor: float
    slo_met: bool


def slo_load_sweep(cs_cores: int = 64, ems_cores: int = 2,
                   ems_name: str = "medium",
                   think_times: tuple[float, ...] = (40e-3, 20e-3, 10e-3,
                                                     5e-3, 2.5e-3),
                   ) -> list[LoadPoint]:
    """p99 latency vs per-core primitive rate for one EMS configuration.

    Shorter think time = higher offered load; the sweep locates the knee
    where the paper's dual-OoO recommendation saturates.
    """
    import repro.eval.slo as slo_module

    points = []
    original = slo_module.SLO_THINK_TIME_SECONDS
    try:
        for think in think_times:
            # simulate() reads the constant through its module global,
            # so rebinding it sweeps the offered load.
            slo_module.SLO_THINK_TIME_SECONDS = think
            result = slo_module.simulate(cs_cores, ems_cores, ems_name)
            points.append(LoadPoint(think_time_seconds=think,
                                    p99_factor=result.p99_factor(),
                                    slo_met=slo_module.meets_slo(result)))
    finally:
        slo_module.SLO_THINK_TIME_SECONDS = original
    return points


@dataclasses.dataclass(frozen=True)
class JitterPoint:
    """One jitter-window design point."""

    window_cycles: int
    latency_spread: int


def jitter_sweep(windows: tuple[int, ...] = (0, 50, 200, 800),
                 samples: int = 32) -> list[JitterPoint]:
    """Observed primitive-latency spread per jitter window.

    A zero window gives deterministic latencies (ideal for a timing
    observer); wider windows raise the noise floor the attacker must
    average away.
    """
    from repro.common.types import Permission, Primitive

    points = []
    for window in windows:
        system = HyperTEESystem(SystemConfig(cs_memory_mb=64,
                                             ems_memory_mb=4))
        # EMCall reads the window through its module global; rebinding it
        # sweeps the obfuscation strength.
        import repro.cs.emcall as emcall_module

        original = emcall_module.EMCALL_POLL_JITTER_CYCLES
        emcall_module.EMCALL_POLL_JITTER_CYCLES = window
        try:
            from repro.core.api import HyperTEE
            from repro.core.enclave import EnclaveConfig

            tee = HyperTEE(system=system)
            enclave = tee.launch_enclave(
                b"probe", EnclaveConfig(heap_pages_max=4096))
            latencies = []
            with enclave.running():
                for _ in range(samples):
                    before = tee.primitive_cycles
                    tee.invoke_user(Primitive.EALLOC,
                                    {"pages": 1, "perm": Permission.RW},
                                    enclave.core)
                    latencies.append(tee.primitive_cycles - before)
        finally:
            emcall_module.EMCALL_POLL_JITTER_CYCLES = original
        points.append(JitterPoint(window_cycles=window,
                                  latency_spread=max(latencies) - min(latencies)))
    return points
