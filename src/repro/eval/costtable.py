"""Compiled cost tables: calibration constants as numpy arrays.

The reference interpreter recomputes every cycle charge from scalar
Python arithmetic over :mod:`repro.eval.calibration` constants. The fast
kernel instead *compiles* those constants once into flat arrays indexed
by primitive ordinal and batch size, so a whole batch's cycle math is a
handful of array lookups and one vectorized multiply-truncate.

Every number here is **imported** from ``eval/calibration.py`` (or from
the core-config tables) — nothing is re-declared, so teelint's TEE003
cost-literal rule holds by construction and the compilation round-trip
is property-tested against the calibration module
(tests/core/test_fastkernel_properties.py).

Exactness notes (the differential matrix depends on these):

* ``cycles_for_instructions`` is ``int(instr / sustained_ipc)`` — float64
  division truncated toward zero. numpy float64 division followed by
  ``.astype(np.int64)`` truncates identically for the non-negative
  instruction counts the model produces.
* ``int(service * ems_to_cs)`` likewise truncates toward zero; the
  table's helpers reproduce it with the same float64 arithmetic.
"""

from __future__ import annotations

import dataclasses
import functools

import numpy as np

from repro.common.constants import CS_CORE_FREQ_HZ, EMS_CORE_FREQ_HZ
from repro.common.types import Primitive
from repro.eval.calibration import (
    EALLOC_BASE_INSTR,
    EALLOC_PER_PAGE_INSTR,
    EMCALL_BATCH_MAX,
    EMCALL_BATCH_PER_REQ_CYCLES,
    EMCALL_DISPATCH_CYCLES,
    EMCALL_POLL_JITTER_CYCLES,
    MAILBOX_BATCH_PER_REQ_CYCLES,
    MAILBOX_TRANSFER_CYCLES,
    PRIMITIVE_BASE_INSTR,
)

#: Stable primitive ordering: enum declaration order.
PRIMITIVE_INDEX: dict[Primitive, int] = {
    p: i for i, p in enumerate(Primitive)
}

#: Per-page instruction entries keyed like ``PRIMITIVE_BASE_INSTR``.
_PER_PAGE_KEYS = {
    Primitive.EADD: "EADD_PER_PAGE",
    Primitive.EFREE: "EFREE_PER_PAGE",
    Primitive.EWB: "EWB_PER_PAGE",
}


@dataclasses.dataclass(frozen=True)
class CostTable:
    """Calibration constants flattened into index-addressed arrays."""

    #: Base instruction count per primitive ordinal.
    base_instr: np.ndarray
    #: Marginal instructions per page, per primitive ordinal (0 for
    #: primitives without a per-page term).
    per_page_instr: np.ndarray
    #: ``dispatch_for_n[n]``: EMCall gate cycles for an n-element batch
    #: (n=1 is the scalar dispatch cost).
    dispatch_for_n: np.ndarray
    #: ``transfer_for_n[n]``: one mailbox leg for an n-element batch.
    transfer_for_n: np.ndarray
    #: CS-clock cycles per EMS-clock cycle.
    ems_to_cs: float
    #: Upper bound of the poll-jitter draw (inclusive).
    jitter_max: int

    def instructions(self, primitive: Primitive, pages: int = 0) -> int:
        """Scalar instruction count: base + pages * per_page."""
        index = PRIMITIVE_INDEX[primitive]
        return int(self.base_instr[index]
                   + pages * self.per_page_instr[index])

    def instructions_vec(self, primitive_indices: np.ndarray,
                         pages: np.ndarray) -> np.ndarray:
        """Vectorized instruction counts for a batch of requests."""
        return (self.base_instr[primitive_indices]
                + pages * self.per_page_instr[primitive_indices])

    def service_cycles_vec(self, instructions: np.ndarray,
                           sustained_ipc: float) -> np.ndarray:
        """Vectorized ``CoreConfig.cycles_for_instructions`` (exact)."""
        return (instructions / sustained_ipc).astype(np.int64)

    def scalar_cs_cycles(self, service_cycles: int, jitter: int,
                         extra: int = 0) -> int:
        """The scalar invoke formula over precompiled terms."""
        return int(self.dispatch_for_n[1] + 2 * self.transfer_for_n[1]
                   + int(service_cycles * self.ems_to_cs)
                   + jitter + extra)

    def batch_cs_cycles(self, n: int, total_service_cycles: int,
                        jitter: int, extra: int = 0) -> int:
        """The batch invoke formula over precompiled per-size terms."""
        return int(self.dispatch_for_n[n] + 2 * self.transfer_for_n[n]
                   + int(total_service_cycles * self.ems_to_cs)
                   + jitter + extra)

    def per_request_shares(self, total_cycles: int, n: int) -> np.ndarray:
        """Amortized per-element shares that sum exactly to the total.

        The array form of ``BatchInvokeResult.per_request_cycles``:
        ``divmod`` spreading with the remainder on the first elements.
        """
        share, remainder = divmod(total_cycles, n)
        out = np.full(n, share, dtype=np.int64)
        out[:remainder] += 1
        return out


@functools.lru_cache(maxsize=1)
def compile_cost_table() -> CostTable:
    """Compile the calibration module into a :class:`CostTable` (cached)."""
    count = len(PRIMITIVE_INDEX)
    base = np.zeros(count, dtype=np.int64)
    per_page = np.zeros(count, dtype=np.int64)
    for primitive, index in PRIMITIVE_INDEX.items():
        if primitive is Primitive.EALLOC:
            base[index] = EALLOC_BASE_INSTR
            per_page[index] = EALLOC_PER_PAGE_INSTR
            continue
        base[index] = PRIMITIVE_BASE_INSTR.get(primitive.value, 0)
        per_page_key = _PER_PAGE_KEYS.get(primitive)
        if per_page_key is not None:
            per_page[index] = PRIMITIVE_BASE_INSTR[per_page_key]

    sizes = np.arange(EMCALL_BATCH_MAX + 1, dtype=np.int64)
    margin = np.maximum(sizes - 1, 0)
    dispatch = EMCALL_DISPATCH_CYCLES + margin * EMCALL_BATCH_PER_REQ_CYCLES
    transfer = MAILBOX_TRANSFER_CYCLES + margin * MAILBOX_BATCH_PER_REQ_CYCLES

    return CostTable(
        base_instr=base,
        per_page_instr=per_page,
        dispatch_for_n=dispatch,
        transfer_for_n=transfer,
        ems_to_cs=CS_CORE_FREQ_HZ / EMS_CORE_FREQ_HZ,
        jitter_max=EMCALL_POLL_JITTER_CYCLES,
    )
