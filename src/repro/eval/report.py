"""Plain-text rendering of tables and series for the bench harness.

Every benchmark prints the rows/series its paper table or figure reports,
through these helpers, so ``pytest benchmarks/ --benchmark-only -s``
regenerates the evaluation section as text.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def render_table(title: str, headers: Sequence[str],
                 rows: Iterable[Sequence[object]]) -> str:
    """A fixed-width table with a title rule."""
    materialized = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines = [f"=== {title} ===", fmt(list(headers)),
             fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in materialized)
    return "\n".join(lines)


def render_series(title: str, points: Iterable[tuple[object, object]],
                  x_label: str = "x", y_label: str = "y") -> str:
    """A two-column series (one figure curve)."""
    return render_table(title, [x_label, y_label], points)


def pct(value: float, digits: int = 2) -> str:
    """Format a ratio as a percentage string."""
    return f"{value * 100:.{digits}f}%"


def times(value: float, digits: int = 1) -> str:
    """Format a speedup as 'N.Nx'."""
    return f"{value:.{digits}f}x"
