"""Statistical performance-regression gating over the SLO digests.

``BENCH_pr3.json`` pins the batched-EMCall *communication* model
bit-for-bit; what nothing pinned until now is the end-to-end latency
distribution — a change that quietly doubles the EALLOC p99 sails
through every functional test. This module closes that gap:

* :func:`build_report` runs a small matrix of deterministic scenarios
  on an observability-enabled platform and snapshots, per operation,
  the ``count``/``p50``/``p95``/``p99``/``mean`` read straight from the
  SLO engine's quantile digests (dogfooding: the gate consumes the same
  percentile surface the SLO report serves). The committed artifact is
  ``BENCH_pr6.json``.
* The **noise band** is calibrated, not guessed: the same scenarios run
  again under :data:`CALIBRATION_SEEDS` (different jitter draws, same
  code), and each scenario's tolerance is the worst relative deviation
  observed across seeds, times :data:`SAFETY_FACTOR`, floored at
  :data:`TOLERANCE_FLOOR`.
* :func:`check_report` re-runs the scenarios at the committed seed and
  compares. Slower beyond the band -> regression (CI exits 1); faster
  beyond the band -> noted but passing (an improvement should be
  re-baselined, not reverted); count drift -> structural failure (the
  scenario itself changed, so the baseline is meaningless).

Everything is seed-deterministic: ``python -m repro bench --regress-out
BENCH_pr6.json`` regenerates the artifact bit-for-bit on unchanged
code, and CI diffs it before checking it.
"""

from __future__ import annotations

import json
from typing import Any, Callable

#: Artifact document version; bump on any schema change.
SCHEMA = "hypertee.regress/1"

#: Default committed artifact name.
DEFAULT_REPORT = "BENCH_pr6.json"

#: Base seed for the committed baseline.
DEFAULT_SEED = 0x9E96

#: Extra seeds used only to measure seed-to-seed noise.
CALIBRATION_SEEDS = (0x9E97, 0x9E98, 0x9E99)

#: Calibrated noise, widened by this factor to keep the gate quiet.
SAFETY_FACTOR = 2.0

#: Minimum tolerance: integer-cycle quantization alone can move tiny
#: samples by a couple of percent.
TOLERANCE_FLOOR = 0.02

#: The per-operation statistics the gate compares.
STAT_KEYS = ("p50", "p95", "p99", "mean")


def _scenario_lifecycle(seed: int):
    """Create/enter/exit/destroy churn: the Table IV lifecycle row."""
    from repro.core.api import HyperTEE
    from repro.core.config import SystemConfig
    from repro.core.enclave import EnclaveConfig

    tee = HyperTEE(SystemConfig(seed=seed))
    tee.system.enable_observability()
    for round_index in range(4):
        enclave = tee.launch_enclave(
            b"regress lifecycle enclave " * 16,
            EnclaveConfig(name=f"regress-{round_index}", heap_pages_max=32))
        with enclave.running():
            vaddr = enclave.ealloc(2)
            enclave.write(vaddr, b"regress bytes")
            enclave.efree(vaddr)
        enclave.destroy()
    return tee


def _scenario_alloc_scalar(seed: int):
    """Scalar EALLOC/EFREE rounds: the hot memory-management path."""
    from repro.core.api import HyperTEE
    from repro.core.config import SystemConfig
    from repro.core.enclave import EnclaveConfig

    tee = HyperTEE(SystemConfig(seed=seed))
    tee.system.enable_observability()
    enclave = tee.launch_enclave(b"regress scalar alloc " * 16,
                                 EnclaveConfig(name="regress-scalar",
                                               heap_pages_max=128))
    with enclave.running():
        for _ in range(3):
            vaddrs = [enclave.ealloc(1) for _ in range(8)]
            for vaddr in vaddrs:
                enclave.efree(vaddr)
    enclave.destroy()
    return tee


def _scenario_alloc_batch8(seed: int):
    """The batched fast path: 8-element EALLOC/EFREE envelopes."""
    from repro.core.api import HyperTEE
    from repro.core.config import SystemConfig
    from repro.core.enclave import EnclaveConfig

    tee = HyperTEE(SystemConfig(seed=seed))
    tee.system.enable_observability()
    enclave = tee.launch_enclave(b"regress batched alloc " * 16,
                                 EnclaveConfig(name="regress-batch",
                                               heap_pages_max=128))
    with enclave.running():
        for _ in range(3):
            vaddrs = enclave.ealloc_many([1] * 8)
            enclave.efree_many(vaddrs)
    enclave.destroy()
    return tee


def _scenario_mixed(seed: int):
    """Shared memory, demand faults, attestation, and EWB pressure."""
    from repro.common.types import Permission, Primitive
    from repro.core.api import HyperTEE
    from repro.core.config import SystemConfig
    from repro.core.enclave import EnclaveConfig

    tee = HyperTEE(SystemConfig(seed=seed))
    tee.system.enable_observability()
    enclave = tee.launch_enclave(b"regress mixed workload " * 16,
                                 EnclaveConfig(name="regress-mixed",
                                               heap_pages_max=64))
    with enclave.running():
        vaddr = enclave.ealloc(4)
        enclave.write(vaddr, b"mixed bytes")
        enclave.write(vaddr + 5 * 4096, b"demand page")  # page-fault path
        region = enclave.create_shared_region(2, Permission.RW)
        share_va = enclave.attach(region)
        enclave.write(share_va, b"shared")
        enclave.detach(region)
        enclave.destroy_region(region)
        enclave.attest(report_data=b"regress")
        enclave.efree(vaddr)
    tee.invoke_os(Primitive.EWB, {"pages": 2})
    enclave.destroy()
    return tee


#: Scenario name -> workload, in artifact order.
SCENARIOS: dict[str, Callable[[int], Any]] = {
    "lifecycle": _scenario_lifecycle,
    "alloc_scalar": _scenario_alloc_scalar,
    "alloc_batch8": _scenario_alloc_batch8,
    "mixed": _scenario_mixed,
}


def run_scenario(name: str, seed: int) -> dict[str, dict[str, float]]:
    """One scenario's per-operation latency stats at ``seed``."""
    tee = SCENARIOS[name](seed)
    slo = tee.system.obs.slo
    out: dict[str, dict[str, float]] = {}
    for operation in sorted(slo.operations()):
        digest = slo.digest(operation)
        out[operation] = {
            "count": digest.count,
            "p50": round(digest.percentile(0.50), 3),
            "p95": round(digest.percentile(0.95), 3),
            "p99": round(digest.percentile(0.99), 3),
            "mean": round(digest.mean, 3),
        }
    return out


def _relative_deviation(base: float, other: float) -> float:
    if base == 0:
        return 0.0 if other == 0 else float("inf")
    return abs(other - base) / base


def build_report(seed: int = DEFAULT_SEED,
                 calibration_seeds: tuple[int, ...] = CALIBRATION_SEEDS
                 ) -> dict[str, Any]:
    """The full regression baseline: stats plus calibrated tolerances."""
    scenarios: dict[str, Any] = {}
    for name in SCENARIOS:
        base = run_scenario(name, seed)
        worst = 0.0
        for cal_seed in calibration_seeds:
            cal = run_scenario(name, cal_seed)
            for operation, stats in base.items():
                cal_stats = cal.get(operation)
                if cal_stats is None:
                    continue  # seed-dependent op; count check still guards
                for key in STAT_KEYS:
                    worst = max(worst, _relative_deviation(
                        stats[key], cal_stats[key]))
        tolerance = round(max(worst * SAFETY_FACTOR, TOLERANCE_FLOOR), 4)
        scenarios[name] = {"operations": base, "tolerance": tolerance}
    return {
        "schema": SCHEMA,
        "seed": seed,
        "calibration_seeds": list(calibration_seeds),
        "scenarios": scenarios,
    }


def check_report(committed: dict[str, Any],
                 inflate: float = 1.0) -> tuple[bool, list[str]]:
    """Re-run the committed baseline's scenarios and compare.

    Returns ``(ok, messages)``. ``inflate`` multiplies the freshly
    measured latencies — a test hook that simulates a uniform slowdown
    without patching the model.
    """
    if committed.get("schema") != SCHEMA:
        return False, [f"artifact schema {committed.get('schema')!r} != "
                       f"{SCHEMA} (regenerate with --regress-out)"]
    seed = committed["seed"]
    messages: list[str] = []
    ok = True
    for name, baseline in committed["scenarios"].items():
        if name not in SCENARIOS:
            ok = False
            messages.append(f"{name}: unknown scenario in artifact")
            continue
        fresh = run_scenario(name, seed)
        tolerance = baseline["tolerance"]
        for operation, stats in baseline["operations"].items():
            measured = fresh.get(operation)
            if measured is None:
                ok = False
                messages.append(f"{name}/{operation}: operation missing "
                                "from fresh run (workload changed?)")
                continue
            if measured["count"] != stats["count"]:
                ok = False
                messages.append(
                    f"{name}/{operation}: count {measured['count']} != "
                    f"baseline {stats['count']} (workload changed; "
                    "re-baseline)")
                continue
            for key in STAT_KEYS:
                value = measured[key] * inflate
                deviation = _relative_deviation(stats[key], value)
                if deviation <= tolerance:
                    continue
                if value > stats[key]:
                    ok = False
                    messages.append(
                        f"{name}/{operation}: {key} regressed "
                        f"{stats[key]:.0f} -> {value:.0f} "
                        f"(+{deviation:.1%}, band {tolerance:.1%})")
                else:
                    messages.append(
                        f"{name}/{operation}: {key} improved "
                        f"{stats[key]:.0f} -> {value:.0f} "
                        f"(-{deviation:.1%}); consider re-baselining")
        extra = sorted(set(fresh) - set(baseline["operations"]))
        if extra:
            messages.append(f"{name}: new operations not in baseline: "
                            f"{', '.join(extra)}; consider re-baselining")
    if ok:
        messages.append("regression check passed: every tracked stat "
                        "inside its calibrated band")
    return ok, messages


def render_report(report: dict[str, Any]) -> str:
    """The artifact as a readable table (one block per scenario)."""
    from repro.eval.report import render_table

    blocks = []
    for name, scenario in report["scenarios"].items():
        rows = [[op, s["count"], f"{s['p50']:.0f}", f"{s['p95']:.0f}",
                 f"{s['p99']:.0f}", f"{s['mean']:.0f}"]
                for op, s in scenario["operations"].items()]
        blocks.append(render_table(
            f"{name} (seed {report['seed']:#x}, "
            f"band {scenario['tolerance']:.1%})",
            ["operation", "count", "p50", "p95", "p99", "mean"], rows))
    return "\n\n".join(blocks)


def write_report(report: dict[str, Any], path: str) -> None:
    """Serialize deterministically (stable key order, trailing newline)."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_report(path: str) -> dict[str, Any]:
    """Read a committed artifact back."""
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)
