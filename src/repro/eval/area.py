"""Table V: area overhead of the EMS for different SoC configurations.

We obviously cannot run the Synopsys 7 nm flow; instead this is an
analytical area model with coefficients fitted once against Table V's
five published points, then used structurally:

* **CS area** — the published per-core area grows slightly with core
  count (uncore amortization): ``cs_area(n) = 9.6 n - 3.4`` mm²
  reproduces all five published values within 1%.
* **EMS core logic** — scales with issue-width² and ROB depth (the
  classic OoO area scaling): ``0.07 * width_factor`` mm².
* **SRAM** — 0.25 mm² per MB at 7 nm (caches + TLBs).
* **Crypto engine** — 0.20 mm² (stated in the paper).
* **iHub/mailbox share** — 0.015 mm² per EMS core.

Table V's EMS configuration per CS size comes from the Fig. 6 adequacy
study: 1 weak core up to 8 CS cores, 2 weak for 16, 2 medium for 32/64.
"""

from __future__ import annotations

import dataclasses

from repro.hw.core import CoreConfig, ems_config

#: mm^2 per MB of SRAM at the modelled 7 nm node.
SRAM_MM2_PER_MB = 0.25

#: Crypto engine area (paper Section VII-E: 0.20 mm^2).
CRYPTO_ENGINE_MM2 = 0.20

#: iHub + mailbox share per EMS core.
FABRIC_MM2_PER_CORE = 0.012

#: Logic-area coefficient for a 1-wide in-order scalar pipeline.
LOGIC_BASE_MM2 = 0.07

#: Table V row: CS core count -> (EMS core count, EMS config name).
TABLE5_EMS_CHOICE = {
    4: (1, "weak"),
    8: (1, "weak"),
    16: (2, "weak"),
    32: (2, "medium"),
    64: (2, "medium"),
}

#: Published CS areas (mm^2) for the Table V comparison.
TABLE5_CS_AREA = {4: 35.0, 8: 74.0, 16: 151.0, 32: 304.0, 64: 612.0}

#: Published overheads (%) — the numbers the bench must reproduce.
TABLE5_OVERHEAD_PCT = {4: 0.97, 8: 0.46, 16: 0.34, 32: 0.49, 64: 0.25}


def cs_area_mm2(cs_cores: int) -> float:
    """CS subsystem area; fitted to the five published points."""
    return 9.6 * cs_cores - 3.4


def core_logic_mm2(config: CoreConfig) -> float:
    """Pipeline + register-file + predictor logic area of one core."""
    width_factor = config.decode_width ** 2
    rob_factor = 1.0 + config.rob_entries / 128.0
    return LOGIC_BASE_MM2 * width_factor * rob_factor


def core_sram_mm2(config: CoreConfig) -> float:
    """Cache SRAM of one core (L1I + L1D + L2)."""
    kb = config.l1i_kb + config.l1d_kb + config.l2_kb
    return (kb / 1024.0) * SRAM_MM2_PER_MB


def ems_core_mm2(config: CoreConfig) -> float:
    """Total area of one EMS core (logic + SRAM)."""
    return core_logic_mm2(config) + core_sram_mm2(config)


def ems_area_mm2(ems_cores: int, ems_name: str) -> float:
    """Total HyperTEE IP area: cores + crypto engine + fabric share."""
    config = ems_config(ems_name)
    return (ems_cores * ems_core_mm2(config)
            + CRYPTO_ENGINE_MM2
            + ems_cores * FABRIC_MM2_PER_CORE)


@dataclasses.dataclass(frozen=True)
class AreaRow:
    """One computed Table V column."""

    cs_cores: int
    cs_area: float
    ems_cores: int
    ems_name: str
    ems_area: float

    @property
    def overhead_pct(self) -> float:
        return 100.0 * self.ems_area / (self.cs_area + self.ems_area)


def table5_rows() -> list[AreaRow]:
    """Recompute every Table V column through the structural model."""
    rows = []
    for cs_cores, (ems_cores, ems_name) in TABLE5_EMS_CHOICE.items():
        rows.append(AreaRow(
            cs_cores=cs_cores,
            cs_area=cs_area_mm2(cs_cores),
            ems_cores=ems_cores,
            ems_name=ems_name,
            ems_area=ems_area_mm2(ems_cores, ems_name)))
    return rows
