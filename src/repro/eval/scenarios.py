"""Named evaluation scenarios (paper Section VII-A).

The paper names scenarios "running environment-security mechanism":
*Host-Native* (the baseline), *Host-Bitmap*, *Enclave-M_encrypt*,
*Enclave-Noncrypto* / *Enclave-Crypto* (Table IV), and the full enclave
configuration used by Fig. 7. Each scenario is a set of flags the runner
interprets.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class Scenario:
    """One 'running environment-security mechanism' combination."""

    name: str
    in_enclave: bool
    #: Bitmap checking affects only non-enclave execution (Section VII-C).
    bitmap_checking: bool = False
    #: Memory encryption + integrity on the DRAM path.
    memory_encryption: bool = False
    #: Crypto engine available for primitives ("engine") or not ("software").
    crypto: str = "engine"


HOST_NATIVE = Scenario("Host-Native", in_enclave=False)
HOST_BITMAP = Scenario("Host-Bitmap", in_enclave=False, bitmap_checking=True)
ENCLAVE_NONCRYPTO = Scenario("Enclave-Noncrypto", in_enclave=True,
                             crypto="software")
ENCLAVE_CRYPTO = Scenario("Enclave-Crypto", in_enclave=True, crypto="engine")
ENCLAVE_M_ENCRYPT = Scenario("Enclave-M_encrypt", in_enclave=True,
                             memory_encryption=True)
#: The deployed configuration: enclave with engine + memory encryption
#: (what Fig. 7 reports against Host-Native).
ENCLAVE_FULL = Scenario("Enclave-Full", in_enclave=True,
                        memory_encryption=True, crypto="engine")

ALL_SCENARIOS = {s.name: s for s in (
    HOST_NATIVE, HOST_BITMAP, ENCLAVE_NONCRYPTO, ENCLAVE_CRYPTO,
    ENCLAVE_M_ENCRYPT, ENCLAVE_FULL)}
