"""Fig. 6: SLO for concurrent primitive requests, by EMS configuration.

The paper (like us) could not put a 64-core CS on the FPGA, so it ran a
software simulation: processes standing in for CS cores issue primitive
requests (enclave creation + 16384 dynamic 2 MB allocations) to processes
standing in for EMS cores, using service latencies sampled from the
prototype. We reproduce that as a closed-loop discrete-event queueing
simulation:

* each CS core issues a creation burst, then EALLOC(2 MB) requests with
  think time between completion and next issue;
* the EMS is a k-server queue whose service time is the calibrated
  EALLOC(512 pages) latency on the chosen core configuration;
* the *baseline* is the non-enclave p99 (a host malloc of 2 MB, no
  queueing), and each curve point reports the fraction of primitives
  resolved within x times that baseline.
"""

from __future__ import annotations

import dataclasses
import heapq

from repro.common.rng import DeterministicRng
from repro.eval.calibration import (
    EALLOC_BASE_INSTR,
    EALLOC_PER_PAGE_INSTR,
    SLO_BASELINE_SECONDS,
    SLO_THINK_TIME_SECONDS,
)
from repro.hw.core import CoreConfig, ems_config
from repro.workloads import costs

#: 2 MB allocations, as in the paper's experiment.
ALLOC_PAGES = 512

#: Requests per CS core (paper: 16384 total across the machine; we issue
#: a fixed count per core and report distribution statistics, which is
#: what the CDF needs).
DEFAULT_REQUESTS_PER_CORE = 64


@dataclasses.dataclass(frozen=True)
class SLOResult:
    """One simulated (CS cores, EMS cores, EMS config) point."""

    cs_cores: int
    ems_cores: int
    ems_name: str
    latencies: tuple[float, ...]

    @property
    def baseline(self) -> float:
        return SLO_BASELINE_SECONDS

    def percentile(self, p: float) -> float:
        """Latency at percentile ``p`` (0..1)."""
        ordered = sorted(self.latencies)
        index = min(len(ordered) - 1, int(p * len(ordered)))
        return ordered[index]

    def p99_factor(self) -> float:
        """The p99 latency as a multiple of the non-enclave baseline."""
        return self.percentile(0.99) / self.baseline

    def fraction_within(self, factor: float) -> float:
        """CDF point: share of primitives resolved within factor x baseline."""
        bound = factor * self.baseline
        return sum(1 for lat in self.latencies if lat <= bound) / len(self.latencies)

    def cdf_curve(self, factors: list[float]) -> list[tuple[float, float]]:
        """(factor, fraction-resolved) points for one Fig. 6 curve."""
        return [(x, self.fraction_within(x)) for x in factors]


def _service_seconds(ems: CoreConfig) -> float:
    """EMS-side service time of one EALLOC(2 MB) on one EMS core."""
    instr = EALLOC_BASE_INSTR + ALLOC_PAGES * EALLOC_PER_PAGE_INSTR
    return instr / ems.sustained_ipc / ems.freq_hz


def simulate(cs_cores: int, ems_cores: int, ems_name: str,
             requests_per_core: int = DEFAULT_REQUESTS_PER_CORE,
             seed: int = 42, obs=None) -> SLOResult:
    """Closed-loop simulation of one Fig. 6 configuration.

    ``obs`` optionally receives every sampled latency (out-of-band; the
    simulation's event stream and results are identical either way).
    """
    ems = ems_config(ems_name)
    service = _service_seconds(ems)
    transport = costs.TRANSPORT_CS_CYCLES / 2.5e9
    rng = DeterministicRng(seed).stream("slo")

    # Event queue of (time, seq, kind, payload). Kinds: "issue" -> a CS
    # core emits a request; "done" -> a server finishes one.
    events: list[tuple[float, int, str, int]] = []
    seq = 0
    for core in range(cs_cores):
        # Stagger the creation burst so cores do not arrive in lockstep.
        start = rng.uniform(0.0, SLO_THINK_TIME_SECONDS)
        heapq.heappush(events, (start, seq, "issue", core))
        seq += 1

    waiting: list[tuple[float, int]] = []  # (arrival_time, core)
    busy_servers = 0
    remaining = {core: requests_per_core for core in range(cs_cores)}
    latencies: list[float] = []

    def think() -> float:
        return SLO_THINK_TIME_SECONDS * rng.uniform(0.8, 1.2)

    while events:
        now, _, kind, payload = heapq.heappop(events)
        if kind == "issue":
            waiting.append((now, payload))
        else:  # "done": a server freed up; payload unused
            busy_servers -= 1
        # Dispatch while servers are free.
        while waiting and busy_servers < ems_cores:
            arrival, core = waiting.pop(0)
            busy_servers += 1
            finish = now + service
            latencies.append(finish - arrival + 2 * transport)
            heapq.heappush(events, (finish, seq, "done", core))
            seq += 1
            remaining[core] -= 1
            if remaining[core] > 0:
                heapq.heappush(events, (finish + think(), seq, "issue", core))
                seq += 1

    if obs is not None:
        config = f"{cs_cores}cs/{ems_cores}x{ems_name}"
        for latency in latencies:
            obs.record_slo_latency(config, latency)
    return SLOResult(cs_cores=cs_cores, ems_cores=ems_cores,
                     ems_name=ems_name, latencies=tuple(latencies))


#: The paper's conclusions (Section VII-B), as (CS cores -> adequate EMS).
ADEQUATE_EMS = {
    4: (1, "weak"),      # high-end embedded: single in-order core
    16: (2, "weak"),     # desktop: dual in-order
    32: (2, "medium"),   # high-performance: dual out-of-order
    64: (2, "medium"),
}

#: SLO acceptance: 99% of primitives resolved within this multiple of the
#: non-enclave baseline. (A weak in-order EMS core's unqueued EALLOC(2 MB)
#: service alone is ~2.6x the host baseline, so adequacy is about keeping
#: queueing bounded, not matching host latency.)
SLO_FACTOR = 6.0


def meets_slo(result: SLOResult, factor: float = SLO_FACTOR) -> bool:
    """Does this configuration resolve 99% of primitives within bound?"""
    return result.fraction_within(factor) >= 0.99
