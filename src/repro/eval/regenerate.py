"""Regenerate the paper's evaluation section as text.

``python -m repro`` prints every table and figure through the model —
the same computations the bench suite runs, without pytest. Individual
artifacts can be selected: ``python -m repro table4 fig7``.
"""

from __future__ import annotations

from repro.eval.report import pct, render_table, times


def table2() -> str:
    """Table II: the primitive set and privilege levels."""
    from repro.common.types import PRIMITIVE_PRIVILEGE, Primitive

    groups = {
        "Life Cycle": ["ECREATE", "EADD", "EENTER", "ERESUME", "EEXIT",
                       "EDESTROY"],
        "Memory": ["EALLOC", "EFREE", "EWB"],
        "Communication": ["ESHMGET", "ESHMAT", "ESHMDT", "ESHMSHR",
                          "ESHMDES"],
        "Key/Attestation": ["EMEAS", "EATTEST"],
    }
    rows = []
    for group, names in groups.items():
        for name in names:
            privilege = PRIMITIVE_PRIVILEGE[Primitive(name)]
            rows.append([group, name,
                         "OS" if privilege.name == "SUPERVISOR" else "User"])
    return render_table("Table II — HyperTEE primitives",
                        ["group", "primitive", "privilege"], rows)


def table3() -> str:
    """Table III: CS/EMS core configurations."""
    from repro.hw.core import CS_CORE, EMS_MEDIUM, EMS_STRONG, EMS_WEAK

    rows = []
    for config in (CS_CORE, EMS_WEAK, EMS_MEDIUM, EMS_STRONG):
        rows.append([config.name, config.pipeline,
                     f"{config.fetch_width}/{config.decode_width}",
                     config.rob_entries or "-",
                     f"{config.l1i_kb}/{config.l1d_kb}KB",
                     f"{config.l2_kb}KB",
                     f"{config.freq_hz / 1e9:.2f}GHz"])
    return render_table("Table III — core configurations",
                        ["core", "pipeline", "fetch/decode", "ROB",
                         "L1 I/D", "L2", "fmax"], rows)


def table4_rows() -> dict[str, tuple[float, float, float, float]]:
    """Canonical Table IV numbers, full precision.

    Per rv8 workload: primitive time as a share of Host-Native runtime —
    ``(noncrypto all, noncrypto EMEAS, crypto all, crypto EMEAS)``.
    Shared by the regenerated table, benchmarks/test_table4_primitives.py
    (paper-shape assertions), and tests/eval/test_golden_table4.py (the
    exact-value pin in tests/golden/table4.json).
    """
    from repro.eval.scenarios import ENCLAVE_CRYPTO, ENCLAVE_NONCRYPTO
    from repro.workloads.runner import host_baseline, run_workload
    from repro.workloads.rv8 import RV8_WORKLOADS

    rows = {}
    for name, profile in RV8_WORKLOADS.items():
        base = host_baseline(profile).total_cycles
        nc = run_workload(profile, ENCLAVE_NONCRYPTO)
        cr = run_workload(profile, ENCLAVE_CRYPTO)
        rows[name] = (nc.primitive_cycles / base, nc.emeas_cycles / base,
                      cr.primitive_cycles / base, cr.emeas_cycles / base)
    return rows


def table4() -> str:
    """Table IV: primitive execution time vs Host-Native."""
    return render_table(
        "Table IV — primitive time vs Host-Native",
        ["workload", "noncrypto all", "noncrypto EMEAS",
         "crypto all", "crypto EMEAS"],
        [[name, pct(r[0], 1), pct(r[1], 1), pct(r[2], 1), pct(r[3], 2)]
         for name, r in table4_rows().items()])


def table5() -> str:
    """Table V: EMS area overhead per SoC size."""
    from repro.eval.area import table5_rows

    return render_table(
        "Table V — EMS area overhead",
        ["CS cores", "CS mm^2", "EMS config", "EMS mm^2", "overhead"],
        [[r.cs_cores, f"{r.cs_area:.0f}", f"{r.ems_cores}x{r.ems_name}",
          f"{r.ems_area:.2f}", f"{r.overhead_pct:.2f}%"]
         for r in table5_rows()])


def table6() -> str:
    """Table VI: the computed attack-defense matrix."""
    from repro.attacks.harness import CHANNELS, defense_matrix, matrix_outcomes

    glyph = {"leaked": "O", "defended": "#", "partial": "~"}
    outcomes = matrix_outcomes(defense_matrix())
    return render_table(
        "Table VI — defense matrix (O=leaked  #=defended  ~=partial)",
        ["TEE", *CHANNELS],
        [[tee, *(glyph[outcomes[tee][ch].value] for ch in CHANNELS)]
         for tee in outcomes])


def fig6() -> str:
    """Fig. 6: SLO of concurrent primitives per EMS config."""
    from repro.eval.slo import SLO_FACTOR, meets_slo, simulate

    grid = [(4, 1, "weak"), (16, 2, "weak"), (32, 2, "medium"),
            (64, 1, "medium"), (64, 2, "medium"), (64, 4, "medium")]
    rows = []
    for cs, n, name in grid:
        result = simulate(cs, n, name)
        rows.append([cs, f"{n}x{name}", f"{result.p99_factor():.2f}x",
                     "yes" if meets_slo(result) else "NO"])
    return render_table(
        f"Fig. 6 — SLO (p99 latency / baseline; met = 99% within "
        f"{SLO_FACTOR:.0f}x)",
        ["CS cores", "EMS", "p99", "SLO met"], rows)


def fig7() -> str:
    """Fig. 7: enclave overhead per EMS configuration."""
    from repro.eval.scenarios import ENCLAVE_FULL
    from repro.hw.core import EMS_MEDIUM, EMS_STRONG, EMS_WEAK
    from repro.workloads.runner import host_baseline, run_workload
    from repro.workloads.rv8 import rv8_suite

    rows = []
    for profile in rv8_suite():
        base = host_baseline(profile)
        cells = [pct(run_workload(profile, ENCLAVE_FULL, ems).overhead_vs(base), 1)
                 for ems in (EMS_WEAK, EMS_MEDIUM, EMS_STRONG)]
        rows.append([profile.name, *cells])
    return render_table("Fig. 7 — enclave overhead by EMS config",
                        ["workload", "weak", "medium", "strong"], rows)


def fig8a() -> str:
    """Fig. 8a: EALLOC vs malloc latency sweep."""
    from repro.hw.core import EMS_MEDIUM
    from repro.workloads import costs

    rows = []
    for kb in (128, 256, 512, 1024, 2048):
        pages = kb * 1024 // 4096
        host = costs.host_malloc_cycles(pages)
        enclave = costs.ealloc_cycles(pages, EMS_MEDIUM)
        rows.append([f"{kb}KB", f"{host}", f"{enclave:.0f}",
                     pct(enclave / host - 1, 1)])
    return render_table("Fig. 8a — EALLOC vs malloc latency (cycles)",
                        ["size", "malloc", "EALLOC", "overhead"], rows)


def fig8b() -> str:
    """Fig. 8b: MemStream encryption latency sweep."""
    from repro.workloads.memstream import memstream_points

    return render_table(
        "Fig. 8b — MemStream latency under encryption+integrity",
        ["size", "base cycles", "encrypted cycles", "overhead"],
        [[f"{p.size_mb}MB", f"{p.average_latency(False):.1f}",
          f"{p.average_latency(True):.1f}", pct(p.latency_overhead(), 2)]
         for p in memstream_points()])


def fig9() -> str:
    """Fig. 9: wolfSSL all-memory-management overhead."""
    from repro.eval.scenarios import ENCLAVE_M_ENCRYPT
    from repro.workloads.runner import host_baseline, run_workload
    from repro.workloads.rv8 import WOLFSSL

    base = host_baseline(WOLFSSL)
    run = run_workload(WOLFSSL, ENCLAVE_M_ENCRYPT)
    alloc_delta = run.allocation_cycles - base.allocation_cycles
    total = (alloc_delta + run.encryption_cycles) / base.total_cycles
    return render_table(
        "Fig. 9 — wolfSSL all memory management",
        ["component", "share"],
        [["EALLOC vs malloc", pct(alloc_delta / base.total_cycles, 2)],
         ["encryption+integrity",
          pct(run.encryption_cycles / base.total_cycles, 2)],
         ["total", pct(total, 2)]])


def fig10() -> str:
    """Fig. 10: bitmap-checking overhead on SPEC CPU2017."""
    from repro.eval.scenarios import HOST_BITMAP
    from repro.workloads.runner import host_baseline, run_workload
    from repro.workloads.spec import spec_suite

    rows = [[p.name, pct(run_workload(p, HOST_BITMAP).overhead_vs(
        host_baseline(p)), 2)] for p in spec_suite()]
    return render_table("Fig. 10 — bitmap checking on SPEC CPU2017",
                        ["benchmark", "overhead"], rows)


def fig11() -> str:
    """Fig. 11: TLB-flush overhead grid."""
    from repro.eval.overhead import context_switch_flush_overhead

    frequencies = (100, 150, 200, 400)
    rows = [[f"{mb}MB", *[pct(context_switch_flush_overhead(mb, hz), 2)
                          for hz in frequencies]]
            for mb in (2, 4, 8, 16, 32)]
    return render_table("Fig. 11 — TLB flush overhead (miniz)",
                        ["memory", *[f"{hz}Hz" for hz in frequencies]], rows)


def fig12() -> str:
    """Fig. 12: enclave communication speedups."""
    from repro.workloads.dnn import ALL_DNN_MODELS, conventional_timing, speedup
    from repro.workloads.nic import NICTransfer

    rows = [[m.name, pct(conventional_timing(m).crypto_share, 1),
             times(speedup(m))] for m in ALL_DNN_MODELS]
    nic = NICTransfer(total_bytes=100e6)
    rows.append(["nic-stream", pct(nic.crypto_share(), 1),
                 times(nic.speedup())])
    return render_table("Fig. 12 — enclave communication",
                        ["workload", "crypto share (conv.)", "speedup"], rows)


def tcb() -> str:
    """Section VIII-A: the software-TCB inventory of this model."""
    from repro.eval.tcb import tcb_inventory, tcb_total_lines

    rows = [[e.component, len(e.modules), e.code_lines]
            for e in tcb_inventory()]
    rows.append(["TOTAL", "-", tcb_total_lines()])
    return render_table("TCB inventory (Section VIII-A; paper runtime: "
                        "3843 LoC of Rust)",
                        ["component", "modules", "code lines"], rows)


#: Artifact name -> generator, in paper order.
ARTIFACTS = {
    "table2": table2, "table3": table3,
    "table4": table4, "table5": table5, "table6": table6,
    "tcb": tcb,
    "fig6": fig6, "fig7": fig7, "fig8a": fig8a, "fig8b": fig8b,
    "fig9": fig9, "fig10": fig10, "fig11": fig11, "fig12": fig12,
}


def regenerate(names: list[str] | None = None) -> str:
    """Render the selected artifacts (all of them by default)."""
    selected = names if names else list(ARTIFACTS)
    unknown = [n for n in selected if n not in ARTIFACTS]
    if unknown:
        raise SystemExit(
            f"unknown artifacts {unknown}; choose from {list(ARTIFACTS)}")
    return "\n\n".join(ARTIFACTS[name]() for name in selected)
