"""Perf baseline harness: scalar vs batched EMCall on an alloc-heavy load.

This is the PR-3 measurement rig behind ``python -m repro bench`` and the
committed ``BENCH_pr3.json`` artifact. It drives the *same* multi-enclave
EALLOC/EFREE workload through the scalar :meth:`EMCall.invoke` path and
the batched :meth:`EMCall.invoke_batch` fast path at a sweep of batch
sizes, and reports the modeled *communication* cycles — everything the
CS pays around the EMS service time: the EMCall gate dispatch, the two
fabric/mailbox transfer legs, and fabric jitter.

The headline number is ``comm_reduction`` at batch size 8: how many times
cheaper the per-request communication overhead is once eight independent
requests share one doorbell, one envelope, and one response IRQ. The
acceptance bar (benchmarks/test_batch_comm.py) is >= 1.5x.

Everything is seeded: the same ``seed`` reproduces ``BENCH_pr3.json``
bit-for-bit, which is what lets the artifact live in git and regress.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any

from repro.common.constants import CS_CORE_FREQ_HZ, EMS_CORE_FREQ_HZ
from repro.common.types import Primitive

#: Batch sizes swept by the default bench (1 == the scalar path).
DEFAULT_BATCH_SIZES: tuple[int, ...] = (1, 2, 4, 8, 16, 32)

#: The acceptance bar asserted by benchmarks/test_batch_comm.py.
TARGET_COMM_REDUCTION_AT_8 = 1.5

#: Default artifact filename (committed at the repo root).
DEFAULT_REPORT = "BENCH_pr3.json"

_SCHEMA = "hypertee.bench/1"


@dataclasses.dataclass(frozen=True)
class BenchPoint:
    """One series point: the workload at one batch size."""

    mode: str                    #: "scalar" or "batched"
    batch_size: int
    requests: int                #: primitive requests issued
    invocations: int             #: mailbox transactions (doorbells)
    total_cs_cycles: int         #: full EMCall cost, service included
    service_cs_cycles: int       #: EMS service time, CS-clock converted
    comm_cycles: int             #: total - service: the fabric overhead
    comm_cycles_per_request: float

    def to_dict(self) -> dict[str, Any]:
        """Plain-data form for the JSON report."""
        return dataclasses.asdict(self)


def _run_series(*, seed: int, batch_size: int, enclaves: int, rounds: int,
                regions_per_round: int) -> BenchPoint:
    """One full workload run at one batch size; a fresh platform per run."""
    from repro.core.api import HyperTEE
    from repro.core.config import SystemConfig
    from repro.core.enclave import EnclaveConfig

    tee = HyperTEE(SystemConfig(seed=seed, cs_cores=2))
    cores = tee.system.cores
    ems_to_cs = CS_CORE_FREQ_HZ / EMS_CORE_FREQ_HZ
    code = b"bench: alloc-heavy multi-enclave workload " * 128

    handles = [
        tee.launch_enclave(
            code,
            EnclaveConfig(name=f"bench-{i}",
                          heap_pages_max=2 * regions_per_round),
            core=cores[i % len(cores)])
        for i in range(enclaves)]

    requests = invocations = total = service = 0

    def account_scalar(result) -> None:
        nonlocal requests, invocations, total, service
        requests += 1
        invocations += 1
        total += result.cs_cycles
        service += int(result.response.service_cycles * ems_to_cs)

    def account_batch(result) -> None:
        nonlocal requests, invocations, total, service
        requests += len(result.responses)
        invocations += 1
        total += result.cs_cycles
        service += int(sum(r.service_cycles for r in result.responses)
                       * ems_to_cs)

    for enclave in handles:
        with enclave.running():
            for _ in range(rounds):
                vaddrs: list[int] = []
                if batch_size == 1:
                    for _ in range(regions_per_round):
                        result = tee.invoke_user(
                            Primitive.EALLOC, {"pages": 1}, enclave.core)
                        account_scalar(result)
                        vaddrs.append(result.result("vaddr"))
                    for vaddr in vaddrs:
                        account_scalar(tee.invoke_user(
                            Primitive.EFREE, {"vaddr": vaddr}, enclave.core))
                else:
                    for start in range(0, regions_per_round, batch_size):
                        count = min(batch_size, regions_per_round - start)
                        result = tee.invoke_user_batch(
                            [(Primitive.EALLOC, {"pages": 1})] * count,
                            enclave.core)
                        account_batch(result)
                        vaddrs.extend(r.result["vaddr"]
                                      for r in result.responses)
                    for start in range(0, len(vaddrs), batch_size):
                        chunk = vaddrs[start:start + batch_size]
                        account_batch(tee.invoke_user_batch(
                            [(Primitive.EFREE, {"vaddr": v}) for v in chunk],
                            enclave.core))
    for enclave in handles:
        enclave.destroy()

    comm = total - service
    return BenchPoint(
        mode="scalar" if batch_size == 1 else "batched",
        batch_size=batch_size,
        requests=requests,
        invocations=invocations,
        total_cs_cycles=total,
        service_cs_cycles=service,
        comm_cycles=comm,
        comm_cycles_per_request=round(comm / requests, 3))


def run_batch_comm_bench(*, seed: int = 0xBE4C, enclaves: int = 4,
                         rounds: int = 2, regions_per_round: int = 32,
                         batch_sizes: tuple[int, ...] = DEFAULT_BATCH_SIZES,
                         ) -> dict[str, Any]:
    """Sweep batch sizes over the alloc-heavy workload; JSON-ready report.

    Every series runs the identical sequence of primitives on a fresh,
    identically-seeded platform — only the envelope packing differs — so
    ``comm_cycles`` is an apples-to-apples overhead comparison.
    """
    if 1 not in batch_sizes:
        raise ValueError("batch_sizes must include 1 (the scalar baseline)")
    series = [
        _run_series(seed=seed, batch_size=size, enclaves=enclaves,
                    rounds=rounds, regions_per_round=regions_per_round)
        for size in batch_sizes]
    by_size = {point.batch_size: point for point in series}
    scalar = by_size[1]

    def reduction(point: BenchPoint) -> float:
        return round(scalar.comm_cycles_per_request
                     / point.comm_cycles_per_request, 3)

    summary = {
        "scalar_comm_cycles_per_request": scalar.comm_cycles_per_request,
        "comm_reduction": {str(p.batch_size): reduction(p) for p in series},
        "comm_reduction_at_8": reduction(by_size[8]) if 8 in by_size else None,
        "target_comm_reduction_at_8": TARGET_COMM_REDUCTION_AT_8,
    }
    if summary["comm_reduction_at_8"] is not None:
        summary["meets_target"] = (summary["comm_reduction_at_8"]
                                   >= TARGET_COMM_REDUCTION_AT_8)
    return {
        "schema": _SCHEMA,
        "name": "batch_comm",
        "seed": seed,
        "workload": {
            "enclaves": enclaves,
            "rounds": rounds,
            "regions_per_round": regions_per_round,
            "primitives": [Primitive.EALLOC.value, Primitive.EFREE.value],
            "cs_cores": 2,
        },
        "series": [point.to_dict() for point in series],
        "summary": summary,
    }


def render_report(report: dict[str, Any]) -> str:
    """Human-readable table for the CLI (the JSON stays the artifact)."""
    from repro.eval.report import render_table

    rows = [[p["mode"], p["batch_size"], p["requests"], p["invocations"],
             p["comm_cycles"], f"{p['comm_cycles_per_request']:.1f}",
             f"{report['summary']['comm_reduction'][str(p['batch_size'])]:.2f}x"]
            for p in report["series"]]
    table = render_table(
        "Batched EMCall fast path: modeled comm cycles "
        f"(seed={report['seed']:#x})",
        ["mode", "batch", "requests", "doorbells", "comm cycles",
         "comm/req", "reduction"],
        rows)
    at8 = report["summary"].get("comm_reduction_at_8")
    tail = (f"\ncomm reduction at batch 8: {at8:.2f}x "
            f"(target >= {TARGET_COMM_REDUCTION_AT_8}x)"
            if at8 is not None else "")
    return table + tail


def write_report(report: dict[str, Any], path: str) -> None:
    """Write the canonical artifact form (sorted keys, trailing newline)."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
