"""Public HyperTEE API — the SDK surface a downstream user programs against.

The facade mirrors the paper's programming model (Fig. 2): a HostApp
builds an enclave from code pages plus a configuration declaring resource
requirements, measures it, enters it, and communicates through EMS-managed
shared memory. Underneath, every operation travels the real path:
HostApp/enclave -> EMCall (privilege check, identity stamp) -> mailbox ->
EMS runtime -> response -> EMCall-applied CS actions.

Quickstart::

    from repro.core.api import HyperTEE
    from repro.core.enclave import EnclaveConfig

    tee = HyperTEE()
    enclave = tee.launch_enclave(b"my-enclave-code",
                                 EnclaveConfig(name="demo"))
    with enclave.running():
        vaddr = enclave.ealloc(4)
        enclave.write(vaddr, b"secret")
        assert enclave.read(vaddr, 6) == b"secret"
"""

from __future__ import annotations

import contextlib
import dataclasses
from typing import Iterator

from repro.common.constants import PAGE_SIZE
from repro.common.types import Permission, Primitive, Privilege
from repro.core.config import SystemConfig
from repro.core.enclave import EnclaveConfig
from repro.core.system import HyperTEESystem
from repro.crypto.dh import DiffieHellman
from repro.cs.cpu import CSCore
from repro.cs.emcall import BatchInvokeResult, InvokeResult
from repro.ems.attestation import (
    AttestationQuote,
    Certificate,
    RemoteSession,
    dh_binding,
)
from repro.ems.sealing import SealedBlob
from repro.errors import HyperTEEError, PageFault


class APIError(HyperTEEError):
    """A primitive invoked through the API returned a failure status."""


def _page_chunks(code: bytes) -> list[bytes]:
    if not code:
        return [b"\0"]
    return [code[i:i + PAGE_SIZE] for i in range(0, len(code), PAGE_SIZE)]


@dataclasses.dataclass
class SharedRegion:
    """Handle to an EMS-managed shared-memory region."""

    shm_id: int
    pages: int
    owner: "Enclave"


class HyperTEE:
    """Top-level facade over one booted :class:`HyperTEESystem`."""

    def __init__(self, config: SystemConfig | None = None,
                 system: HyperTEESystem | None = None,
                 engine: str | None = None) -> None:
        if engine is not None:
            if system is not None:
                raise ValueError(
                    "engine selects how a new system is built; "
                    "pass it via SystemConfig when supplying a system")
            config = dataclasses.replace(
                config if config is not None else SystemConfig(),
                engine=engine)
        self.system = system if system is not None else HyperTEESystem(config)
        #: CS cycles spent in primitive invocations through this facade.
        self.primitive_cycles = 0

    # -- invocation plumbing ------------------------------------------------------------

    def _invoke(self, primitive: Primitive, args: dict, core: CSCore,
                privilege: Privilege) -> InvokeResult:
        saved = core.privilege
        context_before = core.current_enclave_id
        core.privilege = privilege
        try:
            result = self.system.emcall.invoke(primitive, args, core=core)
        finally:
            # EENTER/ERESUME/EEXIT legitimately switch the core's context
            # (and with it the privilege register); only restore when the
            # primitive did not.
            if core.current_enclave_id == context_before:
                core.privilege = saved
        self.primitive_cycles += result.cs_cycles
        if result.response is None:
            # Degraded mode (EMS unreachable past the bounded retries):
            # surface the structured outcome as a typed API failure.
            raise APIError(
                f"{primitive.value} degraded after {result.attempts} "
                f"attempts: {result.reason}")
        if not result.ok:
            raise APIError(
                f"{primitive.value} failed: {result.response.status.value} "
                f"({result.response.result.get('error', '')})")
        return result

    def invoke_os(self, primitive: Primitive, args: dict,
                  core: CSCore | None = None) -> InvokeResult:
        """Invoke an OS-privilege primitive from the host context."""
        return self._invoke(primitive, args,
                            core or self.system.primary_core,
                            Privilege.SUPERVISOR)

    def invoke_user(self, primitive: Primitive, args: dict,
                    core: CSCore | None = None) -> InvokeResult:
        """Invoke a user-privilege primitive (HostApp or enclave)."""
        return self._invoke(primitive, args,
                            core or self.system.primary_core,
                            Privilege.USER)

    def _invoke_batch(self, calls: list[tuple[Primitive, dict]],
                      core: CSCore, privilege: Privilege) -> BatchInvokeResult:
        """Run N independent primitives through one mailbox transaction.

        All elements must share ``privilege`` (EMCall checks each), and
        context-switching primitives are rejected by the gate, so the
        privilege register is simply saved and restored around the batch.
        """
        saved = core.privilege
        core.privilege = privilege
        try:
            result = self.system.emcall.invoke_batch(calls, core=core)
        finally:
            core.privilege = saved
        self.primitive_cycles += result.cs_cycles
        if result.degraded:
            raise APIError(
                f"batch degraded after {result.attempts} attempts: "
                f"{result.reason}")
        if not result.ok:
            failures = [
                f"{calls[i][0].value}: {r.status.value} "
                f"({r.result.get('error', '')})"
                for i, r in enumerate(result.responses) if not r.ok]
            raise APIError("batch elements failed: " + "; ".join(failures))
        return result

    def invoke_os_batch(self, calls: list[tuple[Primitive, dict]],
                        core: CSCore | None = None) -> BatchInvokeResult:
        """Batch OS-privilege primitives (bulk EADD, bulk lifecycle)."""
        return self._invoke_batch(calls, core or self.system.primary_core,
                                  Privilege.SUPERVISOR)

    def invoke_user_batch(self, calls: list[tuple[Primitive, dict]],
                          core: CSCore | None = None) -> BatchInvokeResult:
        """Batch user-privilege primitives (bulk EALLOC/EFREE/ESHM*)."""
        return self._invoke_batch(calls, core or self.system.primary_core,
                                  Privilege.USER)

    # -- enclave lifecycle --------------------------------------------------------------------

    def launch_enclave(self, code: bytes,
                       config: EnclaveConfig | None = None,
                       core: CSCore | None = None) -> "Enclave":
        """ECREATE + EADD every code page + EMEAS, ready to enter."""
        chunks = _page_chunks(code)
        if config is None:
            config = EnclaveConfig(code_pages=len(chunks))
        core = core or self.system.primary_core
        created = self.invoke_os(Primitive.ECREATE, {"config": config}, core)
        enclave_id = created.result("enclave_id")
        for chunk in chunks:
            self.invoke_os(Primitive.EADD,
                           {"enclave_id": enclave_id, "content": chunk},
                           core)
        measured = self.invoke_os(Primitive.EMEAS,
                                  {"enclave_id": enclave_id}, core)
        return Enclave(self, enclave_id, config, core,
                       measured.result("measurement"))

    def launch_enclave_batched(self, code: bytes,
                               config: EnclaveConfig | None = None,
                               core: CSCore | None = None,
                               batch_size: int = 8) -> "Enclave":
        """:meth:`launch_enclave` with the EADD storm batched.

        ECREATE and EMEAS stay scalar (they order the lifecycle); the
        per-page EADDs — the bulk of a large image's round trips — travel
        ``batch_size`` to an envelope. The resulting enclave state and
        measurement are bit-identical to the scalar launch (pinned by
        tests/cs/test_batch_differential.py); only the modelled
        communication cycles shrink.
        """
        chunks = _page_chunks(code)
        if config is None:
            config = EnclaveConfig(code_pages=len(chunks))
        core = core or self.system.primary_core
        created = self.invoke_os(Primitive.ECREATE, {"config": config}, core)
        enclave_id = created.result("enclave_id")
        for start in range(0, len(chunks), batch_size):
            self.invoke_os_batch(
                [(Primitive.EADD,
                  {"enclave_id": enclave_id, "content": chunk})
                 for chunk in chunks[start:start + batch_size]],
                core)
        measured = self.invoke_os(Primitive.EMEAS,
                                  {"enclave_id": enclave_id}, core)
        return Enclave(self, enclave_id, config, core,
                       measured.result("measurement"))


class Enclave:
    """Handle to one launched enclave."""

    def __init__(self, tee: HyperTEE, enclave_id: int,
                 config: EnclaveConfig, core: CSCore,
                 measurement: bytes) -> None:
        self.tee = tee
        self.enclave_id = enclave_id
        self.config = config
        self.core = core
        self.measurement = measurement
        self._entered = False

    # -- execution context --------------------------------------------------------------------

    def enter(self) -> None:
        """EENTER: switch the core into this enclave's context."""
        self.tee.invoke_os(Primitive.EENTER,
                           {"enclave_id": self.enclave_id}, self.core)
        self._entered = True

    def exit(self) -> None:
        """EEXIT: leave the enclave, restore the host context."""
        self._require_entered()
        self.tee.invoke_user(Primitive.EEXIT, {}, self.core)
        self._entered = False

    def resume(self) -> None:
        """ERESUME after an exit or interrupt."""
        self.tee.invoke_os(Primitive.ERESUME,
                           {"enclave_id": self.enclave_id}, self.core)
        self._entered = True

    @contextlib.contextmanager
    def running(self) -> Iterator["Enclave"]:
        """Context manager: enter on the way in, exit on the way out."""
        self.enter()
        try:
            yield self
        finally:
            if self._entered:
                self.exit()

    def destroy(self) -> None:
        """EDESTROY: exit if needed, then tear the enclave down."""
        if self._entered:
            self.exit()
        self.tee.invoke_os(Primitive.EDESTROY,
                           {"enclave_id": self.enclave_id}, self.core)

    def _require_entered(self) -> None:
        if not self._entered:
            raise APIError("operation requires the enclave to be entered")

    # -- memory ---------------------------------------------------------------------------------

    def ealloc(self, pages: int, perm: Permission = Permission.RW) -> int:
        """Allocate heap pages; returns the enclave virtual address."""
        self._require_entered()
        result = self.tee.invoke_user(
            Primitive.EALLOC, {"pages": pages, "perm": perm}, self.core)
        return result.result("vaddr")

    def efree(self, vaddr: int) -> None:
        """Release a heap region back to the enclave memory pool."""
        self._require_entered()
        self.tee.invoke_user(Primitive.EFREE, {"vaddr": vaddr}, self.core)

    def ealloc_many(self, page_counts: list[int],
                    perm: Permission = Permission.RW) -> list[int]:
        """N independent EALLOCs in one mailbox transaction.

        Returns one virtual address per entry of ``page_counts`` — the
        same regions N scalar :meth:`ealloc` calls would produce, for one
        doorbell and one fabric crossing per direction. Any bitmap-change
        TLB shootdowns the allocations trigger are coalesced into a
        single cross-core flush.
        """
        self._require_entered()
        result = self.tee.invoke_user_batch(
            [(Primitive.EALLOC, {"pages": pages, "perm": perm})
             for pages in page_counts],
            self.core)
        return [r.result["vaddr"] for r in result.responses]

    def efree_many(self, vaddrs: list[int]) -> None:
        """Release N heap regions through one batched transaction."""
        self._require_entered()
        self.tee.invoke_user_batch(
            [(Primitive.EFREE, {"vaddr": vaddr}) for vaddr in vaddrs],
            self.core)

    def _with_fault_retry(self, op, vaddr: int, *args):
        try:
            return op(vaddr, *args)
        except PageFault:
            # EMCall routes in-enclave page faults to the EMS (demand
            # allocation inside the declared heap budget), then retries.
            serviced = self.tee.system.emcall.handle_enclave_page_fault(
                self.core, vaddr)
            if not serviced.ok:
                raise APIError(
                    f"unserviceable fault at {vaddr:#x}: "
                    f"{serviced.response.result.get('error', '')}") from None
            return op(vaddr, *args)

    def read(self, vaddr: int, length: int) -> bytes:
        """Load enclave memory as the enclave (through the real PTW path)."""
        self._require_entered()
        return self._with_fault_retry(self.core.load, vaddr, length)

    def write(self, vaddr: int, data: bytes) -> None:
        """Store to enclave memory as the enclave."""
        self._require_entered()
        self._with_fault_retry(self.core.store, vaddr, data)

    # -- shared memory (Section V flows) ------------------------------------------------------------

    def create_shared_region(self, pages: int,
                             max_perm: Permission = Permission.RW) -> SharedRegion:
        """ESHMGET: create an EMS-managed shared region."""
        self._require_entered()
        result = self.tee.invoke_user(
            Primitive.ESHMGET, {"pages": pages, "max_perm": max_perm},
            self.core)
        return SharedRegion(shm_id=result.result("shm_id"), pages=pages,
                            owner=self)

    def share_with(self, region: SharedRegion, receiver: "Enclave",
                   perm: Permission) -> None:
        """Register ``receiver`` on the region's legal connection list."""
        self._require_entered()
        self.tee.invoke_user(
            Primitive.ESHMSHR,
            {"shm_id": region.shm_id, "receiver_id": receiver.enclave_id,
             "perm": perm},
            self.core)

    def attach(self, region: SharedRegion) -> int:
        """Map the region; returns the attach virtual address."""
        self._require_entered()
        result = self.tee.invoke_user(
            Primitive.ESHMAT, {"shm_id": region.shm_id}, self.core)
        return result.result("vaddr")

    def detach(self, region: SharedRegion) -> None:
        """ESHMDT: unmap the region from this enclave."""
        self._require_entered()
        self.tee.invoke_user(Primitive.ESHMDT,
                             {"shm_id": region.shm_id}, self.core)

    def destroy_region(self, region: SharedRegion) -> None:
        """ESHMDES: destroy the region (initial sender only)."""
        self._require_entered()
        self.tee.invoke_user(Primitive.ESHMDES,
                             {"shm_id": region.shm_id}, self.core)

    def grant_device(self, region: SharedRegion, device_id: str,
                     perm: Permission = Permission.RW) -> None:
        """Driver-enclave flow: whitelist a DMA device onto the region."""
        self._require_entered()
        self.tee.invoke_user(
            Primitive.ESHMSHR,
            {"shm_id": region.shm_id, "device_id": device_id, "perm": perm},
            self.core)

    # -- attestation and sealing ----------------------------------------------------------------------

    def attest(self, report_data: bytes = b"") -> AttestationQuote:
        """EATTEST: obtain the platform + enclave certificates."""
        self._require_entered()
        result = self.tee.invoke_user(
            Primitive.EATTEST, {"mode": "quote", "report_data": report_data},
            self.core)
        return result.result("quote")

    def remote_attest(self, session: RemoteSession) -> bytes:
        """Run the full SIGMA-style flow against a remote user session.

        Returns the negotiated session key (identical on both sides).
        """
        self._require_entered()
        user_public = session.challenge(
            lambda n: self.tee.system.rng.randbytes(n, stream="remote-user"))
        enclave_dh = DiffieHellman.from_entropy(
            lambda n: self.tee.system.rng.randbytes(n, stream=f"encl{self.enclave_id}"))
        quote = self.attest(report_data=dh_binding(enclave_dh.public))
        session.complete(enclave_dh.public, quote)
        return enclave_dh.shared_key(user_public)

    def local_report_for(self, challenger_measurement: bytes) -> Certificate:
        """Verifier side of local attestation (step 2)."""
        self._require_entered()
        result = self.tee.invoke_user(
            Primitive.EATTEST,
            {"mode": "local_report",
             "challenger_measurement": challenger_measurement},
            self.core)
        return result.result("certificate")

    def local_verify(self, certificate: Certificate) -> bytes:
        """Challenger side of local attestation (step 3).

        Returns the verified peer measurement.
        """
        self._require_entered()
        result = self.tee.invoke_user(
            Primitive.EATTEST,
            {"mode": "local_verify", "certificate": certificate},
            self.core)
        return result.result("peer_measurement")

    def seal(self, data: bytes) -> SealedBlob:
        """Seal data to this enclave's identity on this device."""
        return self.tee.system.sealing.seal(self.measurement, data)

    def unseal(self, blob: SealedBlob) -> bytes:
        """Authenticate and decrypt a blob sealed by this identity."""
        return self.tee.system.sealing.unseal(self.measurement, blob)


def local_attest(challenger: Enclave, verifier: Enclave) -> bytes:
    """Full local-attestation handshake between two enclaves.

    Follows the paper's three steps sequentially (the measurement and
    certificate travel through untrusted host memory, which is safe — they
    are public; unforgeability comes from the EMS-held report key).
    Returns the verifier's measurement as seen by the challenger.
    """
    with verifier.running():
        certificate = verifier.local_report_for(challenger.measurement)
    with challenger.running():
        return challenger.local_verify(certificate)
