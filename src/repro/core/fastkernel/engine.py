"""FastEMCall: the vectorized clean-weather invocation engine.

The reference :class:`~repro.cs.emcall.EMCall` models every invocation
as real transport: build a request packet, push it through the mailbox
deque inside an envelope, pump the EMS (fetch + shuffle + dispatch),
post the response into the response map, then poll it back out. In
clear weather all of that machinery has exactly one observable outcome
— the dispatched response, a fixed set of counter increments, and the
clean-path cycle formula — so :class:`FastEMCall` short-circuits it:
the request goes straight to :meth:`EMSRuntime.dispatch` (or
``dispatch_batch``), and the transport layer's stats, probe calls, RNG
draws, and cycle charges are replayed from the precompiled
:class:`~repro.eval.costtable.CostTable` in the exact order the
reference produces them. No envelope, deque, poll-dict, or response-map
allocation happens per event.

The short-circuit is taken only when nothing can perturb the clean
path; otherwise (any fault injector attached, an injected EMS
pause/stall in flight, or a foreign request already queued) the call
delegates to the reference implementation — which keeps the entire
retry/backoff/deadline state machine, and therefore the whole chaos
suite, byte-identical on both engines. Observability probes are fed in
reference order when attached, so SLO digests, attribution, and the
flight recorder agree bit-for-bit (pinned by the differential matrix).

What is *not* replayed, deliberately: the mailbox's private
duplicate-suppression window (``_seen_ids``) and outstanding-slot set.
Both are consulted only on the fault paths (duplicate delivery, poll of
a foreign id, stale responses), which the eligibility guard excludes —
and request ids are never reused, so a later fault-mode run cannot
observe the difference either.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.common.packets import BatchRequest, PrimitiveRequest
from repro.common.rng import DeterministicRng
from repro.common.types import PRIMITIVE_PRIVILEGE, Primitive
from repro.cs.cpu import CSCore
from repro.cs.emcall import (
    _UNBATCHABLE,
    BatchInvokeResult,
    DegradedResult,
    EMCall,
    InvokeResult,
)
from repro.errors import EMCallError, PrivilegeViolation
from repro.eval.costtable import CostTable, compile_cost_table
from repro.hw.mailbox import Mailbox


class FastEMCall(EMCall):
    """The M-mode gate with the clean path compiled down to dispatch."""

    def __init__(self, mailbox, rng: DeterministicRng, cores) -> None:
        super().__init__(mailbox, rng, cores)
        #: The EMS runtime the short-circuit dispatches into; attached by
        #: the system after secure boot (the pump stays attached too, for
        #: the delegated slow paths).
        self._runtime = None
        self._table: CostTable = compile_cost_table()

    def attach_runtime(self, runtime) -> None:
        """Wire the EMS runtime for direct dispatch (after secure boot)."""
        self._runtime = runtime

    # -- eligibility ------------------------------------------------------------

    def _fast_eligible(self) -> bool:
        """Can this invocation skip the transport state machine?

        Clear weather only: no fault injector anywhere on the path, no
        deferred EMS state (stalled responses, pause rounds), and no
        foreign request already queued in the mailbox (a pump on the
        reference path would drain it; the short-circuit must not leave
        it stranded or serve it out of order).
        """
        runtime = self._runtime
        return (runtime is not None
                and self.faults is None
                and runtime.faults is None
                and self.mailbox.faults is None
                and not runtime._stalled
                and runtime._pause_rounds == 0
                and not self.mailbox._requests)

    # -- the scalar short-circuit -----------------------------------------------

    def invoke(self, primitive: Primitive, args: dict[str, Any], *,
               core: CSCore) -> InvokeResult | DegradedResult:
        """Scalar invocation with table-driven cycle charging.

        Falls back to the reference gate whenever the cost tables cannot
        express the run exactly (fault injector wired, etc.).
        """
        if not self._fast_eligible():
            return super().invoke(primitive, args, core=core)
        required = PRIMITIVE_PRIVILEGE[primitive]
        if core.privilege is not required:
            raise PrivilegeViolation(
                f"{primitive.value} requires {required.name}, "
                f"core {core.core_id} is at {core.privilege.name}")

        # Counter consumption mirrors the reference exactly: one
        # idempotency key, then one request id, per clean invocation.
        idempotency_key = f"c{core.core_id}-k{next(self._idempotency_ids)}"
        request = PrimitiveRequest(
            request_id=next(self._request_ids),
            primitive=primitive,
            enclave_id=core.current_enclave_id,   # hardware-stamped identity
            privilege=core.privilege,
            args=dict(args),
            idempotency_key=idempotency_key,
        )

        runtime = self._runtime
        obs = self.obs
        mailbox_stats = self.mailbox.stats
        mailbox_stats.requests_sent += 1
        mailbox_stats.irqs_raised += 1
        if obs is not None:
            # Reference probe order: push, fetch, pump — the queue holds
            # exactly this one request on the eligible path.
            obs.record_mailbox_push(1)
            obs.record_mailbox_fetch(1, 0)
            obs.record_ems_pump(1)

        # Straight into the runtime: sanity checks, idempotency cache,
        # handler execution, RuntimeStats, and the fabric probe all run
        # identically to a pumped dispatch.
        response = runtime.dispatch(request)
        if obs is not None:
            obs.record_mailbox_response()
        runtime.stats.per_core_cycles[runtime._next_core] += \
            response.service_cycles
        if obs is not None:
            obs.record_ems_dispatch(
                request_id=request.request_id,
                primitive=primitive.value,
                status=response.status.value,
                service_cycles=response.service_cycles,
                core_index=runtime._next_core,
                enclave_id=request.enclave_id)
        runtime._next_core = (runtime._next_core + 1) % runtime.num_cores
        mailbox_stats.poll_attempts += 1
        mailbox_stats.responses_delivered += 1

        self._apply_cs_actions(core, response)

        jitter = self._rng.randint(0, self._table.jitter_max,
                                   stream="emcall-jitter")
        cs_cycles = self._table.scalar_cs_cycles(response.service_cycles,
                                                 jitter)
        if obs is not None:
            obs.record_invocation(
                primitive=primitive.value, status=response.status.value,
                request_id=request.request_id, cs_cycles=cs_cycles,
                dispatch_cycles=int(self._table.dispatch_for_n[1]),
                transfer_cycles=Mailbox.TRANSFER_CYCLES,
                service_cycles=response.service_cycles,
                jitter_cycles=jitter, polls=1,
                enclave_id=request.enclave_id, core_id=core.core_id,
                attempts=1)
        if self.san is not None:
            self.san.on_invocation(primitive.value, response.status.value,
                                   cs_cycles, response.service_cycles)
        return InvokeResult(response=response, cs_cycles=cs_cycles,
                            attempts=1)

    # -- the batched short-circuit ------------------------------------------------

    def invoke_batch(self, calls: list[tuple[Primitive, dict[str, Any]]], *,
                     core: CSCore) -> BatchInvokeResult | DegradedResult:
        """Batched invocation with vectorized per-element cycle charging.

        Validates exactly like the reference gate (same exception types
        and messages), then computes the envelope's cycle charges as
        array operations over the compiled cost tables; ineligible runs
        delegate to the reference implementation wholesale.
        """
        if not self._fast_eligible():
            return super().invoke_batch(calls, core=core)
        if not calls:
            raise EMCallError("invoke_batch needs at least one call")
        table = self._table
        n = len(calls)
        if n >= len(table.dispatch_for_n):
            raise EMCallError(
                f"batch of {n} exceeds EMCALL_BATCH_MAX="
                f"{len(table.dispatch_for_n) - 1}")
        for primitive, _ in calls:
            if primitive in _UNBATCHABLE:
                raise EMCallError(
                    f"{primitive.value} switches the core context and "
                    "cannot be batched")
            required = PRIMITIVE_PRIVILEGE[primitive]
            if core.privilege is not required:
                raise PrivilegeViolation(
                    f"{primitive.value} requires {required.name}, "
                    f"core {core.core_id} is at {core.privilege.name}")

        # Same counter order as the reference: all element keys, then all
        # element request ids, then the batch id.
        keys = [f"c{core.core_id}-k{next(self._idempotency_ids)}"
                for _ in calls]
        elements = tuple(
            PrimitiveRequest(
                request_id=next(self._request_ids),
                primitive=calls[i][0],
                enclave_id=core.current_enclave_id,  # hardware-stamped
                privilege=core.privilege,
                args=dict(calls[i][1]),
                idempotency_key=keys[i])
            for i in range(n))
        batch = BatchRequest(batch_id=next(self._request_ids),
                             requests=elements)

        runtime = self._runtime
        obs = self.obs
        mailbox_stats = self.mailbox.stats
        mailbox_stats.requests_sent += 1
        mailbox_stats.batches_sent += 1
        mailbox_stats.batched_requests += n
        mailbox_stats.irqs_raised += 1
        if obs is not None:
            obs.record_mailbox_push(1)
            obs.record_mailbox_fetch(1, 0)
            obs.record_ems_pump(1)

        batch_response = runtime.dispatch_batch(batch)
        if obs is not None:
            obs.record_mailbox_response()
        runtime.stats.batches_served += 1
        runtime.stats.batched_elements += n
        responses = batch_response.responses

        if obs is None and n > 1:
            # Array-batched per-core cycle charges: the round-robin walk
            # collapses to one bincount-style scatter-add.
            service = np.fromiter(
                (r.service_cycles for r in responses),
                dtype=np.int64, count=n)
            start = runtime._next_core
            num_cores = runtime.num_cores
            per_core = runtime.stats.per_core_cycles
            if num_cores == 1:
                per_core[0] += int(service.sum())
            else:
                shares = np.zeros(num_cores, dtype=np.int64)
                np.add.at(shares, (start + np.arange(n)) % num_cores,
                          service)
                for index in range(num_cores):
                    per_core[index] += int(shares[index])
            runtime._next_core = (start + n) % num_cores
        else:
            for element, sub in zip(elements, responses):
                runtime.stats.per_core_cycles[runtime._next_core] += \
                    sub.service_cycles
                if obs is not None:
                    obs.record_ems_dispatch(
                        request_id=element.request_id,
                        primitive=element.primitive.value,
                        status=sub.status.value,
                        service_cycles=sub.service_cycles,
                        core_index=runtime._next_core,
                        enclave_id=element.enclave_id)
                runtime._next_core = \
                    (runtime._next_core + 1) % runtime.num_cores
        mailbox_stats.poll_attempts += 1
        mailbox_stats.responses_delivered += 1

        self._apply_batch_cs_actions(core, responses)

        jitter = self._rng.randint(0, table.jitter_max,
                                   stream="emcall-jitter")
        service_cycles = batch_response.service_cycles
        cs_cycles = table.batch_cs_cycles(n, service_cycles, jitter)
        if obs is not None:
            obs.record_batch_invocation(
                primitives=[p.value for p, _ in calls],
                statuses=[r.status.value for r in responses],
                cs_cycles=cs_cycles,
                dispatch_cycles=int(table.dispatch_for_n[n]),
                transfer_cycles=int(table.transfer_for_n[n]),
                service_cycles=[r.service_cycles for r in responses],
                request_ids=[r.request_id for r in responses],
                jitter_cycles=jitter, polls=1,
                enclave_id=core.current_enclave_id, core_id=core.core_id,
                attempts=1)
        result = BatchInvokeResult(responses=responses, cs_cycles=cs_cycles,
                                   attempts=1)
        if self.san is not None:
            for (primitive, _), response, cycles in zip(
                    calls, responses, result.per_request_cycles()):
                self.san.on_invocation(primitive.value,
                                       response.status.value,
                                       cycles, response.service_cycles)
        return result
