"""Slot-indexed crypto caches: the fast kernel's memory-engine layer.

Profiling the reference interpreter puts ~80% of wall-clock inside the
memory-encryption datapath: every EALLOC/EFREE zeroes its pages
*through* the engine (one SHA3-256 keystream block per 32 bytes, a
byte-at-a-time Python XOR, and one HMAC-SHA3 MAC per 64-byte cache
line), so an allocation-churn workload spends its time recomputing the
same pure functions over and over. Both hot quantities *are* pure
functions:

* the keystream is a function of (key bytes, absolute position) only;
* a line MAC is a function of (MAC key, stored line content) only.

:class:`FastMemoryEncryptionEngine` therefore memoizes both at page
granularity in a :class:`FrameSlotCache` — flat preallocated lists with
one slot per physical frame, so the frame number *is* the cache index:
no per-event allocation, no hashing to locate an entry, no eviction
scan. Steady-state page zeroing collapses to one cached-stream lookup
(a zero page's ciphertext *is* the keystream), one page-sized
``memcmp`` to validate the MAC slot, and 64 plain dict stores into the
engine's MAC table.

Bit-for-bit fidelity is structural, not aspirational: every cache fill
calls the reference implementations (:meth:`KeystreamCipher.keystream`,
:func:`truncated_mac`), the non-zero XOR path runs numpy over the same
bytes the reference would XOR, and slots are validated by key *bytes*
plus raw content — never by KeyID, because KeyIDs are recycled across
enclave generations and a keyid-tagged slot could go stale. A slot
mismatch simply refills from the reference functions, so a wrong answer
is impossible by construction; the differential matrix
(tests/core/test_kernel_differential.py) pins the equality anyway.
"""

from __future__ import annotations

import numpy as np

from repro.common.constants import (
    CACHE_LINE_SIZE,
    HOST_KEYID,
    MAC_BITS,
    PAGE_SIZE,
)
from repro.crypto.hashes import truncated_mac
from repro.errors import IntegrityViolation
from repro.hw.encryption_engine import LineReader, MemoryEncryptionEngine

#: Cache lines per page (the MAC-list slot width).
_LINES_PER_PAGE = PAGE_SIZE // CACHE_LINE_SIZE

#: MAC-slot associativity: a churned frame alternates between its zeroed
#: and data-bearing content, so two ways capture the steady state.
_MAC_WAYS = 2

#: The all-zero page every EALLOC/EFREE writes through the engine.
_ZERO_PAGE = bytes(PAGE_SIZE)


def xor_page(data: bytes, stream: bytes) -> bytes:
    """XOR two equal-length byte strings via numpy (the vectorized hot loop).

    Bit-identical to ``bytes(a ^ b for a, b in zip(data, stream))``,
    ~100x faster at 4 KiB.
    """
    return np.bitwise_xor(
        np.frombuffer(data, dtype=np.uint8),
        np.frombuffer(stream, dtype=np.uint8)).tobytes()


def _xor(data: bytes, stream: bytes) -> bytes:
    """Size-dispatched XOR: big-int arithmetic below numpy's win point."""
    if len(data) <= 128:
        return (int.from_bytes(data, "little")
                ^ int.from_bytes(stream, "little")
                ).to_bytes(len(data), "little")
    return xor_page(data, stream)


class FrameSlotCache:
    """Per-frame memo slots, indexed directly by physical frame number.

    Two independent memos per frame:

    * ``stream_key[f]`` / ``stream[f]`` — the page keystream for the key
      that last encrypted frame ``f`` (direct-mapped: keys change only
      when a frame moves between enclaves);
    * ``mac_entries[f]`` — up to :data:`_MAC_WAYS` recent
      ``(MAC key, raw stored page, 64 line MACs)`` triples, most recent
      first. Two ways because a churned frame alternates between exactly
      two contents — the zeroed page written at EALLOC and the data the
      enclave stores — and a direct-mapped slot would thrash on that
      alternation.

    Slots are permanently owned by their frame (stable reuse: frame ``f``
    always lands in slot ``f``), validated by key bytes + content on
    every hit, and refilled in place on mismatch — a free list in the
    classical sense is unnecessary because the frame space is dense and
    bounded at construction.
    """

    __slots__ = ("num_frames", "stream_key", "stream", "mac_entries",
                 "stream_hits", "stream_fills", "mac_hits", "mac_fills")

    def __init__(self, num_frames: int) -> None:
        self.num_frames = num_frames
        self.stream_key: list[bytes | None] = [None] * num_frames
        self.stream: list[bytes | None] = [None] * num_frames
        self.mac_entries: list[list[tuple[bytes, bytes, list[int]]]] = [
            [] for _ in range(num_frames)]
        # Effectiveness counters (surfaced by the throughput bench; these
        # are host-side diagnostics, not modelled state).
        self.stream_hits = 0
        self.stream_fills = 0
        self.mac_hits = 0
        self.mac_fills = 0

    def page_stream(self, frame: int, cipher) -> bytes:
        """The frame-aligned page keystream under ``cipher``'s key."""
        key = cipher.key
        if self.stream_key[frame] == key:
            self.stream_hits += 1
        else:
            self.stream[frame] = cipher.keystream(frame * PAGE_SIZE,
                                                  PAGE_SIZE)
            self.stream_key[frame] = key
            self.stream_fills += 1
        return self.stream[frame]

    def page_macs(self, frame: int, mac_key: bytes, raw: bytes) -> list[int]:
        """The 64 per-line MACs of raw page content under ``mac_key``."""
        entries = self.mac_entries[frame]
        for way, (entry_key, entry_raw, macs) in enumerate(entries):
            if entry_key == mac_key and entry_raw == raw:
                self.mac_hits += 1
                if way:
                    entries.insert(0, entries.pop(way))
                return macs
        macs = [truncated_mac(mac_key,
                              raw[off:off + CACHE_LINE_SIZE], MAC_BITS)
                for off in range(0, PAGE_SIZE, CACHE_LINE_SIZE)]
        entries.insert(0, (mac_key, raw, macs))
        del entries[_MAC_WAYS:]
        self.mac_fills += 1
        return macs


class FastMemoryEncryptionEngine(MemoryEncryptionEngine):
    """The reference engine with frame-slot memoization on the page paths.

    Only whole, frame-aligned page accesses take the cached path — that
    is where the simulation spends its time (page zeroing on every
    EALLOC/EFREE/EDESTROY, page writes on EADD/swap). Partial or
    unaligned accesses, host-KeyID traffic, and integrity-off
    configurations fall through to the reference implementation
    unchanged.
    """

    def __init__(self, key_slots: int | None = None,
                 integrity_enabled: bool = True, *,
                 num_frames: int) -> None:
        if key_slots is None:
            super().__init__(integrity_enabled=integrity_enabled)
        else:
            super().__init__(key_slots=key_slots,
                             integrity_enabled=integrity_enabled)
        self.slots = FrameSlotCache(num_frames)
        #: line paddr -> (mac key, line content, mac): a pure-function
        #: memo over :func:`truncated_mac` for sub-page traffic (page-
        #: table-entry reads re-verify the same unchanged lines over and
        #: over). One entry per *touched* line, replaced in place when
        #: the content changes — never invalidated, never stale.
        self._mac_memo: dict[int, tuple[bytes, bytes, int]] = {}

    # -- data transform ---------------------------------------------------------

    def encrypt_access(self, paddr: int, data: bytes, keyid: int) -> bytes:
        """Transform a store, serving the keystream from frame slots."""
        if keyid == HOST_KEYID:
            return data
        stream = self._stream_for(paddr, len(data), keyid)
        if stream is None:
            return super().encrypt_access(paddr, data, keyid)
        if len(data) == PAGE_SIZE and data == _ZERO_PAGE:
            # XOR with zeros is the identity: the ciphertext of a zeroed
            # page is the keystream itself.
            return stream
        return _xor(data, stream)

    def decrypt_access(self, paddr: int, raw: bytes, keyid: int) -> bytes:
        """Transform a load, serving the keystream from frame slots."""
        if keyid == HOST_KEYID:
            return raw
        stream = self._stream_for(paddr, len(raw), keyid)
        if stream is None:
            return super().decrypt_access(paddr, raw, keyid)
        if raw == stream:
            # The stored bytes *are* the keystream: the plaintext is zero
            # (the XOR identity again, any length).
            return bytes(len(raw))
        return _xor(raw, stream)

    def _stream_for(self, paddr: int, length: int, keyid: int) -> bytes | None:
        """The keystream window for an access, composed from page slots.

        The keystream is a pure function of (key, absolute position), so
        any slice of a cached page stream is byte-identical to computing
        the window directly. Fully covered pages go through the slot
        cache (fill amortized by the coverage); partially covered pages
        are sliced only from *warm* slots — a cold slot computes just the
        edge window rather than paying a full-page fill for an 8-byte
        page-table-entry access. Unprogrammed KeyIDs return None and fall
        back to the reference's throwaway-cipher path.
        """
        cipher = self._ciphers.get(keyid)
        if cipher is None:
            return None
        slots = self.slots
        key = cipher.key
        frame, offset = divmod(paddr, PAGE_SIZE)
        if not offset and length == PAGE_SIZE:
            return slots.page_stream(frame, cipher)
        if offset + length <= PAGE_SIZE:
            if slots.stream_key[frame] != key:
                return None
            slots.stream_hits += 1
            return slots.stream[frame][offset:offset + length]
        parts = []
        pos = paddr
        end = paddr + length
        while pos < end:
            frame, offset = divmod(pos, PAGE_SIZE)
            take = min(PAGE_SIZE - offset, end - pos)
            if take == PAGE_SIZE:
                parts.append(slots.page_stream(frame, cipher))
            elif slots.stream_key[frame] == key:
                slots.stream_hits += 1
                parts.append(slots.stream[frame][offset:offset + take])
            else:
                parts.append(cipher.keystream(pos, take))
            pos += take
        return b"".join(parts)

    # -- integrity --------------------------------------------------------------

    def _line_mac(self, mac_key: bytes, line: int, content: bytes) -> int:
        memo = self._mac_memo.get(line)
        if memo is not None and memo[0] == mac_key and memo[1] == content:
            return memo[2]
        mac = truncated_mac(mac_key, content, MAC_BITS)
        self._mac_memo[line] = (mac_key, content, mac)
        return mac

    def record_macs(self, paddr: int, length: int, keyid: int,
                    read_raw: LineReader) -> None:
        """Record line MACs, page-at-a-time through the MAC slots."""
        if keyid == HOST_KEYID or not self.integrity_enabled:
            super().record_macs(paddr, length, keyid, read_raw)
            return
        mac_key = self._mac_keys.get(keyid)
        if mac_key is None:
            return
        table = self._macs
        if length and not paddr % PAGE_SIZE and not length % PAGE_SIZE:
            # One page-sized raw read per page replaces 64 line reads;
            # the slot check is a memcmp against the content the cached
            # MAC list was computed over.
            for start in range(paddr, paddr + length, PAGE_SIZE):
                raw = read_raw(start, PAGE_SIZE)
                macs = self.slots.page_macs(start // PAGE_SIZE, mac_key, raw)
                line = start
                for mac in macs:
                    table[line] = (keyid, mac)
                    line += CACHE_LINE_SIZE
            return
        for line in self._lines(paddr, length):
            content = read_raw(line, CACHE_LINE_SIZE)
            table[line] = (keyid, self._line_mac(mac_key, line, content))

    def verify_macs(self, paddr: int, length: int, keyid: int,
                    read_raw: LineReader) -> None:
        """Verify line MACs with the reference's exact skip rules."""
        if keyid == HOST_KEYID or not self.integrity_enabled:
            return
        mac_key = self._mac_keys.get(keyid)
        if mac_key is None:
            return
        table = self._macs
        if length and not paddr % PAGE_SIZE and not length % PAGE_SIZE:
            for start in range(paddr, paddr + length, PAGE_SIZE):
                raw = read_raw(start, PAGE_SIZE)
                macs = self.slots.page_macs(start // PAGE_SIZE, mac_key, raw)
                line = start
                for mac in macs:
                    recorded = table.get(line)
                    # Same skip rules as the reference: unrecorded lines
                    # and lines owned by a different key domain pass
                    # unchecked.
                    if recorded is not None and recorded[0] == keyid \
                            and recorded[1] != mac:
                        raise IntegrityViolation(
                            f"MAC mismatch at line {line:#x} (keyid {keyid})"
                        )
                    line += CACHE_LINE_SIZE
            return
        for line in self._lines(paddr, length):
            recorded = table.get(line)
            if recorded is None or recorded[0] != keyid:
                continue
            content = read_raw(line, CACHE_LINE_SIZE)
            if self._line_mac(mac_key, line, content) != recorded[1]:
                raise IntegrityViolation(
                    f"MAC mismatch at line {line:#x} (keyid {keyid})"
                )

    def drop_block_macs(self, paddr: int, length: int) -> None:
        """Forget MACs for a block without the reference's generator."""
        if not paddr % CACHE_LINE_SIZE and not length % CACHE_LINE_SIZE:
            table = self._macs
            line = paddr
            for _ in range(length // CACHE_LINE_SIZE):
                table.pop(line, None)
                line += CACHE_LINE_SIZE
            return
        super().drop_block_macs(paddr, length)
