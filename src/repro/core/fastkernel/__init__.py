"""The numpy-backed fast execution engine (``engine="fast"``).

Selectable per run through :class:`~repro.core.config.SystemConfig`
(``engine="fast"``; the reference interpreter remains the default). Two
layers, each differentially pinned to the reference:

* :class:`FastMemoryEncryptionEngine` — frame-slot-indexed keystream and
  MAC caches over the memory-encryption datapath (the measured ~80%
  hotspot), with a numpy XOR for non-zero pages;
* :class:`FastEMCall` — the clean-weather EMCall transport compiled down
  to direct EMS dispatch plus precompiled cost-table arithmetic, with
  array-batched per-core cycle charges.

Bit-for-bit equivalence with ``engine="reference"`` is enforced by
``tests/core/test_kernel_differential.py``; the throughput series lives
in ``BENCH_pr7.json`` (``python -m repro bench``). See
``docs/performance.md`` for the architecture and methodology.
"""

from repro.core.fastkernel.engine import FastEMCall
from repro.core.fastkernel.slots import (
    FastMemoryEncryptionEngine,
    FrameSlotCache,
    xor_page,
)

__all__ = [
    "FastEMCall",
    "FastMemoryEncryptionEngine",
    "FrameSlotCache",
    "xor_page",
]
