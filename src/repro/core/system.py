"""The assembled HyperTEE SoC (paper Fig. 1 / Fig. 4).

:class:`HyperTEESystem` builds and boots a complete platform:

1. physical memory with the multi-key encryption engine on its bus;
2. the boot-time address partition (CS region / EMS-private region) and
   the iHub enforcing unidirectional isolation, with the mailbox;
3. the enclave bitmap in protected CS memory;
4. manufacturing (eFuse roots, provisioned flash/EEPROM) and the secure
   boot chain, yielding the platform measurement;
5. the CS OS, CS cores (each with TLB + bitmap-checking PTW), and the
   EMCall firmware holding the only CS-side mailbox port;
6. the EMS: pool, ownership, key manager, lifecycle, page/swap/shm
   managers, attestation, sealing, and the runtime dispatcher.

Everything downstream (SDK, examples, benches, attacks) builds a system
through this class.
"""

from __future__ import annotations

from repro.common.constants import PAGE_SHIFT, PAGE_SIZE
from repro.common.rng import DeterministicRng
from repro.core.config import SystemConfig
from repro.crypto.engine import ENGINE_CRYPTO, SOFTWARE_CRYPTO, CryptoEngine
from repro.cs.cpu import CSCore
from repro.cs.emcall import EMCall
from repro.cs.os import CSOperatingSystem
from repro.ems import boot as secure_boot_mod
from repro.ems.attestation import AttestationService, CertificateAuthority
from repro.ems.key_mgmt import KeyManager
from repro.ems.lifecycle import EnclaveManager
from repro.ems.memory_pool import EnclaveMemoryPool
from repro.ems.ownership import PageOwnershipTable
from repro.ems.page_mgmt import PageManager
from repro.ems.runtime import EMSRuntime
from repro.ems.sealing import SealingService
from repro.ems.shared_memory import SharedMemoryManager
from repro.ems.swapping import SwapManager
from repro.hw.bitmap import BitmapReader, EnclaveBitmap
from repro.hw.core import CS_CORE, ems_config
from repro.hw.devices import EEPROM, EFuse, PrivateFlash
from repro.hw.encryption_engine import MemoryEncryptionEngine
from repro.hw.fabric import AddressPartition, IHub
from repro.hw.iommu import IOMMU
from repro.hw.mailbox import Mailbox
from repro.hw.memory import PhysicalMemory

#: Frames reserved at the bottom of CS memory for EMCall firmware.
FIRMWARE_FRAMES = 16

#: Stand-in software images for the boot chain.
_RUNTIME_IMAGE = b"ems-runtime-rust-image-v1" * 64
_EMCALL_IMAGE = b"emcall-m-mode-firmware-v1" * 32


class HyperTEESystem:
    """One booted HyperTEE platform."""

    def __init__(self, config: SystemConfig | None = None) -> None:
        self.config = config if config is not None else SystemConfig()
        cfg = self.config
        self.rng = DeterministicRng(cfg.seed)

        # -- memory, engine, partition, iHub ---------------------------------
        cs_bytes = cfg.cs_memory_mb * 1024 * 1024
        ems_bytes = cfg.ems_memory_mb * 1024 * 1024
        self.memory = PhysicalMemory(cs_bytes + ems_bytes)
        if cfg.engine == "fast":
            from repro.core.fastkernel import FastMemoryEncryptionEngine

            self.engine = FastMemoryEncryptionEngine(
                integrity_enabled=cfg.integrity,
                num_frames=self.memory.num_frames)
        else:
            self.engine = MemoryEncryptionEngine(
                integrity_enabled=cfg.integrity)
        self.memory.encryption_engine = self.engine
        self.partition = AddressPartition(
            cs_base=0, cs_size=cs_bytes, ems_base=cs_bytes, ems_size=ems_bytes)
        self.mailbox = Mailbox()
        self.ihub = IHub(self.partition, self.mailbox)

        # -- enclave bitmap in protected CS memory -----------------------------
        bitmap_base = FIRMWARE_FRAMES * PAGE_SIZE
        self.bitmap = EnclaveBitmap(self.memory, bitmap_base)
        bitmap_frames = (self.bitmap.size_bytes + PAGE_SIZE - 1) // PAGE_SIZE
        first_free = FIRMWARE_FRAMES + bitmap_frames

        # -- manufacturing + secure boot -----------------------------------------
        self.efuse = EFuse()
        self.efuse.burn("EK", self.rng.randbytes(32, stream="efuse"))
        self.efuse.burn("SK", self.rng.randbytes(32, stream="efuse"))
        self.efuse.lock()
        self.flash = PrivateFlash()
        self.eeprom = EEPROM()
        secure_boot_mod.provision(self.efuse, self.flash, self.eeprom,
                                  _RUNTIME_IMAGE, _EMCALL_IMAGE)
        self.boot_report = secure_boot_mod.secure_boot(
            self.efuse, self.flash, self.eeprom)

        # -- CS side ------------------------------------------------------------------
        self.os = CSOperatingSystem(
            self.memory, first_free_frame=first_free,
            frame_limit=cs_bytes >> PAGE_SHIFT)
        reader = BitmapReader(self.bitmap) if cfg.bitmap_checking else None
        self.cores = [CSCore(i, self.memory, self.ihub, reader, CS_CORE)
                      for i in range(cfg.cs_cores)]
        if cfg.engine == "fast":
            from repro.core.fastkernel import FastEMCall

            self.emcall = FastEMCall(self.mailbox, self.rng, self.cores)
        else:
            self.emcall = EMCall(self.mailbox, self.rng, self.cores)

        # -- EMS side ------------------------------------------------------------------
        profile = ENGINE_CRYPTO if cfg.crypto == "engine" else SOFTWARE_CRYPTO
        self.crypto = CryptoEngine(profile)
        self.keys = KeyManager(self.efuse, self.engine, self.rng)
        self.pool = EnclaveMemoryPool(
            self.os, self.memory, self.rng, bitmap=self.bitmap,
            initial_pages=cfg.pool_initial_pages)
        self.ownership = PageOwnershipTable()
        self.enclaves = EnclaveManager(
            self.memory, self.pool, self.ownership, self.bitmap,
            self.keys, self.crypto, self.rng)
        self.pages = PageManager(self.enclaves)
        self.swap = SwapManager(self.pool, self.keys, self.crypto, self.rng)
        self.iommu = IOMMU()
        self.shm = SharedMemoryManager(self.enclaves, self.keys, self.ihub,
                                       iommu=self.iommu)
        self.attestation = AttestationService(self.enclaves, self.keys,
                                              self.crypto)
        self.attestation.set_platform_measurement(
            self.boot_report.platform_measurement)
        self.sealing = SealingService(self.keys, self.rng)
        self.ems = EMSRuntime(
            self.mailbox, ems_config(cfg.ems_core),
            self.enclaves, self.pages, self.swap, self.shm,
            self.attestation, self.rng, num_cores=cfg.ems_cores,
            fabric_probe=self.ihub.probe)
        self.emcall.attach_ems(self.ems.pump)
        if cfg.engine == "fast":
            # The short-circuit path dispatches into the runtime directly;
            # the pump stays attached for the delegated degraded paths.
            self.emcall.attach_runtime(self.ems)

        # Section IX extensions: VM-level TEE, CFI monitoring, and the
        # Varys-style interrupt anomaly detector.
        from repro.cvm.manager import CVMManager
        from repro.ems.cfi import CFIMonitor
        from repro.ems.monitor import InterruptAnomalyDetector

        self.cvm = CVMManager(self.enclaves, self.keys, self.attestation,
                              self.memory, self.crypto, self.rng)
        self.cfi = CFIMonitor(self.enclaves)
        self.interrupt_monitor = InterruptAnomalyDetector(self.enclaves)
        self.emcall.attach_interrupt_observer(self.interrupt_monitor.observe)

        # -- multi-EMS scale-out (docs/scale_out.md) ---------------------------
        #: The shard fleet coordinator; None on a single-EMS system. With
        #: ems_shards == 1 nothing below runs, so construction (and every
        #: RNG draw in it) is bit-identical to the pre-shard platform.
        self.shard_pool = None
        if cfg.ems_shards > 1:
            self._build_shards(cfg)

        # -- observability (out-of-band; see docs/observability.md) -----------
        from repro.obs.probes import Observability

        self.obs = Observability()
        #: Fault injector; None until enable_fault_injection() is called.
        self.faults = None
        #: teesan sanitizer manager; None until enable_sanitizers().
        self.san = None
        self._register_stats_sources()

    def _build_shards(self, cfg: SystemConfig) -> None:
        """Grow the booted single-EMS platform into a shard fleet.

        Shard 0 *is* the legacy EMS — the components built above are
        wrapped, not rebuilt, so their boot-time state matches a
        single-EMS system exactly. Each additional shard gets its own
        mailbox on the fabric and its own management-software state
        (pool, ownership, lifecycle, page/swap/shm, attestation,
        runtime), while platform hardware — memory, the encryption
        engine, the key manager, the bitmap, the CS OS — stays shared.
        The CS-side gate becomes a :class:`ShardedEMCall` routing on
        enclave IDs.
        """
        from repro.cs.emcall import ShardedEMCall
        from repro.ems.shardpool import EMSShard, ShardPool

        shards = [EMSShard(
            0, mailbox=self.mailbox, pool=self.pool,
            ownership=self.ownership, enclaves=self.enclaves,
            pages=self.pages, swap=self.swap, shm=self.shm,
            attestation=self.attestation, runtime=self.ems)]
        gates = [self.emcall]

        for index in range(1, cfg.ems_shards):
            mailbox = Mailbox()
            self.ihub.register_shard_mailbox(mailbox)
            pool = EnclaveMemoryPool(
                self.os, self.memory, self.rng, bitmap=self.bitmap,
                initial_pages=cfg.pool_initial_pages)
            ownership = PageOwnershipTable()
            enclaves = EnclaveManager(
                self.memory, pool, ownership, self.bitmap,
                self.keys, self.crypto, self.rng)
            pages = PageManager(enclaves)
            swap = SwapManager(pool, self.keys, self.crypto, self.rng)
            shm = SharedMemoryManager(enclaves, self.keys, self.ihub,
                                      iommu=self.iommu)
            attestation = AttestationService(enclaves, self.keys,
                                             self.crypto)
            attestation.set_platform_measurement(
                self.boot_report.platform_measurement)
            runtime = EMSRuntime(
                mailbox, ems_config(cfg.ems_core),
                enclaves, pages, swap, shm, attestation, self.rng,
                num_cores=cfg.ems_cores, fabric_probe=self.ihub.probe)
            shards.append(EMSShard(
                index, mailbox=mailbox, pool=pool, ownership=ownership,
                enclaves=enclaves, pages=pages, swap=swap, shm=shm,
                attestation=attestation, runtime=runtime))

            if cfg.engine == "fast":
                from repro.core.fastkernel import FastEMCall

                gate = FastEMCall(mailbox, self.rng, self.cores)
                gate.attach_runtime(runtime)
            else:
                gate = EMCall(mailbox, self.rng, self.cores)
            gate.attach_interrupt_observer(self.interrupt_monitor.observe)
            gates.append(gate)

        self.shard_pool = ShardPool(shards, self.sealing)
        # Every gate's retry pump goes through its shard's wrapper so
        # shard outages (ems.shard.fail) land on the right runtime.
        for gate, shard in zip(gates, shards):
            gate.attach_ems(shard.pump)
        self.emcall = ShardedEMCall(gates, self.cores)
        self.emcall.attach_shard_router(self.shard_pool.place_ecreate,
                                        self.shard_pool.resolve)

    def _register_stats_sources(self) -> None:
        """Federate the per-subsystem ``*Stats`` into the registry.

        Pull-based: the registry stores readers over the live dataclasses,
        so nothing is duplicated and ``stats_summary()`` becomes a
        registry snapshot with the same schema as before.
        """
        from repro.obs.metrics import stats_asdict

        reg = self.obs.metrics
        reg.register_source("ems", lambda: stats_asdict(self.ems.stats))
        reg.register_source("mailbox", lambda: stats_asdict(self.mailbox.stats))
        reg.register_source("fabric", lambda: stats_asdict(self.ihub.stats))
        reg.register_source("pool", lambda: stats_asdict(self.pool.stats))
        reg.register_source(
            "emcall",
            lambda: {"bitmap_flushes": self.emcall.bitmap_flush_count})
        reg.register_source(
            "tlb",
            lambda: {f"core{core.core_id}": stats_asdict(core.tlb.stats)
                     for core in self.cores})
        reg.register_source(
            "interrupts", lambda: stats_asdict(self.interrupt_monitor.stats))

        from repro.faults.injector import FaultStats

        reg.register_source(
            "faults",
            lambda: stats_asdict(self.faults.stats if self.faults is not None
                                 else FaultStats()))

        if self.shard_pool is not None:
            # Only multi-EMS systems grow the summary schema; the default
            # key set stays pinned (tests/core/test_stats.py).
            reg.register_source("shards", self.shard_pool.stats_summary)

    def enable_observability(self) -> "HyperTEESystem":
        """Attach the probe points and turn on tracing.

        Off by default so the probes cost nothing; when on, they stay
        out-of-band — no modelled cycle count or attacker-visible state
        changes (regression-tested by tests/obs/test_noninterference.py).
        Returns self for chaining.
        """
        self.obs.enable()
        self.mailbox.obs = self.obs
        self.emcall.obs = self.obs
        self.ems.obs = self.obs
        self.pool.obs = self.obs
        self.swap.obs = self.obs
        self.crypto.obs = self.obs
        self.os.obs = self.obs
        for core in self.cores:
            core.tlb.obs = self.obs
            core.ptw.obs = self.obs
        if self.shard_pool is not None:
            self.shard_pool.obs = self.obs
            for shard in self.shard_pool.shards[1:]:
                shard.mailbox.obs = self.obs
                shard.runtime.obs = self.obs
                shard.pool.obs = self.obs
                shard.swap.obs = self.obs
        return self

    def enable_fault_injection(self, plan) -> "HyperTEESystem":
        """Attach a deterministic fault injector driven by ``plan``.

        Wires the injector into every fault point: the mailbox queues
        (via the iHub, which owns the transfer path), the EMS runtime,
        and the EMCall gate. An empty plan is guaranteed non-interfering:
        cycle counts, stats, and attestation signatures stay bit-identical
        to a system without injection (tests/obs/test_noninterference.py).
        Returns self for chaining.
        """
        from repro.faults.injector import FaultInjector
        from repro.faults.plan import FaultPlan

        if plan is None:
            plan = FaultPlan.empty()
        self.faults = FaultInjector(plan, obs=self.obs)
        self.ihub.attach_faults(self.faults)
        self.ems.faults = self.faults
        self.emcall.faults = self.faults
        if self.shard_pool is not None:
            self.shard_pool.faults = self.faults
            for shard in self.shard_pool.shards[1:]:
                shard.runtime.faults = self.faults
        return self

    def enable_sanitizers(
            self,
            sanitizers: tuple[str, ...] = ("secret", "own"),
    ) -> "HyperTEESystem":
        """Attach the teesan runtime sanitizers (docs/sanitizers.md).

        Off by default and observe-only, exactly like the ``obs`` and
        ``faults`` hooks: no modelled state, RNG draw, or cycle count
        changes — a sanitized run is bit-identical to an unsanitized one
        (tests/sanitize/test_noninterference.py). The manager is wired
        into every instrumented component, fleet-wide on sharded
        platforms, and the eFuse roots are registered as taint so every
        derived key is traceable from boot. Returns self for chaining.
        """
        from repro.common import codec
        from repro.sanitize.manager import SanitizerManager

        san = SanitizerManager(sanitizers, obs=self.obs)
        self.san = san
        self.mailbox.san = san
        self.memory.san = san
        self.engine.san = san
        self.keys.san = san
        self.pool.san = san
        self.ownership.san = san
        self.sealing.san = san
        self.emcall.san = san
        self.ems.san = san
        self.crypto.san = san
        self.obs.flightrec.san = san
        codec.set_sanitizer(san)
        if self.shard_pool is not None:
            self.shard_pool.san = san
            for shard in self.shard_pool.shards[1:]:
                shard.mailbox.san = san
                shard.pool.san = san
                shard.ownership.san = san
                shard.runtime.san = san
        # The manufacturing roots are the taint sources everything else
        # derives from (EFuse.read stays readable after lock()).
        san.register_secret(self.efuse.read("EK"), "efuse-EK")
        san.register_secret(self.efuse.read("SK"), "efuse-SK")
        # Only sanitized systems grow the summary schema; the default
        # key set stays pinned (tests/core/test_stats.py).
        self.obs.metrics.register_source("sanitize", san.stats_snapshot)
        return self

    # -- conveniences ----------------------------------------------------------------------

    @property
    def primary_core(self) -> CSCore:
        return self.cores[0]

    @property
    def ems_runtimes(self) -> list[EMSRuntime]:
        """Every EMS runtime on the platform (one per shard)."""
        if self.shard_pool is None:
            return [self.ems]
        return [shard.runtime for shard in self.shard_pool.shards]

    def ems_requests_served(self) -> int:
        """Fleet-wide served-request count (shard-aware ``stats.served``)."""
        return sum(runtime.stats.served for runtime in self.ems_runtimes)

    def stats_summary(self) -> dict[str, dict]:
        """Aggregate counters from every subsystem, for diagnostics.

        Reads through the metrics registry's federated sources; the key
        schema is stable (tests/core/test_stats.py pins it).
        """
        return self.obs.metrics.federated_snapshot()

    def certificate_authority(self) -> CertificateAuthority:
        """The trusted CA's view of this device (remote-attestation side).

        Models the manufacturing-time registration of the device with the
        CA: the CA learns the platform key, the AK, and the golden
        platform measurement.
        """
        return CertificateAuthority(
            platform_key=self.keys.platform_signing_key(),
            attestation_key=self.keys.attestation_key(),
            expected_platform=self.boot_report.platform_measurement)
