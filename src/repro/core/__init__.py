"""The assembled HyperTEE system: configuration, control structures, the
SoC wiring (:class:`~repro.core.system.HyperTEESystem`), and the public
user API (:mod:`repro.core.api`).

``HyperTEESystem`` and the API facade are exposed lazily: the EMS modules
import :mod:`repro.core.enclave`, and an eager import here would close an
import cycle through :mod:`repro.core.system`.
"""

from repro.core.config import SystemConfig
from repro.core.enclave import EnclaveConfig, EnclaveControl

__all__ = ["SystemConfig", "EnclaveConfig", "EnclaveControl",
           "HyperTEESystem", "HyperTEE"]


def __getattr__(name: str):
    if name == "HyperTEESystem":
        from repro.core.system import HyperTEESystem

        return HyperTEESystem
    if name == "HyperTEE":
        from repro.core.api import HyperTEE

        return HyperTEE
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
