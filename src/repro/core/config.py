"""System configuration (paper Table III + Section VII-A scenarios).

:class:`SystemConfig` selects the CS/EMS core configurations and the
security-mechanism toggles the evaluation sweeps:

* ``ems_core`` — "weak" / "medium" / "strong" (Fig. 7);
* ``crypto`` — "engine" / "software" (Table IV);
* ``memory_encryption`` / ``integrity`` — the *M_encrypt* scenario knob
  (Fig. 8b, Fig. 9);
* ``bitmap_checking`` — the *Bitmap* scenario knob (Fig. 10);
* ``engine`` — "reference" (the scalar interpreter, default) or "fast"
  (the numpy-backed kernel of :mod:`repro.core.fastkernel`; bit-for-bit
  identical behaviour, differentially pinned).

Functional protections stay on regardless of the timing knobs unless a
knob is explicitly about functionality (``bitmap_checking`` off removes
the PTW check entirely — used by ablation benches and baselines).
"""

from __future__ import annotations

import dataclasses

from repro.common.constants import POOL_INITIAL_PAGES
from repro.errors import ConfigurationError
from repro.hw.core import EMS_CONFIGS


@dataclasses.dataclass(frozen=True)
class SystemConfig:
    """Parameters of one modelled SoC instance."""

    cs_memory_mb: int = 64
    ems_memory_mb: int = 8
    cs_cores: int = 1
    ems_core: str = "medium"
    ems_cores: int = 1
    crypto: str = "engine"
    memory_encryption: bool = True
    integrity: bool = True
    bitmap_checking: bool = True
    pool_initial_pages: int = POOL_INITIAL_PAGES
    seed: int = 0x1EE7
    engine: str = "reference"
    ems_shards: int = 1

    def __post_init__(self) -> None:
        if self.cs_memory_mb < 4 or self.ems_memory_mb < 1:
            raise ConfigurationError("memory sizes too small to boot")
        if self.cs_cores < 1 or self.ems_cores < 1:
            raise ConfigurationError("need at least one core per subsystem")
        if self.ems_core not in EMS_CONFIGS:
            raise ConfigurationError(
                f"unknown EMS core {self.ems_core!r}; "
                f"expected one of {sorted(EMS_CONFIGS)}")
        if self.crypto not in ("engine", "software"):
            raise ConfigurationError("crypto must be 'engine' or 'software'")
        if self.engine not in ("reference", "fast"):
            raise ConfigurationError(
                "engine must be 'reference' or 'fast'")
        if self.ems_shards < 1:
            raise ConfigurationError(
                f"ems_shards must be >= 1, got {self.ems_shards}")
