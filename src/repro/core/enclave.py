"""Enclave configuration and control structures.

:class:`EnclaveConfig` is the model's analogue of the configuration file
in the HyperTEE programming model (paper Fig. 2): it declares the
enclave's resource requirements — heap and stack sizes, shared-memory
budget — before compilation.

:class:`EnclaveControl` is the EMS-private control structure: lifecycle
state, measurement, KeyID, the dedicated page table, and the virtual
address-space cursors. It lives only inside the EMS; CS software never
holds a reference.
"""

from __future__ import annotations

import dataclasses

from repro.common.constants import PAGE_SHIFT, PAGE_SIZE
from repro.common.types import EnclaveState
from repro.errors import ConfigurationError
from repro.hw.page_table import PageTable

#: Enclave virtual layout (VPNs). Code at 1 MiB, heap at 256 MiB, the
#: HostApp transfer buffer at 768 MiB, stack below 2 GiB growing down,
#: shared-memory attachments at 1 GiB.
CODE_BASE_VPN = 0x100
HEAP_BASE_VPN = 0x10000
HOST_SHM_BASE_VPN = 0x30000
SHM_BASE_VPN = 0x40000
STACK_TOP_VPN = 0x7FFFF


@dataclasses.dataclass(frozen=True)
class EnclaveConfig:
    """Declared resource requirements (the Fig. 2 configuration file)."""

    name: str = "enclave"
    code_pages: int = 4
    stack_pages: int = 4
    heap_pages_max: int = 1024
    shared_pages_max: int = 64
    #: Size of the HostApp<->enclave transfer buffer (paper Section IV-A:
    #: "the size of the shared memory can be declared in the
    #: configuration file"). Zero means no transfer buffer.
    host_shared_pages: int = 0

    def __post_init__(self) -> None:
        if self.code_pages < 1:
            raise ConfigurationError("an enclave needs at least one code page")
        if self.stack_pages < 1:
            raise ConfigurationError("an enclave needs at least one stack page")
        if self.heap_pages_max < 0 or self.shared_pages_max < 0:
            raise ConfigurationError("resource maxima cannot be negative")

    @property
    def static_pages(self) -> int:
        """Pages allocated statically at ECREATE (code is EADDed into
        this reservation; stack is mapped zeroed)."""
        return self.code_pages + self.stack_pages


@dataclasses.dataclass
class EnclaveControl:
    """EMS-private per-enclave control structure."""

    enclave_id: int
    config: EnclaveConfig
    keyid: int
    memory_key: bytes
    page_table: PageTable
    state: EnclaveState = EnclaveState.CREATED
    measurement: bytes | None = None
    #: All private frames owned by the enclave (code, stack, heap, table).
    frames: list[int] = dataclasses.field(default_factory=list)
    #: (vpn, content-hash) pairs accumulated by EADD; EMEAS folds them.
    added_pages: list[tuple[int, bytes]] = dataclasses.field(default_factory=list)
    code_next_vpn: int = CODE_BASE_VPN
    heap_next_vpn: int = HEAP_BASE_VPN
    shm_next_vpn: int = SHM_BASE_VPN
    #: Heap regions by base vaddr for EFREE.
    heap_regions: dict[int, list[int]] = dataclasses.field(default_factory=dict)
    #: shm_id -> attach vaddr for this enclave.
    shm_attachments: dict[int, int] = dataclasses.field(default_factory=dict)
    #: Frames of the HostApp transfer buffer (host-visible, HOST_KEYID).
    host_shared_frames: list[int] = dataclasses.field(default_factory=list)
    #: Context-switch counter (EENTER + ERESUME), feeds Fig. 11 analysis.
    entries: int = 0

    @property
    def heap_limit_vpn(self) -> int:
        return HEAP_BASE_VPN + self.config.heap_pages_max

    @property
    def entry_vaddr(self) -> int:
        return CODE_BASE_VPN << PAGE_SHIFT

    def heap_pages_used(self) -> int:
        """Heap pages consumed so far (budget accounting)."""
        return self.heap_next_vpn - HEAP_BASE_VPN

    def assert_state(self, *allowed: EnclaveState) -> None:
        """Raise EnclaveStateError unless in one of ``allowed``."""
        if self.state not in allowed:
            from repro.errors import EnclaveStateError

            raise EnclaveStateError(
                f"enclave {self.enclave_id} is {self.state.value}; "
                f"needs {' or '.join(s.value for s in allowed)}")

    def image_bytes(self) -> int:
        """Total bytes EADDed so far (what EMEAS hashes)."""
        return len(self.added_pages) * PAGE_SIZE
