"""Encrypted CVM image deployment.

A VM owner never ships plaintext: the image is encrypted under an
owner-chosen image key, and the image key is released only to a platform
the owner has *remotely attested* (Section IX: "deployment of encrypted
VM images"). The flow:

1. owner builds :class:`CVMImage` (ciphertext + plaintext measurement);
2. owner challenges the platform with an ephemeral DH value;
3. the EMS answers with its own DH value and a platform certificate
   binding that value (same SIGMA shape as enclave remote attestation);
4. owner verifies the certificate against the CA, derives the channel
   key, and wraps the image key under it.
"""

from __future__ import annotations

import dataclasses

from repro.common.constants import PAGE_SIZE
from repro.crypto.cipher import KeystreamCipher
from repro.crypto.dh import DiffieHellman
from repro.crypto.hashes import keyed_mac, measure
from repro.ems.attestation import Certificate, CertificateAuthority
from repro.errors import AttestationError


@dataclasses.dataclass(frozen=True)
class CVMImage:
    """An encrypted VM image as it travels through untrusted storage."""

    name: str
    ciphertext: bytes
    #: Measurement of the *plaintext* image — what attestation reports.
    measurement: bytes
    pages: int


@dataclasses.dataclass(frozen=True)
class WrappedImageKey:
    """The image key, wrapped under an attested channel key."""

    wrapped: bytes
    tag: bytes


class VMOwner:
    """The tenant deploying a confidential VM."""

    def __init__(self, name: str, entropy) -> None:
        self.name = name
        self._entropy = entropy
        self._image_keys: dict[str, bytes] = {}
        self._dh: DiffieHellman | None = None

    def build_image(self, name: str, content: bytes) -> CVMImage:
        """Encrypt a VM image under a fresh owner-held image key."""
        key = self._entropy(32)
        self._image_keys[name] = key
        padded = content.ljust(
            ((len(content) + PAGE_SIZE - 1) // PAGE_SIZE) * PAGE_SIZE, b"\0")
        return CVMImage(
            name=name,
            ciphertext=KeystreamCipher(key).encrypt(padded),
            measurement=measure(padded),
            pages=len(padded) // PAGE_SIZE)

    def challenge(self) -> int:
        """Step 2: the owner's ephemeral DH public value."""
        self._dh = DiffieHellman.from_entropy(self._entropy)
        return self._dh.public

    def release_key(self, image_name: str, ca: CertificateAuthority,
                    ems_public: int,
                    platform_cert: Certificate) -> WrappedImageKey:
        """Steps 4: verify the platform, wrap the image key.

        Raises :class:`AttestationError` when the platform certificate
        does not verify — the key is never released to an unattested
        platform.
        """
        if self._dh is None:
            raise AttestationError("challenge() must run before release_key()")
        if not ca.verify_platform_binding(platform_cert, ems_public):
            raise AttestationError("platform attestation failed; "
                                   "image key not released")
        channel = self._dh.shared_key(ems_public)
        key = self._image_keys[image_name]
        wrapped = KeystreamCipher(keyed_mac(channel, b"wrap")).encrypt(key)
        tag = keyed_mac(keyed_mac(channel, b"wrap-mac"), wrapped)
        return WrappedImageKey(wrapped=wrapped, tag=tag)
