"""VM-level TEE support (paper Section IX, "Support for VM-level TEEs").

The paper's discussion: HyperTEE naturally extends to confidential VMs
(CVMs) by adding dedicated primitives in the EMS — lifecycle management
of CVMs from encrypted VM images, CVM memory isolation and encryption,
protected shared memory between CVMs, snapshot/save/restore protected by
AES + a Merkle tree whose key and root hash live in EMS private memory,
and migration over a channel established by remote attestation between
the source and destination EMS.

This subpackage implements that design: :mod:`repro.cvm.image` (encrypted
image deployment), :mod:`repro.cvm.manager` (the EMS-side CVM manager),
and :mod:`repro.cvm.migration` (the attested migration protocol).
"""

from repro.cvm.image import CVMImage, VMOwner
from repro.cvm.manager import CVMManager, CVMSnapshot
from repro.cvm.migration import migrate

__all__ = ["CVMImage", "VMOwner", "CVMManager", "CVMSnapshot", "migrate"]
