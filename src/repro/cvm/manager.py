"""The EMS-side CVM manager (paper Section IX).

Adds the "dedicated primitives" the paper sketches for VM-level TEEs:

* **lifecycle** — deploy an encrypted image to an attested platform,
  decrypt and measure it inside the EMS, place it in pool-backed guest
  memory under a dedicated KeyID;
* **memory** — guest pages are enclave memory (bitmap-marked pool frames,
  ownership-tracked, encrypted), with guest-page read/write paths;
* **CVM-to-CVM shared memory** — EMS-assigned region + key, mirroring
  the enclave shared-memory design;
* **snapshot / restore** — pages encrypted under a per-snapshot key and
  hashed into a Merkle tree; the key and root hash stay in EMS private
  state, the ciphertext goes to untrusted storage; restore verifies every
  page before it touches guest memory.
"""

from __future__ import annotations

import dataclasses
import itertools

from repro.common.constants import PAGE_SHIFT, PAGE_SIZE
from repro.common.rng import DeterministicRng
from repro.crypto.cipher import KeystreamCipher
from repro.crypto.dh import DiffieHellman
from repro.crypto.hashes import constant_time_equal, keyed_mac, measure
from repro.crypto.merkle import MerkleTree
from repro.cvm.image import CVMImage, WrappedImageKey
from repro.ems.attestation import AttestationService, Certificate
from repro.ems.key_mgmt import KeyManager
from repro.ems.lifecycle import EnclaveManager
from repro.ems.ownership import Owner
from repro.errors import AttestationError, EnclaveStateError, SanityCheckError
from repro.hw.memory import PhysicalMemory


@dataclasses.dataclass
class CVMControl:
    """EMS-private control structure of one confidential VM."""

    cvm_id: int
    name: str
    keyid: int
    memory_key: bytes
    measurement: bytes
    #: guest page number -> physical frame.
    guest_pages: dict[int, int]
    state: str = "running"   # running | snapshotted | destroyed
    #: guest page number -> shared-region keyid, for CVM-shared pages.
    shared_keyids: dict[int, int] = dataclasses.field(default_factory=dict)


@dataclasses.dataclass(frozen=True)
class CVMSnapshot:
    """What untrusted storage holds: ciphertext pages only.

    The decryption key and the Merkle root live in EMS private state,
    indexed by ``snapshot_id``.
    """

    snapshot_id: int
    name: str
    encrypted_pages: tuple[bytes, ...]
    measurement: bytes


@dataclasses.dataclass(frozen=True)
class SnapshotSecrets:
    """EMS-private per-snapshot material (never leaves the EMS except
    wrapped under a migration channel key)."""

    key: bytes
    merkle_root: bytes


class CVMManager:
    """CVM lifecycle / memory / snapshot services on the EMS."""

    def __init__(self, enclaves: EnclaveManager, keys: KeyManager,
                 attestation: AttestationService, memory: PhysicalMemory,
                 crypto, rng: DeterministicRng) -> None:
        self._enclaves = enclaves    # reuses pool/ownership/bitmap plumbing
        self._keys = keys
        self._attestation = attestation
        self._memory = memory
        self._crypto = crypto
        self._rng = rng
        self._ids = itertools.count(1)
        self._snapshot_ids = itertools.count(1)
        self.cvms: dict[int, CVMControl] = {}
        #: snapshot_id -> secrets; EMS-private.
        self._snapshot_secrets: dict[int, SnapshotSecrets] = {}
        #: shared-region owner tag -> (frames, keyid, participant ids).
        self._shared_regions: dict[int, tuple[list[int], int, set[int]]] = {}
        self._dh: DiffieHellman | None = None

    # -- deployment (attested image-key release) --------------------------------------

    def platform_challenge(self, owner_public: int) -> tuple[int, Certificate]:
        """Answer a deployment challenge: EMS DH value + bound platform cert."""
        del owner_public  # the binding covers our value; owner checks theirs
        self._dh = DiffieHellman.from_entropy(
            lambda n: self._rng.randbytes(n, stream="cvm-dh"))
        platform = self._attestation.platform_measurement
        if platform is None:
            raise AttestationError("platform not measured")
        signature, _ = self._crypto.sign(
            self._keys.platform_signing_key(),
            b"platform-binding" + platform
            + self._dh.public.to_bytes(256, "little"))
        return self._dh.public, Certificate("platform", platform, b"",
                                            signature)

    def _unwrap_image_key(self, owner_public: int,
                          wrapped: WrappedImageKey) -> bytes:
        if self._dh is None:
            raise AttestationError("no deployment exchange in progress")
        channel = self._dh.shared_key(owner_public)
        expected_tag = keyed_mac(keyed_mac(channel, b"wrap-mac"),
                                 wrapped.wrapped)
        if not constant_time_equal(expected_tag, wrapped.tag):
            raise AttestationError("wrapped image key failed authentication")
        return KeystreamCipher(keyed_mac(channel, b"wrap")).decrypt(
            wrapped.wrapped)

    def cvm_create(self, image: CVMImage, wrapped_key: WrappedImageKey,
                   owner_public: int) -> int:
        """Decrypt, measure, and place an encrypted VM image."""
        image_key = self._unwrap_image_key(owner_public, wrapped_key)
        plaintext = KeystreamCipher(image_key).decrypt(image.ciphertext)
        measurement = measure(plaintext)
        if measurement != image.measurement:
            raise AttestationError(
                "decrypted image does not match its declared measurement")

        cvm_id = next(self._ids)
        memory_key = self._keys.enclave_memory_key(
            measure(b"cvm", measurement, cvm_id.to_bytes(8, "little")))
        keyid = self._keys.allocate_keyid(memory_key)

        flush: list[int] = []
        frames = self._enclaves.grant_frames(
            image.pages, Owner.ems(f"cvm{cvm_id}"), flush)
        guest_pages: dict[int, int] = {}
        for gpn, frame in enumerate(frames):
            page = plaintext[gpn * PAGE_SIZE:(gpn + 1) * PAGE_SIZE]
            self._memory.write_frame(frame, page, keyid)
            guest_pages[gpn] = frame

        self.cvms[cvm_id] = CVMControl(
            cvm_id=cvm_id, name=image.name, keyid=keyid,
            memory_key=memory_key, measurement=measurement,
            guest_pages=guest_pages)
        return cvm_id

    # -- guest memory ------------------------------------------------------------------------

    def _control(self, cvm_id: int) -> CVMControl:
        control = self.cvms.get(cvm_id)
        if control is None or control.state == "destroyed":
            raise SanityCheckError(f"unknown or destroyed CVM {cvm_id}")
        return control

    def guest_read(self, cvm_id: int, gpa: int, length: int) -> bytes:
        """Read CVM guest memory at a guest-physical address."""
        control = self._control(cvm_id)
        gpn, offset = gpa >> PAGE_SHIFT, gpa & (PAGE_SIZE - 1)
        frame = control.guest_pages.get(gpn)
        if frame is None or offset + length > PAGE_SIZE:
            raise SanityCheckError(f"guest access beyond CVM memory: {gpa:#x}")
        return self._memory.read((frame << PAGE_SHIFT) + offset, length,
                                 control.keyid)

    def guest_write(self, cvm_id: int, gpa: int, data: bytes) -> None:
        """Write CVM guest memory at a guest-physical address."""
        control = self._control(cvm_id)
        gpn, offset = gpa >> PAGE_SHIFT, gpa & (PAGE_SIZE - 1)
        frame = control.guest_pages.get(gpn)
        if frame is None or offset + len(data) > PAGE_SIZE:
            raise SanityCheckError(f"guest access beyond CVM memory: {gpa:#x}")
        self._memory.write((frame << PAGE_SHIFT) + offset, data,
                           control.keyid)

    def guest_alloc(self, cvm_id: int, pages: int) -> int:
        """Grow a CVM's memory by ``pages``; returns the first new GPN."""
        control = self._control(cvm_id)
        flush: list[int] = []
        frames = self._enclaves.grant_frames(
            pages, Owner.ems(f"cvm{control.cvm_id}"), flush)
        self._enclaves.zero_under(frames, control.keyid)
        first = max(control.guest_pages, default=-1) + 1
        for i, frame in enumerate(frames):
            control.guest_pages[first + i] = frame
        return first

    # -- CVM-to-CVM shared memory -----------------------------------------------------------------

    def share_pages(self, sender_id: int, receiver_id: int,
                    pages: int) -> tuple[int, int]:
        """Allocate a protected region visible to both CVMs.

        Returns (sender first GPN, receiver first GPN). The region gets
        its own key, exactly like enclave shared memory (Section V).
        """
        sender = self._control(sender_id)
        receiver = self._control(receiver_id)
        shared_key = self._keys.shared_memory_key(
            0x10000 + sender_id, 0x10000 + receiver_id)
        keyid = self._keys.allocate_keyid(shared_key)

        region_tag = 0x10000 + sender_id * 1000 + receiver_id
        flush: list[int] = []
        frames = self._enclaves.grant_frames(
            pages, Owner.shared(region_tag), flush)
        self._enclaves.zero_under(frames, keyid)
        self._shared_regions[region_tag] = (frames, keyid,
                                            {sender_id, receiver_id})

        # Both CVMs see the region at fresh guest page numbers, but the
        # frames carry the *shared* keyid: the guest paths must use it.
        sender_base = max(sender.guest_pages, default=-1) + 1
        receiver_base = max(receiver.guest_pages, default=-1) + 1
        for i, frame in enumerate(frames):
            sender.guest_pages[sender_base + i] = frame
            receiver.guest_pages[receiver_base + i] = frame
        # Shared frames are tracked per region key, not per CVM key; the
        # mapping lets guest accesses pick the right key.
        for control, base in ((sender, sender_base), (receiver, receiver_base)):
            for i in range(pages):
                control.shared_keyids[base + i] = keyid
        return sender_base, receiver_base

    def shared_read(self, cvm_id: int, gpn: int, length: int) -> bytes:
        """Read a CVM-shared page (under the region key)."""
        control = self._control(cvm_id)
        keyid = control.shared_keyids.get(gpn)
        if keyid is None:
            raise SanityCheckError(f"GPN {gpn} is not a shared page")
        frame = control.guest_pages[gpn]
        return self._memory.read(frame << PAGE_SHIFT, length, keyid)

    def shared_write(self, cvm_id: int, gpn: int, data: bytes) -> None:
        """Write a CVM-shared page (under the region key)."""
        control = self._control(cvm_id)
        keyid = control.shared_keyids.get(gpn)
        if keyid is None:
            raise SanityCheckError(f"GPN {gpn} is not a shared page")
        frame = control.guest_pages[gpn]
        self._memory.write(frame << PAGE_SHIFT, data, keyid)

    # -- snapshot / restore -------------------------------------------------------------------------

    def snapshot(self, cvm_id: int) -> CVMSnapshot:
        """Encrypt guest memory and record (key, Merkle root) privately."""
        control = self._control(cvm_id)
        snapshot_key = self._rng.randbytes(32, stream="cvm-snap")
        encrypted: list[bytes] = []
        for gpn in sorted(control.guest_pages):
            frame = control.guest_pages[gpn]
            keyid = control.shared_keyids.get(gpn, control.keyid)
            plaintext = self._memory.read(frame << PAGE_SHIFT, PAGE_SIZE,
                                          keyid)
            ciphertext, _ = self._crypto.bulk_encrypt(snapshot_key, plaintext,
                                                      tweak=gpn)
            encrypted.append(ciphertext)

        tree = MerkleTree(encrypted)
        snapshot_id = next(self._snapshot_ids)
        self._snapshot_secrets[snapshot_id] = SnapshotSecrets(
            key=snapshot_key, merkle_root=tree.root)
        control.state = "snapshotted"
        return CVMSnapshot(snapshot_id=snapshot_id, name=control.name,
                           encrypted_pages=tuple(encrypted),
                           measurement=control.measurement)

    def restore(self, snapshot: CVMSnapshot,
                secrets: SnapshotSecrets | None = None) -> int:
        """Verify a snapshot against its Merkle root and re-instantiate.

        ``secrets`` defaults to this EMS's private record (local restore);
        migration passes the secrets received over the attested channel.
        """
        if secrets is None:
            secrets = self._snapshot_secrets.get(snapshot.snapshot_id)
            if secrets is None:
                raise SanityCheckError(
                    f"no secrets for snapshot {snapshot.snapshot_id}")

        tree = MerkleTree(list(snapshot.encrypted_pages))
        if tree.root != secrets.merkle_root:
            raise EnclaveStateError(
                "snapshot failed Merkle verification — tampered in storage")

        plaintext_pages = []
        for gpn, ciphertext in enumerate(snapshot.encrypted_pages):
            page, _ = self._crypto.bulk_decrypt(secrets.key, ciphertext,
                                                tweak=gpn)
            plaintext_pages.append(page)

        cvm_id = next(self._ids)
        memory_key = self._keys.enclave_memory_key(
            measure(b"cvm", snapshot.measurement,
                    cvm_id.to_bytes(8, "little")))
        keyid = self._keys.allocate_keyid(memory_key)
        flush: list[int] = []
        frames = self._enclaves.grant_frames(
            len(plaintext_pages), Owner.ems(f"cvm{cvm_id}"), flush)
        guest_pages = {}
        for gpn, (frame, page) in enumerate(zip(frames, plaintext_pages)):
            self._memory.write_frame(frame, page, keyid)
            guest_pages[gpn] = frame

        self.cvms[cvm_id] = CVMControl(
            cvm_id=cvm_id, name=snapshot.name, keyid=keyid,
            memory_key=memory_key, measurement=snapshot.measurement,
            guest_pages=guest_pages)
        return cvm_id

    def export_secrets(self, snapshot_id: int) -> SnapshotSecrets:
        """Migration helper: the EMS-private snapshot material."""
        secrets = self._snapshot_secrets.get(snapshot_id)
        if secrets is None:
            raise SanityCheckError(f"no secrets for snapshot {snapshot_id}")
        return secrets

    # -- teardown ------------------------------------------------------------------------------------

    def cvm_destroy(self, cvm_id: int) -> None:
        """Zero and reclaim guest memory; release the KeyID.

        Shared regions are reclaimed when their *last* participant is
        destroyed — earlier, the surviving CVM still uses the frames.
        """
        control = self._control(cvm_id)
        owner = Owner.ems(f"cvm{cvm_id}")
        own_frames = self._enclaves.ownership.frames_owned_by(owner)
        flush: list[int] = []
        self._enclaves.reclaim_frames(own_frames, owner, flush)
        for region_tag in list(self._shared_regions):
            frames, keyid, participants = self._shared_regions[region_tag]
            if cvm_id not in participants:
                continue
            participants.discard(cvm_id)
            if not participants:
                self._enclaves.reclaim_frames(
                    frames, Owner.shared(region_tag), flush)
                self._keys.release_keyid(keyid)
                del self._shared_regions[region_tag]
        self._keys.release_keyid(control.keyid)
        control.state = "destroyed"
        control.guest_pages.clear()
        control.shared_keyids.clear()
