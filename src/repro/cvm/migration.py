"""CVM migration between two HyperTEE platforms (paper Section IX).

The paper's sketch: the source and destination EMS remote-attest each
other, establish an encrypted channel, transfer the CVM encryption key
and Merkle root hash over it, then move the encrypted CVM. The snapshot
ciphertext itself travels over untrusted transport — only the wrapped
secrets need the attested channel.
"""

from __future__ import annotations

import dataclasses

from repro.crypto.cipher import KeystreamCipher
from repro.crypto.hashes import constant_time_equal, keyed_mac
from repro.cvm.manager import CVMSnapshot, SnapshotSecrets
from repro.errors import AttestationError


@dataclasses.dataclass(frozen=True)
class WrappedSecrets:
    """Snapshot key + Merkle root, sealed under the channel key."""

    wrapped: bytes
    tag: bytes


def _wrap(channel: bytes, secrets: SnapshotSecrets) -> WrappedSecrets:
    payload = secrets.key + secrets.merkle_root
    wrapped = KeystreamCipher(keyed_mac(channel, b"migrate")).encrypt(payload)
    return WrappedSecrets(
        wrapped=wrapped,
        tag=keyed_mac(keyed_mac(channel, b"migrate-mac"), wrapped))


def _unwrap(channel: bytes, sealed: WrappedSecrets) -> SnapshotSecrets:
    expected = keyed_mac(keyed_mac(channel, b"migrate-mac"), sealed.wrapped)
    if not constant_time_equal(expected, sealed.tag):
        raise AttestationError("migration secrets failed authentication")
    payload = KeystreamCipher(keyed_mac(channel, b"migrate")).decrypt(
        sealed.wrapped)
    return SnapshotSecrets(key=payload[:32], merkle_root=payload[32:])


def migrate(source, destination, cvm_id: int) -> int:
    """Move a CVM from ``source`` to ``destination`` (HyperTEESystems).

    Returns the CVM's id on the destination. Raises
    :class:`AttestationError` if either platform fails attestation, and
    Merkle verification failures surface from the destination's restore.
    The source CVM is destroyed only after the destination restores.
    """
    # 1. Mutual remote attestation with DH-bound platform certificates.
    dest_public, dest_cert = destination.cvm.platform_challenge(0)
    source_public, source_cert = source.cvm.platform_challenge(0)

    if not destination.certificate_authority().verify_platform_binding(
            dest_cert, dest_public):
        raise AttestationError("destination platform failed attestation")
    if not source.certificate_authority().verify_platform_binding(
            source_cert, source_public):
        raise AttestationError("source platform failed attestation")

    channel_source = source.cvm._dh.shared_key(dest_public)
    channel_dest = destination.cvm._dh.shared_key(source_public)

    # 2. Source snapshots the CVM and wraps the secrets for the channel.
    snapshot: CVMSnapshot = source.cvm.snapshot(cvm_id)
    secrets = source.cvm.export_secrets(snapshot.snapshot_id)
    sealed = _wrap(channel_source, secrets)

    # 3. Ciphertext travels untrusted; secrets unwrap only on the
    #    attested destination, which verifies the Merkle root on restore.
    restored_id = destination.cvm.restore(
        snapshot, _unwrap(channel_dest, sealed))

    # 4. Source side tears down its copy.
    source.cvm.cvm_destroy(cvm_id)
    return restored_id
