"""Deterministic fault injection for the HyperTEE model.

The paper's decoupling argument (Section III-C) depends on the CS<->EMS
mailbox path staying correct under degraded conditions. This package
provides the adversarial weather: a declarative :class:`FaultPlan`
naming *where* (a fault point), *how often* (a probability or a burst),
and *how hard* (a magnitude) things break, and a :class:`FaultInjector`
that rolls those dice from its own :class:`~repro.common.rng.DeterministicRng`
so every chaos run replays bit-for-bit from its seed.

Design rules:

* **Null by default** — subsystems hold a ``faults`` attribute that is
  ``None`` until :meth:`repro.core.system.HyperTEESystem.enable_fault_injection`
  attaches an injector. A detached (or empty-plan) injector draws no
  randomness and perturbs nothing; ``tests/obs/test_noninterference.py``
  pins that the no-fault configuration is bit-identical to a plain run.
* **Separate entropy** — the injector seeds its own RNG from the plan,
  never the model RNG, so enabling faults does not shift the model's
  pool thresholds, swap picks, or jitter draws.
* **Observable** — every fired fault flows through
  :meth:`repro.obs.probes.Observability.record_fault`, appearing in the
  metrics export and as an instant span on the ``faults`` Perfetto track.

See ``docs/fault_injection.md`` for the fault-point catalog and the plan
schema.
"""

from repro.faults.injector import FaultInjector, FaultStats
from repro.faults.plan import FAULT_POINTS, FaultPlan, FaultRule

__all__ = [
    "FAULT_POINTS",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "FaultStats",
]
