"""The declarative fault schedule: :class:`FaultRule` and :class:`FaultPlan`.

A plan is pure data — frozen, serializable, hashable — so chaos tests can
sweep seeded plans and every run is reproducible from ``(plan, seed)``
alone. The injector (:mod:`repro.faults.injector`) interprets it.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Iterable

from repro.errors import FaultConfigError

#: The fault-point catalog: every name an injector will ever consult,
#: with the meaning of the rule's ``magnitude`` at that point.
FAULT_POINTS: dict[str, str] = {
    # -- mailbox (hw/mailbox.py) -------------------------------------------
    "mailbox.request.drop":
        "request packet vanishes in flight (magnitude unused)",
    "mailbox.request.corrupt":
        "request packet arrives CRC-broken; the EMS Rx edge discards it",
    "mailbox.request.duplicate":
        "request packet is delivered twice; the Rx sequence check drops "
        "the second copy",
    "mailbox.response.drop":
        "response packet vanishes in flight (magnitude unused)",
    "mailbox.response.corrupt":
        "response packet arrives CRC-broken; EMCall's Rx edge discards it",
    "mailbox.response.duplicate":
        "response packet is delivered twice; the duplicate is discarded",
    "mailbox.queue_full":
        "the request queue reports full for the next `magnitude` pushes "
        "(a backpressure burst)",
    "mailbox.batch.element_corrupt":
        "one element inside a batch envelope arrives CRC-broken; the EMS "
        "Rx edge answers TRANSIENT for that element alone (its handler "
        "never runs) so only it is replayed (magnitude unused)",
    # -- EMS runtime (ems/runtime.py) --------------------------------------
    "ems.handler.exception":
        "the handler crashes before touching state; the runtime answers "
        "TRANSIENT (magnitude unused)",
    "ems.handler.stall":
        "the handler takes `magnitude` extra EMS cycles and its response "
        "is posted late (deferred pump rounds)",
    "ems.core.pause":
        "the EMS core stops pumping for `magnitude` pump rounds",
    # -- EMS shard pool (ems/shardpool.py) ---------------------------------
    "ems.shard.fail":
        "one EMS shard stops pumping for `magnitude` pump rounds while "
        "its siblings keep serving (a shard outage)",
    "ems.transfer.interrupt":
        "a cross-shard ownership transfer aborts between prepare and "
        "commit; no state moves and the transfer may be retried "
        "(magnitude unused)",
    # -- fabric / iHub transfer path (hw/fabric.py) ------------------------
    "fabric.latency":
        "one mailbox transfer leg takes `magnitude` extra CS cycles",
}


@dataclasses.dataclass(frozen=True)
class FaultRule:
    """One line of adversarial weather at one fault point.

    ``probability`` is the per-opportunity chance of firing; ``after``
    skips the first N opportunities (so boot can complete cleanly);
    ``count`` caps total firings (``None`` = unlimited); ``magnitude``
    is point-specific (cycles, pump rounds, or burst length — see
    :data:`FAULT_POINTS`).
    """

    point: str
    probability: float = 1.0
    count: int | None = None
    after: int = 0
    magnitude: int = 0

    def __post_init__(self) -> None:
        if self.point not in FAULT_POINTS:
            known = ", ".join(sorted(FAULT_POINTS))
            raise FaultConfigError(
                f"unknown fault point {self.point!r}; known points: {known}")
        if not 0.0 <= self.probability <= 1.0:
            raise FaultConfigError(
                f"{self.point}: probability must be in [0, 1], "
                f"got {self.probability}")
        if self.count is not None and self.count < 0:
            raise FaultConfigError(f"{self.point}: count must be >= 0")
        if self.after < 0:
            raise FaultConfigError(f"{self.point}: after must be >= 0")
        if self.magnitude < 0:
            raise FaultConfigError(f"{self.point}: magnitude must be >= 0")

    def to_dict(self) -> dict[str, Any]:
        """Plain-data form (the schema in docs/fault_injection.md)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FaultRule":
        """Inverse of :meth:`to_dict`; validates on construction."""
        unknown = set(data) - {f.name for f in dataclasses.fields(cls)}
        if unknown:
            raise FaultConfigError(f"unknown FaultRule fields: {sorted(unknown)}")
        return cls(**data)


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """A seed plus the full rule schedule for one chaos run."""

    seed: int = 0xFA017
    rules: tuple[FaultRule, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(self.rules))

    @classmethod
    def empty(cls, seed: int = 0xFA017) -> "FaultPlan":
        """A plan that injects nothing (the non-interference baseline)."""
        return cls(seed=seed, rules=())

    @classmethod
    def build(cls, rules: Iterable[FaultRule | dict],
              seed: int = 0xFA017) -> "FaultPlan":
        """Build from rules or rule dicts (test/CLI convenience)."""
        normalized = tuple(
            rule if isinstance(rule, FaultRule) else FaultRule.from_dict(rule)
            for rule in rules)
        return cls(seed=seed, rules=normalized)

    def rules_for(self, point: str) -> tuple[FaultRule, ...]:
        """Every rule targeting ``point``, in plan order."""
        return tuple(rule for rule in self.rules if rule.point == point)

    @property
    def is_empty(self) -> bool:
        return not self.rules

    def to_dict(self) -> dict[str, Any]:
        """Plain-data form, JSON-serializable."""
        return {"seed": self.seed,
                "rules": [rule.to_dict() for rule in self.rules]}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FaultPlan":
        """Inverse of :meth:`to_dict`."""
        return cls.build(data.get("rules", ()), seed=data.get("seed", 0xFA017))
