"""The dice-roller: :class:`FaultInjector` interprets a :class:`FaultPlan`.

Subsystems consult the injector at named fault points::

    if self.faults is not None and self.faults.fires("mailbox.request.drop"):
        ...  # the packet vanishes

Each consultation is an *opportunity*; a rule fires when its ``after``
window has passed, its ``count`` budget remains, and a draw from the
injector's own per-point RNG stream lands under ``probability``. The
injector draws from a private :class:`~repro.common.rng.DeterministicRng`
seeded by the plan, so chaos runs replay exactly and the model RNG is
never perturbed. A detached injector (``faults is None``) or an empty
plan costs nothing and draws nothing.
"""

from __future__ import annotations

import dataclasses

from repro.common.rng import DeterministicRng
from repro.faults.plan import FaultPlan, FaultRule


@dataclasses.dataclass
class FaultStats:
    """What the weather actually did, per fault point."""

    opportunities: dict[str, int] = dataclasses.field(default_factory=dict)
    fired: dict[str, int] = dataclasses.field(default_factory=dict)

    @property
    def total_fired(self) -> int:
        return sum(self.fired.values())


class FaultInjector:
    """Deterministic interpreter of one :class:`FaultPlan`."""

    def __init__(self, plan: FaultPlan | None = None, obs=None) -> None:
        self.plan = plan if plan is not None else FaultPlan.empty()
        self.stats = FaultStats()
        #: Out-of-band observability hook (attached by the system).
        self.obs = obs
        self._rng = DeterministicRng(self.plan.seed)
        #: point -> rules (precomputed so hot paths skip list scans).
        self._by_point: dict[str, tuple[FaultRule, ...]] = {}
        #: (point, rule index) -> opportunities seen / times fired.
        self._rule_seen: dict[tuple[str, int], int] = {}
        self._rule_fired: dict[tuple[str, int], int] = {}
        for rule in self.plan.rules:
            self._by_point.setdefault(rule.point, ())
        for point in self._by_point:
            self._by_point[point] = self.plan.rules_for(point)

    # -- the hot-path API ----------------------------------------------------

    def fires(self, point: str) -> FaultRule | None:
        """Roll the dice at ``point``; the firing rule, or ``None``.

        At most one rule fires per opportunity (first match in plan
        order), which keeps combined plans predictable.
        """
        rules = self._by_point.get(point)
        if not rules:
            return None
        self.stats.opportunities[point] = \
            self.stats.opportunities.get(point, 0) + 1
        for index, rule in enumerate(rules):
            key = (point, index)
            seen = self._rule_seen.get(key, 0)
            self._rule_seen[key] = seen + 1
            if seen < rule.after:
                continue
            if rule.count is not None and \
                    self._rule_fired.get(key, 0) >= rule.count:
                continue
            if rule.probability < 1.0:
                draw = self._rng.stream(f"fault:{point}").random()
                if draw >= rule.probability:
                    continue
            self._rule_fired[key] = self._rule_fired.get(key, 0) + 1
            self.stats.fired[point] = self.stats.fired.get(point, 0) + 1
            if self.obs is not None:
                self.obs.record_fault(point, rule.magnitude)
            return rule
        return None

    def magnitude(self, point: str, default: int = 0) -> int:
        """Convenience: ``fires(point)`` reduced to its magnitude."""
        rule = self.fires(point)
        return rule.magnitude if rule is not None else default

    def fires_each(self, point: str, count: int) -> list[FaultRule | None]:
        """Roll ``point`` once per element of a batch.

        Batch envelopes cross the transport as one packet, but their
        *elements* are individual fault opportunities (a bit flip lands
        on one element, not the whole frame). Returns one entry per
        element — the firing rule or ``None`` — drawn from the point's
        usual sub-stream so scalar and batched chaos share one replayable
        dice sequence. A point with no rules short-circuits: no draws,
        no opportunity accounting, exactly like :meth:`fires`.
        """
        if not self._by_point.get(point):
            return [None] * count
        return [self.fires(point) for _ in range(count)]

    # -- introspection -------------------------------------------------------

    def fired_count(self, point: str) -> int:
        """How many times ``point`` has fired so far."""
        return self.stats.fired.get(point, 0)
