"""``python -m repro`` — evaluation artifacts plus observability surfaces.

The argparse CLI lives in :mod:`repro.obs.cli`: ``regen`` (the default;
bare artifact names keep working), ``metrics``, ``trace``, ``bench``,
and ``lint``.
"""

from __future__ import annotations

import sys

from repro.obs.cli import main

if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
