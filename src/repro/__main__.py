"""``python -m repro`` — regenerate the paper's evaluation as text."""

from __future__ import annotations

import sys

from repro.eval.regenerate import regenerate


def main(argv: list[str]) -> None:
    """Print the requested artifacts (all by default) to stdout."""
    print(regenerate(argv or None))


if __name__ == "__main__":
    main(sys.argv[1:])
